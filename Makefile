# Tier-1 verify is `make verify`: build, vet, lint, test.
GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet lint lint-json lint-baseline bench fuzz stress stats-smoke parallel-race chaos-smoke geoblocks-smoke segment-smoke ingest-smoke shard-smoke verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Project-specific static analysis (see README "Static analysis & CI").
# The committed lint.baseline records tolerated findings; the gate fails
# only on findings a change introduces. The baseline is empty — keep it so.
lint:
	$(GO) run ./cmd/urbane-lint -baseline lint.baseline ./...

# Machine-readable findings (JSON array, repo-relative paths) for tooling.
lint-json:
	$(GO) run ./cmd/urbane-lint -baseline lint.baseline -json ./...

# Regenerate lint.baseline from the current tree. Only do this to baseline
# a finding that is understood and tracked; prefer fixing or a reasoned
# //lint:ignore.
lint-baseline:
	$(GO) run ./cmd/urbane-lint -write-baseline lint.baseline ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# Short-budget fuzzing of the input decoders and the query parser; go test
# accepts one -fuzz target per invocation.
fuzz:
	$(GO) test ./internal/data -run='^$$' -fuzz='^FuzzReadCSV$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/data -run='^$$' -fuzz='^FuzzReadGeoJSON$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/query -run='^$$' -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/qcache -run='^$$' -fuzz='^FuzzCacheKey$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/urbane -run='^$$' -fuzz='^FuzzAdmitEnvelope$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/geoblocks -run='^$$' -fuzz='^FuzzClassify$$' -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/segment -run='^$$' -fuzz='^FuzzSegmentRoundTrip$$' -fuzztime=$(FUZZTIME)

# Parallel point pass and span cache suite under the race detector: the
# bit-identical property tests (parallel == sequential at every worker
# count), the cancellation-hygiene tests, and the span cache.
parallel-race:
	$(GO) test -race -count=1 \
		-run 'Parallel|PointWorkers|SpanCache|CompileRegions|Cancel' \
		./internal/gpu ./internal/raster ./internal/core

# End-to-end deadline smoke test: boot the real server with a 1ms
# -query-timeout, require a 504 on /api/mapview and a nonzero timeout
# counter (with zero live render resources) in GET /api/stats.
stats-smoke:
	$(GO) test -count=1 -run '^TestStatsSmoke$$' -v ./cmd/urbane-server

# Concurrency suite under the race detector: cache stress, coalescing, and
# the cache-on/cache-off byte-identical property over the HTTP handlers.
stress:
	$(GO) test -race -count=1 -run 'Stress|Coalesce|Concurrent|CacheOnOff' \
		./internal/qcache ./internal/urbane

# Seeded chaos soak under the race detector: 64 virtual users against a
# server with admission control, a deterministic fault schedule on every
# hook site, and aggressive client deadlines; asserts the response
# envelope contract, zero leaks, and byte-identical post-chaos replay
# against a pristine server. Plus the admission/fault unit suites.
chaos-smoke:
	$(GO) test -race -count=1 -run 'Chaos|Soak|Replay' ./internal/chaos
	$(GO) test -race -count=1 ./internal/admit ./internal/fault

# GeoBlocks hierarchy equivalence gate under the race detector: a seeded
# pyramid build plus 50 hybrid-vs-full-join queries across all five
# aggregates (TestGeoBlocksSmoke), and the concurrent build-while-query
# stress.
geoblocks-smoke:
	$(GO) test -race -count=1 \
		-run '^(TestGeoBlocksSmoke|TestConcurrentBuildWhileQuery)$$' \
		./internal/geoblocks

# Columnar segment gate under the race detector: the segment format unit
# suite, the randomized segment-vs-RAM bit-identical equivalence suite
# (all six joiners, out-of-core cache budgets, prune counters,
# cancellation hygiene), and the segment-backed chaos soak with its
# byte-identical replay against an in-RAM server.
segment-smoke:
	$(GO) test -race -count=1 ./internal/segment
	$(GO) test -race -count=1 -run '^TestSegment' ./internal/core
	$(GO) test -race -count=1 -run '^TestChaosSoak$$' ./internal/chaos

# Incremental-maintenance gate under the race detector: append-while-query
# smoke over every maintained structure (slab fold, geoblocks patch, tiles,
# per-dataset epoch sweeps), the geoblocks patch-vs-rebuild metamorphic
# suite, the slab fold property suite, and the concurrent-ingest chaos soak
# with its byte-identical replay against a pristine server fed the same
# appends.
ingest-smoke:
	$(GO) test -race -count=1 -run '^TestIngestSmoke$$|^TestAppend' ./internal/urbane
	$(GO) test -race -count=1 -run '^TestPatch' ./internal/geoblocks
	$(GO) test -race -count=1 ./internal/tcache ./internal/workload
	$(GO) test -race -count=1 -run '^TestIngestSoakReplay$$' ./internal/chaos

# Spatial sharding gate under the race detector: the shard-count
# equivalence matrix (sharded results bit-identical to the local path at
# counts 1/2/4/8, both modes, all five aggregates, filtered and
# post-append), the coordinator cancellation-hygiene and kill/restart
# suites, and the seeded kill/restart chaos soak with its byte-identical
# post-chaos replay against a pristine unsharded server.
shard-smoke:
	$(GO) test -race -count=1 ./internal/shard
	$(GO) test -race -count=1 -run '^(TestShard|TestMixedDataset)' ./internal/chaos

verify: build vet lint test
