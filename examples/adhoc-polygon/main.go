// Ad-hoc polygon: the query class that motivates Raster Join. A user draws
// an arbitrary polygon on the map and combines it with an attribute filter.
// The pre-aggregation cube — instant on its canned queries — must refuse;
// Raster Join evaluates it on the fly, and the accurate variant confirms
// the approximate answer's error stays within the requested ε.
//
//	go run ./examples/adhoc-polygon
package main

import (
	"errors"
	"fmt"
	"log"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/workload"
)

func main() {
	scene := workload.NYC(500_000, 99)

	// The city pre-builds a daily cube over the official neighborhoods.
	start := time.Now()
	cb, err := cube.Build(scene.Taxi, cube.Config{
		Regions: scene.Neighborhoods, TimeBin: 86400, Attrs: []string{"fare"}})
	must(err)
	fmt.Printf("pre-aggregation cube: %d cells, built in %v\n\n",
		cb.MemoryCells(), time.Since(start).Round(time.Millisecond))

	// A visitor sketches a star over lower Manhattan and asks: how many
	// premium trips (fare >= $30) started inside it?
	sketch := workload.AdHocPolygon(5)
	req := core.Request{
		Points:  scene.Taxi,
		Regions: sketch,
		Agg:     core.Count,
		Filters: []core.Filter{{Attr: "fare", Min: 30, Max: math.Inf(1)}},
	}
	fmt.Println("query: COUNT of fare>=30 pickups inside a user-drawn polygon")

	// 1. The cube cannot serve it.
	if _, err := cb.Join(req); errors.Is(err, cube.ErrUnsupported) {
		fmt.Printf("cube:   REFUSED — %v\n", err)
	} else {
		log.Fatalf("cube unexpectedly served an ad-hoc polygon: %v", err)
	}

	// 2. Bounded raster join answers immediately, with an error bound the
	//    user chose (ε = 50 ground meters).
	eps := workload.GroundMeters(50)
	rj := core.NewRasterJoin(core.WithEpsilon(eps))
	start = time.Now()
	approx, err := rj.Join(req)
	must(err)
	fmt.Printf("raster: %d trips in %v (ε=50m canvas %dx%d, %d tiles)\n",
		approx.TotalCount(), time.Since(start).Round(time.Millisecond),
		approx.CanvasW, approx.CanvasH, approx.Tiles)

	// 3. The accurate hybrid confirms the bound.
	acc := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(1024))
	start = time.Now()
	exact, err := acc.Join(req)
	must(err)
	fmt.Printf("exact:  %d trips in %v (hybrid accurate raster join)\n",
		exact.TotalCount(), time.Since(start).Round(time.Millisecond))

	diff := approx.TotalCount() - exact.TotalCount()
	if diff < 0 {
		diff = -diff
	}
	pct := 0.0
	if exact.TotalCount() > 0 {
		pct = 100 * float64(diff) / float64(exact.TotalCount())
	}
	fmt.Printf("\napproximation error: %d trips (%.3f%%) — bounded by points within ε of the sketch boundary\n",
		diff, pct)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
