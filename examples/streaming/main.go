// Streaming: aggregate a point file larger than memory. The taxi data is
// written to a CSV on disk, then streamed back through the raster join in
// fixed-size batches — only one batch (plus the canvas textures) is ever
// resident, the aggregation semantics are identical to a monolithic join,
// and the accurate hybrid stays exact.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/workload"
)

func main() {
	const points = 400_000
	const batchRows = 50_000

	scene := workload.NYC(points, 11)

	// Stage the data on disk — the stand-in for a file too big to load.
	dir, err := os.MkdirTemp("", "urbane-stream")
	must(err)
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "taxi.csv")
	fh, err := os.Create(path)
	must(err)
	must(data.WriteCSV(fh, scene.Taxi))
	must(fh.Close())
	info, _ := os.Stat(path)
	fmt.Printf("staged %d trips to %s (%.1f MB)\n\n", points, path,
		float64(info.Size())/(1<<20))

	// Streaming aggregation: AVG(fare) per neighborhood, exact.
	rj := core.NewRasterJoin(core.WithResolution(1024), core.WithMode(core.Accurate))
	stream, err := rj.NewStream(scene.Neighborhoods, core.Avg, "fare", nil, nil)
	must(err)

	start := time.Now()
	in, err := os.Open(path)
	must(err)
	defer in.Close()
	must(data.StreamCSV(in, "taxi", batchRows, func(batch *data.PointSet) error {
		return stream.Add(batch)
	}))
	res, err := stream.Finalize()
	must(err)
	elapsed := time.Since(start)

	fmt.Printf("streamed %d batches of <= %d rows in %v (%s)\n",
		stream.Batches(), batchRows, elapsed.Round(time.Millisecond), res.Algorithm)

	// Cross-check against the monolithic join.
	mono, err := rj.Join(core.Request{
		Points: scene.Taxi, Regions: scene.Neighborhoods,
		Agg: core.Avg, Attr: "fare",
	})
	must(err)
	for k := range res.Stats {
		if res.Stats[k].Count != mono.Stats[k].Count {
			log.Fatalf("region %d diverged: %d vs %d",
				k, res.Stats[k].Count, mono.Stats[k].Count)
		}
	}
	fmt.Println("verified: streamed result identical to the monolithic join")

	// The answer itself: priciest average fares.
	best, bestV := 0, 0.0
	for k := range res.Stats {
		if v := res.Value(k, core.Avg); v > bestV && res.Stats[k].Count > 100 {
			best, bestV = k, v
		}
	}
	fmt.Printf("\npriciest neighborhood: %s (avg fare $%.2f over %d trips)\n",
		scene.Neighborhoods.Regions[best].Name, bestV, res.Stats[best].Count)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
