// Render maps: produce the actual pixels Urbane shows — a choropleth of
// taxi pickups per neighborhood and a log-scaled pickup-density heatmap —
// as PNG files, drawn by the same rasterizer that evaluates the joins.
//
//	go run ./examples/render-maps [-out DIR]
package main

import (
	"flag"
	"fmt"
	"image"
	"log"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/render"
	"repro/internal/urbane"
	"repro/internal/workload"
)

func main() {
	out := flag.String("out", ".", "output directory")
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	scene := workload.NYC(300_000, 77)
	f := urbane.New(core.NewRasterJoin(core.WithResolution(1024)))
	must(f.AddPointSet(scene.Taxi))
	must(f.AddRegionSet(scene.Neighborhoods))

	// 1. Choropleth: pickups per neighborhood, January 2009.
	pngBytes, err := f.RenderChoropleth(urbane.MapViewRequest{
		Dataset: "taxi", Layer: "neighborhoods",
		Agg: core.Count, Time: workload.Jan2009(),
	}, 1000)
	must(err)
	write(filepath.Join(*out, "choropleth.png"), pngBytes)

	// 2. Density heatmap of raw pickups.
	hm, err := f.Heatmap(urbane.HeatmapRequest{Dataset: "taxi", W: 1000})
	must(err)
	img, err := render.Density(hm.Counts, hm.W, hm.H, render.HeatRamp)
	must(err)
	writeImage(filepath.Join(*out, "heatmap.png"), img)

	// 3. The color legend for the heatmap.
	writeImage(filepath.Join(*out, "legend.png"), render.Legend(512, 24, render.HeatRamp))

	fmt.Println("wrote choropleth.png, heatmap.png, legend.png to", *out)
}

func write(path string, data []byte) {
	if err := os.WriteFile(path, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s (%d bytes)\n", path, len(data))
}

func writeImage(path string, img image.Image) {
	fh, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer fh.Close()
	if err := render.EncodePNG(fh, img); err != nil {
		log.Fatal(err)
	}
	info, _ := fh.Stat()
	fmt.Printf("  %s (%d bytes)\n", path, info.Size())
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
