// OD flows: Urbane's taxi-flow view. Where do trips go? The raster flow
// join renders the neighborhoods once into a polygon-ID texture, then
// resolves both ends of every trip in a single pass over the points —
// producing the origin-destination matrix at interactive speed, with the
// usual ad-hoc filters.
//
//	go run ./examples/od-flows
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/urbane"
	"repro/internal/workload"
)

func main() {
	scene := workload.NYC(500_000, 2024)
	f := urbane.New(core.NewRasterJoin(core.WithResolution(1024)))
	must(f.AddPointSet(scene.Taxi))
	must(f.AddRegionSet(scene.Neighborhoods))

	fmt.Printf("OD flow view: %d taxi trips over %d neighborhoods\n\n",
		scene.Taxi.Len(), scene.Neighborhoods.Len())

	// The full month's strongest flows.
	view, err := f.FlowView(urbane.FlowViewRequest{
		Dataset: "taxi", Layer: "neighborhoods", Top: 8,
	})
	must(err)
	fmt.Printf("strongest flows (all trips, %v, %d resolved / %d dropped):\n",
		view.Elapsed.Round(time.Millisecond), view.Total, view.Dropped)
	printEdges(view)

	// Ad-hoc refinement: premium trips only.
	premium, err := f.FlowView(urbane.FlowViewRequest{
		Dataset: "taxi", Layer: "neighborhoods", Top: 8,
		Filters: []core.Filter{{Attr: "fare", Min: 40, Max: 1e9}},
	})
	must(err)
	fmt.Printf("\nstrongest premium flows (fare >= $40, %v):\n",
		premium.Elapsed.Round(time.Millisecond))
	printEdges(premium)

	// Self-flows vs cross-flows: how local is taxi traffic?
	var self, cross int64
	all, err := f.FlowView(urbane.FlowViewRequest{
		Dataset: "taxi", Layer: "neighborhoods", Top: 1 << 30,
	})
	must(err)
	for _, e := range all.Edges {
		if e.FromID == e.ToID {
			self += e.Count
		} else {
			cross += e.Count
		}
	}
	fmt.Printf("\ntraffic locality: %.1f%% of trips stay in their pickup neighborhood\n",
		100*float64(self)/float64(self+cross))
}

func printEdges(v *urbane.FlowView) {
	for i, e := range v.Edges {
		arrow := "→"
		if e.FromID == e.ToID {
			arrow = "↺"
		}
		fmt.Printf("  %2d. %-22s %s %-22s %7d trips\n", i+1, e.From, arrow, e.To, e.Count)
	}
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
