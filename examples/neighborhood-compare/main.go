// Neighborhood comparison: the introduction's architect scenario. An
// architect evaluating a development site compares its neighborhood with
// every other one along several data-driven metrics — taxi activity,
// average fares, 311 complaint pressure, and photo/tourism density — and
// gets a ranked list of the most similar neighborhoods to use as
// performance references.
//
//	go run ./examples/neighborhood-compare
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/urbane"
	"repro/internal/workload"
)

func main() {
	scene := workload.NYC(400_000, 7)
	c311 := data.Generate(data.NYC311Config(100_000, 2009, time.January, 8))
	photos := data.Generate(data.NYCPhotosConfig(50_000, 2009, time.January, 9))

	f := urbane.New(core.NewRasterJoin(core.WithResolution(1024)))
	must(f.AddPointSet(scene.Taxi))
	must(f.AddPointSet(c311))
	must(f.AddPointSet(photos))
	must(f.AddRegionSet(scene.Neighborhoods))

	// The candidate site's neighborhood: pick the one with the most taxi
	// activity as a stand-in for "the neighborhood the architect works in".
	ch, err := f.MapView(urbane.MapViewRequest{
		Dataset: "taxi", Layer: "neighborhoods", Agg: core.Count,
	})
	must(err)
	target := ch.Values[0]
	for _, v := range ch.Values {
		if v.Value > target.Value {
			target = v
		}
	}
	fmt.Printf("target neighborhood: %s (%d taxi pickups)\n\n",
		target.Name, int64(target.Value))

	metrics := []urbane.MetricSpec{
		{Name: "taxi activity", Dataset: "taxi", Agg: core.Count},
		{Name: "avg fare", Dataset: "taxi", Agg: core.Avg, Attr: "fare"},
		{Name: "311 complaints", Dataset: "311", Agg: core.Count},
		{Name: "photo density", Dataset: "photos", Agg: core.Count},
	}
	start := time.Now()
	scores, err := f.RankSimilar("neighborhoods", target.ID, metrics)
	must(err)
	elapsed := time.Since(start)

	fmt.Printf("ranked %d neighborhoods on %d metrics in %v\n\n",
		len(scores), len(metrics), elapsed.Round(time.Millisecond))
	fmt.Println("most similar neighborhoods (z-scored feature distance):")
	for i := 0; i < 8 && i < len(scores); i++ {
		s := scores[i]
		fmt.Printf("  %2d. %-22s distance %.3f  features %v\n",
			i+1, s.Name, s.Distance, roundAll(s.Values))
	}
	fmt.Println("\nleast similar:")
	for i := len(scores) - 3; i < len(scores); i++ {
		s := scores[i]
		fmt.Printf("      %-22s distance %.3f\n", s.Name, s.Distance)
	}
}

func roundAll(vs []float64) []float64 {
	out := make([]float64, len(vs))
	for i, v := range vs {
		out[i] = float64(int(v*100)) / 100
	}
	return out
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
