// Quickstart: generate a small synthetic taxi data set, run one spatial
// aggregation with Raster Join, and print the choropleth rows.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/core"
	"repro/internal/urbane"
	"repro/internal/workload"
)

func main() {
	// 1. A scene: 200k synthetic taxi pickups over ~260 NYC neighborhoods.
	scene := workload.NYC(200_000, 42)

	// 2. The Urbane backend with an exact (hybrid accurate) raster joiner.
	f := urbane.New(core.NewRasterJoin(
		core.WithMode(core.Accurate),
		core.WithResolution(1024),
	))
	if err := f.AddPointSet(scene.Taxi); err != nil {
		log.Fatal(err)
	}
	if err := f.AddRegionSet(scene.Neighborhoods); err != nil {
		log.Fatal(err)
	}

	// 3. The paper's query, in its SQL form: taxi pickups per neighborhood
	//    in January 2009.
	jan := workload.Jan2009()
	stmt := fmt.Sprintf(
		"SELECT COUNT(*) FROM taxi, neighborhoods WHERE time BETWEEN %d AND %d GROUP BY id",
		jan.Start, jan.End)
	exec, err := f.Query(stmt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("query:     %s\n", stmt)
	fmt.Printf("algorithm: %s\n", exec.Result.Algorithm)
	fmt.Printf("latency:   %v\n", exec.Elapsed)
	fmt.Printf("canvas:    %dx%d px (%.0f m/px)\n\n",
		exec.Result.CanvasW, exec.Result.CanvasH, exec.Result.PixelSize)

	// 4. Top ten neighborhoods by pickups.
	type row struct {
		name  string
		count int64
	}
	rows := make([]row, 0, len(exec.Result.Stats))
	for k, st := range exec.Result.Stats {
		rows = append(rows, row{scene.Neighborhoods.Regions[k].Name, st.Count})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].count > rows[j].count })
	fmt.Println("busiest neighborhoods:")
	for i := 0; i < 10 && i < len(rows); i++ {
		fmt.Printf("  %2d. %-22s %8d pickups\n", i+1, rows[i].name, rows[i].count)
	}
}
