// Taxi exploration: the paper's Figure-1 scenario end to end. A demo
// visitor looks at taxi pickups over NYC neighborhoods for January 2009,
// then drags the time slider week by week and tightens an ad-hoc fare
// filter — every interaction re-evaluated on the fly by Raster Join.
//
//	go run ./examples/taxi-exploration
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/fsum"
	"repro/internal/urbane"
	"repro/internal/workload"
)

func main() {
	scene := workload.NYC(500_000, 2009)
	f := urbane.New(core.NewRasterJoin(core.WithResolution(1024)))
	must(f.AddPointSet(scene.Taxi))
	must(f.AddRegionSet(scene.Neighborhoods))
	must(f.AddRegionSet(scene.Grid))

	fmt.Println("Urbane map view: taxi pickups, January 2009, by neighborhood")
	fmt.Println("-------------------------------------------------------------")

	// Initial view: the whole month.
	view(f, "full month", urbane.MapViewRequest{
		Dataset: "taxi", Layer: "neighborhoods",
		Agg: core.Count, Time: workload.Jan2009(),
	})

	// Interaction 1: the user drags the time slider across the weeks.
	for w := 0; w < 4; w++ {
		view(f, fmt.Sprintf("week %d", w+1), urbane.MapViewRequest{
			Dataset: "taxi", Layer: "neighborhoods",
			Agg: core.Count, Time: workload.JanWeek(w),
		})
	}

	// Interaction 2: ad-hoc filter — only premium trips (fare >= $25).
	// Pre-aggregation could never serve this; Raster Join just draws again.
	view(f, "week 2, fare >= $25", urbane.MapViewRequest{
		Dataset: "taxi", Layer: "neighborhoods",
		Agg:     core.Count,
		Time:    workload.JanWeek(1),
		Filters: []core.Filter{{Attr: "fare", Min: 25, Max: 1e9}},
	})

	// Interaction 3: switch the resolution to Urbane's grid view and look
	// at average fares instead of counts.
	view(f, "grid view, AVG(fare)", urbane.MapViewRequest{
		Dataset: "taxi", Layer: "grid64",
		Agg: core.Avg, Attr: "fare", Time: workload.JanWeek(1),
	})

	// Interaction 4: the raw density heatmap, rendered straight through
	// the GPU substrate's point pass and printed as a terminal shade map.
	hm, err := f.Heatmap(urbane.HeatmapRequest{Dataset: "taxi", W: 72})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npickup density heatmap (%dx%d, %v):\n", hm.W, hm.H,
		hm.Elapsed.Round(time.Millisecond))
	printHeatmap(hm)
}

// printHeatmap renders the density raster as ASCII shades, darkest where
// pickups concentrate (midtown Manhattan).
func printHeatmap(hm *urbane.Heatmap) {
	shades := []byte(" .:-=+*#%@")
	// Print every other row so terminal cells stay roughly square.
	for y := hm.H - 1; y >= 0; y -= 2 {
		line := make([]byte, hm.W)
		for x := 0; x < hm.W; x++ {
			v := hm.Counts[y*hm.W+x]
			if y > 0 {
				v += hm.Counts[(y-1)*hm.W+x]
			}
			idx := 0
			if hm.Max > 0 && v > 0 {
				// Log scale: taxi density spans orders of magnitude.
				idx = 1 + int(float64(len(shades)-2)*logNorm(v, 2*hm.Max))
			}
			line[x] = shades[idx]
		}
		fmt.Println(string(line))
	}
}

func logNorm(v, max float64) float64 {
	if v <= 1 || max <= 1 {
		return 0
	}
	n := log2(v) / log2(max)
	if n > 1 {
		n = 1
	}
	return n
}

func log2(v float64) float64 {
	n := 0.0
	for v > 1 {
		v /= 2
		n++
	}
	return n + v - 1 // piecewise-linear log2, good enough for shading
}

// view runs one map-view interaction and reports its latency and extremes.
func view(f *urbane.Framework, label string, req urbane.MapViewRequest) {
	ch, err := f.MapView(req)
	if err != nil {
		log.Fatal(err)
	}
	var totalAcc fsum.Kahan
	hot := 0
	for i, v := range ch.Values {
		totalAcc.Add(v.Value)
		if v.Value == ch.Max {
			hot = i
		}
	}
	total := totalAcc.Sum()
	interactive := "interactive"
	if ch.Elapsed > 500*time.Millisecond {
		interactive = "TOO SLOW"
	}
	fmt.Printf("%-22s %9v  (%s)  total=%.0f  hottest=%s (%.4g)\n",
		label, ch.Elapsed.Round(time.Millisecond), interactive,
		total, ch.Values[hot].Name, ch.Max)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
