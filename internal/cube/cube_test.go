package cube

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/index"
)

func cubeScene(np int, seed int64) (*data.PointSet, *data.RegionSet) {
	bounds := geom.BBox{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	rng := rand.New(rand.NewSource(seed))
	ps := &data.PointSet{
		Name: "pts",
		X:    make([]float64, np),
		Y:    make([]float64, np),
		T:    make([]int64, np),
	}
	vals := make([]float64, np)
	for i := 0; i < np; i++ {
		ps.X[i] = rng.Float64() * 1000
		ps.Y[i] = rng.Float64() * 1000
		ps.T[i] = int64(rng.Intn(10 * 3600)) // ten hours
		vals[i] = rng.Float64() * 5
	}
	ps.Attrs = []data.Column{{Name: "v", Values: vals}}
	ps.SortByTime()
	rs := data.VoronoiRegions("nbhd", bounds, 15, seed+1,
		data.VoronoiOptions{JitterFrac: 0.05})
	return ps, rs
}

func TestCubeMatchesBruteForceUnfiltered(t *testing.T) {
	ps, rs := cubeScene(4000, 3)
	c, err := Build(ps, Config{Regions: rs, TimeBin: 3600, Attrs: []string{"v"}})
	if err != nil {
		t.Fatal(err)
	}
	for _, agg := range []core.Agg{core.Count, core.Sum, core.Avg} {
		req := core.Request{Points: ps, Regions: rs, Agg: agg, Attr: "v"}
		want, err := (&index.BruteForce{}).Join(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Join(req)
		if err != nil {
			t.Fatalf("%v: %v", agg, err)
		}
		for k := range want.Stats {
			if got.Stats[k].Count != want.Stats[k].Count {
				t.Fatalf("%v region %d: count %d vs %d",
					agg, k, got.Stats[k].Count, want.Stats[k].Count)
			}
			if math.Abs(got.Stats[k].Sum-want.Stats[k].Sum) > 1e-6 {
				t.Fatalf("%v region %d: sum %v vs %v",
					agg, k, got.Stats[k].Sum, want.Stats[k].Sum)
			}
		}
	}
}

func TestCubeAlignedTimeRange(t *testing.T) {
	ps, rs := cubeScene(3000, 7)
	c, err := Build(ps, Config{Regions: rs, TimeBin: 3600})
	if err != nil {
		t.Fatal(err)
	}
	// Aligned window [bin1, bin4).
	start := c.BinStart(1)
	end := c.BinStart(4)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count,
		Time: &core.TimeFilter{Start: start, End: end}}
	want, _ := (&index.BruteForce{}).Join(req)
	got, err := c.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	for k := range want.Stats {
		if got.Stats[k].Count != want.Stats[k].Count {
			t.Fatalf("region %d: %d vs %d", k, got.Stats[k].Count, want.Stats[k].Count)
		}
	}
}

func TestCubeRejectsAdHocQueries(t *testing.T) {
	ps, rs := cubeScene(500, 11)
	c, err := Build(ps, Config{Regions: rs, TimeBin: 3600, Attrs: []string{"v"}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		req  core.Request
	}{
		{"ad-hoc filter", core.Request{Points: ps, Regions: rs, Agg: core.Count,
			Filters: []core.Filter{{Attr: "v", Min: 1, Max: 2}}}},
		{"misaligned time", core.Request{Points: ps, Regions: rs, Agg: core.Count,
			Time: &core.TimeFilter{Start: c.BinStart(0) + 17, End: c.BinStart(2)}}},
		{"foreign regions", core.Request{Points: ps,
			Regions: data.GridRegions("other", geom.BBox{MaxX: 1, MaxY: 1}, 1, 1),
			Agg:     core.Count}},
		{"unmaterialized attr", func() core.Request {
			ps2 := ps
			return core.Request{Points: ps2, Regions: rs, Agg: core.Sum, Attr: "w"}
		}()},
	}
	// Give the point set a second attribute so "unmaterialized attr"
	// passes request validation but not cube support.
	ps.AddAttr("w", make([]float64, ps.Len()))
	for _, tc := range cases {
		_, err := c.Join(tc.req)
		if !errors.Is(err, ErrUnsupported) {
			t.Errorf("%s: err = %v, want ErrUnsupported", tc.name, err)
		}
	}
	// Foreign point set.
	other, _ := cubeScene(10, 99)
	if _, err := c.Join(core.Request{Points: other, Regions: rs, Agg: core.Count}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("foreign points: err = %v", err)
	}
	// MIN/MAX are not materialized.
	if _, err := c.Join(core.Request{Points: ps, Regions: rs,
		Agg: core.Min, Attr: "v"}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("min: err = %v", err)
	}
}

func TestCubeNoTimeDimension(t *testing.T) {
	ps, rs := cubeScene(1000, 13)
	c, err := Build(ps, Config{Regions: rs, TimeBin: 0})
	if err != nil {
		t.Fatal(err)
	}
	if c.Bins() != 1 {
		t.Errorf("bins = %d, want 1", c.Bins())
	}
	if _, err := c.Join(core.Request{Points: ps, Regions: rs, Agg: core.Count,
		Time: &core.TimeFilter{Start: 0, End: 3600}}); !errors.Is(err, ErrUnsupported) {
		t.Errorf("time filter without time dimension: err = %v", err)
	}
	// Untimed query works.
	if _, err := c.Join(core.Request{Points: ps, Regions: rs, Agg: core.Count}); err != nil {
		t.Errorf("untimed query: %v", err)
	}
}

func TestCubeSeries(t *testing.T) {
	ps, rs := cubeScene(3000, 17)
	c, err := Build(ps, Config{Regions: rs, TimeBin: 3600, Attrs: []string{"v"}})
	if err != nil {
		t.Fatal(err)
	}
	series, err := c.Series(0, core.Count, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != c.Bins() {
		t.Fatalf("series length %d, want %d bins", len(series), c.Bins())
	}
	// Series must sum to the region's total count.
	var total float64
	for _, v := range series {
		total += v
	}
	full, _ := c.Join(core.Request{Points: ps, Regions: rs, Agg: core.Count})
	if total != float64(full.Stats[0].Count) {
		t.Errorf("series total %v != region count %d", total, full.Stats[0].Count)
	}
	// Errors.
	if _, err := c.Series(-1, core.Count, ""); err == nil {
		t.Error("negative region index should error")
	}
	if _, err := c.Series(0, core.Sum, "nope"); !errors.Is(err, ErrUnsupported) {
		t.Errorf("unmaterialized series attr: err = %v", err)
	}
}

func TestCubeBuildErrors(t *testing.T) {
	ps, _ := cubeScene(10, 19)
	if _, err := Build(ps, Config{}); err == nil {
		t.Error("nil regions should fail")
	}
	rs := data.GridRegions("g", geom.BBox{MaxX: 1, MaxY: 1}, 1, 1)
	if _, err := Build(ps, Config{Regions: rs, Attrs: []string{"nope"}}); err == nil {
		t.Error("unknown attr should fail")
	}
}

func TestCubeMemoryCells(t *testing.T) {
	ps, rs := cubeScene(1000, 23)
	c, _ := Build(ps, Config{Regions: rs, TimeBin: 3600})
	if c.MemoryCells() != c.Bins()*rs.Len() {
		t.Errorf("cells = %d, want %d", c.MemoryCells(), c.Bins()*rs.Len())
	}
}
