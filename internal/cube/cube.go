// Package cube implements the pre-aggregation baseline the paper's
// introduction argues against: a spatio-temporal aggregate cube built over
// a fixed region layer and fixed time bins.
//
// Once built, the cube answers its canned query family (count/sum/avg per
// region per aligned time range) in microseconds — but it cannot serve
// ad-hoc filter conditions, ad-hoc polygons, or misaligned time ranges;
// those return ErrUnsupported. Raster Join exists precisely to cover that
// gap at interactive speed.
package cube

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fsum"
	"repro/internal/geom"
	"repro/internal/index"
)

// ErrUnsupported is returned for queries outside the cube's pre-aggregated
// family: different region sets, attribute filters, unaligned time windows,
// or attributes that were not materialized.
var ErrUnsupported = errors.New("cube: query not servable from pre-aggregation")

// Config declares what the cube materializes.
type Config struct {
	// Regions is the fixed region layer the cube is keyed on.
	Regions *data.RegionSet
	// TimeBin is the bin width in seconds (e.g. 3600 or 86400). Zero
	// collapses time: one bin covering everything, and any time-filtered
	// query is unsupported.
	TimeBin int64
	// Attrs lists the attribute columns whose per-cell sums are
	// materialized (enabling SUM/AVG on exactly these).
	Attrs []string
}

// Cube is the materialized aggregate: counts and attribute sums per
// (time bin × region) cell.
type Cube struct {
	cfg    Config
	points *data.PointSet
	start  int64 // start timestamp of bin 0
	bins   int
	nr     int
	counts []int64
	sums   map[string][]float64
}

// Build scans the point set once, assigning every point to its containing
// region (exact point-in-polygon via an R-tree over region boxes) and
// accumulating the per-cell aggregates. This is the offline preprocessing
// step whose cost pre-aggregation pays up front.
func Build(ps *data.PointSet, cfg Config) (*Cube, error) {
	if cfg.Regions == nil {
		return nil, errors.New("cube: config needs a region set")
	}
	for _, a := range cfg.Attrs {
		if ps.Attr(a) == nil {
			return nil, fmt.Errorf("cube: attribute %q not in point set %q", a, ps.Name)
		}
	}
	c := &Cube{cfg: cfg, points: ps, nr: cfg.Regions.Len()}

	if cfg.TimeBin > 0 && ps.T != nil && ps.Len() > 0 {
		tmin, tmax, _ := ps.TimeRange()
		c.start = (tmin / cfg.TimeBin) * cfg.TimeBin
		if tmin < 0 && c.start > tmin {
			c.start -= cfg.TimeBin
		}
		c.bins = int((tmax-c.start)/cfg.TimeBin) + 1
	} else {
		c.bins = 1
	}

	cells := c.bins * c.nr
	c.counts = make([]int64, cells)
	c.sums = make(map[string][]float64, len(cfg.Attrs))
	for _, a := range cfg.Attrs {
		c.sums[a] = make([]float64, cells)
	}
	if c.nr == 0 || ps.Len() == 0 {
		return c, nil
	}

	boxes := make([]geom.BBox, c.nr)
	for i, r := range cfg.Regions.Regions {
		boxes[i] = r.Poly.BBox()
	}
	tree := index.BuildRTree(boxes)
	regions := cfg.Regions.Regions

	src := ps.Source()
	attrIdxs := make([]int, len(cfg.Attrs))
	for i, a := range cfg.Attrs {
		attrIdxs[i] = data.AttrIndex(src, a)
	}

	// Parallel over point shards with per-shard cells, merged at the end.
	// Each shard walks its index range in source blocks (zero-copy for the
	// in-RAM set; decoded block by block for segment-backed sources), so the
	// per-shard accumulation order — and the float sums — are unchanged.
	//
	// Race audit (sharedwrite-clean): each goroutine owns the `partial`
	// it receives as an argument (counts/sums allocated per shard); the
	// spatial index and source blocks are read-only. The merge into
	// c.counts/c.sums runs single-threaded after wg.Wait().
	workers := runtime.GOMAXPROCS(0)
	shard := (ps.Len() + workers - 1) / workers
	if shard < 1 {
		shard = 1
	}
	type partial struct {
		counts []int64
		sums   [][]float64
	}
	var wg sync.WaitGroup
	parts := make([]partial, 0, workers)
	for s := 0; s < ps.Len(); s += shard {
		e := s + shard
		if e > ps.Len() {
			e = ps.Len()
		}
		p := partial{counts: make([]int64, cells), sums: make([][]float64, len(cfg.Attrs))}
		for i := range p.sums {
			p.sums[i] = make([]float64, cells)
		}
		parts = append(parts, p)
		wg.Add(1)
		go func(s, e int, p partial) {
			defer wg.Done()
			_ = data.WalkBlocks(src, s, e, func(blk *data.Block, bs, be int) error {
				base := blk.Base
				for i := bs; i < be; i++ {
					j := i - base
					pt := geom.Point{X: blk.X[j], Y: blk.Y[j]}
					bin := 0
					if c.cfg.TimeBin > 0 && blk.T != nil {
						bin = int((blk.T[j] - c.start) / c.cfg.TimeBin)
					}
					tree.SearchPoint(pt, func(id int32) {
						if !regions[id].Poly.Contains(pt) {
							return
						}
						cell := bin*c.nr + int(id)
						p.counts[cell]++
						for a, ai := range attrIdxs {
							//lint:ignore floataccum build hot path; error bounded per shard, partials merged below
							p.sums[a][cell] += blk.Attr[ai][j]
						}
					})
				}
				return nil
			})
		}(s, e, p)
	}
	wg.Wait()
	for _, p := range parts {
		for i, v := range p.counts {
			c.counts[i] += v
		}
		for a, name := range cfg.Attrs {
			dst := c.sums[name]
			for i, v := range p.sums[a] {
				//lint:ignore floataccum merge of at most GOMAXPROCS shard partials per cell
				dst[i] += v
			}
		}
	}
	return c, nil
}

// Name implements core.Joiner.
func (c *Cube) Name() string { return "pre-aggregation-cube" }

// Bins returns the number of time bins.
func (c *Cube) Bins() int { return c.bins }

// BinStart returns the start timestamp of bin b.
func (c *Cube) BinStart(b int) int64 { return c.start + int64(b)*c.cfg.TimeBin }

// MemoryCells returns the number of materialized (bin × region) cells — the
// cube's space cost.
func (c *Cube) MemoryCells() int { return len(c.counts) }

// CanServe reports whether the request falls inside the cube's canned
// query family, returning a wrapped ErrUnsupported naming the first
// violation otherwise. The query planner uses this to route queries.
func (c *Cube) CanServe(req core.Request) error {
	if req.Regions != c.cfg.Regions {
		return fmt.Errorf("%w: region set %q is not the cube's layer",
			ErrUnsupported, req.Regions.Name)
	}
	if req.Points != c.points {
		return fmt.Errorf("%w: point set %q is not the cube's base data",
			ErrUnsupported, req.Points.Name)
	}
	if len(req.Filters) > 0 {
		return fmt.Errorf("%w: ad-hoc filter on %q", ErrUnsupported, req.Filters[0].Attr)
	}
	if req.Agg == core.Min || req.Agg == core.Max {
		return fmt.Errorf("%w: %v not materialized (cube stores counts and sums)",
			ErrUnsupported, req.Agg)
	}
	if req.Agg.NeedsAttr() {
		if _, ok := c.sums[req.Attr]; !ok {
			return fmt.Errorf("%w: attribute %q not materialized", ErrUnsupported, req.Attr)
		}
	}
	if req.Time != nil {
		if c.cfg.TimeBin <= 0 {
			return fmt.Errorf("%w: cube has no time dimension", ErrUnsupported)
		}
		if (req.Time.Start-c.start)%c.cfg.TimeBin != 0 ||
			(req.Time.End-c.start)%c.cfg.TimeBin != 0 {
			return fmt.Errorf("%w: time range not aligned to %ds bins",
				ErrUnsupported, c.cfg.TimeBin)
		}
	}
	return nil
}

// Join implements core.Joiner for the canned query family. It returns
// ErrUnsupported (wrapped with the reason) for anything the cube cannot
// answer exactly.
func (c *Cube) Join(req core.Request) (*core.Result, error) {
	if err := c.CanServe(req); err != nil {
		return nil, err
	}

	lo, hi := 0, c.bins // bin range [lo, hi)
	if req.Time != nil {
		lo = int((req.Time.Start - c.start) / c.cfg.TimeBin)
		hi = int((req.Time.End - c.start) / c.cfg.TimeBin)
		if lo < 0 {
			lo = 0
		}
		if hi > c.bins {
			hi = c.bins
		}
		if hi < lo {
			hi = lo
		}
	}

	res := &core.Result{
		Stats:     make([]core.RegionStat, c.nr),
		Algorithm: c.Name(),
	}
	var sums []float64
	var sumAcc []fsum.Kahan
	if req.Agg.NeedsAttr() {
		sums = c.sums[req.Attr]
		// A year-long range folds hundreds of bins per region; compensate
		// so the rolled-up sums match a direct scan to the last digit.
		sumAcc = make([]fsum.Kahan, c.nr)
	}
	for b := lo; b < hi; b++ {
		base := b * c.nr
		for k := 0; k < c.nr; k++ {
			res.Stats[k].Count += c.counts[base+k]
			if sums != nil {
				sumAcc[k].Add(sums[base+k])
			}
		}
	}
	if sumAcc != nil {
		for k := range res.Stats {
			res.Stats[k].Sum = sumAcc[k].Sum()
		}
	}
	return res, nil
}

// Series returns the per-bin aggregate values for one region — the canned
// time series the exploration view can read straight out of the cube.
func (c *Cube) Series(regionIdx int, agg core.Agg, attr string) ([]float64, error) {
	if regionIdx < 0 || regionIdx >= c.nr {
		return nil, fmt.Errorf("cube: region index %d out of range [0,%d)", regionIdx, c.nr)
	}
	var sums []float64
	if agg.NeedsAttr() {
		s, ok := c.sums[attr]
		if !ok {
			return nil, fmt.Errorf("%w: attribute %q not materialized", ErrUnsupported, attr)
		}
		sums = s
	}
	out := make([]float64, c.bins)
	for b := 0; b < c.bins; b++ {
		cell := b*c.nr + regionIdx
		st := core.RegionStat{Count: c.counts[cell]}
		if sums != nil {
			st.Sum = sums[cell]
		}
		out[b] = st.Value(agg)
	}
	return out, nil
}
