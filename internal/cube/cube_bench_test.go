package cube

import (
	"testing"

	"repro/internal/core"
)

func BenchmarkCubeBuild(b *testing.B) {
	ps, rs := cubeScene(100_000, 1)
	cfg := Config{Regions: rs, TimeBin: 3600, Attrs: []string{"v"}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(ps, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCubeJoin(b *testing.B) {
	ps, rs := cubeScene(100_000, 2)
	c, err := Build(ps, Config{Regions: rs, TimeBin: 3600, Attrs: []string{"v"}})
	if err != nil {
		b.Fatal(err)
	}
	req := core.Request{Points: ps, Regions: rs, Agg: core.Avg, Attr: "v",
		Time: &core.TimeFilter{Start: c.BinStart(1), End: c.BinStart(6)}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Join(req); err != nil {
			b.Fatal(err)
		}
	}
}
