package index

import (
	"repro/internal/data"
	"repro/internal/geom"
)

// Quadtree is a PR (point-region) quadtree over a point set: leaves hold up
// to a fixed bucket of point indices, splitting into four quadrants when
// they overflow. It adapts to the heavy spatial skew of urban data better
// than the uniform grid.
type Quadtree struct {
	ps     *data.PointSet
	root   *qnode
	bucket int
	// maxDepth bounds splitting so coincident points cannot recurse
	// forever.
	maxDepth int
}

type qnode struct {
	box      geom.BBox
	ids      []int32 // leaf payload; nil for internal nodes
	children *[4]qnode
}

// QuadtreeBucket is the default leaf capacity.
const QuadtreeBucket = 64

// BuildQuadtree indexes the point set with the given leaf bucket size
// (<=0 uses QuadtreeBucket).
func BuildQuadtree(ps *data.PointSet, bucket int) *Quadtree {
	if bucket <= 0 {
		bucket = QuadtreeBucket
	}
	qt := &Quadtree{ps: ps, bucket: bucket, maxDepth: 24}
	b := ps.Bounds()
	if b.IsEmpty() {
		b = geom.BBox{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	qt.root = &qnode{box: b}
	for i := 0; i < ps.Len(); i++ {
		qt.insert(qt.root, int32(i), 0)
	}
	return qt
}

// PointSet returns the indexed point set.
func (qt *Quadtree) PointSet() *data.PointSet { return qt.ps }

func (qt *Quadtree) insert(n *qnode, id int32, depth int) {
	for {
		if n.children == nil {
			n.ids = append(n.ids, id)
			if len(n.ids) > qt.bucket && depth < qt.maxDepth {
				qt.split(n, depth)
			}
			return
		}
		n = &n.children[qt.quadrant(n, id)]
		depth++
	}
}

func (qt *Quadtree) quadrant(n *qnode, id int32) int {
	c := n.box.Center()
	q := 0
	if qt.ps.X[id] > c.X {
		q |= 1
	}
	if qt.ps.Y[id] > c.Y {
		q |= 2
	}
	return q
}

func (qt *Quadtree) split(n *qnode, depth int) {
	c := n.box.Center()
	b := n.box
	n.children = &[4]qnode{
		{box: geom.BBox{MinX: b.MinX, MinY: b.MinY, MaxX: c.X, MaxY: c.Y}},
		{box: geom.BBox{MinX: c.X, MinY: b.MinY, MaxX: b.MaxX, MaxY: c.Y}},
		{box: geom.BBox{MinX: b.MinX, MinY: c.Y, MaxX: c.X, MaxY: b.MaxY}},
		{box: geom.BBox{MinX: c.X, MinY: c.Y, MaxX: b.MaxX, MaxY: b.MaxY}},
	}
	ids := n.ids
	n.ids = nil
	for _, id := range ids {
		qt.insert(&n.children[qt.quadrant(n, id)], id, depth+1)
	}
}

// CandidatesInBBox calls visit for every point index stored in a leaf whose
// box overlaps b — a superset of the points inside b.
func (qt *Quadtree) CandidatesInBBox(b geom.BBox, visit func(id int32)) {
	var walk func(n *qnode)
	walk = func(n *qnode) {
		if !n.box.Intersects(b) {
			return
		}
		if n.children == nil {
			for _, id := range n.ids {
				visit(id)
			}
			return
		}
		for i := range n.children {
			walk(&n.children[i])
		}
	}
	walk(qt.root)
}

// Depth returns the maximum depth of the tree (root = 0), a structural
// diagnostic used by tests.
func (qt *Quadtree) Depth() int {
	var walk func(n *qnode) int
	walk = func(n *qnode) int {
		if n.children == nil {
			return 0
		}
		d := 0
		for i := range n.children {
			if c := walk(&n.children[i]); c > d {
				d = c
			}
		}
		return d + 1
	}
	return walk(qt.root)
}

// Size returns the number of indexed points, another structural check.
func (qt *Quadtree) Size() int {
	var walk func(n *qnode) int
	walk = func(n *qnode) int {
		if n.children == nil {
			return len(n.ids)
		}
		s := 0
		for i := range n.children {
			s += walk(&n.children[i])
		}
		return s
	}
	return walk(qt.root)
}
