package index

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/geom"
)

func randomPoints(n int, seed int64, bounds geom.BBox) *data.PointSet {
	rng := rand.New(rand.NewSource(seed))
	ps := &data.PointSet{
		Name: "rand",
		X:    make([]float64, n),
		Y:    make([]float64, n),
		T:    make([]int64, n),
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		ps.X[i] = bounds.MinX + rng.Float64()*bounds.Width()
		ps.Y[i] = bounds.MinY + rng.Float64()*bounds.Height()
		ps.T[i] = int64(i)
		vals[i] = rng.Float64() * 10
	}
	ps.Attrs = []data.Column{{Name: "v", Values: vals}}
	return ps
}

func unitBounds() geom.BBox { return geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100} }

func TestBuildGridStructure(t *testing.T) {
	ps := randomPoints(1000, 1, unitBounds())
	g := BuildGrid(ps, 8)
	if g.CellCount() != 64 {
		t.Fatalf("cells = %d, want 64", g.CellCount())
	}
	// Every point appears exactly once across all cells.
	seen := make([]int, ps.Len())
	for c := 0; c < g.CellCount(); c++ {
		for _, id := range g.Cell(c) {
			seen[id]++
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("point %d appears %d times", i, n)
		}
	}
	// Each point is in the cell whose box contains it.
	for c := 0; c < g.CellCount(); c++ {
		for _, id := range g.Cell(c) {
			if got := g.cellAt(ps.X[id], ps.Y[id]); got != c {
				t.Fatalf("point %d stored in cell %d but maps to %d", id, c, got)
			}
		}
	}
}

func TestGridCandidatesSuperset(t *testing.T) {
	ps := randomPoints(2000, 2, unitBounds())
	g := BuildGrid(ps, 16)
	rng := rand.New(rand.NewSource(3))
	for iter := 0; iter < 100; iter++ {
		b := geom.NewBBox(rng.Float64()*100, rng.Float64()*100,
			rng.Float64()*100, rng.Float64()*100)
		got := map[int32]bool{}
		g.CandidatesInBBox(b, func(id int32) {
			if got[id] {
				t.Fatalf("candidate %d visited twice", id)
			}
			got[id] = true
		})
		for i := 0; i < ps.Len(); i++ {
			if b.Contains(geom.Point{X: ps.X[i], Y: ps.Y[i]}) && !got[int32(i)] {
				t.Fatalf("point %d inside box missing from candidates", i)
			}
		}
	}
}

func TestGridDegenerate(t *testing.T) {
	empty := &data.PointSet{Name: "empty"}
	g := BuildGrid(empty, 8)
	count := 0
	g.CandidatesInBBox(unitBounds(), func(int32) { count++ })
	if count != 0 {
		t.Error("empty grid should have no candidates")
	}
	// All points identical.
	same := &data.PointSet{X: []float64{5, 5, 5}, Y: []float64{5, 5, 5}}
	g = BuildGrid(same, 4)
	count = 0
	g.CandidatesInBBox(geom.BBox{MinX: 4, MinY: 4, MaxX: 6, MaxY: 6}, func(int32) { count++ })
	if count != 3 {
		t.Errorf("coincident points candidates = %d, want 3", count)
	}
	if BuildGrid(empty, 0).CellCount() != 1 {
		t.Error("n=0 should clamp")
	}
}

func TestDefaultGridSide(t *testing.T) {
	if s := DefaultGridSide(0); s != 1 {
		t.Errorf("side(0) = %d", s)
	}
	if s := DefaultGridSide(100); s != 16 {
		t.Errorf("side(100) = %d, want floor 16", s)
	}
	if s := DefaultGridSide(1 << 30); s != 2048 {
		t.Errorf("side(huge) = %d, want cap 2048", s)
	}
	if s := DefaultGridSide(4_000_000); s < 100 || s > 1000 {
		t.Errorf("side(4M) = %d, want a few hundred", s)
	}
}

func TestQuadtreeStructure(t *testing.T) {
	ps := randomPoints(5000, 4, unitBounds())
	qt := BuildQuadtree(ps, 32)
	if qt.Size() != 5000 {
		t.Fatalf("size = %d, want 5000", qt.Size())
	}
	if qt.Depth() < 2 {
		t.Errorf("depth = %d, want splits to have happened", qt.Depth())
	}
}

func TestQuadtreeCandidatesSuperset(t *testing.T) {
	ps := randomPoints(3000, 5, unitBounds())
	qt := BuildQuadtree(ps, 16)
	rng := rand.New(rand.NewSource(6))
	for iter := 0; iter < 100; iter++ {
		b := geom.NewBBox(rng.Float64()*100, rng.Float64()*100,
			rng.Float64()*100, rng.Float64()*100)
		got := map[int32]bool{}
		qt.CandidatesInBBox(b, func(id int32) { got[id] = true })
		for i := 0; i < ps.Len(); i++ {
			if b.Contains(geom.Point{X: ps.X[i], Y: ps.Y[i]}) && !got[int32(i)] {
				t.Fatalf("point %d inside box missing from quadtree candidates", i)
			}
		}
	}
}

func TestQuadtreeCoincidentPoints(t *testing.T) {
	// More coincident points than the bucket size must not recurse forever.
	n := 500
	ps := &data.PointSet{X: make([]float64, n), Y: make([]float64, n)}
	for i := range ps.X {
		ps.X[i], ps.Y[i] = 42, 42
	}
	done := make(chan *Quadtree, 1)
	go func() { done <- BuildQuadtree(ps, 8) }()
	select {
	case qt := <-done:
		if qt.Size() != n {
			t.Errorf("size = %d, want %d", qt.Size(), n)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("BuildQuadtree hung on coincident points")
	}
}

func TestRTreeSearchPoint(t *testing.T) {
	boxes := []geom.BBox{
		{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		{MinX: 5, MinY: 5, MaxX: 15, MaxY: 15},
		{MinX: 20, MinY: 20, MaxX: 30, MaxY: 30},
	}
	tr := BuildRTree(boxes)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
	got := map[int32]bool{}
	tr.SearchPoint(geom.Pt(7, 7), func(id int32) { got[id] = true })
	if !got[0] || !got[1] || got[2] || len(got) != 2 {
		t.Errorf("SearchPoint(7,7) = %v, want {0,1}", got)
	}
	got = map[int32]bool{}
	tr.SearchPoint(geom.Pt(100, 100), func(id int32) { got[id] = true })
	if len(got) != 0 {
		t.Errorf("SearchPoint far away = %v, want none", got)
	}
}

func TestRTreeSearchAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 800 // forces several levels at fanout 16
	boxes := make([]geom.BBox, n)
	for i := range boxes {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		w, h := rng.Float64()*30, rng.Float64()*30
		boxes[i] = geom.BBox{MinX: cx, MinY: cy, MaxX: cx + w, MaxY: cy + h}
	}
	tr := BuildRTree(boxes)
	if tr.Height() < 2 {
		t.Errorf("height = %d, want a multi-level tree", tr.Height())
	}
	for iter := 0; iter < 200; iter++ {
		p := geom.Pt(rng.Float64()*1000, rng.Float64()*1000)
		got := map[int32]bool{}
		tr.SearchPoint(p, func(id int32) {
			if got[id] {
				t.Fatalf("payload %d reported twice", id)
			}
			got[id] = true
		})
		for i, b := range boxes {
			if b.Contains(p) != got[int32(i)] {
				t.Fatalf("iter %d: box %d contains=%v reported=%v", iter, i, b.Contains(p), got[int32(i)])
			}
		}
	}
	// Box search.
	for iter := 0; iter < 100; iter++ {
		q := geom.NewBBox(rng.Float64()*1000, rng.Float64()*1000,
			rng.Float64()*1000, rng.Float64()*1000)
		got := map[int32]bool{}
		tr.SearchBBox(q, func(id int32) { got[id] = true })
		for i, b := range boxes {
			if b.Intersects(q) != got[int32(i)] {
				t.Fatalf("iter %d: box %d intersects=%v reported=%v", iter, i, b.Intersects(q), got[int32(i)])
			}
		}
	}
}

func TestRTreeEmpty(t *testing.T) {
	tr := BuildRTree(nil)
	count := 0
	tr.SearchPoint(geom.Pt(0, 0), func(int32) { count++ })
	if count != 0 {
		t.Error("empty tree should return nothing")
	}
}
