package index

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
)

// testScene builds a point set plus a jittered Voronoi region layer.
func testScene(np, nr int, seed int64) (*data.PointSet, *data.RegionSet) {
	ps := randomPoints(np, seed, unitBounds())
	rs := data.VoronoiRegions("nbhd", unitBounds(), nr, seed+1,
		data.VoronoiOptions{JitterFrac: 0.08})
	return ps, rs
}

func statsEqual(t *testing.T, a, b *core.Result, context string) {
	t.Helper()
	if len(a.Stats) != len(b.Stats) {
		t.Fatalf("%s: stat lengths %d vs %d", context, len(a.Stats), len(b.Stats))
	}
	for k := range a.Stats {
		if a.Stats[k].Count != b.Stats[k].Count {
			t.Fatalf("%s: region %d count %d vs %d",
				context, k, a.Stats[k].Count, b.Stats[k].Count)
		}
		if math.Abs(a.Stats[k].Sum-b.Stats[k].Sum) > 1e-6*math.Max(1, math.Abs(a.Stats[k].Sum)) {
			t.Fatalf("%s: region %d sum %v vs %v",
				context, k, a.Stats[k].Sum, b.Stats[k].Sum)
		}
	}
}

func TestAllIndexJoinsMatchBruteForce(t *testing.T) {
	ps, rs := testScene(5000, 25, 11)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}

	want, err := (&BruteForce{}).Join(req)
	if err != nil {
		t.Fatal(err)
	}
	joiners := []core.Joiner{&GridJoin{Side: 32}, &QuadJoin{Bucket: 32}, &RTreeJoin{}}
	for _, j := range joiners {
		got, err := j.Join(req)
		if err != nil {
			t.Fatalf("%s: %v", j.Name(), err)
		}
		statsEqual(t, got, want, j.Name())
		if got.Algorithm != j.Name() {
			t.Errorf("%s: result algorithm = %q", j.Name(), got.Algorithm)
		}
	}
}

func TestJoinsWithFiltersMatch(t *testing.T) {
	ps, rs := testScene(4000, 16, 13)
	req := core.Request{
		Points: ps, Regions: rs, Agg: core.Count,
		Filters: []core.Filter{{Attr: "v", Min: 2, Max: 7}},
		Time:    &core.TimeFilter{Start: 500, End: 3000},
	}
	want, err := (&BruteForce{}).Join(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, j := range []core.Joiner{&GridJoin{}, &QuadJoin{}, &RTreeJoin{}} {
		got, err := j.Join(req)
		if err != nil {
			t.Fatalf("%s: %v", j.Name(), err)
		}
		statsEqual(t, got, want, j.Name())
	}
	// The filter must actually bite: total under filter < total unfiltered.
	unfiltered, _ := (&BruteForce{}).Join(core.Request{Points: ps, Regions: rs, Agg: core.Count})
	if want.TotalCount() >= unfiltered.TotalCount() {
		t.Errorf("filtered total %d should be < unfiltered %d",
			want.TotalCount(), unfiltered.TotalCount())
	}
	if want.TotalCount() == 0 {
		t.Error("filtered total is 0; filter swallowed everything (bad test data)")
	}
}

func TestBruteForceCountConservationOnPartition(t *testing.T) {
	// Unjittered Voronoi partitions the bounds, so every point falls in
	// exactly one region (up to boundary ties): total equals point count.
	ps := randomPoints(3000, 17, unitBounds())
	rs := data.VoronoiRegions("part", unitBounds(), 20, 18, data.VoronoiOptions{})
	res, err := (&BruteForce{}).Join(core.Request{Points: ps, Regions: rs, Agg: core.Count})
	if err != nil {
		t.Fatal(err)
	}
	got := res.TotalCount()
	// Boundary ties can drop or duplicate a handful of points.
	if got < int64(ps.Len())-5 || got > int64(ps.Len())+5 {
		t.Errorf("partition total = %d, want ~%d", got, ps.Len())
	}
}

func TestJoinAggregates(t *testing.T) {
	// Single square region with known contents.
	ps := &data.PointSet{
		Name: "known",
		X:    []float64{1, 2, 3, 50},
		Y:    []float64{1, 2, 3, 50},
		T:    []int64{0, 1, 2, 3},
		Attrs: []data.Column{
			{Name: "v", Values: []float64{10, 20, 30, 40}},
		},
	}
	rs := &data.RegionSet{Name: "one", Regions: []data.Region{{
		ID: 0, Name: "sq",
		Poly: geom.NewPolygon(geom.RectRing(geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10})),
	}}}

	bf := &BruteForce{}
	count, _ := bf.Join(core.Request{Points: ps, Regions: rs, Agg: core.Count})
	if count.Stats[0].Count != 3 {
		t.Errorf("count = %d, want 3", count.Stats[0].Count)
	}
	sum, _ := bf.Join(core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"})
	if sum.Stats[0].Sum != 60 {
		t.Errorf("sum = %v, want 60", sum.Stats[0].Sum)
	}
	avg, _ := bf.Join(core.Request{Points: ps, Regions: rs, Agg: core.Avg, Attr: "v"})
	if got := avg.Value(0, core.Avg); got != 20 {
		t.Errorf("avg = %v, want 20", got)
	}
}

func TestJoinValidationErrors(t *testing.T) {
	ps, rs := testScene(100, 4, 19)
	bad := []core.Request{
		{Points: nil, Regions: rs, Agg: core.Count},
		{Points: ps, Regions: rs, Agg: core.Sum, Attr: "nope"},
		{Points: ps, Regions: rs, Agg: core.Count,
			Filters: []core.Filter{{Attr: "nope", Min: 0, Max: 1}}},
	}
	for i, req := range bad {
		for _, j := range []core.Joiner{&BruteForce{}, &GridJoin{}, &QuadJoin{}, &RTreeJoin{}} {
			if _, err := j.Join(req); err == nil {
				t.Errorf("case %d: %s accepted invalid request", i, j.Name())
			}
		}
	}
}

func TestIndexReusedAcrossQueries(t *testing.T) {
	ps, rs := testScene(2000, 8, 23)
	g := &GridJoin{}
	g.Prepare(ps)
	idxBefore := g.cached
	if _, err := g.Join(core.Request{Points: ps, Regions: rs, Agg: core.Count}); err != nil {
		t.Fatal(err)
	}
	if g.cached != idxBefore {
		t.Error("grid index should be reused for the same point set")
	}
	// A different point set triggers a rebuild.
	ps2 := randomPoints(500, 29, unitBounds())
	if _, err := g.Join(core.Request{Points: ps2, Regions: rs, Agg: core.Count}); err != nil {
		t.Fatal(err)
	}
	if g.cached == idxBefore {
		t.Error("grid index should rebuild for a new point set")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	ps, rs := testScene(3000, 12, 31)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	serial, err := (&BruteForce{Workers: 1}).Join(req)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := (&BruteForce{Workers: 8}).Join(req)
	if err != nil {
		t.Fatal(err)
	}
	statsEqual(t, parallel, serial, "brute-force parallel vs serial")

	rserial, _ := (&RTreeJoin{Workers: 1}).Join(req)
	rparallel, _ := (&RTreeJoin{Workers: 8}).Join(req)
	statsEqual(t, rparallel, rserial, "rtree parallel vs serial")
}

func TestEmptyInputs(t *testing.T) {
	rs := data.GridRegions("g", unitBounds(), 2, 2)
	empty := &data.PointSet{Name: "empty"}
	for _, j := range []core.Joiner{&BruteForce{}, &GridJoin{}, &QuadJoin{}, &RTreeJoin{}} {
		res, err := j.Join(core.Request{Points: empty, Regions: rs, Agg: core.Count})
		if err != nil {
			t.Fatalf("%s on empty points: %v", j.Name(), err)
		}
		if res.TotalCount() != 0 {
			t.Errorf("%s: empty points total = %d", j.Name(), res.TotalCount())
		}
	}
	// Empty regions.
	ps := randomPoints(100, 1, unitBounds())
	emptyRS := &data.RegionSet{Name: "none"}
	for _, j := range []core.Joiner{&BruteForce{}, &GridJoin{}, &RTreeJoin{}} {
		res, err := j.Join(core.Request{Points: ps, Regions: emptyRS, Agg: core.Count})
		if err != nil {
			t.Fatalf("%s on empty regions: %v", j.Name(), err)
		}
		if len(res.Stats) != 0 {
			t.Errorf("%s: empty regions stats = %d", j.Name(), len(res.Stats))
		}
	}
}
