package index

// Edge-case coverage for the PR quadtree: degenerate query geometry,
// queries that miss the grid entirely, and points sitting exactly on the
// NYC mercator bounds — the coordinates the geoblocks hierarchy and the
// raster join both clamp, so the candidate index must not lose them.

import (
	"testing"

	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/mercator"
)

func collect(qt *Quadtree, b geom.BBox) map[int32]bool {
	got := map[int32]bool{}
	qt.CandidatesInBBox(b, func(id int32) { got[id] = true })
	return got
}

// TestQuadtreeDegenerateQueries: zero-area boxes (a point, a vertical
// segment, a horizontal segment) are legal queries — candidates must
// still be a superset of the exact matches.
func TestQuadtreeDegenerateQueries(t *testing.T) {
	ps := &data.PointSet{Name: "t",
		X: []float64{10, 20, 20, 30, 20},
		Y: []float64{10, 20, 30, 30, 20},
	}
	qt := BuildQuadtree(ps, 2)

	cases := []struct {
		name string
		box  geom.BBox
		want []int32 // exact ids inside the box
	}{
		{"point-hit", geom.BBox{MinX: 20, MinY: 20, MaxX: 20, MaxY: 20}, []int32{1, 4}},
		{"point-miss", geom.BBox{MinX: 11, MinY: 11, MaxX: 11, MaxY: 11}, nil},
		{"vseg", geom.BBox{MinX: 20, MinY: 0, MaxX: 20, MaxY: 100}, []int32{1, 2, 4}},
		{"hseg", geom.BBox{MinX: 0, MinY: 30, MaxX: 100, MaxY: 30}, []int32{2, 3}},
	}
	for _, tc := range cases {
		got := collect(qt, tc.box)
		for _, id := range tc.want {
			if !got[id] {
				t.Errorf("%s: exact match %d missing from candidates", tc.name, id)
			}
		}
		// Superset is allowed, but everything visited must come from a
		// leaf overlapping the box — sanity: no id outside the pointset.
		for id := range got {
			if id < 0 || int(id) >= ps.Len() {
				t.Errorf("%s: candidate %d out of range", tc.name, id)
			}
		}
	}
}

// TestQuadtreeQueryOutsideGrid: boxes strictly outside the indexed bounds
// (including just past an edge by one ULP-ish offset) yield no candidates,
// and inverted boxes visit nothing rather than everything.
func TestQuadtreeQueryOutsideGrid(t *testing.T) {
	ps := &data.PointSet{Name: "t",
		X: []float64{0, 500, 1000},
		Y: []float64{0, 500, 1000},
	}
	qt := BuildQuadtree(ps, 1)

	outside := []geom.BBox{
		{MinX: 1500, MinY: 1500, MaxX: 2000, MaxY: 2000},
		{MinX: -500, MinY: -500, MaxX: -0.0001, MaxY: -0.0001},
		{MinX: 1000.0001, MinY: 0, MaxX: 2000, MaxY: 1000},
		{MinX: 0, MinY: -100, MaxX: 1000, MaxY: -0.0001},
	}
	for i, b := range outside {
		if got := collect(qt, b); len(got) != 0 {
			t.Errorf("outside box %d returned %d candidates", i, len(got))
		}
	}
}

// TestQuadtreeMercatorBoundsPoints: points exactly on the projected NYC
// bounds — corners and edge midpoints — are indexed and retrievable both
// by the full-bounds query and by tight zero-area probes at the boundary.
func TestQuadtreeMercatorBoundsPoints(t *testing.T) {
	b := mercator.NYCBounds()
	xs := []float64{b.MinX, b.MaxX, b.MinX, b.MaxX, (b.MinX + b.MaxX) / 2, b.MinX, b.MaxX, (b.MinX + b.MaxX) / 2}
	ys := []float64{b.MinY, b.MinY, b.MaxY, b.MaxY, b.MinY, (b.MinY + b.MaxY) / 2, (b.MinY + b.MaxY) / 2, b.MaxY}
	ps := &data.PointSet{Name: "nyc", X: xs, Y: ys}
	qt := BuildQuadtree(ps, 2)

	if qt.Size() != len(xs) {
		t.Fatalf("indexed %d points, want %d", qt.Size(), len(xs))
	}
	all := collect(qt, b)
	for i := range xs {
		if !all[int32(i)] {
			t.Errorf("bounds point %d (%g,%g) missing from full-bounds query", i, xs[i], ys[i])
		}
	}
	for i := range xs {
		probe := geom.BBox{MinX: xs[i], MinY: ys[i], MaxX: xs[i], MaxY: ys[i]}
		if !collect(qt, probe)[int32(i)] {
			t.Errorf("bounds point %d not found by zero-area probe at its own location", i)
		}
	}
}

// TestQuadtreeCoincidentDepthBound: thousands of identical points cannot
// split forever — the depth cap holds and every point stays retrievable.
func TestQuadtreeCoincidentDepthBound(t *testing.T) {
	const n = 5000
	ps := &data.PointSet{Name: "co", X: make([]float64, n), Y: make([]float64, n)}
	for i := range ps.X {
		ps.X[i], ps.Y[i] = 123.456, 789.012
	}
	qt := BuildQuadtree(ps, 4)
	if d := qt.Depth(); d > 24 {
		t.Fatalf("depth %d exceeds the 24-level cap", d)
	}
	if qt.Size() != n {
		t.Fatalf("size %d, want %d", qt.Size(), n)
	}
	got := collect(qt, geom.BBox{MinX: 123.456, MinY: 789.012, MaxX: 123.456, MaxY: 789.012})
	if len(got) != n {
		t.Fatalf("probe at the stack found %d of %d points", len(got), n)
	}
}
