package index

import (
	"sort"

	"repro/internal/geom"
)

// RTree is a static STR-packed (Sort-Tile-Recursive) R-tree over rectangles
// with integer payloads. Urbane uses it over region bounding boxes so each
// point probe touches only the regions whose boxes contain it.
type RTree struct {
	root *rnode
	size int
}

type rnode struct {
	box      geom.BBox
	leaf     bool
	ids      []int32     // leaf payloads
	boxes    []geom.BBox // leaf payload boxes, parallel to ids
	children []*rnode
}

// RTreeFanout is the node capacity used by the STR packing.
const RTreeFanout = 16

type rentry struct {
	box geom.BBox
	id  int32
}

// BuildRTree bulk-loads an R-tree over the given boxes; payload i is the
// box's position in the input slice.
func BuildRTree(boxes []geom.BBox) *RTree {
	entries := make([]rentry, len(boxes))
	for i, b := range boxes {
		entries[i] = rentry{box: b, id: int32(i)}
	}
	t := &RTree{size: len(boxes)}
	t.root = strPack(entries)
	return t
}

// strPack recursively packs entries into nodes using sort-tile-recursive.
func strPack(entries []rentry) *rnode {
	if len(entries) <= RTreeFanout {
		n := &rnode{leaf: true, box: geom.EmptyBBox()}
		for _, e := range entries {
			n.ids = append(n.ids, e.id)
			n.boxes = append(n.boxes, e.box)
			n.box = n.box.Union(e.box)
		}
		return n
	}
	// Sort by center X, slice into vertical strips of ~sqrt(#slabs) leaves,
	// sort each strip by center Y, cut into leaf-sized runs.
	sort.Slice(entries, func(i, j int) bool {
		return entries[i].box.Center().X < entries[j].box.Center().X
	})
	leaves := (len(entries) + RTreeFanout - 1) / RTreeFanout
	stripCount := isqrt(leaves)
	if stripCount < 1 {
		stripCount = 1
	}
	perStrip := (len(entries) + stripCount - 1) / stripCount

	var children []*rnode
	for s := 0; s < len(entries); s += perStrip {
		e := min(s+perStrip, len(entries))
		strip := entries[s:e]
		sort.Slice(strip, func(i, j int) bool {
			return strip[i].box.Center().Y < strip[j].box.Center().Y
		})
		for r := 0; r < len(strip); r += RTreeFanout {
			re := min(r+RTreeFanout, len(strip))
			leaf := &rnode{leaf: true, box: geom.EmptyBBox()}
			for _, en := range strip[r:re] {
				leaf.ids = append(leaf.ids, en.id)
				leaf.boxes = append(leaf.boxes, en.box)
				leaf.box = leaf.box.Union(en.box)
			}
			children = append(children, leaf)
		}
	}
	// Pack upward until a single root remains.
	for len(children) > 1 {
		var parents []*rnode
		for i := 0; i < len(children); i += RTreeFanout {
			e := min(i+RTreeFanout, len(children))
			p := &rnode{box: geom.EmptyBBox()}
			for _, c := range children[i:e] {
				p.children = append(p.children, c)
				p.box = p.box.Union(c.box)
			}
			parents = append(parents, p)
		}
		children = parents
	}
	return children[0]
}

// Len returns the number of indexed boxes.
func (t *RTree) Len() int { return t.size }

// SearchPoint calls visit with the payload of every box containing p.
func (t *RTree) SearchPoint(p geom.Point, visit func(id int32)) {
	if t.root == nil {
		return
	}
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if !n.box.Contains(p) {
			return
		}
		if n.leaf {
			for i, b := range n.boxes {
				if b.Contains(p) {
					visit(n.ids[i])
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
}

// SearchBBox calls visit with the payload of every box intersecting q.
func (t *RTree) SearchBBox(q geom.BBox, visit func(id int32)) {
	if t.root == nil {
		return
	}
	var walk func(n *rnode)
	walk = func(n *rnode) {
		if !n.box.Intersects(q) {
			return
		}
		if n.leaf {
			for i, b := range n.boxes {
				if b.Intersects(q) {
					visit(n.ids[i])
				}
			}
			return
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
}

// Height returns the tree height (leaf = 1), a structural diagnostic.
func (t *RTree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf || len(n.children) == 0 {
			break
		}
		n = n.children[0]
	}
	return h
}

func isqrt(n int) int {
	if n < 0 {
		return 0
	}
	r := 0
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
