package index

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
)

// BruteForce is the exact reference joiner: every filtered point is tested
// against every region with a bbox pre-check and an exact point-in-polygon
// test. O(P×R); used as ground truth in tests and as the naive baseline.
type BruteForce struct {
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int
}

// Name implements core.Joiner.
func (b *BruteForce) Name() string { return "brute-force" }

// Join implements core.Joiner.
func (b *BruteForce) Join(req core.Request) (*core.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	lo, hi, pred, err := core.PointPredicate(req)
	if err != nil {
		return nil, err
	}
	var attr []float64
	if req.Agg.NeedsAttr() {
		attr = req.Points.Attr(req.Attr)
	}
	res := &core.Result{
		Stats:     make([]core.RegionStat, req.Regions.Len()),
		Algorithm: b.Name(),
	}
	ps := req.Points
	regions := req.Regions.Regions
	parallelRegions(b.Workers, len(regions), func(k int) {
		poly := regions[k].Poly
		bb := poly.BBox()
		var st core.RegionStat
		for i := lo; i < hi; i++ {
			if pred != nil && !pred(i) {
				continue
			}
			p := geom.Point{X: ps.X[i], Y: ps.Y[i]}
			if !bb.Contains(p) || !poly.Contains(p) {
				continue
			}
			if attr != nil {
				st.Observe(attr[i])
			} else {
				st.Count++
			}
		}
		res.Stats[k] = st
	})
	return res, nil
}

// GridJoin is the paper's index-join baseline: points are indexed in a
// uniform grid; each region probes the cells overlapping its bounding box
// and resolves every candidate with an exact point-in-polygon test.
//
// The index is built once per point set and reused across queries (index
// construction is preprocessing in the paper's methodology); call Prepare
// to pay the build cost explicitly.
type GridJoin struct {
	// Side is the grid resolution (cells per side); 0 derives it from the
	// point count.
	Side int
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int

	mu     sync.Mutex
	cached *GridIndex
}

// Name implements core.Joiner.
func (g *GridJoin) Name() string { return "index-join-grid" }

// Prepare builds (or rebuilds) the grid over the point set.
func (g *GridJoin) Prepare(ps *data.PointSet) {
	side := g.Side
	if side <= 0 {
		side = DefaultGridSide(ps.Len())
	}
	idx := BuildGrid(ps, side)
	g.mu.Lock()
	g.cached = idx
	g.mu.Unlock()
}

func (g *GridJoin) indexFor(ps *data.PointSet) *GridIndex {
	g.mu.Lock()
	idx := g.cached
	g.mu.Unlock()
	if idx == nil || idx.PointSet() != ps {
		g.Prepare(ps)
		g.mu.Lock()
		idx = g.cached
		g.mu.Unlock()
	}
	return idx
}

// Join implements core.Joiner.
func (g *GridJoin) Join(req core.Request) (*core.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	idx := g.indexFor(req.Points)
	return probeJoin(req, g.Name(), g.Workers, idx.CandidatesInBBox)
}

// QuadJoin is GridJoin's adaptive sibling: candidates come from a PR
// quadtree, which handles the heavy skew of urban point data with balanced
// buckets.
type QuadJoin struct {
	// Bucket is the leaf capacity (0 = QuadtreeBucket).
	Bucket int
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int

	mu     sync.Mutex
	cached *Quadtree
}

// Name implements core.Joiner.
func (q *QuadJoin) Name() string { return "index-join-quadtree" }

// Prepare builds (or rebuilds) the quadtree over the point set.
func (q *QuadJoin) Prepare(ps *data.PointSet) {
	idx := BuildQuadtree(ps, q.Bucket)
	q.mu.Lock()
	q.cached = idx
	q.mu.Unlock()
}

func (q *QuadJoin) indexFor(ps *data.PointSet) *Quadtree {
	q.mu.Lock()
	idx := q.cached
	q.mu.Unlock()
	if idx == nil || idx.PointSet() != ps {
		q.Prepare(ps)
		q.mu.Lock()
		idx = q.cached
		q.mu.Unlock()
	}
	return idx
}

// Join implements core.Joiner.
func (q *QuadJoin) Join(req core.Request) (*core.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	idx := q.indexFor(req.Points)
	return probeJoin(req, q.Name(), q.Workers, idx.CandidatesInBBox)
}

// probeJoin runs the polygon-probes-point-index join: for each region, pull
// bbox candidates from the index and resolve them exactly.
func probeJoin(req core.Request, name string, workers int,
	candidates func(geom.BBox, func(int32))) (*core.Result, error) {

	lo, hi, pred, err := core.PointPredicate(req)
	if err != nil {
		return nil, err
	}
	var attr []float64
	if req.Agg.NeedsAttr() {
		attr = req.Points.Attr(req.Attr)
	}
	res := &core.Result{
		Stats:     make([]core.RegionStat, req.Regions.Len()),
		Algorithm: name,
	}
	ps := req.Points
	regions := req.Regions.Regions
	parallelRegions(workers, len(regions), func(k int) {
		poly := regions[k].Poly
		bb := poly.BBox()
		var st core.RegionStat
		candidates(bb, func(id int32) {
			i := int(id)
			if i < lo || i >= hi {
				return
			}
			if pred != nil && !pred(i) {
				return
			}
			p := geom.Point{X: ps.X[i], Y: ps.Y[i]}
			if !bb.Contains(p) || !poly.Contains(p) {
				return
			}
			if attr != nil {
				st.Observe(attr[i])
			} else {
				st.Count++
			}
		})
		res.Stats[k] = st
	})
	return res, nil
}

// RTreeJoin runs the join in the opposite direction: regions' bounding
// boxes are indexed in an STR R-tree and every filtered point probes it,
// resolving candidate regions exactly. This direction wins when points
// vastly outnumber regions and most probes touch few candidates.
type RTreeJoin struct {
	// Workers caps parallelism (0 = GOMAXPROCS).
	Workers int

	mu      sync.Mutex
	regions *data.RegionSet
	tree    *RTree
}

// Name implements core.Joiner.
func (r *RTreeJoin) Name() string { return "index-join-rtree" }

// Prepare builds (or rebuilds) the R-tree over the region set.
func (r *RTreeJoin) Prepare(rs *data.RegionSet) {
	boxes := make([]geom.BBox, rs.Len())
	for i, reg := range rs.Regions {
		boxes[i] = reg.Poly.BBox()
	}
	t := BuildRTree(boxes)
	r.mu.Lock()
	r.regions, r.tree = rs, t
	r.mu.Unlock()
}

func (r *RTreeJoin) treeFor(rs *data.RegionSet) *RTree {
	r.mu.Lock()
	t, cachedFor := r.tree, r.regions
	r.mu.Unlock()
	if t == nil || cachedFor != rs {
		r.Prepare(rs)
		r.mu.Lock()
		t = r.tree
		r.mu.Unlock()
	}
	return t
}

// Join implements core.Joiner.
func (r *RTreeJoin) Join(req core.Request) (*core.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	tree := r.treeFor(req.Regions)
	lo, hi, pred, err := core.PointPredicate(req)
	if err != nil {
		return nil, err
	}
	var attr []float64
	if req.Agg.NeedsAttr() {
		attr = req.Points.Attr(req.Attr)
	}
	res := &core.Result{
		Stats:     make([]core.RegionStat, req.Regions.Len()),
		Algorithm: r.Name(),
	}
	ps := req.Points
	regions := req.Regions.Regions

	workers := effectiveWorkers(r.Workers)
	shard := (hi - lo + workers - 1) / workers
	if shard < 1 {
		shard = 1
	}
	// Race audit (sharedwrite-clean): each goroutine writes only its own
	// `part` slice, passed as an argument; the shared `partials`,
	// `res.Stats`, tree and attr are read-only until wg.Wait() establishes
	// the happens-before edge for the single-threaded merge below.
	var wg sync.WaitGroup
	partials := make([][]core.RegionStat, 0, workers)
	for s := lo; s < hi; s += shard {
		e := s + shard
		if e > hi {
			e = hi
		}
		part := make([]core.RegionStat, len(res.Stats))
		partials = append(partials, part)
		wg.Add(1)
		go func(s, e int, part []core.RegionStat) {
			defer wg.Done()
			for i := s; i < e; i++ {
				if pred != nil && !pred(i) {
					continue
				}
				p := geom.Point{X: ps.X[i], Y: ps.Y[i]}
				tree.SearchPoint(p, func(id int32) {
					if !regions[id].Poly.Contains(p) {
						return
					}
					if attr != nil {
						part[id].Observe(attr[i])
					} else {
						part[id].Count++
					}
				})
			}
		}(s, e, part)
	}
	wg.Wait()
	for _, part := range partials {
		for k := range part {
			res.Stats[k].Merge(part[k])
		}
	}
	return res, nil
}

func effectiveWorkers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// parallelRegions fans region indices [0,n) across workers.
//
// Race audit (sharedwrite-clean): the atomic cursor hands each k to one
// goroutine, so callers that write only stats[k] are partitioned;
// wg.Wait() sequences the caller's reads after every write.
func parallelRegions(workers, n int, fn func(k int)) {
	w := effectiveWorkers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for k := 0; k < n; k++ {
			fn(k)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for i := 0; i < w; i++ {
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				fn(k)
			}
		}()
	}
	wg.Wait()
}
