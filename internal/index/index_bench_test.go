package index

import (
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
)

func BenchmarkBuildGrid(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		ps := randomPoints(n, 1, unitBounds())
		side := DefaultGridSide(n)
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				BuildGrid(ps, side)
			}
		})
	}
}

func BenchmarkBuildQuadtree(b *testing.B) {
	ps := randomPoints(100_000, 2, unitBounds())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildQuadtree(ps, 0)
	}
}

func BenchmarkBuildRTree(b *testing.B) {
	rs := data.VoronoiRegions("r", unitBounds(), 1000, 3, data.VoronoiOptions{})
	boxes := make([]geom.BBox, rs.Len())
	for i, r := range rs.Regions {
		boxes[i] = r.Poly.BBox()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildRTree(boxes)
	}
}

func BenchmarkGridCandidates(b *testing.B) {
	ps := randomPoints(100_000, 4, unitBounds())
	g := BuildGrid(ps, DefaultGridSide(ps.Len()))
	box := geom.BBox{MinX: 20, MinY: 20, MaxX: 45, MaxY: 45}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		g.CandidatesInBBox(box, func(int32) { n++ })
	}
}

func BenchmarkRTreeSearchPoint(b *testing.B) {
	rs := data.VoronoiRegions("r", unitBounds(), 1000, 5, data.VoronoiOptions{})
	boxes := make([]geom.BBox, rs.Len())
	for i, r := range rs.Regions {
		boxes[i] = r.Poly.BBox()
	}
	tr := BuildRTree(boxes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := geom.Pt(float64(i%100), float64((i*7)%100))
		tr.SearchPoint(p, func(int32) {})
	}
}

func BenchmarkJoiners(b *testing.B) {
	ps, rs := testScene(100_000, 64, 6)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	grid := &GridJoin{}
	grid.Prepare(ps)
	quad := &QuadJoin{}
	quad.Prepare(ps)
	rtree := &RTreeJoin{}
	rtree.Prepare(rs)
	for _, j := range []core.Joiner{grid, quad, rtree, &BruteForce{}} {
		b.Run(j.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := j.Join(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
