// Package index implements the geometric baselines Raster Join is compared
// against: a brute-force join, a uniform-grid point index, a PR quadtree,
// and an STR-packed R-tree, each with a Joiner adapter over the shared
// Request/Result vocabulary in internal/core.
//
// The index join family is the paper's comparison point: index one side,
// probe with the other, and resolve every candidate with an exact
// point-in-polygon test. It is exact but candidate-bound; Raster Join
// trades bounded approximation for rasterized bulk assignment.
package index

import (
	"math"

	"repro/internal/data"
	"repro/internal/geom"
)

// GridIndex is a uniform grid over a point set: each cell holds the indices
// of the points inside it. The GPU index-join baseline in the paper uses the
// same structure.
type GridIndex struct {
	ps     *data.PointSet
	bounds geom.BBox
	nx, ny int
	cw, ch float64
	// CSR layout: ids[start[c]:start[c+1]] are the points of cell c.
	start []int32
	ids   []int32
}

// BuildGrid indexes the point set on an n×n grid over its bounds. n is
// clamped to at least 1. Points on the max edges land in the last cells.
func BuildGrid(ps *data.PointSet, n int) *GridIndex {
	if n < 1 {
		n = 1
	}
	g := &GridIndex{ps: ps, bounds: ps.Bounds(), nx: n, ny: n}
	if g.bounds.IsEmpty() {
		g.start = make([]int32, 2)
		g.nx, g.ny = 1, 1
		g.cw, g.ch = 1, 1
		return g
	}
	g.cw = g.bounds.Width() / float64(n)
	g.ch = g.bounds.Height() / float64(n)
	if g.cw == 0 {
		g.cw = 1
	}
	if g.ch == 0 {
		g.ch = 1
	}

	cells := n * n
	count := make([]int32, cells+1)
	cellOf := make([]int32, ps.Len())
	for i := 0; i < ps.Len(); i++ {
		c := int32(g.cellAt(ps.X[i], ps.Y[i]))
		cellOf[i] = c
		count[c+1]++
	}
	for c := 0; c < cells; c++ {
		count[c+1] += count[c]
	}
	g.start = count
	g.ids = make([]int32, ps.Len())
	fill := make([]int32, cells)
	for i := 0; i < ps.Len(); i++ {
		c := cellOf[i]
		g.ids[g.start[c]+fill[c]] = int32(i)
		fill[c]++
	}
	return g
}

// PointSet returns the indexed point set.
func (g *GridIndex) PointSet() *data.PointSet { return g.ps }

// CellCount returns the total number of grid cells.
func (g *GridIndex) CellCount() int { return g.nx * g.ny }

// cellAt maps a coordinate (known to be inside bounds) to its cell index.
func (g *GridIndex) cellAt(x, y float64) int {
	cx := int((x - g.bounds.MinX) / g.cw)
	cy := int((y - g.bounds.MinY) / g.ch)
	if cx >= g.nx {
		cx = g.nx - 1
	}
	if cy >= g.ny {
		cy = g.ny - 1
	}
	if cx < 0 {
		cx = 0
	}
	if cy < 0 {
		cy = 0
	}
	return cy*g.nx + cx
}

// Cell returns the point indices stored in cell c.
func (g *GridIndex) Cell(c int) []int32 { return g.ids[g.start[c]:g.start[c+1]] }

// CandidatesInBBox calls visit for every point index whose cell overlaps
// the box. Candidates are a superset of the points inside the box.
func (g *GridIndex) CandidatesInBBox(b geom.BBox, visit func(id int32)) {
	b = b.Intersect(g.bounds)
	if b.IsEmpty() {
		return
	}
	x0 := clampCell(int((b.MinX-g.bounds.MinX)/g.cw), g.nx)
	x1 := clampCell(int((b.MaxX-g.bounds.MinX)/g.cw), g.nx)
	y0 := clampCell(int((b.MinY-g.bounds.MinY)/g.ch), g.ny)
	y1 := clampCell(int((b.MaxY-g.bounds.MinY)/g.ch), g.ny)
	for cy := y0; cy <= y1; cy++ {
		base := cy * g.nx
		for cx := x0; cx <= x1; cx++ {
			for _, id := range g.Cell(base + cx) {
				visit(id)
			}
		}
	}
}

func clampCell(v, n int) int {
	if v < 0 {
		return 0
	}
	if v >= n {
		return n - 1
	}
	return v
}

// DefaultGridSide picks a grid resolution giving ~16 points per occupied
// cell for the given cardinality, the regime where probe cost is balanced
// against cell overhead.
func DefaultGridSide(n int) int {
	if n < 1 {
		return 1
	}
	side := int(math.Sqrt(float64(n) / 16))
	if side < 16 {
		side = 16
	}
	if side > 2048 {
		side = 2048
	}
	return side
}
