package chaos_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/segment"
	"repro/internal/urbane"
	"repro/internal/workload"
)

// buildFramework registers a small two-dataset, two-layer catalog over a
// 1000x1000 world. Construction is fully seeded, so two calls produce
// frameworks whose query results are byte-identical — the property the
// post-chaos replay comparison rests on. With segments set, every data set
// is additionally materialized into a columnar segment file and attached
// with a one-block cache budget, so ad-hoc execution runs the out-of-core
// block-pruned path; replay against a non-segment framework then asserts
// the two execution paths answer byte-identically.
func buildFramework(t testing.TB, dev *gpu.Device, segments bool, opts ...core.RJOption) *urbane.Framework {
	t.Helper()
	bounds := geom.BBox{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	rng := rand.New(rand.NewSource(77))
	mk := func(name string, n int) *data.PointSet {
		ps := &data.PointSet{Name: name,
			X: make([]float64, n), Y: make([]float64, n), T: make([]int64, n)}
		fares := make([]float64, n)
		for i := 0; i < n; i++ {
			ps.X[i] = rng.Float64() * 1000
			ps.Y[i] = rng.Float64() * 1000
			ps.T[i] = int64(rng.Intn(8 * 3600))
			fares[i] = rng.Float64() * 40
		}
		// Pin the world corners so the geoblocks hierarchy spans the full
		// bounds: ingest soaks append uniform points over [0,1000]^2, and a
		// point outside the built hierarchy's bbox forces a patch fallback.
		ps.X[0], ps.Y[0] = 0, 0
		ps.X[1], ps.Y[1] = 1000, 1000
		ps.Attrs = []data.Column{{Name: "fare", Values: fares}}
		ps.SortByTime()
		return ps
	}
	rjOpts := append([]core.RJOption{core.WithDevice(dev),
		core.WithMode(core.Accurate), core.WithResolution(128)}, opts...)
	f := urbane.New(core.NewRasterJoin(rjOpts...))
	sets := []*data.PointSet{mk("taxi", 1200), mk("311", 600)}
	for _, ps := range sets {
		if err := f.AddPointSet(ps); err != nil {
			t.Fatal(err)
		}
	}
	if segments {
		dir := t.TempDir()
		for _, ps := range sets {
			path := filepath.Join(dir, ps.Name+".useg")
			file, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := segment.Write(file, ps, segment.WithBlockSize(256)); err != nil {
				t.Fatal(err)
			}
			if err := file.Close(); err != nil {
				t.Fatal(err)
			}
			st, err := segment.Open(path, segment.WithCacheBytes(16<<10))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { st.Close() })
			if err := f.AttachSegments(ps.Name, st); err != nil {
				t.Fatal(err)
			}
		}
	}
	nbhd := data.VoronoiRegions("nbhd", bounds, 12, 9, data.VoronoiOptions{JitterFrac: 0.06})
	grid := data.GridRegions("grid", bounds, 4, 4)
	for _, rs := range []*data.RegionSet{nbhd, grid} {
		if err := f.AddRegionSet(rs); err != nil {
			t.Fatal(err)
		}
	}
	// The hierarchy serves the mix's polygon family; enabling it on every
	// framework (soaked and pristine alike) keeps replay byte-identical.
	f.EnableGeoBlocks(6)
	return f
}

func mixConfig() workload.MixConfig {
	return workload.MixConfig{
		Datasets: []string{"taxi", "311"},
		Layers:   []string{"nbhd", "grid"},
		Attrs:    map[string][]string{"taxi": {"fare"}, "311": {"fare"}},
		TimeMin:  0, TimeMax: 8 * 3600,
		Regions: 12,
		Bounds:  [4]float64{0, 0, 1000, 1000},
	}
}

// waitIdle polls cond until it holds or the deadline passes.
func waitIdle(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("%s did not settle within 15s", what)
}

// TestChaosSoak is the headline chaos run: a seeded fault schedule across
// every hook site, admission control at a capacity far below the offered
// load, aggressive client deadlines on a slice of requests — and the
// assertions that every response honors the envelope contract, nothing
// leaks, and the caches come out unpoisoned (replay after the soak is
// byte-identical to a pristine server).
func TestChaosSoak(t *testing.T) {
	vus, perVU := 64, 12
	if testing.Short() {
		vus, perVU = 8, 6
	}

	dev := gpu.New()
	f := buildFramework(t, dev, true)
	reg := fault.New(42)
	reg.Set("core.pointpass", fault.Rule{Prob: 0.05, Kind: fault.Latency, Delay: 2 * time.Millisecond})
	reg.Set("qcache.compute", fault.Rule{Prob: 0.05, Kind: fault.Error})
	reg.Set("server.decode", fault.Rule{Prob: 0.03, Kind: fault.Error})
	reg.Set("core.join", fault.Rule{Prob: 0.03, Kind: fault.Cancel})
	ctl := admit.New(4, 16, 25*time.Millisecond)
	srv := urbane.NewServer(f,
		urbane.WithCache(8<<20),
		urbane.WithAdmission(ctl),
		urbane.WithFaults(reg),
		urbane.WithQueryTimeout(5*time.Second),
	)

	before := runtime.NumGoroutine()
	rep := chaos.Soak(context.Background(), srv, chaos.Config{
		VUs: vus, Requests: perVU, Seed: 7, CancelFrac: 0.15, Mix: mixConfig(),
	})
	t.Logf("soak: %s", rep)
	for _, v := range rep.Violations {
		t.Errorf("contract violation: %s", v)
	}
	if rep.Total != vus*perVU {
		t.Errorf("completed %d requests, want %d", rep.Total, vus*perVU)
	}
	if rep.ByStatus[200] == 0 {
		t.Error("soak produced no successful responses")
	}
	// The fault schedule is seeded, so injected failures must actually
	// surface: server.decode errors map to 400 and qcache.compute /
	// core.join faults to 400/499 — the soak is vacuous if everything
	// came back 200.
	if rep.ByStatus[200] == rep.Total {
		t.Error("no injected fault or cancellation surfaced; chaos schedule did not fire")
	}

	// Shed requests and canceled clients must leak nothing: goroutines
	// drain, render resources return to their pools, the admission
	// semaphore reads idle.
	waitIdle(t, "goroutines", func() bool { return runtime.NumGoroutine() <= before+3 })
	waitIdle(t, "canvases", func() bool { return dev.LiveCanvases() == 0 })
	waitIdle(t, "textures", func() bool { return dev.LiveTextures() == 0 })
	adm := srv.AdmissionStats()
	if adm.InFlight != 0 || adm.Queued != 0 {
		t.Errorf("admission not idle after soak: %+v", adm)
	}
	if adm.Admitted == 0 {
		t.Error("admission controller admitted nothing; wiring is broken")
	}

	// Faults must never poison the caches: with injection cleared, the
	// soaked server must answer a fresh deterministic mix byte-for-byte
	// like a pristine server over the same catalog.
	reg.Clear()
	pristine := urbane.NewServer(buildFramework(t, gpu.New(), false), urbane.WithCache(8<<20))
	const replayN = 80
	got := chaos.Replay(srv, mixConfig(), 4242, replayN)
	want := chaos.Replay(pristine, mixConfig(), 4242, replayN)
	if len(got) != len(want) {
		t.Fatalf("replay lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Status != want[i].Status {
			t.Errorf("replay %d (%s %s): status %d vs pristine %d",
				i, got[i].Kind, got[i].Path, got[i].Status, want[i].Status)
			continue
		}
		if !bytes.Equal(got[i].Body, want[i].Body) {
			t.Errorf("replay %d (%s %s): body diverged from pristine server (%d vs %d bytes)",
				i, got[i].Kind, got[i].Path, len(got[i].Body), len(want[i].Body))
		}
	}
}

// TestSoakCleanServer pins the baseline: with no faults, no admission
// pressure, and no client cancellation, every generated request succeeds —
// so any non-200 seen under chaos is attributable to the chaos, not to the
// mix emitting garbage.
func TestSoakCleanServer(t *testing.T) {
	f := buildFramework(t, gpu.New(), true)
	srv := urbane.NewServer(f, urbane.WithCache(8<<20))
	rep := chaos.Soak(context.Background(), srv, chaos.Config{
		VUs: 4, Requests: 10, Seed: 11, Mix: mixConfig(),
	})
	for _, v := range rep.Violations {
		t.Errorf("contract violation: %s", v)
	}
	if rep.ByStatus[200] != rep.Total {
		t.Errorf("clean soak not all-200: %s", rep)
	}
}

// TestIngestSoakReplay is the concurrent-ingest counterpart of
// TestChaosSoak: readers hammer the cached endpoints while a writer
// streams appends, and afterwards a pristine server is fed the identical
// append sequence sequentially (ReplayAppends). Replaying the read mix
// against both must be byte-identical — concurrent maintenance (epoch
// sweeps, slab rekeys, geoblocks patches) may never leave the soaked
// server answering differently than a server that ingested at leisure.
func TestIngestSoakReplay(t *testing.T) {
	const appends = 24
	cfg := mixConfig()
	mkServer := func() *urbane.Server {
		f := buildFramework(t, gpu.New(), false)
		f.EnableIncremental(1800, 0, 0)
		return urbane.NewServer(f, urbane.WithCache(8<<20), urbane.WithTimeSnap(1800))
	}
	// Warm the geoblocks hierarchy for every data set on both servers
	// before any ingest. A patched pyramid and a rebuilt one agree only to
	// float tolerance (merge order differs), so the byte-identical claim
	// needs both servers to start from the same built base and then apply
	// the identical patch sequence — exactly what ReplayAppends feeds.
	warm := func(h http.Handler) {
		for _, ds := range cfg.Datasets {
			body := fmt.Sprintf(`{"dataset":%q,"ring":[[100,100],[900,100],[900,900],[100,900]],"agg":"count"}`, ds)
			req := httptest.NewRequest(http.MethodPost, "/api/polygon", strings.NewReader(body))
			req.Header.Set("Content-Type", "application/json")
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				t.Fatalf("warm polygon %s: status %d: %s", ds, rec.Code, rec.Body)
			}
		}
	}

	soaked := mkServer()
	warm(soaked)
	rep := chaos.Soak(context.Background(), soaked, chaos.Config{
		VUs: 6, Requests: 15, Seed: 21, Appends: appends, Mix: cfg,
	})
	t.Logf("ingest soak: %s", rep)
	for _, v := range rep.Violations {
		t.Errorf("contract violation: %s", v)
	}
	if rep.ByKind["append"] != appends {
		t.Fatalf("writer issued %d appends, want %d", rep.ByKind["append"], appends)
	}

	pristine := mkServer()
	warm(pristine)
	for i, r := range chaos.ReplayAppends(pristine, cfg, 21, appends) {
		if r.Status != 200 {
			t.Fatalf("pristine append %d: status %d: %s", i, r.Status, r.Body)
		}
		// The warmed hierarchy must patch, not fall back: a fallback would
		// fork the pyramid's float state away from the soaked server's.
		if !bytes.Contains(r.Body, []byte(`"geoBlocksPatched":true`)) {
			t.Errorf("pristine append %d did not patch the hierarchy: %s", i, r.Body)
		}
	}

	const replayN = 80
	got := chaos.Replay(soaked, cfg, 4242, replayN)
	want := chaos.Replay(pristine, cfg, 4242, replayN)
	for i := range got {
		if got[i].Status != want[i].Status {
			t.Errorf("replay %d (%s %s): status %d vs pristine %d",
				i, got[i].Kind, got[i].Path, got[i].Status, want[i].Status)
			continue
		}
		if !bytes.Equal(got[i].Body, want[i].Body) {
			t.Errorf("replay %d (%s %s): body diverged after concurrent ingest (%d vs %d bytes)",
				i, got[i].Kind, got[i].Path, len(got[i].Body), len(want[i].Body))
		}
	}
}

// TestReplayDeterministic: the same seed against the same server yields
// byte-identical results — the precondition for the cross-server
// comparison in TestChaosSoak to mean anything.
func TestReplayDeterministic(t *testing.T) {
	srv := urbane.NewServer(buildFramework(t, gpu.New(), true), urbane.WithCache(8<<20))
	a := chaos.Replay(srv, mixConfig(), 5, 40)
	b := chaos.Replay(srv, mixConfig(), 5, 40)
	for i := range a {
		if a[i].Status != b[i].Status || !bytes.Equal(a[i].Body, b[i].Body) {
			t.Fatalf("replay %d (%s) not deterministic", i, a[i].Kind)
		}
	}
}
