package chaos_test

// Server-level proof of the sharding guarantees: a sharded server is
// byte-identical to an unsharded one at every shard count — JSON bodies,
// PNG bodies, and ETags, cold and warm — executors killed and restarted
// mid-query degrade to honest 503s (never silently partial answers) and
// leak nothing, and a post-chaos replay matches a pristine server.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/urbane"
	"repro/internal/workload"
)

var shardCounts = []int{1, 2, 4, 8}

// get issues one GET and returns the recorder.
func get(h http.Handler, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// post issues one JSON POST and returns the recorder.
func post(h http.Handler, path, body string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// compareReplays requires two replay traces to agree response by response.
func compareReplays(t *testing.T, label string, got, want []chaos.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: replay lengths differ: %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].Status != want[i].Status {
			t.Errorf("%s: replay %d (%s %s): status %d vs %d",
				label, i, got[i].Kind, got[i].Path, got[i].Status, want[i].Status)
			continue
		}
		if !bytes.Equal(got[i].Body, want[i].Body) {
			t.Errorf("%s: replay %d (%s %s): body diverged (%d vs %d bytes)",
				label, i, got[i].Kind, got[i].Path, len(got[i].Body), len(want[i].Body))
		}
	}
}

// TestShardServerByteIdentical is the server-level equivalence matrix: at
// every shard count, a randomized request mix replayed cold and then warm
// (second pass served from the response cache) answers byte-for-byte like
// an unsharded server — and the image endpoints agree on PNG bodies AND
// ETags, which requires sharding to leave the catalog version untouched.
func TestShardServerByteIdentical(t *testing.T) {
	const replayN = 60
	plain := urbane.NewServer(buildFramework(t, gpu.New(), false), urbane.WithCache(8<<20))
	wantCold := chaos.Replay(plain, mixConfig(), 1331, replayN)
	wantWarm := chaos.Replay(plain, mixConfig(), 1331, replayN)

	images := []string{
		"/api/render/choropleth.png?dataset=taxi&layer=nbhd&agg=sum&attr=fare&w=128",
		"/api/tile/10/301/385.png?dataset=311",
	}
	wantImg := make([]*httptest.ResponseRecorder, len(images))
	for i, p := range images {
		wantImg[i] = get(plain, p)
		if wantImg[i].Code != http.StatusOK {
			t.Fatalf("baseline %s: status %d", p, wantImg[i].Code)
		}
	}

	for _, n := range shardCounts {
		f := buildFramework(t, gpu.New(), false)
		f.EnableSharding(n)
		srv := urbane.NewServer(f, urbane.WithCache(8<<20))
		label := fmt.Sprintf("shards=%d", n)
		compareReplays(t, label+" cold", chaos.Replay(srv, mixConfig(), 1331, replayN), wantCold)
		compareReplays(t, label+" warm", chaos.Replay(srv, mixConfig(), 1331, replayN), wantWarm)
		for i, p := range images {
			got := get(srv, p)
			if got.Code != http.StatusOK {
				t.Fatalf("%s %s: status %d", label, p, got.Code)
			}
			if !bytes.Equal(got.Body.Bytes(), wantImg[i].Body.Bytes()) {
				t.Errorf("%s %s: PNG body diverged", label, p)
			}
			gTag, wTag := got.Header().Get("ETag"), wantImg[i].Header().Get("ETag")
			if gTag == "" || gTag != wTag {
				t.Errorf("%s %s: ETag %q, want %q", label, p, gTag, wTag)
			}
		}
		if co := f.Sharding(); co.Layouts() == 0 {
			t.Errorf("%s: no layouts built — requests bypassed the coordinator", label)
		}
	}
}

// TestShardServerPolygonsFirstFallback: with a polygons-first raster
// engine the coordinator refuses every request (the region-keyed fold does
// not decompose bit-exactly), the planner falls back to the plain local
// path, and the server is still byte-identical to an unsharded
// polygons-first server.
func TestShardServerPolygonsFirstFallback(t *testing.T) {
	const replayN = 40
	plain := urbane.NewServer(
		buildFramework(t, gpu.New(), false, core.WithStrategy(core.PolygonsFirst)),
		urbane.WithCache(8<<20))
	want := chaos.Replay(plain, mixConfig(), 1733, replayN)

	f := buildFramework(t, gpu.New(), false, core.WithStrategy(core.PolygonsFirst))
	f.EnableSharding(4)
	srv := urbane.NewServer(f, urbane.WithCache(8<<20))
	compareReplays(t, "polygons-first fallback", chaos.Replay(srv, mixConfig(), 1733, replayN), want)
	st := f.Sharding().Stats()
	for _, ns := range st {
		if ns.Served != 0 {
			t.Errorf("shard %d served %d passes; polygons-first must bypass the coordinator", ns.Shard, ns.Served)
		}
	}
}

// TestShardUnavailableEnvelope is the regression for the degraded-response
// contract: with shards 0 and 2 down, a compute endpoint answers the
// standard 503 envelope with a Retry-After header, the message names the
// lowest failed shard deterministically on every attempt, and a restart
// fully recovers.
func TestShardUnavailableEnvelope(t *testing.T) {
	f := buildFramework(t, gpu.New(), false)
	co := f.EnableSharding(4)
	srv := urbane.NewServer(f, urbane.WithCache(8<<20))
	// Ad-hoc filter keeps the request off geoblocks and on the raster path.
	body := `{"dataset":"taxi","layer":"nbhd","agg":"sum","attr":"fare","filters":[{"attr":"fare","min":1,"max":30}]}`

	co.Kill(0)
	co.Kill(2)
	for trial := 0; trial < 10; trial++ {
		rec := post(srv, "/api/mapview", body)
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("trial %d: status %d, want 503 (body %s)", trial, rec.Code, rec.Body.String())
		}
		if rec.Header().Get("Retry-After") == "" {
			t.Fatalf("trial %d: 503 without Retry-After", trial)
		}
		got := rec.Body.String()
		if !strings.Contains(got, `"error"`) || !strings.Contains(got, `"status":503`) {
			t.Fatalf("trial %d: not the standard envelope: %s", trial, got)
		}
		if !strings.Contains(got, "shard 0:") {
			t.Fatalf("trial %d: error does not deterministically name shard 0: %s", trial, got)
		}
	}
	co.Restart(0)
	co.Restart(2)
	if rec := post(srv, "/api/mapview", body); rec.Code != http.StatusOK {
		t.Fatalf("after restart: status %d (%s)", rec.Code, rec.Body.String())
	}
}

// TestShardChaosKillRestartSoak is the headline chaos run for sharded
// execution: virtual users hammer a 4-shard server with client
// cancellations while a disruptor kills and restarts random executors
// every few hundred microseconds. Every response must honor the envelope
// contract (degraded answers are honest 503s, never silently partial
// 200s), nothing may leak, and once the shards are restored a replay must
// match a pristine unsharded server byte-for-byte.
func TestShardChaosKillRestartSoak(t *testing.T) {
	vus, perVU := 48, 12
	if testing.Short() {
		vus, perVU = 8, 6
	}
	dev := gpu.New()
	f := buildFramework(t, dev, false)
	co := f.EnableSharding(4)
	srv := urbane.NewServer(f, urbane.WithCache(8<<20), urbane.WithQueryTimeout(5*time.Second))

	before := runtime.NumGoroutine()
	// Disrupt runs in a single goroutine, so the rng needs no lock.
	rng := rand.New(rand.NewSource(2024))
	rep := chaos.Soak(context.Background(), srv, chaos.Config{
		VUs: vus, Requests: perVU, Seed: 31, CancelFrac: 0.1, Mix: mixConfig(),
		DisruptEvery: 300 * time.Microsecond,
		Disrupt: func(step int) {
			if step < 0 {
				for i := 0; i < 4; i++ {
					co.Restart(i)
				}
				return
			}
			i := rng.Intn(4)
			if co.Down(i) {
				co.Restart(i)
			} else {
				co.Kill(i)
			}
		},
	})
	t.Logf("shard soak: %s", rep)
	for _, v := range rep.Violations {
		t.Errorf("contract violation: %s", v)
	}
	if rep.Total != vus*perVU {
		t.Errorf("completed %d requests, want %d", rep.Total, vus*perVU)
	}
	if rep.ByStatus[200] == 0 {
		t.Error("soak produced no successful responses")
	}
	for i := 0; i < 4; i++ {
		if co.Down(i) {
			t.Errorf("shard %d still down after soak; Disrupt(-1) restore missing", i)
		}
	}

	waitIdle(t, "goroutines", func() bool { return runtime.NumGoroutine() <= before+3 })
	waitIdle(t, "canvases", func() bool { return dev.LiveCanvases() == 0 })
	waitIdle(t, "textures", func() bool { return dev.LiveTextures() == 0 })
	st := co.Stats()
	for _, ns := range st {
		if ns.Inflight != 0 {
			t.Errorf("shard %d: %d passes still in flight after soak", ns.Shard, ns.Inflight)
		}
	}

	// Kills never poison anything: with every shard back, the soaked
	// sharded server answers a fresh deterministic mix byte-for-byte like
	// a pristine server that never sharded at all.
	pristine := urbane.NewServer(buildFramework(t, gpu.New(), false), urbane.WithCache(8<<20))
	const replayN = 80
	compareReplays(t, "post-chaos",
		chaos.Replay(srv, mixConfig(), 5151, replayN),
		chaos.Replay(pristine, mixConfig(), 5151, replayN))
}

// TestMixedDatasetEpochIsolation drives the two-dataset interleaved
// workload family against a sharded server and pins per-dataset epoch
// isolation: an append to one dataset invalidates only that dataset's
// cached responses — the sibling's stay warm — and shard routing keeps
// answering both correctly throughout.
func TestMixedDatasetEpochIsolation(t *testing.T) {
	f := buildFramework(t, gpu.New(), false)
	co := f.EnableSharding(4)
	srv := urbane.NewServer(f, urbane.WithCache(8<<20))

	// Two cacheable probes, one per dataset, with ad-hoc filters so they
	// take the sharded raster path.
	probe := map[string]string{
		"taxi": `{"dataset":"taxi","layer":"nbhd","agg":"sum","attr":"fare","filters":[{"attr":"fare","min":1,"max":30}]}`,
		"311":  `{"dataset":"311","layer":"grid","agg":"count","filters":[{"attr":"fare","min":2,"max":25}]}`,
	}
	warm := func(ds string) string {
		rec := post(srv, "/api/mapview", probe[ds])
		if rec.Code != http.StatusOK {
			t.Fatalf("probe %s: status %d (%s)", ds, rec.Code, rec.Body.String())
		}
		return rec.Header().Get("X-Urbane-Cache")
	}
	warm("taxi")
	warm("311")
	if got := warm("taxi"); got != "hit" {
		t.Fatalf("taxi probe not warm before interleave: %q", got)
	}

	// Run the deterministic interleave; every response must be 2xx.
	mixed := workload.NewMixed(mixConfig(), 97)
	lastAppend := "" // dataset of the most recent append step
	for i := 0; i < 36; i++ {
		ds := mixConfig().Datasets[mixed.Dataset(i)]
		isAppend := mixed.IsAppend(i)
		hr := mixed.Next()
		var rec *httptest.ResponseRecorder
		if hr.Method == http.MethodGet {
			rec = get(srv, hr.Path)
		} else {
			rec = post(srv, hr.Path, hr.Body)
		}
		if rec.Code != http.StatusOK {
			t.Fatalf("step %d (%s): status %d (%s)", i, hr.Kind, rec.Code, rec.Body.String())
		}
		if isAppend {
			lastAppend = ds
		}
	}
	if lastAppend == "" {
		t.Fatal("interleave issued no appends")
	}

	// After appends to both datasets: re-warm both probes, then append to
	// taxi only and verify isolation — taxi misses (fresh epoch), 311 hits.
	warm("taxi")
	warm("311")
	app := workload.NewAppender(workload.MixConfig{
		Datasets: []string{"taxi"},
		TimeMin:  0, TimeMax: 10 * 86400, // past every soak append cursor
		Bounds: [4]float64{0, 0, 1000, 1000},
		Attrs:  map[string][]string{"taxi": {"fare"}},
	}, 555)
	hr := app.Next()
	if rec := post(srv, hr.Path, hr.Body); rec.Code != http.StatusOK {
		t.Fatalf("append: status %d (%s)", rec.Code, rec.Body.String())
	}
	if got := warm("taxi"); got == "hit" {
		t.Fatal("taxi probe still warm after taxi append; epoch did not advance")
	}
	if got := warm("311"); got != "hit" {
		t.Fatalf("311 probe outcome %q after taxi append, want hit (epoch isolation)", got)
	}
	if co.Layouts() == 0 {
		t.Error("no shard layouts cached after mixed workload")
	}
}
