// Package chaos is the soak harness behind the overload-protection and
// fault-injection guarantees: it replays deterministic workload mixes
// against a server handler at N virtual users — optionally with aggressive
// client deadlines — and checks the response contract that the rest of the
// suite promises: every response is a well-formed envelope with one of the
// allowed statuses, errors carry the JSON error shape, 503s carry
// Retry-After, and nothing hangs or panics.
//
// The harness runs in-process (httptest recorders against the handler), so
// a soak under -race doubles as a data-race sweep of the admission, cache,
// and fault paths, and post-soak leak checks (goroutines, canvases,
// textures, admission counters) see the exact process state.
package chaos

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"repro/internal/workload"
)

// AllowedStatuses is the chaos response contract: under arbitrary seeded
// faults, client cancellations, and overload shedding, every response
// carries one of these codes. Anything else — in particular a 500 or a
// hang — is a bug in the server, not in the chaos schedule.
var AllowedStatuses = map[int]bool{
	http.StatusOK:                 true,
	http.StatusNotModified:        true,
	http.StatusBadRequest:         true,
	499:                           true, // client closed request
	http.StatusServiceUnavailable: true,
	http.StatusGatewayTimeout:     true,
}

// Config sizes a soak.
type Config struct {
	// VUs is the number of concurrent virtual users.
	VUs int
	// Requests is how many requests each virtual user issues.
	Requests int
	// Seed makes the whole soak deterministic: VU k replays
	// workload.NewMix(Mix, Seed+k), and the cancellation schedule derives
	// from Seed too.
	Seed int64
	// CancelFrac is the fraction of requests issued under an aggressive
	// client deadline (0..2ms), exercising mid-compute cancellation.
	CancelFrac float64
	// Appends, when positive, runs one writer alongside the readers: a
	// single goroutine issuing this many time-ordered ingest batches from
	// workload.NewAppender(Mix, Seed). The ingest endpoint bypasses
	// admission and the batches are generated in time order, so every
	// append must come back 200 — anything else is a violation, because a
	// dropped append makes the post-soak replay-vs-pristine comparison
	// meaningless. ReplayAppends re-issues the identical sequence.
	Appends int
	// Disrupt, when non-nil, runs in its own goroutine alongside the
	// virtual users: it is called with an increasing step counter every
	// DisruptEvery until the soak drains, then once more with step -1 so
	// the disruptor can restore what it broke before the report's final
	// checks. The shard suite uses it to kill and restart executors
	// mid-query.
	Disrupt func(step int)
	// DisruptEvery is the pause between Disrupt calls (default 1ms).
	DisruptEvery time.Duration
	// Mix names the catalog the generated requests target.
	Mix workload.MixConfig
}

// Report aggregates a soak's outcomes.
type Report struct {
	Total      int
	ByStatus   map[int]int
	ByKind     map[string]int
	Violations []string // capped at maxViolations
	truncated  int
}

const maxViolations = 25

func (r *Report) violate(msg string) {
	if len(r.Violations) >= maxViolations {
		r.truncated++
		return
	}
	r.Violations = append(r.Violations, msg)
}

func (r *Report) merge(o *Report) {
	r.Total += o.Total
	for s, n := range o.ByStatus {
		r.ByStatus[s] += n
	}
	for k, n := range o.ByKind {
		r.ByKind[k] += n
	}
	for _, v := range o.Violations {
		r.violate(v)
	}
	r.truncated += o.truncated
}

// String renders the per-status counts compactly for test logs.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d requests:", r.Total)
	for _, s := range []int{200, 304, 400, 499, 503, 504} {
		if n := r.ByStatus[s]; n > 0 {
			fmt.Fprintf(&b, " %d=%d", s, n)
		}
	}
	for s, n := range r.ByStatus {
		if !AllowedStatuses[s] {
			fmt.Fprintf(&b, " %d=%d(!)", s, n)
		}
	}
	if r.truncated > 0 {
		fmt.Fprintf(&b, " (+%d violations truncated)", r.truncated)
	}
	return b.String()
}

// errEnvelope mirrors the server's unified error body.
type errEnvelope struct {
	Error struct {
		Status  int    `json:"status"`
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

// ValidateResponse checks one response against the chaos contract. It is
// shared by the in-process soak and the HTTP load generator.
func ValidateResponse(method, path string, status int, header http.Header, body []byte) error {
	if !AllowedStatuses[status] {
		return fmt.Errorf("%s %s: status %d outside contract", method, path, status)
	}
	if strings.HasPrefix(path, "/api/") && header.Get("X-Urbane-Elapsed-Ms") == "" {
		return fmt.Errorf("%s %s: %d response missing X-Urbane-Elapsed-Ms", method, path, status)
	}
	switch {
	case status == http.StatusNotModified:
		if len(body) != 0 {
			return fmt.Errorf("%s %s: 304 with %d-byte body", method, path, len(body))
		}
	case status >= 400:
		if status == http.StatusServiceUnavailable && header.Get("Retry-After") == "" {
			return fmt.Errorf("%s %s: 503 without Retry-After", method, path)
		}
		var env errEnvelope
		if err := json.Unmarshal(body, &env); err != nil {
			return fmt.Errorf("%s %s: %d body is not an error envelope: %v", method, path, status, err)
		}
		if env.Error.Status != status || env.Error.Code == "" {
			return fmt.Errorf("%s %s: envelope status=%d code=%q under HTTP %d",
				method, path, env.Error.Status, env.Error.Code, status)
		}
	case strings.Contains(header.Get("Content-Type"), "application/json"):
		if !json.Valid(body) {
			return fmt.Errorf("%s %s: 200 body is invalid JSON", method, path)
		}
	case strings.Contains(header.Get("Content-Type"), "image/png"):
		if !bytes.HasPrefix(body, []byte("\x89PNG")) {
			return fmt.Errorf("%s %s: 200 image/png body lacks PNG magic", method, path)
		}
	}
	return nil
}

// Soak replays cfg against h from cfg.VUs concurrent virtual users and
// validates every response. It returns once every request has completed —
// a hang shows up as the caller's test timeout, which is the point.
func Soak(ctx context.Context, h http.Handler, cfg Config) *Report {
	reports := make([]*Report, cfg.VUs+1)
	var wg sync.WaitGroup
	for vu := 0; vu < cfg.VUs; vu++ {
		wg.Add(1)
		go func(vu int) {
			defer wg.Done()
			reports[vu] = soakVU(ctx, h, cfg, vu)
		}(vu)
	}
	if cfg.Appends > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			reports[cfg.VUs] = soakWriter(ctx, h, cfg)
		}()
	} else {
		reports[cfg.VUs] = &Report{ByStatus: map[int]int{}, ByKind: map[string]int{}}
	}
	var disruptWG sync.WaitGroup
	if cfg.Disrupt != nil {
		every := cfg.DisruptEvery
		if every <= 0 {
			every = time.Millisecond
		}
		done := make(chan struct{})
		disruptWG.Add(1)
		go func() {
			defer disruptWG.Done()
			for step := 0; ; step++ {
				select {
				case <-done:
					cfg.Disrupt(-1) // final call: restore before leak checks
					return
				case <-time.After(every):
					cfg.Disrupt(step)
				}
			}
		}()
		defer func() { close(done); disruptWG.Wait() }()
	}
	wg.Wait()
	total := &Report{ByStatus: map[int]int{}, ByKind: map[string]int{}}
	for _, r := range reports {
		total.merge(r)
	}
	return total
}

func soakVU(ctx context.Context, h http.Handler, cfg Config, vu int) *Report {
	rep := &Report{ByStatus: map[int]int{}, ByKind: map[string]int{}}
	mix := workload.NewMix(cfg.Mix, cfg.Seed+int64(vu))
	// The cancellation schedule uses its own stream so it never perturbs
	// the request sequence (which Replay must be able to reproduce).
	cancels := rand.New(rand.NewSource(cfg.Seed ^ (int64(vu)+1)*0x9e3779b9))
	for i := 0; i < cfg.Requests && ctx.Err() == nil; i++ {
		hr := mix.Next()
		status, header, body := issue(ctx, h, hr, func() (context.Context, context.CancelFunc) {
			if cfg.CancelFrac > 0 && cancels.Float64() < cfg.CancelFrac {
				return context.WithTimeout(ctx, time.Duration(cancels.Intn(2000))*time.Microsecond)
			}
			return ctx, func() {}
		})
		rep.Total++
		rep.ByStatus[status]++
		rep.ByKind[hr.Kind]++
		if err := ValidateResponse(hr.Method, hr.Path, status, header, body); err != nil {
			rep.violate(fmt.Sprintf("vu%d req%d: %v", vu, i, err))
		}
	}
	return rep
}

// soakWriter is the single ingest population: cfg.Appends time-ordered
// batches, issued with no client deadline (a canceled append would fork
// the soaked server's state away from the replayed pristine one).
func soakWriter(ctx context.Context, h http.Handler, cfg Config) *Report {
	rep := &Report{ByStatus: map[int]int{}, ByKind: map[string]int{}}
	app := workload.NewAppender(cfg.Mix, cfg.Seed)
	for i := 0; i < cfg.Appends && ctx.Err() == nil; i++ {
		hr := app.Next()
		status, header, body := issue(ctx, h, hr, func() (context.Context, context.CancelFunc) {
			return ctx, func() {}
		})
		rep.Total++
		rep.ByStatus[status]++
		rep.ByKind[hr.Kind]++
		if err := ValidateResponse(hr.Method, hr.Path, status, header, body); err != nil {
			rep.violate(fmt.Sprintf("writer req%d: %v", i, err))
		}
		if status != http.StatusOK {
			rep.violate(fmt.Sprintf("writer req%d: append status %d: %s", i, status, body))
		}
	}
	return rep
}

// issue serves one generated request in-process and returns the recorded
// response.
func issue(ctx context.Context, h http.Handler, hr workload.HTTPRequest, reqCtx func() (context.Context, context.CancelFunc)) (int, http.Header, []byte) {
	var rd *strings.Reader
	if hr.Body != "" {
		rd = strings.NewReader(hr.Body)
	} else {
		rd = strings.NewReader("")
	}
	req := httptest.NewRequest(hr.Method, hr.Path, rd)
	if hr.Body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	rctx, cancel := reqCtx()
	defer cancel()
	req = req.WithContext(rctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	res := rec.Result()
	return res.StatusCode, res.Header, rec.Body.Bytes()
}

// Result is one replayed response. Body is nil for the nondeterministic
// observability endpoints (stats, cachestats), whose payloads legitimately
// differ between servers.
type Result struct {
	Kind   string
	Path   string
	Status int
	Body   []byte
}

// Replay issues n requests from workload.NewMix(cfg, seed) sequentially
// against h — no concurrency, no cancellation — and records every
// response. Running the same Replay against two servers built over the
// same catalog must yield identical Results; the chaos suite uses that to
// prove a fault schedule never poisons the caches.
func Replay(h http.Handler, cfg workload.MixConfig, seed int64, n int) []Result {
	mix := workload.NewMix(cfg, seed)
	out := make([]Result, 0, n)
	bg := context.Background()
	for i := 0; i < n; i++ {
		hr := mix.Next()
		status, _, body := issue(bg, h, hr, func() (context.Context, context.CancelFunc) {
			return bg, func() {}
		})
		out = append(out, Result{Kind: hr.Kind, Path: hr.Path, Status: status,
			Body: normalizeBody(hr.Kind, status, body)})
	}
	return out
}

// ReplayAppends re-issues a soak's append sequence — the first n requests
// of workload.NewAppender(cfg, seed) — sequentially against h. Feeding a
// pristine server the same appends a soak's writer issued brings its data
// to the exact state the soaked server reached, after which Replay of the
// read mix against both must be byte-identical: the proof that concurrent
// ingest never poisons a cache or leaves a view half-maintained.
func ReplayAppends(h http.Handler, cfg workload.MixConfig, seed int64, n int) []Result {
	app := workload.NewAppender(cfg, seed)
	out := make([]Result, 0, n)
	bg := context.Background()
	for i := 0; i < n; i++ {
		hr := app.Next()
		status, _, body := issue(bg, h, hr, func() (context.Context, context.CancelFunc) {
			return bg, func() {}
		})
		out = append(out, Result{Kind: hr.Kind, Path: hr.Path, Status: status, Body: body})
	}
	return out
}

// normalizeBody drops the parts of a response that are legitimately
// nondeterministic before the cross-server comparison: the observability
// payloads entirely (counters, uptime), and the wall-clock elapsedNs field
// the uncached explore endpoint embeds. Everything else must match
// byte-for-byte.
func normalizeBody(kind string, status int, body []byte) []byte {
	switch kind {
	case "stats", "cachestats":
		return nil
	case "explore":
		if status != http.StatusOK {
			return body
		}
		var m map[string]json.RawMessage
		if err := json.Unmarshal(body, &m); err != nil {
			return body
		}
		delete(m, "elapsedNs")
		norm, err := json.Marshal(m)
		if err != nil {
			return body
		}
		return norm
	default:
		return body
	}
}
