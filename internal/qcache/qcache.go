// Package qcache is the server's query-result cache: a sharded,
// generation-stamped LRU over serialized response bodies, keyed by a
// canonicalized query signature (see key.go), with singleflight request
// coalescing so N concurrent identical queries compute once and fan the
// result out.
//
// The design follows the observation (GeoBlocks, arXiv:1908.07753) that
// interactive map exploration re-issues the same spatial aggregation
// shapes — time-slider drags, resolution switches, filter toggles — so a
// result cache over the aggregation layer is the single biggest lever for
// repeated-workload latency.
//
// Concurrency model:
//
//   - The key space is split across shards by FNV-1a hash; each shard is an
//     independently locked LRU list with its own byte budget, so unrelated
//     keys never contend on one mutex.
//   - Invalidation is O(1): a single atomic generation counter. Entries are
//     stamped with the generation current when their compute started; a
//     lookup that finds an entry from an older generation treats it as a
//     miss and drops it. Results computed across an invalidation are never
//     inserted.
//   - Do coalesces concurrent identical requests: the first caller becomes
//     the leader and computes, later callers block on the leader's flight
//     and receive the same bytes. The leader publishes to the cache before
//     retiring the flight, so a caller can never slip between "flight gone"
//     and "cache filled" and recompute.
//
// Cached values are shared slices; callers must treat them as immutable.
package qcache

import (
	"container/list"
	"context"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
)

// Outcome says how Do satisfied a request; the server surfaces it in the
// X-Urbane-Cache response header.
type Outcome string

const (
	// Hit means the result was served from the cache.
	Hit Outcome = "hit"
	// Miss means this caller computed the result.
	Miss Outcome = "miss"
	// Coalesced means the caller waited on another caller's in-flight
	// compute for the same key and shares its result.
	Coalesced Outcome = "coalesced"
	// Bypass means caching is disabled (nil *Cache) and the result was
	// computed directly.
	Bypass Outcome = "bypass"
)

// entryOverhead approximates the fixed bookkeeping cost (map slot, list
// element, entry header) charged to every entry on top of its key and
// value bytes.
const entryOverhead = 160

// defaultShards balances contention against per-shard budget granularity.
const defaultShards = 16

// Stats is a point-in-time counter snapshot; see the /api/cachestats
// endpoint.
type Stats struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Evictions  uint64 `json:"evictions"`
	Coalesced  uint64 `json:"coalesced"`
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	Capacity   int64  `json:"capacityBytes"`
	Generation uint64 `json:"generation"`
}

type entry struct {
	key  string
	val  []byte
	gen  uint64
	cost int64
}

type shard struct {
	mu    sync.Mutex
	cap   int64
	bytes int64
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

// removeLocked drops the element; the shard mutex must be held.
func (sh *shard) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	delete(sh.items, e.key)
	sh.ll.Remove(el)
	sh.bytes -= e.cost
}

// flightCall is one in-flight compute plus the callers attached to it. The
// compute runs in its own goroutine under a context detached from any one
// caller (context.WithoutCancel keeps the leader's values — notably its
// trace — while dropping its cancel), so a waiter that gives up detaches
// without killing the result the other waiters are blocked on. waiters and
// retired are guarded by the cache's flightMu; the last waiter to leave an
// unretired flight cancels the compute.
type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
	// hit records that the leader's double-check found the value cached,
	// so waiters report Hit rather than Coalesced-on-a-compute.
	hit bool
	// abandoned records that the compute died because every waiter left —
	// a late joiner that observes it retries instead of inheriting the
	// dead flight's cancellation error.
	abandoned bool

	waiters int
	retired bool
	cancel  context.CancelFunc
}

// Cache is a sharded LRU result cache; safe for concurrent use. A nil
// *Cache is a valid disabled cache: Get always misses, Put is a no-op, and
// Do computes directly.
type Cache struct {
	capacity int64
	shards   []shard

	gen atomic.Uint64

	hits      atomic.Uint64
	misses    atomic.Uint64
	evictions atomic.Uint64
	coalesced atomic.Uint64

	flightMu sync.Mutex
	flights  map[string]*flightCall
}

// New returns a cache bounded to capacityBytes across the default shard
// count.
func New(capacityBytes int64) *Cache { return NewSharded(capacityBytes, defaultShards) }

// NewSharded returns a cache bounded to capacityBytes split evenly across
// the given number of shards. Capacity is rounded down to a multiple of
// the shard count so the bound is exact.
func NewSharded(capacityBytes int64, shards int) *Cache {
	if shards < 1 {
		shards = 1
	}
	if capacityBytes < 0 {
		capacityBytes = 0
	}
	per := capacityBytes / int64(shards)
	c := &Cache{
		capacity: per * int64(shards),
		shards:   make([]shard, shards),
		flights:  make(map[string]*flightCall),
	}
	for i := range c.shards {
		c.shards[i].cap = per
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[string]*list.Element)
	}
	return c
}

func (c *Cache) shardFor(key string) *shard {
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return &c.shards[h.Sum64()%uint64(len(c.shards))]
}

// lookup finds a live entry without touching the hit/miss counters.
func (c *Cache) lookup(key string) ([]byte, bool) {
	gen := c.gen.Load()
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*entry)
	if e.gen != gen {
		// Stale generation: lazily reclaim on access.
		sh.removeLocked(el)
		return nil, false
	}
	sh.ll.MoveToFront(el)
	return e.val, true
}

// Get returns the cached value for key, counting a hit or miss.
func (c *Cache) Get(key string) ([]byte, bool) {
	if c == nil {
		return nil, false
	}
	v, ok := c.lookup(key)
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return v, ok
}

// Put inserts a value at the current generation.
func (c *Cache) Put(key string, val []byte) {
	if c == nil {
		return
	}
	c.putAt(key, val, c.gen.Load())
}

// putAt inserts a value stamped with the generation its compute started
// at. If the cache has since been invalidated the stale result is dropped
// instead of resurrecting pre-invalidation state. Eviction runs before
// insertion so the shard's byte budget is never exceeded, even
// transiently.
func (c *Cache) putAt(key string, val []byte, gen uint64) {
	if gen != c.gen.Load() {
		return
	}
	cost := int64(len(key)+len(val)) + entryOverhead
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.items[key]; ok {
		sh.removeLocked(el) // replacement, not an eviction
	}
	if cost > sh.cap {
		return // can never fit; don't thrash the shard to make room
	}
	for sh.bytes+cost > sh.cap {
		back := sh.ll.Back()
		if back == nil {
			break
		}
		sh.removeLocked(back)
		c.evictions.Add(1)
	}
	sh.items[key] = sh.ll.PushFront(&entry{key: key, val: val, gen: gen, cost: cost})
	sh.bytes += cost
}

// Do returns the cached value for key, or computes it exactly once across
// all concurrent callers. Errors are returned to the leader and every
// coalesced waiter but never cached.
func (c *Cache) Do(key string, compute func() ([]byte, error)) ([]byte, Outcome, error) {
	return c.DoContext(context.Background(), key,
		func(context.Context) ([]byte, error) { return compute() })
}

// DoContext is Do under a request context. Coalescing semantics:
//
//   - The compute runs detached from any individual caller, under a context
//     that carries the leader's values but not its cancel. A caller whose
//     ctx ends while waiting detaches with ctx.Err(); the others keep
//     waiting and receive the result.
//   - The compute's context is canceled only when the last attached caller
//     has detached — nobody wants the answer anymore.
//   - A caller that joins a flight in the narrow window after its compute
//     was abandoned (all prior waiters gone) retries from the top instead
//     of inheriting the dead flight's cancellation error.
func (c *Cache) DoContext(ctx context.Context, key string, compute func(ctx context.Context) ([]byte, error)) ([]byte, Outcome, error) {
	if c == nil {
		v, err := compute(ctx)
		return v, Bypass, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, Bypass, err
		}
		if v, ok := c.lookup(key); ok {
			c.hits.Add(1)
			return v, Hit, nil
		}
		c.flightMu.Lock()
		if call, ok := c.flights[key]; ok {
			call.waiters++
			c.flightMu.Unlock()
			v, outcome, err, retry := c.wait(ctx, call, Coalesced)
			if retry {
				continue
			}
			return v, outcome, err
		}
		call := &flightCall{done: make(chan struct{}), waiters: 1}
		cctx, cancel := context.WithCancel(context.WithoutCancel(ctx))
		call.cancel = cancel
		c.flights[key] = call
		c.flightMu.Unlock()

		go c.runFlight(cctx, key, call, compute)

		// The leader waits like any other caller: if its request dies while
		// the compute is shared, it detaches and the survivors still get
		// the result.
		v, outcome, err, retry := c.wait(ctx, call, Miss)
		if retry {
			continue
		}
		return v, outcome, err
	}
}

// runFlight executes one coalesced compute and retires the flight.
func (c *Cache) runFlight(cctx context.Context, key string, call *flightCall, compute func(ctx context.Context) ([]byte, error)) {
	defer call.cancel()
	finish := func(val []byte, err error, hit, abandoned bool) {
		call.val, call.err = val, err
		call.hit, call.abandoned = hit, abandoned
		c.flightMu.Lock()
		call.retired = true
		delete(c.flights, key)
		c.flightMu.Unlock()
		close(call.done)
	}

	// Leader double-check: a previous flight may have filled the cache
	// between the miss and taking leadership; recomputing would break the
	// exactly-once guarantee.
	if v, ok := c.lookup(key); ok {
		c.hits.Add(1)
		finish(v, nil, true, false)
		return
	}

	gen := c.gen.Load()
	// `qcache.compute` is a fault injection site: an injected error or
	// cancel takes the exact path a failed compute does — surfaced to every
	// waiter, never cached — which is what the chaos suite's
	// "faults never poison the cache" replay proves.
	var v []byte
	err := fault.Inject(cctx, "qcache.compute")
	if err == nil {
		v, err = compute(cctx)
	}
	c.misses.Add(1)
	if err != nil {
		finish(nil, err, false, cctx.Err() != nil)
		return
	}
	// Publish before retiring the flight so late callers that missed the
	// cache either joined this flight or will hit the stored value.
	c.putAt(key, v, gen)
	finish(v, nil, false, false)
}

// wait blocks on the flight until it retires or ctx ends. own is the
// outcome to report on success (Miss for the flight's creator, Coalesced
// for joiners). retry is true when the flight was abandoned but this
// caller's ctx is still live — the caller should start over.
func (c *Cache) wait(ctx context.Context, call *flightCall, own Outcome) (v []byte, outcome Outcome, err error, retry bool) {
	select {
	case <-call.done:
		if call.abandoned && ctx.Err() == nil {
			return nil, own, nil, true
		}
		if call.hit {
			return call.val, Hit, call.err, false
		}
		if own == Coalesced {
			c.coalesced.Add(1)
		}
		return call.val, own, call.err, false
	case <-ctx.Done():
		c.flightMu.Lock()
		call.waiters--
		if call.waiters == 0 && !call.retired {
			// Last caller gone: nobody wants the result, kill the compute.
			call.cancel()
		}
		c.flightMu.Unlock()
		return nil, own, ctx.Err(), false
	}
}

// Sweep removes every live entry whose key satisfies pred and returns how
// many were dropped. It is the targeted-invalidation primitive behind
// per-dataset epochs: an append bumps one dataset's epoch — making that
// dataset's old-epoch keys unreachable — and Sweep reclaims their bytes
// eagerly instead of waiting for LRU pressure. Unlike Invalidate it leaves
// the generation untouched, so every other dataset's entries stay warm.
// Sweep walks each shard under its lock; in-flight computes for swept keys
// are unaffected (they re-insert under keys the predicate already judged).
func (c *Cache) Sweep(pred func(key string) bool) int {
	if c == nil || pred == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		for k, el := range sh.items {
			if pred(k) {
				sh.removeLocked(el)
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}

// Invalidate drops the whole cache in O(1) by bumping the generation;
// stale entries are reclaimed lazily on access.
func (c *Cache) Invalidate() {
	if c == nil {
		return
	}
	c.gen.Add(1)
}

// AdvanceGeneration raises the generation to at least gen, so callers can
// slave the cache to an external monotonic version (the framework's
// catalog version). Lower values are ignored.
func (c *Cache) AdvanceGeneration(gen uint64) {
	if c == nil {
		return
	}
	for {
		cur := c.gen.Load()
		if gen <= cur || c.gen.CompareAndSwap(cur, gen) {
			return
		}
	}
}

// Generation returns the current generation stamp.
func (c *Cache) Generation() uint64 {
	if c == nil {
		return 0
	}
	return c.gen.Load()
}

// Bytes returns the total accounted size of live entries.
func (c *Cache) Bytes() int64 {
	if c == nil {
		return 0
	}
	var n int64
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}

// Len returns the number of entries (including not-yet-reclaimed stale
// ones).
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	s := Stats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		Coalesced:  c.coalesced.Load(),
		Capacity:   c.capacity,
		Generation: c.gen.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		s.Entries += len(sh.items)
		s.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	return s
}
