package qcache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestCoalescedWaiterCancelDetaches: canceling one of N coalesced waiters
// must not disturb the shared compute — the other N−1 still get the result,
// and the compute runs exactly once.
func TestCoalescedWaiterCancelDetaches(t *testing.T) {
	c := New(1 << 20)
	release := make(chan struct{})
	started := make(chan struct{})
	var computes atomic.Int64

	compute := func(ctx context.Context) ([]byte, error) {
		computes.Add(1)
		close(started)
		select {
		case <-release:
			return []byte("v"), nil
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}

	// Leader.
	type res struct {
		v   []byte
		out Outcome
		err error
	}
	leaderCh := make(chan res, 1)
	go func() {
		v, out, err := c.DoContext(context.Background(), "k", compute)
		leaderCh <- res{v, out, err}
	}()
	<-started

	// N waiters, one of which will cancel.
	const n = 4
	cancelCtx, cancel := context.WithCancel(context.Background())
	canceledCh := make(chan res, 1)
	go func() {
		v, out, err := c.DoContext(cancelCtx, "k",
			func(context.Context) ([]byte, error) { t.Error("waiter must not compute"); return nil, nil })
		canceledCh <- res{v, out, err}
	}()
	var wg sync.WaitGroup
	results := make(chan res, n-1)
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, out, err := c.DoContext(context.Background(), "k",
				func(context.Context) ([]byte, error) { t.Error("waiter must not compute"); return nil, nil })
			results <- res{v, out, err}
		}()
	}
	// Give the waiters a moment to attach, then cancel one.
	time.Sleep(10 * time.Millisecond)
	cancel()
	got := <-canceledCh
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("canceled waiter err = %v, want context.Canceled", got.err)
	}

	// The compute is still live for the survivors.
	close(release)
	wg.Wait()
	close(results)
	for r := range results {
		if r.err != nil || string(r.v) != "v" {
			t.Fatalf("surviving waiter got (%q, %v, %v)", r.v, r.out, r.err)
		}
		if r.out != Coalesced {
			t.Fatalf("surviving waiter outcome = %v, want Coalesced", r.out)
		}
	}
	lr := <-leaderCh
	if lr.err != nil || string(lr.v) != "v" || lr.out != Miss {
		t.Fatalf("leader got (%q, %v, %v)", lr.v, lr.out, lr.err)
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computes = %d, want 1", n)
	}
}

// TestLastWaiterCancelKillsCompute: when every attached caller detaches,
// the shared compute's context must be canceled.
func TestLastWaiterCancelKillsCompute(t *testing.T) {
	c := New(1 << 20)
	started := make(chan struct{})
	computeDone := make(chan error, 1)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		_, _, _ = c.DoContext(ctx, "k", func(cctx context.Context) ([]byte, error) {
			close(started)
			<-cctx.Done() // only the all-waiters-gone cancel can end this
			computeDone <- cctx.Err()
			return nil, cctx.Err()
		})
	}()
	<-started
	cancel()
	select {
	case err := <-computeDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("compute ended with %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("compute not canceled after last waiter left")
	}

	// The abandoned flight must not poison the key: a fresh caller
	// becomes a new leader and computes.
	v, out, err := c.DoContext(context.Background(), "k",
		func(context.Context) ([]byte, error) { return []byte("fresh"), nil })
	if err != nil || string(v) != "fresh" {
		t.Fatalf("fresh caller got (%q, %v, %v)", v, out, err)
	}
}

// TestLateJoinerOfAbandonedFlightRetries: a caller that attaches in the
// window between the compute's cancellation and the flight's retirement
// must retry and get a real result, not the dead flight's error.
func TestLateJoinerOfAbandonedFlightRetries(t *testing.T) {
	c := New(1 << 20)
	started := make(chan struct{})
	block := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		_, _, _ = c.DoContext(ctx, "k", func(cctx context.Context) ([]byte, error) {
			close(started)
			<-cctx.Done()
			<-block // hold the canceled flight open so the joiner attaches to it
			return nil, cctx.Err()
		})
	}()
	<-started
	cancel()
	// Wait until the leader has detached (flight waiters drained).
	deadline := time.Now().Add(2 * time.Second)
	for {
		c.flightMu.Lock()
		call, ok := c.flights["k"]
		drained := ok && call.waiters == 0
		c.flightMu.Unlock()
		if drained {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("flight never drained")
		}
		time.Sleep(time.Millisecond)
	}

	joined := make(chan struct {
		v   []byte
		err error
	}, 1)
	go func() {
		v, _, err := c.DoContext(context.Background(), "k",
			func(context.Context) ([]byte, error) { return []byte("retried"), nil })
		joined <- struct {
			v   []byte
			err error
		}{v, err}
	}()
	time.Sleep(10 * time.Millisecond) // let the joiner attach to the dead flight
	close(block)

	select {
	case r := <-joined:
		if r.err != nil || string(r.v) != "retried" {
			t.Fatalf("late joiner got (%q, %v), want retried result", r.v, r.err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("late joiner never completed")
	}
}

// TestDoContextDeadCtxShortCircuits: a context that is already done never
// invokes the compute and never touches the flight table.
func TestDoContextDeadCtxShortCircuits(t *testing.T) {
	c := New(1 << 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := c.DoContext(ctx, "k",
		func(context.Context) ([]byte, error) { t.Fatal("computed"); return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(c.flights) != 0 {
		t.Fatal("dead ctx left a flight behind")
	}
}
