// This file is an external test package (qcache_test, not qcache): it
// imports internal/query, which reaches qcache again through the slab-fold
// joiner's cache keys — an import cycle if these tests compiled into the
// package proper.
package qcache_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/qcache"
	"repro/internal/query"
)

// cacheKeyCorpus mirrors the statement corpus in internal/query's
// FuzzParse, plus variants that differ only in filter order, whitespace,
// case, or bounds — the shapes a cache key must separate or unify
// correctly.
var cacheKeyCorpus = []string{
	"SELECT COUNT(*) FROM taxi, neighborhoods GROUP BY id",
	"SELECT AVG(fare) FROM a, b WHERE fare BETWEEN 5 AND 30",
	"SELECT MAX(x) FROM p, r WHERE time BETWEEN 0 AND 86400",
	"select sum(y) from p , r where inside and y between -1 and 2.5",
	"SELECT",
	"((((",
	"SELECT COUNT(*) FROM a, b WHERE fare BETWEEN one AND two",
	"SELECT COUNT(*) FROM a, b WHERE fare BETWEEN 5 AND 30 AND dist BETWEEN 1 AND 2",
	"SELECT COUNT(*) FROM a, b WHERE dist BETWEEN 1 AND 2 AND fare BETWEEN 5 AND 30",
	"SELECT COUNT(*) FROM a, b WHERE fare BETWEEN -0 AND 30",
	"SELECT COUNT(*) FROM a, b WHERE fare BETWEEN 0 AND 30",
	"SELECT MIN(fare) FROM taxi, grid WHERE time BETWEEN 3599 AND 7201",
}

// canonicalKey applies the server's /api/query canonicalization: sort the
// filter set, snap the time window, re-render, and key the quoted
// statement.
func canonicalKey(q query.Query, snap int64) (string, query.Query) {
	q.Filters = qcache.CanonFilters(q.Filters)
	q.Time = qcache.SnapTime(q.Time, snap)
	return qcache.NewSig("query").Str("stmt", q.String()).Key(), q
}

// floatEq compares filter bounds the way the canonical encoding does: all
// NaNs are one value, and ±0 collapse.
func floatEq(a, b float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return a == b // ±0 compare equal in float64
}

func timeEq(a, b *core.TimeFilter) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

// canonEqual is structural equality of two canonicalized queries —
// computed independently of the string encoding, so it catches both
// collision bugs (different queries, same key) and fragmentation bugs
// (same query, different keys).
func canonEqual(a, b query.Query) bool {
	if a.Agg != b.Agg || a.Attr != b.Attr || a.Points != b.Points || a.Regions != b.Regions {
		return false
	}
	if !timeEq(a.Time, b.Time) {
		return false
	}
	if len(a.Filters) != len(b.Filters) {
		return false
	}
	for i := range a.Filters {
		fa, fb := a.Filters[i], b.Filters[i]
		if fa.Attr != fb.Attr || !floatEq(fa.Min, fb.Min) || !floatEq(fa.Max, fb.Max) {
			return false
		}
	}
	return true
}

// FuzzCacheKey asserts the cache key is a perfect fingerprint of the
// canonical query: for any two parseable statements, the keys are equal
// if and only if the canonicalized queries are structurally equal. The
// "only if" direction is the no-collision guarantee — semantically
// different queries can never share a cache entry.
func FuzzCacheKey(f *testing.F) {
	for i, a := range cacheKeyCorpus {
		f.Add(a, cacheKeyCorpus[(i+1)%len(cacheKeyCorpus)], int64(1))
		f.Add(a, a, int64(3600))
	}
	f.Add("SELECT COUNT(*) FROM t, r WHERE time BETWEEN 1 AND 3599",
		"SELECT COUNT(*) FROM t, r WHERE time BETWEEN 2 AND 3600", int64(3600))
	f.Fuzz(func(t *testing.T, stmtA, stmtB string, snap int64) {
		if snap < 1 {
			snap = 1
		}
		snap %= 1 << 32
		qa, errA := query.Parse(stmtA)
		qb, errB := query.Parse(stmtB)
		if errA != nil || errB != nil {
			return
		}
		keyA, canonA := canonicalKey(qa, snap)
		keyB, canonB := canonicalKey(qb, snap)
		same := canonEqual(canonA, canonB)
		if same && keyA != keyB {
			t.Fatalf("equivalent queries fragmented:\n%q -> %s\n%q -> %s", stmtA, keyA, stmtB, keyB)
		}
		if !same && keyA == keyB {
			t.Fatalf("different queries collided on %s:\n%q (canon %+v)\n%q (canon %+v)",
				keyA, stmtA, canonA, stmtB, canonB)
		}
	})
}
