package qcache

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
)

// TestStressMixedOps hammers one cache from 64 goroutines with a mix of
// gets, puts, coalesced computes, invalidations, and stats snapshots. Run
// under -race (the Makefile's `stress` target and CI do); the assertions
// here check the byte bound and counter sanity, the race detector checks
// everything else.
func TestStressMixedOps(t *testing.T) {
	const (
		workers  = 64
		opsEach  = 2000
		capacity = 64 << 10
		keySpace = 100
	)
	c := New(capacity)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < opsEach; i++ {
				key := fmt.Sprintf("key-%d", rng.Intn(keySpace))
				switch op := rng.Intn(100); {
				case op < 40:
					c.Get(key)
				case op < 70:
					c.Put(key, make([]byte, rng.Intn(256)))
				case op < 95:
					_, _, _ = c.Do(key, func() ([]byte, error) {
						return []byte(key), nil
					})
				case op < 97:
					c.Invalidate()
				default:
					if got := c.Stats().Bytes; got > capacity {
						t.Errorf("bytes %d exceeds capacity %d", got, capacity)
					}
				}
			}
		}(int64(w))
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > capacity {
		t.Errorf("final bytes %d exceeds capacity %d", st.Bytes, capacity)
	}
	if st.Hits+st.Misses == 0 {
		t.Error("stress run recorded no lookups")
	}
	// Every live entry must be one of the values ever written for its key:
	// Put stores up to 256 zero bytes, Do stores the key itself.
	for i := 0; i < keySpace; i++ {
		key := fmt.Sprintf("key-%d", i)
		if v, ok := c.Get(key); ok && !bytes.Equal(v, []byte(key)) && len(v) >= 256 {
			t.Errorf("corrupt entry for %s: %d bytes", key, len(v))
		}
	}
}

// TestStressByteBoundUnderConcurrentPuts samples the byte accounting while
// writers churn, proving the capacity bound holds at every observable
// moment, not just at rest.
func TestStressByteBoundUnderConcurrentPuts(t *testing.T) {
	const capacity = 16 << 10
	c := NewSharded(capacity, 8)
	stop := make(chan struct{})
	var violations atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if c.Bytes() > capacity {
						violations.Add(1)
					}
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 16; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 3000; i++ {
				c.Put(fmt.Sprintf("k%d", rng.Intn(400)), make([]byte, rng.Intn(512)))
			}
		}(int64(w))
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	if n := violations.Load(); n != 0 {
		t.Errorf("observed %d byte-bound violations", n)
	}
}

// TestCoalesceExactlyOneCompute proves the singleflight contract: 100
// concurrent identical requests share exactly one compute. The compute
// function is instrumented and gated so it cannot finish before every
// goroutine has launched; goroutines arriving after it finishes are served
// from the cache (the leader publishes before retiring the flight), so
// the exactly-once property holds regardless of interleaving.
func TestCoalesceExactlyOneCompute(t *testing.T) {
	const clients = 100
	c := New(1 << 20)
	var computes atomic.Int64
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	compute := func() ([]byte, error) {
		computes.Add(1)
		select {
		case started <- struct{}{}:
		default:
		}
		<-release
		return []byte("payload"), nil
	}

	results := make(chan struct {
		val     []byte
		outcome Outcome
		err     error
	}, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, o, err := c.Do("hot-key", compute)
			results <- struct {
				val     []byte
				outcome Outcome
				err     error
			}{v, o, err}
		}()
	}
	<-started // the leader is inside compute; nobody can finish yet
	close(release)
	wg.Wait()
	close(results)

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", n)
	}
	var misses, coalesced, hits int
	for r := range results {
		if r.err != nil {
			t.Fatal(r.err)
		}
		if string(r.val) != "payload" {
			t.Fatalf("diverged result %q", r.val)
		}
		switch r.outcome {
		case Miss:
			misses++
		case Coalesced:
			coalesced++
		case Hit:
			hits++
		default:
			t.Fatalf("unexpected outcome %q", r.outcome)
		}
	}
	if misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (the leader)", misses)
	}
	if coalesced+hits != clients-1 {
		t.Errorf("coalesced %d + hits %d != %d", coalesced, hits, clients-1)
	}
	if st := c.Stats(); st.Misses != 1 {
		t.Errorf("stats.misses = %d, want 1", st.Misses)
	}
}

// TestCoalesceErrorFansOut: when the single compute fails, every waiter
// receives the same error and nothing is cached.
func TestCoalesceErrorFansOut(t *testing.T) {
	const clients = 20
	c := New(1 << 20)
	var computes atomic.Int64
	release := make(chan struct{})
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.Do("bad-key", func() ([]byte, error) {
				computes.Add(1)
				<-release
				return nil, fmt.Errorf("compute failed")
			})
			errs <- err
		}()
	}
	// Wait for the leader to be in flight, then let everyone pile up
	// before releasing: a failed leader retires the flight, so a straggler
	// may legitimately start a second compute — but each compute must see
	// the error, and the error must never be cached.
	close(release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("expected every caller to see the compute error")
		}
	}
	if _, ok := c.Get("bad-key"); ok {
		t.Fatal("failed compute must not be cached")
	}
}
