package qcache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// sigForFilters builds the same signature shape the server's map-view key
// uses, isolating the filter-set encoding.
func sigForFilters(fs []core.Filter) string {
	return NewSig("mapview").Str("dataset", "taxi").Filters("f", fs).Key()
}

// TestKeyFilterOrderInsensitive: canonicalization makes the key invariant
// under any permutation of the conjunctive filter set.
func TestKeyFilterOrderInsensitive(t *testing.T) {
	prop := func(fs []core.Filter, seed int64) bool {
		shuffled := make([]core.Filter, len(fs))
		copy(shuffled, fs)
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		return sigForFilters(fs) == sigForFilters(shuffled)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestKeyFilterSetSensitive: appending a filter that is not already in the
// set must change the key (no silent collisions across different sets).
func TestKeyFilterSetSensitive(t *testing.T) {
	prop := func(fs []core.Filter, extra core.Filter) bool {
		for _, f := range fs {
			if f == extra {
				return true // duplicate; the sets could canonicalize equal
			}
		}
		return sigForFilters(fs) != sigForFilters(append(append([]core.Filter{}, fs...), extra))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestKeyFieldBoundaries: adversarial strings containing the encoding's
// own separators must not let one field bleed into the next.
func TestKeyFieldBoundaries(t *testing.T) {
	a := NewSig("q").Str("dataset", `taxi|layer="x"`).Str("layer", "y").Key()
	b := NewSig("q").Str("dataset", "taxi").Str("layer", `x"|layer="y`).Key()
	if a == b {
		t.Fatalf("separator injection collided: %q", a)
	}
	c := NewSig("q").Filters("f", []core.Filter{{Attr: "a|b", Min: 1, Max: 2}}).Key()
	d := NewSig("q").Filters("f", []core.Filter{{Attr: "a", Min: 1, Max: 2}, {Attr: "b", Min: 1, Max: 2}}).Key()
	if c == d {
		t.Fatalf("filter boundary injection collided: %q", c)
	}
}

// TestKeyNegativeZeroNormalized: [-0, x) and [0, x) are the same range and
// must share a cache entry.
func TestKeyNegativeZeroNormalized(t *testing.T) {
	neg := []core.Filter{{Attr: "fare", Min: negZero(), Max: 10}}
	pos := []core.Filter{{Attr: "fare", Min: 0, Max: 10}}
	if sigForFilters(neg) != sigForFilters(pos) {
		t.Error("-0.0 and +0.0 bounds should canonicalize to the same key")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

// TestSnapTimeProperties: the snapped window always covers the requested
// one, aligns to the granularity, and is idempotent.
func TestSnapTimeProperties(t *testing.T) {
	prop := func(start, span int64, granSeed uint16) bool {
		if span < 0 {
			span = -span
		}
		span %= 1 << 40
		start %= 1 << 40
		gran := int64(granSeed)%86400 + 1
		in := &core.TimeFilter{Start: start, End: start + span}
		out := SnapTime(in, gran)
		if gran <= 1 {
			return out == in
		}
		covers := out.Start <= in.Start && out.End >= in.End
		aligned := out.Start%gran == 0 && out.End%gran == 0
		again := SnapTime(out, gran)
		idempotent := *again == *out
		return covers && aligned && out.End > out.Start && idempotent
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	if SnapTime(nil, 3600) != nil {
		t.Error("nil time filter must stay nil")
	}
	// Negative timestamps floor/ceil correctly.
	got := SnapTime(&core.TimeFilter{Start: -10, End: -1}, 60)
	if got.Start != -60 || got.End != 0 {
		t.Errorf("negative snap = [%d,%d), want [-60,0)", got.Start, got.End)
	}
}
