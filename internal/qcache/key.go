package qcache

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/core"
)

// Sig accumulates the canonical signature of a query as an ordered list of
// named fields and renders an injective string key. The encoding is
// `kind|name=value|name=value|...` where every string value is
// strconv.Quote'd (so quotes inside values are always escaped and the
// field structure stays unambiguous), numbers are rendered in canonical
// decimal form, and composite fields (filter sets, time ranges) are
// length- and index-tagged. Two signatures built from different canonical
// field values therefore always render different keys.
type Sig struct {
	b []byte
}

// NewSig starts a signature for one endpoint kind.
func NewSig(kind string) *Sig {
	s := &Sig{b: make([]byte, 0, 128)}
	s.b = strconv.AppendQuote(s.b, kind)
	return s
}

func (s *Sig) field(name string) {
	s.b = append(s.b, '|')
	s.b = append(s.b, name...)
	s.b = append(s.b, '=')
}

// Str appends a quoted string field.
func (s *Sig) Str(name, v string) *Sig {
	s.field(name)
	s.b = strconv.AppendQuote(s.b, v)
	return s
}

// Int appends an integer field.
func (s *Sig) Int(name string, v int64) *Sig {
	s.field(name)
	s.b = strconv.AppendInt(s.b, v, 10)
	return s
}

// Float appends a float field in canonical form: shortest round-trippable
// decimal, with negative zero normalized to zero so the semantically
// identical bounds -0.0 and 0.0 share a key.
func (s *Sig) Float(name string, v float64) *Sig {
	s.field(name)
	if v == 0 {
		v = 0 // collapses -0.0 onto +0.0
	}
	s.b = strconv.AppendFloat(s.b, v, 'g', -1, 64)
	return s
}

// Filters appends a filter set in canonical (order-insensitive) form: the
// set is copied, normalized, and sorted before encoding, so any
// permutation of the same conjunctive filters renders the same key.
func (s *Sig) Filters(name string, fs []core.Filter) *Sig {
	canon := CanonFilters(fs)
	s.Int(name+".n", int64(len(canon)))
	for i, f := range canon {
		tag := name + "." + strconv.Itoa(i)
		s.Str(tag+".attr", f.Attr)
		s.Float(tag+".min", f.Min)
		s.Float(tag+".max", f.Max)
	}
	return s
}

// Epoch appends the dataset's per-dataset epoch pair. Keys carry the
// epoch so a write to one dataset produces fresh keys for that dataset
// alone — the generation stays put and every other dataset's entries
// remain reachable. The pair renders as `|eds="name"|ep=N`, which is what
// EpochPrefix matches for targeted sweeps.
func (s *Sig) Epoch(dataset string, epoch uint64) *Sig {
	return s.Str("eds", dataset).Int("ep", int64(epoch))
}

// EpochPrefix returns the substring every key tagged with
// Epoch(dataset, ·) contains up to (and excluding) the epoch number.
// Sweep predicates use it to select one dataset's entries and spare the
// ones already keyed at the current epoch.
func EpochPrefix(dataset string) string {
	return "|eds=" + strconv.Quote(dataset) + "|ep="
}

// TimeRange appends an optional time filter; presence is encoded
// explicitly so "no filter" can never collide with any concrete window.
func (s *Sig) TimeRange(name string, t *core.TimeFilter) *Sig {
	if t == nil {
		return s.Int(name+".has", 0)
	}
	s.Int(name+".has", 1)
	s.Int(name+".start", t.Start)
	s.Int(name+".end", t.End)
	return s
}

// Key renders the accumulated signature.
func (s *Sig) Key() string { return string(s.b) }

// CanonFilters returns the canonical form of a conjunctive filter set:
// a copy with negative-zero bounds normalized and entries sorted by
// (Attr, Min, Max). Conjunction is order-insensitive, so this is
// semantics-preserving.
func CanonFilters(fs []core.Filter) []core.Filter {
	if len(fs) == 0 {
		return nil
	}
	canon := make([]core.Filter, len(fs))
	for i, f := range fs {
		if f.Min == 0 {
			f.Min = 0
		}
		if f.Max == 0 {
			f.Max = 0
		}
		canon[i] = f
	}
	sort.Slice(canon, func(i, j int) bool {
		a, b := canon[i], canon[j]
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		if c := cmpFloat(a.Min, b.Min); c != 0 {
			return c < 0
		}
		return cmpFloat(a.Max, b.Max) < 0
	})
	return canon
}

// cmpFloat is a total order over float64 so sorting stays deterministic
// even for NaN bounds (which the parser can produce): NaN sorts before
// everything and all NaNs tie, matching their identical key encoding.
func cmpFloat(a, b float64) int {
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// SnapTime quantizes a time window outward to multiples of gran: the start
// floors and the end ceils, so the snapped window always covers the
// requested one. Interactive time sliders produce ragged millisecond-level
// windows; snapping them to the workload's bucket granularity makes
// consecutive drags share cache entries. The server applies the same
// snapped window to execution and to the cache key, so caching never
// changes what a given request returns. gran <= 1 is the identity.
func SnapTime(t *core.TimeFilter, gran int64) *core.TimeFilter {
	if t == nil || gran <= 1 {
		return t
	}
	start := floorDiv(t.Start, gran) * gran
	end := ceilDiv(t.End, gran) * gran
	if end <= start {
		end = start + gran
	}
	return &core.TimeFilter{Start: start, End: end}
}

// floorDiv is integer division rounding toward negative infinity (gran > 0).
func floorDiv(a, g int64) int64 {
	q := a / g
	if a%g != 0 && a < 0 {
		q--
	}
	return q
}

// ceilDiv is integer division rounding toward positive infinity (gran > 0).
func ceilDiv(a, g int64) int64 {
	q := a / g
	if a%g != 0 && a > 0 {
		q++
	}
	return q
}
