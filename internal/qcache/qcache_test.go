package qcache

import (
	"errors"
	"fmt"
	"testing"
)

func TestGetPut(t *testing.T) {
	c := New(1 << 20)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache should miss")
	}
	c.Put("a", []byte("alpha"))
	v, ok := c.Get("a")
	if !ok || string(v) != "alpha" {
		t.Fatalf("get a = %q, %v", v, ok)
	}
	// Overwrite replaces.
	c.Put("a", []byte("beta"))
	if v, _ := c.Get("a"); string(v) != "beta" {
		t.Fatalf("overwrite: got %q", v)
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestGenerationInvalidation(t *testing.T) {
	c := New(1 << 20)
	c.Put("a", []byte("alpha"))
	c.Put("b", []byte("beta"))
	c.Invalidate()
	if _, ok := c.Get("a"); ok {
		t.Fatal("invalidated entry should miss")
	}
	// Stale entries are reclaimed on access.
	if got := c.Len(); got != 1 {
		t.Errorf("len after stale access = %d, want 1 (b not yet touched)", got)
	}
	// New puts at the new generation are live.
	c.Put("a", []byte("alpha2"))
	if v, ok := c.Get("a"); !ok || string(v) != "alpha2" {
		t.Fatalf("post-invalidate put missed: %q %v", v, ok)
	}
	if gen := c.Generation(); gen != 1 {
		t.Errorf("generation = %d", gen)
	}
}

func TestAdvanceGenerationMonotonic(t *testing.T) {
	c := New(1 << 20)
	c.AdvanceGeneration(7)
	if c.Generation() != 7 {
		t.Fatalf("generation = %d", c.Generation())
	}
	c.AdvanceGeneration(3) // lower values ignored
	if c.Generation() != 7 {
		t.Fatalf("generation regressed to %d", c.Generation())
	}
	c.Put("k", []byte("v"))
	c.AdvanceGeneration(8)
	if _, ok := c.Get("k"); ok {
		t.Fatal("advance should invalidate older entries")
	}
}

func TestLRUEviction(t *testing.T) {
	// One shard so the LRU order is fully observable. Each entry costs
	// entryOverhead + len(key) + len(val) = 160 + 1 + 39 = 200.
	c := NewSharded(3*200, 1)
	val := make([]byte, 39)
	c.Put("a", val)
	c.Put("b", val)
	c.Put("c", val)
	if _, ok := c.Get("a"); !ok { // touch a so b becomes LRU
		t.Fatal("a should be cached")
	}
	c.Put("d", val) // evicts b
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted as LRU")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
}

func TestOversizedEntryNotCached(t *testing.T) {
	c := NewSharded(1024, 1)
	c.Put("big", make([]byte, 4096))
	if _, ok := c.Get("big"); ok {
		t.Fatal("entry larger than the shard budget must not be cached")
	}
	if got := c.Bytes(); got != 0 {
		t.Errorf("bytes = %d, want 0", got)
	}
	// And it must not have evicted anything to try.
	c.Put("small", []byte("x"))
	c.Put("big", make([]byte, 4096))
	if _, ok := c.Get("small"); !ok {
		t.Error("oversized put must not evict resident entries")
	}
}

func TestByteBoundHonored(t *testing.T) {
	const capacity = 4096
	c := NewSharded(capacity, 4)
	for i := 0; i < 500; i++ {
		c.Put(fmt.Sprintf("key-%d", i), make([]byte, i%200))
		if got := c.Bytes(); got > capacity {
			t.Fatalf("after put %d: bytes = %d exceeds capacity %d", i, got, capacity)
		}
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Error("expected evictions under byte pressure")
	}
}

func TestDoComputesAndCaches(t *testing.T) {
	c := New(1 << 20)
	calls := 0
	compute := func() ([]byte, error) { calls++; return []byte("v"), nil }
	v, outcome, err := c.Do("k", compute)
	if err != nil || string(v) != "v" || outcome != Miss {
		t.Fatalf("first Do = %q %v %v", v, outcome, err)
	}
	v, outcome, err = c.Do("k", compute)
	if err != nil || string(v) != "v" || outcome != Hit {
		t.Fatalf("second Do = %q %v %v", v, outcome, err)
	}
	if calls != 1 {
		t.Errorf("compute ran %d times", calls)
	}
}

func TestDoErrorNotCached(t *testing.T) {
	c := New(1 << 20)
	boom := errors.New("boom")
	calls := 0
	_, outcome, err := c.Do("k", func() ([]byte, error) { calls++; return nil, boom })
	if !errors.Is(err, boom) || outcome != Miss {
		t.Fatalf("Do = %v %v", outcome, err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("errors must not be cached")
	}
	if _, _, err := c.Do("k", func() ([]byte, error) { calls++; return []byte("ok"), nil }); err != nil {
		t.Fatal(err)
	}
	if calls != 2 {
		t.Errorf("compute ran %d times, want 2 (error retried)", calls)
	}
}

func TestDoDropsResultComputedAcrossInvalidation(t *testing.T) {
	c := New(1 << 20)
	_, _, err := c.Do("k", func() ([]byte, error) {
		c.Invalidate() // the catalog changed mid-compute
		return []byte("stale"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("result computed across an invalidation must not be cached")
	}
}

func TestNilCacheBypasses(t *testing.T) {
	var c *Cache
	if _, ok := c.Get("k"); ok {
		t.Fatal("nil cache should miss")
	}
	c.Put("k", []byte("v")) // must not panic
	c.Invalidate()
	c.AdvanceGeneration(5)
	calls := 0
	for i := 0; i < 2; i++ {
		v, outcome, err := c.Do("k", func() ([]byte, error) { calls++; return []byte("v"), nil })
		if err != nil || string(v) != "v" || outcome != Bypass {
			t.Fatalf("nil Do = %q %v %v", v, outcome, err)
		}
	}
	if calls != 2 {
		t.Errorf("nil cache must compute every time, got %d calls", calls)
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil stats = %+v", st)
	}
}
