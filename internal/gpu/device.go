// Package gpu implements a deterministic software stand-in for the GPU
// rendering pipeline Raster Join targets. It exposes the exact subset of
// OpenGL functionality the paper's implementation uses — render targets
// ("textures"), point and polygon draw calls whose per-fragment work is a
// user-supplied shader function, additive blending, a maximum texture size
// that forces tiled multi-pass rendering, and draw-call statistics.
//
// Substituting a software rasterizer preserves the algorithmic content of
// Raster Join (what is drawn, and how fragments combine) while removing the
// hardware dependency; see DESIGN.md for the substitution argument.
package gpu

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
	"repro/internal/raster"
)

// Stats counts the work a device has performed. Counters are cumulative
// across all canvases created from the device and safe for concurrent draws.
type Stats struct {
	DrawCalls       int64 // point/polygon/triangle draw invocations
	Passes          int64 // render passes (one per canvas per tile)
	PointsIn        int64 // point vertices submitted
	TrianglesIn     int64 // triangles submitted
	PolygonsIn      int64 // polygons submitted
	FragmentsShaded int64 // fragment-shader invocations
}

// Device is a software GPU. The zero value is not usable; call New.
type Device struct {
	maxTextureSize int
	spanCacheBytes int64
	spans          *raster.SpanCache

	drawCalls       atomic.Int64
	passes          atomic.Int64
	pointsIn        atomic.Int64
	trianglesIn     atomic.Int64
	polygonsIn      atomic.Int64
	fragmentsShaded atomic.Int64

	// Render-target accounting: canvases and pooled textures currently
	// acquired and not yet released. Cancellation hygiene tests assert both
	// gauges return to zero after an aborted join — a leak here is the
	// software analogue of leaking GPU memory.
	liveCanvases atomic.Int64
	liveTextures atomic.Int64

	texMu   sync.Mutex
	texFree map[int][]*Texture // free lists keyed by pixel count
}

// Option configures a Device.
type Option func(*Device)

// WithMaxTextureSize caps render-target dimensions, forcing callers to tile
// larger canvases into multiple passes — the same constraint a real GPU's
// GL_MAX_TEXTURE_SIZE imposes on Raster Join.
func WithMaxTextureSize(n int) Option {
	return func(d *Device) {
		if n > 0 {
			d.maxTextureSize = n
		}
	}
}

// DefaultMaxTextureSize matches a mid-range GPU while keeping the software
// simulation's memory footprint modest.
const DefaultMaxTextureSize = 4096

// DefaultSpanCacheBytes bounds the region span cache: enough for dozens of
// compiled layers at map-view resolutions without pinning real memory.
const DefaultSpanCacheBytes int64 = 64 << 20

// WithSpanCacheBytes sizes the device's region span cache (0 disables it).
// The cache holds compiled polygon rasterizations — scanline span lists —
// keyed by (region-set stamp, transform), so repeated queries over a fixed
// layer replay spans instead of re-scan-converting every polygon.
func WithSpanCacheBytes(n int64) Option {
	return func(d *Device) { d.spanCacheBytes = n }
}

// New returns a ready device.
func New(opts ...Option) *Device {
	d := &Device{maxTextureSize: DefaultMaxTextureSize, spanCacheBytes: DefaultSpanCacheBytes}
	for _, o := range opts {
		o(d)
	}
	d.spans = raster.NewSpanCache(d.spanCacheBytes)
	return d
}

// MaxTextureSize returns the largest canvas dimension the device accepts.
func (d *Device) MaxTextureSize() int { return d.maxTextureSize }

// SpanCache returns the device's region span cache (nil — a valid disabled
// cache — when the device was built with WithSpanCacheBytes(0)).
func (d *Device) SpanCache() *raster.SpanCache { return d.spans }

// Stats returns a snapshot of the device's counters.
func (d *Device) Stats() Stats {
	return Stats{
		DrawCalls:       d.drawCalls.Load(),
		Passes:          d.passes.Load(),
		PointsIn:        d.pointsIn.Load(),
		TrianglesIn:     d.trianglesIn.Load(),
		PolygonsIn:      d.polygonsIn.Load(),
		FragmentsShaded: d.fragmentsShaded.Load(),
	}
}

// ResetStats zeroes the device counters.
func (d *Device) ResetStats() {
	d.drawCalls.Store(0)
	d.passes.Store(0)
	d.pointsIn.Store(0)
	d.trianglesIn.Store(0)
	d.polygonsIn.Store(0)
	d.fragmentsShaded.Store(0)
}

// LiveCanvases returns the number of canvases acquired and not yet released.
func (d *Device) LiveCanvases() int64 { return d.liveCanvases.Load() }

// LiveTextures returns the number of pooled textures acquired and not yet
// released.
func (d *Device) LiveTextures() int64 { return d.liveTextures.Load() }

// poolClassCap bounds each free list so a burst of large renders cannot pin
// unbounded memory in the pool.
const poolClassCap = 8

// AcquireTexture returns a cleared w×h texture, reusing a pooled allocation
// of the same pixel count when one is free. Pair with ReleaseTexture; a
// canceled join must still release its textures or the device's live gauge
// reports the leak.
func (d *Device) AcquireTexture(w, h int) *Texture {
	n := w * h
	d.texMu.Lock()
	free := d.texFree[n]
	if l := len(free); l > 0 {
		t := free[l-1]
		d.texFree[n] = free[:l-1]
		d.texMu.Unlock()
		d.liveTextures.Add(1)
		t.W, t.H = w, h
		t.Clear()
		return t
	}
	d.texMu.Unlock()
	d.liveTextures.Add(1)
	return NewTexture(w, h)
}

// ReleaseTexture returns a texture to the pool. Nil is ignored; releasing
// the same texture twice corrupts the pool, so callers release exactly once
// (the core joiners do it through defers that run on both the success and
// the cancellation path).
func (d *Device) ReleaseTexture(t *Texture) {
	if t == nil {
		return
	}
	d.liveTextures.Add(-1)
	n := len(t.Data)
	d.texMu.Lock()
	if d.texFree == nil {
		d.texFree = make(map[int][]*Texture)
	}
	if len(d.texFree[n]) < poolClassCap {
		d.texFree[n] = append(d.texFree[n], t)
	}
	d.texMu.Unlock()
}

// Canvas is a render target bound to a world window: draws against it
// rasterize world-space geometry onto its pixel grid. A Canvas corresponds
// to one framebuffer-object pass in the paper's implementation.
type Canvas struct {
	dev *Device
	// T is the world-to-pixel transform of this render target.
	T raster.Transform

	released atomic.Bool
}

// NewCanvas starts a render pass over a w×h target mapped to the world
// window. It fails when either dimension exceeds the device's maximum
// texture size — callers must tile (see Tiles).
func (d *Device) NewCanvas(world geom.BBox, w, h int) (*Canvas, error) {
	if w < 1 || h < 1 {
		return nil, fmt.Errorf("gpu: invalid canvas size %dx%d", w, h)
	}
	if w > d.maxTextureSize || h > d.maxTextureSize {
		return nil, fmt.Errorf("gpu: canvas %dx%d exceeds max texture size %d (tile the render)",
			w, h, d.maxTextureSize)
	}
	d.passes.Add(1)
	d.liveCanvases.Add(1)
	return &Canvas{dev: d, T: raster.NewTransform(world, w, h)}, nil
}

// Release ends the canvas's render pass, decrementing the device's live
// gauge. Idempotent, so both a deferred release and an explicit one on the
// happy path are safe.
func (c *Canvas) Release() {
	if c == nil || c.released.Swap(true) {
		return
	}
	c.dev.liveCanvases.Add(-1)
}

// Tiles partitions a full-resolution transform into canvas-sized passes and
// invokes fn with each pass's canvas plus the pixel offset of the tile in
// the full grid. This is the multi-pass strategy bounded Raster Join uses
// when its ε-derived resolution exceeds the texture limit.
func (d *Device) Tiles(full raster.Transform, fn func(c *Canvas, offX, offY int) error) error {
	step := d.maxTextureSize
	for y0 := 0; y0 < full.H; y0 += step {
		for x0 := 0; x0 < full.W; x0 += step {
			w := min(step, full.W-x0)
			h := min(step, full.H-y0)
			sub := full.Sub(x0, y0, w, h)
			c, err := d.NewCanvas(sub.World, sub.W, sub.H)
			if err != nil {
				return err
			}
			err = fn(c, x0, y0)
			c.Release()
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// PointShader receives each point fragment: the pixel it landed in and the
// index of the source vertex, mirroring a fragment shader reading per-vertex
// attributes.
type PointShader func(px, py, i int)

// FragmentShader receives each covered pixel of a filled primitive.
type FragmentShader func(px, py int)

// DrawPoints rasterizes n point vertices whose world position is supplied by
// pos. Points outside the canvas window are culled (clipped) without shading.
func (c *Canvas) DrawPoints(n int, pos func(i int) (x, y float64), shader PointShader) {
	c.dev.drawCalls.Add(1)
	c.dev.pointsIn.Add(int64(n))
	var shaded int64
	for i := 0; i < n; i++ {
		x, y := pos(i)
		px, py, ok := c.T.ToPixel(geom.Point{X: x, Y: y})
		if !ok {
			continue
		}
		shaded++
		shader(px, py, i)
	}
	c.dev.fragmentsShaded.Add(shaded)
}

// DrawTriangles rasterizes a triangle list with pixel-center coverage,
// invoking the fragment shader once per covered pixel per triangle.
func (c *Canvas) DrawTriangles(tris []geom.Triangle, shader FragmentShader) {
	c.dev.drawCalls.Add(1)
	c.dev.trianglesIn.Add(int64(len(tris)))
	var shaded int64
	for _, tr := range tris {
		raster.FillTriangle(c.T, tr, func(px, py int) {
			shaded++
			shader(px, py)
		})
	}
	c.dev.fragmentsShaded.Add(shaded)
}

// DrawPolygon rasterizes a polygon with pixel-center coverage. The device
// consumes concave polygons directly through its scanline pipeline, which
// produces the identical fragment set a triangulated draw would — each
// pixel center is covered by exactly one triangle of any valid
// triangulation — without the CPU tessellation cost.
func (c *Canvas) DrawPolygon(pg geom.Polygon, shader FragmentShader) {
	c.dev.drawCalls.Add(1)
	c.dev.polygonsIn.Add(1)
	var shaded int64
	raster.FillPolygon(c.T, pg, func(px, py int) {
		shaded++
		shader(px, py)
	})
	c.dev.fragmentsShaded.Add(shaded)
}

// DrawPolygonOutline conservatively rasterizes the polygon's boundary: the
// shader runs for every pixel any edge passes through (possibly repeatedly
// when several edges cross one pixel). Raster Join's accurate variant uses
// this pass to locate the fragments that need exact point-in-polygon tests.
func (c *Canvas) DrawPolygonOutline(pg geom.Polygon, shader FragmentShader) {
	c.dev.drawCalls.Add(1)
	c.dev.polygonsIn.Add(1)
	var shaded int64
	raster.BoundaryPixels(c.T, pg, func(px, py int) {
		shaded++
		shader(px, py)
	})
	c.dev.fragmentsShaded.Add(shaded)
}

// DrawSpans replays one region's precompiled fill spans — the span-cache
// warm path of the polygon pass. Fragment order matches DrawPolygon on the
// geometry the spans were compiled from: row-major, left-to-right, so
// results are bit-identical to a direct draw.
func (c *Canvas) DrawSpans(spans []raster.Span, shader FragmentShader) {
	c.dev.drawCalls.Add(1)
	c.dev.polygonsIn.Add(1)
	var shaded int64
	for _, s := range spans {
		for px := s.X0; px < s.X1; px++ {
			shaded++
			shader(int(px), int(s.Y))
		}
	}
	c.dev.fragmentsShaded.Add(shaded)
}

// DrawPixels replays a precompiled pixel-index list — the span-cache warm
// path of the outline pass. Unlike DrawPolygonOutline's conservative trace,
// the list is already deduplicated, so the shader runs exactly once per
// boundary pixel, in the compiled first-visit order.
func (c *Canvas) DrawPixels(pixels []int32, shader FragmentShader) {
	c.dev.drawCalls.Add(1)
	c.dev.polygonsIn.Add(1)
	w := c.T.W
	for _, idx := range pixels {
		shader(int(idx)%w, int(idx)/w)
	}
	c.dev.fragmentsShaded.Add(int64(len(pixels)))
}
