package gpu

import (
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/raster"
)

func testWorld() geom.BBox { return geom.BBox{MinX: 0, MinY: 0, MaxX: 8, MaxY: 8} }

func TestNewCanvasLimits(t *testing.T) {
	d := New(WithMaxTextureSize(64))
	if d.MaxTextureSize() != 64 {
		t.Fatalf("MaxTextureSize = %d, want 64", d.MaxTextureSize())
	}
	if _, err := d.NewCanvas(testWorld(), 64, 64); err != nil {
		t.Errorf("64x64 canvas should fit: %v", err)
	}
	if _, err := d.NewCanvas(testWorld(), 65, 64); err == nil {
		t.Error("65x64 canvas should exceed the limit")
	} else if !strings.Contains(err.Error(), "max texture size") {
		t.Errorf("unhelpful error: %v", err)
	}
	if _, err := d.NewCanvas(testWorld(), 0, 5); err == nil {
		t.Error("zero-width canvas should fail")
	}
}

func TestWithMaxTextureSizeIgnoresNonPositive(t *testing.T) {
	d := New(WithMaxTextureSize(-5))
	if d.MaxTextureSize() != DefaultMaxTextureSize {
		t.Errorf("negative option should be ignored, got %d", d.MaxTextureSize())
	}
}

func TestDrawPointsCullsAndShades(t *testing.T) {
	d := New()
	c, err := d.NewCanvas(testWorld(), 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{0.5, 7.5, -1, 9, 3.5}
	ys := []float64{0.5, 7.5, 4, 4, 3.5}
	tex := NewTexture(8, 8)
	c.DrawPoints(len(xs), func(i int) (float64, float64) { return xs[i], ys[i] },
		func(px, py, i int) { tex.Add(px, py, 1) })

	if tex.At(0, 0) != 1 || tex.At(7, 7) != 1 || tex.At(3, 3) != 1 {
		t.Error("in-window points should land in their pixels")
	}
	if tex.Sum() != 3 {
		t.Errorf("total fragments = %v, want 3 (two culled)", tex.Sum())
	}
	st := d.Stats()
	if st.PointsIn != 5 || st.FragmentsShaded != 3 || st.DrawCalls != 1 || st.Passes != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDrawPolygonAdditiveBlend(t *testing.T) {
	d := New()
	c, _ := d.NewCanvas(testWorld(), 8, 8)
	tex := NewTexture(8, 8)
	pg := geom.NewPolygon(geom.RectRing(geom.BBox{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4}))
	c.DrawPolygon(pg, func(px, py int) { tex.Add(px, py, 1) })
	c.DrawPolygon(pg, func(px, py int) { tex.Add(px, py, 1) })
	if tex.At(1, 1) != 2 {
		t.Errorf("double draw should blend to 2, got %v", tex.At(1, 1))
	}
	if tex.Sum() != 32 {
		t.Errorf("sum = %v, want 2 draws x 16 pixels", tex.Sum())
	}
}

func TestDrawTrianglesMatchesPolygon(t *testing.T) {
	d := New()
	c, _ := d.NewCanvas(testWorld(), 8, 8)
	pg := geom.NewPolygon(geom.StarRing(geom.Pt(4, 4), 3.5, 1.5, 7))

	byPoly := NewTexture(8, 8)
	c.DrawPolygon(pg, func(px, py int) { byPoly.Add(px, py, 1) })

	byTris := NewTexture(8, 8)
	c.DrawTriangles(geom.Triangulate(pg), func(px, py int) { byTris.Add(px, py, 1) })

	for i := range byPoly.Data {
		if byPoly.Data[i] != byTris.Data[i] {
			t.Fatalf("pixel %d: polygon pipeline %v != triangle pipeline %v",
				i, byPoly.Data[i], byTris.Data[i])
		}
	}
}

func TestDrawPolygonOutline(t *testing.T) {
	d := New()
	c, _ := d.NewCanvas(testWorld(), 8, 8)
	pg := geom.NewPolygon(geom.RectRing(geom.BBox{MinX: 1.5, MinY: 1.5, MaxX: 6.5, MaxY: 6.5}))
	marked := map[[2]int]bool{}
	c.DrawPolygonOutline(pg, func(px, py int) { marked[[2]int{px, py}] = true })
	// Every corner cell of the rect must be marked; the interior must not.
	for _, cell := range [][2]int{{1, 1}, {6, 1}, {6, 6}, {1, 6}} {
		if !marked[cell] {
			t.Errorf("outline should mark corner cell %v", cell)
		}
	}
	if marked[[2]int{4, 4}] {
		t.Error("outline should not mark deep-interior cell")
	}
}

func TestTiles(t *testing.T) {
	d := New(WithMaxTextureSize(16))
	full := raster.NewTransform(geom.BBox{MinX: 0, MinY: 0, MaxX: 40, MaxY: 40}, 40, 40)
	type tile struct{ offX, offY, w, h int }
	var got []tile
	err := d.Tiles(full, func(c *Canvas, offX, offY int) error {
		got = append(got, tile{offX, offY, c.T.W, c.T.H})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// 40/16 → tiles at offsets 0,16,32 in each axis: 3x3 = 9 tiles; last
	// row/col are 8 wide/high.
	if len(got) != 9 {
		t.Fatalf("tile count = %d, want 9", len(got))
	}
	area := 0
	for _, tl := range got {
		area += tl.w * tl.h
		if tl.w > 16 || tl.h > 16 {
			t.Errorf("tile %v exceeds max texture size", tl)
		}
	}
	if area != 1600 {
		t.Errorf("tiles cover %d pixels, want 1600", area)
	}
	if st := d.Stats(); st.Passes != 9 {
		t.Errorf("passes = %d, want 9", st.Passes)
	}
}

func TestTilesPixelAlignment(t *testing.T) {
	// A tile's pixel (0,0) center must coincide with the corresponding
	// full-resolution pixel center, or tiled results would drift.
	d := New(WithMaxTextureSize(8))
	full := raster.NewTransform(geom.BBox{MinX: -3, MinY: 2, MaxX: 29, MaxY: 34}, 20, 20)
	err := d.Tiles(full, func(c *Canvas, offX, offY int) error {
		want := full.PixelCenter(offX, offY)
		got := c.T.PixelCenter(0, 0)
		if !got.NearEq(want, 1e-9) {
			t.Errorf("tile (%d,%d) misaligned: %v vs %v", offX, offY, got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestResetStats(t *testing.T) {
	d := New()
	c, _ := d.NewCanvas(testWorld(), 4, 4)
	c.DrawPoints(1, func(int) (float64, float64) { return 1, 1 }, func(int, int, int) {})
	d.ResetStats()
	if st := d.Stats(); st != (Stats{}) {
		t.Errorf("stats after reset = %+v, want zero", st)
	}
}

func TestTextureOps(t *testing.T) {
	tex := NewTexture(4, 3)
	tex.Set(1, 2, 5)
	tex.Add(1, 2, 2.5)
	if tex.At(1, 2) != 7.5 {
		t.Errorf("At = %v, want 7.5", tex.At(1, 2))
	}
	if tex.Sum() != 7.5 {
		t.Errorf("Sum = %v, want 7.5", tex.Sum())
	}
	tex.Clear()
	if tex.Sum() != 0 {
		t.Error("Clear should zero the texture")
	}
}

func TestTextureBlendEquations(t *testing.T) {
	tex := NewTexture(2, 2)
	tex.Fill(100)
	if tex.At(0, 0) != 100 || tex.At(1, 1) != 100 {
		t.Fatal("Fill should set every pixel")
	}
	// MIN blending only lowers.
	tex.TakeMin(0, 0, 42)
	tex.TakeMin(0, 0, 77)
	if tex.At(0, 0) != 42 {
		t.Errorf("TakeMin = %v, want 42", tex.At(0, 0))
	}
	// MAX blending only raises.
	tex.Fill(-100)
	tex.TakeMax(1, 0, 3)
	tex.TakeMax(1, 0, -5)
	if tex.At(1, 0) != 3 {
		t.Errorf("TakeMax = %v, want 3", tex.At(1, 0))
	}
}
