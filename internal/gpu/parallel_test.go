package gpu

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
)

// randomPoints returns n points over the 8x8 test world, a third of them
// outside the window so culling paths are exercised.
func randomPoints(n int, seed int64) (xs, ys []float64) {
	rng := rand.New(rand.NewSource(seed))
	xs = make([]float64, n)
	ys = make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()*12 - 2
		ys[i] = rng.Float64()*12 - 2
	}
	return xs, ys
}

// TestDrawPointsParallelByteIdentical: the parallel pass must produce
// bit-identical textures to DrawPoints for pixel-keyed shaders — including
// an order-sensitive float sum target — at every worker count, and account
// the same device stats.
func TestDrawPointsParallelByteIdentical(t *testing.T) {
	const n = 50_000
	xs, ys := randomPoints(n, 7)
	vals := make([]float64, n)
	rng := rand.New(rand.NewSource(8))
	for i := range vals {
		vals[i] = rng.Float64()*1e6 - 5e5 // wide range to expose reassociation
	}
	pos := func(i int) (float64, float64) { return xs[i], ys[i] }

	d := New()
	c, err := d.NewCanvas(testWorld(), 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	st0 := d.Stats()
	wantCount := NewTexture(8, 8)
	wantSum := NewTexture(8, 8)
	c.DrawPoints(n, pos, func(px, py, i int) {
		wantCount.Add(px, py, 1)
		wantSum.Add(px, py, vals[i])
	})
	base := d.Stats()
	seqShaded := base.FragmentsShaded - st0.FragmentsShaded

	for _, workers := range []int{2, 3, 7, 12} {
		gotCount := NewTexture(8, 8)
		gotSum := NewTexture(8, 8)
		err := c.DrawPointsParallel(context.Background(), workers, n, pos,
			func(px, py, i int) {
				gotCount.Add(px, py, 1)
				gotSum.Add(px, py, vals[i])
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range wantSum.Data {
			if gotCount.Data[i] != wantCount.Data[i] {
				t.Fatalf("workers=%d: count pixel %d = %v, want %v",
					workers, i, gotCount.Data[i], wantCount.Data[i])
			}
			if gotSum.Data[i] != wantSum.Data[i] {
				t.Fatalf("workers=%d: sum pixel %d = %v, want %v (not bit-identical)",
					workers, i, gotSum.Data[i], wantSum.Data[i])
			}
		}
		st := d.Stats()
		if got := st.PointsIn - base.PointsIn; got != n {
			t.Fatalf("workers=%d: pointsIn delta %d, want %d", workers, got, n)
		}
		if got := st.FragmentsShaded - base.FragmentsShaded; got != seqShaded {
			t.Fatalf("workers=%d: fragmentsShaded delta %d, want %d (same as sequential)",
				workers, got, seqShaded)
		}
		if got := st.DrawCalls - base.DrawCalls; got != 1 {
			t.Fatalf("workers=%d: drawCalls delta %d, want 1", workers, got)
		}
		base = st
	}
}

// TestDrawPointsParallelFragmentOrderPerPixel: within one pixel, shader
// invocations must arrive in ascending vertex order — the property that
// makes float accumulation deterministic.
func TestDrawPointsParallelFragmentOrderPerPixel(t *testing.T) {
	const n = 30_000
	xs, ys := randomPoints(n, 11)
	d := New()
	c, err := d.NewCanvas(testWorld(), 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	last := make([]int, 64)
	for i := range last {
		last[i] = -1
	}
	err = c.DrawPointsParallel(context.Background(), 5, n,
		func(i int) (float64, float64) { return xs[i], ys[i] },
		func(px, py, i int) {
			p := py*8 + px
			if i <= last[p] {
				t.Errorf("pixel %d: vertex %d arrived after %d", p, i, last[p])
			}
			last[p] = i
		})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDrawPointsParallelSmallDrawFallsBack: draws under the parallel
// threshold take the sequential path and still shade correctly.
func TestDrawPointsParallelSmallDrawFallsBack(t *testing.T) {
	d := New()
	c, err := d.NewCanvas(testWorld(), 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{0.5, 7.5, 3.5}
	ys := []float64{0.5, 7.5, 3.5}
	tex := NewTexture(8, 8)
	if err := c.DrawPointsParallel(context.Background(), 8, len(xs),
		func(i int) (float64, float64) { return xs[i], ys[i] },
		func(px, py, i int) { tex.Add(px, py, 1) }); err != nil {
		t.Fatal(err)
	}
	if tex.Sum() != 3 {
		t.Fatalf("shaded %v fragments, want 3", tex.Sum())
	}
}

// TestDrawPointsParallelCancel covers all three abort points: before the
// draw, mid-transform (phase 1), and mid-merge (phase 2).
func TestDrawPointsParallelCancel(t *testing.T) {
	const n = 100_000
	xs, ys := randomPoints(n, 13)
	d := New()
	c, err := d.NewCanvas(testWorld(), 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	pos := func(i int) (float64, float64) { return xs[i], ys[i] }
	noop := func(px, py, i int) {}

	pre, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.DrawPointsParallel(pre, 4, n, pos, noop); err != context.Canceled {
		t.Fatalf("pre-canceled pass returned %v, want context.Canceled", err)
	}

	// Phase 1 abort: pos cancels after a while, so workers observe ctx
	// between transform chunks.
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	var seen atomic.Int64
	err = c.DrawPointsParallel(ctx1, 4, n,
		func(i int) (float64, float64) {
			if seen.Add(1) == 1000 {
				cancel1()
			}
			return xs[i], ys[i]
		}, noop)
	if err != context.Canceled {
		t.Fatalf("mid-transform cancel returned %v, want context.Canceled", err)
	}

	// Phase 2 abort: the shader cancels, so merge goroutines observe ctx
	// between replay chunks.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var shaded atomic.Int64
	err = c.DrawPointsParallel(ctx2, 4, n, pos,
		func(px, py, i int) {
			if shaded.Add(1) == 1000 {
				cancel2()
			}
		})
	if err != context.Canceled {
		t.Fatalf("mid-merge cancel returned %v, want context.Canceled", err)
	}
}
