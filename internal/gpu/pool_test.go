package gpu

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/raster"
)

func TestTexturePoolReuse(t *testing.T) {
	d := New()
	a := d.AcquireTexture(4, 4)
	a.Set(1, 1, 42)
	if got := d.LiveTextures(); got != 1 {
		t.Fatalf("live textures = %d, want 1", got)
	}
	d.ReleaseTexture(a)
	if got := d.LiveTextures(); got != 0 {
		t.Fatalf("live textures after release = %d, want 0", got)
	}

	// Same pixel count → the pooled allocation comes back, cleared, even
	// under a different aspect ratio.
	b := d.AcquireTexture(2, 8)
	if &b.Data[0] != &a.Data[0] {
		t.Fatal("expected pooled allocation to be reused")
	}
	if b.W != 2 || b.H != 8 {
		t.Fatalf("reused texture dims = %dx%d, want 2x8", b.W, b.H)
	}
	for i, v := range b.Data {
		if v != 0 {
			t.Fatalf("reused texture not cleared at %d: %v", i, v)
		}
	}
	d.ReleaseTexture(b)

	// Different pixel count → fresh allocation.
	c := d.AcquireTexture(3, 3)
	if len(c.Data) != 9 {
		t.Fatalf("len(Data) = %d, want 9", len(c.Data))
	}
	d.ReleaseTexture(c)
	if got := d.LiveTextures(); got != 0 {
		t.Fatalf("live textures = %d, want 0", got)
	}

	d.ReleaseTexture(nil) // no-op
}

func TestTexturePoolClassCap(t *testing.T) {
	d := New()
	var ts []*Texture
	for i := 0; i < poolClassCap+4; i++ {
		ts = append(ts, d.AcquireTexture(2, 2))
	}
	for _, tx := range ts {
		d.ReleaseTexture(tx)
	}
	d.texMu.Lock()
	free := len(d.texFree[4])
	d.texMu.Unlock()
	if free != poolClassCap {
		t.Fatalf("free list = %d, want capped at %d", free, poolClassCap)
	}
	if got := d.LiveTextures(); got != 0 {
		t.Fatalf("live textures = %d, want 0", got)
	}
}

func TestCanvasReleaseIdempotent(t *testing.T) {
	d := New()
	world := geom.BBox{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	c, err := d.NewCanvas(world, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.LiveCanvases(); got != 1 {
		t.Fatalf("live canvases = %d, want 1", got)
	}
	c.Release()
	c.Release() // second release must not drive the gauge negative
	if got := d.LiveCanvases(); got != 0 {
		t.Fatalf("live canvases = %d, want 0", got)
	}
	var nilC *Canvas
	nilC.Release() // nil-safe
}

func TestTilesReleasesCanvases(t *testing.T) {
	d := New(WithMaxTextureSize(4))
	world := geom.BBox{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	full := raster.NewTransform(world, 10, 10)
	tiles := 0
	err := d.Tiles(full, func(c *Canvas, offX, offY int) error {
		tiles++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if tiles != 9 {
		t.Fatalf("tiles = %d, want 9", tiles)
	}
	if got := d.LiveCanvases(); got != 0 {
		t.Fatalf("live canvases after Tiles = %d, want 0", got)
	}
}
