package gpu

import "repro/internal/fsum"

// Texture is a single-channel float64 render-target attachment. Raster Join
// binds two of these per pass: a per-pixel point count and a per-pixel
// attribute sum. Additive blending is expressed through Add, matching
// glBlendFunc(GL_ONE, GL_ONE) on a float framebuffer.
type Texture struct {
	W, H int
	// Data is the row-major pixel storage, exposed for bulk readback
	// (glReadPixels equivalent) by the join kernels.
	Data []float64
}

// NewTexture returns a cleared w×h texture.
func NewTexture(w, h int) *Texture {
	return &Texture{W: w, H: h, Data: make([]float64, w*h)}
}

// At returns the value at pixel (x,y).
func (t *Texture) At(x, y int) float64 { return t.Data[y*t.W+x] }

// Set stores v at pixel (x,y).
func (t *Texture) Set(x, y int, v float64) { t.Data[y*t.W+x] = v }

// Add accumulates v into pixel (x,y) — additive blending.
func (t *Texture) Add(x, y int, v float64) { t.Data[y*t.W+x] += v }

// Clear zeroes the texture, retaining its allocation.
func (t *Texture) Clear() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Fill sets every pixel to v (used to initialize MIN/MAX render targets to
// ±Inf before blending).
func (t *Texture) Fill(v float64) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// TakeMin lowers pixel (x,y) to v when v is smaller — the MIN blend
// equation (glBlendEquation(GL_MIN)).
func (t *Texture) TakeMin(x, y int, v float64) {
	i := y*t.W + x
	if v < t.Data[i] {
		t.Data[i] = v
	}
}

// TakeMax raises pixel (x,y) to v when v is larger — the MAX blend
// equation.
func (t *Texture) TakeMax(x, y int, v float64) {
	i := y*t.W + x
	if v > t.Data[i] {
		t.Data[i] = v
	}
}

// Sum returns the total of all pixels (useful for conservation checks),
// pairwise-summed so the readback of a multi-megapixel target does not
// drift.
func (t *Texture) Sum() float64 {
	return fsum.Pairwise(t.Data)
}
