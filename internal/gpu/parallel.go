package gpu

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/geom"
)

// The parallel point pass runs in two phases so that its results are
// bit-identical to DrawPoints for every aggregation kind, including float
// summation, whose value depends on evaluation order:
//
//  1. Transform phase — the vertex range is split into contiguous shards,
//     one per worker. Each worker transforms its points and stages the
//     surviving fragments as (pixel, vertex) records in its own per-stripe
//     shard buffers (the canvas rows are divided into one stripe per
//     worker), so no two goroutines share a buffer.
//  2. Merge phase — a tile-striped reduction: each worker owns one row
//     stripe and replays the shard buffers targeting its stripe in shard
//     order, invoking the fragment shader.
//
// Because shards cover ascending contiguous vertex ranges and each stripe
// is replayed in shard order, every pixel sees its shader invocations in
// ascending vertex order — exactly the sequence the sequential pass
// produces. A dense per-worker texture merge could not make that guarantee
// for SUM targets (merging partial sums reassociates float addition), which
// is why the shards hold fragment records instead of pixels.
//
// Safety contract: the shader's writes must be keyed by the fragment's
// pixel (count/sum/min/max textures, per-boundary-pixel bins). Writes keyed
// by anything that crosses pixel rows — per-region accumulators, global
// counters — would be shared between stripe owners; such passes must shard
// their accumulators per worker instead (see the polygons-first joiner).

// pointFrag is one staged point fragment: the row-major pixel it landed in
// and the vertex index within the draw call.
type pointFrag struct {
	pix int32
	i   int32
}

// minParallelPoints is the draw size below which the fan-out costs more
// than it saves and DrawPointsParallel degrades to the sequential pass.
const minParallelPoints = 4096

// fragChunk is the cancellation granularity of both phases: workers poll
// the context every fragChunk vertices or fragments.
const fragChunk = 1 << 15

// DrawPointsParallel rasterizes n point vertices like DrawPoints, fanning
// the work across up to workers goroutines. Results are bit-identical to
// DrawPoints for shaders whose writes are keyed by pixel (see the package
// contract above): for every pixel, shader invocations occur in ascending
// vertex order regardless of worker count. workers <= 1, tiny draws, and
// oversized grids fall back to the sequential pass.
//
// The context is polled between transform chunks and between merge shards;
// on cancellation the pass returns ctx.Err() immediately and the target
// textures are left partially blended — callers abandon and release them,
// as the core joiners do on every abort path.
func (c *Canvas) DrawPointsParallel(ctx context.Context, workers, n int,
	pos func(i int) (x, y float64), shader PointShader) error {

	if n <= 0 {
		return ctx.Err()
	}
	if maxShards := (n + minParallelPoints - 1) / minParallelPoints; workers > maxShards {
		workers = maxShards
	}
	w, h := c.T.W, c.T.H
	if workers <= 1 || n > math.MaxInt32 || w*h > math.MaxInt32 {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.DrawPoints(n, pos, shader)
		return nil
	}

	c.dev.drawCalls.Add(1)
	c.dev.pointsIn.Add(int64(n))

	// Phase 1: transform. buckets[src*workers+t] holds shard src's
	// fragments landing in row stripe t; each is written by exactly one
	// goroutine here and read by exactly one goroutine in phase 2, with the
	// WaitGroup barrier ordering the hand-off.
	buckets := make([][]pointFrag, workers*workers)
	shard := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for src := 0; src < workers; src++ {
		lo, hi := src*shard, min((src+1)*shard, n)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(src, lo, hi int) {
			defer wg.Done()
			mine := buckets[src*workers : (src+1)*workers]
			hint := (hi-lo)/workers + 16
			for t := range mine {
				mine[t] = make([]pointFrag, 0, hint)
			}
			for s := lo; s < hi; s += fragChunk {
				if ctx.Err() != nil {
					return
				}
				for i, e := s, min(s+fragChunk, hi); i < e; i++ {
					x, y := pos(i)
					px, py, ok := c.T.ToPixel(geom.Point{X: x, Y: y})
					if !ok {
						continue
					}
					t := py * workers / h
					mine[t] = append(mine[t], pointFrag{pix: int32(py*w + px), i: int32(i)})
				}
			}
		}(src, lo, hi)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}

	// Phase 2: tile-striped merge. Stripe owner t replays shards 0..workers
	// in order, so each pixel's fragments arrive in ascending vertex order.
	var shaded atomic.Int64
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			var count int64
			for src := 0; src < workers; src++ {
				frags := buckets[src*workers+t]
				for s := 0; s < len(frags); s += fragChunk {
					if ctx.Err() != nil {
						shaded.Add(count)
						return
					}
					//lint:ignore ctxpoll the enclosing chunk loop polls every fragChunk fragments; per-fragment polling would put an atomic load in the shader inner loop
					for _, f := range frags[s:min(s+fragChunk, len(frags))] {
						shader(int(f.pix)%w, int(f.pix)/w, int(f.i))
					}
					count += int64(min(fragChunk, len(frags)-s))
				}
			}
			shaded.Add(count)
		}(t)
	}
	wg.Wait()
	c.dev.fragmentsShaded.Add(shaded.Load())
	return ctx.Err()
}
