// Package render turns query results into images: choropleth maps drawn
// with the same scanline rasterizer the join engine uses, and density
// rasters from the heatmap pass — the pixels Urbane's map view actually
// shows. Everything encodes to PNG via the standard library.
package render

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"math"

	"repro/internal/data"
	"repro/internal/raster"
)

// Ramp maps a normalized value in [0,1] to a color.
type Ramp func(t float64) color.RGBA

// HeatRamp is a black-body style ramp: dark violet → red → orange → light
// yellow, perceptually ordered for density maps.
func HeatRamp(t float64) color.RGBA {
	t = clamp01(t)
	stops := []struct {
		t       float64
		r, g, b float64
	}{
		{0.00, 13, 8, 135},
		{0.25, 126, 3, 168},
		{0.50, 204, 71, 120},
		{0.75, 248, 149, 64},
		{1.00, 240, 249, 33},
	}
	for i := 1; i < len(stops); i++ {
		if t <= stops[i].t {
			f := (t - stops[i-1].t) / (stops[i].t - stops[i-1].t)
			return color.RGBA{
				R: uint8(lerp(stops[i-1].r, stops[i].r, f)),
				G: uint8(lerp(stops[i-1].g, stops[i].g, f)),
				B: uint8(lerp(stops[i-1].b, stops[i].b, f)),
				A: 255,
			}
		}
	}
	return color.RGBA{R: 240, G: 249, B: 33, A: 255}
}

// DivergingRamp maps [0,1] blue → white → red, centered at 0.5 — the scale
// for change maps where sign matters.
func DivergingRamp(t float64) color.RGBA {
	t = clamp01(t)
	if t < 0.5 {
		f := t * 2
		return color.RGBA{
			R: uint8(lerp(33, 247, f)),
			G: uint8(lerp(102, 247, f)),
			B: uint8(lerp(172, 247, f)),
			A: 255,
		}
	}
	f := (t - 0.5) * 2
	return color.RGBA{
		R: uint8(lerp(247, 178, f)),
		G: uint8(lerp(247, 24, f)),
		B: uint8(lerp(247, 43, f)),
		A: 255,
	}
}

// BlueRamp is a light-to-dark sequential ramp for choropleths.
func BlueRamp(t float64) color.RGBA {
	t = clamp01(t)
	return color.RGBA{
		R: uint8(lerp(247, 8, t)),
		G: uint8(lerp(251, 48, t)),
		B: uint8(lerp(255, 107, t)),
		A: 255,
	}
}

func clamp01(t float64) float64 {
	if t < 0 || math.IsNaN(t) {
		return 0
	}
	if t > 1 {
		return 1
	}
	return t
}

func lerp(a, b, t float64) float64 { return a + (b-a)*t }

// Choropleth renders region polygons filled by their normalized values,
// with darkened boundary pixels, using the join engine's own scanline and
// conservative rasterizers. values[i] colors rs.Regions[i]; regions with
// NaN values are drawn in light gray.
func Choropleth(rs *data.RegionSet, values []float64, width int, ramp Ramp) (*image.RGBA, error) {
	if rs.Len() == 0 {
		return nil, fmt.Errorf("render: empty region set")
	}
	if len(values) != rs.Len() {
		return nil, fmt.Errorf("render: %d values for %d regions", len(values), rs.Len())
	}
	if width < 16 {
		width = 16
	}
	bounds := rs.Bounds()
	if bounds.IsEmpty() || bounds.Width() == 0 {
		return nil, fmt.Errorf("render: degenerate region bounds")
	}
	height := int(float64(width) * bounds.Height() / bounds.Width())
	if height < 1 {
		height = 1
	}
	tr := raster.NewTransform(bounds, width, height)

	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	norm := func(v float64) float64 {
		if math.IsNaN(v) || hi <= lo {
			return 0
		}
		return (v - lo) / (hi - lo)
	}

	img := image.NewRGBA(image.Rect(0, 0, width, height))
	bg := color.RGBA{R: 250, G: 250, B: 250, A: 255}
	for y := 0; y < height; y++ {
		for x := 0; x < width; x++ {
			img.SetRGBA(x, y, bg)
		}
	}
	// Fill pass (image rows grow downward; flip y).
	for k, reg := range rs.Regions {
		var c color.RGBA
		if math.IsNaN(values[k]) {
			c = color.RGBA{R: 224, G: 224, B: 224, A: 255}
		} else {
			c = ramp(norm(values[k]))
		}
		raster.FillPolygon(tr, reg.Poly, func(px, py int) {
			img.SetRGBA(px, height-1-py, c)
		})
	}
	// Boundary pass: darken outline pixels.
	line := color.RGBA{R: 60, G: 60, B: 60, A: 255}
	for _, reg := range rs.Regions {
		raster.BoundaryPixels(tr, reg.Poly, func(px, py int) {
			img.SetRGBA(px, height-1-py, line)
		})
	}
	return img, nil
}

// Density renders a row-major count grid (the heatmap payload) with
// log-scaled shading. Zero cells stay transparent-black so tiles composite
// over base maps.
func Density(counts []float64, w, h int, ramp Ramp) (*image.RGBA, error) {
	if len(counts) != w*h || w < 1 || h < 1 {
		return nil, fmt.Errorf("render: %d counts for %dx%d grid", len(counts), w, h)
	}
	peak := 0.0
	for _, v := range counts {
		if v > peak {
			peak = v
		}
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	if peak == 0 {
		return img, nil
	}
	logMax := math.Log1p(peak)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := counts[y*w+x]
			if v <= 0 {
				continue
			}
			img.SetRGBA(x, h-1-y, ramp(math.Log1p(v)/logMax))
		}
	}
	return img, nil
}

// Legend renders a horizontal color-scale bar for the ramp.
func Legend(width, height int, ramp Ramp) *image.RGBA {
	if width < 1 {
		width = 1
	}
	if height < 1 {
		height = 1
	}
	img := image.NewRGBA(image.Rect(0, 0, width, height))
	denom := float64(width - 1)
	if denom < 1 {
		denom = 1
	}
	for x := 0; x < width; x++ {
		c := ramp(float64(x) / denom)
		for y := 0; y < height; y++ {
			img.SetRGBA(x, y, c)
		}
	}
	return img
}

// EncodePNG writes the image as PNG.
func EncodePNG(w io.Writer, img image.Image) error { return png.Encode(w, img) }
