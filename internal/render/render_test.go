package render

import (
	"bytes"
	"image/png"
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/geom"
)

func testLayer() *data.RegionSet {
	return data.GridRegions("g", geom.BBox{MinX: 0, MinY: 0, MaxX: 100, MaxY: 100}, 2, 2)
}

func TestRampsEndpoints(t *testing.T) {
	for name, ramp := range map[string]Ramp{
		"heat": HeatRamp, "blue": BlueRamp, "diverging": DivergingRamp,
	} {
		lo := ramp(0)
		hi := ramp(1)
		if lo == hi {
			t.Errorf("%s: ramp endpoints identical", name)
		}
		if lo.A != 255 || hi.A != 255 {
			t.Errorf("%s: ramp should be opaque", name)
		}
		// Out-of-range and NaN inputs clamp instead of panicking.
		_ = ramp(-5)
		_ = ramp(7)
		_ = ramp(math.NaN())
	}
	// The diverging ramp is near-white at its center.
	mid := DivergingRamp(0.5)
	if mid.R < 230 || mid.G < 230 || mid.B < 230 {
		t.Errorf("diverging midpoint = %v, want near-white", mid)
	}
}

func TestChoroplethColorsRegions(t *testing.T) {
	rs := testLayer()
	// Values low → high across the four cells; cell 3 (top-right) max.
	values := []float64{1, 2, 3, 4}
	img, err := Choropleth(rs, values, 200, BlueRamp)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 200 || b.Dy() != 200 {
		t.Fatalf("image dims = %v", b)
	}
	// Sample deep inside cell 0 (bottom-left quadrant → image bottom-left)
	// and cell 3 (top-right quadrant → image top-right).
	c0 := img.RGBAAt(50, 150) // world (25,25)
	c3 := img.RGBAAt(150, 50) // world (75,75)
	want0, want3 := BlueRamp(0), BlueRamp(1)
	if c0 != want0 {
		t.Errorf("low cell color = %v, want %v", c0, want0)
	}
	if c3 != want3 {
		t.Errorf("high cell color = %v, want %v", c3, want3)
	}
	// A boundary pixel is dark: sample the vertical midline.
	mid := img.RGBAAt(100, 100)
	if mid.R > 100 {
		t.Errorf("midline pixel %v should be an outline", mid)
	}
}

func TestChoroplethNaNAndErrors(t *testing.T) {
	rs := testLayer()
	values := []float64{1, math.NaN(), 3, 4}
	img, err := Choropleth(rs, values, 100, BlueRamp)
	if err != nil {
		t.Fatal(err)
	}
	// NaN cell (index 1 = bottom-right quadrant; image y flipped) renders
	// gray. World (75,25) → image (75, 74).
	c := img.RGBAAt(75, 74)
	if c.R != 224 || c.G != 224 {
		t.Errorf("NaN cell color = %v, want gray", c)
	}
	if _, err := Choropleth(rs, []float64{1}, 100, BlueRamp); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := Choropleth(&data.RegionSet{}, nil, 100, BlueRamp); err == nil {
		t.Error("empty region set should fail")
	}
}

func TestDensity(t *testing.T) {
	counts := make([]float64, 16)
	counts[5] = 100 // cell (1,1)
	img, err := Density(counts, 4, 4, HeatRamp)
	if err != nil {
		t.Fatal(err)
	}
	// Hot cell is the brightest non-transparent pixel; empty cells are
	// transparent.
	hot := img.RGBAAt(1, 2) // y flipped: grid y=1 → image y=2
	if hot.A == 0 {
		t.Error("hot cell should be opaque")
	}
	if img.RGBAAt(0, 0).A != 0 {
		t.Error("empty cell should be transparent")
	}
	if _, err := Density(counts, 3, 3, HeatRamp); err == nil {
		t.Error("dimension mismatch should fail")
	}
	// All-zero grid renders without error.
	if _, err := Density(make([]float64, 16), 4, 4, HeatRamp); err != nil {
		t.Errorf("zero grid: %v", err)
	}
}

func TestLegendAndPNGRoundTrip(t *testing.T) {
	img := Legend(64, 8, HeatRamp)
	if img.Bounds().Dx() != 64 {
		t.Fatalf("legend dims = %v", img.Bounds())
	}
	if img.RGBAAt(0, 0) == img.RGBAAt(63, 0) {
		t.Error("legend should sweep the ramp")
	}
	var buf bytes.Buffer
	if err := EncodePNG(&buf, img); err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 64 {
		t.Errorf("decoded dims = %v", decoded.Bounds())
	}
	// 1x1 legend does not divide by zero.
	_ = Legend(1, 1, BlueRamp)
	_ = Legend(0, 0, BlueRamp)
}
