// Package segment implements the on-disk columnar point store behind the
// data.PointSource interface: an append-only file of fixed-size blocks
// (DefaultBlockSize points) holding one encoded payload per column, a
// per-block zone map (min/max for x, y, t, and every attribute) in the
// footer table of contents, and a byte-bounded decoded-block cache on the
// read side so data sets can exceed RAM.
//
// Format v1 ("USEG", little-endian throughout):
//
//	header:  magic "USEG" | u32 version | u32 blockSize | u8 flags
//	         (bit0 hasTime) | u16 nameLen | name
//	         | u16 attrCount | per attr: u16 nameLen | name
//	blocks:  per block, per column in order X, Y, [T], attrs:
//	         u8 encoding | u32 payloadLen | payload
//	toc:     u32 numBlocks | u8 timeSorted | per block:
//	         u64 offset | u32 count | zone
//	         zone: x{f64 min, f64 max, u8 hasNaN} | y{...}
//	               | [i64 minT, i64 maxT] | per attr {...}
//	trailer: u64 tocOffset | magic "GESU"
//
// The timeSorted flag lives in the TOC rather than the header because the
// writer only knows it after the last point has streamed through.
//
// Column encodings: raw little-endian float64 (coordinates and attributes
// in v1 — zero transcoding cost, bit-exact round trip incl. NaN payloads,
// ±0 and denormals), and delta + bit-packed zigzag for the time column
// (timestamps are near-sorted seconds, so deltas are tiny). The version
// field gates future encodings (XOR-compressed floats) without breaking
// old readers.
package segment

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"

	"repro/internal/data"
)

// DefaultBlockSize is the points-per-block default, shared with the in-RAM
// adapter so segment-backed and in-RAM scans prune at the same granularity.
const DefaultBlockSize = data.DefaultBlockSize

// DefaultCacheBytes bounds the decoded-block cache of an opened Store.
const DefaultCacheBytes = 64 << 20

// Version is the format version this package writes.
const Version = 1

var (
	magicHead = [4]byte{'U', 'S', 'E', 'G'}
	magicTail = [4]byte{'G', 'E', 'S', 'U'}
)

const flagHasTime = 1 << 0

// Column encodings.
const (
	encRawF64 byte = 0 // count * 8 bytes of float64 bits
	encDeltaT byte = 1 // i64 first | u8 width | bit-packed zigzag deltas
)

// encodeF64 appends the raw little-endian encoding of vals to dst.
func encodeF64(dst []byte, vals []float64) []byte {
	for _, v := range vals {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v))
	}
	return dst
}

// decodeF64 decodes n raw float64 values.
func decodeF64(payload []byte, n int) ([]float64, error) {
	if len(payload) != n*8 {
		return nil, fmt.Errorf("segment: raw column payload is %d bytes, want %d", len(payload), n*8)
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[i*8:]))
	}
	return out, nil
}

// zigzag maps signed deltas onto small unsigned codes (0,-1,1,-2,... →
// 0,1,2,3,...), so near-sorted timestamps pack into a few bits each.
func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// encodeTime appends the delta + bit-packed encoding of t: the first
// timestamp verbatim, the max code width, then every successive delta
// zigzagged and packed width bits at a time (LSB-first).
func encodeTime(dst []byte, t []int64) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(t[0]))
	width := 0
	for i := 1; i < len(t); i++ {
		if w := bits.Len64(zigzag(t[i] - t[i-1])); w > width {
			width = w
		}
	}
	dst = append(dst, byte(width))
	if width == 0 {
		return dst
	}
	// Pack codes LSB-first, at most 8 bits per step so a 64-bit code plus a
	// partial byte never overflows the accumulator.
	var acc uint64
	nacc := 0
	for i := 1; i < len(t); i++ {
		code := zigzag(t[i] - t[i-1])
		rem := width
		for rem > 0 {
			take := 8 - nacc
			if take > rem {
				take = rem
			}
			acc |= (code & (1<<take - 1)) << nacc
			code >>= take
			nacc += take
			rem -= take
			if nacc == 8 {
				dst = append(dst, byte(acc))
				acc, nacc = 0, 0
			}
		}
	}
	if nacc > 0 {
		dst = append(dst, byte(acc))
	}
	return dst
}

// decodeTime decodes n timestamps written by encodeTime.
func decodeTime(payload []byte, n int) ([]int64, error) {
	if n < 1 || len(payload) < 9 {
		return nil, fmt.Errorf("segment: time column payload too short (%d bytes)", len(payload))
	}
	out := make([]int64, n)
	out[0] = int64(binary.LittleEndian.Uint64(payload))
	width := int(payload[8])
	if width > 64 {
		return nil, fmt.Errorf("segment: time column width %d out of range", width)
	}
	if width == 0 {
		for i := 1; i < n; i++ {
			out[i] = out[0]
		}
		return out, nil
	}
	want := 9 + ((n-1)*width+7)/8
	if len(payload) != want {
		return nil, fmt.Errorf("segment: time column payload is %d bytes, want %d", len(payload), want)
	}
	body := payload[9:]
	var acc uint64
	nacc := 0
	pos := 0
	for i := 1; i < n; i++ {
		var code uint64
		got := 0
		for got < width {
			if nacc == 0 {
				acc = uint64(body[pos])
				pos++
				nacc = 8
			}
			take := nacc
			if take > width-got {
				take = width - got
			}
			code |= (acc & (1<<take - 1)) << got
			acc >>= take
			nacc -= take
			got += take
		}
		out[i] = out[i-1] + unzigzag(code)
	}
	return out, nil
}

// zoneSize returns the encoded zone size for a schema.
func zoneSize(hasTime bool, attrs int) int {
	n := (2 + attrs) * 17 // {f64,f64,u8} per float column
	if hasTime {
		n += 16
	}
	return n
}

// encodeZone appends z for a schema with the given time presence.
func encodeZone(dst []byte, z data.Zone, hasTime bool) []byte {
	col := func(c data.ZoneCol) {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Min))
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(c.Max))
		if c.HasNaN {
			dst = append(dst, 1)
		} else {
			dst = append(dst, 0)
		}
	}
	col(z.X)
	col(z.Y)
	if hasTime {
		dst = binary.LittleEndian.AppendUint64(dst, uint64(z.MinT))
		dst = binary.LittleEndian.AppendUint64(dst, uint64(z.MaxT))
	}
	for _, a := range z.Attr {
		col(a)
	}
	return dst
}

// decodeZone reads one zone; returns the zone and bytes consumed.
func decodeZone(b []byte, hasTime bool, attrs int) (data.Zone, int, error) {
	want := zoneSize(hasTime, attrs)
	if len(b) < want {
		return data.Zone{}, 0, fmt.Errorf("segment: truncated zone (%d bytes, want %d)", len(b), want)
	}
	pos := 0
	col := func() data.ZoneCol {
		c := data.ZoneCol{
			Min: math.Float64frombits(binary.LittleEndian.Uint64(b[pos:])),
			Max: math.Float64frombits(binary.LittleEndian.Uint64(b[pos+8:])),
		}
		c.HasNaN = b[pos+16] != 0
		pos += 17
		return c
	}
	var z data.Zone
	z.X = col()
	z.Y = col()
	if hasTime {
		z.MinT = int64(binary.LittleEndian.Uint64(b[pos:]))
		z.MaxT = int64(binary.LittleEndian.Uint64(b[pos+8:]))
		pos += 16
	}
	z.Attr = make([]data.ZoneCol, attrs)
	for a := range z.Attr {
		z.Attr[a] = col()
	}
	return z, pos, nil
}
