package segment

import (
	"bytes"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/data"
)

// randomSet builds a reproducible point set with n points, a time column
// (sorted when sorted is true), and two attributes.
func randomSet(rng *rand.Rand, n int, sorted bool) *data.PointSet {
	ps := &data.PointSet{Name: "seg-test"}
	ps.X = make([]float64, n)
	ps.Y = make([]float64, n)
	ps.T = make([]int64, n)
	fare := make([]float64, n)
	tip := make([]float64, n)
	t := int64(1_500_000_000)
	for i := 0; i < n; i++ {
		ps.X[i] = rng.Float64() * 1e6
		ps.Y[i] = rng.Float64() * 1e6
		if sorted {
			t += rng.Int63n(30)
		} else {
			t = 1_500_000_000 + rng.Int63n(1_000_000)
		}
		ps.T[i] = t
		fare[i] = rng.Float64() * 60
		tip[i] = rng.Float64() * 12
	}
	ps.AddAttr("fare", fare)
	ps.AddAttr("tip", tip)
	return ps
}

// writeTemp writes ps to a temp segment file and opens it.
func writeTemp(t *testing.T, ps *data.PointSet, wopts []WriterOption, sopts []StoreOption) *Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "seg.useg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := Write(f, ps, wopts...); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path, sopts...)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// assertRoundTrip checks that st reproduces ps bit-exactly.
func assertRoundTrip(t *testing.T, ps *data.PointSet, st *Store) {
	t.Helper()
	if st.Len() != ps.Len() {
		t.Fatalf("Len = %d, want %d", st.Len(), ps.Len())
	}
	if st.Name() != ps.Name {
		t.Errorf("Name = %q, want %q", st.Name(), ps.Name)
	}
	if got, want := st.HasTime(), ps.T != nil; got != want {
		t.Errorf("HasTime = %v, want %v", got, want)
	}
	names := st.AttrNames()
	wantNames := ps.AttrNames()
	if strings.Join(names, ",") != strings.Join(wantNames, ",") {
		t.Errorf("AttrNames = %v, want %v", names, wantNames)
	}
	for b := 0; b < st.NumBlocks(); b++ {
		blk, err := st.Block(b)
		if err != nil {
			t.Fatalf("Block(%d): %v", b, err)
		}
		lo, hi := st.BlockSpan(b)
		if blk.Base != lo || blk.Len() != hi-lo {
			t.Fatalf("block %d: Base=%d Len=%d, want Base=%d Len=%d", b, blk.Base, blk.Len(), lo, hi-lo)
		}
		for i := lo; i < hi; i++ {
			j := i - lo
			if math.Float64bits(blk.X[j]) != math.Float64bits(ps.X[i]) ||
				math.Float64bits(blk.Y[j]) != math.Float64bits(ps.Y[i]) {
				t.Fatalf("point %d: coords (%v,%v), want (%v,%v)", i, blk.X[j], blk.Y[j], ps.X[i], ps.Y[i])
			}
			if ps.T != nil && blk.T[j] != ps.T[i] {
				t.Fatalf("point %d: T=%d, want %d", i, blk.T[j], ps.T[i])
			}
			for a := range ps.Attrs {
				if math.Float64bits(blk.Attr[a][j]) != math.Float64bits(ps.Attrs[a].Values[i]) {
					t.Fatalf("point %d attr %d: %v, want %v", i, a, blk.Attr[a][j], ps.Attrs[a].Values[i])
				}
			}
		}
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ps := randomSet(rng, 20_000, true)
	st := writeTemp(t, ps, []WriterOption{WithBlockSize(1024)}, nil)
	if !st.TimeSorted() {
		t.Error("TimeSorted = false for sorted input")
	}
	if want := (20_000 + 1023) / 1024; st.NumBlocks() != want {
		t.Errorf("NumBlocks = %d, want %d", st.NumBlocks(), want)
	}
	assertRoundTrip(t, ps, st)
}

func TestSegmentRoundTripUnsorted(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := randomSet(rng, 5_000, false)
	st := writeTemp(t, ps, []WriterOption{WithBlockSize(512)}, nil)
	if st.TimeSorted() {
		t.Error("TimeSorted = true for unsorted input")
	}
	assertRoundTrip(t, ps, st)
}

func TestSegmentRoundTripNoTime(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := randomSet(rng, 3_000, true)
	ps.T = nil
	st := writeTemp(t, ps, []WriterOption{WithBlockSize(700)}, nil)
	if st.HasTime() || st.TimeSorted() {
		t.Error("time flags set on timeless segment")
	}
	assertRoundTrip(t, ps, st)
}

// TestSegmentSpecialFloats proves the raw encoding is bit-exact for the
// values float formats mangle: NaN payloads, ±0, ±Inf, and denormals.
func TestSegmentSpecialFloats(t *testing.T) {
	specials := []float64{
		0, math.Copysign(0, -1),
		math.Inf(1), math.Inf(-1),
		math.NaN(),
		math.Float64frombits(0x7ff8_0000_0000_0001), // NaN with payload
		math.Float64frombits(0xfff8_dead_beef_0000), // negative NaN payload
		math.Float64frombits(1),                     // smallest denormal
		math.Float64frombits(0x000f_ffff_ffff_ffff), // largest denormal
		math.MaxFloat64, -math.MaxFloat64,
	}
	n := len(specials) * 3
	ps := &data.PointSet{Name: "specials"}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		v := specials[i%len(specials)]
		ps.X = append(ps.X, v)
		ps.Y = append(ps.Y, -v)
		ps.T = append(ps.T, int64(i))
		vals[i] = v
	}
	ps.AddAttr("v", vals)
	st := writeTemp(t, ps, []WriterOption{WithBlockSize(7)}, nil)
	assertRoundTrip(t, ps, st)
	// A block whose X values include NaN must carry the marker.
	sawNaN := false
	for b := 0; b < st.NumBlocks(); b++ {
		if st.Zone(b).X.HasNaN {
			sawNaN = true
		}
	}
	if !sawNaN {
		t.Error("no zone recorded HasNaN despite NaN coordinates")
	}
}

func TestSegmentZones(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ps := randomSet(rng, 10_000, true)
	st := writeTemp(t, ps, []WriterOption{WithBlockSize(1000)}, nil)
	for b := 0; b < st.NumBlocks(); b++ {
		lo, hi := st.BlockSpan(b)
		want := data.BuildZone(ps, lo, hi)
		got := st.Zone(b)
		if got.X != want.X || got.Y != want.Y || got.MinT != want.MinT || got.MaxT != want.MaxT {
			t.Fatalf("block %d zone = %+v, want %+v", b, got, want)
		}
		for a := range want.Attr {
			if got.Attr[a] != want.Attr[a] {
				t.Fatalf("block %d attr %d zone = %+v, want %+v", b, a, got.Attr[a], want.Attr[a])
			}
		}
	}
}

func TestSegmentMultiBatchAppend(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	full := randomSet(rng, 9_000, true)
	path := filepath.Join(t.TempDir(), "seg.useg")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWriter(f, WithBlockSize(1024))
	// Append in uneven batches; block boundaries must not align with them.
	for lo := 0; lo < full.Len(); {
		hi := lo + 700
		if hi > full.Len() {
			hi = full.Len()
		}
		if err := w.Append(full.Slice(lo, hi)); err != nil {
			t.Fatalf("Append: %v", err)
		}
		lo = hi
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	f.Close()
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	assertRoundTrip(t, full, st)
	if !st.TimeSorted() {
		t.Error("TimeSorted lost across batches")
	}
}

func TestSegmentSchemaMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomSet(rng, 100, true)
	b := randomSet(rng, 100, true)
	b.Attrs = b.Attrs[:1]
	w := NewWriter(new(bytes.Buffer))
	if err := w.Append(a); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(b); err == nil {
		t.Error("Append accepted mismatched attribute schema")
	}
	w2 := NewWriter(new(bytes.Buffer))
	if err := w2.Append(a); err != nil {
		t.Fatal(err)
	}
	c := randomSet(rng, 10, true)
	c.T = nil
	if err := w2.Append(c); err == nil {
		t.Error("Append accepted mismatched time presence")
	}
}

func TestSegmentFromCSV(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ps := randomSet(rng, 2_500, true)
	var csv bytes.Buffer
	if err := data.WriteCSV(&csv, ps); err != nil {
		t.Fatal(err)
	}
	var seg bytes.Buffer
	n, err := FromCSV(&csv, "csv-set", &seg, WithBlockSize(600))
	if err != nil {
		t.Fatalf("FromCSV: %v", err)
	}
	if n != ps.Len() {
		t.Fatalf("FromCSV wrote %d points, want %d", n, ps.Len())
	}
	st, err := OpenReaderAt(bytes.NewReader(seg.Bytes()), int64(seg.Len()))
	if err != nil {
		t.Fatalf("OpenReaderAt: %v", err)
	}
	if st.Name() != "csv-set" {
		t.Errorf("Name = %q", st.Name())
	}
	ps.Name = "csv-set"
	assertRoundTrip(t, ps, st)
}

// TestSegmentCacheEviction drives a store whose cache holds only a few
// blocks and checks the byte bound, the counters, and that evicted blocks
// decode again correctly — the out-of-core contract in miniature.
func TestSegmentCacheEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ps := randomSet(rng, 16_384, true)
	// Each decoded block: 1024 points * 5 cols * 8B = 40 KiB. Cap at ~3 blocks.
	st := writeTemp(t, ps, []WriterOption{WithBlockSize(1024)},
		[]StoreOption{WithCacheBytes(128 << 10)})
	assertRoundTrip(t, ps, st) // sequential: misses only, evictions happen
	stats := st.CacheStats()
	if stats.Misses != int64(st.NumBlocks()) {
		t.Errorf("misses = %d, want %d", stats.Misses, st.NumBlocks())
	}
	if stats.Evictions == 0 {
		t.Error("no evictions despite cache smaller than data")
	}
	if stats.Bytes > stats.Capacity {
		t.Errorf("cache bytes %d exceed capacity %d", stats.Bytes, stats.Capacity)
	}
	// Re-reading the most recent block hits; an old one misses again.
	last := st.NumBlocks() - 1
	if _, err := st.Block(last); err != nil {
		t.Fatal(err)
	}
	if got := st.CacheStats(); got.Hits != stats.Hits+1 {
		t.Errorf("hits = %d, want %d", got.Hits, stats.Hits+1)
	}
	blk, err := st.Block(0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(blk.X[0]) != math.Float64bits(ps.X[0]) {
		t.Error("re-decoded evicted block differs")
	}
}

// TestSegmentOutOfCore opens a store whose cache is smaller than a single
// block — every access decodes from disk — and checks full correctness.
func TestSegmentOutOfCore(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ps := randomSet(rng, 8_000, true)
	st := writeTemp(t, ps, []WriterOption{WithBlockSize(1024)},
		[]StoreOption{WithCacheBytes(1)})
	assertRoundTrip(t, ps, st)
	stats := st.CacheStats()
	if stats.Blocks != 0 || stats.Bytes != 0 {
		t.Errorf("cache retained %d blocks / %d bytes with 1-byte budget", stats.Blocks, stats.Bytes)
	}
	if stats.Hits != 0 {
		t.Errorf("hits = %d, want 0", stats.Hits)
	}
}

func TestSegmentConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	ps := randomSet(rng, 8_192, true)
	st := writeTemp(t, ps, []WriterOption{WithBlockSize(512)},
		[]StoreOption{WithCacheBytes(64 << 10)})
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(seed int64) {
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				b := r.Intn(st.NumBlocks())
				blk, err := st.Block(b)
				if err != nil {
					done <- err
					return
				}
				lo, _ := st.BlockSpan(b)
				if math.Float64bits(blk.X[0]) != math.Float64bits(ps.X[lo]) {
					t.Errorf("block %d corrupt under concurrency", b)
				}
			}
			done <- nil
		}(int64(g))
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func TestSegmentCorruptInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps := randomSet(rng, 1_000, true)
	var buf bytes.Buffer
	if err := Write(&buf, ps, WithBlockSize(256)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	cases := map[string][]byte{
		"empty":       {},
		"short":       good[:8],
		"bad-head":    append([]byte("XXXX"), good[4:]...),
		"bad-tail":    append(append([]byte(nil), good[:len(good)-4]...), 'X', 'X', 'X', 'X'),
		"toc-cut":     good[:len(good)-40],
		"bad-version": append(append([]byte(nil), good[:4]...), append([]byte{99, 0, 0, 0}, good[8:]...)...),
	}
	for name, b := range cases {
		if _, err := OpenReaderAt(bytes.NewReader(b), int64(len(b))); err == nil {
			t.Errorf("%s: Open succeeded on corrupt input", name)
		}
	}
}

// FuzzSegmentRoundTrip fuzzes the per-point encoding path, biasing toward
// special float values (NaN payloads, ±0, denormals) and irregular
// timestamps, asserting a bit-exact round trip.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add(int64(1), uint16(40), uint8(7), false)
	f.Add(int64(2), uint16(1), uint8(1), true)
	f.Add(int64(3), uint16(300), uint8(64), true)
	f.Fuzz(func(t *testing.T, seed int64, n uint16, blockSize uint8, noTime bool) {
		if n == 0 {
			return
		}
		bs := int(blockSize)
		if bs == 0 {
			bs = 1
		}
		rng := rand.New(rand.NewSource(seed))
		weird := []float64{
			math.NaN(), math.Float64frombits(0x7ff0_0000_0000_0001),
			math.Copysign(0, -1), 0, math.Inf(1), math.Inf(-1),
			math.Float64frombits(1), math.Float64frombits(rng.Uint64()),
		}
		pick := func() float64 {
			if rng.Intn(3) == 0 {
				return weird[rng.Intn(len(weird))]
			}
			return rng.NormFloat64() * 1e6
		}
		ps := &data.PointSet{Name: "fuzz"}
		vals := make([]float64, n)
		for i := 0; i < int(n); i++ {
			ps.X = append(ps.X, pick())
			ps.Y = append(ps.Y, pick())
			if !noTime {
				ps.T = append(ps.T, rng.Int63()-rng.Int63())
			}
			vals[i] = pick()
		}
		ps.AddAttr("v", vals)
		var buf bytes.Buffer
		if err := Write(&buf, ps, WithBlockSize(bs)); err != nil {
			t.Fatalf("Write: %v", err)
		}
		st, err := OpenReaderAt(bytes.NewReader(buf.Bytes()), int64(buf.Len()),
			WithCacheBytes(int64(rng.Intn(4096))))
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		for b := 0; b < st.NumBlocks(); b++ {
			blk, err := st.Block(b)
			if err != nil {
				t.Fatalf("Block(%d): %v", b, err)
			}
			lo, hi := st.BlockSpan(b)
			for i := lo; i < hi; i++ {
				j := i - lo
				if math.Float64bits(blk.X[j]) != math.Float64bits(ps.X[i]) ||
					math.Float64bits(blk.Y[j]) != math.Float64bits(ps.Y[i]) ||
					math.Float64bits(blk.Attr[0][j]) != math.Float64bits(vals[i]) {
					t.Fatalf("point %d differs after round trip", i)
				}
				if !noTime && blk.T[j] != ps.T[i] {
					t.Fatalf("point %d: T=%d, want %d", i, blk.T[j], ps.T[i])
				}
			}
		}
	})
}
