package segment

import (
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/data"
)

// Writer streams points into a segment file: rows accumulate into an
// in-memory block buffer, each full block is encoded and written out with
// its zone map retained for the footer, and Close appends the table of
// contents. Memory use is one block plus the TOC, independent of the data
// size — the write side of the out-of-core contract.
type Writer struct {
	w         io.Writer
	off       int64
	blockSize int
	name      string
	nameSet   bool

	started    bool
	hasTime    bool
	attrNames  []string
	timeSorted bool
	lastT      int64
	count      int

	// current block buffers
	x, y  []float64
	t     []int64
	attrs [][]float64

	// footer state
	offsets []int64
	counts  []int
	zones   []data.Zone

	err error
}

// WriterOption configures a Writer.
type WriterOption func(*Writer)

// WithBlockSize sets the points-per-block (default DefaultBlockSize).
func WithBlockSize(n int) WriterOption {
	return func(w *Writer) {
		if n > 0 {
			w.blockSize = n
		}
	}
}

// WithName sets the data set name stored in the header (default: the name
// of the first appended batch).
func WithName(name string) WriterOption {
	return func(w *Writer) {
		w.name = name
		w.nameSet = true
	}
}

// NewWriter returns a segment writer over w. The schema (attributes, time
// presence) is fixed by the first appended batch; every later batch must
// match it.
func NewWriter(w io.Writer, opts ...WriterOption) *Writer {
	sw := &Writer{w: w, blockSize: DefaultBlockSize, timeSorted: true}
	for _, o := range opts {
		o(sw)
	}
	return sw
}

// Count returns the number of points appended so far.
func (w *Writer) Count() int { return w.count }

// Append appends every point of ps to the segment.
func (w *Writer) Append(ps *data.PointSet) error {
	if w.err != nil {
		return w.err
	}
	if err := ps.Validate(); err != nil {
		return w.fail(err)
	}
	if !w.started {
		w.started = true
		w.hasTime = ps.T != nil
		w.attrNames = append([]string(nil), ps.AttrNames()...)
		if !w.nameSet {
			w.name = ps.Name
		}
		w.attrs = make([][]float64, len(w.attrNames))
		if err := w.writeHeader(); err != nil {
			return w.fail(err)
		}
	} else {
		if (ps.T != nil) != w.hasTime {
			return w.fail(fmt.Errorf("segment: batch time column mismatch (segment hasTime=%v)", w.hasTime))
		}
		names := ps.AttrNames()
		if len(names) != len(w.attrNames) {
			return w.fail(fmt.Errorf("segment: batch has %d attributes, segment has %d", len(names), len(w.attrNames)))
		}
		for i, n := range names {
			if n != w.attrNames[i] {
				return w.fail(fmt.Errorf("segment: batch attribute %d is %q, segment has %q", i, n, w.attrNames[i]))
			}
		}
	}
	for i := 0; i < ps.Len(); i++ {
		w.x = append(w.x, ps.X[i])
		w.y = append(w.y, ps.Y[i])
		if w.hasTime {
			t := ps.T[i]
			if w.count > 0 && t < w.lastT {
				w.timeSorted = false
			}
			w.lastT = t
			w.t = append(w.t, t)
		}
		for a := range w.attrs {
			w.attrs[a] = append(w.attrs[a], ps.Attrs[a].Values[i])
		}
		w.count++
		if len(w.x) >= w.blockSize {
			if err := w.flushBlock(); err != nil {
				return w.fail(err)
			}
		}
	}
	return nil
}

// Close flushes the partial block and writes the TOC and trailer. The
// Writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if !w.started {
		// Empty segment: header with an empty schema, then the footer.
		w.started = true
		if err := w.writeHeader(); err != nil {
			return w.fail(err)
		}
	}
	if len(w.x) > 0 {
		if err := w.flushBlock(); err != nil {
			return w.fail(err)
		}
	}
	tocOff := w.off
	buf := binary.LittleEndian.AppendUint32(nil, uint32(len(w.offsets)))
	if w.hasTime && w.timeSorted {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for b := range w.offsets {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(w.offsets[b]))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(w.counts[b]))
		buf = encodeZone(buf, w.zones[b], w.hasTime)
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(tocOff))
	buf = append(buf, magicTail[:]...)
	if err := w.write(buf); err != nil {
		return w.fail(err)
	}
	w.err = fmt.Errorf("segment: writer closed")
	return nil
}

func (w *Writer) fail(err error) error {
	w.err = err
	return err
}

func (w *Writer) write(b []byte) error {
	n, err := w.w.Write(b)
	w.off += int64(n)
	return err
}

func (w *Writer) writeHeader() error {
	buf := append([]byte(nil), magicHead[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(w.blockSize))
	var flags byte
	if w.hasTime {
		flags |= flagHasTime
	}
	buf = append(buf, flags)
	buf = appendString(buf, w.name)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(w.attrNames)))
	for _, n := range w.attrNames {
		buf = appendString(buf, n)
	}
	return w.write(buf)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

// flushBlock encodes and writes the buffered block.
func (w *Writer) flushBlock() error {
	n := len(w.x)
	w.offsets = append(w.offsets, w.off)
	w.counts = append(w.counts, n)

	z := data.Zone{X: data.EmptyZoneCol(), Y: data.EmptyZoneCol(),
		Attr: make([]data.ZoneCol, len(w.attrs))}
	for a := range z.Attr {
		z.Attr[a] = data.EmptyZoneCol()
	}
	for i := 0; i < n; i++ {
		z.X.Observe(w.x[i])
		z.Y.Observe(w.y[i])
		for a := range w.attrs {
			z.Attr[a].Observe(w.attrs[a][i])
		}
	}
	if w.hasTime {
		z.MinT, z.MaxT = w.t[0], w.t[0]
		for _, t := range w.t[1:] {
			if t < z.MinT {
				z.MinT = t
			}
			if t > z.MaxT {
				z.MaxT = t
			}
		}
	}
	w.zones = append(w.zones, z)

	var buf []byte
	writeCol := func(enc byte, payload []byte) {
		buf = append(buf, enc)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = append(buf, payload...)
	}
	writeCol(encRawF64, encodeF64(nil, w.x))
	writeCol(encRawF64, encodeF64(nil, w.y))
	if w.hasTime {
		writeCol(encDeltaT, encodeTime(nil, w.t))
	}
	for a := range w.attrs {
		writeCol(encRawF64, encodeF64(nil, w.attrs[a]))
	}
	if err := w.write(buf); err != nil {
		return err
	}
	w.x, w.y, w.t = w.x[:0], w.y[:0], w.t[:0]
	for a := range w.attrs {
		w.attrs[a] = w.attrs[a][:0]
	}
	return nil
}

// Write encodes ps into a single segment on w — the one-shot form used by
// tests, benchmarks, and the server's -segments materialization.
func Write(w io.Writer, ps *data.PointSet, opts ...WriterOption) error {
	sw := NewWriter(w, opts...)
	if err := sw.Append(ps); err != nil {
		return err
	}
	return sw.Close()
}

// FromCSV streams a CSV point file (data.WriteCSV layout) into a segment
// on w, one batch at a time — inputs larger than RAM flow through a single
// block buffer. It returns the number of points written.
func FromCSV(r io.Reader, name string, w io.Writer, opts ...WriterOption) (int, error) {
	opts = append([]WriterOption{WithName(name)}, opts...)
	sw := NewWriter(w, opts...)
	if err := data.StreamCSV(r, name, 1<<16, sw.Append); err != nil {
		return sw.Count(), err
	}
	if err := sw.Close(); err != nil {
		return sw.Count(), err
	}
	return sw.Count(), nil
}
