package segment

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sync"

	"repro/internal/data"
)

// Store is the read side of a segment file: it keeps only the header and
// the table of contents (offsets, counts, zone maps) resident, reads and
// decodes blocks on demand through a byte-bounded LRU cache, and exposes
// the whole thing as a data.PointSource. A Store is safe for concurrent
// readers; the cache serializes decodes, and evicted blocks stay valid for
// callers still holding them (blocks are immutable once decoded).
type Store struct {
	r         io.ReaderAt
	closer    io.Closer
	name      string
	version   uint32
	blockSize int
	hasTime   bool
	sorted    bool
	attrs     []string
	stamp     uint64

	offsets []int64 // per block; offsets[nb] is the TOC offset (read bound)
	counts  []int
	starts  []int // cumulative point index; starts[nb] == Len()
	zones   []data.Zone

	mu       sync.Mutex
	cache    map[int]*list.Element
	lru      list.List // front = most recently used
	capBytes int64
	curBytes int64
	hits     int64
	misses   int64
	evicts   int64

	// scratch pools encoded-block read buffers across decodes.
	scratch sync.Pool
}

type cacheEntry struct {
	b     int
	blk   *data.Block
	bytes int64
}

// CacheStats snapshots a Store's decoded-block cache counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Bytes     int64 `json:"bytes"`
	Capacity  int64 `json:"capacityBytes"`
	Blocks    int   `json:"blocks"`
}

// Add accumulates another snapshot (for aggregating across stores).
func (s *CacheStats) Add(o CacheStats) {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Evictions += o.Evictions
	s.Bytes += o.Bytes
	s.Capacity += o.Capacity
	s.Blocks += o.Blocks
}

// StoreOption configures an opened Store.
type StoreOption func(*Store)

// WithCacheBytes bounds the decoded-block cache (default
// DefaultCacheBytes). 0 keeps no blocks resident between reads — every
// access decodes, the fully out-of-core mode.
func WithCacheBytes(n int64) StoreOption {
	return func(s *Store) {
		if n >= 0 {
			s.capBytes = n
		}
	}
}

// Open opens a segment file by path.
func Open(path string, opts ...StoreOption) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	s, err := OpenReaderAt(f, fi.Size(), opts...)
	if err != nil {
		f.Close()
		return nil, err
	}
	s.closer = f
	return s, nil
}

// OpenReaderAt opens a segment from any random-access reader of the given
// size (an os.File, an mmap-backed region, a bytes.Reader in tests).
func OpenReaderAt(r io.ReaderAt, size int64, opts ...StoreOption) (*Store, error) {
	s := &Store{r: r, capBytes: DefaultCacheBytes, cache: make(map[int]*list.Element)}
	s.scratch.New = func() any { return new([]byte) }
	for _, o := range opts {
		o(s)
	}
	if err := s.load(size); err != nil {
		return nil, err
	}
	s.stamp = data.NewStamp()
	return s, nil
}

// Close releases the underlying file (when the store owns one) and drops
// the cache.
func (s *Store) Close() error {
	s.mu.Lock()
	s.cache = make(map[int]*list.Element)
	s.lru.Init()
	s.curBytes = 0
	s.mu.Unlock()
	if s.closer != nil {
		return s.closer.Close()
	}
	return nil
}

// load parses the header, trailer, and TOC.
func (s *Store) load(size int64) error {
	if size < 16 {
		return fmt.Errorf("segment: file too small (%d bytes)", size)
	}
	trailer := make([]byte, 12)
	if _, err := s.r.ReadAt(trailer, size-12); err != nil {
		return fmt.Errorf("segment: reading trailer: %w", err)
	}
	if [4]byte(trailer[8:12]) != magicTail {
		return fmt.Errorf("segment: bad trailer magic %q", trailer[8:12])
	}
	tocOff := int64(binary.LittleEndian.Uint64(trailer))
	if tocOff < 0 || tocOff > size-12 {
		return fmt.Errorf("segment: TOC offset %d out of range", tocOff)
	}

	// Header.
	head := make([]byte, 13)
	if _, err := s.r.ReadAt(head, 0); err != nil {
		return fmt.Errorf("segment: reading header: %w", err)
	}
	if [4]byte(head[:4]) != magicHead {
		return fmt.Errorf("segment: bad magic %q", head[:4])
	}
	s.version = binary.LittleEndian.Uint32(head[4:])
	if s.version != Version {
		return fmt.Errorf("segment: unsupported format version %d (reader supports %d)", s.version, Version)
	}
	s.blockSize = int(binary.LittleEndian.Uint32(head[8:]))
	s.hasTime = head[12]&flagHasTime != 0
	// Variable-length tail of the header: name and attribute names.
	// Bounded by the TOC offset; read it in one shot (names are tiny).
	nameBuf := make([]byte, min64(tocOff-13, 1<<20))
	if _, err := s.r.ReadAt(nameBuf, 13); err != nil && err != io.EOF {
		return fmt.Errorf("segment: reading header names: %w", err)
	}
	pos := 0
	readStr := func() (string, error) {
		if pos+2 > len(nameBuf) {
			return "", fmt.Errorf("segment: truncated header string")
		}
		n := int(binary.LittleEndian.Uint16(nameBuf[pos:]))
		pos += 2
		if pos+n > len(nameBuf) {
			return "", fmt.Errorf("segment: truncated header string")
		}
		v := string(nameBuf[pos : pos+n])
		pos += n
		return v, nil
	}
	var err error
	if s.name, err = readStr(); err != nil {
		return err
	}
	if pos+2 > len(nameBuf) {
		return fmt.Errorf("segment: truncated attribute count")
	}
	nattrs := int(binary.LittleEndian.Uint16(nameBuf[pos:]))
	pos += 2
	s.attrs = make([]string, nattrs)
	for a := range s.attrs {
		if s.attrs[a], err = readStr(); err != nil {
			return err
		}
	}

	// TOC.
	tocBuf := make([]byte, size-12-tocOff)
	if _, err := s.r.ReadAt(tocBuf, tocOff); err != nil {
		return fmt.Errorf("segment: reading TOC: %w", err)
	}
	if len(tocBuf) < 5 {
		return fmt.Errorf("segment: truncated TOC")
	}
	nb := int(binary.LittleEndian.Uint32(tocBuf))
	s.sorted = tocBuf[4] != 0
	tpos := 5
	s.offsets = make([]int64, nb+1)
	s.counts = make([]int, nb)
	s.starts = make([]int, nb+1)
	s.zones = make([]data.Zone, nb)
	for b := 0; b < nb; b++ {
		if tpos+12 > len(tocBuf) {
			return fmt.Errorf("segment: truncated TOC entry %d", b)
		}
		s.offsets[b] = int64(binary.LittleEndian.Uint64(tocBuf[tpos:]))
		s.counts[b] = int(binary.LittleEndian.Uint32(tocBuf[tpos+8:]))
		tpos += 12
		z, n, err := decodeZone(tocBuf[tpos:], s.hasTime, nattrs)
		if err != nil {
			return fmt.Errorf("segment: TOC entry %d: %w", b, err)
		}
		s.zones[b] = z
		tpos += n
		if s.counts[b] <= 0 {
			return fmt.Errorf("segment: block %d has count %d", b, s.counts[b])
		}
		s.starts[b+1] = s.starts[b] + s.counts[b]
	}
	s.offsets[nb] = tocOff
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// PointSource implementation.

// Name returns the data set name recorded in the header.
func (s *Store) Name() string { return s.name }

// Len returns the total number of points.
func (s *Store) Len() int { return s.starts[len(s.starts)-1] }

// Stamp returns the store's process-unique data identity, issued at Open.
func (s *Store) Stamp() uint64 { return s.stamp }

// AttrNames returns the attribute names in column order.
func (s *Store) AttrNames() []string { return s.attrs }

// HasTime reports whether the segment carries timestamps.
func (s *Store) HasTime() bool { return s.hasTime }

// TimeSorted reports whether timestamps are globally non-decreasing.
func (s *Store) TimeSorted() bool { return s.hasTime && s.sorted }

// NumBlocks returns the block count.
func (s *Store) NumBlocks() int { return len(s.counts) }

// BlockSpan returns the absolute point range [lo, hi) of block b.
func (s *Store) BlockSpan(b int) (lo, hi int) { return s.starts[b], s.starts[b+1] }

// Zone returns block b's zone map (resident; no IO).
func (s *Store) Zone(b int) data.Zone { return s.zones[b] }

// BlockSize returns the nominal points-per-block.
func (s *Store) BlockSize() int { return s.blockSize }

// CacheStats snapshots the decoded-block cache counters.
func (s *Store) CacheStats() CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return CacheStats{
		Hits: s.hits, Misses: s.misses, Evictions: s.evicts,
		Bytes: s.curBytes, Capacity: s.capBytes, Blocks: s.lru.Len(),
	}
}

// Block returns decoded block b, from cache or from disk. The block is
// immutable and remains valid even if evicted while in use.
func (s *Store) Block(b int) (*data.Block, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.cache[b]; ok {
		s.hits++
		s.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).blk, nil
	}
	s.misses++
	blk, err := s.readBlock(b)
	if err != nil {
		return nil, err
	}
	n := blk.Bytes()
	if s.capBytes > 0 {
		for s.curBytes+n > s.capBytes && s.lru.Len() > 0 {
			oldest := s.lru.Back()
			ent := oldest.Value.(*cacheEntry)
			s.lru.Remove(oldest)
			delete(s.cache, ent.b)
			s.curBytes -= ent.bytes
			s.evicts++
		}
		if s.curBytes+n <= s.capBytes {
			s.cache[b] = s.lru.PushFront(&cacheEntry{b: b, blk: blk, bytes: n})
			s.curBytes += n
		}
	}
	return blk, nil
}

// readBlock reads and decodes block b. Caller holds s.mu.
func (s *Store) readBlock(b int) (*data.Block, error) {
	size := s.offsets[b+1] - s.offsets[b]
	bufp := s.scratch.Get().(*[]byte)
	defer s.scratch.Put(bufp)
	if int64(cap(*bufp)) < size {
		*bufp = make([]byte, size)
	}
	buf := (*bufp)[:size]
	if _, err := s.r.ReadAt(buf, s.offsets[b]); err != nil {
		return nil, fmt.Errorf("segment: reading block %d: %w", b, err)
	}
	count := s.counts[b]
	blk := &data.Block{Base: s.starts[b]}
	pos := 0
	readCol := func() (byte, []byte, error) {
		if pos+5 > len(buf) {
			return 0, nil, fmt.Errorf("segment: truncated column header in block %d", b)
		}
		enc := buf[pos]
		n := int(binary.LittleEndian.Uint32(buf[pos+1:]))
		pos += 5
		if pos+n > len(buf) {
			return 0, nil, fmt.Errorf("segment: truncated column payload in block %d", b)
		}
		payload := buf[pos : pos+n]
		pos += n
		return enc, payload, nil
	}
	floatCol := func() ([]float64, error) {
		enc, payload, err := readCol()
		if err != nil {
			return nil, err
		}
		if enc != encRawF64 {
			return nil, fmt.Errorf("segment: block %d: unknown float encoding %d", b, enc)
		}
		return decodeF64(payload, count)
	}
	var err error
	if blk.X, err = floatCol(); err != nil {
		return nil, err
	}
	if blk.Y, err = floatCol(); err != nil {
		return nil, err
	}
	if s.hasTime {
		enc, payload, err := readCol()
		if err != nil {
			return nil, err
		}
		if enc != encDeltaT {
			return nil, fmt.Errorf("segment: block %d: unknown time encoding %d", b, enc)
		}
		if blk.T, err = decodeTime(payload, count); err != nil {
			return nil, err
		}
	}
	if len(s.attrs) > 0 {
		blk.Attr = make([][]float64, len(s.attrs))
		for a := range blk.Attr {
			if blk.Attr[a], err = floatCol(); err != nil {
				return nil, err
			}
		}
	}
	return blk, nil
}
