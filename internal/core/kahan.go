package core

import "repro/internal/fsum"

// Compensated-summation helpers the floataccum analyzer points kernel code
// at. The implementations live in the leaf package internal/fsum so that
// geometry and raster code below the kernel layer can share them; these
// aliases give kernels the spelling the diagnostics suggest.

// KahanSum returns the Neumaier-compensated sum of xs: O(eps) error
// independent of length, where naive accumulation drifts by O(n·eps).
func KahanSum(xs []float64) float64 { return fsum.Sum(xs) }

// PairwiseSum returns the cascade sum of xs: O(eps·log n) error with plain
// adds, cheaper than KahanSum on long slices.
func PairwiseSum(xs []float64) float64 { return fsum.Pairwise(xs) }

// KahanAccumulator is a running compensated accumulator for streaming
// reductions; the zero value is an empty sum.
type KahanAccumulator = fsum.Kahan
