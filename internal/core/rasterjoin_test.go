package core_test

// External test package: the tests compare Raster Join against the exact
// geometric joiners in internal/index, which itself imports internal/core.

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/index"
)

func scene(np, nr int, seed int64) (*data.PointSet, *data.RegionSet) {
	bounds := geom.BBox{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	rng := rand.New(rand.NewSource(seed))
	ps := &data.PointSet{
		Name: "pts",
		X:    make([]float64, np),
		Y:    make([]float64, np),
		T:    make([]int64, np),
	}
	vals := make([]float64, np)
	for i := 0; i < np; i++ {
		// Mild clustering so boundary pixels are populated.
		if rng.Float64() < 0.5 {
			ps.X[i] = 300 + rng.NormFloat64()*150
			ps.Y[i] = 600 + rng.NormFloat64()*150
		} else {
			ps.X[i] = rng.Float64() * 1000
			ps.Y[i] = rng.Float64() * 1000
		}
		ps.X[i] = math.Min(999.9, math.Max(0.1, ps.X[i]))
		ps.Y[i] = math.Min(999.9, math.Max(0.1, ps.Y[i]))
		ps.T[i] = int64(i)
		vals[i] = 1 + rng.Float64()*9
	}
	ps.Attrs = []data.Column{{Name: "v", Values: vals}}
	rs := data.VoronoiRegions("nbhd", bounds, nr, seed+1,
		data.VoronoiOptions{JitterFrac: 0.08})
	return ps, rs
}

func statsExactlyEqual(t *testing.T, got, want *core.Result, context string) {
	t.Helper()
	if len(got.Stats) != len(want.Stats) {
		t.Fatalf("%s: %d vs %d regions", context, len(got.Stats), len(want.Stats))
	}
	for k := range got.Stats {
		if got.Stats[k].Count != want.Stats[k].Count {
			t.Fatalf("%s: region %d count %d, want %d",
				context, k, got.Stats[k].Count, want.Stats[k].Count)
		}
		if math.Abs(got.Stats[k].Sum-want.Stats[k].Sum) >
			1e-6*math.Max(1, math.Abs(want.Stats[k].Sum)) {
			t.Fatalf("%s: region %d sum %v, want %v",
				context, k, got.Stats[k].Sum, want.Stats[k].Sum)
		}
	}
}

// The central correctness property: the accurate (hybrid) raster join is
// exact — it must agree with brute force bit-for-bit on counts, at any
// resolution, including very coarse ones where almost everything is a
// boundary pixel.
func TestAccurateRasterJoinIsExact(t *testing.T) {
	ps, rs := scene(4000, 12, 41)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	want, err := (&index.BruteForce{}).Join(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []int{32, 64, 256, 1024} {
		rj := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(res))
		got, err := rj.Join(req)
		if err != nil {
			t.Fatalf("res %d: %v", res, err)
		}
		statsExactlyEqual(t, got, want, rj.Name())
	}
}

func TestAccurateRasterJoinExactUnderFilters(t *testing.T) {
	ps, rs := scene(3000, 10, 43)
	req := core.Request{
		Points: ps, Regions: rs, Agg: core.Avg, Attr: "v",
		Filters: []core.Filter{{Attr: "v", Min: 3, Max: 8}},
		Time:    &core.TimeFilter{Start: 200, End: 2500},
	}
	want, err := (&index.BruteForce{}).Join(req)
	if err != nil {
		t.Fatal(err)
	}
	rj := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(128))
	got, err := rj.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	statsExactlyEqual(t, got, want, "accurate with filters")
	if want.TotalCount() == 0 {
		t.Fatal("filters swallowed all points; test is vacuous")
	}
}

// Bounded raster join property: a point can only be misassigned when it
// lies within epsilon of the boundary of the region it was (or should have
// been) assigned to. We verify the aggregate consequence: per-region count
// error is bounded by the number of filtered points within epsilon of that
// region's boundary.
func TestBoundedRasterJoinErrorWithinEpsilon(t *testing.T) {
	ps, rs := scene(3000, 8, 47)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	want, err := (&index.BruteForce{}).Join(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{40, 20, 10} {
		rj := core.NewRasterJoin(core.WithEpsilon(eps))
		got, err := rj.Join(req)
		if err != nil {
			t.Fatal(err)
		}
		if got.PixelSize*math.Sqrt2 > eps+1e-9 {
			t.Fatalf("eps %v: pixel diagonal %v exceeds bound",
				eps, got.PixelSize*math.Sqrt2)
		}
		for k, reg := range rs.Regions {
			diff := got.Stats[k].Count - want.Stats[k].Count
			if diff < 0 {
				diff = -diff
			}
			if diff == 0 {
				continue
			}
			// Count points within eps of this region's boundary.
			near := int64(0)
			for i := 0; i < ps.Len(); i++ {
				p := geom.Point{X: ps.X[i], Y: ps.Y[i]}
				if !reg.Poly.BBox().Expand(eps).Contains(p) {
					continue
				}
				d2 := math.Inf(1)
				reg.Poly.Edges(func(a, b geom.Point) bool {
					if d := geom.SegmentDistSq(p, a, b); d < d2 {
						d2 = d
					}
					return true
				})
				if d2 <= eps*eps {
					near++
				}
			}
			if diff > near {
				t.Errorf("eps %v region %d: |error| %d exceeds %d boundary-near points",
					eps, k, diff, near)
			}
		}
	}
}

// Shrinking epsilon must not increase total absolute error (on the same
// scene): the approximation converges to the exact answer.
func TestApproximateErrorShrinksWithResolution(t *testing.T) {
	ps, rs := scene(5000, 10, 53)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	want, _ := (&index.BruteForce{}).Join(req)

	totalErr := func(res *core.Result) (e int64) {
		for k := range res.Stats {
			d := res.Stats[k].Count - want.Stats[k].Count
			if d < 0 {
				d = -d
			}
			e += d
		}
		return
	}
	coarse, _ := core.NewRasterJoin(core.WithResolution(64)).Join(req)
	fine, _ := core.NewRasterJoin(core.WithResolution(1024)).Join(req)
	ce, fe := totalErr(coarse), totalErr(fine)
	if fe > ce {
		t.Errorf("error grew with resolution: 64px=%d 1024px=%d", ce, fe)
	}
	if fe > int64(ps.Len()/100) {
		t.Errorf("1024px error %d > 1%% of %d points", fe, ps.Len())
	}
}

// Tiling must not change results: a tiny max texture size forcing many
// passes must agree exactly with a single-pass render.
func TestTiledRenderMatchesSinglePass(t *testing.T) {
	ps, rs := scene(2000, 6, 59)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}

	single := core.NewRasterJoin(core.WithResolution(256),
		core.WithDevice(gpu.New(gpu.WithMaxTextureSize(4096))))
	tiled := core.NewRasterJoin(core.WithResolution(256),
		core.WithDevice(gpu.New(gpu.WithMaxTextureSize(64))))

	a, err := single.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tiled.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tiles != 1 {
		t.Fatalf("single-pass tiles = %d", a.Tiles)
	}
	if b.Tiles < 16 {
		t.Fatalf("tiled render tiles = %d, want >= 16", b.Tiles)
	}
	statsExactlyEqual(t, b, a, "tiled vs single (approximate)")

	// Accurate mode under tiling is still exact.
	want, _ := (&index.BruteForce{}).Join(req)
	accTiled := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(256),
		core.WithDevice(gpu.New(gpu.WithMaxTextureSize(64))))
	c, err := accTiled.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	statsExactlyEqual(t, c, want, "tiled accurate vs brute force")
}

func TestRasterJoinParallelDeterminism(t *testing.T) {
	ps, rs := scene(3000, 9, 61)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	one := core.NewRasterJoin(core.WithWorkers(1), core.WithResolution(256))
	many := core.NewRasterJoin(core.WithWorkers(8), core.WithResolution(256))
	a, err := one.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := many.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	statsExactlyEqual(t, b, a, "workers 8 vs 1")
}

func TestRasterJoinEmptyInputs(t *testing.T) {
	_, rs := scene(10, 4, 67)
	empty := &data.PointSet{Name: "empty"}
	rj := core.NewRasterJoin()
	res, err := rj.Join(core.Request{Points: empty, Regions: rs, Agg: core.Count})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCount() != 0 {
		t.Errorf("empty points total = %d", res.TotalCount())
	}
	ps, _ := scene(100, 4, 68)
	res, err = rj.Join(core.Request{Points: ps, Regions: &data.RegionSet{}, Agg: core.Count})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stats) != 0 {
		t.Errorf("empty regions stats = %d", len(res.Stats))
	}
}

func TestRasterJoinValidates(t *testing.T) {
	ps, rs := scene(100, 4, 69)
	rj := core.NewRasterJoin()
	if _, err := rj.Join(core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "nope"}); err == nil {
		t.Error("invalid request should be rejected")
	}
}

func TestRasterJoinNames(t *testing.T) {
	if got := core.NewRasterJoin().Name(); got != "raster-join-approximate-1024px" {
		t.Errorf("default name = %q", got)
	}
	rj := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithEpsilon(16))
	if got := rj.Name(); got != "raster-join-accurate-eps16" {
		t.Errorf("bounded accurate name = %q", got)
	}
	if rj.Epsilon() != 16 {
		t.Errorf("Epsilon = %v", rj.Epsilon())
	}
	if core.Approximate.String() != "approximate" || core.Accurate.String() != "accurate" {
		t.Error("Mode.String wrong")
	}
}

func TestRasterJoinResultMetadata(t *testing.T) {
	ps, rs := scene(500, 4, 71)
	rj := core.NewRasterJoin(core.WithEpsilon(5),
		core.WithDevice(gpu.New(gpu.WithMaxTextureSize(128))))
	res, err := rj.Join(core.Request{Points: ps, Regions: rs, Agg: core.Count})
	if err != nil {
		t.Fatal(err)
	}
	if res.CanvasW < 256 || res.CanvasH < 256 {
		t.Errorf("canvas %dx%d too small for eps=5 over 1000-unit window",
			res.CanvasW, res.CanvasH)
	}
	wantTiles := ((res.CanvasW + 127) / 128) * ((res.CanvasH + 127) / 128)
	if res.Tiles != wantTiles {
		t.Errorf("tiles = %d, want %d", res.Tiles, wantTiles)
	}
	if res.PixelSize <= 0 || res.PixelSize*math.Sqrt2 > 5 {
		t.Errorf("pixel size %v violates eps", res.PixelSize)
	}
	if res.Algorithm == "" {
		t.Error("algorithm metadata missing")
	}
}

// Property test across random scenes: accurate raster join equals brute
// force for every aggregate.
func TestAccurateExactProperty(t *testing.T) {
	for iter := 0; iter < 8; iter++ {
		seed := int64(100 + iter*17)
		ps, rs := scene(800+iter*300, 3+iter, seed)
		for _, agg := range []core.Agg{core.Count, core.Sum, core.Avg} {
			req := core.Request{Points: ps, Regions: rs, Agg: agg, Attr: "v"}
			want, err := (&index.BruteForce{}).Join(req)
			if err != nil {
				t.Fatal(err)
			}
			rj := core.NewRasterJoin(core.WithMode(core.Accurate),
				core.WithResolution(64+iter*32))
			got, err := rj.Join(req)
			if err != nil {
				t.Fatal(err)
			}
			statsExactlyEqual(t, got, want, rj.Name())
		}
	}
}
