package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/data"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/raster"
	"repro/internal/trace"
)

// Mode selects the raster join variant.
type Mode int

const (
	// Approximate assigns every point the pixel-center classification of
	// its pixel — the paper's plain raster join. Points within one pixel
	// diagonal of a region boundary may be misassigned.
	Approximate Mode = iota
	// Accurate keeps raster-space aggregation for interior pixels but runs
	// an exact point-in-polygon test for fragments in boundary pixels,
	// producing exact results — the paper's hybrid accurate variant.
	Accurate
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Accurate {
		return "accurate"
	}
	return "approximate"
}

// RasterJoin evaluates spatial aggregations on the GPU device by drawing.
// Construct with NewRasterJoin; the zero value is not usable.
type RasterJoin struct {
	dev          *gpu.Device
	mode         Mode
	strategy     Strategy
	resolution   int
	epsilon      float64
	workers      int
	pointWorkers int
	pointBatch   int
	blockPrune   bool
}

// RJOption configures a RasterJoin.
type RJOption func(*RasterJoin)

// WithDevice renders on the given device (default: a fresh device with
// default limits).
func WithDevice(d *gpu.Device) RJOption { return func(r *RasterJoin) { r.dev = d } }

// WithMode selects Approximate (default) or Accurate.
func WithMode(m Mode) RJOption { return func(r *RasterJoin) { r.mode = m } }

// WithResolution sets the canvas size (longest side, pixels) used when no
// error bound is given. This is the screen-resolution-driven mode the map
// view uses. Default 1024.
func WithResolution(n int) RJOption {
	return func(r *RasterJoin) {
		if n > 0 {
			r.resolution = n
		}
	}
}

// WithEpsilon activates bounded raster join: the canvas resolution is chosen
// so each pixel's diagonal is at most eps world units, guaranteeing that
// only points within eps of a region boundary can be misassigned. The
// canvas is tiled into multiple passes when it exceeds the device limit.
func WithEpsilon(eps float64) RJOption {
	return func(r *RasterJoin) {
		if eps > 0 {
			r.epsilon = eps
		}
	}
}

// WithWorkers caps render parallelism (default: GOMAXPROCS). The software
// device parallelizes across polygons; on a real GPU this is shader-core
// occupancy.
func WithWorkers(n int) RJOption {
	return func(r *RasterJoin) {
		if n > 0 {
			r.workers = n
		}
	}
}

// WithPointWorkers caps point-pass parallelism (default: GOMAXPROCS).
// The point pass shards the vertex range across this many goroutines;
// results are bit-identical to the sequential pass regardless of the
// setting. 1 forces the sequential pass.
func WithPointWorkers(n int) RJOption {
	return func(r *RasterJoin) {
		if n > 0 {
			r.pointWorkers = n
		}
	}
}

// WithPointBatch caps the number of point vertices submitted per draw call,
// modelling the GPU vertex-buffer budget: data sets larger than GPU memory
// are streamed in batches, exactly as the paper's implementation does.
// Results are identical regardless of batch size. <= 0 (default) submits
// everything in one draw.
func WithPointBatch(n int) RJOption {
	return func(r *RasterJoin) {
		if n > 0 {
			r.pointBatch = n
		}
	}
}

// WithBlockPrune enables (default) or disables zone-map block pruning on
// the point scan. Disabling it decodes and draws every block — the
// baseline the pruning benchmarks compare against. Results are identical
// either way; pruned blocks provably contribute no fragments.
func WithBlockPrune(on bool) RJOption { return func(r *RasterJoin) { r.blockPrune = on } }

// drawPointsBatched streams point indices [lo, hi) to the canvas in
// batches of at most pointBatch vertices. pos and shader receive absolute
// point indices. The context is checked between batches — the batch size is
// the cancellation granularity of the point pass — and each submitted batch
// increments the request trace's "batches" counter.
func (r *RasterJoin) drawPointsBatched(ctx context.Context, c *gpu.Canvas, lo, hi int,
	pos func(i int) (float64, float64), shader func(px, py, i int)) error {

	batch := r.pointBatch
	if batch <= 0 {
		batch = hi - lo
	}
	tr := trace.FromContext(ctx)
	for s := lo; s < hi; s += batch {
		if err := ctx.Err(); err != nil {
			return err
		}
		// `core.pointpass` is a fault injection site, polled at the same
		// granularity as cancellation — once per batch.
		if err := fault.Inject(ctx, "core.pointpass"); err != nil {
			return err
		}
		e := s + batch
		if e > hi {
			e = hi
		}
		base := s
		c.DrawPoints(e-s,
			func(j int) (float64, float64) { return pos(base + j) },
			func(px, py, j int) { shader(px, py, base+j) })
		tr.Count("batches", 1)
	}
	return nil
}

// drawPointsBatchedParallel is drawPointsBatched on the sharded point pass:
// each batch fans out across r.pointWorkers goroutines via
// Canvas.DrawPointsParallel. It requires the DrawPointsParallel safety
// contract — shader writes keyed by the fragment's pixel — which holds for
// the texture-and-bin shaders of the standard, series, streaming, and multi
// joiners. Passes with region-keyed accumulators (polygons-first, flow)
// shard those accumulators per worker instead and keep the sequential draw.
func (r *RasterJoin) drawPointsBatchedParallel(ctx context.Context, c *gpu.Canvas, lo, hi int,
	pos func(i int) (float64, float64), shader func(px, py, i int)) error {

	workers := r.pointWorkers
	if workers <= 1 {
		return r.drawPointsBatched(ctx, c, lo, hi, pos, shader)
	}
	batch := r.pointBatch
	if batch <= 0 {
		batch = hi - lo
	}
	tr := trace.FromContext(ctx)
	for s := lo; s < hi; s += batch {
		if err := fault.Inject(ctx, "core.pointpass"); err != nil {
			return err
		}
		e := s + batch
		if e > hi {
			e = hi
		}
		base := s
		err := c.DrawPointsParallel(ctx, workers, e-s,
			func(j int) (float64, float64) { return pos(base + j) },
			func(px, py, j int) { shader(px, py, base+j) })
		if err != nil {
			return err
		}
		tr.Count("batches", 1)
	}
	return nil
}

// cachedSpans returns the compiled scanline spans for the region set on
// transform t, consulting the device's span cache. A nil result with nil
// error means the cache is disabled and callers should rasterize directly.
// Compilation respects ctx; the hit/miss is recorded on the request trace.
func (r *RasterJoin) cachedSpans(ctx context.Context, regions *data.RegionSet, t raster.Transform) (*raster.RegionSpans, error) {
	cache := r.dev.SpanCache()
	if !cache.Enabled() {
		return nil, nil
	}
	key := raster.SpanKey{Owner: regions.Stamp(), T: t}
	if sp, ok := cache.Get(key); ok {
		trace.FromContext(ctx).Count("span_cache_hits", 1)
		return sp, nil
	}
	polys := make([]geom.Polygon, regions.Len())
	for k := range regions.Regions {
		polys[k] = regions.Regions[k].Poly
	}
	sp, err := raster.CompileRegions(ctx, t, polys)
	if err != nil {
		return nil, err
	}
	cache.Put(key, sp)
	trace.FromContext(ctx).Count("span_cache_misses", 1)
	return sp, nil
}

// drawRegion shades region k's fill fragments: replayed from compiled spans
// when sp is non-nil, scan-converted directly otherwise. Both paths visit
// the same pixels in the same row-major order, so results are identical.
func drawRegion(c *gpu.Canvas, sp *raster.RegionSpans, poly geom.Polygon, k int, shader gpu.FragmentShader) {
	if sp != nil {
		c.DrawSpans(sp.Fill(k), shader)
		return
	}
	c.DrawPolygon(poly, shader)
}

// NewRasterJoin returns a configured raster joiner.
func NewRasterJoin(opts ...RJOption) *RasterJoin {
	r := &RasterJoin{
		mode:         Approximate,
		resolution:   1024,
		workers:      runtime.GOMAXPROCS(0),
		pointWorkers: runtime.GOMAXPROCS(0),
		blockPrune:   true,
	}
	for _, o := range opts {
		o(r)
	}
	if r.dev == nil {
		r.dev = gpu.New()
	}
	return r
}

// Name implements Joiner.
func (r *RasterJoin) Name() string {
	suffix := ""
	if r.strategy == PolygonsFirst {
		suffix = "-pf"
	}
	if r.epsilon > 0 {
		return fmt.Sprintf("raster-join-%s-eps%g%s", r.mode, r.epsilon, suffix)
	}
	return fmt.Sprintf("raster-join-%s-%dpx%s", r.mode, r.resolution, suffix)
}

// Epsilon returns the configured error bound (0 when resolution-driven).
func (r *RasterJoin) Epsilon() float64 { return r.epsilon }

// Device returns the GPU device the joiner renders on.
func (r *RasterJoin) Device() *gpu.Device { return r.dev }

// Join implements Joiner.
func (r *RasterJoin) Join(req Request) (*Result, error) {
	return r.JoinContext(context.Background(), req)
}

// JoinContext implements ContextJoiner: the join is abandoned with ctx.Err()
// as soon as cancellation is observed — between point batches, between
// region claims of the polygon pass, and between canvas tiles — and every
// canvas and pooled texture is released before returning, so an aborted
// query leaves the device pool fully reusable.
func (r *RasterJoin) JoinContext(ctx context.Context, req Request) (*Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// `core.join` is a fault injection site covering the whole-join entry.
	if err := fault.Inject(ctx, "core.join"); err != nil {
		return nil, err
	}
	res := &Result{
		Stats:     make([]RegionStat, req.Regions.Len()),
		Algorithm: r.Name(),
	}
	window := req.Regions.Bounds()
	src := req.Data()
	if window.IsEmpty() || src.Len() == 0 {
		return res, nil
	}

	full := r.fullTransform(window)
	res.CanvasW, res.CanvasH = full.W, full.H
	res.PixelSize = full.PixelWidth()

	sc, err := r.newScan(req)
	if err != nil {
		return nil, err
	}
	attrIdx := -1
	if req.Agg.NeedsAttr() {
		attrIdx = data.AttrIndex(src, req.Attr)
	}

	tr := trace.FromContext(ctx)
	err = r.dev.Tiles(full, func(c *gpu.Canvas, offX, offY int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		res.Tiles++
		tr.Count("tiles", 1)
		// Tiles render sequentially, so re-aiming the scan's spatial bound
		// per tile is safe; within a tile the scan is only read.
		sc.setWorld(c.T.World)
		if r.strategy == PolygonsFirst {
			return r.renderTilePolygonsFirst(ctx, c, req, res.Stats, sc, attrIdx)
		}
		return r.renderTile(ctx, c, req, res.Stats, sc, attrIdx)
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// fullTransform derives the full-resolution canvas transform from either the
// error bound (pixel diagonal <= epsilon) or the display resolution.
func (r *RasterJoin) fullTransform(window geom.BBox) raster.Transform {
	var pixel float64
	if r.epsilon > 0 {
		pixel = r.epsilon / math.Sqrt2
	} else {
		pixel = math.Max(window.Width(), window.Height()) / float64(r.resolution)
	}
	if pixel <= 0 {
		pixel = 1
	}
	return raster.SquareTransform(window, pixel)
}

// renderTile runs the drawing passes for one canvas tile, accumulating into
// stats. The passes mirror the paper's shader pipeline:
//
//  1. Point pass — filtered points are drawn with additive blending into a
//     per-pixel count texture and (for SUM/AVG) an attribute-sum texture.
//  2. Polygon pass — each region is drawn; every covered fragment adds the
//     point textures into the region's accumulator.
//  3. (Accurate only) Outline pass + exact pass — fragments in boundary
//     pixels are excluded from pass 2 and instead resolved by exact
//     point-in-polygon tests against the points binned in those pixels.
func (r *RasterJoin) renderTile(ctx context.Context, c *gpu.Canvas, req Request, stats []RegionStat,
	sc *Scan, attrIdx int) error {

	w, h := c.T.W, c.T.H

	// Compiled region spans (cache hit or one-time compile). nil when the
	// span cache is disabled — every draw below then falls back to direct
	// scanline rasterization, which visits identical pixels.
	sp, err := r.cachedSpans(ctx, req.Regions, c.T)
	if err != nil {
		return err
	}

	// Accurate: outline pass first — point binning below needs to know
	// which pixels are boundary pixels for some region.
	var slotOf []int32
	var bins [][]obs
	var regionPixels [][]int32
	if r.mode == Accurate {
		slotOf, bins, regionPixels = r.prepareAccurate(c, req.Regions, sp)
	}

	// Pass 1: point textures. COUNT/SUM/AVG blend additively; MIN/MAX use
	// the min/max blend equations over targets initialized to ±Inf. The
	// textures come from the device pool and are released on every exit
	// path, including cancellation.
	countTex := r.dev.AcquireTexture(w, h)
	defer r.dev.ReleaseTexture(countTex)
	var sumTex, minTex, maxTex *gpu.Texture
	switch req.Agg {
	case Sum, Avg:
		sumTex = r.dev.AcquireTexture(w, h)
		defer r.dev.ReleaseTexture(sumTex)
	case Min:
		minTex = r.dev.AcquireTexture(w, h)
		defer r.dev.ReleaseTexture(minTex)
		minTex.Fill(math.Inf(1))
	case Max:
		maxTex = r.dev.AcquireTexture(w, h)
		defer r.dev.ReleaseTexture(maxTex)
		maxTex.Fill(math.Inf(-1))
	}
	err = sc.piecesRange(ctx, sc.Lo, sc.Hi, func(blk *data.Block, lo, hi int, needPred bool) error {
		base := blk.Base
		var attr []float64
		if attrIdx >= 0 {
			attr = blk.Attr[attrIdx]
		}
		return r.drawPointsBatchedParallel(ctx, c, lo, hi,
			func(i int) (float64, float64) { j := i - base; return blk.X[j], blk.Y[j] },
			func(px, py, i int) {
				if needPred && !sc.pred(blk, i) {
					return // fragment discarded by the filter condition
				}
				j := i - base
				countTex.Add(px, py, 1)
				var v float64
				if attr != nil {
					v = attr[j]
				}
				switch {
				case sumTex != nil:
					sumTex.Add(px, py, v)
				case minTex != nil:
					minTex.TakeMin(px, py, v)
				case maxTex != nil:
					maxTex.TakeMax(px, py, v)
				}
				if slotOf != nil {
					if s := slotOf[py*w+px]; s >= 0 {
						bins[s] = append(bins[s], obs{x: blk.X[j], y: blk.Y[j], v: v})
					}
				}
			})
	})
	if err != nil {
		return err
	}

	return r.regionPasses(ctx, c, req, stats, sp,
		countTex, sumTex, minTex, maxTex, slotOf, bins, regionPixels, attrIdx)
}

// prepareAccurate runs the outline pass and builds the boundary-pixel
// bookkeeping the accurate mode needs before the point pass: slotOf maps a
// boundary pixel's index to a dense bucket slot (-1 elsewhere), so the hot
// point loop pays one array lookup instead of a map operation. Bins hold
// the observation (coordinates plus aggregated value), not the point index:
// with an out-of-core source the block a point came from may be evicted
// before the fix-up pass runs.
func (r *RasterJoin) prepareAccurate(c *gpu.Canvas, regions *data.RegionSet, sp *raster.RegionSpans) (slotOf []int32, bins [][]obs, regionPixels [][]int32) {
	w, h := c.T.W, c.T.H
	var boundaryList []int32
	boundaryList, regionPixels = r.outlinePass(c, regions, sp)
	slotOf = make([]int32, w*h)
	for i := range slotOf {
		slotOf[i] = -1
	}
	for s, idx := range boundaryList {
		slotOf[idx] = int32(s)
	}
	bins = make([][]obs, len(boundaryList))
	return slotOf, bins, regionPixels
}

// regionPasses runs passes 2 and 3 over finished point textures: per-region
// accumulation, parallel across regions, plus the accurate-mode boundary
// fix-up from the point bins. It is shared by the local renderTile and the
// scatter-gather driver — after the gather the merged textures and bins are
// indistinguishable from a local pass 1, so running the identical code here
// is what makes sharded results byte-identical to the unsharded path.
//
// Race audit (sharedwrite-clean): the atomic cursor assigns each
// region index k to exactly one goroutine, so stats[k] has a single
// writer; countTex/sumTex/minTex/maxTex, bins, slotOf and
// regionPixels are frozen after pass 1 and only read here. Each
// goroutine's scratch bitmap is goroutine-local. wg.Wait() orders the
// caller's reads after all writes.
func (r *RasterJoin) regionPasses(ctx context.Context, c *gpu.Canvas, req Request, stats []RegionStat,
	sp *raster.RegionSpans, countTex, sumTex, minTex, maxTex *gpu.Texture,
	slotOf []int32, bins [][]obs, regionPixels [][]int32, attrIdx int) error {

	w, h := c.T.W, c.T.H
	regions := req.Regions.Regions
	workers := r.workers
	if workers > len(regions) {
		workers = len(regions)
	}
	if workers < 1 {
		workers = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for wk := 0; wk < workers; wk++ {
		go func() {
			defer wg.Done()
			var scratch *raster.Bitmap
			if r.mode == Accurate {
				scratch = raster.NewBitmap(w, h)
			}
			for ctx.Err() == nil {
				k := int(next.Add(1)) - 1
				if k >= len(regions) {
					return
				}
				poly := regions[k].Poly
				var local RegionStat

				if scratch != nil {
					for _, idx := range regionPixels[k] {
						scratch.Set(int(idx)%w, int(idx)/w)
					}
				}
				drawRegion(c, sp, poly, k, func(px, py int) {
					if scratch != nil && scratch.Get(px, py) {
						return // boundary fragment: resolved exactly below
					}
					v := countTex.At(px, py)
					if v == 0 {
						return
					}
					pixel := RegionStat{Count: int64(v)}
					switch {
					case sumTex != nil:
						pixel.Sum = sumTex.At(px, py)
					case minTex != nil:
						m := minTex.At(px, py)
						pixel.Min, pixel.Max = m, m
					case maxTex != nil:
						m := maxTex.At(px, py)
						pixel.Min, pixel.Max = m, m
					}
					local.Merge(pixel)
				})
				if scratch != nil {
					for _, idx := range regionPixels[k] {
						px, py := int(idx)%w, int(idx)/w
						scratch.Unset(px, py)
						for _, o := range bins[slotOf[idx]] {
							if !poly.Contains(geom.Point{X: o.x, Y: o.y}) {
								continue
							}
							switch {
							case minTex != nil || maxTex != nil:
								local.Observe(o.v)
							case attrIdx >= 0:
								local.Count++
								//lint:ignore floataccum boundary fix-up over one pixel's point bin; dozens of terms at most
								local.Sum += o.v
							default:
								local.Count++
							}
						}
					}
				}
				stats[k].Merge(local)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// outlinePass conservatively rasterizes every region's boundary, returning
// the deduplicated union list of boundary pixel indices and, per region,
// its own deduplicated boundary pixel indices within this tile. When
// compiled spans are supplied, per-region lists replay from the cache
// (already deduplicated in first-visit order, so the results — including
// list ordering — match the direct trace exactly).
func (r *RasterJoin) outlinePass(c *gpu.Canvas, regions *data.RegionSet, sp *raster.RegionSpans) ([]int32, [][]int32) {
	w, h := c.T.W, c.T.H
	global := raster.NewBitmap(w, h)
	var globalList []int32
	per := make([][]int32, regions.Len())
	if sp != nil {
		for k := range regions.Regions {
			pixels := sp.Boundary(k)
			if len(pixels) == 0 {
				continue
			}
			c.DrawPixels(pixels, func(px, py int) {
				if !global.Get(px, py) {
					global.Set(px, py)
					globalList = append(globalList, int32(py*w+px))
				}
			})
			per[k] = pixels
		}
		return globalList, per
	}
	scratch := raster.NewBitmap(w, h)
	var touched []int32
	for k := range regions.Regions {
		touched = touched[:0]
		c.DrawPolygonOutline(regions.Regions[k].Poly, func(px, py int) {
			if scratch.Get(px, py) {
				return
			}
			scratch.Set(px, py)
			idx := int32(py*w + px)
			touched = append(touched, idx)
			if !global.Get(px, py) {
				global.Set(px, py)
				globalList = append(globalList, idx)
			}
		})
		if len(touched) > 0 {
			per[k] = append([]int32(nil), touched...)
			for _, idx := range touched {
				scratch.Unset(int(idx)%w, int(idx)/w)
			}
		}
	}
	return globalList, per
}
