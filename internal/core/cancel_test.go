package core_test

// Cancellation hygiene: an aborted query must return ctx.Err() promptly,
// leave no goroutines behind, and hand every canvas and pooled texture back
// to the device so the next query finds a fully reusable pool. These tests
// run under -race in CI.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/trace"
)

// awaitGoroutines polls until the process goroutine count settles at or
// below want (plus a small scheduler tolerance).
func awaitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= want+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d live, want <= %d", runtime.NumGoroutine(), want+2)
		}
		time.Sleep(time.Millisecond)
	}
}

func requireDevDrained(t *testing.T, dev *gpu.Device, context string) {
	t.Helper()
	if n := dev.LiveCanvases(); n != 0 {
		t.Fatalf("%s: %d canvases still live", context, n)
	}
	if n := dev.LiveTextures(); n != 0 {
		t.Fatalf("%s: %d textures still live", context, n)
	}
}

// TestJoinContextCancelMidJoin cancels an accurate raster join after its
// first point batch and verifies the abort contract end to end: the join
// returns the context's error, no worker goroutines outlive it, the device
// pool is drained, and an identical join on the same device afterwards is
// still exact.
func TestJoinContextCancelMidJoin(t *testing.T) {
	ps, rs := scene(200_000, 16, 211)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	dev := gpu.New()
	rj := core.NewRasterJoin(core.WithDevice(dev), core.WithMode(core.Accurate),
		core.WithResolution(1024), core.WithPointBatch(512))

	baseline := runtime.NumGoroutine()

	// The trace's batch counter is the observable that the point pass is
	// underway — cancel lands mid-pass, not before the join starts.
	tr := trace.New("test")
	ctx, cancel := context.WithCancel(trace.NewContext(context.Background(), tr))
	defer cancel()

	type joined struct {
		res *core.Result
		err error
	}
	done := make(chan joined, 1)
	go func() {
		res, err := rj.JoinContext(ctx, req)
		done <- joined{res, err}
	}()

	waitBatch := time.Now().Add(5 * time.Second)
	for tr.Counters()["batches"] == 0 {
		if time.Now().After(waitBatch) {
			t.Fatal("join never submitted a point batch")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()

	j := <-done
	if !errors.Is(j.err, context.Canceled) {
		t.Fatalf("canceled join returned err=%v, want context.Canceled", j.err)
	}
	if j.res != nil {
		t.Fatalf("canceled join returned a result")
	}
	awaitGoroutines(t, baseline)
	requireDevDrained(t, dev, "after cancel")

	// The same device must now serve a full join, and exactly: compare with
	// a join on a fresh device.
	got, err := rj.JoinContext(context.Background(), req)
	if err != nil {
		t.Fatalf("join after cancel: %v", err)
	}
	want, err := core.NewRasterJoin(core.WithMode(core.Accurate),
		core.WithResolution(1024)).Join(req)
	if err != nil {
		t.Fatal(err)
	}
	statsExactlyEqual(t, got, want, "reused device after cancel")
	requireDevDrained(t, dev, "after reuse")
}

// TestJoinContextPreExpiredDeadline: a deadline that has already passed
// aborts before any tile renders and still leaves the pool drained.
func TestJoinContextPreExpiredDeadline(t *testing.T) {
	ps, rs := scene(2_000, 6, 223)
	dev := gpu.New()
	rj := core.NewRasterJoin(core.WithDevice(dev), core.WithResolution(256))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	res, err := rj.JoinContext(ctx, core.Request{Points: ps, Regions: rs, Agg: core.Count})
	if res != nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got (%v, %v), want (nil, context.DeadlineExceeded)", res, err)
	}
	requireDevDrained(t, dev, "after expired deadline")
}

// TestMultiJoinContextCancelReleasesResources: the multi-aggregate join's
// per-spec textures all return to the pool on abort.
func TestMultiJoinContextCancelReleasesResources(t *testing.T) {
	// 200k points: the span cache front-loads polygon scan-conversion, so
	// the window between the first batch and join completion is the point
	// pass alone — keep it wide enough that cancel reliably lands inside.
	ps, rs := scene(200_000, 12, 227)
	dev := gpu.New()
	rj := core.NewRasterJoin(core.WithDevice(dev), core.WithResolution(512),
		core.WithPointBatch(512))
	specs := []core.AggSpec{
		{Agg: core.Count},
		{Agg: core.Sum, Attr: "v"},
		{Agg: core.Avg, Attr: "v"},
	}
	tr := trace.New("test")
	ctx, cancel := context.WithCancel(trace.NewContext(context.Background(), tr))
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := rj.MultiJoinContext(ctx, core.Request{Points: ps, Regions: rs}, specs)
		done <- err
	}()
	waitBatch := time.Now().Add(5 * time.Second)
	for tr.Counters()["batches"] == 0 {
		if time.Now().After(waitBatch) {
			t.Fatal("multi join never submitted a point batch")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled multi join returned %v, want context.Canceled", err)
	}
	requireDevDrained(t, dev, "after multi-join cancel")

	// Pool must still serve a complete multi join.
	if _, err := rj.MultiJoin(core.Request{Points: ps, Regions: rs}, specs); err != nil {
		t.Fatalf("multi join after cancel: %v", err)
	}
	requireDevDrained(t, dev, "after multi-join reuse")
}

// TestStreamJoinAbortOnCancel: a batch canceled mid-draw aborts the stream
// (partial blends must not silently undercount), releases its resources,
// and rejects further use; Abort stays idempotent.
func TestStreamJoinAbortOnCancel(t *testing.T) {
	ps, rs := scene(10_000, 8, 229)
	dev := gpu.New()
	rj := core.NewRasterJoin(core.WithDevice(dev), core.WithResolution(256),
		core.WithPointBatch(128))
	s, err := rj.NewStream(rs, core.Count, "", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.AddContext(ctx, ps); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled AddContext returned %v, want context.Canceled", err)
	}
	requireDevDrained(t, dev, "after stream abort")
	if err := s.Add(ps); err == nil {
		t.Fatal("Add after abort succeeded; aborted stream must reject batches")
	}
	if _, err := s.Finalize(); err == nil {
		t.Fatal("Finalize after abort succeeded")
	}
	s.Abort() // idempotent
	requireDevDrained(t, dev, "after double abort")
}

// TestSeriesJoinContextCancel: the per-bin series join frees its canvas and
// textures when canceled between bins.
func TestSeriesJoinContextCancel(t *testing.T) {
	ps, rs := scene(20_000, 8, 233)
	dev := gpu.New()
	rj := core.NewRasterJoin(core.WithDevice(dev), core.WithResolution(256))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	if _, err := rj.SeriesJoinContext(ctx, req, 0, int64(ps.Len()), 8); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled series join returned %v, want context.Canceled", err)
	}
	requireDevDrained(t, dev, "after series cancel")
}
