package core

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/geom"
)

func TestAggString(t *testing.T) {
	cases := map[Agg]string{Count: "COUNT", Sum: "SUM", Avg: "AVG", Agg(9): "Agg(9)"}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(a), got, want)
		}
	}
	if Count.NeedsAttr() || !Sum.NeedsAttr() || !Avg.NeedsAttr() {
		t.Error("NeedsAttr wrong")
	}
}

func TestRegionStatValue(t *testing.T) {
	s := RegionStat{Count: 4, Sum: 10}
	if s.Value(Count) != 4 || s.Value(Sum) != 10 || s.Value(Avg) != 2.5 {
		t.Errorf("values = %v/%v/%v", s.Value(Count), s.Value(Sum), s.Value(Avg))
	}
	if (RegionStat{}).Value(Avg) != 0 {
		t.Error("avg of empty region should be 0")
	}
	if s.Value(Agg(9)) != 0 {
		t.Error("unknown agg should be 0")
	}
}

func testPoints() *data.PointSet {
	return &data.PointSet{
		Name: "pts",
		X:    []float64{1, 2, 3, 4},
		Y:    []float64{1, 2, 3, 4},
		T:    []int64{10, 20, 30, 40},
		Attrs: []data.Column{
			{Name: "v", Values: []float64{1, 2, 3, 4}},
		},
	}
}

func testRegions() *data.RegionSet {
	return data.GridRegions("g", geom.BBox{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10}, 2, 2)
}

func TestRequestValidate(t *testing.T) {
	ok := Request{Points: testPoints(), Regions: testRegions(), Agg: Avg, Attr: "v",
		Filters: []Filter{{Attr: "v", Min: 0, Max: 5}},
		Time:    &TimeFilter{Start: 0, End: 100}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid request: %v", err)
	}
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"nil points", Request{Regions: testRegions()}, "needs points"},
		{"missing agg attr", Request{Points: testPoints(), Regions: testRegions(),
			Agg: Sum, Attr: "nope"}, `attribute "nope"`},
		{"missing filter attr", Request{Points: testPoints(), Regions: testRegions(),
			Filters: []Filter{{Attr: "nope"}}}, `"nope"`},
	}
	for _, c := range cases {
		err := c.req.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want mention of %q", c.name, err, c.want)
		}
	}
	// Time filter without timestamps.
	noT := testPoints()
	noT.T = nil
	bad := Request{Points: noT, Regions: testRegions(), Time: &TimeFilter{}}
	if err := bad.Validate(); err == nil {
		t.Error("time filter without timestamps should fail")
	}
}

func TestPointPredicateTimeSorted(t *testing.T) {
	req := Request{Points: testPoints(), Regions: testRegions(),
		Time: &TimeFilter{Start: 15, End: 35}}
	lo, hi, pred, err := PointPredicate(req)
	if err != nil {
		t.Fatal(err)
	}
	if pred != nil {
		t.Error("sorted set should use range narrowing, not a predicate")
	}
	if lo != 1 || hi != 3 {
		t.Errorf("window = [%d,%d), want [1,3)", lo, hi)
	}
}

func TestPointPredicateTimeUnsorted(t *testing.T) {
	ps := testPoints()
	ps.T = []int64{40, 10, 30, 20} // unsorted
	req := Request{Points: ps, Regions: testRegions(),
		Time: &TimeFilter{Start: 15, End: 35}}
	lo, hi, pred, err := PointPredicate(req)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 || hi != ps.Len() || pred == nil {
		t.Fatalf("unsorted set should predicate over full range: lo=%d hi=%d pred=%v",
			lo, hi, pred != nil)
	}
	want := []bool{false, false, true, true}
	for i, w := range want {
		if pred(i) != w {
			t.Errorf("pred(%d) = %v, want %v", i, pred(i), w)
		}
	}
}

func TestPointPredicateFilters(t *testing.T) {
	req := Request{Points: testPoints(), Regions: testRegions(),
		Filters: []Filter{{Attr: "v", Min: 2, Max: 4}}}
	_, _, pred, err := PointPredicate(req)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, false} // [2,4): values 2 and 3
	for i, w := range want {
		if pred(i) != w {
			t.Errorf("pred(%d) = %v, want %v", i, pred(i), w)
		}
	}
	// Multiple filters AND together (and compose with time).
	req.Filters = append(req.Filters, Filter{Attr: "v", Min: 3, Max: 10})
	_, _, pred, _ = PointPredicate(req)
	want = []bool{false, false, true, false}
	for i, w := range want {
		if pred(i) != w {
			t.Errorf("multi pred(%d) = %v, want %v", i, pred(i), w)
		}
	}
	// Unknown attribute errors.
	req.Filters = []Filter{{Attr: "nope"}}
	if _, _, _, err := PointPredicate(req); err == nil {
		t.Error("unknown filter attribute should error")
	}
}

func TestResultHelpers(t *testing.T) {
	r := Result{Stats: []RegionStat{{Count: 2, Sum: 4}, {Count: 3, Sum: 9}}}
	if r.TotalCount() != 5 {
		t.Errorf("TotalCount = %d", r.TotalCount())
	}
	if r.Value(1, Avg) != 3 {
		t.Errorf("Value(1, Avg) = %v", r.Value(1, Avg))
	}
}
