package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/index"
)

// Approximate mode: the two strategies implement the same coverage rule,
// so their results must be identical pixel-for-pixel — counts exactly,
// sums up to float association.
func TestStrategiesAgreeApproximate(t *testing.T) {
	ps, rs := scene(5000, 12, 201)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	for _, res := range []int{64, 256, 1024} {
		pf := core.NewRasterJoin(core.WithResolution(res), core.WithStrategy(core.PolygonsFirst))
		ptf := core.NewRasterJoin(core.WithResolution(res), core.WithStrategy(core.PointsFirst))
		a, err := pf.Join(req)
		if err != nil {
			t.Fatalf("res %d: %v", res, err)
		}
		b, err := ptf.Join(req)
		if err != nil {
			t.Fatalf("res %d: %v", res, err)
		}
		statsExactlyEqual(t, a, b, pf.Name())
	}
}

// Accurate + polygons-first must be exact, like accurate points-first.
func TestPolygonsFirstAccurateIsExact(t *testing.T) {
	ps, rs := scene(4000, 10, 203)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	want, err := (&index.BruteForce{}).Join(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range []int{32, 128, 512} {
		rj := core.NewRasterJoin(core.WithResolution(res),
			core.WithMode(core.Accurate), core.WithStrategy(core.PolygonsFirst))
		got, err := rj.Join(req)
		if err != nil {
			t.Fatal(err)
		}
		statsExactlyEqual(t, got, want, rj.Name())
	}
}

func TestPolygonsFirstWithFiltersAndTiling(t *testing.T) {
	ps, rs := scene(3000, 8, 205)
	req := core.Request{
		Points: ps, Regions: rs, Agg: core.Count,
		Filters: []core.Filter{{Attr: "v", Min: 2, Max: 8}},
		Time:    &core.TimeFilter{Start: 100, End: 2500},
	}
	want, err := (&index.BruteForce{}).Join(req)
	if err != nil {
		t.Fatal(err)
	}
	rj := core.NewRasterJoin(core.WithResolution(256),
		core.WithMode(core.Accurate), core.WithStrategy(core.PolygonsFirst),
		core.WithDevice(gpu.New(gpu.WithMaxTextureSize(64))))
	got, err := rj.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tiles < 16 {
		t.Fatalf("tiles = %d, want >= 16", got.Tiles)
	}
	statsExactlyEqual(t, got, want, "polygons-first accurate tiled")
}

// Overlapping regions: both strategies must count a point once per
// covering region (the overflow path in the ID texture).
func TestPolygonsFirstOverlappingRegions(t *testing.T) {
	ps, _ := scene(2000, 4, 207)
	// Two heavily overlapping discs plus one disjoint square.
	rs := &data.RegionSet{Name: "overlap", Regions: []data.Region{
		{ID: 0, Name: "a", Poly: geom.NewPolygon(geom.RegularRing(geom.Pt(400, 400), 250, 48))},
		{ID: 1, Name: "b", Poly: geom.NewPolygon(geom.RegularRing(geom.Pt(500, 450), 250, 48))},
		{ID: 2, Name: "c", Poly: geom.NewPolygon(geom.RectRing(
			geom.BBox{MinX: 800, MinY: 800, MaxX: 950, MaxY: 950}))},
	}}
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	want, err := (&index.BruteForce{}).Join(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []core.Mode{core.Approximate, core.Accurate} {
		rj := core.NewRasterJoin(core.WithResolution(512),
			core.WithMode(mode), core.WithStrategy(core.PolygonsFirst))
		got, err := rj.Join(req)
		if err != nil {
			t.Fatal(err)
		}
		if mode == core.Accurate {
			statsExactlyEqual(t, got, want, "overlap accurate")
			continue
		}
		// Approximate: close to exact at 512px.
		for k := range want.Stats {
			diff := got.Stats[k].Count - want.Stats[k].Count
			if diff < 0 {
				diff = -diff
			}
			if diff > want.Stats[k].Count/20+10 {
				t.Errorf("overlap approx region %d: %d vs %d",
					k, got.Stats[k].Count, want.Stats[k].Count)
			}
		}
	}
}

func TestPolygonsFirstParallelDeterministicCounts(t *testing.T) {
	ps, rs := scene(6000, 10, 209)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	one := core.NewRasterJoin(core.WithResolution(256),
		core.WithStrategy(core.PolygonsFirst), core.WithWorkers(1))
	many := core.NewRasterJoin(core.WithResolution(256),
		core.WithStrategy(core.PolygonsFirst), core.WithWorkers(8))
	a, err := one.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := many.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	statsExactlyEqual(t, b, a, "polygons-first workers")
}

// Streaming the points in small vertex-buffer batches must not change
// results for either strategy — the GPU-memory-bound path is pure
// re-batching.
func TestPointBatchingInvariant(t *testing.T) {
	ps, rs := scene(4000, 8, 211)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	for _, strat := range []core.Strategy{core.PointsFirst, core.PolygonsFirst} {
		whole := core.NewRasterJoin(core.WithResolution(256),
			core.WithStrategy(strat), core.WithMode(core.Accurate))
		batched := core.NewRasterJoin(core.WithResolution(256),
			core.WithStrategy(strat), core.WithMode(core.Accurate),
			core.WithPointBatch(137))
		a, err := whole.Join(req)
		if err != nil {
			t.Fatal(err)
		}
		b, err := batched.Join(req)
		if err != nil {
			t.Fatal(err)
		}
		statsExactlyEqual(t, b, a, strat.String()+" batched")
		// The device must actually have issued more draw calls.
		if ds, bs := whole.Device().Stats(), batched.Device().Stats(); bs.DrawCalls <= ds.DrawCalls {
			t.Errorf("%v: batched draw calls %d <= unbatched %d",
				strat, bs.DrawCalls, ds.DrawCalls)
		}
	}
}

func TestStrategyNames(t *testing.T) {
	pf := core.NewRasterJoin(core.WithStrategy(core.PolygonsFirst))
	if pf.Strategy() != core.PolygonsFirst {
		t.Error("Strategy() wrong")
	}
	if got := pf.Name(); got != "raster-join-approximate-1024px-pf" {
		t.Errorf("name = %q", got)
	}
	if core.PolygonsFirst.String() != "polygons-first" ||
		core.PointsFirst.String() != "points-first" {
		t.Error("Strategy.String wrong")
	}
}
