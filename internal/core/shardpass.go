package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/fault"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/raster"
	"repro/internal/trace"
)

// This file implements the compute halves of spatially sharded execution:
// the per-shard partial point pass an executor runs over its block
// assignment, and the scatter-gather driver the coordinator runs on top of
// the ordinary tile pipeline.
//
// The byte-identity argument, in full (see DESIGN.md "Deterministic
// shard-order merge"):
//
// Shards own half-open world-x ranges [xlo, xhi) cut at cell boundaries, so
// every point belongs to exactly one shard. The canvas transform is
// monotone in x, so a shard's points land in a contiguous band of pixel
// columns, and two shards' points can meet only in the single column that
// contains the cut between them — the "straddle" column. For every other
// column, one shard owns every fragment of every pixel, and because the
// shard scans its blocks in ascending index order the per-pixel fragment
// sequence is exactly the unsharded scan's sequence restricted to that
// pixel: the float folds (+=, min, max) run over the same values in the
// same order and produce the same bits. Straddle columns are excluded from
// the shard-local folds; their fragments come back raw, tagged with the
// global point index, and the coordinator replays them through the
// unchanged pass-1 shader in ascending index order — again the unsharded
// per-pixel order. After the gather the textures and boundary bins are
// bit-for-bit what a local pass 1 would have produced, and passes 2 and 3
// run the identical regionPasses code, so the entire Result is
// byte-identical at any shard count.

// Obs is one retained boundary observation of a shard partial: the point's
// coordinates (for the exact fix-up test) and its aggregated value.
type Obs struct {
	X, Y, V float64
}

// ShardFrag is one raw fragment from a straddle column: the pixel it landed
// in, the observation, and the global point index the coordinator replays
// by.
type ShardFrag struct {
	Idx    int64
	Px, Py int32
	X, Y   float64
	V      float64
}

// ShardPartial is one shard's contribution to one tile: band-limited
// texture buffers over the shard's owned pixel columns [ColLo, ColHi),
// straddle-column fragments in ascending global index order, boundary bins
// for owned columns, and scan accounting.
type ShardPartial struct {
	// ColLo, ColHi bound the shard's pixel-column band (half-open). Cells
	// in straddle columns inside the band are never written.
	ColLo, ColHi int
	// Count is always present; exactly one of Sum/Min/Max is non-nil,
	// matching the aggregate. Buffers are row-major over the band:
	// index py*(ColHi-ColLo) + (px-ColLo).
	Count, Sum, Min, Max []float64
	// Frags are the straddle-column fragments, ascending by Idx.
	Frags []ShardFrag
	// Bins are the boundary-pixel observations for owned columns, indexed
	// by the spec's slot map (nil in approximate mode).
	Bins [][]Obs
	// Scanned/Pruned count blocks; Points counts shaded fragments.
	Scanned, Pruned int64
	Points          int64
}

// ScatterPlan is what the scatter-gather driver needs from a coordinator:
// the shard cut positions (to derive straddle columns per tile) and the
// fan-out itself. Scatter must return one partial per shard, in shard
// order, or an error; a non-nil error must already be the deterministic
// first failure (see internal/shard).
type ScatterPlan interface {
	Cuts() []float64
	Scatter(ctx context.Context, spec *ShardSpec) ([]*ShardPartial, error)
}

// ShardSpec describes one canvas tile's partial point pass. Everything an
// executor needs travels in the spec — plain data next to the request — so
// a network transport only has to marshal it alongside a dataset/epoch
// reference.
type ShardSpec struct {
	Req Request
	// Tile is the world-to-pixel transform of this canvas tile.
	Tile raster.Transform
	// AttrIdx is the aggregated attribute's column position (-1 when the
	// aggregate needs none).
	AttrIdx int
	// Straddle lists the tile-local pixel columns containing a shard cut:
	// excluded from shard-local folds, returned as raw fragments.
	Straddle []int
	// SlotOf maps pixel index py*Tile.W+px to a boundary-bin slot (-1
	// elsewhere); nil in approximate mode. NumSlots sizes the bins.
	SlotOf   []int32
	NumSlots int
	// Batch is the cancellation/fault-poll granularity in points (<= 0:
	// one batch per scan piece). Prune enables zone-map block pruning.
	Batch int
	Prune bool
}

// xCol returns the pixel column world-x x falls into, clamped to the grid.
// The transform divides by a positive pixel width and truncates, so the
// mapping is monotone non-decreasing in x — the property the straddle-column
// argument rests on.
func xCol(t raster.Transform, x float64) int {
	px := int((x - t.World.MinX) / t.PixelWidth())
	if px < 0 {
		px = 0
	}
	if px >= t.W {
		px = t.W - 1
	}
	return px
}

// ShardPointPass runs one shard's partial point pass: scan the assigned
// blocks (ascending), keep the points the shard owns (world-x in
// [xlo, xhi)), and fold them into band-limited texture buffers — except
// fragments in straddle columns, which are returned raw with their global
// point index. The context and the `core.pointpass` fault site are polled
// once per batch, exactly like the local pass.
func ShardPointPass(ctx context.Context, spec *ShardSpec, xlo, xhi float64, blocks []int) (*ShardPartial, error) {
	sc, err := newScanPrune(spec.Req, spec.Prune)
	if err != nil {
		return nil, err
	}
	t := spec.Tile
	sc.setWorld(t.World)
	w, h := t.W, t.H

	straddle := make([]bool, w)
	for _, px := range spec.Straddle {
		if px >= 0 && px < w {
			straddle[px] = true
		}
	}

	// The shard's owned band: its points have x in [xlo, xhi) ∩ window, so
	// by monotonicity their columns lie in [colLo, colHi).
	colLo, colHi := 0, w
	if !math.IsInf(xlo, -1) && xlo > t.World.MinX {
		if xlo > t.World.MaxX {
			colLo = w // nothing visible
		} else {
			colLo = xCol(t, xlo)
		}
	}
	if !math.IsInf(xhi, 1) && xhi < t.World.MaxX {
		if xhi < t.World.MinX {
			colHi = 0
		} else {
			colHi = xCol(t, xhi) + 1
		}
	}
	if colHi < colLo {
		colHi = colLo
	}
	bandW := colHi - colLo

	p := &ShardPartial{ColLo: colLo, ColHi: colHi}
	p.Count = make([]float64, bandW*h)
	switch spec.Req.Agg {
	case Sum, Avg:
		p.Sum = make([]float64, bandW*h)
	case Min:
		p.Min = make([]float64, bandW*h)
		for i := range p.Min {
			p.Min[i] = math.Inf(1)
		}
	case Max:
		p.Max = make([]float64, bandW*h)
		for i := range p.Max {
			p.Max[i] = math.Inf(-1)
		}
	}
	if spec.SlotOf != nil {
		p.Bins = make([][]Obs, spec.NumSlots)
	}

	tr := trace.FromContext(ctx)
	var scanned, pruned int64
	scanned, pruned, err = sc.piecesBlocks(ctx, blocks, xlo, xhi, func(blk *data.Block, lo, hi int, needPred, needX bool) error {
		base := blk.Base
		var attr []float64
		if spec.AttrIdx >= 0 {
			attr = blk.Attr[spec.AttrIdx]
		}
		batch := spec.Batch
		if batch <= 0 {
			batch = hi - lo
		}
		for s := lo; s < hi; s += batch {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fault.Inject(ctx, "core.pointpass"); err != nil {
				return err
			}
			e := s + batch
			if e > hi {
				e = hi
			}
			for i := s; i < e; i++ {
				j := i - base
				x, y := blk.X[j], blk.Y[j]
				px, py, ok := t.ToPixel(geom.Point{X: x, Y: y})
				if !ok {
					continue // canvas-culled, exactly like DrawPoints
				}
				if needX && !(x >= xlo && x < xhi) {
					continue // another shard owns this point
				}
				if needPred && !sc.pred(blk, i) {
					continue // fragment discarded by the filter condition
				}
				var v float64
				if attr != nil {
					v = attr[j]
				}
				p.Points++
				if straddle[px] {
					p.Frags = append(p.Frags, ShardFrag{
						Idx: int64(i), Px: int32(px), Py: int32(py), X: x, Y: y, V: v,
					})
					continue
				}
				bi := py*bandW + (px - colLo)
				p.Count[bi]++
				switch {
				case p.Sum != nil:
					//lint:ignore floataccum must mirror Texture.Add's naive fold exactly — compensating here would break bit-identity with the unsharded pass
					p.Sum[bi] += v
				case p.Min != nil:
					if v < p.Min[bi] {
						p.Min[bi] = v
					}
				case p.Max != nil:
					if v > p.Max[bi] {
						p.Max[bi] = v
					}
				}
				if p.Bins != nil {
					if sl := spec.SlotOf[py*w+px]; sl >= 0 {
						p.Bins[sl] = append(p.Bins[sl], Obs{X: x, Y: y, V: v})
					}
				}
			}
			tr.Count("shard.batches", 1)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	p.Scanned, p.Pruned = scanned, pruned
	return p, nil
}

// JoinScattered is JoinContext with the point pass scattered across shard
// executors: per canvas tile the driver fans out through plan.Scatter,
// merges the partials in ascending shard order, replays straddle fragments
// in global point-index order, and runs the unchanged region passes on the
// merged textures. Only the points-first strategy decomposes bit-exactly
// (polygons-first folds region-keyed accumulators in point order, which a
// spatial partition cannot reproduce), so other strategies are rejected —
// the planner falls back to the local path for them.
func (r *RasterJoin) JoinScattered(ctx context.Context, req Request, plan ScatterPlan) (*Result, error) {
	if r.strategy != PointsFirst {
		return nil, fmt.Errorf("core: scattered execution requires the points-first strategy, have %s", r.strategy)
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// Same whole-join fault site as the local path.
	if err := fault.Inject(ctx, "core.join"); err != nil {
		return nil, err
	}
	res := &Result{
		Stats:     make([]RegionStat, req.Regions.Len()),
		Algorithm: r.Name(),
	}
	window := req.Regions.Bounds()
	src := req.Data()
	if window.IsEmpty() || src.Len() == 0 {
		return res, nil
	}

	full := r.fullTransform(window)
	res.CanvasW, res.CanvasH = full.W, full.H
	res.PixelSize = full.PixelWidth()

	attrIdx := -1
	if req.Agg.NeedsAttr() {
		attrIdx = data.AttrIndex(src, req.Attr)
	}

	tr := trace.FromContext(ctx)
	err := r.dev.Tiles(full, func(c *gpu.Canvas, offX, offY int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		res.Tiles++
		tr.Count("tiles", 1)
		return r.renderTileScattered(ctx, c, req, res.Stats, plan, attrIdx)
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// renderTileScattered is renderTile with pass 1 scattered: region prep and
// passes 2/3 run locally and are code-identical to the local tile.
func (r *RasterJoin) renderTileScattered(ctx context.Context, c *gpu.Canvas, req Request, stats []RegionStat,
	plan ScatterPlan, attrIdx int) error {

	w, h := c.T.W, c.T.H
	tr := trace.FromContext(ctx)

	sp, err := r.cachedSpans(ctx, req.Regions, c.T)
	if err != nil {
		return err
	}
	var slotOf []int32
	var bins [][]obs
	var regionPixels [][]int32
	if r.mode == Accurate {
		slotOf, bins, regionPixels = r.prepareAccurate(c, req.Regions, sp)
	}

	// Straddle columns: the pixel column each in-window cut falls into. By
	// monotonicity of the transform these are the only columns where two
	// shards' points can meet.
	var straddle []int
	for _, cut := range plan.Cuts() {
		if cut < c.T.World.MinX || cut > c.T.World.MaxX {
			continue
		}
		px := xCol(c.T, cut)
		if n := len(straddle); n == 0 || straddle[n-1] != px {
			straddle = append(straddle, px)
		}
	}

	spec := &ShardSpec{
		Req:      req,
		Tile:     c.T,
		AttrIdx:  attrIdx,
		Straddle: straddle,
		SlotOf:   slotOf,
		NumSlots: len(bins),
		Batch:    r.pointBatch,
		Prune:    r.blockPrune,
	}

	span := tr.Start("shard.scatter")
	partials, err := plan.Scatter(ctx, spec)
	span.End()
	if err != nil {
		return err // nothing acquired yet — no render resources to release
	}

	// Gather. Textures are acquired only after a successful scatter and
	// released on every exit path, including cancellation during the
	// region passes.
	span = tr.Start("shard.gather")
	countTex := r.dev.AcquireTexture(w, h)
	defer r.dev.ReleaseTexture(countTex)
	var sumTex, minTex, maxTex *gpu.Texture
	switch req.Agg {
	case Sum, Avg:
		sumTex = r.dev.AcquireTexture(w, h)
		defer r.dev.ReleaseTexture(sumTex)
	case Min:
		minTex = r.dev.AcquireTexture(w, h)
		defer r.dev.ReleaseTexture(minTex)
		minTex.Fill(math.Inf(1))
	case Max:
		maxTex = r.dev.AcquireTexture(w, h)
		defer r.dev.ReleaseTexture(maxTex)
		maxTex.Fill(math.Inf(-1))
	}
	// `shard.gather` is a fault injection site between acquisition and the
	// merge: an injected failure here proves the release discipline of the
	// gather path.
	if err := fault.Inject(ctx, "shard.gather"); err != nil {
		span.End()
		return err
	}

	isStraddle := make([]bool, w)
	for _, px := range straddle {
		isStraddle[px] = true
	}

	// Merge bands in ascending shard order. Owned interior columns are
	// written by exactly one shard, so this is a copy, not a fold.
	var frags []ShardFrag
	for _, p := range partials {
		if p == nil {
			continue
		}
		bandW := p.ColHi - p.ColLo
		for px := p.ColLo; px < p.ColHi; px++ {
			if isStraddle[px] {
				continue
			}
			for py := 0; py < h; py++ {
				bi := py*bandW + (px - p.ColLo)
				cnt := p.Count[bi]
				if cnt == 0 {
					continue
				}
				ti := py*w + px
				countTex.Data[ti] = cnt
				switch {
				case sumTex != nil:
					sumTex.Data[ti] = p.Sum[bi]
				case minTex != nil:
					minTex.Data[ti] = p.Min[bi]
				case maxTex != nil:
					maxTex.Data[ti] = p.Max[bi]
				}
			}
		}
		for sl := range p.Bins {
			for _, o := range p.Bins[sl] {
				bins[sl] = append(bins[sl], obs{x: o.X, y: o.Y, v: o.V})
			}
		}
		frags = append(frags, p.Frags...)
	}

	// Replay straddle fragments in ascending global point index — the
	// unsharded per-pixel fragment order — through the unchanged pass-1
	// shader. Indices are unique (each point has one owner), so the sort
	// is total and the replay deterministic.
	sort.Slice(frags, func(i, j int) bool { return frags[i].Idx < frags[j].Idx })
	for _, f := range frags {
		px, py := int(f.Px), int(f.Py)
		countTex.Add(px, py, 1)
		switch {
		case sumTex != nil:
			sumTex.Add(px, py, f.V)
		case minTex != nil:
			minTex.TakeMin(px, py, f.V)
		case maxTex != nil:
			maxTex.TakeMax(px, py, f.V)
		}
		if slotOf != nil {
			if sl := slotOf[py*w+px]; sl >= 0 {
				bins[sl] = append(bins[sl], obs{x: f.X, y: f.Y, v: f.V})
			}
		}
	}
	span.End()

	return r.regionPasses(ctx, c, req, stats, sp,
		countTex, sumTex, minTex, maxTex, slotOf, bins, regionPixels, attrIdx)
}
