package core_test

// Segment-vs-RAM equivalence: every joiner, executed against a columnar
// segment store (block-at-a-time, zone-pruned, decoded under a byte-bounded
// cache), must produce results bit-identical to the in-RAM array path —
// across modes, strategies, aggregates, filters, worker counts, pruning
// on/off, and cold/warm caches. These are the acceptance tests of the
// PointSource refactor: the store changes where bytes live, never what any
// query answers.

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/segment"
)

// equivScene builds a clustered point set with sorted timestamps, a uniform
// attribute "v", a time-correlated attribute "hot" (so tight filters on it
// make whole blocks zone-prunable), destination columns for the flow join,
// and a Voronoi partition layer.
func equivScene(np, nr int, seed int64) (*data.PointSet, *data.RegionSet) {
	bounds := geom.BBox{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	rng := rand.New(rand.NewSource(seed))
	ps := &data.PointSet{Name: "trips",
		X: make([]float64, np), Y: make([]float64, np), T: make([]int64, np)}
	v := make([]float64, np)
	hot := make([]float64, np)
	dx := make([]float64, np)
	dy := make([]float64, np)
	for i := 0; i < np; i++ {
		if rng.Float64() < 0.5 {
			ps.X[i] = 300 + rng.NormFloat64()*150
			ps.Y[i] = 600 + rng.NormFloat64()*150
		} else {
			ps.X[i] = rng.Float64() * 1000
			ps.Y[i] = rng.Float64() * 1000
		}
		ps.X[i] = math.Min(999.9, math.Max(0.1, ps.X[i]))
		ps.Y[i] = math.Min(999.9, math.Max(0.1, ps.Y[i]))
		ps.T[i] = int64(i * 3)
		v[i] = 1 + rng.Float64()*9
		// hot tracks the (sorted) timestamp, so any narrow range selects a
		// contiguous sliver of blocks and zone maps eliminate the rest.
		hot[i] = float64(i) + rng.Float64()
		dx[i] = rng.Float64() * 1000
		dy[i] = rng.Float64() * 1000
	}
	ps.Attrs = []data.Column{
		{Name: "v", Values: v},
		{Name: "hot", Values: hot},
		{Name: data.DropoffXAttr, Values: dx},
		{Name: data.DropoffYAttr, Values: dy},
	}
	rs := data.VoronoiRegions("cells", bounds, nr, seed+1,
		data.VoronoiOptions{JitterFrac: 0.08})
	return ps, rs
}

// equivStore materializes ps into a temporary segment file and opens it.
func equivStore(t *testing.T, ps *data.PointSet, blockSize int, cacheBytes int64) *segment.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), ps.Name+".useg")
	file, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := segment.Write(file, ps, segment.WithBlockSize(blockSize)); err != nil {
		t.Fatal(err)
	}
	if err := file.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := segment.Open(path, segment.WithCacheBytes(cacheBytes))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// assertStatsBits requires bit-exact equality between two stat slices —
// Count, and the raw float bits of Sum/Min/Max.
func assertStatsBits(t *testing.T, got, want []core.RegionStat, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vs %d regions", label, len(got), len(want))
	}
	for k := range got {
		if got[k].Count != want[k].Count {
			t.Fatalf("%s: region %d count %d, want %d", label, k, got[k].Count, want[k].Count)
		}
		for _, f := range [][3]float64{
			{got[k].Sum, want[k].Sum, 0}, {got[k].Min, want[k].Min, 1}, {got[k].Max, want[k].Max, 2},
		} {
			if math.Float64bits(f[0]) != math.Float64bits(f[1]) {
				t.Fatalf("%s: region %d field %v: %v != %v (bit mismatch)",
					label, k, f[2], f[0], f[1])
			}
		}
	}
}

// reqVariants is the aggregate/filter/time matrix every joiner config runs.
func reqVariants(ps *data.PointSet, rs *data.RegionSet, st *segment.Store) []struct {
	name     string
	ram, seg core.Request
} {
	mk := func(name string, agg core.Agg, attr string, fs []core.Filter, tf *core.TimeFilter) struct {
		name     string
		ram, seg core.Request
	} {
		ram := core.Request{Points: ps, Regions: rs, Agg: agg, Attr: attr, Filters: fs, Time: tf}
		seg := ram
		seg.Source = st
		return struct {
			name     string
			ram, seg core.Request
		}{name, ram, seg}
	}
	n := float64(ps.Len())
	return []struct {
		name     string
		ram, seg core.Request
	}{
		mk("count", core.Count, "", nil, nil),
		mk("sum", core.Sum, "v", nil, nil),
		mk("avg", core.Avg, "v", nil, nil),
		mk("min", core.Min, "v", nil, nil),
		mk("max", core.Max, "v", nil, nil),
		mk("count-tight-filter", core.Count, "",
			[]core.Filter{{Attr: "hot", Min: 0.2 * n, Max: 0.23 * n}}, nil),
		mk("sum-filter-time", core.Sum, "v",
			[]core.Filter{{Attr: "v", Min: 2, Max: 8}},
			&core.TimeFilter{Start: int64(0.3 * n * 3), End: int64(0.6 * n * 3)}),
		mk("count-time", core.Count, "", nil,
			&core.TimeFilter{Start: int64(0.8 * n * 3), End: int64(0.85 * n * 3)}),
	}
}

// TestSegmentJoinEquivalence sweeps the joiner configuration space: both
// modes, both strategies, pruning on and off, one and several point
// workers — segment-backed results must match the in-RAM path bit for bit.
func TestSegmentJoinEquivalence(t *testing.T) {
	ps, rs := equivScene(5000, 8, 42)
	st := equivStore(t, ps, 512, 1<<20)
	for _, mode := range []core.Mode{core.Approximate, core.Accurate} {
		for _, strat := range []core.Strategy{core.PointsFirst, core.PolygonsFirst} {
			for _, prune := range []bool{true, false} {
				for _, workers := range []int{1, 3} {
					rj := core.NewRasterJoin(core.WithMode(mode),
						core.WithResolution(256), core.WithStrategy(strat),
						core.WithBlockPrune(prune), core.WithPointWorkers(workers))
					for _, vr := range reqVariants(ps, rs, st) {
						ram, err := rj.Join(vr.ram)
						if err != nil {
							t.Fatalf("%v/%v/prune=%v/w%d/%s ram: %v", mode, strat, prune, workers, vr.name, err)
						}
						seg, err := rj.Join(vr.seg)
						if err != nil {
							t.Fatalf("%v/%v/prune=%v/w%d/%s seg: %v", mode, strat, prune, workers, vr.name, err)
						}
						label := mode.String() + "/" + strat.String() + "/" + vr.name
						assertStatsBits(t, seg.Stats, ram.Stats, label)
					}
				}
			}
		}
	}
}

// TestSegmentSeriesEquivalence: the time-binned joiner over a segment
// source matches the in-RAM path bit for bit, per bin and region.
func TestSegmentSeriesEquivalence(t *testing.T) {
	ps, rs := equivScene(4000, 6, 77)
	st := equivStore(t, ps, 512, 1<<20)
	rj := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(256))
	for _, agg := range []struct {
		agg  core.Agg
		attr string
	}{{core.Count, ""}, {core.Sum, "v"}} {
		ram, err := rj.SeriesJoin(core.Request{Points: ps, Regions: rs, Agg: agg.agg, Attr: agg.attr,
			Filters: []core.Filter{{Attr: "v", Min: 1, Max: 9}}}, 0, int64(ps.Len()*3), 6)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := rj.SeriesJoin(core.Request{Points: ps, Source: st, Regions: rs, Agg: agg.agg, Attr: agg.attr,
			Filters: []core.Filter{{Attr: "v", Min: 1, Max: 9}}}, 0, int64(ps.Len()*3), 6)
		if err != nil {
			t.Fatal(err)
		}
		if len(seg.Stats) != len(ram.Stats) {
			t.Fatalf("%v: bins %d vs %d", agg.agg, len(seg.Stats), len(ram.Stats))
		}
		for b := range seg.Stats {
			assertStatsBits(t, seg.Stats[b], ram.Stats[b], agg.agg.String())
		}
	}
}

// TestSegmentStreamEquivalence: a stream fed the segment source via
// AddSource finalizes to the same result as one fed the in-RAM set.
func TestSegmentStreamEquivalence(t *testing.T) {
	ps, rs := equivScene(3000, 6, 99)
	st := equivStore(t, ps, 256, 1<<20)
	rj := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(256))
	mkStream := func() *core.StreamJoin {
		s, err := rj.NewStream(rs, core.Sum, "v",
			[]core.Filter{{Attr: "v", Min: 2, Max: 9}}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := mkStream()
	if err := a.Add(ps); err != nil {
		t.Fatal(err)
	}
	ram, err := a.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	b := mkStream()
	if err := b.AddSource(st); err != nil {
		t.Fatal(err)
	}
	seg, err := b.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	assertStatsBits(t, seg.Stats, ram.Stats, "stream")
}

// TestSegmentMultiEquivalence: the multi-aggregate joiner over a segment
// source matches the in-RAM path bit for bit, per spec.
func TestSegmentMultiEquivalence(t *testing.T) {
	ps, rs := equivScene(3000, 6, 123)
	st := equivStore(t, ps, 512, 1<<20)
	specs := []core.AggSpec{
		{Agg: core.Count},
		{Agg: core.Sum, Attr: "v", Filters: []core.Filter{{Attr: "v", Min: 3, Max: 9}}},
		{Agg: core.Avg, Attr: "v", Time: &core.TimeFilter{Start: 1000, End: 6000}},
	}
	for _, mode := range []core.Mode{core.Approximate, core.Accurate} {
		rj := core.NewRasterJoin(core.WithMode(mode), core.WithResolution(256))
		ram, err := rj.MultiJoin(core.Request{Points: ps, Regions: rs}, specs)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := rj.MultiJoin(core.Request{Points: ps, Source: st, Regions: rs}, specs)
		if err != nil {
			t.Fatal(err)
		}
		for s := range specs {
			assertStatsBits(t, seg[s].Stats, ram[s].Stats, mode.String())
		}
	}
}

// TestSegmentFlowEquivalence: the OD matrix over a segment source matches
// the in-RAM path exactly, including the Filtered/Dropped accounting.
func TestSegmentFlowEquivalence(t *testing.T) {
	ps, rs := equivScene(3000, 6, 321)
	st := equivStore(t, ps, 512, 1<<20)
	for _, mode := range []core.Mode{core.Approximate, core.Accurate} {
		rj := core.NewRasterJoin(core.WithMode(mode), core.WithResolution(256))
		req := core.Request{Points: ps, Regions: rs, Agg: core.Count,
			Filters: []core.Filter{{Attr: "v", Min: 0, Max: 6}}}
		ram, err := rj.FlowJoin(req, data.DropoffXAttr, data.DropoffYAttr)
		if err != nil {
			t.Fatal(err)
		}
		sreq := req
		sreq.Source = st
		seg, err := rj.FlowJoin(sreq, data.DropoffXAttr, data.DropoffYAttr)
		if err != nil {
			t.Fatal(err)
		}
		if seg.Dropped != ram.Dropped || seg.Filtered != ram.Filtered {
			t.Fatalf("%v: dropped/filtered %d/%d vs %d/%d",
				mode, seg.Dropped, seg.Filtered, ram.Dropped, ram.Filtered)
		}
		if len(seg.Counts) != len(ram.Counts) {
			t.Fatalf("%v: %d vs %d OD cells", mode, len(seg.Counts), len(ram.Counts))
		}
		for cell, n := range ram.Counts {
			if seg.Counts[cell] != n {
				t.Fatalf("%v: cell %d: %d vs %d", mode, cell, seg.Counts[cell], n)
			}
		}
	}
}

// TestSegmentJoinOutOfCore is the bigger-than-budget proof: with a cache
// holding roughly one decoded block, the full file never resides in memory
// (evictions observed, resident bytes under budget) and the join still
// answers bit-identically to the all-in-RAM path.
func TestSegmentJoinOutOfCore(t *testing.T) {
	ps, rs := equivScene(6000, 8, 555)
	// 256-point blocks at 7 columns ≈ 14 KiB decoded; a 20 KiB budget
	// keeps at most one resident.
	st := equivStore(t, ps, 256, 20<<10)
	rj := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(256))
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	ram, err := rj.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	req.Source = st
	seg, err := rj.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	assertStatsBits(t, seg.Stats, ram.Stats, "out-of-core")
	cs := st.CacheStats()
	if cs.Evictions == 0 {
		t.Errorf("no evictions under a one-block budget: %+v", cs)
	}
	if cs.Bytes > cs.Capacity {
		t.Errorf("resident %d bytes exceeds budget %d", cs.Bytes, cs.Capacity)
	}
}

// TestSegmentCacheColdWarm: the same join answers identically on a cold
// cache, a warm cache, and after unrelated queries churned the cache.
func TestSegmentCacheColdWarm(t *testing.T) {
	ps, rs := equivScene(4000, 6, 777)
	st := equivStore(t, ps, 512, 64<<10)
	rj := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(256))
	req := core.Request{Points: ps, Source: st, Regions: rs, Agg: core.Sum, Attr: "v",
		Filters: []core.Filter{{Attr: "v", Min: 2, Max: 9}}}
	cold, err := rj.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := rj.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	assertStatsBits(t, warm.Stats, cold.Stats, "cold-vs-warm")
	// Churn with a different query shape, then re-ask.
	if _, err := rj.Join(core.Request{Points: ps, Source: st, Regions: rs, Agg: core.Count,
		Time: &core.TimeFilter{Start: 0, End: 3000}}); err != nil {
		t.Fatal(err)
	}
	again, err := rj.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	assertStatsBits(t, again.Stats, cold.Stats, "churned")
	if cs := st.CacheStats(); cs.Hits == 0 {
		t.Errorf("repeated joins produced no cache hits: %+v", cs)
	}
}

// TestSegmentPruneCounters: a tight filter over the time-correlated
// attribute must actually prune blocks (observable via ScanStats), and the
// pruned execution must match the unpruned one bit for bit.
func TestSegmentPruneCounters(t *testing.T) {
	ps, rs := equivScene(6000, 8, 888)
	st := equivStore(t, ps, 256, 1<<20)
	req := core.Request{Points: ps, Source: st, Regions: rs, Agg: core.Count,
		Filters: []core.Filter{{Attr: "hot", Min: 100, Max: 160}}}

	off := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(256),
		core.WithBlockPrune(false))
	want, err := off.Join(req)
	if err != nil {
		t.Fatal(err)
	}

	s0, p0 := core.ScanStats()
	on := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(256))
	got, err := on.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	s1, p1 := core.ScanStats()
	assertStatsBits(t, got.Stats, want.Stats, "pruned-vs-unpruned")
	if p1-p0 == 0 {
		t.Errorf("tight filter pruned no blocks (scanned %d)", s1-s0)
	}
	if s1-s0 == 0 {
		t.Error("pruned join scanned no blocks at all")
	}
	if p1-p0 <= (s1-s0) {
		// With a ~1% selectivity filter over a sorted column, far more
		// blocks must be eliminated than survive.
		t.Errorf("weak pruning: %d pruned vs %d scanned", p1-p0, s1-s0)
	}
}

// TestSegmentJoinCancellation: canceling a segment-backed join mid-pass
// returns the context error and leaks neither canvases nor textures.
func TestSegmentJoinCancellation(t *testing.T) {
	ps, rs := equivScene(100_000, 8, 999)
	st := equivStore(t, ps, 1024, 1<<20)
	dev := gpu.New()
	rj := core.NewRasterJoin(core.WithDevice(dev), core.WithMode(core.Accurate),
		core.WithResolution(512), core.WithPointBatch(256))
	baseline := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err := rj.JoinContext(ctx, core.Request{Points: ps, Source: st, Regions: rs,
		Agg: core.Sum, Attr: "v"})
	if err == nil {
		t.Skip("join completed before the deadline; nothing to assert")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	awaitGoroutines(t, baseline)
	requireDevDrained(t, dev, "after canceled segment join")
}
