package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/raster"
	"repro/internal/trace"
)

// FlowResult is a sparse origin-destination matrix over region positions:
// cell (o, d) counts the points whose origin lies in region o and whose
// destination lies in region d — the query behind Urbane's taxi-flow view.
// Destinations come from two attribute columns holding mercator
// coordinates (data.DropoffXAttr / DropoffYAttr for the taxi generator).
type FlowResult struct {
	// Regions is the number of regions (matrix dimension).
	Regions int
	// Counts maps origin*Regions+destination to the flow count. Only
	// non-zero cells are present.
	Counts map[int64]int64
	// Dropped counts points whose origin or destination fell outside every
	// region (or the canvas).
	Dropped int64
	// Filtered counts points discarded by the filter conditions.
	Filtered int64
	// Algorithm, CanvasW/H, PixelSize mirror Result's metadata.
	Algorithm        string
	CanvasW, CanvasH int
	PixelSize        float64
}

// At returns the flow count from origin region o to destination region d.
func (f *FlowResult) At(o, d int) int64 { return f.Counts[int64(o)*int64(f.Regions)+int64(d)] }

// Total returns the total assigned flow.
func (f *FlowResult) Total() int64 {
	var n int64
	for _, v := range f.Counts {
		n += v
	}
	return n
}

// Flow is one OD pair with its count, used for ranked reporting.
type Flow struct {
	From, To int
	Count    int64
}

// Top returns the n largest flows, ties broken by (from, to) for
// determinism.
func (f *FlowResult) Top(n int) []Flow {
	flows := make([]Flow, 0, len(f.Counts))
	for cell, v := range f.Counts {
		flows = append(flows, Flow{
			From:  int(cell / int64(f.Regions)),
			To:    int(cell % int64(f.Regions)),
			Count: v,
		})
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Count != flows[j].Count {
			return flows[i].Count > flows[j].Count
		}
		if flows[i].From != flows[j].From {
			return flows[i].From < flows[j].From
		}
		return flows[i].To < flows[j].To
	})
	if n < len(flows) {
		flows = flows[:n]
	}
	return flows
}

// FlowJoin evaluates the OD aggregation with the polygons-first pipeline:
// the regions are rendered once into a polygon-ID texture, then each
// filtered point reads the owner of its origin pixel and of its destination
// pixel; one (o,d) matrix cell is incremented per point whose both ends
// resolve. In Approximate mode assignment uses the pixel-center rule, so
// per-end error is bounded by the pixel diagonal; in Accurate mode ends
// landing in boundary pixels take exact point-in-polygon tests and the
// matrix is exact. With overlapping regions each end resolves to its
// first-matching region.
//
// dxAttr/dyAttr name the destination coordinate columns.
func (r *RasterJoin) FlowJoin(req Request, dxAttr, dyAttr string) (*FlowResult, error) {
	return r.FlowJoinContext(context.Background(), req, dxAttr, dyAttr)
}

// FlowJoinContext is FlowJoin under a request context: cancellation is
// checked between ID-pass polygons and between OD-pass point batches, and
// the canvas is released on every exit path.
func (r *RasterJoin) FlowJoinContext(ctx context.Context, req Request, dxAttr, dyAttr string) (*FlowResult, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	src := req.Data()
	dxIdx := data.AttrIndex(src, dxAttr)
	dyIdx := data.AttrIndex(src, dyAttr)
	if dxIdx < 0 || dyIdx < 0 {
		return nil, fmt.Errorf("core: flow needs destination columns %q/%q in point set %q",
			dxAttr, dyAttr, src.Name())
	}
	nr := req.Regions.Len()
	out := &FlowResult{
		Regions:   nr,
		Counts:    make(map[int64]int64),
		Algorithm: fmt.Sprintf("raster-flow-%dpx", r.resolution),
	}
	window := req.Regions.Bounds()
	if window.IsEmpty() || src.Len() == 0 || nr == 0 {
		return out, nil
	}
	if r.epsilon > 0 {
		return nil, fmt.Errorf("core: flow join runs at display resolution; ε mode unsupported")
	}
	full := r.fullTransform(window)
	c, err := r.dev.NewCanvas(full.World, full.W, full.H)
	if err != nil {
		return nil, fmt.Errorf("core: flow join: %w (reduce the resolution)", err)
	}
	defer c.Release()
	out.CanvasW, out.CanvasH = c.T.W, c.T.H
	out.PixelSize = c.T.PixelWidth()

	// The flow scan restricts pruning to the coordinate zones: dropping a
	// block on an attribute or time zone would reclassify its points from
	// Filtered to Dropped (they would never reach the shader), while
	// spatially pruned points are canvas-culled and count as Dropped on
	// both paths.
	sc, err := r.newScan(req)
	if err != nil {
		return nil, err
	}
	sc.spatialOnly = true
	sc.setWorld(c.T.World)

	// ID pass: first-drawn region owns each pixel. In accurate mode a
	// region's fragments in its own boundary pixels are withheld, and per-
	// boundary-pixel candidate lists drive exact resolution.
	sp, err := r.cachedSpans(ctx, req.Regions, c.T)
	if err != nil {
		return nil, err
	}
	w := c.T.W
	ids := make([]int32, c.T.W*c.T.H)
	for i := range ids {
		ids[i] = -1
	}
	var slotOf []int32
	var candidates [][]int32
	var scratch *raster.Bitmap
	var regionPixels [][]int32
	if r.mode == Accurate {
		var boundaryList []int32
		boundaryList, regionPixels = r.outlinePass(c, req.Regions, sp)
		slotOf = make([]int32, c.T.W*c.T.H)
		for i := range slotOf {
			slotOf[i] = -1
		}
		for s, idx := range boundaryList {
			slotOf[idx] = int32(s)
		}
		candidates = make([][]int32, len(boundaryList))
		for k := range regionPixels {
			for _, idx := range regionPixels[k] {
				candidates[slotOf[idx]] = append(candidates[slotOf[idx]], int32(k))
			}
		}
		scratch = raster.NewBitmap(c.T.W, c.T.H)
	}
	regions := req.Regions.Regions
	for k := range regions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		k32 := int32(k)
		if scratch != nil {
			for _, idx := range regionPixels[k] {
				scratch.Set(int(idx)%w, int(idx)/w)
			}
		}
		drawRegion(c, sp, regions[k].Poly, k, func(px, py int) {
			if scratch != nil && scratch.Get(px, py) {
				return
			}
			i := py*w + px
			if ids[i] == -1 {
				ids[i] = k32
			}
		})
		if scratch != nil {
			for _, idx := range regionPixels[k] {
				scratch.Unset(int(idx)%w, int(idx)/w)
			}
		}
	}

	// locate resolves a world point to its containing region (-1 = none):
	// certain owner from the ID texture, or exact tests in boundary pixels.
	locate := func(p geom.Point) int32 {
		px, py, ok := c.T.ToPixel(p)
		if !ok {
			return -1
		}
		idx := py*w + px
		if slotOf != nil {
			if slot := slotOf[idx]; slot >= 0 {
				for _, k := range candidates[slot] {
					if regions[k].Poly.Contains(p) {
						return k
					}
				}
				return ids[idx] // certain owner covering the whole pixel
			}
		}
		return ids[idx]
	}

	// OD pass: resolve both ends of every point. Destinations are mapped
	// manually (they are attribute payloads, not the vertex position the
	// device culls on). Points whose origin the canvas culls never reach
	// the shader; they are outside every region and count as dropped. The
	// pass streams in pointBatch-sized draws, checking cancellation between
	// batches like the other joins.
	//
	// The shader writes the OD matrix — region-keyed, not pixel-keyed — so
	// the parallel path shards the point range with a whole partial matrix
	// per worker, merged in shard order after the barrier. Every cell is an
	// int64 count, so the merge is exact and the result is identical to the
	// sequential pass regardless of worker count.
	lo, hi := sc.Lo, sc.Hi
	n := hi - lo
	workers := r.pointWorkers
	if workers > 1 && n < 4096 {
		workers = 1
	}
	if workers < 1 {
		workers = 1
	}
	shard := (n + workers - 1) / workers
	if shard < 1 {
		shard = 1
	}
	type flowPartial struct {
		counts            map[int64]int64
		dropped, filtered int64
		shaded            int64
	}
	// Race audit (sharedwrite-clean): each goroutine writes only the partial
	// it receives as an argument; ids, slotOf, candidates and the locate
	// closure's state are frozen before the fan-out and only read here.
	// Partials merge after wg.Wait().
	parts := make([]*flowPartial, 0, workers)
	var wg sync.WaitGroup
	tr := trace.FromContext(ctx)
	for s := lo; s < hi; s += shard {
		e := s + shard
		if e > hi {
			e = hi
		}
		p := &flowPartial{counts: make(map[int64]int64)}
		parts = append(parts, p)
		wg.Add(1)
		go func(lo, hi int, p *flowPartial) {
			defer wg.Done()
			// Cancellation surfaces as ctx.Err() after the barrier, so the
			// per-shard error can be dropped here.
			_ = sc.piecesRange(ctx, lo, hi, func(blk *data.Block, plo, phi int, needPred bool) error {
				base := blk.Base
				dx, dy := blk.Attr[dxIdx], blk.Attr[dyIdx]
				batch := r.pointBatch
				if batch <= 0 {
					batch = phi - plo
				}
				for s := plo; s < phi; s += batch {
					if err := ctx.Err(); err != nil {
						return err
					}
					e := s + batch
					if e > phi {
						e = phi
					}
					bb := s
					c.DrawPoints(e-s,
						func(j int) (float64, float64) { jj := bb - base + j; return blk.X[jj], blk.Y[jj] },
						func(px, py, j int) {
							p.shaded++
							i := bb + j
							if needPred && !sc.pred(blk, i) {
								p.filtered++
								return
							}
							jj := i - base
							o := locate(geom.Point{X: blk.X[jj], Y: blk.Y[jj]})
							if o < 0 {
								p.dropped++
								return
							}
							d := locate(geom.Point{X: dx[jj], Y: dy[jj]})
							if d < 0 {
								p.dropped++
								return
							}
							p.counts[int64(o)*int64(nr)+int64(d)]++
						})
					tr.Count("batches", 1)
				}
				return nil
			})
		}(s, e, p)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var shaded int64
	for _, p := range parts {
		shaded += p.shaded
		out.Filtered += p.filtered
		out.Dropped += p.dropped
		for cell, v := range p.counts {
			out.Counts[cell] += v
		}
	}
	out.Dropped += int64(hi-lo) - shaded
	return out, nil
}
