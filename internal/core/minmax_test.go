package core_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/index"
)

// Accurate raster join MIN/MAX must equal brute force exactly, in both
// strategies: min/max are assembled from the MIN/MAX blend textures for
// interior pixels plus exact boundary resolution.
func TestAccurateMinMaxIsExact(t *testing.T) {
	ps, rs := scene(4000, 10, 501)
	for _, agg := range []core.Agg{core.Min, core.Max} {
		req := core.Request{Points: ps, Regions: rs, Agg: agg, Attr: "v"}
		want, err := (&index.BruteForce{}).Join(req)
		if err != nil {
			t.Fatal(err)
		}
		for _, strat := range []core.Strategy{core.PointsFirst, core.PolygonsFirst} {
			rj := core.NewRasterJoin(core.WithResolution(128),
				core.WithMode(core.Accurate), core.WithStrategy(strat))
			got, err := rj.Join(req)
			if err != nil {
				t.Fatalf("%v/%v: %v", agg, strat, err)
			}
			for k := range want.Stats {
				if got.Stats[k].Count != want.Stats[k].Count {
					t.Fatalf("%v/%v region %d: count %d vs %d",
						agg, strat, k, got.Stats[k].Count, want.Stats[k].Count)
				}
				g, w := got.Value(k, agg), want.Value(k, agg)
				if math.Abs(g-w) > 1e-12 {
					t.Fatalf("%v/%v region %d: %v vs %v", agg, strat, k, g, w)
				}
			}
		}
	}
}

// Approximate MIN can only go lower or equal than exact when a foreign
// boundary point is misassigned in; it can also miss the true min. Sanity:
// for a region whose interior carries the extreme values, high resolutions
// converge to exact.
func TestApproximateMinMaxConverges(t *testing.T) {
	ps, rs := scene(5000, 6, 503)
	for _, agg := range []core.Agg{core.Min, core.Max} {
		req := core.Request{Points: ps, Regions: rs, Agg: agg, Attr: "v"}
		want, err := (&index.BruteForce{}).Join(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := core.NewRasterJoin(core.WithResolution(2048)).Join(req)
		if err != nil {
			t.Fatal(err)
		}
		mismatches := 0
		for k := range want.Stats {
			if math.Abs(got.Value(k, agg)-want.Value(k, agg)) > 1e-9 {
				mismatches++
			}
		}
		if mismatches > len(want.Stats)/3 {
			t.Errorf("%v at 2048px: %d/%d regions off", agg, mismatches, len(want.Stats))
		}
	}
}

func TestMinMaxWithFilters(t *testing.T) {
	ps, rs := scene(3000, 8, 505)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Max, Attr: "v",
		Filters: []core.Filter{{Attr: "v", Min: 0, Max: 5}}}
	rj := core.NewRasterJoin(core.WithResolution(256), core.WithMode(core.Accurate))
	got, err := rj.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	// The filter caps the observable maximum below 5.
	for k := range got.Stats {
		if v := got.Value(k, core.Max); v >= 5 {
			t.Fatalf("region %d max %v >= filter cap", k, v)
		}
	}
	want, _ := (&index.BruteForce{}).Join(req)
	for k := range want.Stats {
		if math.Abs(got.Value(k, core.Max)-want.Value(k, core.Max)) > 1e-12 {
			t.Fatalf("region %d: %v vs %v", k, got.Value(k, core.Max), want.Value(k, core.Max))
		}
	}
}

func TestMinMaxValidation(t *testing.T) {
	ps, rs := scene(100, 4, 507)
	rj := core.NewRasterJoin(core.WithResolution(64))
	// MIN needs an attribute.
	if _, err := rj.Join(core.Request{Points: ps, Regions: rs, Agg: core.Min}); err == nil {
		t.Error("MIN without attribute should fail validation")
	}
	// Series and multi joins reject MIN/MAX.
	if _, err := rj.SeriesJoin(core.Request{Points: ps, Regions: rs,
		Agg: core.Min, Attr: "v"}, 0, 100, 2); err == nil {
		t.Error("series MIN should be rejected")
	}
	if _, err := rj.MultiJoin(core.Request{Points: ps, Regions: rs},
		[]core.AggSpec{{Agg: core.Max, Attr: "v"}}); err == nil {
		t.Error("multi MAX should be rejected")
	}
}

func TestRegionStatObserveMerge(t *testing.T) {
	var a core.RegionStat
	a.Observe(5)
	a.Observe(2)
	a.Observe(9)
	if a.Count != 3 || a.Sum != 16 || a.Min != 2 || a.Max != 9 {
		t.Fatalf("after observes: %+v", a)
	}
	var b core.RegionStat
	b.Observe(1)
	a.Merge(b)
	if a.Count != 4 || a.Min != 1 || a.Max != 9 {
		t.Fatalf("after merge: %+v", a)
	}
	// Merging an empty stat is a no-op; merging into empty copies.
	var empty core.RegionStat
	a.Merge(empty)
	if a.Count != 4 {
		t.Error("merging empty changed the stat")
	}
	var c core.RegionStat
	c.Merge(a)
	if c != a {
		t.Error("merge into empty should copy")
	}
	// Value dispatch.
	if a.Value(core.Min) != 1 || a.Value(core.Max) != 9 || a.Value(core.Avg) != 17.0/4 {
		t.Errorf("values: %v %v %v", a.Value(core.Min), a.Value(core.Max), a.Value(core.Avg))
	}
	if empty.Value(core.Min) != 0 || empty.Value(core.Max) != 0 {
		t.Error("empty min/max should be 0")
	}
}
