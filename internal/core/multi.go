package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/raster"
)

// AggSpec is one aggregate of a multi-aggregate join: its function,
// attribute, and the per-aggregate constraints layered on top of the
// request's own filters. Urbane's ranking view computes several metrics
// over the same data and layer; MultiJoin evaluates them in one render
// instead of one render per metric.
type AggSpec struct {
	Agg     Agg
	Attr    string
	Filters []Filter
	Time    *TimeFilter
}

// MultiJoin evaluates all specs against the request's points and regions in
// a single raster pipeline: one point pass feeding per-spec textures, one
// polygon pass reading them all. The request's Agg/Attr are ignored; its
// Filters and Time apply to every spec, and each spec's own Filters/Time
// compose on top. Results are identical to running each spec as its own
// Join, per mode.
//
// MultiJoin runs the points-first strategy (the texture-sharing win does
// not exist polygons-first) and supports both Approximate and Accurate
// modes, with tiling.
func (r *RasterJoin) MultiJoin(req Request, specs []AggSpec) ([]*Result, error) {
	return r.MultiJoinContext(context.Background(), req, specs)
}

// MultiJoinContext is MultiJoin under a request context, with the same
// cancellation granularity as JoinContext: between point batches, between
// region claims, and between canvas tiles.
func (r *RasterJoin) MultiJoinContext(ctx context.Context, req Request, specs []AggSpec) ([]*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: MultiJoin needs at least one spec")
	}
	req.Agg = Count
	req.Attr = ""
	if err := req.Validate(); err != nil {
		return nil, err
	}
	src := req.Data()
	// Per-spec validation and predicate/attr resolution. Each spec's time
	// restriction folds into its residual predicate (different specs may
	// carry different windows, so range narrowing happens only globally).
	attrIdxs := make([]int, len(specs))
	preds := make([]residualPred, len(specs))
	for s, spec := range specs {
		attrIdxs[s] = -1
		if spec.Agg == Min || spec.Agg == Max {
			return nil, fmt.Errorf("core: MultiJoin supports COUNT/SUM/AVG, not %v", spec.Agg)
		}
		if spec.Agg.NeedsAttr() {
			attrIdxs[s] = data.AttrIndex(src, spec.Attr)
			if attrIdxs[s] < 0 {
				return nil, fmt.Errorf("core: spec %d: %v needs attribute %q",
					s, spec.Agg, spec.Attr)
			}
		}
		if spec.Time != nil && !src.HasTime() {
			return nil, fmt.Errorf("core: spec %d: time filter on point set %q without timestamps",
				s, src.Name())
		}
		p, err := newResidualPred(src, spec.Filters, spec.Time)
		if err != nil {
			return nil, fmt.Errorf("core: spec %d: %w", s, err)
		}
		preds[s] = p
	}

	results := make([]*Result, len(specs))
	for s := range specs {
		results[s] = &Result{
			Stats:     make([]RegionStat, req.Regions.Len()),
			Algorithm: r.Name() + "-multi",
		}
	}
	window := req.Regions.Bounds()
	if window.IsEmpty() || src.Len() == 0 {
		return results, nil
	}
	full := r.fullTransform(window)
	for s := range results {
		results[s].CanvasW, results[s].CanvasH = full.W, full.H
		results[s].PixelSize = full.PixelWidth()
	}
	// The global scan prunes on the request-wide filters and time window
	// only; spec-level constraints stay per-point (a block useless to one
	// spec may still feed another).
	sc, err := r.newScan(req)
	if err != nil {
		return nil, err
	}

	err = r.dev.Tiles(full, func(c *gpu.Canvas, offX, offY int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		for s := range results {
			results[s].Tiles++
		}
		sc.setWorld(c.T.World)
		return r.renderTileMulti(ctx, c, req, results, specs, attrIdxs, preds, sc)
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// multiObs is one retained boundary observation of the multi join: the
// point's coordinates plus, per spec, whether its predicate passed and the
// attribute value. Captured at bin time because the source block may be
// evicted before the fix-up pass runs.
type multiObs struct {
	x, y float64
	ok   []bool
	val  []float64
}

// renderTileMulti is renderTile generalized to several aggregates sharing
// the point and polygon passes.
func (r *RasterJoin) renderTileMulti(ctx context.Context, c *gpu.Canvas, req Request, results []*Result,
	specs []AggSpec, attrIdxs []int, preds []residualPred, sc *Scan) error {

	w, h := c.T.W, c.T.H

	sp, err := r.cachedSpans(ctx, req.Regions, c.T)
	if err != nil {
		return err
	}

	var slotOf []int32
	var bins [][]multiObs
	var regionPixels [][]int32
	if r.mode == Accurate {
		var boundaryList []int32
		boundaryList, regionPixels = r.outlinePass(c, req.Regions, sp)
		slotOf = make([]int32, w*h)
		for i := range slotOf {
			slotOf[i] = -1
		}
		for s, idx := range boundaryList {
			slotOf[idx] = int32(s)
		}
		bins = make([][]multiObs, len(boundaryList))
	}

	// Point pass: one texture pair per spec, all pooled and released on
	// every exit path.
	countTex := make([]*gpu.Texture, len(specs))
	sumTex := make([]*gpu.Texture, len(specs))
	defer func() {
		for s := range specs {
			r.dev.ReleaseTexture(countTex[s])
			r.dev.ReleaseTexture(sumTex[s])
		}
	}()
	for s := range specs {
		countTex[s] = r.dev.AcquireTexture(w, h)
		if attrIdxs[s] >= 0 {
			sumTex[s] = r.dev.AcquireTexture(w, h)
		}
	}
	err = sc.piecesRange(ctx, sc.Lo, sc.Hi, func(blk *data.Block, lo, hi int, needPred bool) error {
		base := blk.Base
		return r.drawPointsBatchedParallel(ctx, c, lo, hi,
			func(i int) (float64, float64) { j := i - base; return blk.X[j], blk.Y[j] },
			func(px, py, i int) {
				if needPred && !sc.pred(blk, i) {
					return
				}
				j := i - base
				var mo *multiObs
				if slotOf != nil && slotOf[py*w+px] >= 0 {
					mo = &multiObs{x: blk.X[j], y: blk.Y[j],
						ok: make([]bool, len(specs)), val: make([]float64, len(specs))}
				}
				any := false
				for s := range specs {
					pass := preds[s].empty() || preds[s].eval(blk, i)
					if mo != nil {
						mo.ok[s] = pass
						if pass && attrIdxs[s] >= 0 {
							mo.val[s] = blk.Attr[attrIdxs[s]][j]
						}
					}
					if !pass {
						continue
					}
					any = true
					countTex[s].Add(px, py, 1)
					if sumTex[s] != nil {
						sumTex[s].Add(px, py, blk.Attr[attrIdxs[s]][j])
					}
				}
				if any && mo != nil {
					slot := slotOf[py*w+px]
					bins[slot] = append(bins[slot], *mo)
				}
			})
	})
	if err != nil {
		return err
	}

	// Polygon pass: one traversal per region accumulating every spec.
	// Scratch boundary bitmaps are pooled across the parallel workers and
	// returned clean.
	var pool sync.Pool
	pool.New = func() any { return raster.NewBitmap(w, h) }
	regions := req.Regions.Regions
	return r.parallelRegionsCtx(ctx, len(regions), func(k int) {
		poly := regions[k].Poly
		cnt := make([]int64, len(specs))
		sum := make([]float64, len(specs))

		var scratch *raster.Bitmap
		if r.mode == Accurate {
			scratch = pool.Get().(*raster.Bitmap)
			for _, idx := range regionPixels[k] {
				scratch.Set(int(idx)%w, int(idx)/w)
			}
		}
		drawRegion(c, sp, poly, k, func(px, py int) {
			if scratch != nil && scratch.Get(px, py) {
				return
			}
			for s := range specs {
				v := countTex[s].At(px, py)
				if v == 0 {
					continue
				}
				cnt[s] += int64(v)
				if sumTex[s] != nil {
					//lint:ignore floataccum per-fragment hot loop mirroring GPU additive blending; trip count bounded by tile pixels
					sum[s] += sumTex[s].At(px, py)
				}
			}
		})
		if scratch != nil {
			for _, idx := range regionPixels[k] {
				scratch.Unset(int(idx)%w, int(idx)/w)
				for _, mo := range bins[slotOf[idx]] {
					if !poly.Contains(geom.Point{X: mo.x, Y: mo.y}) {
						continue
					}
					for s := range specs {
						if !mo.ok[s] {
							continue
						}
						cnt[s]++
						if attrIdxs[s] >= 0 {
							//lint:ignore floataccum boundary fix-up over one pixel's point bin; dozens of terms at most
							sum[s] += mo.val[s]
						}
					}
				}
			}
			pool.Put(scratch)
		}
		for s := range specs {
			results[s].Stats[k].Count += cnt[s]
			//lint:ignore floataccum merge of one partial per canvas tile; tile count is single digits
			results[s].Stats[k].Sum += sum[s]
		}
	})
}
