package core

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/raster"
)

// AggSpec is one aggregate of a multi-aggregate join: its function,
// attribute, and the per-aggregate constraints layered on top of the
// request's own filters. Urbane's ranking view computes several metrics
// over the same data and layer; MultiJoin evaluates them in one render
// instead of one render per metric.
type AggSpec struct {
	Agg     Agg
	Attr    string
	Filters []Filter
	Time    *TimeFilter
}

// MultiJoin evaluates all specs against the request's points and regions in
// a single raster pipeline: one point pass feeding per-spec textures, one
// polygon pass reading them all. The request's Agg/Attr are ignored; its
// Filters and Time apply to every spec, and each spec's own Filters/Time
// compose on top. Results are identical to running each spec as its own
// Join, per mode.
//
// MultiJoin runs the points-first strategy (the texture-sharing win does
// not exist polygons-first) and supports both Approximate and Accurate
// modes, with tiling.
func (r *RasterJoin) MultiJoin(req Request, specs []AggSpec) ([]*Result, error) {
	return r.MultiJoinContext(context.Background(), req, specs)
}

// MultiJoinContext is MultiJoin under a request context, with the same
// cancellation granularity as JoinContext: between point batches, between
// region claims, and between canvas tiles.
func (r *RasterJoin) MultiJoinContext(ctx context.Context, req Request, specs []AggSpec) ([]*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: MultiJoin needs at least one spec")
	}
	req.Agg = Count
	req.Attr = ""
	if err := req.Validate(); err != nil {
		return nil, err
	}
	// Per-spec validation and predicate/attr resolution.
	attrs := make([][]float64, len(specs))
	preds := make([]func(int) bool, len(specs))
	for s, spec := range specs {
		if spec.Agg == Min || spec.Agg == Max {
			return nil, fmt.Errorf("core: MultiJoin supports COUNT/SUM/AVG, not %v", spec.Agg)
		}
		if spec.Agg.NeedsAttr() {
			attrs[s] = req.Points.Attr(spec.Attr)
			if attrs[s] == nil {
				return nil, fmt.Errorf("core: spec %d: %v needs attribute %q",
					s, spec.Agg, spec.Attr)
			}
		}
		if spec.Time != nil && req.Points.T == nil {
			return nil, fmt.Errorf("core: spec %d: time filter on point set %q without timestamps",
				s, req.Points.Name)
		}
		sub := Request{Points: req.Points, Regions: req.Regions,
			Filters: spec.Filters, Time: spec.Time}
		for _, f := range spec.Filters {
			if req.Points.Attr(f.Attr) == nil {
				return nil, fmt.Errorf("core: spec %d: filter attribute %q missing", s, f.Attr)
			}
		}
		// Per-spec predicate evaluated on absolute indices; the time
		// restriction folds into the predicate (different specs may carry
		// different windows, so range narrowing happens only globally).
		_, _, p, err := specPredicate(sub)
		if err != nil {
			return nil, err
		}
		preds[s] = p
	}

	results := make([]*Result, len(specs))
	for s := range specs {
		results[s] = &Result{
			Stats:     make([]RegionStat, req.Regions.Len()),
			Algorithm: r.Name() + "-multi",
		}
	}
	window := req.Regions.Bounds()
	if window.IsEmpty() || req.Points.Len() == 0 {
		return results, nil
	}
	full := r.fullTransform(window)
	for s := range results {
		results[s].CanvasW, results[s].CanvasH = full.W, full.H
		results[s].PixelSize = full.PixelWidth()
	}
	lo, hi, globalPred, err := PointPredicate(req)
	if err != nil {
		return nil, err
	}

	err = r.dev.Tiles(full, func(c *gpu.Canvas, offX, offY int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		for s := range results {
			results[s].Tiles++
		}
		return r.renderTileMulti(ctx, c, req, results, specs, attrs, preds, lo, hi, globalPred)
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// specPredicate builds the per-point predicate for one spec's filters and
// time window, without range narrowing.
func specPredicate(req Request) (int, int, func(int) bool, error) {
	if req.Time != nil {
		// Force the predicate path: copy the request with an unsorted
		// marker is unnecessary — PointPredicate narrows only when sorted,
		// but narrowing returns (lo, hi) which we must not use per spec.
		// Compose manually instead.
		t := req.Points.T
		start, end := req.Time.Start, req.Time.End
		base := req
		base.Time = nil
		_, _, attrPred, err := PointPredicate(base)
		if err != nil {
			return 0, 0, nil, err
		}
		timePred := func(i int) bool { return t[i] >= start && t[i] < end }
		if attrPred == nil {
			return 0, 0, timePred, nil
		}
		return 0, 0, func(i int) bool { return timePred(i) && attrPred(i) }, nil
	}
	return PointPredicate(req)
}

// renderTileMulti is renderTile generalized to several aggregates sharing
// the point and polygon passes.
func (r *RasterJoin) renderTileMulti(ctx context.Context, c *gpu.Canvas, req Request, results []*Result,
	specs []AggSpec, attrs [][]float64, preds []func(int) bool,
	lo, hi int, globalPred func(int) bool) error {

	w, h := c.T.W, c.T.H
	ps := req.Points

	sp, err := r.cachedSpans(ctx, req.Regions, c.T)
	if err != nil {
		return err
	}

	var slotOf []int32
	var bins [][]int32
	var regionPixels [][]int32
	if r.mode == Accurate {
		var boundaryList []int32
		boundaryList, regionPixels = r.outlinePass(c, req.Regions, sp)
		slotOf = make([]int32, w*h)
		for i := range slotOf {
			slotOf[i] = -1
		}
		for s, idx := range boundaryList {
			slotOf[idx] = int32(s)
		}
		bins = make([][]int32, len(boundaryList))
	}

	// Point pass: one texture pair per spec, all pooled and released on
	// every exit path.
	countTex := make([]*gpu.Texture, len(specs))
	sumTex := make([]*gpu.Texture, len(specs))
	defer func() {
		for s := range specs {
			r.dev.ReleaseTexture(countTex[s])
			r.dev.ReleaseTexture(sumTex[s])
		}
	}()
	for s := range specs {
		countTex[s] = r.dev.AcquireTexture(w, h)
		if attrs[s] != nil {
			sumTex[s] = r.dev.AcquireTexture(w, h)
		}
	}
	err = r.drawPointsBatchedParallel(ctx, c, lo, hi,
		func(i int) (float64, float64) { return ps.X[i], ps.Y[i] },
		func(px, py, i int) {
			if globalPred != nil && !globalPred(i) {
				return
			}
			any := false
			for s := range specs {
				if preds[s] != nil && !preds[s](i) {
					continue
				}
				any = true
				countTex[s].Add(px, py, 1)
				if sumTex[s] != nil {
					sumTex[s].Add(px, py, attrs[s][i])
				}
			}
			if any && slotOf != nil {
				if slot := slotOf[py*w+px]; slot >= 0 {
					bins[slot] = append(bins[slot], int32(i))
				}
			}
		})
	if err != nil {
		return err
	}

	// Polygon pass: one traversal per region accumulating every spec.
	// Scratch boundary bitmaps are pooled across the parallel workers and
	// returned clean.
	var pool sync.Pool
	pool.New = func() any { return raster.NewBitmap(w, h) }
	regions := req.Regions.Regions
	return r.parallelRegionsCtx(ctx, len(regions), func(k int) {
		poly := regions[k].Poly
		cnt := make([]int64, len(specs))
		sum := make([]float64, len(specs))

		var scratch *raster.Bitmap
		if r.mode == Accurate {
			scratch = pool.Get().(*raster.Bitmap)
			for _, idx := range regionPixels[k] {
				scratch.Set(int(idx)%w, int(idx)/w)
			}
		}
		drawRegion(c, sp, poly, k, func(px, py int) {
			if scratch != nil && scratch.Get(px, py) {
				return
			}
			for s := range specs {
				v := countTex[s].At(px, py)
				if v == 0 {
					continue
				}
				cnt[s] += int64(v)
				if sumTex[s] != nil {
					//lint:ignore floataccum per-fragment hot loop mirroring GPU additive blending; trip count bounded by tile pixels
					sum[s] += sumTex[s].At(px, py)
				}
			}
		})
		if scratch != nil {
			for _, idx := range regionPixels[k] {
				scratch.Unset(int(idx)%w, int(idx)/w)
				for _, id := range bins[slotOf[idx]] {
					p := geom.Point{X: ps.X[id], Y: ps.Y[id]}
					if !poly.Contains(p) {
						continue
					}
					for s := range specs {
						if preds[s] != nil && !preds[s](int(id)) {
							continue
						}
						cnt[s]++
						if attrs[s] != nil {
							//lint:ignore floataccum boundary fix-up over one pixel's point bin; dozens of terms at most
							sum[s] += attrs[s][id]
						}
					}
				}
			}
			pool.Put(scratch)
		}
		for s := range specs {
			results[s].Stats[k].Count += cnt[s]
			//lint:ignore floataccum merge of one partial per canvas tile; tile count is single digits
			results[s].Stats[k].Sum += sum[s]
		}
	})
}
