// Package core implements the paper's primary contribution: Raster Join,
// which evaluates spatial aggregation queries
//
//	SELECT AGG(a_i) FROM P, R
//	WHERE P.loc INSIDE R.geometry [AND filterCondition]*
//	GROUP BY R.id
//
// by converting them into drawing operations on a canvas and running them
// through the (software-simulated) GPU rendering pipeline. Three variants
// are provided:
//
//   - RasterJoin with a fixed canvas resolution — the unbounded approximate
//     join; error depends on the pixel size.
//   - RasterJoin with an error bound ε — bounded raster join: the canvas
//     resolution is derived from ε and the render is tiled into multiple
//     passes when it exceeds the device texture limit.
//   - Accurate raster join — interior pixels are aggregated in raster
//     space while fragments in boundary pixels take an exact
//     point-in-polygon test, producing exact results.
//
// The package also defines the Request/Result vocabulary shared with the
// baseline joiners (internal/index, internal/cube).
package core

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/data"
)

// Agg selects the aggregation function of a spatial aggregation query. The
// paper names count and average as the common cases; sum is the primitive
// average decomposes into.
type Agg int

const (
	// Count counts joined points per region.
	Count Agg = iota
	// Sum totals an attribute over joined points per region.
	Sum
	// Avg averages an attribute over joined points per region.
	Avg
	// Min takes an attribute's minimum per region. On the GPU this is the
	// MIN blend equation instead of additive blending.
	Min
	// Max takes an attribute's maximum per region (MAX blend equation).
	Max
)

// String implements fmt.Stringer.
func (a Agg) String() string {
	switch a {
	case Count:
		return "COUNT"
	case Sum:
		return "SUM"
	case Avg:
		return "AVG"
	case Min:
		return "MIN"
	case Max:
		return "MAX"
	default:
		return fmt.Sprintf("Agg(%d)", int(a))
	}
}

// NeedsAttr reports whether the aggregate reads an attribute column.
func (a Agg) NeedsAttr() bool {
	switch a {
	case Sum, Avg, Min, Max:
		return true
	}
	return false
}

// Filter is one ad-hoc filterCondition: attribute value in [Min, Max).
// These are the constraints pre-aggregation cannot serve and Raster Join
// evaluates on the fly.
type Filter struct {
	Attr     string
	Min, Max float64
}

// TimeFilter restricts points to timestamps in [Start, End).
type TimeFilter struct {
	Start, End int64
}

// Request is a spatial aggregation query: aggregate Agg(Attr) of the points
// joined into each region, under the given filters.
type Request struct {
	Points *data.PointSet
	// Source, when non-nil, is the block-iterator read path the raster
	// joiners scan instead of Points — an on-disk columnar segment store,
	// or any other data.PointSource. Points may still be set alongside it
	// (the planner keeps both so in-RAM joiners and the cube route
	// unchanged); joiners that have been refactored onto blocks prefer
	// Source.
	Source  data.PointSource
	Regions *data.RegionSet
	Agg     Agg
	// Attr names the aggregated attribute for Sum/Avg.
	Attr    string
	Filters []Filter
	// Time, when non-nil, restricts points to the window. If the point
	// data is time-sorted this is evaluated by binary search instead of a
	// predicate.
	Time *TimeFilter
}

// Data returns the request's point data as a PointSource: Source when set,
// the in-RAM point set's block view otherwise.
func (r *Request) Data() data.PointSource {
	if r.Source != nil {
		return r.Source
	}
	return r.Points.Source()
}

// Validate reports whether the request is well-formed against its data.
func (r *Request) Validate() error {
	if (r.Points == nil && r.Source == nil) || r.Regions == nil {
		return errors.New("core: request needs points and regions")
	}
	if r.Source == nil {
		if err := r.Points.Validate(); err != nil {
			return err
		}
	}
	src := r.Data()
	if r.Agg.NeedsAttr() {
		if data.AttrIndex(src, r.Attr) < 0 {
			return fmt.Errorf("core: %v needs attribute %q, not in point set %q",
				r.Agg, r.Attr, src.Name())
		}
	}
	for _, f := range r.Filters {
		if data.AttrIndex(src, f.Attr) < 0 {
			return fmt.Errorf("core: filter attribute %q not in point set %q",
				f.Attr, src.Name())
		}
	}
	if r.Time != nil && !src.HasTime() {
		return fmt.Errorf("core: time filter on point set %q without timestamps", src.Name())
	}
	return nil
}

// RegionStat accumulates the join result for one region. Min/Max are only
// meaningful when Count > 0 (the zero value is an empty region).
type RegionStat struct {
	Count    int64
	Sum      float64
	Min, Max float64
}

// Observe folds one attribute value into the stat.
func (s *RegionStat) Observe(v float64) {
	if s.Count == 0 {
		s.Min, s.Max = v, v
	} else {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Count++
	s.Sum += v
}

// Merge folds another stat into this one (tile and shard accumulation).
func (s *RegionStat) Merge(o RegionStat) {
	if o.Count == 0 {
		return
	}
	if s.Count == 0 {
		*s = o
		return
	}
	s.Count += o.Count
	s.Sum += o.Sum
	if o.Min < s.Min {
		s.Min = o.Min
	}
	if o.Max > s.Max {
		s.Max = o.Max
	}
}

// Value evaluates the aggregate from the accumulated state. Aggregates of
// an empty region are 0.
func (s RegionStat) Value(agg Agg) float64 {
	switch agg {
	case Count:
		return float64(s.Count)
	case Sum:
		return s.Sum
	case Avg:
		if s.Count == 0 {
			return 0
		}
		return s.Sum / float64(s.Count)
	case Min:
		if s.Count == 0 {
			return 0
		}
		return s.Min
	case Max:
		if s.Count == 0 {
			return 0
		}
		return s.Max
	default:
		return 0
	}
}

// Result is the output of a spatial aggregation: one stat per region, in
// region-set order, plus execution metadata.
type Result struct {
	Stats []RegionStat
	// Algorithm identifies the joiner that produced the result.
	Algorithm string
	// CanvasW, CanvasH are the full canvas dimensions used by raster
	// algorithms (0 for geometric joiners).
	CanvasW, CanvasH int
	// Tiles is the number of render passes the canvas was split into.
	Tiles int
	// PixelSize is the world-space pixel side length (0 for geometric
	// joiners).
	PixelSize float64
}

// Value returns the aggregate value for the i-th region.
func (r *Result) Value(i int, agg Agg) float64 { return r.Stats[i].Value(agg) }

// TotalCount sums the per-region counts (useful for conservation checks on
// partitioning region sets).
func (r *Result) TotalCount() int64 {
	var n int64
	for _, s := range r.Stats {
		n += s.Count
	}
	return n
}

// Joiner evaluates spatial aggregation requests. Implementations: Raster
// Join (this package), index join and brute force (internal/index), and the
// pre-aggregation cube (internal/cube, canned queries only).
type Joiner interface {
	Name() string
	Join(req Request) (*Result, error)
}

// ContextJoiner is implemented by joiners that honor request-scoped
// cancellation and deadlines. RasterJoin checks the context between point
// batches and between region claims, so a canceled request aborts within a
// couple of batch intervals instead of running to completion.
type ContextJoiner interface {
	Joiner
	JoinContext(ctx context.Context, req Request) (*Result, error)
}

// JoinContext runs the request on j under ctx. Joiners that implement
// ContextJoiner are canceled mid-flight; for the rest (cube, index — both
// fast enough that mid-flight cancellation buys nothing) the context is
// checked once up front so an already-dead request never starts.
func JoinContext(ctx context.Context, j Joiner, req Request) (*Result, error) {
	if cj, ok := j.(ContextJoiner); ok {
		return cj.JoinContext(ctx, req)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return j.Join(req)
}

// PointPredicate compiles the request's attribute filters into a single
// per-point predicate, plus the index range to scan. With a time-sorted
// point set the time filter narrows the range; otherwise it joins the
// predicate.
//
// The returned pred is nil when no per-point test is needed (scan the whole
// range).
func PointPredicate(req Request) (lo, hi int, pred func(i int) bool, err error) {
	ps := req.Points
	lo, hi = 0, ps.Len()

	var tests []func(i int) bool
	if req.Time != nil {
		sorted := true
		for i := 1; i < len(ps.T); i++ {
			if ps.T[i-1] > ps.T[i] {
				sorted = false
				break
			}
		}
		if sorted {
			lo, hi = ps.TimeWindow(req.Time.Start, req.Time.End)
		} else {
			start, end := req.Time.Start, req.Time.End
			t := ps.T
			tests = append(tests, func(i int) bool { return t[i] >= start && t[i] < end })
		}
	}
	for _, f := range req.Filters {
		col := ps.Attr(f.Attr)
		if col == nil {
			return 0, 0, nil, fmt.Errorf("core: filter attribute %q missing", f.Attr)
		}
		fmin, fmax := f.Min, f.Max
		tests = append(tests, func(i int) bool { return col[i] >= fmin && col[i] < fmax })
	}
	switch len(tests) {
	case 0:
		return lo, hi, nil, nil
	case 1:
		return lo, hi, tests[0], nil
	default:
		return lo, hi, func(i int) bool {
			for _, t := range tests {
				if !t(i) {
					return false
				}
			}
			return true
		}, nil
	}
}
