package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
)

// MultiJoin must equal per-spec Joins, spec by spec, in both modes.
func TestMultiJoinMatchesIndividualJoins(t *testing.T) {
	ps, rs := scene(4000, 10, 401)
	specs := []core.AggSpec{
		{Agg: core.Count},
		{Agg: core.Avg, Attr: "v"},
		{Agg: core.Sum, Attr: "v", Filters: []core.Filter{{Attr: "v", Min: 3, Max: 8}}},
		{Agg: core.Count, Time: &core.TimeFilter{Start: 500, End: 3000}},
	}
	for _, mode := range []core.Mode{core.Approximate, core.Accurate} {
		rj := core.NewRasterJoin(core.WithResolution(256), core.WithMode(mode))
		req := core.Request{Points: ps, Regions: rs}
		multi, err := rj.MultiJoin(req, specs)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if len(multi) != len(specs) {
			t.Fatalf("results = %d, want %d", len(multi), len(specs))
		}
		for s, spec := range specs {
			single := core.Request{Points: ps, Regions: rs,
				Agg: spec.Agg, Attr: spec.Attr,
				Filters: spec.Filters, Time: spec.Time}
			want, err := rj.Join(single)
			if err != nil {
				t.Fatal(err)
			}
			statsExactlyEqual(t, multi[s], want, spec.Agg.String())
		}
	}
}

// Global request filters compose with per-spec filters.
func TestMultiJoinGlobalFilters(t *testing.T) {
	ps, rs := scene(3000, 8, 403)
	req := core.Request{Points: ps, Regions: rs,
		Filters: []core.Filter{{Attr: "v", Min: 2, Max: 9}},
		Time:    &core.TimeFilter{Start: 0, End: 2500}}
	specs := []core.AggSpec{
		{Agg: core.Count},
		{Agg: core.Count, Filters: []core.Filter{{Attr: "v", Min: 5, Max: 9}}},
	}
	rj := core.NewRasterJoin(core.WithResolution(256), core.WithMode(core.Accurate))
	multi, err := rj.MultiJoin(req, specs)
	if err != nil {
		t.Fatal(err)
	}
	// Spec 1 is a strict subset of spec 0.
	t0, t1 := multi[0].TotalCount(), multi[1].TotalCount()
	if t1 >= t0 || t1 == 0 {
		t.Errorf("subset spec total %d should be in (0, %d)", t1, t0)
	}
	// And both must match their individual joins.
	for s, spec := range specs {
		single := req
		single.Agg = spec.Agg
		single.Filters = append(append([]core.Filter{}, req.Filters...), spec.Filters...)
		want, err := rj.Join(single)
		if err != nil {
			t.Fatal(err)
		}
		statsExactlyEqual(t, multi[s], want, "composed filters")
	}
}

func TestMultiJoinErrors(t *testing.T) {
	ps, rs := scene(100, 4, 405)
	rj := core.NewRasterJoin(core.WithResolution(64))
	req := core.Request{Points: ps, Regions: rs}
	if _, err := rj.MultiJoin(req, nil); err == nil {
		t.Error("no specs should fail")
	}
	if _, err := rj.MultiJoin(req, []core.AggSpec{{Agg: core.Sum, Attr: "nope"}}); err == nil {
		t.Error("unknown spec attribute should fail")
	}
	if _, err := rj.MultiJoin(req, []core.AggSpec{
		{Agg: core.Count, Filters: []core.Filter{{Attr: "nope"}}}}); err == nil {
		t.Error("unknown spec filter attribute should fail")
	}
	// Field-wise copy: PointSet carries an atomic identity stamp, so a
	// by-value copy is both a vet violation and semantically wrong.
	noTCopy := &data.PointSet{Name: ps.Name, X: ps.X, Y: ps.Y, Attrs: ps.Attrs}
	if _, err := rj.MultiJoin(core.Request{Points: noTCopy, Regions: rs},
		[]core.AggSpec{{Agg: core.Count, Time: &core.TimeFilter{Start: 0, End: 1}}}); err == nil {
		t.Error("spec time filter without timestamps should fail")
	}
}
