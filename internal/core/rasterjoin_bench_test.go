package core_test

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
)

func BenchmarkRasterJoinModes(b *testing.B) {
	ps, rs := scene(100_000, 32, 101)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	for _, mode := range []core.Mode{core.Approximate, core.Accurate} {
		rj := core.NewRasterJoin(core.WithResolution(512), core.WithMode(mode))
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rj.Join(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRasterJoinResolution(b *testing.B) {
	ps, rs := scene(100_000, 32, 103)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	for _, res := range []int{256, 1024, 2048} {
		rj := core.NewRasterJoin(core.WithResolution(res))
		b.Run(fmt.Sprintf("%dpx", res), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rj.Join(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRasterJoinAggregates(b *testing.B) {
	ps, rs := scene(100_000, 32, 105)
	rj := core.NewRasterJoin(core.WithResolution(512))
	for _, agg := range []core.Agg{core.Count, core.Avg} {
		req := core.Request{Points: ps, Regions: rs, Agg: agg, Attr: "v"}
		b.Run(agg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := rj.Join(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSeriesJoinVsPerBin(b *testing.B) {
	ps, rs := scene(200_000, 32, 107)
	rj := core.NewRasterJoin(core.WithResolution(512))
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	const bins = 12
	end := int64(ps.Len())
	b.Run("series", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rj.SeriesJoin(req, 0, end, bins); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-bin", func(b *testing.B) {
		width := end / bins
		for i := 0; i < b.N; i++ {
			for bin := 0; bin < bins; bin++ {
				r := req
				r.Time = &core.TimeFilter{Start: int64(bin) * width, End: int64(bin+1) * width}
				if _, err := rj.Join(r); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkJoinContextOverhead measures what threading a context through
// the join path costs when nothing cancels: the E1-style accurate join via
// the legacy wrapper versus JoinContext with a background context. The two
// run the identical kernel; the delta is the per-batch ctx.Err() checks
// (recorded as E15 in EXPERIMENTS.md, acceptance < 1%).
func BenchmarkJoinContextOverhead(b *testing.B) {
	ps, rs := scene(100_000, 32, 111)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	rj := core.NewRasterJoin(core.WithResolution(512), core.WithMode(core.Accurate),
		core.WithPointBatch(4096))
	b.Run("Join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := rj.Join(req); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("JoinContext", func(b *testing.B) {
		ctx := context.Background()
		for i := 0; i < b.N; i++ {
			if _, err := rj.JoinContext(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPointPassScaling shards the accurate join's point pass across
// goroutines (E16 in EXPERIMENTS.md): the E1-style workload at 1 M points,
// worker counts 1/2/4/8. Results are bit-identical at every setting, so
// this is a pure throughput knob; scaling tracks available cores.
func BenchmarkPointPassScaling(b *testing.B) {
	ps, rs := scene(1_000_000, 32, 113)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	for _, workers := range []int{1, 2, 4, 8} {
		rj := core.NewRasterJoin(core.WithResolution(1024), core.WithMode(core.Accurate),
			core.WithPointWorkers(workers))
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			ctx := context.Background()
			for i := 0; i < b.N; i++ {
				if _, err := rj.JoinContext(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(ps.Len())*float64(b.N)/b.Elapsed().Seconds(), "points/s")
		})
	}
}

// BenchmarkSpanCacheWarm isolates the region span cache (E17): a
// polygon-heavy accurate join (2048 tract-scale regions, few points) with
// the cache disabled (scan conversion every join) versus warm (pass 2 and
// the outline pass replay compiled spans).
func BenchmarkSpanCacheWarm(b *testing.B) {
	ps, rs := scene(5_000, 2048, 115)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	run := func(b *testing.B, rj *core.RasterJoin) {
		ctx := context.Background()
		if _, err := rj.JoinContext(ctx, req); err != nil { // warm pools (and cache, when enabled)
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := rj.JoinContext(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) {
		dev := gpu.New(gpu.WithSpanCacheBytes(0))
		run(b, core.NewRasterJoin(core.WithDevice(dev), core.WithResolution(1024),
			core.WithMode(core.Accurate)))
	})
	b.Run("warm", func(b *testing.B) {
		dev := gpu.New()
		run(b, core.NewRasterJoin(core.WithDevice(dev), core.WithResolution(1024),
			core.WithMode(core.Accurate)))
	})
}

func BenchmarkFragmentCacheBuild(b *testing.B) {
	_, rs := scene(100, 64, 109)
	rj := core.NewRasterJoin(core.WithResolution(1024))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rj.BuildFragmentCache(rs); err != nil {
			b.Fatal(err)
		}
	}
}
