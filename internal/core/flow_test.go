package core_test

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
)

// flowScene builds points with destination columns plus a partition layer.
func flowScene(np, nr int, seed int64) (*data.PointSet, *data.RegionSet) {
	bounds := geom.BBox{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	rng := rand.New(rand.NewSource(seed))
	ps := &data.PointSet{Name: "trips",
		X: make([]float64, np), Y: make([]float64, np), T: make([]int64, np)}
	dx := make([]float64, np)
	dy := make([]float64, np)
	v := make([]float64, np)
	for i := 0; i < np; i++ {
		ps.X[i] = rng.Float64() * 1000
		ps.Y[i] = rng.Float64() * 1000
		dx[i] = rng.Float64() * 1000
		dy[i] = rng.Float64() * 1000
		ps.T[i] = int64(i)
		v[i] = rng.Float64() * 10
	}
	ps.Attrs = []data.Column{
		{Name: "v", Values: v},
		{Name: data.DropoffXAttr, Values: dx},
		{Name: data.DropoffYAttr, Values: dy},
	}
	rs := data.VoronoiRegions("cells", bounds, nr, seed+1, data.VoronoiOptions{})
	return ps, rs
}

// bruteFlow computes the exact OD matrix geometrically.
func bruteFlow(ps *data.PointSet, rs *data.RegionSet, pred func(i int) bool) map[int64]int64 {
	dx := ps.Attr(data.DropoffXAttr)
	dy := ps.Attr(data.DropoffYAttr)
	nr := int64(rs.Len())
	locate := func(p geom.Point) int64 {
		for k := range rs.Regions {
			if rs.Regions[k].Poly.Contains(p) {
				return int64(k)
			}
		}
		return -1
	}
	out := map[int64]int64{}
	for i := 0; i < ps.Len(); i++ {
		if pred != nil && !pred(i) {
			continue
		}
		o := locate(geom.Point{X: ps.X[i], Y: ps.Y[i]})
		d := locate(geom.Point{X: dx[i], Y: dy[i]})
		if o < 0 || d < 0 {
			continue
		}
		out[o*nr+d]++
	}
	return out
}

func TestFlowJoinApproximatesBruteForce(t *testing.T) {
	ps, rs := flowScene(4000, 8, 301)
	rj := core.NewRasterJoin(core.WithResolution(1024))
	got, err := rj.FlowJoin(core.Request{Points: ps, Regions: rs, Agg: core.Count},
		data.DropoffXAttr, data.DropoffYAttr)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteFlow(ps, rs, nil)

	// Totals match closely (misassignment only at cell boundaries).
	var wantTotal int64
	for _, v := range want {
		wantTotal += v
	}
	gotTotal := got.Total()
	diff := gotTotal - wantTotal
	if diff < 0 {
		diff = -diff
	}
	if diff > wantTotal/50+5 {
		t.Errorf("flow total %d vs exact %d", gotTotal, wantTotal)
	}
	// Per-cell: large cells are close.
	for cell, wv := range want {
		gv := got.Counts[cell]
		d := gv - wv
		if d < 0 {
			d = -d
		}
		if wv > 50 && d > wv/5 {
			t.Errorf("cell %d: flow %d vs exact %d", cell, gv, wv)
		}
	}
	if got.Regions != rs.Len() {
		t.Errorf("Regions = %d", got.Regions)
	}
	// On a partition with random ODs almost nothing is dropped.
	if got.Dropped > int64(ps.Len())/20 {
		t.Errorf("dropped = %d of %d", got.Dropped, ps.Len())
	}
}

// Accurate-mode flow join must equal the brute OD matrix exactly on a
// partition layer.
func TestAccurateFlowJoinIsExact(t *testing.T) {
	ps, rs := flowScene(3000, 7, 307)
	rj := core.NewRasterJoin(core.WithResolution(256), core.WithMode(core.Accurate))
	got, err := rj.FlowJoin(core.Request{Points: ps, Regions: rs, Agg: core.Count},
		data.DropoffXAttr, data.DropoffYAttr)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteFlow(ps, rs, nil)
	if len(got.Counts) != len(want) {
		t.Fatalf("cells: %d vs %d", len(got.Counts), len(want))
	}
	for cell, wv := range want {
		if got.Counts[cell] != wv {
			t.Fatalf("cell %d: %d vs %d", cell, got.Counts[cell], wv)
		}
	}
	// Exact even at a coarse canvas where most pixels are boundary.
	coarse := core.NewRasterJoin(core.WithResolution(48), core.WithMode(core.Accurate))
	got, err = coarse.FlowJoin(core.Request{Points: ps, Regions: rs, Agg: core.Count},
		data.DropoffXAttr, data.DropoffYAttr)
	if err != nil {
		t.Fatal(err)
	}
	for cell, wv := range want {
		if got.Counts[cell] != wv {
			t.Fatalf("coarse cell %d: %d vs %d", cell, got.Counts[cell], wv)
		}
	}
}

func TestFlowJoinFilters(t *testing.T) {
	ps, rs := flowScene(3000, 6, 303)
	rj := core.NewRasterJoin(core.WithResolution(512))
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count,
		Filters: []core.Filter{{Attr: "v", Min: 0, Max: 5}}}
	got, err := rj.FlowJoin(req, data.DropoffXAttr, data.DropoffYAttr)
	if err != nil {
		t.Fatal(err)
	}
	if got.Filtered == 0 {
		t.Error("filter should have discarded points")
	}
	all, _ := rj.FlowJoin(core.Request{Points: ps, Regions: rs, Agg: core.Count},
		data.DropoffXAttr, data.DropoffYAttr)
	if got.Total() >= all.Total() {
		t.Errorf("filtered total %d should be < %d", got.Total(), all.Total())
	}
}

func TestFlowResultHelpers(t *testing.T) {
	f := &core.FlowResult{Regions: 3, Counts: map[int64]int64{
		0*3 + 1: 10, // 0 -> 1
		2*3 + 0: 30, // 2 -> 0
		1*3 + 1: 20, // 1 -> 1
	}}
	if f.At(2, 0) != 30 || f.At(0, 1) != 10 || f.At(1, 2) != 0 {
		t.Error("At wrong")
	}
	if f.Total() != 60 {
		t.Errorf("Total = %d", f.Total())
	}
	top := f.Top(2)
	if len(top) != 2 || top[0] != (core.Flow{From: 2, To: 0, Count: 30}) ||
		top[1] != (core.Flow{From: 1, To: 1, Count: 20}) {
		t.Errorf("Top = %+v", top)
	}
	if len(f.Top(100)) != 3 {
		t.Error("Top should cap at available flows")
	}
}

func TestFlowJoinErrors(t *testing.T) {
	ps, rs := flowScene(100, 4, 305)
	rj := core.NewRasterJoin(core.WithResolution(64))
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	if _, err := rj.FlowJoin(req, "nope_x", "nope_y"); err == nil {
		t.Error("missing destination columns should fail")
	}
	eps := core.NewRasterJoin(core.WithEpsilon(5))
	if _, err := eps.FlowJoin(req, data.DropoffXAttr, data.DropoffYAttr); err == nil {
		t.Error("epsilon mode should be refused")
	}
	// Empty inputs return an empty matrix.
	empty := &data.PointSet{Name: "e"}
	res, err := rj.FlowJoin(core.Request{Points: empty, Regions: rs, Agg: core.Count},
		data.DropoffXAttr, data.DropoffYAttr)
	if err == nil {
		// empty has no dest columns, so an error is also acceptable; when
		// columns exist the result must be empty.
		if res.Total() != 0 {
			t.Error("empty points should yield no flow")
		}
	}
}
