package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/index"
)

// Streaming the points in batches must equal one monolithic join, per mode.
func TestStreamJoinMatchesMonolithic(t *testing.T) {
	ps, rs := scene(5000, 10, 601)
	for _, mode := range []core.Mode{core.Approximate, core.Accurate} {
		for _, agg := range []core.Agg{core.Count, core.Avg, core.Max} {
			rj := core.NewRasterJoin(core.WithResolution(256), core.WithMode(mode))
			want, err := rj.Join(core.Request{Points: ps, Regions: rs, Agg: agg, Attr: "v"})
			if err != nil {
				t.Fatal(err)
			}
			stream, err := rj.NewStream(rs, agg, "v", nil, nil)
			if err != nil {
				t.Fatal(err)
			}
			// Five uneven batches.
			for _, cut := range [][2]int{{0, 700}, {700, 1500}, {1500, 1501}, {1501, 4000}, {4000, 5000}} {
				if err := stream.Add(ps.Slice(cut[0], cut[1])); err != nil {
					t.Fatal(err)
				}
			}
			if stream.Batches() != 5 {
				t.Fatalf("batches = %d", stream.Batches())
			}
			got, err := stream.Finalize()
			if err != nil {
				t.Fatal(err)
			}
			statsExactlyEqual(t, got, want, mode.String()+"/"+agg.String())
			// Min/Max fields too.
			if agg == core.Max {
				for k := range want.Stats {
					if got.Value(k, core.Max) != want.Value(k, core.Max) {
						t.Fatalf("region %d max %v vs %v",
							k, got.Value(k, core.Max), want.Value(k, core.Max))
					}
				}
			}
		}
	}
}

// Accurate streaming equals brute force over the concatenated batches.
func TestStreamJoinExact(t *testing.T) {
	ps, rs := scene(4000, 8, 603)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v",
		Filters: []core.Filter{{Attr: "v", Min: 2, Max: 9}}}
	want, err := (&index.BruteForce{}).Join(req)
	if err != nil {
		t.Fatal(err)
	}
	rj := core.NewRasterJoin(core.WithResolution(128), core.WithMode(core.Accurate))
	stream, err := rj.NewStream(rs, core.Sum, "v", req.Filters, nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < ps.Len(); s += 1000 {
		e := s + 1000
		if e > ps.Len() {
			e = ps.Len()
		}
		if err := stream.Add(ps.Slice(s, e)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := stream.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	statsExactlyEqual(t, got, want, "streamed accurate vs brute force")
}

func TestStreamJoinErrors(t *testing.T) {
	ps, rs := scene(100, 4, 605)
	rj := core.NewRasterJoin(core.WithResolution(64))
	if _, err := rj.NewStream(rs, core.Sum, "", nil, nil); err == nil {
		t.Error("SUM without attribute should fail")
	}
	if _, err := core.NewRasterJoin(core.WithEpsilon(5)).NewStream(rs, core.Count, "", nil, nil); err == nil {
		t.Error("epsilon mode should be refused")
	}
	big := core.NewRasterJoin(core.WithResolution(512),
		core.WithDevice(gpu.New(gpu.WithMaxTextureSize(64))))
	if _, err := big.NewStream(rs, core.Count, "", nil, nil); err == nil {
		t.Error("oversized canvas should be refused")
	}
	// Bad batch: missing attribute.
	stream, err := rj.NewStream(rs, core.Sum, "v", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	bad := ps.Slice(0, 10)
	bad.Attrs = nil
	if err := stream.Add(bad); err == nil {
		t.Error("batch without the aggregate attribute should fail")
	}
	// Double finalize.
	if _, err := stream.Finalize(); err != nil {
		t.Fatal(err)
	}
	if _, err := stream.Finalize(); err == nil {
		t.Error("double finalize should fail")
	}
	if err := stream.Add(ps); err == nil {
		t.Error("add after finalize should fail")
	}
}
