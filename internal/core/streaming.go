package core

import (
	"context"
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/raster"
)

// StreamJoin evaluates one spatial aggregation over a point stream: the
// polygon side and the canvas are fixed up front, then point batches are
// drawn as they arrive and a final polygon pass produces the result. This
// is the paper's bigger-than-GPU-memory pipeline generalized to
// bigger-than-RAM inputs — each batch can be read from disk, aggregated,
// and discarded.
//
// The accurate mode is supported: boundary-pixel observations (coordinates
// plus the aggregated value) are retained across batches, which is the
// only per-point state exactness requires.
type StreamJoin struct {
	r       *RasterJoin
	regions *data.RegionSet
	agg     Agg
	attr    string
	filters []Filter
	time    *TimeFilter

	canvas   *gpu.Canvas
	countTex *gpu.Texture
	sumTex   *gpu.Texture
	minTex   *gpu.Texture
	maxTex   *gpu.Texture

	sp           *raster.RegionSpans
	slotOf       []int32
	regionPixels [][]int32
	bins         [][]obs

	batches   int64
	points    int64
	finalized bool
	released  bool
}

// obs is one retained boundary observation.
type obs struct {
	x, y, v float64
}

// NewStream prepares a streaming aggregation over the region layer. The
// canvas must fit a single device pass (stream state is per-pixel); lower
// the resolution or raise the device texture limit otherwise. Filters and
// the time window apply to every batch.
func (r *RasterJoin) NewStream(regions *data.RegionSet, agg Agg, attr string,
	filters []Filter, tf *TimeFilter) (*StreamJoin, error) {

	if r.epsilon > 0 {
		return nil, fmt.Errorf("core: streaming join requires resolution mode, not ε")
	}
	if agg.NeedsAttr() && attr == "" {
		return nil, fmt.Errorf("core: %v needs an attribute", agg)
	}
	window := regions.Bounds()
	if window.IsEmpty() {
		return nil, fmt.Errorf("core: region layer %q has no extent", regions.Name)
	}
	full := r.fullTransform(window)
	c, err := r.dev.NewCanvas(full.World, full.W, full.H)
	if err != nil {
		return nil, fmt.Errorf("core: streaming join: %w (reduce the resolution)", err)
	}
	sp, err := r.cachedSpans(context.Background(), regions, c.T)
	if err != nil {
		c.Release()
		return nil, err
	}
	s := &StreamJoin{
		r: r, regions: regions, agg: agg, attr: attr,
		filters: filters, time: tf,
		canvas:   c,
		sp:       sp,
		countTex: r.dev.AcquireTexture(c.T.W, c.T.H),
	}
	switch agg {
	case Sum, Avg:
		s.sumTex = r.dev.AcquireTexture(c.T.W, c.T.H)
	case Min:
		s.minTex = r.dev.AcquireTexture(c.T.W, c.T.H)
		s.minTex.Fill(math.Inf(1))
	case Max:
		s.maxTex = r.dev.AcquireTexture(c.T.W, c.T.H)
		s.maxTex.Fill(math.Inf(-1))
	}
	if r.mode == Accurate {
		var boundaryList []int32
		boundaryList, s.regionPixels = r.outlinePass(c, regions, sp)
		s.slotOf = make([]int32, c.T.W*c.T.H)
		for i := range s.slotOf {
			s.slotOf[i] = -1
		}
		for i, idx := range boundaryList {
			s.slotOf[idx] = int32(i)
		}
		s.bins = make([][]obs, len(boundaryList))
	}
	return s, nil
}

// Add streams one batch of points into the aggregation. The batch must
// carry the aggregate attribute and every filtered attribute; it is not
// retained (beyond boundary observations in accurate mode).
func (s *StreamJoin) Add(ps *data.PointSet) error {
	return s.AddContext(context.Background(), ps)
}

// AddContext is Add under a request context. Cancellation mid-batch leaves
// the textures with a partial batch blended in, so the stream is aborted —
// its resources released and further use rejected — rather than left in a
// state that would silently undercount.
func (s *StreamJoin) AddContext(ctx context.Context, ps *data.PointSet) error {
	return s.addContext(ctx, Request{Points: ps, Regions: s.regions, Agg: s.agg,
		Attr: s.attr, Filters: s.filters, Time: s.time})
}

// AddSource streams one columnar block source (e.g. a segment store) into
// the aggregation: blocks are zone-pruned, decoded one at a time under the
// store's cache budget, and never retained — the fully out-of-core
// formulation of Add.
func (s *StreamJoin) AddSource(src data.PointSource) error {
	return s.AddSourceContext(context.Background(), src)
}

// AddSourceContext is AddSource under a request context, with AddContext's
// abort-on-cancellation contract.
func (s *StreamJoin) AddSourceContext(ctx context.Context, src data.PointSource) error {
	return s.addContext(ctx, Request{Source: src, Regions: s.regions, Agg: s.agg,
		Attr: s.attr, Filters: s.filters, Time: s.time})
}

func (s *StreamJoin) addContext(ctx context.Context, req Request) error {
	if s.finalized {
		return fmt.Errorf("core: stream already finalized")
	}
	if err := req.Validate(); err != nil {
		return err
	}
	sc, err := s.r.newScan(req)
	if err != nil {
		return err
	}
	sc.setWorld(s.canvas.T.World)
	src := req.Data()
	attrIdx := -1
	if s.agg.NeedsAttr() {
		attrIdx = data.AttrIndex(src, s.attr)
	}
	w := s.canvas.T.W
	err = sc.piecesRange(ctx, sc.Lo, sc.Hi, func(blk *data.Block, lo, hi int, needPred bool) error {
		base := blk.Base
		var attr []float64
		if attrIdx >= 0 {
			attr = blk.Attr[attrIdx]
		}
		return s.r.drawPointsBatchedParallel(ctx, s.canvas, lo, hi,
			func(i int) (float64, float64) { j := i - base; return blk.X[j], blk.Y[j] },
			func(px, py, i int) {
				if needPred && !sc.pred(blk, i) {
					return
				}
				j := i - base
				s.countTex.Add(px, py, 1)
				var v float64
				if attr != nil {
					v = attr[j]
				}
				switch {
				case s.sumTex != nil:
					s.sumTex.Add(px, py, v)
				case s.minTex != nil:
					s.minTex.TakeMin(px, py, v)
				case s.maxTex != nil:
					s.maxTex.TakeMax(px, py, v)
				}
				if s.slotOf != nil {
					if slot := s.slotOf[py*w+px]; slot >= 0 {
						s.bins[slot] = append(s.bins[slot], obs{x: blk.X[j], y: blk.Y[j], v: v})
					}
				}
			})
	})
	if err != nil {
		s.Abort()
		return err
	}
	s.batches++
	s.points += int64(sc.Hi - sc.Lo)
	return nil
}

// Abort ends the stream without a result, releasing its canvas and pooled
// textures. Idempotent; called automatically when a batch is canceled
// mid-draw.
func (s *StreamJoin) Abort() {
	s.finalized = true
	s.release()
}

// release returns the stream's device resources. Idempotent.
func (s *StreamJoin) release() {
	if s.released {
		return
	}
	s.released = true
	s.canvas.Release()
	dev := s.r.dev
	dev.ReleaseTexture(s.countTex)
	dev.ReleaseTexture(s.sumTex)
	dev.ReleaseTexture(s.minTex)
	dev.ReleaseTexture(s.maxTex)
	s.countTex, s.sumTex, s.minTex, s.maxTex = nil, nil, nil, nil
}

// Batches returns how many batches were added.
func (s *StreamJoin) Batches() int64 { return s.batches }

// Finalize runs the polygon pass over the accumulated textures and returns
// the result. The stream cannot be added to afterwards.
func (s *StreamJoin) Finalize() (*Result, error) {
	return s.FinalizeContext(context.Background())
}

// FinalizeContext is Finalize under a request context. The stream's device
// resources are released on every exit path — including cancellation
// mid-polygon-pass, which returns ctx.Err() and no result.
func (s *StreamJoin) FinalizeContext(ctx context.Context) (*Result, error) {
	if s.finalized {
		return nil, fmt.Errorf("core: stream already finalized")
	}
	s.finalized = true
	defer s.release()
	res := &Result{
		Stats:     make([]RegionStat, s.regions.Len()),
		Algorithm: s.r.Name() + "-stream",
		CanvasW:   s.canvas.T.W, CanvasH: s.canvas.T.H,
		Tiles:     1,
		PixelSize: s.canvas.T.PixelWidth(),
	}
	w := s.canvas.T.W
	useAttr := s.agg.NeedsAttr()
	minMax := s.agg == Min || s.agg == Max
	err := s.r.parallelRegionsCtx(ctx, s.regions.Len(), func(k int) {
		poly := s.regions.Regions[k].Poly
		var local RegionStat
		var scratch *raster.Bitmap
		if s.slotOf != nil {
			scratch = raster.NewBitmap(s.canvas.T.W, s.canvas.T.H)
			for _, idx := range s.regionPixels[k] {
				scratch.Set(int(idx)%w, int(idx)/w)
			}
		}
		drawRegion(s.canvas, s.sp, poly, k, func(px, py int) {
			if scratch != nil && scratch.Get(px, py) {
				return
			}
			v := s.countTex.At(px, py)
			if v == 0 {
				return
			}
			pixel := RegionStat{Count: int64(v)}
			switch {
			case s.sumTex != nil:
				pixel.Sum = s.sumTex.At(px, py)
			case s.minTex != nil:
				m := s.minTex.At(px, py)
				pixel.Min, pixel.Max = m, m
			case s.maxTex != nil:
				m := s.maxTex.At(px, py)
				pixel.Min, pixel.Max = m, m
			}
			local.Merge(pixel)
		})
		if scratch != nil {
			for _, idx := range s.regionPixels[k] {
				for _, o := range s.bins[s.slotOf[idx]] {
					if !poly.Contains(geom.Point{X: o.x, Y: o.y}) {
						continue
					}
					switch {
					case minMax:
						local.Observe(o.v)
					case useAttr:
						local.Count++
						//lint:ignore floataccum boundary fix-up over one pixel's point bin; dozens of terms at most
						local.Sum += o.v
					default:
						local.Count++
					}
				}
			}
		}
		res.Stats[k].Merge(local)
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
