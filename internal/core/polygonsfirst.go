package core

import (
	"context"
	"sync"

	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/raster"
)

// Strategy selects which side of the join is rasterized first.
type Strategy int

const (
	// PointsFirst renders the points into count/sum textures, then probes
	// them with one polygon draw per region — the default formulation.
	// Work: O(points) + O(total polygon fragments) texture reads.
	PointsFirst Strategy = iota
	// PolygonsFirst renders the regions into a polygon-ID texture, then
	// streams the points once, each fragment reading its pixel's region ID —
	// the paper's alternative formulation. Work: O(total polygon fragments)
	// + O(points) ID reads; it wins when regions cover many pixels or many
	// aggregates share one polygon render.
	PolygonsFirst
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	if s == PolygonsFirst {
		return "polygons-first"
	}
	return "points-first"
}

// WithStrategy selects the execution strategy (default PointsFirst).
func WithStrategy(s Strategy) RJOption { return func(r *RasterJoin) { r.strategy = s } }

// Strategy returns the configured execution strategy.
func (r *RasterJoin) Strategy() Strategy { return r.strategy }

// idState is the polygon-ID render target: one region ID per pixel, with an
// overflow table for the (rare, or overlap-induced) pixels covered by more
// than one region. IDs are region positions; -1 is empty.
type idState struct {
	w   int
	ids []int32
	// extra holds additional covering regions for pixels where ids is
	// already taken — the multi-layer case real GPUs handle with k-buffer
	// style tricks.
	extra map[int32][]int32
}

func newIDState(w, h int) *idState {
	s := &idState{w: w, ids: make([]int32, w*h), extra: make(map[int32][]int32)}
	for i := range s.ids {
		s.ids[i] = -1
	}
	return s
}

func (s *idState) add(px, py int, k int32) {
	i := int32(py*s.w + px)
	if s.ids[i] == -1 {
		s.ids[i] = k
		return
	}
	s.extra[i] = append(s.extra[i], k)
}

// owners calls fn with every region covering pixel index i.
func (s *idState) owners(i int32, fn func(k int32)) {
	if s.ids[i] == -1 {
		return
	}
	fn(s.ids[i])
	for _, k := range s.extra[i] {
		fn(k)
	}
}

// renderTilePolygonsFirst runs the polygons-first pipeline on one tile:
//
//  1. ID pass — every region is drawn into the polygon-ID texture. In
//     accurate mode, fragments in the region's own boundary pixels are
//     withheld from the ID texture (their membership is uncertain).
//  2. Point pass — each filtered point reads its pixel's owner IDs and
//     accumulates directly into those regions' slots. In accurate mode,
//     points in boundary pixels instead take exact point-in-polygon tests
//     against the regions whose boundaries cross that pixel.
//
// Aggregation per region slot uses shard-local accumulators: the point
// stream is the only writer, so a single pass owns all slots.
func (r *RasterJoin) renderTilePolygonsFirst(ctx context.Context, c *gpu.Canvas, req Request, stats []RegionStat,
	sc *Scan, attrIdx int) error {

	w, h := c.T.W, c.T.H
	regions := req.Regions.Regions
	minMax := req.Agg == Min || req.Agg == Max

	// Compiled region spans for the ID and outline passes (nil when the
	// span cache is disabled).
	sp, err := r.cachedSpans(ctx, req.Regions, c.T)
	if err != nil {
		return err
	}

	// Accurate mode: outline pass first, then candidate lists per boundary
	// pixel (the regions whose edges cross it).
	var slotOf []int32
	var candidates [][]int32 // per boundary-pixel slot
	var regionPixels [][]int32
	if r.mode == Accurate {
		var boundaryList []int32
		boundaryList, regionPixels = r.outlinePass(c, req.Regions, sp)
		slotOf = make([]int32, w*h)
		for i := range slotOf {
			slotOf[i] = -1
		}
		for s, idx := range boundaryList {
			slotOf[idx] = int32(s)
		}
		candidates = make([][]int32, len(boundaryList))
		for k := range regionPixels {
			for _, idx := range regionPixels[k] {
				s := slotOf[idx]
				candidates[s] = append(candidates[s], int32(k))
			}
		}
	}

	// Pass 1: polygon-ID texture. With accurate mode, a fragment in the
	// region's own boundary pixel is withheld (its membership is resolved
	// exactly below); a fragment in *another* region's boundary pixel is
	// still certain — no edge of this region crosses that pixel, so the
	// pixel lies entirely inside it.
	idTex := newIDState(w, h)
	var scratch *raster.Bitmap
	if r.mode == Accurate {
		scratch = raster.NewBitmap(w, h)
	}
	for k := range regions {
		if err := ctx.Err(); err != nil {
			return err
		}
		k32 := int32(k)
		if scratch != nil {
			for _, idx := range regionPixels[k] {
				scratch.Set(int(idx)%w, int(idx)/w)
			}
		}
		drawRegion(c, sp, regions[k].Poly, k, func(px, py int) {
			if scratch != nil && scratch.Get(px, py) {
				return
			}
			idTex.add(px, py, k32)
		})
		if scratch != nil {
			for _, idx := range regionPixels[k] {
				scratch.Unset(int(idx)%w, int(idx)/w)
			}
		}
	}

	// Pass 2: stream the points, sharded across workers with per-shard
	// accumulators (the GPU uses atomics; shard-merge is the deterministic
	// software analogue). The shader writes region-keyed slots, so this pass
	// cannot use the pixel-striped DrawPointsParallel merge; it shards the
	// accumulators themselves instead, with the shard count following the
	// same -point-workers knob.
	lo, hi := sc.Lo, sc.Hi
	workers := r.pointWorkers
	n := hi - lo
	if workers > 1 && n < 4096 {
		workers = 1
	}
	if workers < 1 {
		workers = 1
	}
	shard := (n + workers - 1) / workers
	if shard < 1 {
		shard = 1
	}
	type partial struct {
		stats []RegionStat
	}
	// Race audit (sharedwrite-clean): every goroutine accumulates into the
	// `part` slice it receives as an argument; the canvas draw calls only
	// read shared textures (idTex, slotOf, candidates are immutable once
	// built) and the scan, which is frozen before the fan-out. Partials
	// merge after wg.Wait().
	//
	// Shards cut the global [lo, hi) range — not the surviving blocks — so
	// the partial merge order, and with it the float Sum, is identical at
	// every worker count and to the in-RAM path; block iteration only clips
	// within each shard.
	parts := make([]partial, 0, workers)
	var wg sync.WaitGroup
	for s := lo; s < hi; s += shard {
		e := s + shard
		if e > hi {
			e = hi
		}
		p := partial{stats: make([]RegionStat, len(stats))}
		parts = append(parts, p)
		wg.Add(1)
		go func(s, e int, part []RegionStat) {
			defer wg.Done()
			// Each shard issues its own (possibly batched) draw calls on
			// the shared canvas; cancellation surfaces as ctx.Err() after
			// the barrier, so the per-shard error can be dropped here.
			_ = sc.piecesRange(ctx, s, e, func(blk *data.Block, plo, phi int, needPred bool) error {
				base := blk.Base
				var attr []float64
				if attrIdx >= 0 {
					attr = blk.Attr[attrIdx]
				}
				return r.drawPointsBatched(ctx, c, plo, phi,
					func(i int) (float64, float64) { j := i - base; return blk.X[j], blk.Y[j] },
					func(px, py, i int) {
						if needPred && !sc.pred(blk, i) {
							return
						}
						j := i - base
						idx := int32(py*w + px)
						accum := func(k int32) {
							switch {
							case minMax:
								part[k].Observe(attr[j])
							case attr != nil:
								part[k].Count++
								part[k].Sum += attr[j]
							default:
								part[k].Count++
							}
						}
						if slotOf != nil {
							if slot := slotOf[idx]; slot >= 0 {
								// Boundary pixel: exact tests against crossing
								// regions; certain owners still apply.
								pt := geom.Point{X: blk.X[j], Y: blk.Y[j]}
								for _, k := range candidates[slot] {
									if regions[k].Poly.Contains(pt) {
										accum(k)
									}
								}
								idTex.owners(idx, accum)
								return
							}
						}
						idTex.owners(idx, accum)
					})
			})
		}(s, e, p.stats)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, p := range parts {
		for k := range p.stats {
			stats[k].Merge(p.stats[k])
		}
	}
	return nil
}
