package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/gpu"
)

func TestSeriesJoinMatchesPerBinJoins(t *testing.T) {
	ps, rs := scene(4000, 10, 81)
	rj := core.NewRasterJoin(core.WithResolution(256))
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}

	const bins = 6
	start, end := int64(0), int64(ps.Len())
	series, err := rj.SeriesJoin(req, start, end, bins)
	if err != nil {
		t.Fatal(err)
	}
	if len(series.Stats) != bins || len(series.BinStarts) != bins {
		t.Fatalf("series shape: %d stats, %d bin starts", len(series.Stats), len(series.BinStarts))
	}
	width := (end - start) / bins
	for b := 0; b < bins; b++ {
		binEnd := series.BinStarts[b] + width
		if b == bins-1 {
			binEnd = end
		}
		perBin := req
		perBin.Time = &core.TimeFilter{Start: series.BinStarts[b], End: binEnd}
		want, err := rj.Join(perBin)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want.Stats {
			if series.Stats[b][k] != want.Stats[k] {
				t.Fatalf("bin %d region %d: series %+v vs per-bin %+v",
					b, k, series.Stats[b][k], want.Stats[k])
			}
		}
	}
}

// Accurate series must match per-bin accurate joins — i.e. be exact —
// bit-for-bit, since the cached outline machinery replaces per-bin work.
func TestAccurateSeriesJoinIsExact(t *testing.T) {
	ps, rs := scene(3000, 8, 91)
	rj := core.NewRasterJoin(core.WithResolution(128), core.WithMode(core.Accurate))
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}

	const bins = 5
	start, end := int64(0), int64(ps.Len())
	series, err := rj.SeriesJoin(req, start, end, bins)
	if err != nil {
		t.Fatal(err)
	}
	width := (end - start) / bins
	for b := 0; b < bins; b++ {
		binEnd := series.BinStarts[b] + width
		if b == bins-1 {
			binEnd = end
		}
		perBin := req
		perBin.Time = &core.TimeFilter{Start: series.BinStarts[b], End: binEnd}
		want, err := rj.Join(perBin)
		if err != nil {
			t.Fatal(err)
		}
		for k := range want.Stats {
			if series.Stats[b][k] != want.Stats[k] {
				t.Fatalf("bin %d region %d: accurate series %+v vs per-bin %+v",
					b, k, series.Stats[b][k], want.Stats[k])
			}
		}
	}
}

func TestSeriesJoinUnsortedTimes(t *testing.T) {
	ps, rs := scene(2000, 6, 83)
	// Scramble time order; the series must still match per-bin joins.
	for i := 0; i < ps.Len()-1; i += 2 {
		ps.T[i], ps.T[i+1] = ps.T[i+1], ps.T[i]
	}
	rj := core.NewRasterJoin(core.WithResolution(128))
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	series, err := rj.SeriesJoin(req, 0, int64(ps.Len()), 4)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for b := range series.Stats {
		for k := range series.Stats[b] {
			total += series.Stats[b][k].Count
		}
	}
	full, err := rj.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	if total != full.TotalCount() {
		t.Errorf("series total %d != full join total %d", total, full.TotalCount())
	}
}

func TestSeriesJoinWithFilters(t *testing.T) {
	ps, rs := scene(3000, 8, 85)
	rj := core.NewRasterJoin(core.WithResolution(128))
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count,
		Filters: []core.Filter{{Attr: "v", Min: 2, Max: 7}}}
	series, err := rj.SeriesJoin(req, 0, int64(ps.Len()), 3)
	if err != nil {
		t.Fatal(err)
	}
	unfiltered, err := rj.SeriesJoin(core.Request{Points: ps, Regions: rs, Agg: core.Count},
		0, int64(ps.Len()), 3)
	if err != nil {
		t.Fatal(err)
	}
	var ft, ut int64
	for b := range series.Stats {
		for k := range series.Stats[b] {
			ft += series.Stats[b][k].Count
			ut += unfiltered.Stats[b][k].Count
		}
	}
	if ft == 0 || ft >= ut {
		t.Errorf("filtered total %d should be in (0, %d)", ft, ut)
	}
}

func TestSeriesJoinErrors(t *testing.T) {
	ps, rs := scene(100, 4, 87)
	rj := core.NewRasterJoin(core.WithResolution(64))
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	if _, err := rj.SeriesJoin(req, 0, 100, 0); err == nil {
		t.Error("zero bins should fail")
	}
	if _, err := rj.SeriesJoin(req, 100, 100, 2); err == nil {
		t.Error("empty range should fail")
	}
	noT := &data.PointSet{Name: "noT", X: []float64{1}, Y: []float64{1}}
	if _, err := rj.SeriesJoin(core.Request{Points: noT, Regions: rs, Agg: core.Count},
		0, 100, 2); err == nil {
		t.Error("missing timestamps should fail")
	}
	eps := core.NewRasterJoin(core.WithEpsilon(5))
	if _, err := eps.SeriesJoin(req, 0, 100, 2); err == nil {
		t.Error("epsilon mode should refuse the fragment cache")
	}
	// Canvas too big for the device.
	big := core.NewRasterJoin(core.WithResolution(512),
		core.WithDevice(gpu.New(gpu.WithMaxTextureSize(128))))
	if _, err := big.SeriesJoin(req, 0, 100, 2); err == nil {
		t.Error("oversized cache canvas should fail with advice")
	}
}

func TestSeriesResultValue(t *testing.T) {
	ps, rs := scene(500, 4, 93)
	rj := core.NewRasterJoin(core.WithResolution(64), core.WithWorkers(1))
	series, err := rj.SeriesJoin(core.Request{Points: ps, Regions: rs,
		Agg: core.Avg, Attr: "v"}, 0, int64(ps.Len()), 2)
	if err != nil {
		t.Fatal(err)
	}
	for b := range series.Stats {
		for k := range series.Stats[b] {
			want := series.Stats[b][k].Value(core.Avg)
			if got := series.Value(b, k, core.Avg); got != want {
				t.Fatalf("Value(%d,%d) = %v, want %v", b, k, got, want)
			}
		}
	}
}

func TestFragmentCacheStructure(t *testing.T) {
	ps, rs := scene(100, 5, 89)
	_ = ps
	rj := core.NewRasterJoin(core.WithResolution(128))
	fc, err := rj.BuildFragmentCache(rs)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Regions() != rs.Len() {
		t.Fatalf("cached regions = %d, want %d", fc.Regions(), rs.Len())
	}
	// Fragment counts must equal a direct polygon rasterization.
	total := 0
	for k := 0; k < fc.Regions(); k++ {
		total += len(fc.Fragments(k))
	}
	if total != fc.TotalFragments() {
		t.Errorf("fragment sum %d != total %d", total, fc.TotalFragments())
	}
	if total == 0 {
		t.Error("no fragments cached")
	}
	// Empty region set.
	fc, err = rj.BuildFragmentCache(&data.RegionSet{Name: "empty"})
	if err != nil {
		t.Fatal(err)
	}
	if fc.Regions() != 0 || fc.TotalFragments() != 0 {
		t.Error("empty cache should be empty")
	}
}
