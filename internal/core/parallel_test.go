package core_test

// Property tests for the parallel sharded point pass and the region span
// cache: at any worker count, and on warm or cold span caches, every joiner
// must produce bit-identical results to the sequential/cold path. The
// cancellation tests assert the abort hygiene contract (pool drained, no
// goroutines leaked) holds for the parallel path too.

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/gpu"
	"repro/internal/trace"
)

// statsBitIdentical requires exact equality — including float bit patterns —
// between two result stat slices.
func statsBitIdentical(t *testing.T, got, want []core.RegionStat, context string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d vs %d regions", context, len(got), len(want))
	}
	for k := range got {
		g, w := got[k], want[k]
		if g.Count != w.Count {
			t.Fatalf("%s: region %d count %d, want %d", context, k, g.Count, w.Count)
		}
		if math.Float64bits(g.Sum) != math.Float64bits(w.Sum) {
			t.Fatalf("%s: region %d sum %v, want %v (not bit-identical)", context, k, g.Sum, w.Sum)
		}
		if math.Float64bits(g.Min) != math.Float64bits(w.Min) ||
			math.Float64bits(g.Max) != math.Float64bits(w.Max) {
			t.Fatalf("%s: region %d min/max %v/%v, want %v/%v",
				context, k, g.Min, g.Max, w.Min, w.Max)
		}
	}
}

// TestPointWorkersBitIdentical: the points-first pipeline must return
// bit-identical results at any -point-workers setting, for every
// aggregation kind in both modes, with the span cache enabled and disabled.
func TestPointWorkersBitIdentical(t *testing.T) {
	ps, rs := scene(30_000, 10, 307)
	cases := []struct {
		agg  core.Agg
		attr string
	}{
		{core.Count, ""}, {core.Sum, "v"}, {core.Avg, "v"}, {core.Min, "v"}, {core.Max, "v"},
	}
	for _, mode := range []core.Mode{core.Approximate, core.Accurate} {
		for _, tc := range cases {
			req := core.Request{Points: ps, Regions: rs, Agg: tc.agg, Attr: tc.attr}
			seq := core.NewRasterJoin(core.WithMode(mode), core.WithResolution(256),
				core.WithPointWorkers(1))
			want, err := seq.Join(req)
			if err != nil {
				t.Fatalf("%v/%v sequential: %v", mode, tc.agg, err)
			}
			for _, workers := range []int{2, 3, 7} {
				for _, cacheBytes := range []int64{0, gpu.DefaultSpanCacheBytes} {
					dev := gpu.New(gpu.WithSpanCacheBytes(cacheBytes))
					par := core.NewRasterJoin(core.WithDevice(dev), core.WithMode(mode),
						core.WithResolution(256), core.WithPointWorkers(workers))
					got, err := par.Join(req)
					if err != nil {
						t.Fatalf("%v/%v workers=%d: %v", mode, tc.agg, workers, err)
					}
					statsBitIdentical(t, got.Stats, want.Stats, par.Name())
				}
			}
		}
	}
}

// TestPolygonsFirstPointWorkers: the polygons-first pipeline shards its
// region-keyed accumulators per worker. Exact aggregates (COUNT/MIN/MAX)
// are identical at any worker count; SUM merges per-shard partials in shard
// order, so it is deterministic per worker count and numerically equal
// within float tolerance across counts.
func TestPolygonsFirstPointWorkers(t *testing.T) {
	ps, rs := scene(25_000, 8, 311)
	for _, mode := range []core.Mode{core.Approximate, core.Accurate} {
		for _, agg := range []core.Agg{core.Count, core.Min, core.Max, core.Sum} {
			attr := "v"
			if agg == core.Count {
				attr = ""
			}
			req := core.Request{Points: ps, Regions: rs, Agg: agg, Attr: attr}
			seq := core.NewRasterJoin(core.WithMode(mode), core.WithResolution(256),
				core.WithStrategy(core.PolygonsFirst), core.WithPointWorkers(1))
			want, err := seq.Join(req)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 5} {
				par := core.NewRasterJoin(core.WithMode(mode), core.WithResolution(256),
					core.WithStrategy(core.PolygonsFirst), core.WithPointWorkers(workers))
				got, err := par.Join(req)
				if err != nil {
					t.Fatal(err)
				}
				if agg == core.Count {
					statsBitIdentical(t, got.Stats, want.Stats, par.Name())
				} else {
					// Min/Max aggregates are exact per shard, but Observe
					// also folds a float Sum, which the shard merge
					// reassociates — compare it with tolerance like SUM.
					statsExactlyEqual(t, got, want, par.Name())
					for k := range got.Stats {
						if math.Float64bits(got.Stats[k].Min) != math.Float64bits(want.Stats[k].Min) ||
							math.Float64bits(got.Stats[k].Max) != math.Float64bits(want.Stats[k].Max) {
							t.Fatalf("%s: region %d min/max not bit-identical", par.Name(), k)
						}
					}
				}
				// Determinism: the same worker count must reproduce itself
				// bit-for-bit.
				again, err := par.Join(req)
				if err != nil {
					t.Fatal(err)
				}
				statsBitIdentical(t, again.Stats, got.Stats, par.Name()+" rerun")
			}
		}
	}
}

// TestSpanCacheWarmPathBitIdentical: a warm span cache must replay to
// exactly the cold result, and the cache must actually be hit.
func TestSpanCacheWarmPathBitIdentical(t *testing.T) {
	ps, rs := scene(15_000, 12, 313)
	dev := gpu.New()
	rj := core.NewRasterJoin(core.WithDevice(dev), core.WithMode(core.Accurate),
		core.WithResolution(512))
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}

	cold, err := rj.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	st := dev.SpanCache().Stats()
	if st.Misses == 0 || st.Entries == 0 {
		t.Fatalf("cold join did not populate the span cache: %+v", st)
	}
	warm, err := rj.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	if hits := dev.SpanCache().Stats().Hits; hits == 0 {
		t.Fatal("warm join did not hit the span cache")
	}
	statsBitIdentical(t, warm.Stats, cold.Stats, "warm vs cold")

	// And both must match a device with the cache disabled.
	off := core.NewRasterJoin(core.WithDevice(gpu.New(gpu.WithSpanCacheBytes(0))),
		core.WithMode(core.Accurate), core.WithResolution(512))
	want, err := off.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	statsBitIdentical(t, cold.Stats, want.Stats, "cached vs uncached")
}

// TestSeriesJoinAcrossPointWorkers: the per-bin parallel point pass feeds
// textures that are bitwise equal to the sequential ones, so series results
// are bit-identical at any worker count, warm or cold cache.
func TestSeriesJoinAcrossPointWorkers(t *testing.T) {
	ps, rs := scene(20_000, 8, 317)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	for _, mode := range []core.Mode{core.Approximate, core.Accurate} {
		seq := core.NewRasterJoin(core.WithMode(mode), core.WithResolution(256),
			core.WithPointWorkers(1))
		want, err := seq.SeriesJoin(req, 0, int64(ps.Len()), 6)
		if err != nil {
			t.Fatal(err)
		}
		par := core.NewRasterJoin(core.WithMode(mode), core.WithResolution(256),
			core.WithPointWorkers(4))
		for round := 0; round < 2; round++ { // cold then warm span cache
			got, err := par.SeriesJoin(req, 0, int64(ps.Len()), 6)
			if err != nil {
				t.Fatal(err)
			}
			for b := range want.Stats {
				statsBitIdentical(t, got.Stats[b], want.Stats[b], "series bin")
			}
		}
	}
}

// TestFlowJoinAcrossPointWorkers: the OD matrix is integer-valued, so the
// per-worker partial merge is exact — identical at any worker count.
func TestFlowJoinAcrossPointWorkers(t *testing.T) {
	ps, rs := flowScene(20_000, 8, 331)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Count}
	for _, mode := range []core.Mode{core.Approximate, core.Accurate} {
		seq := core.NewRasterJoin(core.WithMode(mode), core.WithResolution(256),
			core.WithPointWorkers(1))
		want, err := seq.FlowJoin(req, data.DropoffXAttr, data.DropoffYAttr)
		if err != nil {
			t.Fatal(err)
		}
		par := core.NewRasterJoin(core.WithMode(mode), core.WithResolution(256),
			core.WithPointWorkers(5))
		got, err := par.FlowJoin(req, data.DropoffXAttr, data.DropoffYAttr)
		if err != nil {
			t.Fatal(err)
		}
		if got.Dropped != want.Dropped || got.Filtered != want.Filtered {
			t.Fatalf("dropped/filtered %d/%d, want %d/%d",
				got.Dropped, got.Filtered, want.Dropped, want.Filtered)
		}
		if len(got.Counts) != len(want.Counts) {
			t.Fatalf("%d OD cells, want %d", len(got.Counts), len(want.Counts))
		}
		for cell, v := range want.Counts {
			if got.Counts[cell] != v {
				t.Fatalf("cell %d = %d, want %d", cell, got.Counts[cell], v)
			}
		}
	}
}

// TestMultiAndStreamAcrossPointWorkers: the multi-aggregate and streaming
// pipelines ride the same parallel batched point pass.
func TestMultiAndStreamAcrossPointWorkers(t *testing.T) {
	ps, rs := scene(20_000, 8, 337)
	specs := []core.AggSpec{{Agg: core.Count}, {Agg: core.Sum, Attr: "v"}}
	for _, mode := range []core.Mode{core.Approximate, core.Accurate} {
		seq := core.NewRasterJoin(core.WithMode(mode), core.WithResolution(256),
			core.WithPointWorkers(1))
		wantMulti, err := seq.MultiJoin(core.Request{Points: ps, Regions: rs}, specs)
		if err != nil {
			t.Fatal(err)
		}
		par := core.NewRasterJoin(core.WithMode(mode), core.WithResolution(256),
			core.WithPointWorkers(4))
		gotMulti, err := par.MultiJoin(core.Request{Points: ps, Regions: rs}, specs)
		if err != nil {
			t.Fatal(err)
		}
		for s := range wantMulti {
			statsBitIdentical(t, gotMulti[s].Stats, wantMulti[s].Stats, "multi spec")
		}

		ws, err := seq.NewStream(rs, core.Sum, "v", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := ws.Add(ps); err != nil {
			t.Fatal(err)
		}
		wantStream, err := ws.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		gs, err := par.NewStream(rs, core.Sum, "v", nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := gs.Add(ps); err != nil {
			t.Fatal(err)
		}
		gotStream, err := gs.Finalize()
		if err != nil {
			t.Fatal(err)
		}
		statsBitIdentical(t, gotStream.Stats, wantStream.Stats, "stream")
	}
}

// TestParallelJoinCancelMidPass: canceling an accurate parallel join
// mid-point-pass (while shard merge goroutines are live) returns
// context.Canceled, leaks nothing, and leaves the device pool drained —
// with the span cache enabled, so compiled spans don't pin pool resources.
func TestParallelJoinCancelMidPass(t *testing.T) {
	ps, rs := scene(200_000, 16, 347)
	req := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	dev := gpu.New()
	rj := core.NewRasterJoin(core.WithDevice(dev), core.WithMode(core.Accurate),
		core.WithResolution(1024), core.WithPointBatch(8192), core.WithPointWorkers(4))

	baseline := runtime.NumGoroutine()
	tr := trace.New("test")
	ctx, cancel := context.WithCancel(trace.NewContext(context.Background(), tr))
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, err := rj.JoinContext(ctx, req)
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for tr.Counters()["batches"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("parallel join never submitted a point batch")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled parallel join returned %v, want context.Canceled", err)
	}
	awaitGoroutines(t, baseline)
	requireDevDrained(t, dev, "after parallel cancel")

	// The device (and its now-warm span cache) must serve the same query
	// exactly afterwards.
	got, err := rj.Join(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(1024),
		core.WithPointWorkers(1)).Join(req)
	if err != nil {
		t.Fatal(err)
	}
	statsBitIdentical(t, got.Stats, want.Stats, "post-cancel reuse")
	requireDevDrained(t, dev, "after post-cancel reuse")
}
