package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/raster"
)

// FragmentCache stores each region's covered pixels on a fixed canvas in
// CSR form, so a sweep of queries over the same region layer (the
// exploration view's time bins) pays the polygon rasterization once. This
// mirrors the paper's observation that the polygon side of the join is
// static across interactions: on the GPU the polygon pass's fragments are
// recomputed for free each frame, while the software device banks them.
type FragmentCache struct {
	// T is the canvas transform the fragments were produced on.
	T raster.Transform
	// start/frags: frags[start[k]:start[k+1]] are region k's pixel indices.
	start []int32
	frags []int32
}

// Regions returns the number of cached regions.
func (fc *FragmentCache) Regions() int { return len(fc.start) - 1 }

// Fragments returns region k's covered pixel indices.
func (fc *FragmentCache) Fragments(k int) []int32 {
	return fc.frags[fc.start[k]:fc.start[k+1]]
}

// TotalFragments returns the summed fragment count across regions.
func (fc *FragmentCache) TotalFragments() int { return len(fc.frags) }

// BuildFragmentCache rasterizes the region layer once on a single-pass
// canvas. It requires the resolution-driven mode (no ε) and a canvas that
// fits the device texture limit, since the cache indexes one pixel grid.
func (r *RasterJoin) BuildFragmentCache(regions *data.RegionSet) (*FragmentCache, error) {
	return r.BuildFragmentCacheContext(context.Background(), regions)
}

// BuildFragmentCacheContext is BuildFragmentCache under a request context:
// the per-region rasterization loop checks cancellation between polygons
// and the canvas is released on every exit path.
func (r *RasterJoin) BuildFragmentCacheContext(ctx context.Context, regions *data.RegionSet) (*FragmentCache, error) {
	if r.epsilon > 0 {
		return nil, fmt.Errorf("core: fragment cache requires resolution mode, not ε")
	}
	window := regions.Bounds()
	if window.IsEmpty() {
		return &FragmentCache{start: make([]int32, regions.Len()+1)}, nil
	}
	full := r.fullTransform(window)
	c, err := r.dev.NewCanvas(full.World, full.W, full.H)
	if err != nil {
		return nil, fmt.Errorf("core: fragment cache: %w (reduce the resolution)", err)
	}
	defer c.Release()
	sp, err := r.cachedSpans(ctx, regions, c.T)
	if err != nil {
		return nil, err
	}
	fc := &FragmentCache{T: c.T, start: make([]int32, regions.Len()+1)}
	for k := range regions.Regions {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		drawRegion(c, sp, regions.Regions[k].Poly, k, func(px, py int) {
			fc.frags = append(fc.frags, int32(py*c.T.W+px))
		})
		fc.start[k+1] = int32(len(fc.frags))
	}
	return fc, nil
}

// SeriesResult is the output of SeriesJoin: per-bin, per-region stats.
type SeriesResult struct {
	BinStarts []int64
	// Stats[b][k] is region k's aggregate in bin b.
	Stats [][]RegionStat
	// CanvasW, CanvasH and PixelSize describe the shared canvas.
	CanvasW, CanvasH int
	PixelSize        float64
}

// Value returns the aggregate for bin b, region k.
func (s *SeriesResult) Value(b, k int, agg Agg) float64 { return s.Stats[b][k].Value(agg) }

// SeriesJoin evaluates the request across consecutive time bins spanning
// [start, end), rasterizing the (filtered) points once per bin while
// reusing one cached polygon rasterization — and, in accurate mode, one
// cached outline pass — for every bin. Results are identical to running
// bins separate Joins at the same resolution and mode; the static polygon
// work is paid once instead of bins times.
//
// The request's own Time filter is ignored; the bin windows replace it.
func (r *RasterJoin) SeriesJoin(req Request, start, end int64, bins int) (*SeriesResult, error) {
	return r.SeriesJoinContext(context.Background(), req, start, end, bins)
}

// SeriesJoinContext is SeriesJoin under a request context: cancellation is
// checked between time bins (each bin is one point pass plus one cached
// polygon pass) and between region claims inside a bin, and the canvas and
// pooled textures are released on every exit path.
func (r *RasterJoin) SeriesJoinContext(ctx context.Context, req Request, start, end int64, bins int) (*SeriesResult, error) {
	if bins < 1 || end <= start {
		return nil, fmt.Errorf("core: series needs bins >= 1 and a non-empty range")
	}
	if req.Agg == Min || req.Agg == Max {
		return nil, fmt.Errorf("core: series join supports COUNT/SUM/AVG, not %v", req.Agg)
	}
	req.Time = nil
	if err := req.Validate(); err != nil {
		return nil, err
	}
	src := req.Data()
	if !src.HasTime() {
		return nil, fmt.Errorf("core: series over point set %q without timestamps", src.Name())
	}
	fc, err := r.BuildFragmentCacheContext(ctx, req.Regions)
	if err != nil {
		return nil, err
	}

	out := &SeriesResult{
		BinStarts: make([]int64, bins),
		Stats:     make([][]RegionStat, bins),
		CanvasW:   fc.T.W, CanvasH: fc.T.H,
		PixelSize: fc.T.PixelWidth(),
	}
	width := (end - start) / int64(bins)
	if width < 1 {
		width = 1
	}
	for b := 0; b < bins; b++ {
		out.BinStarts[b] = start + int64(b)*width
		out.Stats[b] = make([]RegionStat, req.Regions.Len())
	}
	if src.Len() == 0 || req.Regions.Len() == 0 || fc.T.W == 0 {
		return out, nil
	}

	// The base scan carries the attribute filters; each bin re-aims its
	// time bounds below (range narrowing when sorted, residual predicate
	// otherwise). Bins run sequentially, so mutating the scan is safe.
	sc, err := r.newScan(req)
	if err != nil {
		return nil, err
	}
	attrIdx := -1
	if req.Agg.NeedsAttr() {
		attrIdx = data.AttrIndex(src, req.Attr)
	}
	c, err := r.dev.NewCanvas(fc.T.World, fc.T.W, fc.T.H)
	if err != nil {
		return nil, err
	}
	defer c.Release()
	sc.setWorld(c.T.World)
	w := fc.T.W

	// Accurate mode: outline the regions once; exclude each region's own
	// boundary pixels from its cached fragments up front so the per-bin
	// interior sweep needs no membership tests.
	var slotOf []int32
	var bins2D [][]obs // per boundary-pixel slot, observations of the current bin
	var regionPixels [][]int32
	interior := fc
	if r.mode == Accurate {
		sp, err := r.cachedSpans(ctx, req.Regions, c.T)
		if err != nil {
			return nil, err
		}
		var boundaryList []int32
		boundaryList, regionPixels = r.outlinePass(c, req.Regions, sp)
		slotOf = make([]int32, fc.T.W*fc.T.H)
		for i := range slotOf {
			slotOf[i] = -1
		}
		for s, idx := range boundaryList {
			slotOf[idx] = int32(s)
		}
		bins2D = make([][]obs, len(boundaryList))
		interior = excludeOwnBoundary(fc, regionPixels)
	}

	sorted := src.TimeSorted()
	countTex := r.dev.AcquireTexture(fc.T.W, fc.T.H)
	defer r.dev.ReleaseTexture(countTex)
	var sumTex *gpu.Texture
	if attrIdx >= 0 {
		sumTex = r.dev.AcquireTexture(fc.T.W, fc.T.H)
		defer r.dev.ReleaseTexture(sumTex)
	}

	for b := 0; b < bins; b++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		binStart := out.BinStarts[b]
		binEnd := binStart + width
		if b == bins-1 {
			binEnd = end
		}
		countTex.Clear()
		if sumTex != nil {
			sumTex.Clear()
		}
		for s := range bins2D {
			bins2D[s] = bins2D[s][:0]
		}
		lo, hi := 0, src.Len()
		if sorted {
			if lo, hi, err = sourceTimeWindow(src, binStart, binEnd); err != nil {
				return nil, err
			}
			sc.res.hasTime = false
		} else {
			sc.res.hasTime = true
			sc.res.tStart, sc.res.tEnd = binStart, binEnd
		}
		err = sc.piecesRange(ctx, lo, hi, func(blk *data.Block, plo, phi int, needPred bool) error {
			base := blk.Base
			var attr []float64
			if attrIdx >= 0 {
				attr = blk.Attr[attrIdx]
			}
			return c.DrawPointsParallel(ctx, r.pointWorkers, phi-plo,
				func(j int) (float64, float64) { jj := plo - base + j; return blk.X[jj], blk.Y[jj] },
				func(px, py, j int) {
					i := plo + j
					if needPred && !sc.pred(blk, i) {
						return
					}
					jj := i - base
					countTex.Add(px, py, 1)
					var v float64
					if attr != nil {
						v = attr[jj]
					}
					if sumTex != nil {
						sumTex.Add(px, py, v)
					}
					if slotOf != nil {
						if s := slotOf[py*w+px]; s >= 0 {
							bins2D[s] = append(bins2D[s], obs{x: blk.X[jj], y: blk.Y[jj], v: v})
						}
					}
				})
		})
		if err != nil {
			return nil, err
		}

		// Polygon pass from the cache, parallel across regions.
		stats := out.Stats[b]
		err = r.parallelRegionsCtx(ctx, req.Regions.Len(), func(k int) {
			var cnt int64
			var sum float64
			for _, idx := range interior.Fragments(k) {
				v := countTex.Data[idx]
				if v == 0 {
					continue
				}
				cnt += int64(v)
				if sumTex != nil {
					//lint:ignore floataccum per-fragment hot loop mirroring GPU additive blending; trip count bounded by region pixels
					sum += sumTex.Data[idx]
				}
			}
			if regionPixels != nil {
				poly := req.Regions.Regions[k].Poly
				for _, idx := range regionPixels[k] {
					for _, o := range bins2D[slotOf[idx]] {
						if poly.Contains(geom.Point{X: o.x, Y: o.y}) {
							cnt++
							if attrIdx >= 0 {
								//lint:ignore floataccum boundary fix-up over one pixel's point bin; dozens of terms at most
								sum += o.v
							}
						}
					}
				}
			}
			stats[k] = RegionStat{Count: cnt, Sum: sum}
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// excludeOwnBoundary returns a fragment cache whose per-region fragments
// drop the region's own boundary pixels (which the exact path handles).
func excludeOwnBoundary(fc *FragmentCache, regionPixels [][]int32) *FragmentCache {
	out := &FragmentCache{T: fc.T, start: make([]int32, len(fc.start))}
	mark := raster.NewBitmap(fc.T.W, fc.T.H)
	for k := 0; k < fc.Regions(); k++ {
		for _, idx := range regionPixels[k] {
			mark.Set(int(idx)%fc.T.W, int(idx)/fc.T.W)
		}
		for _, idx := range fc.Fragments(k) {
			if !mark.Get(int(idx)%fc.T.W, int(idx)/fc.T.W) {
				out.frags = append(out.frags, idx)
			}
		}
		for _, idx := range regionPixels[k] {
			mark.Unset(int(idx)%fc.T.W, int(idx)/fc.T.W)
		}
		out.start[k+1] = int32(len(out.frags))
	}
	return out
}

// parallelRegions fans region indices [0,n) across the joiner's workers.
func (r *RasterJoin) parallelRegions(n int, fn func(k int)) {
	_ = r.parallelRegionsCtx(context.Background(), n, fn)
}

// parallelRegionsCtx fans region indices [0,n) across the joiner's workers,
// checking the context between region claims: a canceled request stops
// handing out work and returns ctx.Err() once the in-flight regions drain.
//
// Race audit (sharedwrite-clean): k comes from an atomic cursor, so each
// index is claimed by exactly one goroutine; fn must only write state
// owned by region k (the callers write stats[k]), which partitions every
// write. wg.Wait() sequences the caller's reads after all writes.
func (r *RasterJoin) parallelRegionsCtx(ctx context.Context, n int, fn func(k int)) error {
	workers := r.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(k)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				fn(k)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
