package core

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/trace"
)

// Package-level pruning counters, aggregated across every scan in the
// process for /api/stats. Per-request numbers ride on the request trace
// ("segment.blocks_scanned" / "segment.blocks_pruned").
var (
	scanBlocksScanned atomic.Int64
	scanBlocksPruned  atomic.Int64
)

// ScanStats returns the process-wide block-scan counters: blocks decoded
// and drawn vs. blocks eliminated by zone-map pruning.
func ScanStats() (scanned, pruned int64) {
	return scanBlocksScanned.Load(), scanBlocksPruned.Load()
}

// attrFilter is one compiled attribute filter: column position plus the
// half-open value interval.
type attrFilter struct {
	idx      int
	min, max float64
}

// residualPred is the per-point test that remains after block pruning: the
// time window (when the source is not time-sorted) and the attribute
// filters, evaluated against a decoded block by absolute point index.
type residualPred struct {
	hasTime      bool
	tStart, tEnd int64
	filters      []attrFilter
}

// newResidualPred compiles filters (and, when tf is non-nil, the time
// window) against the source's column order.
func newResidualPred(src data.PointSource, filters []Filter, tf *TimeFilter) (residualPred, error) {
	var p residualPred
	if tf != nil {
		p.hasTime = true
		p.tStart, p.tEnd = tf.Start, tf.End
	}
	for _, f := range filters {
		idx := data.AttrIndex(src, f.Attr)
		if idx < 0 {
			return p, fmt.Errorf("core: filter attribute %q missing from %q", f.Attr, src.Name())
		}
		p.filters = append(p.filters, attrFilter{idx: idx, min: f.Min, max: f.Max})
	}
	return p, nil
}

// empty reports whether the predicate passes every point trivially.
func (p *residualPred) empty() bool { return !p.hasTime && len(p.filters) == 0 }

// eval tests absolute point index i of blk.
func (p *residualPred) eval(blk *data.Block, i int) bool {
	j := i - blk.Base
	if p.hasTime {
		if t := blk.T[j]; t < p.tStart || t >= p.tEnd {
			return false
		}
	}
	for _, f := range p.filters {
		if v := blk.Attr[f.idx][j]; !(v >= f.min && v < f.max) {
			return false
		}
	}
	return true
}

// Scan is a compiled point scan: the index range to cover (narrowed by
// binary search when the source is time-sorted), the residual per-point
// predicate, and the zone-map bounds that let piecesRange skip whole
// blocks. One Scan serves all tiles of a join; setWorld re-aims the
// spatial bound per tile. piecesRange is safe for concurrent callers once
// the scan is configured.
type Scan struct {
	Src    data.PointSource
	Lo, Hi int

	res      residualPred
	world    geom.BBox
	worldSet bool
	prune    bool
	// spatialOnly restricts pruning to the coordinate zones. The flow join
	// needs it: eliminating a block on an attribute or time zone would turn
	// its points from Filtered into Dropped, changing the flow accounting,
	// whereas spatially pruned points are canvas-culled (never shaded) and
	// land in Dropped either way.
	spatialOnly bool
}

// newScan compiles the request into a Scan against req.Data(). The time
// filter narrows [Lo, Hi) by binary search on a time-sorted source and
// joins the residual predicate otherwise.
func (r *RasterJoin) newScan(req Request) (*Scan, error) {
	return newScanPrune(req, r.blockPrune)
}

// newScanPrune is newScan with an explicit pruning flag, for callers that
// are not a *RasterJoin (the shard executors compile their own scans from a
// wire-able spec).
func newScanPrune(req Request, prune bool) (*Scan, error) {
	src := req.Data()
	sc := &Scan{Src: src, Lo: 0, Hi: src.Len(), prune: prune}
	tf := req.Time
	if tf != nil && src.TimeSorted() {
		var err error
		sc.Lo, sc.Hi, err = sourceTimeWindow(src, tf.Start, tf.End)
		if err != nil {
			return nil, err
		}
		tf = nil
	}
	var err error
	sc.res, err = newResidualPred(src, req.Filters, tf)
	if err != nil {
		return nil, err
	}
	return sc, nil
}

// setWorld bounds the scan spatially: blocks whose coordinate zones are
// disjoint from the canvas window are pruned. The test keeps blocks that
// touch the window edge — raster.Transform.ToPixel is inclusive at the max
// edge — and a block of all-NaN coordinates (zone Min=+Inf) is pruned,
// matching the canvas cull of NaN positions.
func (sc *Scan) setWorld(w geom.BBox) {
	sc.world = w
	sc.worldSet = true
}

// pred evaluates the residual predicate for absolute point index i of blk.
func (sc *Scan) pred(blk *data.Block, i int) bool { return sc.res.eval(blk, i) }

// survives tests a block's zone map. ok=false means no point in the block
// can contribute (the block is skipped without decoding); full=true means
// every point passes the residual predicate, so the per-point check can be
// skipped. Both are sound under NaN: zone min/max ignore NaN values, NaN
// coordinates are canvas-culled, NaN attribute values fail every filter,
// and full containment requires a NaN-free zone.
func (sc *Scan) survives(z data.Zone) (ok, full bool) {
	if !sc.prune {
		return true, sc.res.empty()
	}
	if sc.worldSet {
		if z.X.Min > sc.world.MaxX || z.X.Max < sc.world.MinX ||
			z.Y.Min > sc.world.MaxY || z.Y.Max < sc.world.MinY {
			return false, false
		}
	}
	full = true
	if sc.res.hasTime {
		if !sc.spatialOnly && (z.MaxT < sc.res.tStart || z.MinT >= sc.res.tEnd) {
			return false, false
		}
		if !(z.MinT >= sc.res.tStart && z.MaxT < sc.res.tEnd) {
			full = false
		}
	}
	for _, f := range sc.res.filters {
		zc := z.Attr[f.idx]
		if !sc.spatialOnly && (zc.Max < f.min || zc.Min >= f.max) {
			return false, false
		}
		if zc.HasNaN || !(zc.Min >= f.min && zc.Max < f.max) {
			full = false
		}
	}
	return true, full
}

// piecesRange streams the surviving blocks overlapping [s, e) ∩ [Lo, Hi)
// to fn in ascending index order, with the clipped absolute range and
// whether the residual predicate still needs evaluating. On a Slabber
// source (in-RAM columns) maximal runs of surviving blocks with equal
// needPred collapse into one zero-copy piece, so an unpruned in-RAM scan
// issues exactly the draws the pre-source code did. The context is checked
// once per block — pruning sweeps over cold zones stay cancelable.
func (sc *Scan) piecesRange(ctx context.Context, s, e int, fn func(blk *data.Block, lo, hi int, needPred bool) error) error {
	if s < sc.Lo {
		s = sc.Lo
	}
	if e > sc.Hi {
		e = sc.Hi
	}
	if s >= e {
		return nil
	}
	src := sc.Src
	slabber, _ := src.(data.Slabber)
	nb := src.NumBlocks()
	b0 := sort.Search(nb, func(b int) bool { _, bhi := src.BlockSpan(b); return bhi > s })

	var scanned, pruned int64
	defer func() {
		if scanned > 0 {
			scanBlocksScanned.Add(scanned)
		}
		if pruned > 0 {
			scanBlocksPruned.Add(pruned)
		}
		tr := trace.FromContext(ctx)
		if scanned > 0 {
			tr.Count("segment.blocks_scanned", scanned)
		}
		if pruned > 0 {
			tr.Count("segment.blocks_pruned", pruned)
		}
	}()

	runS, runE := -1, -1
	runPred := false
	flush := func() error {
		if runS < 0 {
			return nil
		}
		blk, ok := slabber.Slab(runS, runE)
		if !ok {
			return fmt.Errorf("core: source %q refused slab [%d,%d)", src.Name(), runS, runE)
		}
		err := fn(blk, runS, runE, runPred)
		runS = -1
		return err
	}
	for b := b0; b < nb; b++ {
		blo, bhi := src.BlockSpan(b)
		if blo >= e {
			break
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		cs, ce := blo, bhi
		if cs < s {
			cs = s
		}
		if ce > e {
			ce = e
		}
		ok, full := sc.survives(src.Zone(b))
		if !ok {
			pruned++
			if err := flush(); err != nil {
				return err
			}
			continue
		}
		scanned++
		needPred := !full
		if slabber != nil {
			if runS >= 0 && runE == cs && runPred == needPred {
				runE = ce
				continue
			}
			if err := flush(); err != nil {
				return err
			}
			runS, runE, runPred = cs, ce, needPred
			continue
		}
		blk, err := src.Block(b)
		if err != nil {
			return fmt.Errorf("core: decoding block %d of %q: %w", b, src.Name(), err)
		}
		if err := fn(blk, cs, ce, needPred); err != nil {
			return err
		}
	}
	return flush()
}

// piecesBlocks is piecesRange over an explicit ascending block list with an
// additional world-x ownership range [xlo, xhi): blocks whose x zone cannot
// intersect the range are skipped, and fn additionally learns whether the
// per-point ownership test is still needed (needX=false when the zone proves
// the whole block lies inside the range). Like piecesRange, maximal runs of
// contiguous surviving blocks with equal flags collapse into one zero-copy
// slab on a Slabber source, and the context is checked once per block. The
// scanned/pruned counts are returned so shard partials can report them.
func (sc *Scan) piecesBlocks(ctx context.Context, blocks []int, xlo, xhi float64,
	fn func(blk *data.Block, lo, hi int, needPred, needX bool) error) (int64, int64, error) {

	src := sc.Src
	slabber, _ := src.(data.Slabber)

	var scanned, pruned int64
	defer func() {
		if scanned > 0 {
			scanBlocksScanned.Add(scanned)
		}
		if pruned > 0 {
			scanBlocksPruned.Add(pruned)
		}
		tr := trace.FromContext(ctx)
		if scanned > 0 {
			tr.Count("segment.blocks_scanned", scanned)
		}
		if pruned > 0 {
			tr.Count("segment.blocks_pruned", pruned)
		}
	}()

	runS, runE := -1, -1
	runPred, runX := false, false
	flush := func() error {
		if runS < 0 {
			return nil
		}
		blk, ok := slabber.Slab(runS, runE)
		if !ok {
			return fmt.Errorf("core: source %q refused slab [%d,%d)", src.Name(), runS, runE)
		}
		err := fn(blk, runS, runE, runPred, runX)
		runS = -1
		return err
	}
	for _, b := range blocks {
		blo, bhi := src.BlockSpan(b)
		cs, ce := blo, bhi
		if cs < sc.Lo {
			cs = sc.Lo
		}
		if ce > sc.Hi {
			ce = sc.Hi
		}
		if cs >= ce {
			continue
		}
		if err := ctx.Err(); err != nil {
			return scanned, pruned, err
		}
		z := src.Zone(b)
		// Ownership pruning: no point of the block can fall in [xlo, xhi).
		// Sound under NaN coordinates — zone min/max ignore NaN and NaN
		// positions are canvas-culled before the ownership test runs.
		if z.X.Max < xlo || z.X.Min >= xhi {
			pruned++
			if err := flush(); err != nil {
				return scanned, pruned, err
			}
			continue
		}
		ok, full := sc.survives(z)
		if !ok {
			pruned++
			if err := flush(); err != nil {
				return scanned, pruned, err
			}
			continue
		}
		scanned++
		needPred := !full
		// Every shaded point has non-NaN coordinates inside the zone, so
		// zone containment proves per-point ownership.
		needX := !(xlo <= z.X.Min && z.X.Max < xhi)
		if slabber != nil {
			if runS >= 0 && runE == cs && runPred == needPred && runX == needX {
				runE = ce
				continue
			}
			if err := flush(); err != nil {
				return scanned, pruned, err
			}
			runS, runE, runPred, runX = cs, ce, needPred, needX
			continue
		}
		blk, err := src.Block(b)
		if err != nil {
			return scanned, pruned, fmt.Errorf("core: decoding block %d of %q: %w", b, src.Name(), err)
		}
		if err := fn(blk, cs, ce, needPred, needX); err != nil {
			return scanned, pruned, err
		}
	}
	return scanned, pruned, flush()
}

// sourceTimeWindow returns the index range [lo, hi) of points with
// timestamps in [start, end) on a time-sorted source. The block to probe
// is found from the resident zone maps, so at most two blocks are decoded;
// an in-RAM Slabber source is binary-searched directly with no zone cost.
func sourceTimeWindow(src data.PointSource, start, end int64) (lo, hi int, err error) {
	if sl, ok := src.(data.Slabber); ok {
		if blk, ok := sl.Slab(0, src.Len()); ok && blk.T != nil {
			t := blk.T
			lo = sort.Search(len(t), func(i int) bool { return t[i] >= start })
			hi = sort.Search(len(t), func(i int) bool { return t[i] >= end })
			return lo, hi, nil
		}
	}
	searchT := func(t int64) (int, error) {
		nb := src.NumBlocks()
		// Sorted source: block MinT/MaxT are ordered, so the first block
		// whose MaxT reaches t holds the boundary.
		b := sort.Search(nb, func(b int) bool { return src.Zone(b).MaxT >= t })
		if b == nb {
			return src.Len(), nil
		}
		blk, err := src.Block(b)
		if err != nil {
			return 0, fmt.Errorf("core: time window over %q: %w", src.Name(), err)
		}
		blo, _ := src.BlockSpan(b)
		off := sort.Search(len(blk.T), func(j int) bool { return blk.T[j] >= t })
		return blo + off, nil
	}
	if lo, err = searchT(start); err != nil {
		return 0, 0, err
	}
	if hi, err = searchT(end); err != nil {
		return 0, 0, err
	}
	return lo, hi, nil
}
