package admit

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestFastPath: under capacity, acquisition is immediate and release
// restores the count.
func TestFastPath(t *testing.T) {
	c := New(2, 4, time.Second)
	rel1, err := c.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := c.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if s := c.Stats(); s.InFlight != 2 || s.Admitted != 2 || s.Shed != 0 {
		t.Errorf("stats = %+v", s)
	}
	rel1()
	rel1() // idempotent
	rel2()
	if s := c.Stats(); s.InFlight != 0 {
		t.Errorf("inflight after release = %d", s.InFlight)
	}
}

// TestNilController admits everything.
func TestNilController(t *testing.T) {
	var c *Controller
	for i := 0; i < 100; i++ {
		rel, err := c.Acquire(context.Background(), 5)
		if err != nil {
			t.Fatal(err)
		}
		rel()
	}
	if s := c.Stats(); s.Enabled {
		t.Errorf("nil controller stats = %+v", s)
	}
}

// TestQueueOverflowSheds: with the semaphore full and the queue full,
// further requests shed immediately with ErrOverloaded.
func TestQueueOverflowSheds(t *testing.T) {
	c := New(1, 1, time.Minute)
	rel, err := c.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer rel()

	// One waiter fits in the queue.
	queued := make(chan error, 1)
	go func() {
		r, err := c.Acquire(context.Background(), 1)
		if err == nil {
			r()
		}
		queued <- err
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 1 })

	// The next one overflows and sheds synchronously.
	if _, err := c.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("overflow acquire: err = %v, want ErrOverloaded", err)
	}
	if s := c.Stats(); s.Shed != 1 {
		t.Errorf("shed = %d, want 1", s.Shed)
	}
	rel()
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	if s := c.Stats(); s.InFlight != 0 || s.Queued != 0 {
		t.Errorf("final stats = %+v", s)
	}
}

// TestOversizeRequestClamped: a weight above capacity is clamped to the
// whole semaphore (exclusive execution) instead of being unserviceable
// forever; capacity-0 controllers still shed everything immediately.
func TestOversizeRequestClamped(t *testing.T) {
	c := New(2, 4, time.Second)
	rel, err := c.Acquire(context.Background(), 3)
	if err != nil {
		t.Fatalf("oversize acquire: err = %v", err)
	}
	if s := c.Stats(); s.InFlight != 2 {
		t.Errorf("clamped in-flight = %d, want full capacity 2", s.InFlight)
	}
	rel()
	if s := c.Stats(); s.InFlight != 0 {
		t.Errorf("in-flight after release = %d, want 0", s.InFlight)
	}
	zero := New(0, 4, time.Second)
	if _, err := zero.Acquire(context.Background(), 1); !errors.Is(err, ErrOverloaded) {
		t.Errorf("capacity-0 acquire: err = %v", err)
	}
}

// TestExpiredDeadlineShedsImmediately: a request whose deadline has already
// passed is shed without queuing at all.
func TestExpiredDeadlineShedsImmediately(t *testing.T) {
	c := New(1, 8, time.Minute)
	rel, _ := c.Acquire(context.Background(), 1)
	defer rel()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	// NB: ctx.Err() may already report DeadlineExceeded; both that and
	// ErrOverloaded are "shed before queuing" — the request never waits.
	start := time.Now()
	_, err := c.Acquire(ctx, 1)
	if err == nil {
		t.Fatal("expired-deadline acquire succeeded")
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Errorf("expired-deadline acquire took %v, want immediate", d)
	}
	if s := c.Stats(); s.Queued != 0 {
		t.Errorf("queued = %d after immediate shed", s.Queued)
	}
}

// TestWaitTimeoutSheds: a queued request that outwaits maxWait is shed.
func TestWaitTimeoutSheds(t *testing.T) {
	c := New(1, 8, 10*time.Millisecond)
	rel, _ := c.Acquire(context.Background(), 1)
	defer rel()

	start := time.Now()
	_, err := c.Acquire(context.Background(), 1)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if d := time.Since(start); d < 8*time.Millisecond || d > 2*time.Second {
		t.Errorf("wait before shed = %v, want ~10ms", d)
	}
	if s := c.Stats(); s.Queued != 0 || s.Shed != 1 {
		t.Errorf("stats = %+v", s)
	}
}

// TestCancelWhileQueued is the admission analogue of the qcache 1-of-N
// coalesced-waiter cancel test: of N queued waiters, one is canceled while
// in line; it must return ctx.Err(), leave the queue, and the semaphore
// must provably end balanced — the other N-1 all get admitted once capacity
// frees, and after every release the controller is back to idle.
func TestCancelWhileQueued(t *testing.T) {
	const N = 8
	c := New(1, N, time.Minute)
	hold, err := c.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}

	victimCtx, cancelVictim := context.WithCancel(context.Background())
	type outcome struct {
		idx int
		err error
	}
	results := make(chan outcome, N)
	var wg sync.WaitGroup
	for i := 0; i < N; i++ {
		ctx := context.Background()
		if i == 0 {
			ctx = victimCtx
		}
		wg.Add(1)
		go func(i int, ctx context.Context) {
			defer wg.Done()
			rel, err := c.Acquire(ctx, 1)
			if err == nil {
				rel()
			}
			results <- outcome{i, err}
		}(i, ctx)
	}
	waitFor(t, func() bool { return c.Stats().Queued == N })

	// Cancel the victim while it is provably in the queue.
	cancelVictim()
	var victimErr error
	select {
	case o := <-results:
		if o.idx != 0 {
			t.Fatalf("waiter %d finished before capacity freed", o.idx)
		}
		victimErr = o.err
	case <-time.After(5 * time.Second):
		t.Fatal("canceled waiter did not return")
	}
	if !errors.Is(victimErr, context.Canceled) {
		t.Fatalf("victim err = %v, want context.Canceled", victimErr)
	}
	if s := c.Stats(); s.Queued != N-1 || s.Canceled != 1 {
		t.Errorf("after victim left: %+v", s)
	}

	// Free capacity: every survivor must be admitted (FIFO, one at a time —
	// each releases immediately so the chain drains).
	hold()
	wg.Wait()
	close(results)
	for o := range results {
		if o.err != nil {
			t.Errorf("survivor %d: %v", o.idx, o.err)
		}
	}
	s := c.Stats()
	if s.InFlight != 0 || s.Queued != 0 {
		t.Errorf("controller not idle after drain: %+v", s)
	}
	if s.Admitted != N { // 1 initial hold + (N-1) survivors
		t.Errorf("admitted = %d, want %d", s.Admitted, N)
	}
}

// TestFIFOWeighted: grants respect queue order; a heavy waiter at the head
// is not starved by lighter requests behind it.
func TestFIFOWeighted(t *testing.T) {
	c := New(4, 8, time.Minute)
	hold, _ := c.Acquire(context.Background(), 4)

	order := make(chan string, 2)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rel, err := c.Acquire(context.Background(), 3) // heavy, queued first
		if err != nil {
			t.Errorf("heavy: %v", err)
			return
		}
		order <- "heavy"
		rel()
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 1 })
	wg.Add(1)
	go func() {
		defer wg.Done()
		rel, err := c.Acquire(context.Background(), 2) // lighter, queued second; can't co-run with heavy
		if err != nil {
			t.Errorf("light: %v", err)
			return
		}
		order <- "light"
		rel()
	}()
	waitFor(t, func() bool { return c.Stats().Queued == 2 })

	hold()
	wg.Wait()
	if first := <-order; first != "heavy" {
		t.Errorf("first grant = %s, want heavy (FIFO)", first)
	}
	if s := c.Stats(); s.InFlight != 0 {
		t.Errorf("inflight after drain = %d", s.InFlight)
	}
}

// TestRetryAfter rounds the wait bound up to whole seconds, minimum 1.
func TestRetryAfter(t *testing.T) {
	if d := New(1, 1, 100*time.Millisecond).RetryAfter(); d != time.Second {
		t.Errorf("100ms -> %v, want 1s", d)
	}
	if d := New(1, 1, 1500*time.Millisecond).RetryAfter(); d != 2*time.Second {
		t.Errorf("1.5s -> %v, want 2s", d)
	}
	var nilC *Controller
	if d := nilC.RetryAfter(); d != time.Second {
		t.Errorf("nil -> %v, want 1s", d)
	}
}

// TestConcurrentChurn hammers one controller from many goroutines under
// -race: every successful acquire is released, and the controller ends
// idle with every request accounted as admitted, shed, or canceled.
func TestConcurrentChurn(t *testing.T) {
	c := New(4, 16, 5*time.Millisecond)
	const workers, per = 16, 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ctx := context.Background()
				if i%5 == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(i%3)*time.Millisecond)
					defer cancel()
				}
				rel, err := c.Acquire(ctx, int64(1+w%2))
				if err != nil {
					continue
				}
				rel()
			}
		}(w)
	}
	wg.Wait()
	s := c.Stats()
	if s.InFlight != 0 || s.Queued != 0 {
		t.Errorf("not idle after churn: %+v", s)
	}
	if total := s.Admitted + s.Shed + s.Canceled; total != workers*per {
		t.Errorf("accounted %d of %d requests: %+v", total, workers*per, s)
	}
}

// waitFor polls cond up to 5s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}
