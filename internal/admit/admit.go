// Package admit is the server's overload-protection layer: a weighted
// semaphore bounding concurrent query computes, fronted by a short,
// deadline-aware FIFO wait queue.
//
// The contract, per the ROADMAP's "bounded latency under heavy traffic"
// north star: an admitted request runs immediately; a request that cannot
// run immediately waits in line for at most min(maxWait, its own remaining
// deadline); a request that would overflow the queue, has already exhausted
// its deadline, or times out waiting is *shed* with ErrOverloaded — which
// the server maps to 503 + Retry-After — instead of piling onto the
// semaphore and dragging every in-flight query past its deadline.
//
// Grants are strictly FIFO: a heavy waiter at the head blocks lighter ones
// behind it, so no request starves. A nil *Controller admits everything
// (the -max-inflight 0 "disabled" setting).
package admit

import (
	"container/list"
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// ErrOverloaded reports that admission shed the request: the server is at
// -max-inflight with a full (or too-slow) wait queue. HTTP maps it to 503
// Service Unavailable with a Retry-After hint.
var ErrOverloaded = errors.New("admit: server overloaded, try again shortly")

// DefaultQueue is the wait-queue length used when the caller passes 0.
const DefaultQueue = 64

// DefaultMaxWait is the queue wait bound used when the caller passes 0.
const DefaultMaxWait = 100 * time.Millisecond

// waiter is one queued acquisition.
type waiter struct {
	n     int64
	ready chan struct{} // closed on grant
}

// Controller is the admission semaphore. Construct with New; safe for
// concurrent use. A nil Controller admits everything at zero cost.
type Controller struct {
	capacity int64
	queueCap int
	maxWait  time.Duration

	mu      sync.Mutex
	cur     int64      // weight currently admitted
	waiters *list.List // of *waiter, FIFO

	queued   atomic.Int64 // gauge: waiters in line right now
	admitted atomic.Uint64
	shed     atomic.Uint64
	canceled atomic.Uint64 // left the queue because their ctx ended
}

// New returns a controller admitting at most capacity units of concurrent
// work, queueing at most queue excess requests (0 = DefaultQueue) for at
// most maxWait (0 = DefaultMaxWait) each. capacity <= 0 builds a controller
// that sheds every request — callers wanting "no admission control" should
// use a nil *Controller instead.
func New(capacity int64, queue int, maxWait time.Duration) *Controller {
	if queue == 0 {
		queue = DefaultQueue
	}
	if queue < 0 {
		queue = 0
	}
	if maxWait <= 0 {
		maxWait = DefaultMaxWait
	}
	if capacity < 0 {
		capacity = 0
	}
	return &Controller{
		capacity: capacity,
		queueCap: queue,
		maxWait:  maxWait,
		waiters:  list.New(),
	}
}

// Acquire admits n units of work, waiting in the FIFO queue when the
// semaphore is full. It returns a release function exactly when err is nil;
// the caller must invoke it when the work finishes. Failure modes:
//
//   - ErrOverloaded: the queue was full, the caller's deadline was already
//     unmeetable, or the queue wait timed out — shed, retry later.
//   - ctx.Err(): the caller's context ended while queued; the queue slot and
//     semaphore count are provably restored (see TestCancelWhileQueued).
func (c *Controller) Acquire(ctx context.Context, n int64) (release func(), err error) {
	if c == nil {
		return func() {}, nil
	}
	if n < 1 {
		n = 1
	}
	if err := ctx.Err(); err != nil {
		c.canceled.Add(1)
		return nil, err
	}
	if c.capacity == 0 {
		c.shed.Add(1)
		return nil, ErrOverloaded
	}
	// A weight above capacity could never fit; clamp it so the request runs
	// with the semaphore to itself instead of being unserviceable forever
	// (think -max-inflight 1 and a weight-2 image render).
	if n > c.capacity {
		n = c.capacity
	}
	c.mu.Lock()
	// Fast path: room available and nobody queued ahead of us.
	if c.cur+n <= c.capacity && c.waiters.Len() == 0 {
		c.cur += n
		c.mu.Unlock()
		c.admitted.Add(1)
		return c.releaseFunc(n), nil
	}
	if c.waiters.Len() >= c.queueCap {
		c.mu.Unlock()
		c.shed.Add(1)
		return nil, ErrOverloaded
	}
	// Deadline-aware wait budget: never hold a request in line longer than
	// it could still be served. A request whose deadline is already
	// unmeetable is shed immediately rather than queued to die.
	budget := c.maxWait
	if d, ok := ctx.Deadline(); ok {
		remain := time.Until(d)
		if remain <= 0 {
			c.mu.Unlock()
			c.shed.Add(1)
			return nil, ErrOverloaded
		}
		if remain < budget {
			budget = remain
		}
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	el := c.waiters.PushBack(w)
	c.queued.Add(1)
	c.mu.Unlock()

	timer := time.NewTimer(budget)
	defer timer.Stop()
	select {
	case <-w.ready:
		c.queued.Add(-1)
		c.admitted.Add(1)
		return c.releaseFunc(n), nil
	case <-ctx.Done():
		if c.abandon(el, w) {
			c.queued.Add(-1)
			c.canceled.Add(1)
			return nil, ctx.Err()
		}
		// Granted in the race window: we already own the units — keep them,
		// the caller decides whether the work still runs.
		c.queued.Add(-1)
		c.admitted.Add(1)
		return c.releaseFunc(n), nil
	case <-timer.C:
		if c.abandon(el, w) {
			c.queued.Add(-1)
			c.shed.Add(1)
			return nil, ErrOverloaded
		}
		c.queued.Add(-1)
		c.admitted.Add(1)
		return c.releaseFunc(n), nil
	}
}

// abandon removes a waiter that is giving up. It reports true when the
// waiter was still queued (nothing was granted); false when a release
// granted it concurrently — the caller then owns the units.
func (c *Controller) abandon(el *list.Element, w *waiter) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	select {
	case <-w.ready:
		return false // grant won the race; units are ours
	default:
	}
	c.waiters.Remove(el)
	return true
}

// releaseFunc returns the idempotent release for n admitted units.
func (c *Controller) releaseFunc(n int64) func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			c.mu.Lock()
			c.cur -= n
			c.grantLocked()
			c.mu.Unlock()
		})
	}
}

// grantLocked admits queued waiters FIFO while the head fits. The mutex
// must be held.
func (c *Controller) grantLocked() {
	for c.waiters.Len() > 0 {
		w := c.waiters.Front().Value.(*waiter)
		if c.cur+w.n > c.capacity {
			return // strict FIFO: a heavy head is not jumped by light waiters
		}
		c.cur += w.n
		c.waiters.Remove(c.waiters.Front())
		close(w.ready)
	}
}

// RetryAfter is the hint the server sends with a shed response: the queue
// wait bound rounded up to whole seconds (at least 1).
func (c *Controller) RetryAfter() time.Duration {
	if c == nil {
		return time.Second
	}
	secs := math.Ceil(c.maxWait.Seconds())
	if secs < 1 {
		secs = 1
	}
	return time.Duration(secs) * time.Second
}

// Stats is the admission snapshot surfaced by /api/stats and the trace
// registry gauges.
type Stats struct {
	Enabled     bool    `json:"enabled"`
	MaxInFlight int64   `json:"maxInFlight"`
	InFlight    int64   `json:"inFlight"` // admitted weight in flight
	Queued      int64   `json:"queued"`
	QueueCap    int     `json:"queueCap"`
	MaxWaitMs   float64 `json:"maxWaitMs"`
	Admitted    uint64  `json:"admitted"`
	Shed        uint64  `json:"shed"`
	Canceled    uint64  `json:"canceledInQueue"`
}

// Stats snapshots the controller (zero-valued for a nil controller).
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	cur := c.cur
	c.mu.Unlock()
	return Stats{
		Enabled:     true,
		MaxInFlight: c.capacity,
		InFlight:    cur,
		Queued:      c.queued.Load(),
		QueueCap:    c.queueCap,
		MaxWaitMs:   float64(c.maxWait) / float64(time.Millisecond),
		Admitted:    c.admitted.Load(),
		Shed:        c.shed.Load(),
		Canceled:    c.canceled.Load(),
	}
}
