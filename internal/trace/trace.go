// Package trace is the request-scoped observability layer of the query
// path: a lightweight span recorder that rides the context.Context every
// handler derives, plus (stats.go) the process-wide registry of
// per-endpoint latency histograms the /api/stats endpoint reports.
//
// A Trace is created per request, attached with NewContext, and recovered
// anywhere downstream with FromContext. Stages open spans —
//
//	sp := trace.FromContext(ctx).Start("execute")
//	defer sp.End()
//	sp.Add("batches", 1)
//
// — and the server renders the finished trace into the X-Urbane-Trace
// response header. Every entry point is nil-safe: code instrumented with
// spans runs unchanged (and essentially for free) when no trace is
// attached, so the core join kernels do not need to know whether they are
// serving an HTTP request or a benchmark.
package trace

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace collects the spans of one request. Safe for concurrent use: worker
// goroutines of a parallel join may add counters to a span while the
// recording request is elsewhere. The zero value is not useful; call New.
type Trace struct {
	name  string
	start time.Time

	mu       sync.Mutex
	spans    []*Span
	keys     []string
	counters map[string]int64
}

// New starts a trace for one request of the named endpoint.
func New(name string) *Trace {
	return &Trace{name: name, start: time.Now()}
}

// Count accumulates a trace-level counter (batch counts, tile counts).
// Deep layers that have no span handle — the join kernels — use this; the
// counters render after the spans in the header. Nil-safe and safe from
// multiple goroutines of a parallel stage.
func (t *Trace) Count(key string, n int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.counters == nil {
		t.counters = make(map[string]int64)
	}
	if _, ok := t.counters[key]; !ok {
		t.keys = append(t.keys, key)
	}
	t.counters[key] += n
	t.mu.Unlock()
}

// Counters snapshots the trace-level counters.
func (t *Trace) Counters() map[string]int64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.counters) == 0 {
		return nil
	}
	out := make(map[string]int64, len(t.counters))
	for k, v := range t.counters {
		out[k] = v
	}
	return out
}

// Name returns the endpoint name the trace was created for.
func (t *Trace) Name() string {
	if t == nil {
		return ""
	}
	return t.name
}

// Span is one timed stage of a request (parse, plan, execute, encode...).
// Counters attached with Add travel with the stage in the header summary.
type Span struct {
	name  string
	start time.Time

	mu       sync.Mutex
	duration time.Duration
	ended    bool
	keys     []string
	counters map[string]int64
}

// Start opens a span. Nil-safe: a nil trace returns a nil span whose
// methods are all no-ops, so instrumented code never branches.
func (t *Trace) Start(name string) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{name: name, start: time.Now()}
	t.mu.Lock()
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}

// End closes the span, freezing its wall time. Ending twice keeps the
// first duration.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if !sp.ended {
		sp.ended = true
		sp.duration = time.Since(sp.start)
	}
	sp.mu.Unlock()
}

// Add accumulates a named counter on the span (batch counts, tile counts).
// Safe to call from multiple goroutines of a parallel stage.
func (sp *Span) Add(key string, n int64) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	if sp.counters == nil {
		sp.counters = make(map[string]int64)
	}
	if _, ok := sp.counters[key]; !ok {
		sp.keys = append(sp.keys, key)
	}
	sp.counters[key] += n
	sp.mu.Unlock()
}

// Duration returns the span's frozen wall time (the running time so far if
// the span has not ended).
func (sp *Span) Duration() time.Duration {
	if sp == nil {
		return 0
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.ended {
		return sp.duration
	}
	return time.Since(sp.start)
}

// SpanSummary is one rendered span (for tests and the stats endpoint).
type SpanSummary struct {
	Name     string
	Duration time.Duration
	Counters map[string]int64
}

// Spans snapshots the recorded spans in start order.
func (t *Trace) Spans() []SpanSummary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	t.mu.Unlock()
	out := make([]SpanSummary, len(spans))
	for i, sp := range spans {
		sp.mu.Lock()
		s := SpanSummary{Name: sp.name, Duration: sp.duration}
		if !sp.ended {
			s.Duration = time.Since(sp.start)
		}
		if len(sp.counters) > 0 {
			s.Counters = make(map[string]int64, len(sp.counters))
			for k, v := range sp.counters {
				s.Counters[k] = v
			}
		}
		sp.mu.Unlock()
		out[i] = s
	}
	return out
}

// Header renders the trace as the X-Urbane-Trace value: semicolon-separated
// stages with millisecond wall times and their counters, then the
// trace-level counters, ending with the total elapsed time —
//
//	parse=0.05;plan=0.02;execute=41.80;batches=12;tiles=1;total=42.95
//
// Durations are milliseconds with two decimals; counters are sorted by
// name for deterministic output.
func (t *Trace) Header() string {
	if t == nil {
		return ""
	}
	var b strings.Builder
	for _, s := range t.Spans() {
		if b.Len() > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s=%.2f", s.Name, ms(s.Duration))
		if len(s.Counters) > 0 {
			keys := make([]string, 0, len(s.Counters))
			for k := range s.Counters {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteByte('(')
			for i, k := range keys {
				if i > 0 {
					b.WriteByte(',')
				}
				fmt.Fprintf(&b, "%s=%d", k, s.Counters[k])
			}
			b.WriteByte(')')
		}
	}
	counters := t.Counters()
	keys := make([]string, 0, len(counters))
	for k := range counters {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if b.Len() > 0 {
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "%s=%d", k, counters[k])
	}
	if b.Len() > 0 {
		b.WriteByte(';')
	}
	fmt.Fprintf(&b, "total=%.2f", ms(time.Since(t.start)))
	return b.String()
}

// Elapsed returns the wall time since the trace began.
func (t *Trace) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return time.Since(t.start)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// ctxKey is the context key type for traces; unexported so only this
// package can attach one.
type ctxKey struct{}

// NewContext returns a context carrying the trace.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// FromContext recovers the request's trace, or nil when the context does
// not carry one (benchmarks, library use). The nil result is safe to use.
func FromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}
