package trace

import (
	"context"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsSafe(t *testing.T) {
	var tr *Trace
	sp := tr.Start("x")
	sp.Add("n", 1)
	sp.End()
	if got := tr.Header(); got != "" {
		t.Fatalf("nil trace header = %q, want empty", got)
	}
	if tr.Spans() != nil {
		t.Fatal("nil trace should have no spans")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("background context should carry no trace")
	}
	if FromContext(nil) != nil { //nolint:staticcheck // nil ctx is the point
		t.Fatal("nil context should carry no trace")
	}
}

func TestContextRoundTrip(t *testing.T) {
	tr := New("query")
	ctx := NewContext(context.Background(), tr)
	if got := FromContext(ctx); got != tr {
		t.Fatalf("FromContext = %p, want %p", got, tr)
	}
	if tr.Name() != "query" {
		t.Fatalf("Name = %q", tr.Name())
	}
}

func TestHeaderFormat(t *testing.T) {
	tr := New("query")
	sp := tr.Start("parse")
	sp.End()
	ex := tr.Start("execute")
	ex.Add("batches", 3)
	ex.Add("tiles", 1)
	ex.Add("batches", 2)
	ex.End()
	h := tr.Header()
	// Stage order preserved, counters sorted, total last.
	re := regexp.MustCompile(`^parse=\d+\.\d{2};execute=\d+\.\d{2}\(batches=5,tiles=1\);total=\d+\.\d{2}$`)
	if !re.MatchString(h) {
		t.Fatalf("header %q does not match %v", h, re)
	}
}

func TestTraceCounters(t *testing.T) {
	tr := New("query")
	sp := tr.Start("execute")
	tr.Count("tiles", 1)
	tr.Count("batches", 4)
	tr.Count("batches", 8)
	sp.End()
	if got := tr.Counters(); got["batches"] != 12 || got["tiles"] != 1 {
		t.Fatalf("counters = %v", got)
	}
	h := tr.Header()
	re := regexp.MustCompile(`^execute=\d+\.\d{2};batches=12;tiles=1;total=\d+\.\d{2}$`)
	if !re.MatchString(h) {
		t.Fatalf("header %q does not match %v", h, re)
	}
	var nilTr *Trace
	nilTr.Count("x", 1) // nil-safe
	if nilTr.Counters() != nil {
		t.Fatal("nil trace counters should be nil")
	}
}

func TestSpanDurationFreezes(t *testing.T) {
	tr := New("x")
	sp := tr.Start("s")
	time.Sleep(2 * time.Millisecond)
	sp.End()
	d := sp.Duration()
	if d <= 0 {
		t.Fatalf("duration = %v, want > 0", d)
	}
	time.Sleep(2 * time.Millisecond)
	if got := sp.Duration(); got != d {
		t.Fatalf("duration moved after End: %v != %v", got, d)
	}
	sp.End() // second End keeps the first duration
	if got := sp.Duration(); got != d {
		t.Fatalf("duration moved after second End: %v != %v", got, d)
	}
}

func TestConcurrentSpanCounters(t *testing.T) {
	tr := New("x")
	sp := tr.Start("execute")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				sp.Add("batches", 1)
			}
		}()
	}
	wg.Wait()
	sp.End()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Counters["batches"] != 8000 {
		t.Fatalf("spans = %+v, want batches=8000", spans)
	}
}

func TestRegistryOutcomes(t *testing.T) {
	r := NewRegistry()
	ep := r.Endpoint("query")
	if again := r.Endpoint("query"); again != ep {
		t.Fatal("Endpoint not memoized")
	}

	end := ep.Begin()
	if got := ep.InFlight(); got != 1 {
		t.Fatalf("inflight = %d, want 1", got)
	}
	end(200, 5*time.Millisecond)

	ep.Begin()(StatusGatewayTimeout, time.Millisecond)
	ep.Begin()(StatusClientClosedRequest, time.Millisecond)
	ep.Begin()(400, time.Millisecond)
	ep.Begin()(0, time.Millisecond) // status never written counts as ok

	s := ep.Stats()
	if s.InFlight != 0 {
		t.Fatalf("inflight = %d, want 0", s.InFlight)
	}
	if s.OK != 2 || s.Timeouts != 1 || s.Canceled != 1 || s.Errors != 1 || s.Count != 5 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h histogram
	// 90 fast samples, 10 slow ones.
	for i := 0; i < 90; i++ {
		h.observe(0.2)
	}
	for i := 0; i < 10; i++ {
		h.observe(100)
	}
	s := h.summary()
	if s.Min != 0.2 || s.Max != 100 {
		t.Fatalf("min/max = %v/%v", s.Min, s.Max)
	}
	if s.P50 > 1 {
		t.Fatalf("p50 = %v, want <= first bucket", s.P50)
	}
	if s.P99 < 50 {
		t.Fatalf("p99 = %v, want to land in the slow tail", s.P99)
	}
	if got := s.Mean; got < 10 || got > 11 {
		t.Fatalf("mean = %v, want ~10.18", got)
	}
	var n uint64
	for _, c := range s.Buckets {
		n += c
	}
	if n != 100 {
		t.Fatalf("bucket total = %d, want 100", n)
	}
	if len(s.Bounds) != len(s.Buckets) || s.Bounds[len(s.Bounds)-1] != -1 {
		t.Fatalf("bounds malformed: %v", s.Bounds)
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := NewRegistry()
	r.Endpoint("tile").Begin()(200, time.Millisecond)
	r.Endpoint("query").Begin()(200, time.Millisecond)
	snap := r.Snapshot()
	var names []string
	for _, s := range snap {
		names = append(names, s.Name)
	}
	if strings.Join(names, ",") != "query,tile" {
		t.Fatalf("snapshot order = %v", names)
	}
	if r.Uptime() <= 0 {
		t.Fatal("uptime should be positive")
	}
}
