package trace

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry aggregates per-endpoint request statistics for the /api/stats
// endpoint: latency histograms, outcome counters (ok / error / timeout /
// canceled), and in-flight gauges. One Registry lives per server; safe for
// concurrent use.
type Registry struct {
	start time.Time

	mu        sync.Mutex
	endpoints map[string]*Endpoint

	gmu    sync.Mutex
	gauges map[string]int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		start:     time.Now(),
		endpoints: make(map[string]*Endpoint),
		gauges:    make(map[string]int64),
	}
}

// SetGauge records a named process-level gauge (admission in-flight, queue
// depth, shed totals...); /api/stats reports the full gauge map.
func (r *Registry) SetGauge(name string, v int64) {
	r.gmu.Lock()
	r.gauges[name] = v
	r.gmu.Unlock()
}

// Gauges snapshots the named gauges.
func (r *Registry) Gauges() map[string]int64 {
	r.gmu.Lock()
	defer r.gmu.Unlock()
	out := make(map[string]int64, len(r.gauges))
	for k, v := range r.gauges {
		out[k] = v
	}
	return out
}

// Endpoint returns (creating on first use) the named endpoint's recorder.
func (r *Registry) Endpoint(name string) *Endpoint {
	r.mu.Lock()
	defer r.mu.Unlock()
	ep, ok := r.endpoints[name]
	if !ok {
		ep = &Endpoint{name: name}
		r.endpoints[name] = ep
	}
	return ep
}

// Uptime returns how long the registry has been collecting.
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }

// Snapshot returns every endpoint's stats, sorted by name.
func (r *Registry) Snapshot() []EndpointStats {
	r.mu.Lock()
	eps := make([]*Endpoint, 0, len(r.endpoints))
	for _, ep := range r.endpoints {
		eps = append(eps, ep)
	}
	r.mu.Unlock()
	sort.Slice(eps, func(i, j int) bool { return eps[i].name < eps[j].name })
	out := make([]EndpointStats, len(eps))
	for i, ep := range eps {
		out[i] = ep.Stats()
	}
	return out
}

// Endpoint records one route's requests.
type Endpoint struct {
	name     string
	inflight atomic.Int64

	mu   sync.Mutex
	ok   uint64
	errs uint64 // non-2xx other than timeout/cancel/shed
	tout uint64 // deadline exceeded (504)
	canc uint64 // client gone (499)
	shed uint64 // admission shed the request (503)
	hist histogram
}

// Begin marks a request in flight; the returned func records its outcome.
// status is the HTTP status finally written (0 counts as 200).
func (ep *Endpoint) Begin() (end func(status int, elapsed time.Duration)) {
	ep.inflight.Add(1)
	return func(status int, elapsed time.Duration) {
		ep.inflight.Add(-1)
		ep.mu.Lock()
		switch {
		case status == StatusGatewayTimeout:
			ep.tout++
		case status == StatusClientClosedRequest:
			ep.canc++
		case status == StatusServiceUnavailable:
			ep.shed++
		case status == 0 || status < 400:
			ep.ok++
		default:
			ep.errs++
		}
		ep.hist.observe(ms(elapsed))
		ep.mu.Unlock()
	}
}

// HTTP statuses the registry classifies specially. 499 is the de-facto
// "client closed request" status (nginx); Go's stdlib has no constant.
const (
	StatusGatewayTimeout      = 504
	StatusClientClosedRequest = 499
	StatusServiceUnavailable  = 503
)

// InFlight returns the number of requests currently being served.
func (ep *Endpoint) InFlight() int64 { return ep.inflight.Load() }

// EndpointStats is one endpoint's aggregate view, JSON-shaped for the
// /api/stats response.
type EndpointStats struct {
	Name     string         `json:"name"`
	InFlight int64          `json:"inFlight"`
	Count    uint64         `json:"count"`
	OK       uint64         `json:"ok"`
	Errors   uint64         `json:"errors"`
	Timeouts uint64         `json:"timeouts"`
	Canceled uint64         `json:"canceled"`
	Shed     uint64         `json:"shed"`
	Latency  LatencySummary `json:"latencyMs"`
}

// LatencySummary reports the histogram in milliseconds. Quantiles are
// bucket-interpolated (log-scale buckets, so coarse but monotone).
type LatencySummary struct {
	Min     float64  `json:"min"`
	Mean    float64  `json:"mean"`
	Max     float64  `json:"max"`
	P50     float64  `json:"p50"`
	P90     float64  `json:"p90"`
	P99     float64  `json:"p99"`
	Buckets []uint64 `json:"buckets"`
	// Bounds[i] is the inclusive upper bound (ms) of Buckets[i]; the last
	// bucket is unbounded and reported as +Inf's stand-in, -1.
	Bounds []float64 `json:"bucketUpperMs"`
}

// Stats snapshots the endpoint's counters.
func (ep *Endpoint) Stats() EndpointStats {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	s := EndpointStats{
		Name:     ep.name,
		InFlight: ep.inflight.Load(),
		OK:       ep.ok,
		Errors:   ep.errs,
		Timeouts: ep.tout,
		Canceled: ep.canc,
		Shed:     ep.shed,
		Latency:  ep.hist.summary(),
	}
	s.Count = s.OK + s.Errors + s.Timeouts + s.Canceled + s.Shed
	return s
}

// histogram is a log2-bucketed latency histogram: bucket i counts samples
// with latency <= 0.25ms * 2^i, the last bucket is unbounded. 17 buckets
// span 0.25ms .. ~16s, which covers interactive queries through
// pathological raster joins.
const (
	histBuckets = 17
	histFirstMs = 0.25
)

type histogram struct {
	counts [histBuckets]uint64
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// bucketBound returns bucket i's inclusive upper bound in ms (-1 for the
// unbounded last bucket).
func bucketBound(i int) float64 {
	if i == histBuckets-1 {
		return -1
	}
	return histFirstMs * math.Pow(2, float64(i))
}

func (h *histogram) observe(v float64) {
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	bound := histFirstMs
	for i := 0; i < histBuckets-1; i++ {
		if v <= bound {
			h.counts[i]++
			return
		}
		bound *= 2
	}
	h.counts[histBuckets-1]++
}

// quantile interpolates the q-quantile from the buckets (upper-bound
// attribution: the true quantile is at most the returned value, except in
// the unbounded bucket where the observed max is used).
func (h *histogram) quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := q * float64(h.n)
	var cum float64
	for i := 0; i < histBuckets; i++ {
		//lint:ignore floataccum 17 integer bucket counts, exactly representable; no rounding to compensate
		cum += float64(h.counts[i])
		if cum >= rank {
			if b := bucketBound(i); b >= 0 {
				return math.Min(b, h.max)
			}
			return h.max
		}
	}
	return h.max
}

func (h *histogram) summary() LatencySummary {
	s := LatencySummary{
		Min:     h.min,
		Max:     h.max,
		P50:     h.quantile(0.50),
		P90:     h.quantile(0.90),
		P99:     h.quantile(0.99),
		Buckets: append([]uint64(nil), h.counts[:]...),
		Bounds:  make([]float64, histBuckets),
	}
	if h.n > 0 {
		s.Mean = h.sum / float64(h.n)
	}
	for i := range s.Bounds {
		s.Bounds[i] = bucketBound(i)
	}
	return s
}
