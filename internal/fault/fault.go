// Package fault is the deterministic fault-injection layer behind the
// chaos/soak suite (internal/chaos): a seeded registry of injection rules
// keyed by site name, consulted by hook points threaded through the query
// path — the HTTP decoders (`server.decode`), the query-result cache's
// compute flights (`qcache.compute`), the join entry (`core.join`), and the
// point pass (`core.pointpass`).
//
// Three fault kinds exist: Latency (a context-aware sleep), Error (an
// injected error), and Cancel (the site behaves as if its context had been
// canceled mid-work). A rule fires probabilistically, but deterministically:
// each site draws from its own PRNG seeded by (registry seed, site name), so
// two registries built with the same seed produce the identical decision
// sequence at every site — the precondition the chaos suite's replay
// assertions rest on.
//
// The registry rides the request context (NewContext / Inject), exactly like
// internal/trace, so the deep layers need no new plumbing. Everything is
// nil-safe, and when no registry was ever created in the process the hook is
// a single atomic load — production servers that never arm faults pay
// nothing.
package fault

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an injected fault.
type Kind int

const (
	// Latency delays the site by the rule's Delay (context-aware: a
	// canceled context cuts the sleep short and surfaces ctx.Err()).
	Latency Kind = iota
	// Error makes the site return the rule's Err (ErrInjected when unset).
	Error
	// Cancel makes the site return context.Canceled, as if the request had
	// been canceled mid-work.
	Cancel
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Latency:
		return "latency"
	case Error:
		return "error"
	case Cancel:
		return "cancel"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ErrInjected is the default error an Error rule returns.
var ErrInjected = errors.New("fault: injected error")

// Rule arms one site: each call at the site fires the fault with
// probability Prob.
type Rule struct {
	Prob  float64       // per-call fire probability in [0, 1]
	Kind  Kind          // what firing does
	Delay time.Duration // Latency: how long to sleep
	Err   error         // Error: what to return (nil = ErrInjected)
}

// site is one armed site: its rule plus a private PRNG so decision
// sequences are per-site deterministic regardless of what other sites do.
type site struct {
	rule  Rule
	mu    sync.Mutex
	rng   *rand.Rand
	calls uint64
	fired uint64
}

// Registry holds the armed sites. Safe for concurrent use; the zero value
// is not useful — construct with New. A nil *Registry injects nothing.
type Registry struct {
	seed int64

	mu    sync.RWMutex
	sites map[string]*site
}

// armed is true once any registry has been created in this process; the
// package-level Inject hook checks it first so un-armed binaries pay one
// atomic load per hook point and nothing else.
var armed atomic.Bool

// New returns an empty registry. All schedules derive from seed: the same
// seed and the same per-site call sequence yield the same decisions.
func New(seed int64) *Registry {
	armed.Store(true)
	return &Registry{seed: seed, sites: make(map[string]*site)}
}

// siteSeed mixes the registry seed with the site name so each site draws an
// independent, reproducible stream.
func (r *Registry) siteSeed(name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return r.seed ^ int64(h.Sum64())
}

// Set arms (or re-arms, resetting its PRNG) the named site. Prob is clamped
// to [0, 1].
func (r *Registry) Set(name string, rule Rule) {
	if r == nil {
		return
	}
	if rule.Prob < 0 {
		rule.Prob = 0
	}
	if rule.Prob > 1 {
		rule.Prob = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sites[name] = &site{rule: rule, rng: rand.New(rand.NewSource(r.siteSeed(name)))}
}

// Clear disarms every site: subsequent Inject calls are no-ops. The chaos
// suite uses it to turn a soaked server pristine before the replay phase.
func (r *Registry) Clear() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sites = make(map[string]*site)
}

// Sites returns the armed site names, unordered.
func (r *Registry) Sites() []string {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.sites))
	for n := range r.sites {
		names = append(names, n)
	}
	return names
}

// Counts reports, per armed site, how many hook calls were seen and how
// many fired.
func (r *Registry) Counts() map[string][2]uint64 {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string][2]uint64, len(r.sites))
	for n, s := range r.sites {
		s.mu.Lock()
		out[n] = [2]uint64{s.calls, s.fired}
		s.mu.Unlock()
	}
	return out
}

// decide advances the named site's schedule one step and reports whether
// this call fires, and under which rule.
func (r *Registry) decide(name string) (Rule, bool) {
	if r == nil {
		return Rule{}, false
	}
	r.mu.RLock()
	s := r.sites[name]
	r.mu.RUnlock()
	if s == nil {
		return Rule{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.calls++
	fire := s.rng.Float64() < s.rule.Prob
	if fire {
		s.fired++
	}
	return s.rule, fire
}

// Schedule previews the first n fire/skip decisions the named site would
// make from a fresh registry with the same seed, without consuming this
// registry's state. Tests use it to assert determinism.
func (r *Registry) Schedule(name string, n int) []bool {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	s := r.sites[name]
	r.mu.RUnlock()
	if s == nil {
		return make([]bool, n)
	}
	s.mu.Lock()
	prob := s.rule.Prob
	s.mu.Unlock()
	rng := rand.New(rand.NewSource(r.siteSeed(name)))
	out := make([]bool, n)
	for i := range out {
		out[i] = rng.Float64() < prob
	}
	return out
}

// Inject is the hook sites call: it advances the site's schedule and, when
// the rule fires, applies the fault — sleeping, returning an error, or
// returning context.Canceled. A nil registry, unknown site, or skip
// decision returns nil.
func (r *Registry) Inject(ctx context.Context, name string) error {
	rule, fire := r.decide(name)
	if !fire {
		return nil
	}
	switch rule.Kind {
	case Latency:
		if rule.Delay <= 0 {
			return nil
		}
		t := time.NewTimer(rule.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case Error:
		if rule.Err != nil {
			return rule.Err
		}
		return ErrInjected
	case Cancel:
		return context.Canceled
	default:
		return nil
	}
}

// ctxKey is the context key type for registries; unexported so only this
// package can attach one.
type ctxKey struct{}

// NewContext returns a context carrying the registry; request middleware
// attaches it so every downstream hook sees the same schedule.
func NewContext(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// FromContext recovers the registry, or nil when the context carries none.
func FromContext(ctx context.Context) *Registry {
	if ctx == nil {
		return nil
	}
	r, _ := ctx.Value(ctxKey{}).(*Registry)
	return r
}

// Inject is the package-level hook the instrumented layers call:
//
//	if err := fault.Inject(ctx, "core.pointpass"); err != nil { return err }
//
// When no registry was ever created in the process this is one atomic load;
// when the context carries no registry it is additionally one context
// lookup. Faults therefore cost nothing unless a test or the -faults flag
// armed them.
func Inject(ctx context.Context, name string) error {
	if !armed.Load() {
		return nil
	}
	return FromContext(ctx).Inject(ctx, name)
}

// ParseSpec builds a registry from the -faults flag grammar: a
// comma-separated list of
//
//	site=kind:prob[:delay]
//
// e.g. "core.pointpass=latency:0.2:5ms,server.decode=error:0.05". kind is
// latency, error, or cancel; prob is a float in [0,1]; delay (latency only)
// is a Go duration. An empty spec returns an empty registry.
func ParseSpec(seed int64, spec string) (*Registry, error) {
	r := New(seed)
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return r, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("fault: bad spec %q (want site=kind:prob[:delay])", part)
		}
		fields := strings.Split(rest, ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("fault: bad spec %q (want site=kind:prob[:delay])", part)
		}
		var rule Rule
		switch fields[0] {
		case "latency":
			rule.Kind = Latency
		case "error":
			rule.Kind = Error
		case "cancel":
			rule.Kind = Cancel
		default:
			return nil, fmt.Errorf("fault: unknown kind %q in %q", fields[0], part)
		}
		prob, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || prob < 0 || prob > 1 {
			return nil, fmt.Errorf("fault: bad probability %q in %q", fields[1], part)
		}
		rule.Prob = prob
		if len(fields) == 3 {
			if rule.Kind != Latency {
				return nil, fmt.Errorf("fault: delay only applies to latency faults: %q", part)
			}
			d, err := time.ParseDuration(fields[2])
			if err != nil || d < 0 {
				return nil, fmt.Errorf("fault: bad delay %q in %q", fields[2], part)
			}
			rule.Delay = d
		}
		r.Set(name, rule)
	}
	return r, nil
}
