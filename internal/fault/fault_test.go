package fault

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

// TestDeterministicSchedule is the chaos suite's determinism precondition:
// two registries with the same seed and the same rules produce the
// identical fire/skip sequence at every site, across runs and regardless of
// how the sites interleave.
func TestDeterministicSchedule(t *testing.T) {
	sites := []string{"core.pointpass", "qcache.compute", "server.decode", "core.join"}
	build := func(seed int64) *Registry {
		r := New(seed)
		for i, s := range sites {
			r.Set(s, Rule{Prob: 0.1 + 0.2*float64(i), Kind: Error})
		}
		return r
	}
	observe := func(r *Registry, n int) map[string][]bool {
		out := make(map[string][]bool)
		// Interleave the sites differently than a site-by-site sweep would,
		// to show per-site streams are independent of global call order.
		for i := 0; i < n; i++ {
			for _, s := range sites {
				err := r.Inject(context.Background(), s)
				out[s] = append(out[s], err != nil)
			}
		}
		return out
	}

	a, b := build(42), build(42)
	seqA := observe(a, 200)
	// Drive b site-by-site instead of round-robin: same per-site sequence
	// must emerge.
	seqB := make(map[string][]bool)
	for _, s := range sites {
		for i := 0; i < 200; i++ {
			err := b.Inject(context.Background(), s)
			seqB[s] = append(seqB[s], err != nil)
		}
	}
	for _, s := range sites {
		if len(seqA[s]) != 200 || len(seqB[s]) != 200 {
			t.Fatalf("site %s: sequence lengths %d/%d", s, len(seqA[s]), len(seqB[s]))
		}
		fired := 0
		for i := range seqA[s] {
			if seqA[s][i] != seqB[s][i] {
				t.Fatalf("site %s: decision %d differs between same-seed registries", s, i)
			}
			if seqA[s][i] {
				fired++
			}
		}
		if fired == 0 {
			t.Errorf("site %s: no faults fired in 200 calls at prob >= 0.1", s)
		}
		// The schedule preview must match what Inject actually did.
		pre := build(42).Schedule(s, 200)
		for i := range pre {
			if pre[i] != seqA[s][i] {
				t.Fatalf("site %s: Schedule()[%d] = %v, observed %v", s, i, pre[i], seqA[s][i])
			}
		}
	}

	// A different seed should produce a different schedule somewhere.
	c := build(43)
	seqC := observe(c, 200)
	same := true
	for _, s := range sites {
		for i := range seqA[s] {
			if seqA[s][i] != seqC[s][i] {
				same = false
			}
		}
	}
	if same {
		t.Error("seed 42 and 43 produced identical schedules at every site")
	}
}

// TestDeterminismQuick: for arbitrary seeds and probabilities, same-seed
// registries agree on every decision.
func TestDeterminismQuick(t *testing.T) {
	prop := func(seed int64, probMille uint16) bool {
		prob := float64(probMille%1001) / 1000
		a, b := New(seed), New(seed)
		a.Set("x", Rule{Prob: prob, Kind: Error})
		b.Set("x", Rule{Prob: prob, Kind: Error})
		for i := 0; i < 64; i++ {
			if (a.Inject(context.Background(), "x") != nil) !=
				(b.Inject(context.Background(), "x") != nil) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50,
		Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// TestDisabledInjectsNothing: a nil registry, a context without a registry,
// an unknown site, and a zero-probability rule all inject nothing at any
// site.
func TestDisabledInjectsNothing(t *testing.T) {
	ctx := context.Background()
	var nilReg *Registry
	for i := 0; i < 100; i++ {
		if err := nilReg.Inject(ctx, "core.pointpass"); err != nil {
			t.Fatalf("nil registry injected: %v", err)
		}
		if err := Inject(ctx, "core.pointpass"); err != nil {
			t.Fatalf("registry-less context injected: %v", err)
		}
	}
	r := New(1)
	r.Set("armed", Rule{Prob: 1, Kind: Error})
	r.Set("zero", Rule{Prob: 0, Kind: Error})
	for i := 0; i < 100; i++ {
		if err := r.Inject(ctx, "unknown.site"); err != nil {
			t.Fatalf("unknown site injected: %v", err)
		}
		if err := r.Inject(ctx, "zero"); err != nil {
			t.Fatalf("prob-0 site injected: %v", err)
		}
	}
	if err := r.Inject(ctx, "armed"); err == nil {
		t.Fatal("prob-1 site did not inject")
	}
	r.Clear()
	if err := r.Inject(ctx, "armed"); err != nil {
		t.Fatalf("cleared registry injected: %v", err)
	}
	// Counts survive only for armed sites; after Clear the map is empty.
	if n := len(r.Counts()); n != 0 {
		t.Errorf("counts after Clear: %d sites", n)
	}
}

// TestKinds: each kind produces its contracted effect.
func TestKinds(t *testing.T) {
	ctx := context.Background()
	r := New(5)

	r.Set("err", Rule{Prob: 1, Kind: Error})
	if err := r.Inject(ctx, "err"); !errors.Is(err, ErrInjected) {
		t.Errorf("Error kind: got %v, want ErrInjected", err)
	}
	custom := errors.New("boom")
	r.Set("err2", Rule{Prob: 1, Kind: Error, Err: custom})
	if err := r.Inject(ctx, "err2"); !errors.Is(err, custom) {
		t.Errorf("Error kind with custom err: got %v", err)
	}

	r.Set("cancel", Rule{Prob: 1, Kind: Cancel})
	if err := r.Inject(ctx, "cancel"); !errors.Is(err, context.Canceled) {
		t.Errorf("Cancel kind: got %v, want context.Canceled", err)
	}

	r.Set("lat", Rule{Prob: 1, Kind: Latency, Delay: 5 * time.Millisecond})
	start := time.Now()
	if err := r.Inject(ctx, "lat"); err != nil {
		t.Errorf("Latency kind returned error: %v", err)
	}
	if d := time.Since(start); d < 4*time.Millisecond {
		t.Errorf("Latency fault slept %v, want >= ~5ms", d)
	}

	// A canceled context cuts the sleep short and surfaces ctx.Err().
	r.Set("lat2", Rule{Prob: 1, Kind: Latency, Delay: time.Hour})
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if err := r.Inject(cctx, "lat2"); !errors.Is(err, context.Canceled) {
		t.Errorf("Latency under canceled ctx: got %v", err)
	}

	// Counts: every armed site above saw its calls and fires.
	counts := r.Counts()
	for _, s := range []string{"err", "cancel", "lat"} {
		if c := counts[s]; c[0] != 1 || c[1] != 1 {
			t.Errorf("site %s counts = %v, want [1 1]", s, c)
		}
	}
}

// TestParseSpec covers the -faults grammar.
func TestParseSpec(t *testing.T) {
	r, err := ParseSpec(9, "core.pointpass=latency:0.2:5ms, server.decode=error:0.05,qcache.compute=cancel:1")
	if err != nil {
		t.Fatal(err)
	}
	if n := len(r.Sites()); n != 3 {
		t.Fatalf("sites = %d, want 3", n)
	}
	if err := r.Inject(context.Background(), "qcache.compute"); !errors.Is(err, context.Canceled) {
		t.Errorf("prob-1 cancel site: got %v", err)
	}
	if r, err := ParseSpec(9, ""); err != nil || len(r.Sites()) != 0 {
		t.Errorf("empty spec: %v, %d sites", err, len(r.Sites()))
	}
	for _, bad := range []string{
		"nosite", "x=latency", "x=latency:2", "x=warp:0.5",
		"x=error:0.5:5ms", "x=latency:0.5:xyz", "=error:0.5",
	} {
		if _, err := ParseSpec(9, bad); err == nil {
			t.Errorf("spec %q: want error", bad)
		}
	}
}

// TestConcurrentInject: concurrent hook calls on one site race-cleanly and
// account every call.
func TestConcurrentInject(t *testing.T) {
	r := New(3)
	r.Set("s", Rule{Prob: 0.5, Kind: Error})
	done := make(chan struct{})
	const workers, per = 8, 100
	for w := 0; w < workers; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < per; i++ {
				_ = r.Inject(context.Background(), "s")
			}
		}()
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if c := r.Counts()["s"]; c[0] != workers*per {
		t.Errorf("calls = %d, want %d", c[0], workers*per)
	}
}
