// Package fsum provides compensated floating-point summation for the
// aggregation kernels. Naive `sum += v` over millions of points loses up
// to O(n·eps) relative accuracy; the helpers here bound the error at
// O(eps) (Neumaier/Kahan) or O(eps·log n) (pairwise) for a few extra flops
// per element.
//
// It is a leaf package so that geometry code can use it without importing
// the kernel layer; internal/core re-exports the slice helpers under the
// names the floataccum analyzer suggests.
package fsum

// Kahan is a running compensated accumulator (Neumaier's variant, which
// unlike classic Kahan stays accurate when a term exceeds the running sum).
// The zero value is an empty sum.
type Kahan struct {
	sum, c float64
}

// Add folds v into the accumulator.
func (k *Kahan) Add(v float64) {
	t := k.sum + v
	if abs(k.sum) >= abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *Kahan) Sum() float64 { return k.sum + k.c }

// Sum returns the Neumaier-compensated sum of xs.
func Sum(xs []float64) float64 {
	var k Kahan
	for _, v := range xs {
		k.Add(v)
	}
	return k.Sum()
}

// Pairwise returns the pairwise (cascade) sum of xs: error O(eps·log n)
// with plain adds, and it vectorizes better than Kahan on long slices.
func Pairwise(xs []float64) float64 {
	const base = 32
	if len(xs) <= base {
		s := 0.0
		for _, v := range xs {
			//lint:ignore floataccum pairwise base case: block is <= 32 terms, error bounded
			s += v
		}
		return s
	}
	half := len(xs) / 2
	return Pairwise(xs[:half]) + Pairwise(xs[half:])
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
