package fsum

import (
	"math"
	"math/rand"
	"testing"
)

// The classic Kahan stress case: a huge term followed by many small ones.
// Naive summation loses every small term; compensated summation keeps them.
func TestKahanIllConditioned(t *testing.T) {
	xs := make([]float64, 1+1000)
	xs[0] = 1e16
	for i := 1; i < len(xs); i++ {
		xs[i] = 1.0
	}
	want := 1e16 + 1000

	naive := 0.0
	for _, v := range xs {
		naive += v
	}
	if naive == want {
		t.Fatalf("test is not ill-conditioned: naive sum is already exact")
	}
	if got := Sum(xs); got != want {
		t.Errorf("Sum = %v, want %v", got, want)
	}
	var k Kahan
	for _, v := range xs {
		k.Add(v)
	}
	if got := k.Sum(); got != want {
		t.Errorf("Kahan.Sum = %v, want %v", got, want)
	}
}

// Neumaier's improvement over classic Kahan: the big term arrives after
// the sum, so |v| > |sum| at the critical add.
func TestNeumaierBigTermLate(t *testing.T) {
	xs := []float64{1, 1e100, 1, -1e100}
	if got := Sum(xs); got != 2 {
		t.Errorf("Sum = %v, want 2", got)
	}
}

func TestPairwiseMatchesKahan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 31, 32, 33, 1000, 4096} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * math.Pow(10, float64(rng.Intn(6)))
		}
		exact := Sum(xs)
		got := Pairwise(xs)
		if math.Abs(got-exact) > 1e-9*math.Max(1, math.Abs(exact)) {
			t.Errorf("n=%d: Pairwise = %v, Kahan = %v", n, got, exact)
		}
	}
}

func TestEmptyAndSingle(t *testing.T) {
	if Sum(nil) != 0 || Pairwise(nil) != 0 {
		t.Error("empty sum should be 0")
	}
	if Sum([]float64{3.5}) != 3.5 || Pairwise([]float64{3.5}) != 3.5 {
		t.Error("single-element sum should be identity")
	}
}

func BenchmarkSum(b *testing.B) {
	xs := make([]float64, 1<<16)
	for i := range xs {
		xs[i] = float64(i) * 0.1
	}
	b.Run("kahan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Sum(xs)
		}
	})
	b.Run("pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Pairwise(xs)
		}
	})
}
