package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestSimplifyLineKeepsEndpoints(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0.01}, {2, -0.01}, {3, 0}, {4, 5}, {5, 0}}
	got := SimplifyLine(pts, 0.1)
	if !got[0].Eq(pts[0]) || !got[len(got)-1].Eq(pts[len(pts)-1]) {
		t.Error("endpoints must be retained")
	}
	// The spike at (4,5) must survive.
	found := false
	for _, p := range got {
		if p.Eq(Pt(4, 5)) {
			found = true
		}
	}
	if !found {
		t.Error("spike vertex should be retained")
	}
	// Jitter vertices should be dropped.
	if len(got) >= len(pts) {
		t.Errorf("simplification did not drop vertices: %d -> %d", len(pts), len(got))
	}
}

func TestSimplifyLineNoTolerance(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}, {2, 0}}
	got := SimplifyLine(pts, 0)
	if len(got) != 3 {
		t.Errorf("tol=0 should keep everything, got %d", len(got))
	}
	// Result must be a copy.
	got[0] = Pt(99, 99)
	if pts[0].Eq(Pt(99, 99)) {
		t.Error("SimplifyLine should not alias its input")
	}
}

func TestSimplifyLineCollinear(t *testing.T) {
	pts := []Point{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}}
	got := SimplifyLine(pts, 0.001)
	if len(got) != 2 {
		t.Errorf("collinear line should simplify to 2 points, got %d", len(got))
	}
}

func TestSimplifyRingPreservesShape(t *testing.T) {
	// Dense circle: simplification with a small tolerance should keep the
	// area close to the original.
	ring := RegularRing(Pt(0, 0), 10, 256)
	got := SimplifyRing(ring, 0.05)
	if len(got) >= len(ring) {
		t.Errorf("ring did not shrink: %d -> %d", len(ring), len(got))
	}
	if len(got) < 3 {
		t.Fatalf("ring degenerated to %d vertices", len(got))
	}
	if math.Abs(got.Area()-ring.Area())/ring.Area() > 0.02 {
		t.Errorf("area drifted: %v -> %v", ring.Area(), got.Area())
	}
}

func TestSimplifyRingSmallInputUnchanged(t *testing.T) {
	sq := unitSquare()
	got := SimplifyRing(sq, 10)
	if len(got) != 4 {
		t.Errorf("4-vertex ring should be returned as-is, got %d vertices", len(got))
	}
}

func TestConvexHullSquarePlusInterior(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 1}, {0.5, 1.5}, {1, 0.3}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull size = %d, want 4", len(hull))
	}
	if !hull.IsCCW() {
		t.Error("hull should be CCW")
	}
	if hull.Area() != 4 {
		t.Errorf("hull area = %v, want 4", hull.Area())
	}
}

func TestConvexHullCollinear(t *testing.T) {
	pts := []Point{{0, 0}, {1, 1}, {2, 2}, {3, 3}}
	hull := ConvexHull(pts)
	if len(hull) > 2 {
		t.Errorf("collinear hull size = %d, want <= 2", len(hull))
	}
}

func TestConvexHullSmallInputs(t *testing.T) {
	if h := ConvexHull(nil); len(h) != 0 {
		t.Errorf("nil hull = %v", h)
	}
	if h := ConvexHull([]Point{{1, 2}}); len(h) != 1 {
		t.Errorf("single-point hull size = %d", len(h))
	}
	if h := ConvexHull([]Point{{1, 2}, {3, 4}}); len(h) != 2 {
		t.Errorf("two-point hull size = %d", len(h))
	}
}

// Property: every input point is inside or on the hull, and the hull is
// convex (every turn is a left turn).
func TestConvexHullProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		n := 3 + rng.Intn(100)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Pt(rng.Float64()*100, rng.Float64()*100)
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		for i := range hull {
			a := hull[i]
			b := hull[(i+1)%len(hull)]
			c := hull[(i+2)%len(hull)]
			if Orientation(a, b, c) < 0 {
				t.Fatalf("iter %d: hull has a right turn at %v", iter, b)
			}
		}
		for _, p := range pts {
			if !hull.ContainsBoundary(p, 1e-9) {
				t.Fatalf("iter %d: input point %v outside hull", iter, p)
			}
		}
	}
}

// Property: Douglas-Peucker output error is bounded by tol — every dropped
// vertex lies within tol of the simplified chain.
func TestSimplifyLineErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 100; iter++ {
		n := 10 + rng.Intn(100)
		pts := make([]Point, n)
		x := 0.0
		for i := range pts {
			x += rng.Float64()
			pts[i] = Pt(x, rng.Float64()*10)
		}
		tol := 0.5 + rng.Float64()*2
		simp := SimplifyLine(pts, tol)
		// For each original point, distance to the nearest simplified
		// segment must be <= tol (DP guarantees this for the segment that
		// replaced it; nearest-segment distance is a lower bound).
		for _, p := range pts {
			best := math.Inf(1)
			for i := 0; i+1 < len(simp); i++ {
				if d := SegmentDistSq(p, simp[i], simp[i+1]); d < best {
					best = d
				}
			}
			if math.Sqrt(best) > tol+1e-9 {
				t.Fatalf("iter %d: point %v is %v from chain, tol %v", iter, p, math.Sqrt(best), tol)
			}
		}
	}
}
