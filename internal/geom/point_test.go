package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPointArithmetic(t *testing.T) {
	p := Pt(1, 2)
	q := Pt(3, -4)
	if got := p.Add(q); !got.Eq(Pt(4, -2)) {
		t.Errorf("Add = %v, want (4,-2)", got)
	}
	if got := p.Sub(q); !got.Eq(Pt(-2, 6)) {
		t.Errorf("Sub = %v, want (-2,6)", got)
	}
	if got := p.Scale(2); !got.Eq(Pt(2, 4)) {
		t.Errorf("Scale = %v, want (2,4)", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v, want -5", got)
	}
	if got := p.Cross(q); got != -4-6 {
		t.Errorf("Cross = %v, want -10", got)
	}
}

func TestPointDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); d != 5 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Pt(0, 0).DistSq(Pt(3, 4)); d != 25 {
		t.Errorf("DistSq = %v, want 25", d)
	}
	if n := Pt(3, 4).Norm(); n != 5 {
		t.Errorf("Norm = %v, want 5", n)
	}
}

func TestPointLerp(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 20)
	if got := a.Lerp(b, 0); !got.Eq(a) {
		t.Errorf("Lerp(0) = %v, want %v", got, a)
	}
	if got := a.Lerp(b, 1); !got.Eq(b) {
		t.Errorf("Lerp(1) = %v, want %v", got, b)
	}
	if got := a.Lerp(b, 0.5); !got.Eq(Pt(5, 10)) {
		t.Errorf("Lerp(0.5) = %v, want (5,10)", got)
	}
}

func TestNearEq(t *testing.T) {
	if !Pt(1, 1).NearEq(Pt(1.0001, 0.9999), 0.001) {
		t.Error("NearEq should accept within eps")
	}
	if Pt(1, 1).NearEq(Pt(1.01, 1), 0.001) {
		t.Error("NearEq should reject beyond eps")
	}
}

func TestOrientation(t *testing.T) {
	a, b := Pt(0, 0), Pt(1, 0)
	if got := Orientation(a, b, Pt(1, 1)); got != 1 {
		t.Errorf("left turn = %d, want 1", got)
	}
	if got := Orientation(a, b, Pt(1, -1)); got != -1 {
		t.Errorf("right turn = %d, want -1", got)
	}
	if got := Orientation(a, b, Pt(2, 0)); got != 0 {
		t.Errorf("collinear = %d, want 0", got)
	}
}

func TestSegmentDistSq(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 0)
	tests := []struct {
		p    Point
		want float64
	}{
		{Pt(5, 3), 9},    // above the middle
		{Pt(-3, 4), 25},  // beyond a
		{Pt(13, -4), 25}, // beyond b
		{Pt(7, 0), 0},    // on the segment
	}
	for _, tc := range tests {
		if got := SegmentDistSq(tc.p, a, b); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("SegmentDistSq(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	// Degenerate segment.
	if got := SegmentDistSq(Pt(3, 4), a, a); got != 25 {
		t.Errorf("degenerate segment dist = %v, want 25", got)
	}
}

func TestOnSegment(t *testing.T) {
	a, b := Pt(0, 0), Pt(10, 10)
	if !OnSegment(Pt(5, 5), a, b, 1e-9) {
		t.Error("midpoint should be on segment")
	}
	if OnSegment(Pt(5, 6), a, b, 1e-9) {
		t.Error("offset point should not be on segment")
	}
	if !OnSegment(Pt(5, 6), a, b, 1) {
		t.Error("offset point within eps should count")
	}
}

func TestSegmentsIntersect(t *testing.T) {
	tests := []struct {
		a, b, c, d Point
		want       bool
	}{
		{Pt(0, 0), Pt(10, 10), Pt(0, 10), Pt(10, 0), true}, // X crossing
		{Pt(0, 0), Pt(10, 0), Pt(0, 1), Pt(10, 1), false},  // parallel apart
		{Pt(0, 0), Pt(10, 0), Pt(5, 0), Pt(15, 0), true},   // collinear overlap
		{Pt(0, 0), Pt(10, 0), Pt(11, 0), Pt(15, 0), false}, // collinear apart
		{Pt(0, 0), Pt(10, 0), Pt(10, 0), Pt(10, 10), true}, // shared endpoint
		{Pt(0, 0), Pt(1, 1), Pt(2, 2), Pt(3, 0), false},    // no touch
		{Pt(0, 0), Pt(10, 0), Pt(5, 0), Pt(5, 5), true},    // T junction
		{Pt(0, 0), Pt(10, 0), Pt(5, 1), Pt(5, 5), false},   // near T, no touch
	}
	for i, tc := range tests {
		if got := SegmentsIntersect(tc.a, tc.b, tc.c, tc.d); got != tc.want {
			t.Errorf("case %d: SegmentsIntersect = %v, want %v", i, got, tc.want)
		}
	}
}

func TestSegmentIntersection(t *testing.T) {
	p, ok := SegmentIntersection(Pt(0, 0), Pt(10, 10), Pt(0, 10), Pt(10, 0))
	if !ok || !p.NearEq(Pt(5, 5), 1e-12) {
		t.Errorf("intersection = %v ok=%v, want (5,5) true", p, ok)
	}
	if _, ok := SegmentIntersection(Pt(0, 0), Pt(1, 0), Pt(0, 1), Pt(1, 1)); ok {
		t.Error("parallel segments should not intersect")
	}
	if _, ok := SegmentIntersection(Pt(0, 0), Pt(1, 1), Pt(5, 0), Pt(5, 1)); ok {
		t.Error("disjoint segments should not intersect")
	}
}

// Property: SegmentsIntersect agrees with SegmentIntersection for
// non-collinear configurations.
func TestSegmentIntersectAgreement(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy int8) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		c := Pt(float64(cx), float64(cy))
		d := Pt(float64(dx), float64(dy))
		// Skip degenerate and collinear cases, where the boolean test
		// legitimately detects overlap that the point-form cannot name.
		if a.Eq(b) || c.Eq(d) {
			return true
		}
		if Orientation(a, b, c) == 0 || Orientation(a, b, d) == 0 ||
			Orientation(c, d, a) == 0 || Orientation(c, d, b) == 0 {
			return true
		}
		_, ok := SegmentIntersection(a, b, c, d)
		return ok == SegmentsIntersect(a, b, c, d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: orientation is antisymmetric under swapping the last two
// arguments.
func TestOrientationAntisymmetric(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy int16) bool {
		a := Pt(float64(ax), float64(ay))
		b := Pt(float64(bx), float64(by))
		c := Pt(float64(cx), float64(cy))
		return Orientation(a, b, c) == -Orientation(a, c, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
