package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestClipRingFullyInside(t *testing.T) {
	sq := unitSquare()
	got := ClipRingToBBox(sq, BBox{-1, -1, 2, 2})
	if got.Area() != 1 {
		t.Errorf("fully-inside clip area = %v, want 1", got.Area())
	}
}

func TestClipRingFullyOutside(t *testing.T) {
	sq := unitSquare()
	if got := ClipRingToBBox(sq, BBox{5, 5, 6, 6}); got != nil {
		t.Errorf("fully-outside clip = %v, want nil", got)
	}
}

func TestClipRingHalf(t *testing.T) {
	sq := unitSquare()
	got := ClipRingToBBox(sq, BBox{0.5, -1, 2, 2})
	if math.Abs(got.Area()-0.5) > 1e-12 {
		t.Errorf("half clip area = %v, want 0.5", got.Area())
	}
}

func TestClipRingCorner(t *testing.T) {
	sq := unitSquare()
	got := ClipRingToBBox(sq, BBox{0.5, 0.5, 2, 2})
	if math.Abs(got.Area()-0.25) > 1e-12 {
		t.Errorf("corner clip area = %v, want 0.25", got.Area())
	}
}

func TestClipNonConvexRing(t *testing.T) {
	l := lShape() // area 3 within [0,2]^2
	got := ClipRingToBBox(l, BBox{0, 0, 2, 0.5})
	// Bottom strip of the L is a full 2x0.5 rectangle.
	if math.Abs(got.Area()-1.0) > 1e-12 {
		t.Errorf("L bottom strip area = %v, want 1", got.Area())
	}
}

func TestClipEmptyInputs(t *testing.T) {
	if got := ClipRingToBBox(nil, BBox{0, 0, 1, 1}); got != nil {
		t.Errorf("nil ring clip = %v, want nil", got)
	}
	if got := ClipRingToBBox(unitSquare(), EmptyBBox()); got != nil {
		t.Errorf("empty box clip = %v, want nil", got)
	}
}

func TestClipPolygonToBBox(t *testing.T) {
	outer := Ring{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}
	hole := Ring{Pt(1, 1), Pt(3, 1), Pt(3, 3), Pt(1, 3)}
	pg := Polygon{Outer: outer, Holes: []Ring{hole}}
	pg.Normalize()

	// Clip to the left half: outer becomes 2x4, hole becomes 1x2.
	got, ok := ClipPolygonToBBox(pg, BBox{0, 0, 2, 4})
	if !ok {
		t.Fatal("clip should succeed")
	}
	if math.Abs(got.Area()-(8-2)) > 1e-12 {
		t.Errorf("clipped area = %v, want 6", got.Area())
	}

	// Clip to a corner that avoids the hole entirely.
	got, ok = ClipPolygonToBBox(pg, BBox{0, 0, 0.5, 0.5})
	if !ok || len(got.Holes) != 0 {
		t.Errorf("corner clip holes = %d, want 0", len(got.Holes))
	}

	// Entirely outside.
	if _, ok := ClipPolygonToBBox(pg, BBox{10, 10, 11, 11}); ok {
		t.Error("outside clip should report !ok")
	}
}

func TestClipSegmentToBBox(t *testing.T) {
	box := BBox{0, 0, 10, 10}
	p0, p1, ok := ClipSegmentToBBox(Pt(-5, 5), Pt(15, 5), box)
	if !ok || !p0.NearEq(Pt(0, 5), 1e-12) || !p1.NearEq(Pt(10, 5), 1e-12) {
		t.Errorf("horizontal clip = %v %v %v", p0, p1, ok)
	}
	if _, _, ok := ClipSegmentToBBox(Pt(-5, 20), Pt(15, 20), box); ok {
		t.Error("segment above box should not clip")
	}
	// Fully inside.
	p0, p1, ok = ClipSegmentToBBox(Pt(1, 1), Pt(2, 2), box)
	if !ok || !p0.Eq(Pt(1, 1)) || !p1.Eq(Pt(2, 2)) {
		t.Errorf("inside clip altered segment: %v %v", p0, p1)
	}
	// Diagonal crossing a corner region.
	p0, p1, ok = ClipSegmentToBBox(Pt(-5, -5), Pt(15, 15), box)
	if !ok || !p0.NearEq(Pt(0, 0), 1e-12) || !p1.NearEq(Pt(10, 10), 1e-12) {
		t.Errorf("diagonal clip = %v %v %v", p0, p1, ok)
	}
	// Degenerate (point) segment inside.
	if _, _, ok = ClipSegmentToBBox(Pt(5, 5), Pt(5, 5), box); !ok {
		t.Error("point segment inside box should clip ok")
	}
}

func TestClipRingToHalfPlane(t *testing.T) {
	sq := unitSquare()
	// Keep the left half: plane through (0.5, 0) with normal +X.
	got := ClipRingToHalfPlane(sq, Pt(0.5, 0), Pt(1, 0))
	if math.Abs(got.Area()-0.5) > 1e-12 {
		t.Errorf("left-half area = %v, want 0.5", got.Area())
	}
	for _, p := range got {
		if p.X > 0.5+1e-12 {
			t.Errorf("vertex %v on wrong side", p)
		}
	}
	// Keep everything: plane far to the right.
	got = ClipRingToHalfPlane(sq, Pt(10, 0), Pt(1, 0))
	if math.Abs(got.Area()-1) > 1e-12 {
		t.Errorf("full-keep area = %v, want 1", got.Area())
	}
	// Keep nothing: plane far to the left.
	if got = ClipRingToHalfPlane(sq, Pt(-10, 0), Pt(1, 0)); got != nil {
		t.Errorf("full-drop = %v, want nil", got)
	}
	// Diagonal half-plane: keep below y=x (normal (-1,1)/sqrt2 through origin).
	got = ClipRingToHalfPlane(sq, Pt(0, 0), Pt(-1, 1))
	if math.Abs(got.Area()-0.5) > 1e-12 {
		t.Errorf("diagonal-half area = %v, want 0.5", got.Area())
	}
}

// Property: successive half-plane clips commute with bbox clipping — the
// Voronoi construction's core assumption.
func TestHalfPlaneMatchesBBoxClip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 100; i++ {
		ring := RegularRing(Pt(rng.Float64()*10, rng.Float64()*10), 1+rng.Float64()*4, 24)
		cut := rng.Float64() * 10
		// Clip with x <= cut two ways.
		viaHP := ClipRingToHalfPlane(ring, Pt(cut, 0), Pt(1, 0))
		viaBox := ClipRingToBBox(ring, BBox{MinX: -100, MinY: -100, MaxX: cut, MaxY: 100})
		av, bv := 0.0, 0.0
		if viaHP != nil {
			av = viaHP.Area()
		}
		if viaBox != nil {
			bv = viaBox.Area()
		}
		if math.Abs(av-bv) > 1e-9 {
			t.Fatalf("iter %d: half-plane %v vs bbox %v", i, av, bv)
		}
	}
}

// Property: clipped area never exceeds either the ring area or the box
// area, and clipped vertices all lie inside the (slightly expanded) box.
func TestClipRingAreaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 300; i++ {
		ring := RegularRing(Pt(rng.Float64()*10-5, rng.Float64()*10-5),
			0.5+rng.Float64()*5, 3+rng.Intn(30))
		box := NewBBox(rng.Float64()*10-5, rng.Float64()*10-5,
			rng.Float64()*10-5, rng.Float64()*10-5)
		got := ClipRingToBBox(ring, box)
		if got == nil {
			continue
		}
		a := got.Area()
		if a > ring.Area()+1e-9 {
			t.Fatalf("clip area %v exceeds ring area %v", a, ring.Area())
		}
		if a > box.Area()+1e-9 {
			t.Fatalf("clip area %v exceeds box area %v", a, box.Area())
		}
		big := box.Expand(1e-9)
		for _, p := range got {
			if !big.Contains(p) {
				t.Fatalf("clipped vertex %v outside box %v", p, box)
			}
		}
	}
}

// Property: clipping a ring to its own bounding box preserves its area.
func TestClipRingIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		ring := StarRing(Pt(rng.Float64()*4, rng.Float64()*4), 2, 1, 3+rng.Intn(8))
		got := ClipRingToBBox(ring, ring.BBox().Expand(1e-9))
		if got == nil || math.Abs(got.Area()-ring.Area()) > 1e-6 {
			t.Fatalf("identity clip changed area: %v -> %v", ring.Area(), got.Area())
		}
	}
}
