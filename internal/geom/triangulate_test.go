package geom

import (
	"math"
	"math/rand"
	"testing"
)

func triangleAreaSum(tris []Triangle) float64 {
	var s float64
	for _, tr := range tris {
		s += tr.Area()
	}
	return s
}

func TestTriangleContains(t *testing.T) {
	tr := Triangle{Pt(0, 0), Pt(4, 0), Pt(0, 4)}
	if !tr.Contains(Pt(1, 1)) {
		t.Error("should contain interior point")
	}
	if !tr.Contains(Pt(2, 0)) {
		t.Error("should contain edge point")
	}
	if tr.Contains(Pt(3, 3)) {
		t.Error("should not contain exterior point")
	}
	if a := tr.Area(); a != 8 {
		t.Errorf("area = %v, want 8", a)
	}
}

func TestTriangulateSquare(t *testing.T) {
	tris := Triangulate(NewPolygon(unitSquare()))
	if len(tris) != 2 {
		t.Fatalf("square triangulation = %d triangles, want 2", len(tris))
	}
	if s := triangleAreaSum(tris); math.Abs(s-1) > 1e-12 {
		t.Errorf("triangle area sum = %v, want 1", s)
	}
}

func TestTriangulateLShape(t *testing.T) {
	tris := Triangulate(NewPolygon(lShape()))
	if len(tris) != 4 {
		t.Errorf("L-shape triangulation = %d triangles, want 4", len(tris))
	}
	if s := triangleAreaSum(tris); math.Abs(s-3) > 1e-12 {
		t.Errorf("triangle area sum = %v, want 3", s)
	}
}

func TestTriangulateClockwiseInput(t *testing.T) {
	cw := unitSquare()
	cw.Reverse()
	tris := Triangulate(NewPolygon(cw))
	if s := triangleAreaSum(tris); math.Abs(s-1) > 1e-12 {
		t.Errorf("CW input area sum = %v, want 1 (Normalize should fix winding)", s)
	}
}

func TestTriangulateStar(t *testing.T) {
	star := StarRing(Pt(0, 0), 2, 0.8, 7)
	tris := Triangulate(NewPolygon(star))
	want := star.Area()
	if s := triangleAreaSum(tris); math.Abs(s-want) > 1e-9 {
		t.Errorf("star area sum = %v, want %v", s, want)
	}
	// n-gon ear clipping yields n-2 triangles.
	if len(tris) != len(star)-2 {
		t.Errorf("star triangulation = %d triangles, want %d", len(tris), len(star)-2)
	}
}

func TestTriangulateWithHole(t *testing.T) {
	outer := Ring{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}
	hole := Ring{Pt(1, 1), Pt(3, 1), Pt(3, 3), Pt(1, 3)}
	pg := Polygon{Outer: outer, Holes: []Ring{hole}}
	tris := Triangulate(pg)
	if s := triangleAreaSum(tris); math.Abs(s-12) > 1e-9 {
		t.Errorf("holed area sum = %v, want 12", s)
	}
	// No triangle's centroid may fall in the hole.
	for _, tr := range tris {
		c := Pt((tr[0].X+tr[1].X+tr[2].X)/3, (tr[0].Y+tr[1].Y+tr[2].Y)/3)
		if hole.Contains(c) {
			t.Errorf("triangle centroid %v falls inside the hole", c)
		}
	}
}

func TestTriangulateTwoHoles(t *testing.T) {
	outer := Ring{Pt(0, 0), Pt(10, 0), Pt(10, 4), Pt(0, 4)}
	h1 := Ring{Pt(1, 1), Pt(3, 1), Pt(3, 3), Pt(1, 3)}
	h2 := Ring{Pt(6, 1), Pt(8, 1), Pt(8, 3), Pt(6, 3)}
	pg := Polygon{Outer: outer, Holes: []Ring{h1, h2}}
	tris := Triangulate(pg)
	want := 40.0 - 4 - 4
	if s := triangleAreaSum(tris); math.Abs(s-want) > 1e-9 {
		t.Errorf("two-hole area sum = %v, want %v", s, want)
	}
}

func TestTriangulateDegenerate(t *testing.T) {
	if tris := Triangulate(NewPolygon(Ring{Pt(0, 0), Pt(1, 1)})); tris != nil {
		t.Errorf("degenerate polygon triangulation = %v, want nil", tris)
	}
	if tris := Triangulate(Polygon{}); tris != nil {
		t.Errorf("empty polygon triangulation = %v, want nil", tris)
	}
}

// Property: triangulation preserves area for random star-shaped polygons,
// and every triangle centroid is inside the polygon.
func TestTriangulateAreaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 120; i++ {
		n := 3 + rng.Intn(40)
		// Random star-shaped ring: vertices at increasing angles with
		// random radii, which is always simple.
		ring := make(Ring, n)
		for j := range ring {
			theta := 2 * math.Pi * (float64(j) + rng.Float64()*0.6) / float64(n)
			r := 0.5 + rng.Float64()*4
			ring[j] = Pt(r*math.Cos(theta), r*math.Sin(theta))
		}
		pg := NewPolygon(ring)
		tris := Triangulate(pg)
		if s := triangleAreaSum(tris); math.Abs(s-ring.Area()) > 1e-6*math.Max(1, ring.Area()) {
			t.Fatalf("iter %d: area sum %v != ring area %v (n=%d)", i, s, ring.Area(), n)
		}
		for _, tr := range tris {
			c := Pt((tr[0].X+tr[1].X+tr[2].X)/3, (tr[0].Y+tr[1].Y+tr[2].Y)/3)
			if !pg.ContainsBoundary(c, 1e-9) {
				t.Fatalf("iter %d: triangle centroid %v outside polygon", i, c)
			}
		}
	}
}
