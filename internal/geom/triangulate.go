package geom

import (
	"math"
	"sort"
)

// Triangle is a triple of vertices.
type Triangle [3]Point

// Area returns the (unsigned) area of the triangle.
func (t Triangle) Area() float64 {
	return math.Abs((t[1].Sub(t[0])).Cross(t[2].Sub(t[0]))) / 2
}

// Contains reports whether p lies in the closed triangle.
func (t Triangle) Contains(p Point) bool {
	d1 := sign(p, t[0], t[1])
	d2 := sign(p, t[1], t[2])
	d3 := sign(p, t[2], t[0])
	hasNeg := d1 < 0 || d2 < 0 || d3 < 0
	hasPos := d1 > 0 || d2 > 0 || d3 > 0
	return !(hasNeg && hasPos)
}

func sign(p, a, b Point) float64 {
	return (p.X-b.X)*(a.Y-b.Y) - (a.X-b.X)*(p.Y-b.Y)
}

// Triangulate decomposes a polygon into triangles. Holes are first bridged
// into the outer ring (creating a single weakly-simple ring), then the ring
// is ear-clipped. The triangle fan produced here is what the GPU substrate
// draws: the real Raster Join renders polygons as triangle lists produced by
// an identical CPU-side triangulation.
//
// Triangulate returns nil for degenerate polygons.
func Triangulate(pg Polygon) []Triangle {
	p := pg.Clone()
	p.Normalize()
	ring := p.Outer
	// Bridge holes in descending max-X order. Bridges are cut rightward
	// (+X) from each hole's rightmost vertex, so merging right-to-left
	// guarantees every not-yet-merged hole lies strictly left of the bridge
	// corridor and cannot be crossed by it.
	holes := append([]Ring(nil), p.Holes...)
	sort.Slice(holes, func(i, j int) bool {
		return ringMaxX(holes[i]) > ringMaxX(holes[j])
	})
	for _, h := range holes {
		ring = bridgeHole(ring, h)
	}
	return earClip(ring)
}

func ringMaxX(r Ring) float64 {
	m := math.Inf(-1)
	for _, p := range r {
		if p.X > m {
			m = p.X
		}
	}
	return m
}

// bridgeHole merges a (clockwise) hole into a (counter-clockwise) outer ring
// by cutting a zero-width bridge between mutually visible vertices, following
// the standard approach: pick the hole vertex with maximum X and connect it
// to a visible outer vertex found by ray casting.
func bridgeHole(outer Ring, hole Ring) Ring {
	if len(hole) < 3 {
		return outer
	}
	// Hole vertex with maximum X.
	hi := 0
	for i, p := range hole {
		if p.X > hole[hi].X {
			hi = i
		}
	}
	m := hole[hi]

	// Cast a ray from m in +X; find the closest intersecting outer edge.
	bestT := math.Inf(1)
	bestEdge := -1
	var bestPt Point
	for i := range outer {
		a := outer[i]
		b := outer[(i+1)%len(outer)]
		// Edge must straddle the horizontal line y = m.Y.
		if (a.Y > m.Y) == (b.Y > m.Y) {
			continue
		}
		t := a.X + (m.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
		if t >= m.X && t < bestT {
			bestT = t
			bestEdge = i
			bestPt = Point{t, m.Y}
		}
	}
	if bestEdge == -1 {
		// Hole is outside the outer ring (shouldn't happen for valid input);
		// drop it.
		return outer
	}

	// Candidate connection vertex: the endpoint of the intersected edge with
	// the larger X (the one on the near side of the ray hit), then check for
	// reflex vertices inside triangle (m, bestPt, cand) and prefer the
	// closest by angle, per the classic ear-cutting hole bridging.
	a := outer[bestEdge]
	b := outer[(bestEdge+1)%len(outer)]
	cand := bestEdge
	if b.X > a.X {
		cand = (bestEdge + 1) % len(outer)
	}
	tri := Triangle{m, bestPt, outer[cand]}
	bestDist := math.Inf(1)
	chosen := cand
	for i, p := range outer {
		if i == cand {
			continue
		}
		if p.X >= m.X && tri.Contains(p) {
			d := p.DistSq(m)
			if d < bestDist {
				bestDist = d
				chosen = i
			}
		}
	}

	// Splice: outer[0..chosen], hole[hi..], hole[..hi], outer[chosen..].
	out := make(Ring, 0, len(outer)+len(hole)+2)
	out = append(out, outer[:chosen+1]...)
	for k := 0; k < len(hole); k++ {
		out = append(out, hole[(hi+k)%len(hole)])
	}
	out = append(out, hole[hi])      // return to the bridge start on the hole
	out = append(out, outer[chosen]) // and back onto the outer ring
	out = append(out, outer[chosen+1:]...)
	return out
}

// earClip triangulates a weakly-simple counter-clockwise ring by iteratively
// removing ears. It is O(n²) in the worst case, which is fine for the
// vertex counts urban polygons carry (tens to a few hundred vertices).
func earClip(r Ring) []Triangle {
	n := len(r)
	if n < 3 {
		return nil
	}
	// Work on an index list so bridged duplicate vertices survive.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var tris []Triangle
	guard := 0
	for len(idx) > 3 && guard < n*n {
		guard++
		clipped := false
		for i := 0; i < len(idx); i++ {
			ia := idx[(i+len(idx)-1)%len(idx)]
			ib := idx[i]
			ic := idx[(i+1)%len(idx)]
			a, b, c := r[ia], r[ib], r[ic]
			if Orientation(a, b, c) <= 0 {
				continue // reflex or collinear; not an ear
			}
			ear := Triangle{a, b, c}
			ok := true
			for _, j := range idx {
				if j == ia || j == ib || j == ic {
					continue
				}
				p := r[j]
				if p.Eq(a) || p.Eq(b) || p.Eq(c) {
					continue // duplicated bridge vertices
				}
				if ear.Contains(p) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			tris = append(tris, ear)
			idx = append(idx[:i], idx[i+1:]...)
			clipped = true
			break
		}
		if !clipped {
			// Numerical trouble (e.g. collinear runs): shave the first
			// vertex to guarantee progress; the dropped sliver has zero
			// area.
			idx = idx[1:]
		}
	}
	if len(idx) == 3 {
		t := Triangle{r[idx[0]], r[idx[1]], r[idx[2]]}
		if t.Area() > 0 {
			tris = append(tris, t)
		}
	}
	return tris
}
