package geom

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyBBox(t *testing.T) {
	e := EmptyBBox()
	if !e.IsEmpty() {
		t.Fatal("EmptyBBox should be empty")
	}
	if e.Width() != 0 || e.Height() != 0 || e.Area() != 0 {
		t.Error("empty box should have zero dimensions")
	}
	if e.Contains(Pt(0, 0)) {
		t.Error("empty box should contain nothing")
	}
	if !strings.Contains(e.String(), "empty") {
		t.Errorf("String = %q, want to mention empty", e.String())
	}
}

func TestNewBBoxNormalizesCorners(t *testing.T) {
	b := NewBBox(10, 20, -5, 3)
	want := BBox{-5, 3, 10, 20}
	if b != want {
		t.Errorf("NewBBox = %v, want %v", b, want)
	}
}

func TestBBoxOf(t *testing.T) {
	b := BBoxOf(Pt(1, 5), Pt(-2, 3), Pt(4, -1))
	want := BBox{-2, -1, 4, 5}
	if b != want {
		t.Errorf("BBoxOf = %v, want %v", b, want)
	}
	if !BBoxOf().IsEmpty() {
		t.Error("BBoxOf() should be empty")
	}
}

func TestBBoxDimensions(t *testing.T) {
	b := BBox{0, 0, 4, 3}
	if b.Width() != 4 || b.Height() != 3 || b.Area() != 12 {
		t.Errorf("dims = %v/%v/%v, want 4/3/12", b.Width(), b.Height(), b.Area())
	}
	if c := b.Center(); !c.Eq(Pt(2, 1.5)) {
		t.Errorf("Center = %v, want (2,1.5)", c)
	}
}

func TestBBoxContains(t *testing.T) {
	b := BBox{0, 0, 10, 10}
	for _, p := range []Point{{5, 5}, {0, 0}, {10, 10}, {0, 10}} {
		if !b.Contains(p) {
			t.Errorf("should contain %v", p)
		}
	}
	for _, p := range []Point{{-1, 5}, {5, 11}, {10.001, 5}} {
		if b.Contains(p) {
			t.Errorf("should not contain %v", p)
		}
	}
}

func TestBBoxIntersects(t *testing.T) {
	a := BBox{0, 0, 10, 10}
	cases := []struct {
		b    BBox
		want bool
	}{
		{BBox{5, 5, 15, 15}, true},
		{BBox{10, 10, 20, 20}, true}, // touching corner counts
		{BBox{11, 0, 20, 10}, false},
		{BBox{0, -20, 10, -11}, false},
		{BBox{2, 2, 3, 3}, true}, // fully inside
	}
	for i, tc := range cases {
		if got := a.Intersects(tc.b); got != tc.want {
			t.Errorf("case %d: Intersects = %v, want %v", i, got, tc.want)
		}
		if got := tc.b.Intersects(a); got != tc.want {
			t.Errorf("case %d: Intersects not symmetric", i)
		}
	}
	if a.Intersects(EmptyBBox()) || EmptyBBox().Intersects(a) {
		t.Error("nothing intersects the empty box")
	}
}

func TestBBoxIntersectUnion(t *testing.T) {
	a := BBox{0, 0, 10, 10}
	b := BBox{5, 5, 15, 15}
	if got, want := a.Intersect(b), (BBox{5, 5, 10, 10}); got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	if got, want := a.Union(b), (BBox{0, 0, 15, 15}); got != want {
		t.Errorf("Union = %v, want %v", got, want)
	}
	if got := a.Intersect(BBox{20, 20, 30, 30}); !got.IsEmpty() {
		t.Errorf("disjoint Intersect = %v, want empty", got)
	}
	if got := a.Union(EmptyBBox()); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
}

func TestBBoxContainsBBox(t *testing.T) {
	a := BBox{0, 0, 10, 10}
	if !a.ContainsBBox(BBox{2, 2, 8, 8}) {
		t.Error("should contain inner box")
	}
	if !a.ContainsBBox(a) {
		t.Error("should contain itself")
	}
	if a.ContainsBBox(BBox{2, 2, 11, 8}) {
		t.Error("should not contain overflowing box")
	}
	if !a.ContainsBBox(EmptyBBox()) {
		t.Error("everything contains the empty box")
	}
	if EmptyBBox().ContainsBBox(a) {
		t.Error("empty box contains nothing non-empty")
	}
}

func TestBBoxExpand(t *testing.T) {
	b := BBox{0, 0, 10, 10}
	if got, want := b.Expand(2), (BBox{-2, -2, 12, 12}); got != want {
		t.Errorf("Expand(2) = %v, want %v", got, want)
	}
	if got, want := b.Expand(-2), (BBox{2, 2, 8, 8}); got != want {
		t.Errorf("Expand(-2) = %v, want %v", got, want)
	}
	if got := b.Expand(-6); !got.IsEmpty() {
		t.Errorf("over-shrunk box = %v, want empty", got)
	}
}

func TestBBoxCorners(t *testing.T) {
	b := BBox{0, 0, 2, 3}
	c := b.Corners()
	ring := Ring{c[0], c[1], c[2], c[3]}
	if !ring.IsCCW() {
		t.Error("corners should wind counter-clockwise")
	}
	if ring.Area() != 6 {
		t.Errorf("corner ring area = %v, want 6", ring.Area())
	}
}

// Property: Union is commutative, associative in effect, and contains both
// inputs.
func TestBBoxUnionProperties(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 int8) bool {
		a := NewBBox(float64(x0), float64(y0), float64(x1), float64(y1))
		b := NewBBox(float64(x2), float64(y2), float64(x3), float64(y3))
		u := a.Union(b)
		return u == b.Union(a) && u.ContainsBBox(a) && u.ContainsBBox(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// Property: the intersection is contained in both inputs, and Intersects
// agrees with non-emptiness of Intersect.
func TestBBoxIntersectProperties(t *testing.T) {
	f := func(x0, y0, x1, y1, x2, y2, x3, y3 int8) bool {
		a := NewBBox(float64(x0), float64(y0), float64(x1), float64(y1))
		b := NewBBox(float64(x2), float64(y2), float64(x3), float64(y3))
		in := a.Intersect(b)
		if in.IsEmpty() != !a.Intersects(b) {
			return false
		}
		if in.IsEmpty() {
			return true
		}
		return a.ContainsBBox(in) && b.ContainsBBox(in)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
