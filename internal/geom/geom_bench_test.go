package geom

import (
	"math/rand"
	"strconv"
	"testing"
)

func benchRing(n int) Ring { return RegularRing(Pt(0, 0), 100, n) }

func BenchmarkRingContains(b *testing.B) {
	for _, n := range []int{8, 64, 512} {
		ring := benchRing(n)
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ring.Contains(Pt(float64(i%200)-100, 13))
			}
		})
	}
}

func BenchmarkPolygonContainsWithHoles(b *testing.B) {
	pg := Polygon{
		Outer: benchRing(64),
		Holes: []Ring{RegularRing(Pt(30, 0), 10, 16), RegularRing(Pt(-30, 0), 10, 16)},
	}
	pg.Normalize()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pg.Contains(Pt(float64(i%200)-100, 7))
	}
}

func BenchmarkTriangulate(b *testing.B) {
	for _, n := range []int{16, 128} {
		star := StarRing(Pt(0, 0), 100, 40, n/2)
		pg := NewPolygon(star)
		b.Run(strconv.Itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if tris := Triangulate(pg); len(tris) == 0 {
					b.Fatal("no triangles")
				}
			}
		})
	}
}

func BenchmarkConvexHull(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 10_000)
	for i := range pts {
		pts[i] = Pt(rng.Float64()*1000, rng.Float64()*1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if h := ConvexHull(pts); len(h) < 3 {
			b.Fatal("degenerate hull")
		}
	}
}

func BenchmarkClipRingToBBox(b *testing.B) {
	ring := benchRing(256)
	box := BBox{MinX: -50, MinY: -50, MaxX: 50, MaxY: 50}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c := ClipRingToBBox(ring, box); len(c) < 3 {
			b.Fatal("clip vanished")
		}
	}
}

func BenchmarkSimplifyRing(b *testing.B) {
	ring := benchRing(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := SimplifyRing(ring, 0.5); len(s) < 3 {
			b.Fatal("oversimplified")
		}
	}
}
