package geom

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func unitSquare() Ring { return Ring{Pt(0, 0), Pt(1, 0), Pt(1, 1), Pt(0, 1)} }

func lShape() Ring {
	// An L: 2x2 square missing its top-right 1x1 quadrant. Area 3.
	return Ring{Pt(0, 0), Pt(2, 0), Pt(2, 1), Pt(1, 1), Pt(1, 2), Pt(0, 2)}
}

func TestRingSignedArea(t *testing.T) {
	sq := unitSquare()
	if a := sq.SignedArea(); a != 1 {
		t.Errorf("CCW square signed area = %v, want 1", a)
	}
	cw := sq.Clone()
	cw.Reverse()
	if a := cw.SignedArea(); a != -1 {
		t.Errorf("CW square signed area = %v, want -1", a)
	}
	if a := lShape().Area(); a != 3 {
		t.Errorf("L-shape area = %v, want 3", a)
	}
	if a := (Ring{Pt(0, 0), Pt(1, 1)}).SignedArea(); a != 0 {
		t.Errorf("degenerate ring area = %v, want 0", a)
	}
}

func TestRingIsCCWAndReverse(t *testing.T) {
	sq := unitSquare()
	if !sq.IsCCW() {
		t.Error("unit square should be CCW")
	}
	sq.Reverse()
	if sq.IsCCW() {
		t.Error("reversed square should be CW")
	}
}

func TestRingCentroid(t *testing.T) {
	if c := unitSquare().Centroid(); !c.NearEq(Pt(0.5, 0.5), 1e-12) {
		t.Errorf("square centroid = %v, want (0.5,0.5)", c)
	}
	// L-shape centroid: three unit squares at centers (.5,.5), (1.5,.5), (.5,1.5).
	want := Pt((0.5+1.5+0.5)/3, (0.5+0.5+1.5)/3)
	if c := lShape().Centroid(); !c.NearEq(want, 1e-12) {
		t.Errorf("L centroid = %v, want %v", c, want)
	}
	// Degenerate: vertex mean.
	if c := (Ring{Pt(0, 0), Pt(2, 2)}).Centroid(); !c.NearEq(Pt(1, 1), 1e-12) {
		t.Errorf("degenerate centroid = %v, want (1,1)", c)
	}
}

func TestRingPerimeter(t *testing.T) {
	if p := unitSquare().Perimeter(); p != 4 {
		t.Errorf("square perimeter = %v, want 4", p)
	}
	if p := (Ring{Pt(0, 0)}).Perimeter(); p != 0 {
		t.Errorf("single point perimeter = %v, want 0", p)
	}
}

func TestRingContains(t *testing.T) {
	l := lShape()
	in := []Point{{0.5, 0.5}, {1.5, 0.5}, {0.5, 1.5}, {0.99, 0.99}}
	out := []Point{{1.5, 1.5}, {2.5, 0.5}, {-0.5, 0.5}, {1.01, 1.01}}
	for _, p := range in {
		if !l.Contains(p) {
			t.Errorf("L should contain %v", p)
		}
	}
	for _, p := range out {
		if l.Contains(p) {
			t.Errorf("L should not contain %v", p)
		}
	}
}

func TestRingContainsBoundary(t *testing.T) {
	sq := unitSquare()
	if !sq.ContainsBoundary(Pt(1, 0.5), 1e-9) {
		t.Error("boundary point should be contained with ContainsBoundary")
	}
	if sq.ContainsBoundary(Pt(1.1, 0.5), 1e-9) {
		t.Error("outside point should not be contained")
	}
}

func TestPolygonWithHole(t *testing.T) {
	outer := Ring{Pt(0, 0), Pt(4, 0), Pt(4, 4), Pt(0, 4)}
	hole := Ring{Pt(1, 1), Pt(3, 1), Pt(3, 3), Pt(1, 3)}
	pg := Polygon{Outer: outer, Holes: []Ring{hole}}
	pg.Normalize()

	if a := pg.Area(); a != 16-4 {
		t.Errorf("area = %v, want 12", a)
	}
	if !pg.Contains(Pt(0.5, 0.5)) {
		t.Error("annulus should contain corner region point")
	}
	if pg.Contains(Pt(2, 2)) {
		t.Error("annulus should not contain hole center")
	}
	if pg.Contains(Pt(5, 5)) {
		t.Error("annulus should not contain exterior point")
	}
	// Symmetric hole keeps centroid at the outer centroid.
	if c := pg.Centroid(); !c.NearEq(Pt(2, 2), 1e-9) {
		t.Errorf("centroid = %v, want (2,2)", c)
	}
	if n := pg.VertexCount(); n != 8 {
		t.Errorf("VertexCount = %d, want 8", n)
	}
}

func TestPolygonNormalize(t *testing.T) {
	outer := unitSquare()
	outer.Reverse()                                                      // make CW
	hole := Ring{Pt(0.2, 0.2), Pt(0.8, 0.2), Pt(0.8, 0.8), Pt(0.2, 0.8)} // CCW
	pg := Polygon{Outer: outer, Holes: []Ring{hole}}
	pg.Normalize()
	if !pg.Outer.IsCCW() {
		t.Error("outer should be CCW after Normalize")
	}
	if pg.Holes[0].IsCCW() {
		t.Error("hole should be CW after Normalize")
	}
}

func TestPolygonValidate(t *testing.T) {
	if err := NewPolygon(unitSquare()).Validate(); err != nil {
		t.Errorf("valid polygon: %v", err)
	}
	if err := NewPolygon(Ring{Pt(0, 0), Pt(1, 1)}).Validate(); !errors.Is(err, ErrDegenerate) {
		t.Errorf("2-vertex polygon err = %v, want ErrDegenerate", err)
	}
	if err := NewPolygon(Ring{Pt(0, 0), Pt(1, 1), Pt(2, 2)}).Validate(); !errors.Is(err, ErrDegenerate) {
		t.Errorf("collinear polygon err = %v, want ErrDegenerate", err)
	}
	bad := Polygon{Outer: unitSquare(), Holes: []Ring{{Pt(0, 0)}}}
	if err := bad.Validate(); !errors.Is(err, ErrDegenerate) {
		t.Errorf("bad hole err = %v, want ErrDegenerate", err)
	}
}

func TestPolygonClone(t *testing.T) {
	pg := Polygon{Outer: unitSquare(), Holes: []Ring{{Pt(0.2, 0.2), Pt(0.4, 0.2), Pt(0.3, 0.4)}}}
	c := pg.Clone()
	c.Outer[0] = Pt(99, 99)
	c.Holes[0][0] = Pt(99, 99)
	if pg.Outer[0].Eq(Pt(99, 99)) || pg.Holes[0][0].Eq(Pt(99, 99)) {
		t.Error("Clone should deep-copy rings")
	}
}

func TestPolygonEdges(t *testing.T) {
	pg := Polygon{Outer: unitSquare(), Holes: []Ring{{Pt(0.2, 0.2), Pt(0.4, 0.2), Pt(0.3, 0.4)}}}
	count := 0
	pg.Edges(func(a, b Point) bool { count++; return true })
	if count != 7 {
		t.Errorf("edge count = %d, want 7", count)
	}
	// Early stop.
	count = 0
	pg.Edges(func(a, b Point) bool { count++; return count < 3 })
	if count != 3 {
		t.Errorf("early-stop edge count = %d, want 3", count)
	}
}

func TestRectRing(t *testing.T) {
	r := RectRing(BBox{0, 0, 2, 3})
	if !r.IsCCW() || r.Area() != 6 {
		t.Errorf("RectRing bad: ccw=%v area=%v", r.IsCCW(), r.Area())
	}
}

func TestRegularRing(t *testing.T) {
	r := RegularRing(Pt(0, 0), 1, 64)
	if !r.IsCCW() {
		t.Error("regular ring should be CCW")
	}
	// Area approaches pi for many vertices.
	if a := r.Area(); math.Abs(a-math.Pi) > 0.01 {
		t.Errorf("64-gon area = %v, want ~pi", a)
	}
	if len(RegularRing(Pt(0, 0), 1, 2)) != 3 {
		t.Error("n<3 should clamp to 3")
	}
	if !r.Contains(Pt(0, 0)) {
		t.Error("regular ring should contain its center")
	}
}

func TestStarRing(t *testing.T) {
	s := StarRing(Pt(0, 0), 2, 1, 5)
	if len(s) != 10 {
		t.Errorf("star vertex count = %d, want 10", len(s))
	}
	if !s.Contains(Pt(0, 0)) {
		t.Error("star should contain its center")
	}
	// A point at radius 1.5 along an inner-vertex direction is outside.
	thetaInner := math.Pi / 5
	p := Pt(1.7*math.Cos(thetaInner), 1.7*math.Sin(thetaInner))
	if s.Contains(p) {
		t.Errorf("star should not contain %v (concavity)", p)
	}
}

// Property: for any simple convex ring (regular polygon), Contains agrees
// with a distance test against the inradius/circumradius.
func TestRegularRingContainsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ring := RegularRing(Pt(0, 0), 1, 48)
	inradius := math.Cos(math.Pi / 48) // apothem of the 48-gon
	for i := 0; i < 2000; i++ {
		p := Pt(rng.Float64()*3-1.5, rng.Float64()*3-1.5)
		d := p.Norm()
		got := ring.Contains(p)
		if d < inradius-1e-9 && !got {
			t.Fatalf("point %v at r=%v inside inradius but not contained", p, d)
		}
		if d > 1+1e-9 && got {
			t.Fatalf("point %v at r=%v outside circumradius but contained", p, d)
		}
	}
}

// Property: ring area is invariant under translation and |area| under
// reversal.
func TestRingAreaInvariance(t *testing.T) {
	f := func(dx, dy int16, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ring := RegularRing(Pt(0, 0), 1+rng.Float64()*10, 3+rng.Intn(20))
		a := ring.Area()
		moved := make(Ring, len(ring))
		for i, p := range ring {
			moved[i] = p.Add(Pt(float64(dx), float64(dy)))
		}
		rev := ring.Clone()
		rev.Reverse()
		return math.Abs(moved.Area()-a) < 1e-6*math.Max(1, a) &&
			math.Abs(rev.Area()-a) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
