package geom

import (
	"fmt"
	"math"
)

// BBox is an axis-aligned bounding box. A box with Min > Max on either axis
// is empty; EmptyBBox returns the canonical empty box suitable as the
// identity for Union.
type BBox struct {
	MinX, MinY, MaxX, MaxY float64
}

// EmptyBBox returns the identity element for Union: a box that contains
// nothing and extends any box it is unioned with.
func EmptyBBox() BBox {
	return BBox{
		MinX: math.Inf(1), MinY: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1),
	}
}

// NewBBox returns the box spanning the two corner points given in any order.
func NewBBox(x0, y0, x1, y1 float64) BBox {
	return BBox{
		MinX: math.Min(x0, x1), MinY: math.Min(y0, y1),
		MaxX: math.Max(x0, x1), MaxY: math.Max(y0, y1),
	}
}

// BBoxOf returns the bounding box of a set of points, or the empty box when
// pts is empty.
func BBoxOf(pts ...Point) BBox {
	b := EmptyBBox()
	for _, p := range pts {
		b = b.ExtendPoint(p)
	}
	return b
}

// IsEmpty reports whether the box contains no points.
func (b BBox) IsEmpty() bool { return b.MinX > b.MaxX || b.MinY > b.MaxY }

// Width returns the horizontal extent, or 0 for an empty box.
func (b BBox) Width() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.MaxX - b.MinX
}

// Height returns the vertical extent, or 0 for an empty box.
func (b BBox) Height() float64 {
	if b.IsEmpty() {
		return 0
	}
	return b.MaxY - b.MinY
}

// Area returns the area of the box, or 0 for an empty box.
func (b BBox) Area() float64 { return b.Width() * b.Height() }

// Center returns the center point of the box.
func (b BBox) Center() Point {
	return Point{(b.MinX + b.MaxX) / 2, (b.MinY + b.MaxY) / 2}
}

// Contains reports whether p lies inside the closed box.
func (b BBox) Contains(p Point) bool {
	return p.X >= b.MinX && p.X <= b.MaxX && p.Y >= b.MinY && p.Y <= b.MaxY
}

// ContainsBBox reports whether o lies entirely inside b. An empty o is
// contained in everything.
func (b BBox) ContainsBBox(o BBox) bool {
	if o.IsEmpty() {
		return true
	}
	if b.IsEmpty() {
		return false
	}
	return o.MinX >= b.MinX && o.MaxX <= b.MaxX &&
		o.MinY >= b.MinY && o.MaxY <= b.MaxY
}

// Intersects reports whether the two closed boxes share at least one point.
func (b BBox) Intersects(o BBox) bool {
	if b.IsEmpty() || o.IsEmpty() {
		return false
	}
	return b.MinX <= o.MaxX && o.MinX <= b.MaxX &&
		b.MinY <= o.MaxY && o.MinY <= b.MaxY
}

// Intersect returns the overlap of the two boxes (possibly empty).
func (b BBox) Intersect(o BBox) BBox {
	r := BBox{
		MinX: math.Max(b.MinX, o.MinX), MinY: math.Max(b.MinY, o.MinY),
		MaxX: math.Min(b.MaxX, o.MaxX), MaxY: math.Min(b.MaxY, o.MaxY),
	}
	if r.IsEmpty() {
		return EmptyBBox()
	}
	return r
}

// Union returns the smallest box containing both boxes.
func (b BBox) Union(o BBox) BBox {
	if b.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return b
	}
	return BBox{
		MinX: math.Min(b.MinX, o.MinX), MinY: math.Min(b.MinY, o.MinY),
		MaxX: math.Max(b.MaxX, o.MaxX), MaxY: math.Max(b.MaxY, o.MaxY),
	}
}

// ExtendPoint returns the smallest box containing b and p.
func (b BBox) ExtendPoint(p Point) BBox {
	if b.IsEmpty() {
		return BBox{p.X, p.Y, p.X, p.Y}
	}
	return BBox{
		MinX: math.Min(b.MinX, p.X), MinY: math.Min(b.MinY, p.Y),
		MaxX: math.Max(b.MaxX, p.X), MaxY: math.Max(b.MaxY, p.Y),
	}
}

// Expand returns the box grown by d on every side. A negative d shrinks the
// box; if it shrinks past empty the empty box is returned.
func (b BBox) Expand(d float64) BBox {
	if b.IsEmpty() {
		return b
	}
	r := BBox{b.MinX - d, b.MinY - d, b.MaxX + d, b.MaxY + d}
	if r.IsEmpty() {
		return EmptyBBox()
	}
	return r
}

// Corners returns the four corners in counter-clockwise order starting at
// (MinX, MinY).
func (b BBox) Corners() [4]Point {
	return [4]Point{
		{b.MinX, b.MinY}, {b.MaxX, b.MinY},
		{b.MaxX, b.MaxY}, {b.MinX, b.MaxY},
	}
}

// String implements fmt.Stringer.
func (b BBox) String() string {
	if b.IsEmpty() {
		return "BBox(empty)"
	}
	return fmt.Sprintf("BBox(%.6g,%.6g)-(%.6g,%.6g)", b.MinX, b.MinY, b.MaxX, b.MaxY)
}
