// Package geom provides the planar geometry primitives that underpin the
// spatial aggregation pipeline: points, bounding boxes, polygons with holes,
// exact point-in-polygon tests, clipping, triangulation, and simplification.
//
// All coordinates are float64 in an arbitrary planar coordinate system; the
// higher layers use Web-Mercator meters (see internal/mercator). Polygons
// follow the GeoJSON-like convention of an outer ring plus zero or more hole
// rings; rings are stored without a repeated closing vertex.
package geom

import "math"

// Point is a location in the plane. It doubles as a 2D vector.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Norm returns the Euclidean length of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point a fraction t of the way from p to q.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Eq reports whether p and q are exactly equal.
func (p Point) Eq(q Point) bool { return p.X == q.X && p.Y == q.Y }

// NearEq reports whether p and q are within eps of each other in both
// coordinates.
func (p Point) NearEq(q Point, eps float64) bool {
	return math.Abs(p.X-q.X) <= eps && math.Abs(p.Y-q.Y) <= eps
}

// Orientation classifies the turn formed by a→b→c.
// It returns +1 for a counter-clockwise turn, -1 for clockwise, and 0 when
// the three points are collinear.
func Orientation(a, b, c Point) int {
	v := (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	switch {
	case v > 0:
		return 1
	case v < 0:
		return -1
	default:
		return 0
	}
}

// SegmentDistSq returns the squared distance from point p to segment ab.
func SegmentDistSq(p, a, b Point) float64 {
	ab := b.Sub(a)
	l2 := ab.Dot(ab)
	if l2 == 0 {
		return p.DistSq(a)
	}
	t := p.Sub(a).Dot(ab) / l2
	if t < 0 {
		t = 0
	} else if t > 1 {
		t = 1
	}
	return p.DistSq(a.Add(ab.Scale(t)))
}

// OnSegment reports whether p lies on the closed segment ab, within eps.
func OnSegment(p, a, b Point, eps float64) bool {
	return SegmentDistSq(p, a, b) <= eps*eps
}

// SegmentsIntersect reports whether closed segments ab and cd share at least
// one point.
func SegmentsIntersect(a, b, c, d Point) bool {
	o1 := Orientation(a, b, c)
	o2 := Orientation(a, b, d)
	o3 := Orientation(c, d, a)
	o4 := Orientation(c, d, b)
	if o1 != o2 && o3 != o4 {
		return true
	}
	// Collinear overlap cases.
	if o1 == 0 && onSegmentCollinear(a, c, b) {
		return true
	}
	if o2 == 0 && onSegmentCollinear(a, d, b) {
		return true
	}
	if o3 == 0 && onSegmentCollinear(c, a, d) {
		return true
	}
	if o4 == 0 && onSegmentCollinear(c, b, d) {
		return true
	}
	return false
}

// onSegmentCollinear reports whether q, known to be collinear with segment
// pr, lies within its bounding box.
func onSegmentCollinear(p, q, r Point) bool {
	return q.X <= math.Max(p.X, r.X) && q.X >= math.Min(p.X, r.X) &&
		q.Y <= math.Max(p.Y, r.Y) && q.Y >= math.Min(p.Y, r.Y)
}

// SegmentIntersection returns the intersection point of segments ab and cd
// when they properly intersect (cross at a single interior or endpoint
// location). ok is false for parallel or non-intersecting segments.
func SegmentIntersection(a, b, c, d Point) (p Point, ok bool) {
	r := b.Sub(a)
	s := d.Sub(c)
	denom := r.Cross(s)
	if denom == 0 {
		return Point{}, false
	}
	ac := c.Sub(a)
	t := ac.Cross(s) / denom
	u := ac.Cross(r) / denom
	if t < 0 || t > 1 || u < 0 || u > 1 {
		return Point{}, false
	}
	return a.Add(r.Scale(t)), true
}
