package geom

import "sort"

// SimplifyLine reduces a polyline with the Douglas–Peucker algorithm,
// keeping every vertex farther than tol from the simplified chain. The first
// and last points are always retained.
func SimplifyLine(pts []Point, tol float64) []Point {
	if len(pts) <= 2 || tol <= 0 {
		out := make([]Point, len(pts))
		copy(out, pts)
		return out
	}
	keep := make([]bool, len(pts))
	keep[0], keep[len(pts)-1] = true, true
	dpMark(pts, 0, len(pts)-1, tol*tol, keep)
	out := make([]Point, 0, len(pts))
	for i, k := range keep {
		if k {
			out = append(out, pts[i])
		}
	}
	return out
}

func dpMark(pts []Point, lo, hi int, tol2 float64, keep []bool) {
	if hi-lo < 2 {
		return
	}
	maxD := -1.0
	maxI := -1
	for i := lo + 1; i < hi; i++ {
		d := SegmentDistSq(pts[i], pts[lo], pts[hi])
		if d > maxD {
			maxD, maxI = d, i
		}
	}
	if maxD <= tol2 {
		return
	}
	keep[maxI] = true
	dpMark(pts, lo, maxI, tol2, keep)
	dpMark(pts, maxI, hi, tol2, keep)
}

// SimplifyRing simplifies a ring with Douglas–Peucker while guaranteeing the
// result remains a ring (at least 3 vertices). The ring is split at its two
// most distant vertices so the closed shape is simplified consistently.
func SimplifyRing(r Ring, tol float64) Ring {
	if len(r) <= 4 || tol <= 0 {
		return r.Clone()
	}
	// Find two roughly mutually-farthest vertices: farthest from vertex 0,
	// then farthest from that.
	a := 0
	best := 0.0
	for i, p := range r {
		if d := p.DistSq(r[0]); d > best {
			best, a = d, i
		}
	}
	b := 0
	best = 0.0
	for i, p := range r {
		if d := p.DistSq(r[a]); d > best {
			best, b = d, i
		}
	}
	if a > b {
		a, b = b, a
	}
	if a == b {
		return r.Clone()
	}
	seg1 := SimplifyLine(append(Ring{}, r[a:b+1]...), tol)
	wrap := append(append(Ring{}, r[b:]...), r[:a+1]...)
	seg2 := SimplifyLine(wrap, tol)
	out := make(Ring, 0, len(seg1)+len(seg2))
	out = append(out, seg1...)
	if len(seg2) > 2 {
		out = append(out, seg2[1:len(seg2)-1]...)
	}
	if len(out) < 3 {
		return r.Clone()
	}
	return out
}

// ConvexHull returns the convex hull of the given points in counter-
// clockwise order using Andrew's monotone chain. Input order is not
// modified; collinear boundary points are excluded. Fewer than three
// distinct points yield a degenerate (possibly empty) hull.
func ConvexHull(pts []Point) Ring {
	n := len(pts)
	if n < 3 {
		out := make(Ring, n)
		copy(out, pts)
		return out
	}
	sorted := make([]Point, n)
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].X < sorted[j].X ||
			(sorted[i].X == sorted[j].X && sorted[i].Y < sorted[j].Y)
	})

	hull := make(Ring, 0, 2*n)
	// Lower hull.
	for _, p := range sorted {
		for len(hull) >= 2 && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := n - 2; i >= 0; i-- {
		p := sorted[i]
		for len(hull) >= lower && Orientation(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	if len(hull) > 1 {
		hull = hull[:len(hull)-1] // last point repeats the first
	}
	return hull
}
