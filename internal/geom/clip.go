package geom

// ClipRingToBBox clips a ring against an axis-aligned box using the
// Sutherland–Hodgman algorithm. The result may be empty when the ring lies
// entirely outside the box. Clipping a non-convex ring against a convex
// window is well-defined and yields a single (possibly degenerate) ring.
func ClipRingToBBox(r Ring, b BBox) Ring {
	if len(r) == 0 || b.IsEmpty() {
		return nil
	}
	out := clipEdge(r, func(p Point) bool { return p.X >= b.MinX }, func(a, c Point) Point {
		t := (b.MinX - a.X) / (c.X - a.X)
		return Point{b.MinX, a.Y + t*(c.Y-a.Y)}
	})
	out = clipEdge(out, func(p Point) bool { return p.X <= b.MaxX }, func(a, c Point) Point {
		t := (b.MaxX - a.X) / (c.X - a.X)
		return Point{b.MaxX, a.Y + t*(c.Y-a.Y)}
	})
	out = clipEdge(out, func(p Point) bool { return p.Y >= b.MinY }, func(a, c Point) Point {
		t := (b.MinY - a.Y) / (c.Y - a.Y)
		return Point{a.X + t*(c.X-a.X), b.MinY}
	})
	out = clipEdge(out, func(p Point) bool { return p.Y <= b.MaxY }, func(a, c Point) Point {
		t := (b.MaxY - a.Y) / (c.Y - a.Y)
		return Point{a.X + t*(c.X-a.X), b.MaxY}
	})
	if len(out) < 3 {
		return nil
	}
	return out
}

// clipEdge runs one Sutherland–Hodgman pass against a half-plane described
// by inside, with cross computing the boundary intersection of an edge that
// crosses it.
func clipEdge(r Ring, inside func(Point) bool, cross func(a, b Point) Point) Ring {
	if len(r) == 0 {
		return nil
	}
	out := make(Ring, 0, len(r)+4)
	prev := r[len(r)-1]
	prevIn := inside(prev)
	for _, cur := range r {
		curIn := inside(cur)
		switch {
		case curIn && prevIn:
			out = append(out, cur)
		case curIn && !prevIn:
			out = append(out, cross(prev, cur), cur)
		case !curIn && prevIn:
			out = append(out, cross(prev, cur))
		}
		prev, prevIn = cur, curIn
	}
	return out
}

// ClipRingToHalfPlane keeps the part of the ring on the side of the line
// through o with normal nrm where (p-o)·nrm <= 0. The result may be empty.
func ClipRingToHalfPlane(r Ring, o, nrm Point) Ring {
	out := clipEdge(r,
		func(p Point) bool { return p.Sub(o).Dot(nrm) <= 0 },
		func(a, b Point) Point {
			da := a.Sub(o).Dot(nrm)
			db := b.Sub(o).Dot(nrm)
			t := da / (da - db)
			return a.Lerp(b, t)
		})
	if len(out) < 3 {
		return nil
	}
	return out
}

// ClipPolygonToBBox clips a polygon (outer ring and holes) to a box. Holes
// that vanish are dropped; a nil polygon pointer result means the polygon is
// entirely outside the box.
func ClipPolygonToBBox(pg Polygon, b BBox) (Polygon, bool) {
	outer := ClipRingToBBox(pg.Outer, b)
	if len(outer) < 3 {
		return Polygon{}, false
	}
	out := Polygon{Outer: outer}
	for _, h := range pg.Holes {
		if ch := ClipRingToBBox(h, b); len(ch) >= 3 {
			out.Holes = append(out.Holes, ch)
		}
	}
	return out, true
}

// ClipSegmentToBBox clips segment ab to box b using Liang–Barsky.
// ok is false when the segment lies entirely outside the box.
func ClipSegmentToBBox(a, bp Point, box BBox) (p0, p1 Point, ok bool) {
	dx, dy := bp.X-a.X, bp.Y-a.Y
	t0, t1 := 0.0, 1.0
	clip := func(p, q float64) bool {
		if p == 0 {
			return q >= 0
		}
		r := q / p
		if p < 0 {
			if r > t1 {
				return false
			}
			if r > t0 {
				t0 = r
			}
		} else {
			if r < t0 {
				return false
			}
			if r < t1 {
				t1 = r
			}
		}
		return true
	}
	if !clip(-dx, a.X-box.MinX) || !clip(dx, box.MaxX-a.X) ||
		!clip(-dy, a.Y-box.MinY) || !clip(dy, box.MaxY-a.Y) {
		return Point{}, Point{}, false
	}
	return Point{a.X + t0*dx, a.Y + t0*dy}, Point{a.X + t1*dx, a.Y + t1*dy}, true
}
