package geom

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/fsum"
)

// Ring is a closed sequence of vertices. The closing edge from the last
// vertex back to the first is implicit; rings do not repeat their first
// vertex.
type Ring []Point

// SignedArea returns the signed area of the ring: positive when the ring is
// counter-clockwise, negative when clockwise.
func (r Ring) SignedArea() float64 {
	if len(r) < 3 {
		return 0
	}
	// The shoelace sum cancels heavily for far-from-origin coordinates
	// (web-mercator meters), so accumulate with compensation.
	var s fsum.Kahan
	for i, p := range r {
		q := r[(i+1)%len(r)]
		s.Add(p.Cross(q))
	}
	return s.Sum() / 2
}

// Area returns the absolute area enclosed by the ring.
func (r Ring) Area() float64 {
	a := r.SignedArea()
	if a < 0 {
		return -a
	}
	return a
}

// IsCCW reports whether the ring winds counter-clockwise.
func (r Ring) IsCCW() bool { return r.SignedArea() > 0 }

// Reverse reverses the winding order of the ring in place.
func (r Ring) Reverse() {
	for i, j := 0, len(r)-1; i < j; i, j = i+1, j-1 {
		r[i], r[j] = r[j], r[i]
	}
}

// Clone returns a deep copy of the ring.
func (r Ring) Clone() Ring {
	c := make(Ring, len(r))
	copy(c, r)
	return c
}

// BBox returns the bounding box of the ring's vertices.
func (r Ring) BBox() BBox { return BBoxOf(r...) }

// Centroid returns the area centroid of the ring. For degenerate rings
// (fewer than three vertices or zero area) it falls back to the vertex mean.
func (r Ring) Centroid() Point {
	a := r.SignedArea()
	if len(r) < 3 || a == 0 {
		var c Point
		for _, p := range r {
			c = c.Add(p)
		}
		if len(r) > 0 {
			c = c.Scale(1 / float64(len(r)))
		}
		return c
	}
	var cx, cy fsum.Kahan
	for i, p := range r {
		q := r[(i+1)%len(r)]
		w := p.Cross(q)
		cx.Add((p.X + q.X) * w)
		cy.Add((p.Y + q.Y) * w)
	}
	f := 1 / (6 * a)
	return Point{cx.Sum() * f, cy.Sum() * f}
}

// Perimeter returns the total edge length of the ring.
func (r Ring) Perimeter() float64 {
	if len(r) < 2 {
		return 0
	}
	var s fsum.Kahan
	for i, p := range r {
		s.Add(p.Dist(r[(i+1)%len(r)]))
	}
	return s.Sum()
}

// Contains reports whether p is strictly inside the ring, using the crossing
// number (even-odd) rule. Points exactly on the boundary may be classified
// either way; use ContainsBoundary for closed containment.
func (r Ring) Contains(p Point) bool {
	if len(r) < 3 {
		return false
	}
	inside := false
	j := len(r) - 1
	for i := 0; i < len(r); i++ {
		a, b := r[i], r[j]
		if (a.Y > p.Y) != (b.Y > p.Y) {
			// x coordinate of the edge at height p.Y
			x := a.X + (p.Y-a.Y)*(b.X-a.X)/(b.Y-a.Y)
			if p.X < x {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// ContainsBoundary reports whether p is inside the ring or within eps of its
// boundary.
func (r Ring) ContainsBoundary(p Point, eps float64) bool {
	if r.Contains(p) {
		return true
	}
	for i, a := range r {
		b := r[(i+1)%len(r)]
		if OnSegment(p, a, b, eps) {
			return true
		}
	}
	return false
}

// Polygon is a simple polygon with optional holes. The outer ring should
// wind counter-clockwise and holes clockwise; Normalize enforces this.
type Polygon struct {
	Outer Ring
	Holes []Ring
}

// NewPolygon returns a polygon over the given outer ring with no holes.
func NewPolygon(outer Ring) Polygon { return Polygon{Outer: outer} }

// ErrDegenerate is returned by Validate for polygons whose outer ring has
// fewer than three vertices or zero area.
var ErrDegenerate = errors.New("geom: degenerate polygon")

// Validate returns an error when the polygon cannot participate in area
// computations: fewer than three outer vertices, or zero outer area.
func (pg Polygon) Validate() error {
	if len(pg.Outer) < 3 {
		return fmt.Errorf("%w: outer ring has %d vertices", ErrDegenerate, len(pg.Outer))
	}
	if pg.Outer.Area() == 0 {
		return fmt.Errorf("%w: outer ring has zero area", ErrDegenerate)
	}
	for i, h := range pg.Holes {
		if len(h) < 3 {
			return fmt.Errorf("%w: hole %d has %d vertices", ErrDegenerate, i, len(h))
		}
	}
	return nil
}

// Normalize orients the outer ring counter-clockwise and all holes
// clockwise, in place.
func (pg *Polygon) Normalize() {
	if !pg.Outer.IsCCW() {
		pg.Outer.Reverse()
	}
	for _, h := range pg.Holes {
		if h.IsCCW() {
			h.Reverse()
		}
	}
}

// Clone returns a deep copy of the polygon.
func (pg Polygon) Clone() Polygon {
	c := Polygon{Outer: pg.Outer.Clone()}
	if len(pg.Holes) > 0 {
		c.Holes = make([]Ring, len(pg.Holes))
		for i, h := range pg.Holes {
			c.Holes[i] = h.Clone()
		}
	}
	return c
}

// BBox returns the bounding box of the polygon's outer ring.
func (pg Polygon) BBox() BBox { return pg.Outer.BBox() }

// Area returns the enclosed area: outer area minus hole areas.
func (pg Polygon) Area() float64 {
	a := pg.Outer.Area()
	for _, h := range pg.Holes {
		//lint:ignore floataccum a handful of holes per polygon; each term is already compensated
		a -= h.Area()
	}
	return a
}

// Centroid returns the area centroid of the polygon, accounting for holes.
func (pg Polygon) Centroid() Point {
	// Weighted combination of ring centroids using signed areas with holes
	// negated.
	total := pg.Outer.Area()
	c := pg.Outer.Centroid().Scale(total)
	for _, h := range pg.Holes {
		ha := h.Area()
		c = c.Sub(h.Centroid().Scale(ha))
		//lint:ignore floataccum a handful of holes per polygon; each term is already compensated
		total -= ha
	}
	if total == 0 {
		return pg.Outer.Centroid()
	}
	return c.Scale(1 / total)
}

// VertexCount returns the total number of vertices across all rings.
func (pg Polygon) VertexCount() int {
	n := len(pg.Outer)
	for _, h := range pg.Holes {
		n += len(h)
	}
	return n
}

// Contains reports whether p is inside the polygon: inside the outer ring
// and outside every hole.
func (pg Polygon) Contains(p Point) bool {
	if !pg.Outer.Contains(p) {
		return false
	}
	for _, h := range pg.Holes {
		if h.Contains(p) {
			return false
		}
	}
	return true
}

// ContainsBoundary reports whether p is inside the polygon or within eps of
// any ring boundary.
func (pg Polygon) ContainsBoundary(p Point, eps float64) bool {
	if pg.Contains(p) {
		return true
	}
	if pg.Outer.ContainsBoundary(p, eps) {
		return true
	}
	for _, h := range pg.Holes {
		for i, a := range h {
			b := h[(i+1)%len(h)]
			if OnSegment(p, a, b, eps) {
				return true
			}
		}
	}
	return false
}

// Edges calls fn for every directed edge of every ring (outer and holes).
// Iteration stops early when fn returns false.
func (pg Polygon) Edges(fn func(a, b Point) bool) {
	emit := func(r Ring) bool {
		for i, a := range r {
			b := r[(i+1)%len(r)]
			if !fn(a, b) {
				return false
			}
		}
		return true
	}
	if !emit(pg.Outer) {
		return
	}
	for _, h := range pg.Holes {
		if !emit(h) {
			return
		}
	}
}

// RectRing returns the counter-clockwise ring of the bounding box b.
func RectRing(b BBox) Ring {
	c := b.Corners()
	return Ring{c[0], c[1], c[2], c[3]}
}

// RegularRing returns an n-vertex regular polygon ring of the given radius
// centered at c, counter-clockwise, starting at angle 0.
func RegularRing(c Point, radius float64, n int) Ring {
	if n < 3 {
		n = 3
	}
	r := make(Ring, n)
	for i := range r {
		theta := 2 * math.Pi * float64(i) / float64(n)
		r[i] = Point{c.X + radius*math.Cos(theta), c.Y + radius*math.Sin(theta)}
	}
	return r
}

// StarRing returns a 2n-vertex star-shaped (strongly non-convex) ring
// centered at c alternating between outer and inner radii.
func StarRing(c Point, outer, inner float64, n int) Ring {
	if n < 3 {
		n = 3
	}
	r := make(Ring, 2*n)
	for i := 0; i < 2*n; i++ {
		theta := math.Pi * float64(i) / float64(n)
		rad := outer
		if i%2 == 1 {
			rad = inner
		}
		r[i] = Point{c.X + rad*math.Cos(theta), c.Y + rad*math.Sin(theta)}
	}
	return r
}
