// Package workload assembles the standard evaluation scenes shared by the
// benchmark harness (cmd/urbane-bench), the root testing.B benchmarks, and
// the examples: the synthetic NYC taxi workload over neighborhood, tract,
// and grid layers, matching the paper's primary demo data.
package workload

import (
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/mercator"
)

// Scene bundles the point data and region layers of one evaluation setup.
type Scene struct {
	// Taxi is the synthetic NYC yellow-cab data set (January 2009).
	Taxi *data.PointSet
	// Neighborhoods is the ~260-region jittered Voronoi layer standing in
	// for NYC's neighborhood polygons.
	Neighborhoods *data.RegionSet
	// Tracts is a finer ~2000-region layer standing in for census tracts.
	Tracts *data.RegionSet
	// Grid is Urbane's 64x64 grid resolution.
	Grid *data.RegionSet
	// Bounds is the NYC extent in Web-Mercator meters.
	Bounds geom.BBox
}

// NeighborhoodCount mirrors NYC's ~260 neighborhood polygons.
const NeighborhoodCount = 260

// TractCount approximates NYC's ~2100 census tracts.
const TractCount = 2048

// NYC builds the standard scene with n taxi points. Generation is
// deterministic in seed.
func NYC(n int, seed int64) *Scene {
	bounds := mercator.NYCBounds()
	return &Scene{
		Taxi:          data.Generate(data.NYCTaxiConfig(n, 2009, time.January, seed)),
		Neighborhoods: Neighborhoods(seed + 1),
		Tracts:        Tracts(seed + 2),
		Grid:          data.GridRegions("grid64", bounds, 64, 64),
		Bounds:        bounds,
	}
}

// Neighborhoods builds just the neighborhood layer.
func Neighborhoods(seed int64) *data.RegionSet {
	return data.VoronoiRegions("neighborhoods", mercator.NYCBounds(), NeighborhoodCount,
		seed, data.VoronoiOptions{JitterFrac: 0.12})
}

// Tracts builds just the tract layer.
func Tracts(seed int64) *data.RegionSet {
	return data.VoronoiRegions("tracts", mercator.NYCBounds(), TractCount,
		seed, data.VoronoiOptions{JitterFrac: 0.08})
}

// Jan2009 returns the time filter covering the paper's Figure-1 month.
func Jan2009() *core.TimeFilter {
	start := time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC).Unix()
	end := time.Date(2009, 2, 1, 0, 0, 0, 0, time.UTC).Unix()
	return &core.TimeFilter{Start: start, End: end}
}

// JanWeek returns the time filter for the w-th week of January 2009
// (w in 0..3) — the ad-hoc sub-window used by the interaction experiments.
func JanWeek(w int) *core.TimeFilter {
	start := time.Date(2009, 1, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, 7*w).Unix()
	return &core.TimeFilter{Start: start, End: start + 7*86400}
}

// GroundMeters converts a ground-distance ε in meters at NYC's latitude to
// mercator meters, the unit the raster joiner's epsilon is expressed in.
func GroundMeters(eps float64) float64 {
	return eps / mercator.GroundResolution(mercator.NYC.CenterLat)
}

// AdHocPolygon returns a user-drawn region set: one star polygon over lower
// Manhattan — the shape pre-aggregation cannot serve.
func AdHocPolygon(seed int64) *data.RegionSet {
	center := mercator.Project(mercator.LngLat{Lng: -73.99, Lat: 40.73})
	poly := data.UserPolygon(center, 4000, seed)
	return &data.RegionSet{
		Name:    "user-drawn",
		Regions: []data.Region{{ID: 0, Name: "sketch", Poly: poly}},
	}
}
