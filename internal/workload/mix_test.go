package workload

import (
	"encoding/json"
	"strings"
	"testing"
)

func testMixConfig() MixConfig {
	return MixConfig{
		Datasets: []string{"taxi", "311"},
		Layers:   []string{"nbhd", "grid"},
		Attrs:    map[string][]string{"taxi": {"fare"}, "311": {"fare"}},
		TimeMin:  0, TimeMax: 8 * 3600,
		Regions: 12,
	}
}

func TestMixDeterministic(t *testing.T) {
	a := NewMix(testMixConfig(), 7)
	b := NewMix(testMixConfig(), 7)
	for i := 0; i < 500; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("req %d diverged:\n  %+v\n  %+v", i, ra, rb)
		}
	}
	c := NewMix(testMixConfig(), 8)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 100 {
		t.Error("different seeds produced identical streams")
	}
}

func TestMixWellFormed(t *testing.T) {
	m := NewMix(testMixConfig(), 3)
	kinds := map[string]int{}
	for i := 0; i < 1000; i++ {
		r := m.Next()
		kinds[r.Kind]++
		if !strings.HasPrefix(r.Path, "/api/") {
			t.Fatalf("req %d: path %q outside /api/", i, r.Path)
		}
		switch r.Method {
		case "GET":
			if r.Body != "" {
				t.Fatalf("req %d: GET %s with a body", i, r.Path)
			}
		case "POST":
			if !json.Valid([]byte(r.Body)) {
				t.Fatalf("req %d: POST %s body is invalid JSON: %s", i, r.Path, r.Body)
			}
		default:
			t.Fatalf("req %d: unexpected method %q", i, r.Method)
		}
	}
	// Every family must appear over 1000 draws.
	for _, k := range []string{"mapview", "query", "heatmap", "delta", "explore", "tile", "choropleth", "stats", "cachestats"} {
		if kinds[k] == 0 {
			t.Errorf("kind %q never generated (got %v)", k, kinds)
		}
	}
}

func TestServerMixConfig(t *testing.T) {
	cfg := ServerMixConfig()
	if len(cfg.Datasets) == 0 || len(cfg.Layers) == 0 || cfg.TimeMax <= cfg.TimeMin {
		t.Fatalf("bad server mix config: %+v", cfg)
	}
}
