package workload

import (
	"encoding/json"
	"testing"
)

func TestAppenderDeterministic(t *testing.T) {
	a := NewAppender(testMixConfig(), 7)
	b := NewAppender(testMixConfig(), 7)
	for i := 0; i < 200; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("append %d diverged:\n  %+v\n  %+v", i, ra, rb)
		}
	}
	c := NewAppender(testMixConfig(), 8)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Next() == c.Next() {
			same++
		}
	}
	if same == 50 {
		t.Error("different seeds produced identical append streams")
	}
}

func TestAppenderWellFormed(t *testing.T) {
	cfg := testMixConfig()
	cfg.Bounds = [4]float64{0, 0, 1000, 1000}
	app := NewAppender(cfg, 3)
	lastT := map[string]int64{}
	for i := 0; i < 300; i++ {
		r := app.Next()
		if r.Method != "POST" || r.Path != "/api/append" || r.Kind != "append" {
			t.Fatalf("append %d: %s %s kind=%q", i, r.Method, r.Path, r.Kind)
		}
		var body struct {
			Dataset string               `json:"dataset"`
			X       []float64            `json:"x"`
			Y       []float64            `json:"y"`
			T       []int64              `json:"t"`
			Attrs   map[string][]float64 `json:"attrs"`
		}
		if err := json.Unmarshal([]byte(r.Body), &body); err != nil {
			t.Fatalf("append %d: body is invalid JSON: %v\n%s", i, err, r.Body)
		}
		n := len(body.X)
		if n < 8 || len(body.Y) != n || len(body.T) != n {
			t.Fatalf("append %d: ragged batch x=%d y=%d t=%d", i, n, len(body.Y), len(body.T))
		}
		// Full attribute schema, every column the batch's length.
		want := cfg.Attrs[body.Dataset]
		if len(body.Attrs) != len(want) {
			t.Fatalf("append %d: %d attrs, want schema %v", i, len(body.Attrs), want)
		}
		for _, attr := range want {
			if len(body.Attrs[attr]) != n {
				t.Fatalf("append %d: attr %q has %d values, want %d", i, attr, len(body.Attrs[attr]), n)
			}
		}
		// The server's ingest gate: timestamps non-decreasing within the
		// batch, at or after the data set's previous append, and starting
		// past the generated data (TimeMax).
		prev := cfg.TimeMax
		if last, ok := lastT[body.Dataset]; ok {
			prev = last
		}
		for k, ts := range body.T {
			if ts < prev {
				t.Fatalf("append %d: t[%d]=%d precedes %d (time-order gate would reject)", i, k, ts, prev)
			}
			prev = ts
		}
		lastT[body.Dataset] = prev
		for k := range body.X {
			if body.X[k] < cfg.Bounds[0] || body.X[k] > cfg.Bounds[2] ||
				body.Y[k] < cfg.Bounds[1] || body.Y[k] > cfg.Bounds[3] {
				t.Fatalf("append %d: point %d (%g,%g) outside bounds %v",
					i, k, body.X[k], body.Y[k], cfg.Bounds)
			}
		}
	}
}
