package workload

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
)

// Appender is a deterministic stream of POST /api/append ingest requests —
// the writer half of a soak. Each request appends a small columnar batch to
// one of the configured data sets, with per-data-set timestamps that start
// at the mix's TimeMax (past every point the server generated) and only
// move forward, because the server rejects appends that would break the
// time column's sort order.
//
// Two Appenders built with the same config and seed yield the identical
// request sequence, so a chaos soak's appends can be re-issued verbatim
// against a pristine server (ReplayAppends) before a byte-identical read
// replay. The configured Attrs must be each data set's complete attribute
// schema — the ingest endpoint requires every column. Not safe for
// concurrent use; soaks run a single writer.
type Appender struct {
	cfg  MixConfig
	rng  *rand.Rand
	next map[string]int64
}

// NewAppender returns a deterministic append stream over cfg's data sets.
func NewAppender(cfg MixConfig, seed int64) *Appender {
	if len(cfg.Datasets) == 0 {
		cfg.Datasets = []string{"taxi"}
	}
	if cfg.TimeMax <= cfg.TimeMin {
		cfg.TimeMax = cfg.TimeMin + 30*86400
	}
	if cfg.Bounds[2] <= cfg.Bounds[0] || cfg.Bounds[3] <= cfg.Bounds[1] {
		cfg.Bounds = mercatorNYC()
	}
	next := make(map[string]int64, len(cfg.Datasets))
	for _, ds := range cfg.Datasets {
		next[ds] = cfg.TimeMax
	}
	return &Appender{cfg: cfg, rng: rand.New(rand.NewSource(seed)), next: next}
}

// Next generates the following append request of the stream.
func (a *Appender) Next() HTTPRequest {
	ds := pick(a.rng, a.cfg.Datasets)
	n := 8 + a.rng.Intn(25)
	b := a.cfg.Bounds
	w, h := b[2]-b[0], b[3]-b[1]

	var xs, ys, ts strings.Builder
	cursor := a.next[ds]
	for i := 0; i < n; i++ {
		if i > 0 {
			xs.WriteByte(',')
			ys.WriteByte(',')
			ts.WriteByte(',')
		}
		fmt.Fprintf(&xs, "%g", b[0]+a.rng.Float64()*w)
		fmt.Fprintf(&ys, "%g", b[1]+a.rng.Float64()*h)
		fmt.Fprintf(&ts, "%d", cursor)
		cursor += a.rng.Int63n(30)
	}
	a.next[ds] = cursor + 1

	var attrs strings.Builder
	for k, attr := range a.cfg.Attrs[ds] {
		if k > 0 {
			attrs.WriteByte(',')
		}
		fmt.Fprintf(&attrs, "%q:[", attr)
		for i := 0; i < n; i++ {
			if i > 0 {
				attrs.WriteByte(',')
			}
			fmt.Fprintf(&attrs, "%g", a.rng.Float64()*50)
		}
		attrs.WriteByte(']')
	}

	body := fmt.Sprintf(`{"dataset":%q,"x":[%s],"y":[%s],"t":[%s],"attrs":{%s}}`,
		ds, xs.String(), ys.String(), ts.String(), attrs.String())
	return HTTPRequest{Method: http.MethodPost, Path: "/api/append", Body: body, Kind: "append"}
}
