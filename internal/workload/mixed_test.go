package workload

import (
	"strings"
	"testing"
)

func TestMixedDeterministic(t *testing.T) {
	a := NewMixed(testMixConfig(), 7)
	b := NewMixed(testMixConfig(), 7)
	for i := 0; i < 600; i++ {
		ra, rb := a.Next(), b.Next()
		if ra != rb {
			t.Fatalf("req %d diverged:\n  %+v\n  %+v", i, ra, rb)
		}
	}
}

// TestMixedInterleaveTargetsDatasets pins the six-step cycle: every request
// must mention exactly the dataset the step position promises, and the two
// append steps hit the ingest endpoint while the four read steps never do.
// Tests that attribute cache warmth per dataset rely on this schedule.
func TestMixedInterleaveTargetsDatasets(t *testing.T) {
	cfg := testMixConfig()
	m := NewMixed(cfg, 11)
	appends := map[string]int{}
	for i := 0; i < 600; i++ {
		ds := cfg.Datasets[m.Dataset(i)]
		other := cfg.Datasets[1-m.Dataset(i)]
		wantAppend := m.IsAppend(i)
		r := m.Next()
		if !strings.HasPrefix(r.Kind, "mixed."+ds+".") {
			t.Fatalf("step %d: kind %q, want dataset %q", i, r.Kind, ds)
		}
		// GET paths carry the dataset in the query string; POST bodies name
		// it in a JSON field or SQL FROM clause. Either way the other
		// dataset must never be referenced (bare substring matching would
		// false-positive on digits inside float literals).
		refs := func(name string) bool {
			return strings.Contains(r.Path, "dataset="+name) ||
				strings.Contains(r.Body, `"dataset":"`+name+`"`) ||
				strings.Contains(r.Body, `"datasets":["`+name+`"]`) ||
				strings.Contains(r.Body, "FROM "+name+",")
		}
		if !refs(ds) && r.Kind != "mixed."+ds+".stats" && r.Kind != "mixed."+ds+".cachestats" {
			t.Fatalf("step %d: request %+v does not target %q", i, r, ds)
		}
		if refs(other) {
			t.Fatalf("step %d: request for %q leaks dataset %q: %+v", i, ds, other, r)
		}
		if got := r.Path == "/api/append"; got != wantAppend {
			t.Fatalf("step %d: append=%v, want %v (%+v)", i, got, wantAppend, r)
		}
		if wantAppend {
			appends[ds]++
		}
	}
	if appends[cfg.Datasets[0]] != 100 || appends[cfg.Datasets[1]] != 100 {
		t.Fatalf("append balance off: %v", appends)
	}
}
