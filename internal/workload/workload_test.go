package workload

import (
	"testing"

	"repro/internal/mercator"
)

func TestNYCScene(t *testing.T) {
	s := NYC(5000, 1)
	if s.Taxi.Len() != 5000 {
		t.Errorf("taxi points = %d", s.Taxi.Len())
	}
	if s.Neighborhoods.Len() != NeighborhoodCount {
		t.Errorf("neighborhoods = %d, want %d", s.Neighborhoods.Len(), NeighborhoodCount)
	}
	if s.Tracts.Len() != TractCount {
		t.Errorf("tracts = %d, want %d", s.Tracts.Len(), TractCount)
	}
	if s.Grid.Len() != 64*64 {
		t.Errorf("grid = %d", s.Grid.Len())
	}
	if !s.Bounds.ContainsBBox(s.Taxi.Bounds()) {
		t.Error("taxi points escape NYC bounds")
	}
	if !s.Bounds.Expand(1).ContainsBBox(s.Neighborhoods.Bounds()) {
		t.Error("neighborhoods escape NYC bounds")
	}
}

func TestTimeWindows(t *testing.T) {
	jan := Jan2009()
	if jan.End-jan.Start != 31*86400 {
		t.Errorf("January span = %d s", jan.End-jan.Start)
	}
	w0 := JanWeek(0)
	if w0.Start != jan.Start || w0.End-w0.Start != 7*86400 {
		t.Errorf("week 0 = %+v", w0)
	}
	w3 := JanWeek(3)
	if w3.End > jan.End {
		t.Errorf("week 3 runs past January: %+v vs %+v", w3, jan)
	}
	// Generated timestamps actually fall inside January.
	s := NYC(1000, 2)
	tmin, tmax, _ := s.Taxi.TimeRange()
	if tmin < jan.Start || tmax >= jan.End {
		t.Errorf("taxi times [%d,%d] outside January", tmin, tmax)
	}
}

func TestGroundMeters(t *testing.T) {
	// At NYC's latitude mercator meters are stretched by ~1/cos(40.7)≈1.32.
	got := GroundMeters(100)
	if got < 125 || got > 140 {
		t.Errorf("GroundMeters(100) = %v, want ~132", got)
	}
}

func TestAdHocPolygon(t *testing.T) {
	rs := AdHocPolygon(1)
	if rs.Len() != 1 {
		t.Fatalf("regions = %d", rs.Len())
	}
	if err := rs.Regions[0].Poly.Validate(); err != nil {
		t.Fatal(err)
	}
	if !mercator.NYCBounds().Intersects(rs.Bounds()) {
		t.Error("ad-hoc polygon should be inside NYC")
	}
}
