package workload

import "fmt"

// Mixed is a deterministic two-dataset interleave: read queries against
// dataset A and dataset B alternating with appends to each, in a fixed
// six-step cycle (read A, read B, append A, read A, read B, append B).
// It exists to exercise per-dataset epoch isolation under shard routing:
// an append to A must produce fresh response-cache keys for A's queries
// while B's stay warm, and the coordinator must patch only A's shard
// layout. Two Mixed streams built with the same config and seed yield the
// identical request sequence. Not safe for concurrent use.
type Mixed struct {
	mixes [2]*Mix
	apps  [2]*Appender
	step  int
}

// NewMixed returns a deterministic interleaved stream over the first two
// data sets of cfg (cfg must name at least two; a shorter list panics —
// the caller controls the config). Each dataset's read and append
// sub-streams are themselves deterministic and single-dataset, so a test
// can attribute every request to its dataset by step position alone.
func NewMixed(cfg MixConfig, seed int64) *Mixed {
	if len(cfg.Datasets) < 2 {
		panic(fmt.Sprintf("workload: Mixed needs two datasets, got %d", len(cfg.Datasets)))
	}
	m := &Mixed{}
	for i := 0; i < 2; i++ {
		sub := cfg
		sub.Datasets = []string{cfg.Datasets[i]}
		m.mixes[i] = NewMix(sub, seed+int64(i))
		m.apps[i] = NewAppender(sub, seed+int64(10+i))
	}
	return m
}

// Dataset reports which of the two datasets the request at step would
// target (0 or 1).
func (m *Mixed) Dataset(step int) int {
	switch step % 6 {
	case 0, 2, 3:
		return 0
	default:
		return 1
	}
}

// IsAppend reports whether the request at step is an ingest write.
func (m *Mixed) IsAppend(step int) bool {
	s := step % 6
	return s == 2 || s == 5
}

// Next generates the following request of the interleave. Reads are drawn
// from the per-dataset Mix (mapview, query, tiles, ...); writes from the
// per-dataset Appender. The Kind is prefixed "mixed." with the dataset
// name so per-kind reports separate the two sets' traffic.
func (m *Mixed) Next() HTTPRequest {
	step := m.step
	m.step++
	ds := m.Dataset(step)
	var req HTTPRequest
	if m.IsAppend(step) {
		req = m.apps[ds].Next()
	} else {
		req = m.mixes[ds].Next()
	}
	req.Kind = fmt.Sprintf("mixed.%s.%s", m.mixes[ds].cfg.Datasets[0], req.Kind)
	return req
}
