package workload

import (
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"strings"

	"repro/internal/mercator"
)

// HTTPRequest is one generated API call of a workload mix: everything the
// load generator or the chaos harness needs to issue it.
type HTTPRequest struct {
	Method string
	Path   string
	Body   string // JSON for POSTs, empty for GETs
	// Kind labels the request family ("mapview", "query", "tile", ...) for
	// per-kind reporting.
	Kind string
}

// MixConfig names the catalog a Mix draws requests against. The defaults
// must match what the target server registered, or the mix degenerates to
// 400s.
type MixConfig struct {
	// Datasets are point-set names to aggregate ("taxi", "311"...).
	Datasets []string
	// Layers are region-set names to aggregate over.
	Layers []string
	// Attrs maps each dataset to its numeric attributes usable for
	// SUM/AVG and range filters. Datasets absent from the map only get
	// COUNT queries.
	Attrs map[string][]string
	// TimeMin/TimeMax bound the generated time-filter windows (unix secs).
	TimeMin, TimeMax int64
	// Regions is the max region id usable in explore requests.
	Regions int
	// Bounds is the world extent {MinX, MinY, MaxX, MaxY} the polygon
	// family draws ad-hoc rings inside. Zero (MaxX <= MinX) defaults to
	// NYC's Web-Mercator bounds, matching ServerMixConfig.
	Bounds [4]float64
}

// ServerMixConfig is the mix matching cmd/urbane-server's standard NYC
// workload: taxi + 311 + photos over neighborhoods/tracts/grid64, January
// 2009.
func ServerMixConfig() MixConfig {
	jan := Jan2009()
	return MixConfig{
		Datasets: []string{"taxi", "311", "photos"},
		Layers:   []string{"neighborhoods", "tracts", "grid64"},
		Attrs: map[string][]string{
			"taxi":   {"fare", "distance", "passengers"},
			"311":    {"severity"},
			"photos": {"likes"},
		},
		TimeMin:  jan.Start,
		TimeMax:  jan.End,
		Regions:  NeighborhoodCount,
		Bounds:   mercatorNYC(),
	}
}

// mercatorNYC returns NYC's extent as the 4-float Bounds form.
func mercatorNYC() [4]float64 {
	b := mercator.NYCBounds()
	return [4]float64{b.MinX, b.MinY, b.MaxX, b.MaxY}
}

// Mix is a deterministic stream of API requests mimicking interactive
// exploration: choropleth map views under filter and time-slider churn,
// SQL-ish queries, heatmaps, deltas, time-series explorations, slippy
// tiles, and the occasional PNG render and stats poll. Two Mixes built
// with the same config and seed yield the identical request sequence —
// the replay primitive the chaos suite's byte-identical assertions use.
// Not safe for concurrent use; give each virtual user its own Mix.
type Mix struct {
	cfg MixConfig
	rng *rand.Rand
}

// NewMix returns a deterministic request stream.
func NewMix(cfg MixConfig, seed int64) *Mix {
	if len(cfg.Datasets) == 0 {
		cfg.Datasets = []string{"taxi"}
	}
	if len(cfg.Layers) == 0 {
		cfg.Layers = []string{"neighborhoods"}
	}
	if cfg.TimeMax <= cfg.TimeMin {
		cfg.TimeMax = cfg.TimeMin + 30*86400
	}
	if cfg.Regions < 4 {
		cfg.Regions = 4
	}
	if cfg.Bounds[2] <= cfg.Bounds[0] || cfg.Bounds[3] <= cfg.Bounds[1] {
		cfg.Bounds = mercatorNYC()
	}
	return &Mix{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// pick returns a uniform element of xs.
func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

// window draws a random snapped sub-window of the configured time range,
// mimicking a time-slider drag.
func (m *Mix) window() (int64, int64) {
	span := m.cfg.TimeMax - m.cfg.TimeMin
	const snap = 3600 // sliders move in hour steps
	width := (1 + m.rng.Int63n(span/(4*snap))) * snap
	start := m.cfg.TimeMin + m.rng.Int63n(span-width)/snap*snap
	return start, start + width
}

// timeJSON renders an optional time filter (p probability of having one).
func (m *Mix) timeJSON(p float64) string {
	if m.rng.Float64() >= p {
		return ""
	}
	s, e := m.window()
	return fmt.Sprintf(`,"time":{"start":%d,"end":%d}`, s, e)
}

// filterJSON renders an optional range filter over one of dataset's
// attributes.
func (m *Mix) filterJSON(dataset string, p float64) string {
	attrs := m.cfg.Attrs[dataset]
	if len(attrs) == 0 || m.rng.Float64() >= p {
		return ""
	}
	attr := pick(m.rng, attrs)
	lo := float64(m.rng.Intn(10))
	hi := lo + 5 + float64(m.rng.Intn(40))
	return fmt.Sprintf(`,"filters":[{"attr":%q,"min":%g,"max":%g}]`, attr, lo, hi)
}

// agg draws an aggregate and (when it needs one) an attribute valid for
// dataset.
func (m *Mix) agg(dataset string) (string, string) {
	aggs := []string{"count", "count", "count", "avg", "sum"}
	a := pick(m.rng, aggs)
	attrs := m.cfg.Attrs[dataset]
	if a == "count" || len(attrs) == 0 {
		return "count", ""
	}
	return a, pick(m.rng, attrs)
}

// Next generates the following request of the stream.
func (m *Mix) Next() HTTPRequest {
	// Weighted families, mirroring what an interactive session issues:
	// the map view dominates, sliders re-issue queries, tiles stream in.
	switch r := m.rng.Float64(); {
	case r < 0.26:
		return m.mapview()
	case r < 0.38:
		return m.query()
	case r < 0.46:
		return m.filterHeavy()
	case r < 0.56:
		return m.heatmap()
	case r < 0.64:
		return m.delta()
	case r < 0.72:
		return m.explore()
	case r < 0.81:
		return m.tile()
	case r < 0.88:
		return m.polygon()
	case r < 0.94:
		return m.choropleth()
	case r < 0.97:
		return HTTPRequest{Method: http.MethodGet, Path: "/api/stats", Kind: "stats"}
	default:
		return HTTPRequest{Method: http.MethodGet, Path: "/api/cachestats", Kind: "cachestats"}
	}
}

func (m *Mix) mapview() HTTPRequest {
	ds := pick(m.rng, m.cfg.Datasets)
	agg, attr := m.agg(ds)
	body := fmt.Sprintf(`{"dataset":%q,"layer":%q,"agg":%q,"attr":%q%s%s}`,
		ds, pick(m.rng, m.cfg.Layers), agg, attr,
		m.filterJSON(ds, 0.5), m.timeJSON(0.6))
	return HTTPRequest{Method: http.MethodPost, Path: "/api/mapview", Body: body, Kind: "mapview"}
}

// filterHeavy mimics a drilled-down exploration step: a choropleth under a
// sliver of an attribute range and an hours-wide time window, selecting a
// small fraction of the data. On a segment-backed catalog these requests
// zone-prune nearly every block, so the family keeps the pruning and
// residual-predicate paths hot under soak and chaos load.
func (m *Mix) filterHeavy() HTTPRequest {
	ds := pick(m.rng, m.cfg.Datasets)
	agg, attr := m.agg(ds)
	span := m.cfg.TimeMax - m.cfg.TimeMin
	width := int64(1+m.rng.Intn(4)) * 3600
	if width > span {
		width = span
	}
	start := m.cfg.TimeMin + m.rng.Int63n(span-width+1)/3600*3600
	timeJSON := fmt.Sprintf(`,"time":{"start":%d,"end":%d}`, start, start+width)
	filterJSON := ""
	if attrs := m.cfg.Attrs[ds]; len(attrs) > 0 {
		fa := pick(m.rng, attrs)
		lo := float64(m.rng.Intn(40)) + m.rng.Float64()
		hi := lo + 0.25 + m.rng.Float64()
		filterJSON = fmt.Sprintf(`,"filters":[{"attr":%q,"min":%g,"max":%g}]`, fa, lo, hi)
	}
	body := fmt.Sprintf(`{"dataset":%q,"layer":%q,"agg":%q,"attr":%q%s%s}`,
		ds, pick(m.rng, m.cfg.Layers), agg, attr, filterJSON, timeJSON)
	return HTTPRequest{Method: http.MethodPost, Path: "/api/mapview", Body: body, Kind: "filterheavy"}
}

func (m *Mix) query() HTTPRequest {
	ds := pick(m.rng, m.cfg.Datasets)
	agg, attr := m.agg(ds)
	sel := "COUNT(*)"
	if attr != "" {
		sel = fmt.Sprintf("%s(%s)", strings.ToUpper(agg), attr)
	}
	stmt := fmt.Sprintf("SELECT %s FROM %s, %s GROUP BY id",
		sel, ds, pick(m.rng, m.cfg.Layers))
	body := fmt.Sprintf(`{"stmt":%q}`, stmt)
	return HTTPRequest{Method: http.MethodPost, Path: "/api/query", Body: body, Kind: "query"}
}

func (m *Mix) heatmap() HTTPRequest {
	ds := pick(m.rng, m.cfg.Datasets)
	size := 64 << m.rng.Intn(3) // 64..256
	body := fmt.Sprintf(`{"dataset":%q,"w":%d,"h":%d%s%s}`,
		ds, size, size, m.filterJSON(ds, 0.3), m.timeJSON(0.5))
	return HTTPRequest{Method: http.MethodPost, Path: "/api/heatmap", Body: body, Kind: "heatmap"}
}

func (m *Mix) delta() HTTPRequest {
	ds := pick(m.rng, m.cfg.Datasets)
	agg, attr := m.agg(ds)
	aS, aE := m.window()
	bS, bE := m.window()
	if bS == aS && bE == aE { // the server rejects identical delta windows
		bE += 3600
	}
	body := fmt.Sprintf(`{"dataset":%q,"layer":%q,"agg":%q,"attr":%q,"a":{"start":%d,"end":%d},"b":{"start":%d,"end":%d}%s}`,
		ds, pick(m.rng, m.cfg.Layers), agg, attr,
		aS, aE, bS, bE, m.filterJSON(ds, 0.3))
	return HTTPRequest{Method: http.MethodPost, Path: "/api/delta", Body: body, Kind: "delta"}
}

// polygon draws an ad-hoc user polygon — a jittered star ring inside the
// configured bounds — and aggregates one data set over it, mimicking the
// paper's draw-a-region interaction. Rings are always valid (≥10 finite
// vertices, nonzero area) so a clean server answers 200. Most requests are
// unfiltered (the geoblocks hierarchy's home turf); a minority carry a
// filter or time window and take the raster fallback.
func (m *Mix) polygon() HTTPRequest {
	ds := pick(m.rng, m.cfg.Datasets)
	agg, attr := m.agg(ds)
	b := m.cfg.Bounds
	w, h := b[2]-b[0], b[3]-b[1]
	cx := b[0] + (0.15+0.7*m.rng.Float64())*w
	cy := b[1] + (0.15+0.7*m.rng.Float64())*h
	outer := (0.02 + 0.18*m.rng.Float64()) * math.Min(w, h)
	inner := outer * (0.35 + 0.4*m.rng.Float64())
	n := 5 + m.rng.Intn(4) // 10..16 vertices
	var sb strings.Builder
	for i := 0; i < 2*n; i++ {
		theta := math.Pi * float64(i) / float64(n)
		rad := outer
		if i%2 == 1 {
			rad = inner
		}
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "[%g,%g]", cx+rad*math.Cos(theta), cy+rad*math.Sin(theta))
	}
	body := fmt.Sprintf(`{"dataset":%q,"ring":[%s],"agg":%q,"attr":%q%s%s}`,
		ds, sb.String(), agg, attr, m.filterJSON(ds, 0.2), m.timeJSON(0.2))
	return HTTPRequest{Method: http.MethodPost, Path: "/api/polygon", Body: body, Kind: "polygon"}
}

func (m *Mix) explore() HTTPRequest {
	n := 1 + m.rng.Intn(3)
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprint(m.rng.Intn(m.cfg.Regions))
	}
	s, e := m.window()
	body := fmt.Sprintf(`{"datasets":[%q],"layer":%q,"agg":"count","regionIds":[%s],"start":%d,"end":%d,"bins":%d}`,
		pick(m.rng, m.cfg.Datasets), pick(m.rng, m.cfg.Layers),
		strings.Join(ids, ","), s, e, 4+m.rng.Intn(8))
	return HTTPRequest{Method: http.MethodPost, Path: "/api/explore", Body: body, Kind: "explore"}
}

func (m *Mix) tile() HTTPRequest {
	z := 10 + m.rng.Intn(3)
	// NYC-ish slippy addresses at zoom z (the server clamps rendering to
	// its data bounds; out-of-extent tiles are just empty, still valid).
	x := 301<<(z-10) + m.rng.Intn(1<<(z-9))
	y := 385<<(z-10) + m.rng.Intn(1<<(z-9))
	return HTTPRequest{Method: http.MethodGet, Kind: "tile",
		Path: fmt.Sprintf("/api/tile/%d/%d/%d.png?dataset=%s", z, x, y, pick(m.rng, m.cfg.Datasets))}
}

func (m *Mix) choropleth() HTTPRequest {
	ds := pick(m.rng, m.cfg.Datasets)
	agg, attr := m.agg(ds)
	return HTTPRequest{Method: http.MethodGet, Kind: "choropleth",
		Path: fmt.Sprintf("/api/render/choropleth.png?dataset=%s&layer=%s&agg=%s&attr=%s&w=%d",
			ds, pick(m.rng, m.cfg.Layers), agg, attr, 128<<m.rng.Intn(2))}
}
