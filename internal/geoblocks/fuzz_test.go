package geoblocks

import (
	"context"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/geom"
)

// FuzzClassify throws arbitrary ring geometry at the classifier and
// checks the full classification contract with the grid-paint oracle: no
// finest cell is both summed and refined, fringe cells sit at the finest
// level, and brute-force point-in-polygon agrees with the plan for every
// indexed point (nothing dropped, nothing double-counted). The corpus
// bytes decode as a stream of float64 coordinate pairs plus one level
// byte, so the fuzzer mutates vertex positions, vertex count, and
// pyramid depth all at once.
func FuzzClassify(f *testing.F) {
	seed := func(level byte, pts ...float64) {
		b := []byte{level}
		for _, v := range pts {
			var w [8]byte
			binary.LittleEndian.PutUint64(w[:], math.Float64bits(v))
			b = append(b, w[:]...)
		}
		f.Add(b)
	}
	// Triangle, cell-aligned square, degenerate zero-area spike, bowtie
	// (self-intersecting — even-odd semantics still well defined), and a
	// ring far outside the grid.
	seed(4, 100, 100, 900, 150, 500, 800)
	seed(5, 250, 250, 500, 250, 500, 500, 250, 500)
	seed(3, 10, 10, 990, 990, 10, 10)
	seed(6, 0, 0, 1000, 1000, 1000, 0, 0, 1000)
	seed(4, 5000, 5000, 6000, 5000, 5500, 6000)

	ps := genPoints(f, 600, 1234)
	indexes := map[int]*Index{}
	for _, lvl := range []int{2, 3, 4, 5} {
		ix, err := BuildContext(context.Background(), ps, lvl)
		if err != nil {
			f.Fatal(err)
		}
		indexes[lvl] = ix
	}

	f.Fuzz(func(t *testing.T, b []byte) {
		if len(b) < 1+3*16 { // level byte + at least three vertices
			t.Skip()
		}
		lvl := 2 + int(b[0])%4
		ring := geom.Ring{}
		for o := 1; o+16 <= len(b) && len(ring) < 64; o += 16 {
			x := math.Float64frombits(binary.LittleEndian.Uint64(b[o:]))
			y := math.Float64frombits(binary.LittleEndian.Uint64(b[o+8:]))
			if math.IsNaN(x) || math.IsNaN(y) {
				t.Skip()
			}
			// Clamp into a band around the grid so the classifier sees
			// inside/outside/straddling geometry rather than astronomic
			// coordinates that trivially prune at the root.
			ring = append(ring, geom.Point{
				X: math.Max(-2000, math.Min(3000, x)),
				Y: math.Max(-2000, math.Min(3000, y)),
			})
		}
		if len(ring) < 3 {
			t.Skip()
		}
		pg := geom.NewPolygon(ring)
		ix := indexes[lvl]
		pl, err := ix.Classify(context.Background(), pg)
		if err != nil {
			t.Fatalf("classify: %v", err)
		}
		checkPlanInvariants(t, ix, pg, pl)
	})
}
