package geoblocks_test

// The metamorphic proof suite: the geoblocks hybrid (stored interior
// aggregates + exact fringe refinement) must be indistinguishable from the
// full accurate raster join on every aggregate, for any polygon, at any
// pyramid depth. Count/Min/Max are bit-identical (both sides classify
// points with the same even-odd Polygon.Contains, and those folds are
// order-independent); Sum/Avg are compensated on both sides but fold in
// different orders, so they carry an ε bound scaled to the magnitude of
// the data.

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geoblocks"
	"repro/internal/geom"
	"repro/internal/gpu"
	"repro/internal/urbane"
)

// buildScene mirrors the white-box generator: uniform wash + two clusters
// + duplicate stacks + exact-boundary points, with a sign-mixed attribute
// "v" and a positive attribute "w".
func buildScene(t testing.TB, n int, seed int64) *data.PointSet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ps := &data.PointSet{Name: "scene"}
	v := make([]float64, 0, n)
	w := make([]float64, 0, n)
	add := func(x, y float64) {
		ps.X = append(ps.X, x)
		ps.Y = append(ps.Y, y)
		v = append(v, (rng.Float64()-0.5)*200)
		w = append(w, rng.Float64()*60)
	}
	add(0, 0)
	add(1000, 1000)
	for i := 0; i < 6; i++ {
		add(333.125, 666.875)
	}
	for len(ps.X) < n {
		switch rng.Intn(3) {
		case 0:
			add(rng.Float64()*1000, rng.Float64()*1000)
		case 1:
			add(280+rng.NormFloat64()*60, 640+rng.NormFloat64()*60)
		default:
			add(760+rng.NormFloat64()*30, 220+rng.NormFloat64()*30)
		}
	}
	ps.Attrs = []data.Column{{Name: "v", Values: v}, {Name: "w", Values: w}}
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
	return ps
}

// randomPolygon draws from a family of shapes spanning the cases that
// stress classification differently: convex, star (concave), rectangles
// aligned with cell walls, annuli (holes), and slivers.
func randomPolygon(rng *rand.Rand) geom.Polygon {
	c := geom.Point{X: rng.Float64() * 1000, Y: rng.Float64() * 1000}
	size := 20 + rng.Float64()*450
	switch rng.Intn(5) {
	case 0:
		return geom.NewPolygon(geom.RegularRing(c, size, 3+rng.Intn(10)))
	case 1:
		return geom.NewPolygon(geom.StarRing(c, size, size*(0.25+rng.Float64()*0.5), 4+rng.Intn(6)))
	case 2:
		// Axis-aligned rectangle; with probability 1/2 snapped onto exact
		// cell-wall coordinates (multiples of 1000/2^L) to force ties.
		x0, y0 := c.X, c.Y
		w, h := size, 20+rng.Float64()*450
		if rng.Intn(2) == 0 {
			snap := 1000.0 / float64(int(1)<<uint(3+rng.Intn(4)))
			x0 = math.Round(x0/snap) * snap
			y0 = math.Round(y0/snap) * snap
			w = math.Max(snap, math.Round(w/snap)*snap)
			h = math.Max(snap, math.Round(h/snap)*snap)
		}
		return geom.NewPolygon(geom.RectRing(geom.BBox{MinX: x0, MinY: y0, MaxX: x0 + w, MaxY: y0 + h}))
	case 3:
		return geom.Polygon{
			Outer: geom.RegularRing(c, size, 16),
			Holes: []geom.Ring{geom.RegularRing(c, size*0.45, 12)},
		}
	default:
		// Sliver: long thin quad at a random angle.
		th := rng.Float64() * math.Pi
		dx, dy := math.Cos(th), math.Sin(th)
		nx, ny := -dy*3, dx*3
		return geom.NewPolygon(geom.Ring{
			{X: c.X - dx*size, Y: c.Y - dy*size},
			{X: c.X + dx*size, Y: c.Y + dy*size},
			{X: c.X + dx*size + nx, Y: c.Y + dy*size + ny},
			{X: c.X - dx*size + nx, Y: c.Y - dy*size + ny},
		})
	}
}

func regions(polys ...geom.Polygon) *data.RegionSet {
	rs := &data.RegionSet{Name: "q"}
	for i, pg := range polys {
		rs.Regions = append(rs.Regions, data.Region{ID: i, Name: "q", Poly: pg})
	}
	return rs
}

var aggCases = []struct {
	agg  core.Agg
	attr string
}{
	{core.Count, ""},
	{core.Sum, "v"},
	{core.Avg, "v"},
	{core.Min, "v"},
	{core.Max, "w"},
}

// sumTol is the ε bound for compensated sums folded in different orders:
// proportional to the number of terms times the largest magnitude either
// side could have accumulated.
func sumTol(count int64, maxAbs float64) float64 {
	return 1e-11*float64(count)*maxAbs + 1e-9
}

func compareResults(t *testing.T, context string, got, want *core.Result, agg core.Agg, maxAbs float64) {
	t.Helper()
	if len(got.Stats) != len(want.Stats) {
		t.Fatalf("%s: %d stats vs %d", context, len(got.Stats), len(want.Stats))
	}
	for k := range got.Stats {
		g, w := got.Stats[k], want.Stats[k]
		if g.Count != w.Count {
			t.Errorf("%s region %d: count %d, want %d", context, k, g.Count, w.Count)
			continue
		}
		switch agg {
		// Only the requested extreme is contractual: the accurate join's
		// min/max strategy tracks just that side, so the other field is
		// not comparable.
		case core.Min:
			if g.Min != w.Min {
				t.Errorf("%s region %d: min %g, want %g", context, k, g.Min, w.Min)
			}
		case core.Max:
			if g.Max != w.Max {
				t.Errorf("%s region %d: max %g, want %g", context, k, g.Max, w.Max)
			}
		case core.Sum, core.Avg:
			if d := math.Abs(g.Sum - w.Sum); d > sumTol(g.Count, maxAbs) {
				t.Errorf("%s region %d: sum %g, want %g (|Δ|=%g > tol %g)",
					context, k, g.Sum, w.Sum, d, sumTol(g.Count, maxAbs))
			}
		}
	}
}

// TestGeoBlocksEquivalence is the headline property test: ≥200 randomized
// (polygon, level, aggregate) cases, each checked cold (first query after
// the store drops) and warm (served from the cached index), against the
// full accurate join.
func TestGeoBlocksEquivalence(t *testing.T) {
	ps := buildScene(t, 6000, 11)
	dev := gpu.New()
	raster := core.NewRasterJoin(core.WithDevice(dev),
		core.WithMode(core.Accurate), core.WithResolution(96))
	ctx := context.Background()
	rng := rand.New(rand.NewSource(99))

	cases := 0
	for _, lvl := range []int{3, 5, 8} {
		eng := geoblocks.NewEngine(raster, lvl)
		for i := 0; i < 72; i++ {
			polys := []geom.Polygon{randomPolygon(rng)}
			if i%4 == 0 { // multi-region requests fold several plans per query
				polys = append(polys, randomPolygon(rng))
			}
			ac := aggCases[i%len(aggCases)]
			req := core.Request{Points: ps, Regions: regions(polys...), Agg: ac.agg, Attr: ac.attr}

			got, err := eng.JoinContext(ctx, req)
			if err != nil {
				t.Fatalf("level %d case %d: hybrid: %v", lvl, i, err)
			}
			if !strings.HasPrefix(got.Algorithm, "geoblocks-hybrid") {
				t.Fatalf("level %d case %d: served by %q, not the hybrid", lvl, i, got.Algorithm)
			}
			want, err := raster.JoinContext(ctx, req)
			if err != nil {
				t.Fatalf("level %d case %d: baseline: %v", lvl, i, err)
			}
			name := "L" + string(rune('0'+lvl))
			compareResults(t, name+" cold", got, want, ac.agg, 200)

			// Warm: the index is now cached; the same request must
			// reproduce the cold answer bit-for-bit.
			again, err := eng.JoinContext(ctx, req)
			if err != nil {
				t.Fatalf("level %d case %d: warm: %v", lvl, i, err)
			}
			for k := range got.Stats {
				if again.Stats[k] != got.Stats[k] {
					t.Fatalf("level %d case %d region %d: warm result diverged from cold", lvl, i, k)
				}
			}
			cases++
		}
	}
	if cases < 200 {
		t.Fatalf("only %d randomized cases ran; the suite promises ≥ 200", cases)
	}
}

// TestEquivalenceUnderRingTransforms: classification consumes only the
// polygon's edge set and its even-odd Contains, both invariant under
// rotating the ring's starting vertex and reversing its orientation — so
// the hybrid's answer must be bit-identical under either transform.
func TestEquivalenceUnderRingTransforms(t *testing.T) {
	ps := buildScene(t, 3000, 21)
	raster := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(64))
	eng := geoblocks.NewEngine(raster, 6)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(31))

	for i := 0; i < 40; i++ {
		pg := randomPolygon(rng)
		ac := aggCases[i%len(aggCases)]
		base, err := eng.JoinContext(ctx, core.Request{
			Points: ps, Regions: regions(pg), Agg: ac.agg, Attr: ac.attr})
		if err != nil {
			t.Fatal(err)
		}

		rot := rng.Intn(len(pg.Outer))
		rotated := geom.Polygon{Outer: append(append(geom.Ring{}, pg.Outer[rot:]...), pg.Outer[:rot]...), Holes: pg.Holes}
		reversed := geom.Polygon{Outer: append(geom.Ring{}, pg.Outer...), Holes: pg.Holes}
		for a, b := 0, len(reversed.Outer)-1; a < b; a, b = a+1, b-1 {
			reversed.Outer[a], reversed.Outer[b] = reversed.Outer[b], reversed.Outer[a]
		}
		for name, tp := range map[string]geom.Polygon{"rotated": rotated, "reversed": reversed} {
			got, err := eng.JoinContext(ctx, core.Request{
				Points: ps, Regions: regions(tp), Agg: ac.agg, Attr: ac.attr})
			if err != nil {
				t.Fatalf("case %d %s: %v", i, name, err)
			}
			if got.Stats[0] != base.Stats[0] {
				t.Errorf("case %d: %s ring changed the answer: %+v vs %+v",
					i, name, got.Stats[0], base.Stats[0])
			}
		}
	}
}

// TestFrameworkGeoBlocksToggle proves the "disabled" leg: a framework
// with the hierarchy enabled and one without must agree on every
// unfiltered polygon query — enabling geoblocks changes the plan, never
// the answer.
func TestFrameworkGeoBlocksToggle(t *testing.T) {
	ps := buildScene(t, 2500, 41)
	mk := func(enable bool) *urbane.Framework {
		f := urbane.New(core.NewRasterJoin(core.WithDevice(gpu.New()),
			core.WithMode(core.Accurate), core.WithResolution(96)))
		// Each framework needs its own PointSet copy: AddPointSet takes
		// ownership, and sharing one across frameworks would also share
		// the geoblocks identity stamp.
		cp := &data.PointSet{Name: ps.Name, X: ps.X, Y: ps.Y, T: ps.T, Attrs: ps.Attrs}
		if err := f.AddPointSet(cp); err != nil {
			t.Fatal(err)
		}
		if enable {
			f.EnableGeoBlocks(6)
		}
		return f
	}
	on, off := mk(true), mk(false)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(51))

	for i := 0; i < 25; i++ {
		pg := randomPolygon(rng)
		ac := aggCases[i%len(aggCases)]
		run := func(f *urbane.Framework) *core.Result {
			t.Helper()
			psf, ok := f.PointSet("scene")
			if !ok {
				t.Fatal("scene point set missing")
			}
			res, err := f.ExecuteContext(ctx, core.Request{
				Points: psf, Regions: regions(pg), Agg: ac.agg, Attr: ac.attr})
			if err != nil {
				t.Fatal(err)
			}
			return res
		}
		got, want := run(on), run(off)
		if !strings.HasPrefix(got.Algorithm, "geoblocks-hybrid") {
			t.Fatalf("case %d: enabled framework served by %q", i, got.Algorithm)
		}
		if strings.HasPrefix(want.Algorithm, "geoblocks-hybrid") {
			t.Fatalf("case %d: disabled framework served by %q", i, want.Algorithm)
		}
		compareResults(t, "toggle", got, want, ac.agg, 200)
	}
}

// TestGeoBlocksSmoke is the CI gate (make geoblocks-smoke): a seeded
// build plus 50 hybrid-vs-full equivalence queries, cheap enough to run
// under -race on every push.
func TestGeoBlocksSmoke(t *testing.T) {
	ps := buildScene(t, 2000, 7)
	raster := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(64))
	eng := geoblocks.NewEngine(raster, 6)
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))

	for i := 0; i < 50; i++ {
		pg := randomPolygon(rng)
		ac := aggCases[i%len(aggCases)]
		req := core.Request{Points: ps, Regions: regions(pg), Agg: ac.agg, Attr: ac.attr}
		got, err := eng.JoinContext(ctx, req)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		want, err := raster.JoinContext(ctx, req)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		compareResults(t, "smoke", got, want, ac.agg, 200)
	}
}
