package geoblocks

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
)

// genPoints builds a deterministic mixed point set: a uniform wash, two
// heavy clusters, coincident duplicates, and points exactly on the bounds
// corners and edges — the shapes urban data and the bucketing edge cases
// both need. Attribute "v" mixes signs (sum cancellation), "w" is
// positive.
func genPoints(t testing.TB, n int, seed int64) *data.PointSet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ps := &data.PointSet{Name: "test",
		X: make([]float64, 0, n), Y: make([]float64, 0, n)}
	v := make([]float64, 0, n)
	w := make([]float64, 0, n)
	add := func(x, y float64) {
		ps.X = append(ps.X, x)
		ps.Y = append(ps.Y, y)
		v = append(v, (rng.Float64()-0.5)*80)
		w = append(w, rng.Float64()*40)
	}
	// Pin the extent and exercise the boundary-clamp rule.
	add(0, 0)
	add(1000, 1000)
	add(1000, 0)
	add(0, 1000)
	add(500, 1000) // on the max-Y edge
	add(1000, 500) // on the max-X edge
	for i := 0; i < 8; i++ {
		add(250.25, 250.25) // coincident stack
	}
	for len(ps.X) < n {
		switch rng.Intn(3) {
		case 0:
			add(rng.Float64()*1000, rng.Float64()*1000)
		case 1:
			add(300+rng.NormFloat64()*40, 700+rng.NormFloat64()*40)
		default:
			add(800+rng.NormFloat64()*25, 200+rng.NormFloat64()*25)
		}
	}
	ps.Attrs = []data.Column{{Name: "v", Values: v}, {Name: "w", Values: w}}
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
	return ps
}

// checkPlanInvariants proves the classification contract for one polygon
// against one index by brute force:
//
//  1. interior ⊎ fringe partitions (no finest cell is covered twice);
//  2. fringe cells sit at the finest level;
//  3. every point the polygon contains lives in an interior-covered or
//     fringe cell, and no point in an interior-covered cell is outside the
//     polygon — so the hybrid neither drops nor double-counts a point.
func checkPlanInvariants(t testing.TB, ix *Index, pg geom.Polygon, pl Plan) {
	t.Helper()
	if ix.empty {
		if len(pl.Interior)+len(pl.Fringe) != 0 {
			t.Fatalf("empty index produced a non-empty plan")
		}
		return
	}
	side := 1 << ix.maxLevel
	const (
		unmarked = 0
		interior = 1
		fringe   = 2
	)
	marks := make([]byte, side*side)
	paint := func(c Cell, m byte) {
		scale := side >> int(c.Level)
		for dy := 0; dy < scale; dy++ {
			for dx := 0; dx < scale; dx++ {
				fx := int(c.X)*scale + dx
				fy := int(c.Y)*scale + dy
				i := fy*side + fx
				if marks[i] != unmarked {
					t.Fatalf("cell L%d(%d,%d): finest cell (%d,%d) covered twice (marks %d then %d)",
						c.Level, c.X, c.Y, fx, fy, marks[i], m)
				}
				marks[i] = m
			}
		}
	}
	for _, c := range pl.Interior {
		paint(c, interior)
	}
	for _, c := range pl.Fringe {
		if int(c.Level) != ix.maxLevel {
			t.Fatalf("fringe cell at level %d, want %d", c.Level, ix.maxLevel)
		}
		paint(c, fringe)
	}
	for id := 0; id < ix.ps.Len(); id++ {
		p := geom.Point{X: ix.ps.X[id], Y: ix.ps.Y[id]}
		in := pg.Contains(p)
		m := marks[ix.finestCell(p.X, p.Y)]
		switch {
		case in && m == unmarked:
			t.Fatalf("point %d (%v) is inside the polygon but its cell is classified outside", id, p)
		case !in && m == interior:
			t.Fatalf("point %d (%v) is outside the polygon but its cell is classified interior", id, p)
		}
	}
}

func mustBuild(t testing.TB, ps *data.PointSet, maxLevel int) *Index {
	t.Helper()
	ix, err := BuildContext(context.Background(), ps, maxLevel)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestBuildPyramidConsistency(t *testing.T) {
	ps := genPoints(t, 5000, 1)
	ix := mustBuild(t, ps, 6)

	// The CSR order is a permutation and agrees with finestCell.
	seen := make([]bool, ps.Len())
	side := 1 << ix.maxLevel
	for c := 0; c < side*side; c++ {
		for _, id := range ix.order[ix.start[c]:ix.start[c+1]] {
			if seen[id] {
				t.Fatalf("point %d appears twice in the CSR", id)
			}
			seen[id] = true
			if got := int(ix.finestCell(ps.X[id], ps.Y[id])); got != c {
				t.Fatalf("point %d filed under cell %d but finestCell says %d", id, c, got)
			}
		}
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("point %d missing from the CSR", id)
		}
	}

	// Every level's cell count equals the sum of its four children; the
	// root count is the point count.
	for l := 0; l < ix.maxLevel; l++ {
		childSide := 1 << (l + 1)
		for cy := 0; cy < 1<<l; cy++ {
			for cx := 0; cx < 1<<l; cx++ {
				var sum int64
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						sum += ix.counts[l+1][(2*cy+dy)*childSide+2*cx+dx]
					}
				}
				if got := ix.counts[l][cy*(1<<l)+cx]; got != sum {
					t.Fatalf("level %d cell (%d,%d): count %d != children sum %d", l, cx, cy, got, sum)
				}
			}
		}
	}
	if ix.counts[0][0] != int64(ps.Len()) {
		t.Fatalf("root count %d, want %d", ix.counts[0][0], ps.Len())
	}
}

func TestBuildAttrPyramid(t *testing.T) {
	ps := genPoints(t, 3000, 2)
	ix := mustBuild(t, ps, 5)
	col := ps.Attr("v")
	rng := rand.New(rand.NewSource(3))

	for trial := 0; trial < 200; trial++ {
		l := rng.Intn(ix.maxLevel + 1)
		sideL := 1 << l
		cx, cy := rng.Intn(sideL), rng.Intn(sideL)
		i := cy*sideL + cx

		// Brute-force the cell's stats from the finest CSR descendants.
		scale := (1 << ix.maxLevel) >> l
		var cnt int64
		var sum float64
		mn, mx := math.Inf(1), math.Inf(-1)
		fineSide := 1 << ix.maxLevel
		for dy := 0; dy < scale; dy++ {
			for dx := 0; dx < scale; dx++ {
				fc := (cy*scale+dy)*fineSide + cx*scale + dx
				for _, id := range ix.order[ix.start[fc]:ix.start[fc+1]] {
					cnt++
					sum += col[id]
					if col[id] < mn {
						mn = col[id]
					}
					if col[id] > mx {
						mx = col[id]
					}
				}
			}
		}
		ap := ix.attrs["v"]
		if got := ix.counts[l][i]; got != cnt {
			t.Fatalf("L%d(%d,%d): count %d want %d", l, cx, cy, got, cnt)
		}
		if cnt == 0 {
			continue
		}
		if got := ap.sums[l][i]; math.Abs(got-sum) > 1e-9*(1+math.Abs(sum)) {
			t.Fatalf("L%d(%d,%d): sum %g want %g", l, cx, cy, got, sum)
		}
		if ap.mins[l][i] != mn || ap.maxs[l][i] != mx {
			t.Fatalf("L%d(%d,%d): min/max %g/%g want %g/%g",
				l, cx, cy, ap.mins[l][i], ap.maxs[l][i], mn, mx)
		}
	}
}

func TestClassifyDeterministicShapes(t *testing.T) {
	ps := genPoints(t, 4000, 4)
	ix := mustBuild(t, ps, 6)
	ctx := context.Background()

	shapes := map[string]geom.Polygon{
		"coversGrid":   geom.NewPolygon(geom.RectRing(ix.Bounds().Expand(10))),
		"fullyOutside": geom.NewPolygon(geom.RectRing(geom.BBox{MinX: 5000, MinY: 5000, MaxX: 6000, MaxY: 6000})),
		"halfPlane":    geom.NewPolygon(geom.Ring{{X: -100, Y: -100}, {X: 480, Y: -100}, {X: 480, Y: 1100}, {X: -100, Y: 1100}}),
		"star":         geom.NewPolygon(geom.StarRing(geom.Point{X: 400, Y: 600}, 350, 120, 7)),
		"degenerate":   geom.NewPolygon(geom.Ring{{X: 100, Y: 100}, {X: 500, Y: 500}, {X: 300, Y: 300}}),
		"withHole": {
			Outer: geom.RegularRing(geom.Point{X: 500, Y: 500}, 450, 24),
			Holes: []geom.Ring{geom.RegularRing(geom.Point{X: 500, Y: 500}, 200, 16)},
		},
		"tiny": geom.NewPolygon(geom.RegularRing(geom.Point{X: 250.25, Y: 250.25}, 3, 8)),
	}
	for name, pg := range shapes {
		pl, err := ix.Classify(ctx, pg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		checkPlanInvariants(t, ix, pg, pl)

		// The plan folds to exactly the brute-force stat.
		st, err := ix.RegionStat(ctx, pg, pl, ix.attrs["v"])
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var want core.RegionStat
		col := ps.Attr("v")
		for i := 0; i < ps.Len(); i++ {
			if pg.Contains(geom.Point{X: ps.X[i], Y: ps.Y[i]}) {
				want.Observe(col[i])
			}
		}
		if st.Count != want.Count {
			t.Fatalf("%s: count %d want %d", name, st.Count, want.Count)
		}
		if want.Count > 0 && (st.Min != want.Min || st.Max != want.Max) {
			t.Fatalf("%s: min/max %g/%g want %g/%g", name, st.Min, st.Max, want.Min, want.Max)
		}
		if math.Abs(st.Sum-want.Sum) > 1e-9*(1+math.Abs(want.Sum)) {
			t.Fatalf("%s: sum %g want %g", name, st.Sum, want.Sum)
		}
	}

	if pl, _ := ix.Classify(ctx, shapes["fullyOutside"]); len(pl.Interior)+len(pl.Fringe) != 0 {
		t.Fatalf("fully-outside polygon classified %d interior and %d fringe cells",
			len(pl.Interior), len(pl.Fringe))
	}
	if pl, _ := ix.Classify(ctx, shapes["coversGrid"]); len(pl.Interior) != 1 || len(pl.Fringe) != 0 {
		t.Fatalf("grid-covering polygon should classify the root cell interior, got %d interior / %d fringe",
			len(pl.Interior), len(pl.Fringe))
	}
}

func TestEmptyAndDegenerateSets(t *testing.T) {
	ctx := context.Background()

	empty := &data.PointSet{Name: "empty"}
	ix := mustBuild(t, empty, 4)
	pl, err := ix.Classify(ctx, geom.NewPolygon(geom.RegularRing(geom.Point{X: 0, Y: 0}, 10, 6)))
	if err != nil {
		t.Fatal(err)
	}
	st, err := ix.RegionStat(ctx, geom.Polygon{}, pl, nil)
	if err != nil || st.Count != 0 {
		t.Fatalf("empty set: stat %+v err %v", st, err)
	}

	// All points coincident: zero-extent bounds must still index.
	co := &data.PointSet{Name: "co", X: []float64{5, 5, 5}, Y: []float64{7, 7, 7},
		Attrs: []data.Column{{Name: "v", Values: []float64{1, 2, 3}}}}
	ix = mustBuild(t, co, 3)
	pg := geom.NewPolygon(geom.RegularRing(geom.Point{X: 5, Y: 7}, 2, 8))
	pl, err = ix.Classify(ctx, pg)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanInvariants(t, ix, pg, pl)
	st, err = ix.RegionStat(ctx, pg, pl, ix.attrs["v"])
	if err != nil || st.Count != 3 || st.Sum != 6 {
		t.Fatalf("coincident set: stat %+v err %v", st, err)
	}
}

func TestStoreGenerationAndCoalescing(t *testing.T) {
	ps := genPoints(t, 2000, 5)
	s := NewStore(5)
	s.SetGeneration(1)
	ctx := context.Background()

	a, err := s.Get(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Get(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("second Get rebuilt instead of reusing")
	}
	st := s.Stats()
	if st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats after warm get: %+v", st)
	}

	// Same generation: no invalidation.
	s.SetGeneration(1)
	if c, _ := s.Get(ctx, ps); c != a {
		t.Fatal("same-generation SetGeneration dropped the index")
	}
	// New generation: everything drops.
	s.SetGeneration(2)
	c, err := s.Get(ctx, ps)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("generation bump did not rebuild")
	}
	// Two generation changes so far: 0->1 at setup and 1->2 here.
	if st := s.Stats(); st.Invalidations != 2 || st.Misses != 2 {
		t.Fatalf("stats after invalidation: %+v", st)
	}

	// Concurrent cold gets coalesce on one build.
	s.SetGeneration(3)
	var wg sync.WaitGroup
	got := make([]*Index, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], _ = s.Get(ctx, ps)
		}(i)
	}
	wg.Wait()
	for i := range got {
		if got[i] == nil || got[i] != got[0] {
			t.Fatalf("concurrent get %d diverged", i)
		}
	}
	if st := s.Stats(); st.Misses != 3 {
		t.Fatalf("concurrent cold gets built %d times, want 1 (stats %+v)", st.Misses-2, st)
	}
}

func TestEngineCanServe(t *testing.T) {
	ps := genPoints(t, 100, 6)
	rs := &data.RegionSet{Name: "r", Regions: []data.Region{
		{ID: 0, Name: "r0", Poly: geom.NewPolygon(geom.RegularRing(geom.Point{X: 500, Y: 500}, 100, 8))},
	}}
	eng := NewEngine(core.NewRasterJoin(core.WithMode(core.Accurate)), 4)

	ok := core.Request{Points: ps, Regions: rs, Agg: core.Sum, Attr: "v"}
	if err := eng.CanServe(ok); err != nil {
		t.Fatalf("plain request rejected: %v", err)
	}
	cases := map[string]core.Request{
		"filter": {Points: ps, Regions: rs, Agg: core.Count,
			Filters: []core.Filter{{Attr: "v", Min: 0, Max: 1}}},
		"time":    {Points: ps, Regions: rs, Agg: core.Count, Time: &core.TimeFilter{Start: 0, End: 1}},
		"badAttr": {Points: ps, Regions: rs, Agg: core.Avg, Attr: "nope"},
	}
	for name, req := range cases {
		if err := eng.CanServe(req); err == nil {
			t.Fatalf("%s: CanServe accepted an unsupported request", name)
		}
	}
}
