package geoblocks_test

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/geoblocks"
	"repro/internal/geom"
)

// TestConcurrentBuildWhileQuery runs query goroutines against the engine
// while another goroutine churns the store generation, forcing rebuilds
// to race live queries. Run under -race this proves the index is
// immutable after publication and the store swap is safe; the brute-force
// check proves every answer — whichever index generation served it — is
// exact.
func TestConcurrentBuildWhileQuery(t *testing.T) {
	ps := buildScene(t, 8000, 71)
	eng := geoblocks.NewEngine(core.NewRasterJoin(core.WithMode(core.Accurate)), 6)
	store := eng.Store()
	store.SetGeneration(1)

	// Fixed polygon battery with precomputed exact counts/sums.
	rng := rand.New(rand.NewSource(72))
	type qcase struct {
		pg    geom.Polygon
		count int64
		sum   float64
	}
	col := ps.Attr("v")
	var battery []qcase
	for i := 0; i < 12; i++ {
		pg := randomPolygon(rng)
		var qc qcase
		qc.pg = pg
		for j := 0; j < ps.Len(); j++ {
			if pg.Contains(geom.Point{X: ps.X[j], Y: ps.Y[j]}) {
				qc.count++
				qc.sum += col[j]
			}
		}
		battery = append(battery, qc)
	}

	const workers = 8
	const iters = 60
	var churn atomic.Bool
	churn.Store(true)

	// Generation churner: invalidates the store continuously, so queries
	// constantly alternate between warm hits and cold rebuilds.
	var churnWG sync.WaitGroup
	churnWG.Add(1)
	go func() {
		defer churnWG.Done()
		gen := uint64(2)
		for churn.Load() {
			store.SetGeneration(gen)
			gen++
		}
	}()

	errs := make(chan string, workers*iters)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ctx := context.Background()
			for i := 0; i < iters; i++ {
				qc := battery[(w+i)%len(battery)]
				res, err := eng.JoinContext(ctx, core.Request{
					Points: ps, Regions: regions(qc.pg), Agg: core.Sum, Attr: "v"})
				if err != nil {
					errs <- err.Error()
					return
				}
				st := res.Stats[0]
				if st.Count != qc.count {
					errs <- "count mismatch under churn"
					return
				}
				if d := st.Sum - qc.sum; d > sumTol(qc.count, 200) || d < -sumTol(qc.count, 200) {
					errs <- "sum out of tolerance under churn"
					return
				}
			}
		}(w)
	}

	wg.Wait()
	churn.Store(false)
	churnWG.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
