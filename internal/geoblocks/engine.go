package geoblocks

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/trace"
)

// ErrUnsupported is wrapped by CanServe with the routing reason when a
// request cannot be answered from the hierarchy.
var ErrUnsupported = errors.New("geoblocks: unsupported")

// Engine answers arbitrary-polygon aggregation requests from the
// hierarchy, falling back to the wrapped raster join for anything the
// stored aggregates cannot serve (ad-hoc filters, time windows, attributes
// materialized after indexing). It implements core.ContextJoiner.
type Engine struct {
	raster *core.RasterJoin
	store  *Store
}

// NewEngine returns an engine building hierarchies at the given finest
// level (<=0 uses DefaultMaxLevel) and delegating unsupported requests to
// raster. raster must be non-nil.
func NewEngine(raster *core.RasterJoin, maxLevel int) *Engine {
	return &Engine{raster: raster, store: NewStore(maxLevel)}
}

// Store exposes the hierarchy store (generation slaving, stats).
func (e *Engine) Store() *Store { return e.store }

// Name implements core.Joiner.
func (e *Engine) Name() string { return "geoblocks-hybrid" }

// CanServe reports whether the request is answerable from stored
// aggregates. Ad-hoc range filters and time windows are not materialized —
// those keep the raster path, same as the pre-aggregation cubes.
func (e *Engine) CanServe(req core.Request) error {
	if req.Points == nil || req.Regions == nil {
		return fmt.Errorf("%w: request needs points and regions", ErrUnsupported)
	}
	if len(req.Filters) > 0 {
		return fmt.Errorf("%w: ad-hoc filter on %q", ErrUnsupported, req.Filters[0].Attr)
	}
	if req.Time != nil {
		return fmt.Errorf("%w: time window not materialized", ErrUnsupported)
	}
	if req.Agg.NeedsAttr() && req.Points.Attr(req.Attr) == nil {
		return fmt.Errorf("%w: attribute %q not in point set", ErrUnsupported, req.Attr)
	}
	return nil
}

// Join implements core.Joiner.
func (e *Engine) Join(req core.Request) (*core.Result, error) {
	return e.JoinContext(context.Background(), req)
}

// JoinContext answers the request hybrid-style: per region, classify the
// pyramid against the polygon (trace span geoblocks.plan), fold interior
// cells from stored aggregates, and resolve fringe cells with the exact
// point-in-polygon test (span geoblocks.refine). Unsupported requests
// delegate to the wrapped raster join unchanged. The hybrid path acquires
// no canvases or pooled textures, so cancellation hygiene is structural:
// both stages poll ctx and return its error with nothing to drain.
func (e *Engine) JoinContext(ctx context.Context, req core.Request) (*core.Result, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if err := e.CanServe(req); err != nil {
		return e.raster.JoinContext(ctx, req)
	}
	idx, err := e.store.Get(ctx, req.Points)
	if err != nil {
		return nil, err
	}
	// An attribute added to the point set after indexing is absent from
	// the hierarchy; the raster path still serves it exactly.
	var ap *attrPyr
	if req.Agg.NeedsAttr() {
		if ap = idx.attrs[req.Attr]; ap == nil {
			return e.raster.JoinContext(ctx, req)
		}
	}

	tr := trace.FromContext(ctx)
	regions := req.Regions.Regions

	sp := tr.Start("geoblocks.plan")
	plans := make([]Plan, len(regions))
	var interior, fringe, refined int
	for k := range regions {
		plans[k], err = idx.Classify(ctx, regions[k].Poly)
		if err != nil {
			sp.End()
			return nil, err
		}
		interior += len(plans[k].Interior)
		fringe += len(plans[k].Fringe)
		refined += idx.FringePoints(plans[k])
	}
	sp.End()

	sp = tr.Start("geoblocks.refine")
	stats := make([]core.RegionStat, len(regions))
	for k := range regions {
		stats[k], err = idx.RegionStat(ctx, regions[k].Poly, plans[k], ap)
		if err != nil {
			sp.End()
			return nil, err
		}
	}
	sp.End()

	tr.Count("geoblocks.interior_cells", int64(interior))
	tr.Count("geoblocks.fringe_cells", int64(fringe))
	tr.Count("geoblocks.refined_points", int64(refined))

	return &core.Result{
		Stats:     stats,
		Algorithm: fmt.Sprintf("geoblocks-hybrid(maxlevel=%d)", e.store.MaxLevel()),
		PixelSize: idx.CellWidth(),
	}, nil
}
