// Package geoblocks implements a GeoBlocks-style pre-aggregated spatial
// hierarchy (Winter et al., PAPERS.md): a pyramid of grid cells over a
// point set where every cell stores partial aggregates (count, compensated
// sum, min, max) per attribute, plus a CSR point-id list at the finest
// level. An arbitrary-polygon aggregation query is answered by classifying
// cells against the polygon — cells fully inside are folded from stored
// aggregates in O(cells), cells the boundary crosses fall through to an
// exact point-in-polygon refinement over only the fringe — generalizing
// the accurate raster join's interior/boundary split into a persistent
// structure.
//
// Contracts relative to the full accurate raster join: COUNT, MIN and MAX
// are bit-identical (both paths decide membership with the same even-odd
// geom.Polygon.Contains and min/max are order-independent); SUM and AVG
// are ε-bound (both sides are compensated, but summation order differs).
// See DESIGN.md "GeoBlocks cell classification" for the invariant and the
// ε accounting.
package geoblocks

import (
	"context"
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/fsum"
	"repro/internal/geom"
)

// DefaultMaxLevel is the default finest pyramid level: level L has
// 2^L × 2^L cells, so 8 gives a 256×256 finest grid (≈ 87k cells across
// all levels) — fine enough that fringes are thin, coarse enough that the
// pyramid stays a few megabytes per attribute.
const DefaultMaxLevel = 8

// MaxMaxLevel caps the finest level; 2^12 = 4096 per side keeps the
// pyramid under the device texture limit's order of magnitude and the
// build O(n + 4^level) bounded.
const MaxMaxLevel = 12

// buildPollStride is how many points the build processes between context
// polls.
const buildPollStride = 1 << 16

// attrPyr is the per-attribute aggregate pyramid: one sum/min/max slice
// per level, indexed like counts. min/max are only meaningful where the
// cell count is nonzero.
type attrPyr struct {
	col  []float64 // the raw column, for fringe refinement
	sums [][]float64
	mins [][]float64
	maxs [][]float64
}

// Index is the immutable hierarchy over one point set. Build once with
// BuildContext; safe for concurrent readers.
type Index struct {
	ps       *data.PointSet
	bounds   geom.BBox
	maxLevel int
	// eps conservatively expands cell boxes during classification so
	// floating-point residue in point bucketing can never move a point
	// across an interior/outside cell's wall (such cells become fringe
	// instead). See classify.
	eps float64
	// empty marks an index over zero points: every classification is
	// trivially all-outside.
	empty bool

	// CSR point-id lists at the finest level: ids of cell (cx, cy) are
	// order[start[cy*side+cx] : start[cy*side+cx+1]].
	start []int32
	order []int32

	// baseLen is the number of points the base CSR covers. A freshly built
	// index covers everything (baseLen == Len()); an index produced by
	// PatchAppend keeps the base CSR shared and lists ids >= baseLen in the
	// tail CSR below, nil on freshly built indexes. A cell's candidates are
	// its base ids followed by its tail ids — increasing index order, the
	// same enumeration a rebuild's counting sort yields.
	baseLen   int
	tailStart []int32
	tailOrder []int32

	// counts[L][cy*side_L+cx] is the number of points in the cell.
	counts [][]int64
	attrs  map[string]*attrPyr

	// finW, finH are the finest-level cell dimensions, precomputed for
	// the per-point bucketing loop.
	finW, finH float64
}

// BuildContext constructs the hierarchy for ps at the given finest level
// (<=0 uses DefaultMaxLevel). All attribute columns are materialized. The
// build polls ctx between strides, so an aborted request never pays for a
// full build.
func BuildContext(ctx context.Context, ps *data.PointSet, maxLevel int) (*Index, error) {
	if maxLevel <= 0 {
		maxLevel = DefaultMaxLevel
	}
	if maxLevel > MaxMaxLevel {
		maxLevel = MaxMaxLevel
	}
	if err := ps.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{ps: ps, maxLevel: maxLevel, attrs: make(map[string]*attrPyr)}
	if ps.Len() == 0 {
		ix.empty = true
		ix.bounds = geom.BBox{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
		return ix, nil
	}
	ix.bounds = ps.Bounds()
	// Degenerate extents (all points on one vertical/horizontal line)
	// still need nonzero cell dimensions for the box arithmetic.
	if ix.bounds.Width() <= 0 {
		ix.bounds.MaxX = ix.bounds.MinX + 1
	}
	if ix.bounds.Height() <= 0 {
		ix.bounds.MaxY = ix.bounds.MinY + 1
	}
	ix.eps = 1e-9 * (math.Abs(ix.bounds.MinX) + math.Abs(ix.bounds.MaxX) +
		math.Abs(ix.bounds.MinY) + math.Abs(ix.bounds.MaxY) +
		ix.bounds.Width() + ix.bounds.Height())

	side := 1 << maxLevel
	cells := side * side
	n := ps.Len()
	ix.finW = ix.bounds.Width() / float64(side)
	ix.finH = ix.bounds.Height() / float64(side)

	// Counting sort of point ids into finest cells. The bucketing pass
	// walks the point source block by block (zero-copy for the in-RAM
	// set), so a segment-backed build touches one decoded block at a time.
	ix.start = make([]int32, cells+1)
	cellOf := make([]int32, n)
	err := data.WalkBlocks(ps.Source(), 0, n, func(blk *data.Block, bs, be int) error {
		base := blk.Base
		for i := bs; i < be; i++ {
			if i%buildPollStride == 0 {
				if err := ctx.Err(); err != nil {
					return err
				}
			}
			j := i - base
			c := ix.finestCell(blk.X[j], blk.Y[j])
			cellOf[i] = c
			ix.start[c+1]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for c := 0; c < cells; c++ {
		ix.start[c+1] += ix.start[c]
	}
	ix.baseLen = n
	ix.order = make([]int32, n)
	cursor := make([]int32, cells)
	for i := 0; i < n; i++ {
		if i%buildPollStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		c := cellOf[i]
		ix.order[ix.start[c]+cursor[c]] = int32(i)
		cursor[c]++
	}

	// Finest-level aggregates from the CSR groups, then coarser levels by
	// combining four children per parent.
	ix.counts = make([][]int64, maxLevel+1)
	fin := make([]int64, cells)
	for c := 0; c < cells; c++ {
		fin[c] = int64(ix.start[c+1] - ix.start[c])
	}
	ix.counts[maxLevel] = fin
	for l := maxLevel - 1; l >= 0; l-- {
		ix.counts[l] = reduceCounts(ix.counts[l+1], 1<<(l+1))
	}

	for _, col := range ps.Attrs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ap := &attrPyr{
			col:  col.Values,
			sums: make([][]float64, maxLevel+1),
			mins: make([][]float64, maxLevel+1),
			maxs: make([][]float64, maxLevel+1),
		}
		sums := make([]float64, cells)
		mins := make([]float64, cells)
		maxs := make([]float64, cells)
		for c := 0; c < cells; c++ {
			lo, hi := ix.start[c], ix.start[c+1]
			if lo == hi {
				continue
			}
			var ks fsum.Kahan
			mn, mx := math.Inf(1), math.Inf(-1)
			for _, id := range ix.order[lo:hi] {
				v := col.Values[id]
				ks.Add(v)
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			sums[c], mins[c], maxs[c] = ks.Sum(), mn, mx
		}
		ap.sums[maxLevel], ap.mins[maxLevel], ap.maxs[maxLevel] = sums, mins, maxs
		for l := maxLevel - 1; l >= 0; l-- {
			ap.sums[l], ap.mins[l], ap.maxs[l] =
				reduceAttr(ap.sums[l+1], ap.mins[l+1], ap.maxs[l+1],
					ix.counts[l+1], 1<<(l+1))
		}
		ix.attrs[col.Name] = ap
	}
	return ix, nil
}

// reduceCounts combines a level of side childSide into its parent level.
func reduceCounts(child []int64, childSide int) []int64 {
	side := childSide / 2
	out := make([]int64, side*side)
	for cy := 0; cy < side; cy++ {
		for cx := 0; cx < side; cx++ {
			out[cy*side+cx] = child[(2*cy)*childSide+2*cx] +
				child[(2*cy)*childSide+2*cx+1] +
				child[(2*cy+1)*childSide+2*cx] +
				child[(2*cy+1)*childSide+2*cx+1]
		}
	}
	return out
}

// reduceAttr combines one attribute level into its parent: sums are
// compensated across the four children, min/max only consider non-empty
// children.
func reduceAttr(sums, mins, maxs []float64, counts []int64, childSide int) (s, mn, mx []float64) {
	side := childSide / 2
	s = make([]float64, side*side)
	mn = make([]float64, side*side)
	mx = make([]float64, side*side)
	for cy := 0; cy < side; cy++ {
		for cx := 0; cx < side; cx++ {
			var ks fsum.Kahan
			cmn, cmx := math.Inf(1), math.Inf(-1)
			for _, ci := range [4]int{
				(2 * cy * childSide) + 2*cx,
				(2 * cy * childSide) + 2*cx + 1,
				((2*cy + 1) * childSide) + 2*cx,
				((2*cy + 1) * childSide) + 2*cx + 1,
			} {
				if counts[ci] == 0 {
					continue
				}
				ks.Add(sums[ci])
				if mins[ci] < cmn {
					cmn = mins[ci]
				}
				if maxs[ci] > cmx {
					cmx = maxs[ci]
				}
			}
			p := cy*side + cx
			s[p] = ks.Sum()
			mn[p], mx[p] = cmn, cmx
		}
	}
	return s, mn, mx
}

// finestCell returns the finest-level cell index of world point (x, y),
// clamped into the grid (points exactly on the max edge land in the last
// cell, matching raster.Transform.ToPixel's rule).
func (ix *Index) finestCell(x, y float64) int32 {
	side := 1 << ix.maxLevel
	cx := int((x - ix.bounds.MinX) / ix.finW)
	cy := int((y - ix.bounds.MinY) / ix.finH)
	if cx < 0 {
		cx = 0
	}
	if cx >= side {
		cx = side - 1
	}
	if cy < 0 {
		cy = 0
	}
	if cy >= side {
		cy = side - 1
	}
	return int32(cy*side + cx)
}

// cellBox returns the world box of cell (cx, cy) at the given level.
// Child boxes nest exactly: the cell width at level L+1 is the exact
// floating-point half of level L's (power-of-two division), so
// 2cx·(w/2) and cx·w round to the identical value.
func (ix *Index) cellBox(level, cx, cy int) geom.BBox {
	side := float64(int(1) << level)
	cw := ix.bounds.Width() / side
	ch := ix.bounds.Height() / side
	return geom.BBox{
		MinX: ix.bounds.MinX + float64(cx)*cw,
		MinY: ix.bounds.MinY + float64(cy)*ch,
		MaxX: ix.bounds.MinX + float64(cx+1)*cw,
		MaxY: ix.bounds.MinY + float64(cy+1)*ch,
	}
}

// MaxLevel returns the finest pyramid level.
func (ix *Index) MaxLevel() int { return ix.maxLevel }

// Bounds returns the grid extent (the point set's bounding box).
func (ix *Index) Bounds() geom.BBox { return ix.bounds }

// Len returns the number of indexed points.
func (ix *Index) Len() int {
	if ix.empty {
		return 0
	}
	return len(ix.order) + len(ix.tailOrder)
}

// TailLen returns the number of points held by the tail CSR — zero for a
// freshly built index, the appended-point count for a patched one.
func (ix *Index) TailLen() int { return len(ix.tailOrder) }

// CellWidth returns the finest-level cell's world width.
func (ix *Index) CellWidth() float64 {
	return ix.bounds.Width() / float64(int(1)<<ix.maxLevel)
}

// Attrs returns the names of materialized attribute pyramids.
func (ix *Index) Attrs() []string {
	names := make([]string, 0, len(ix.attrs))
	for n := range ix.attrs {
		names = append(names, n)
	}
	return names
}

// Bytes estimates the resident size of the hierarchy.
func (ix *Index) Bytes() int {
	b := len(ix.start)*4 + len(ix.order)*4 + len(ix.tailStart)*4 + len(ix.tailOrder)*4
	for _, l := range ix.counts {
		b += len(l) * 8
	}
	for _, ap := range ix.attrs {
		for li := range ap.sums {
			b += (len(ap.sums[li]) + len(ap.mins[li]) + len(ap.maxs[li])) * 8
		}
	}
	return b
}

// String implements fmt.Stringer.
func (ix *Index) String() string {
	return fmt.Sprintf("geoblocks.Index{points=%d maxLevel=%d bytes=%d}",
		ix.Len(), ix.maxLevel, ix.Bytes())
}
