package geoblocks_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/geoblocks"
	"repro/internal/geom"
	"repro/internal/gpu"
)

// countdownCtx reports Canceled after its budget of Err() polls is spent —
// a deterministic way to abort inside a specific processing loop rather
// than at a wall-clock instant.
type countdownCtx struct {
	context.Context
	budget atomic.Int64
}

func newCountdown(n int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.budget.Store(n)
	return c
}

func (c *countdownCtx) Err() error {
	if c.budget.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func bigRing() geom.Polygon {
	// A many-vertex concave shape covering most of the grid: lots of
	// boundary cells, so classification and refinement both have plenty
	// of poll points to trip on.
	return geom.NewPolygon(geom.StarRing(geom.Point{X: 500, Y: 500}, 480, 140, 24))
}

// TestBuildCancelDoesNotPoisonStore aborts index construction mid-build
// and checks the store retries cleanly: the failed build is never cached,
// and the next Get with a live context succeeds.
func TestBuildCancelDoesNotPoisonStore(t *testing.T) {
	ps := buildScene(t, 200_000, 61) // large enough to cross build poll strides
	s := geoblocks.NewStore(8)
	s.SetGeneration(1)

	_, err := s.Get(newCountdown(1), ps)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("aborted build returned %v, want context.Canceled", err)
	}
	st := s.Stats()
	if st.Entries != 0 {
		t.Fatalf("failed build left %d cached entries", st.Entries)
	}

	ix, err := s.Get(context.Background(), ps)
	if err != nil {
		t.Fatalf("retry after aborted build: %v", err)
	}
	if ix.Len() != ps.Len() {
		t.Fatalf("retried index holds %d points, want %d", ix.Len(), ps.Len())
	}
}

// TestQueryCancelMidRefinement aborts during plan/refine and checks the
// hybrid path surfaces the cancellation without leaking render resources —
// the geoblocks path never touches the device, and nothing it allocates
// outlives the call.
func TestQueryCancelMidRefinement(t *testing.T) {
	ps := buildScene(t, 20_000, 62)
	dev := gpu.New()
	eng := geoblocks.NewEngine(core.NewRasterJoin(core.WithDevice(dev),
		core.WithMode(core.Accurate), core.WithResolution(96)), 8)
	req := core.Request{Points: ps, Regions: regions(bigRing()), Agg: core.Sum, Attr: "v"}

	// Warm the index with an unconstrained context first, so the
	// countdown budget is spent inside classify/refine, not the build.
	if _, err := eng.JoinContext(context.Background(), req); err != nil {
		t.Fatal(err)
	}

	aborted := 0
	for budget := int64(1); budget <= 64; budget *= 2 {
		_, err := eng.JoinContext(newCountdown(budget), req)
		switch {
		case errors.Is(err, context.Canceled):
			aborted++
		case err != nil:
			t.Fatalf("budget %d: unexpected error %v", budget, err)
		}
		if n := dev.LiveCanvases(); n != 0 {
			t.Fatalf("budget %d: %d canvases live after abort", budget, n)
		}
		if n := dev.LiveTextures(); n != 0 {
			t.Fatalf("budget %d: %d textures live after abort", budget, n)
		}
	}
	if aborted == 0 {
		t.Fatal("no countdown budget tripped a cancellation; poll points are not being exercised")
	}
}

// TestFallbackCancelDrainsDevice forces the raster fallback (an ad-hoc
// filter the hierarchy cannot serve) and cancels it mid-join: the
// fallback must release every canvas and texture it acquired.
func TestFallbackCancelDrainsDevice(t *testing.T) {
	ps := buildScene(t, 50_000, 63)
	dev := gpu.New()
	eng := geoblocks.NewEngine(core.NewRasterJoin(core.WithDevice(dev),
		core.WithMode(core.Accurate), core.WithResolution(256),
		core.WithPointBatch(1024)), 6)
	req := core.Request{Points: ps, Regions: regions(bigRing()), Agg: core.Count,
		Filters: []core.Filter{{Attr: "v", Min: -50, Max: 50}}}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the join must abort at its first poll
	if _, err := eng.JoinContext(ctx, req); !errors.Is(err, context.Canceled) {
		t.Fatalf("fallback under canceled ctx returned %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if dev.LiveCanvases() == 0 && dev.LiveTextures() == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("device not drained after fallback abort: %d canvases, %d textures",
		dev.LiveCanvases(), dev.LiveTextures())
}

// TestStoreGetHonorsWaiterContext: a waiter blocked on another
// goroutine's in-flight build must give up when its own context dies,
// while the build itself completes and serves later callers.
func TestStoreGetHonorsWaiterContext(t *testing.T) {
	ps := buildScene(t, 300_000, 64)
	s := geoblocks.NewStore(8)
	s.SetGeneration(1)

	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := s.Get(context.Background(), ps)
		done <- err
	}()
	<-started

	wctx, wcancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		wcancel()
	}()
	if _, err := s.Get(wctx, ps); err != nil && !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter returned %v, want nil (build won the race) or context.Canceled", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("background build failed: %v", err)
	}
	if _, err := s.Get(context.Background(), ps); err != nil {
		t.Fatalf("get after build: %v", err)
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("store built %d times, want 1 (stats %+v)", st.Misses, st)
	}
}
