package geoblocks

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/data"
)

// Store caches one Index per point set, keyed by PointSet.Stamp(), with
// whole-store invalidation slaved to a generation counter exactly like
// qcache and the span cache: the framework stamps it with
// Framework.Version() before every query, so any catalog (re)load drops every
// hierarchy. Concurrent first queries for the same point set coalesce on a
// single build; a build aborted by its requester's context is not cached,
// and surviving waiters retry.
type Store struct {
	maxLevel int

	mu      sync.Mutex
	gen     uint64
	entries map[uint64]*storeEntry

	hits          atomic.Uint64
	misses        atomic.Uint64
	invalidations atomic.Uint64
}

type storeEntry struct {
	done chan struct{}
	idx  *Index
	err  error
}

// NewStore returns an empty store building indexes at the given finest
// level (<=0 uses DefaultMaxLevel).
func NewStore(maxLevel int) *Store {
	if maxLevel <= 0 {
		maxLevel = DefaultMaxLevel
	}
	if maxLevel > MaxMaxLevel {
		maxLevel = MaxMaxLevel
	}
	return &Store{maxLevel: maxLevel, entries: make(map[uint64]*storeEntry)}
}

// MaxLevel returns the finest level of built hierarchies.
func (s *Store) MaxLevel() int { return s.maxLevel }

// SetGeneration invalidates every cached hierarchy when gen differs from
// the current generation. The no-change path is one mutex round trip.
func (s *Store) SetGeneration(gen uint64) {
	s.mu.Lock()
	if gen != s.gen {
		s.gen = gen
		s.entries = make(map[uint64]*storeEntry)
		s.invalidations.Add(1)
	}
	s.mu.Unlock()
}

// Get returns the hierarchy for ps, building it under ctx on first use.
// Concurrent callers for the same point set share one build; if the
// builder's context dies mid-build the failure is not cached and a
// surviving waiter takes over the build.
func (s *Store) Get(ctx context.Context, ps *data.PointSet) (*Index, error) {
	key := ps.Stamp()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		e, ok := s.entries[key]
		if !ok {
			e = &storeEntry{done: make(chan struct{})}
			s.entries[key] = e
			gen := s.gen
			s.mu.Unlock()
			s.misses.Add(1)
			e.idx, e.err = BuildContext(ctx, ps, s.maxLevel)
			close(e.done)
			if e.err != nil {
				// Never cache a failed build: remove the entry unless the
				// generation already swept it (or replaced it).
				s.mu.Lock()
				if cur, live := s.entries[key]; live && cur == e && s.gen == gen {
					delete(s.entries, key)
				}
				s.mu.Unlock()
				return nil, e.err
			}
			return e.idx, nil
		}
		s.mu.Unlock()
		select {
		case <-e.done:
			if e.err == nil {
				s.hits.Add(1)
				return e.idx, nil
			}
			// The builder's context died; loop and (re)build under ours.
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Stats is a point-in-time snapshot of store behavior.
type Stats struct {
	Entries       int    `json:"entries"`
	Bytes         int    `json:"bytes"`
	Hits          uint64 `json:"hits"`
	Misses        uint64 `json:"misses"`
	Invalidations uint64 `json:"invalidations"`
	MaxLevel      int    `json:"maxLevel"`
}

// Stats returns a snapshot. Bytes only counts completed builds.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:          s.hits.Load(),
		Misses:        s.misses.Load(),
		Invalidations: s.invalidations.Load(),
		MaxLevel:      s.maxLevel,
	}
	s.mu.Lock()
	st.Entries = len(s.entries)
	for _, e := range s.entries {
		select {
		case <-e.done:
			if e.err == nil {
				st.Bytes += e.idx.Bytes()
			}
		default:
		}
	}
	s.mu.Unlock()
	return st
}
