package geoblocks

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/data"
)

// Store caches one Index per point set, keyed by PointSet.Stamp(), with
// whole-store invalidation slaved to a generation counter exactly like
// qcache and the span cache: the framework stamps it with
// Framework.Version() before every query, so any catalog (re)load drops every
// hierarchy. Concurrent first queries for the same point set coalesce on a
// single build; a build aborted by its requester's context is not cached,
// and surviving waiters retry.
type Store struct {
	maxLevel int

	mu      sync.Mutex
	gen     uint64
	entries map[uint64]*storeEntry

	hits           atomic.Uint64
	misses         atomic.Uint64
	invalidations  atomic.Uint64
	patches        atomic.Uint64
	patchFallbacks atomic.Uint64
}

type storeEntry struct {
	done chan struct{}
	idx  *Index
	err  error
}

// NewStore returns an empty store building indexes at the given finest
// level (<=0 uses DefaultMaxLevel).
func NewStore(maxLevel int) *Store {
	if maxLevel <= 0 {
		maxLevel = DefaultMaxLevel
	}
	if maxLevel > MaxMaxLevel {
		maxLevel = MaxMaxLevel
	}
	return &Store{maxLevel: maxLevel, entries: make(map[uint64]*storeEntry)}
}

// MaxLevel returns the finest level of built hierarchies.
func (s *Store) MaxLevel() int { return s.maxLevel }

// SetGeneration invalidates every cached hierarchy when gen differs from
// the current generation. The no-change path is one mutex round trip.
func (s *Store) SetGeneration(gen uint64) {
	s.mu.Lock()
	if gen != s.gen {
		s.gen = gen
		s.entries = make(map[uint64]*storeEntry)
		s.invalidations.Add(1)
	}
	s.mu.Unlock()
}

// Get returns the hierarchy for ps, building it under ctx on first use.
// Concurrent callers for the same point set share one build; if the
// builder's context dies mid-build the failure is not cached and a
// surviving waiter takes over the build.
func (s *Store) Get(ctx context.Context, ps *data.PointSet) (*Index, error) {
	key := ps.Stamp()
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.mu.Lock()
		e, ok := s.entries[key]
		if !ok {
			e = &storeEntry{done: make(chan struct{})}
			s.entries[key] = e
			gen := s.gen
			s.mu.Unlock()
			s.misses.Add(1)
			e.idx, e.err = BuildContext(ctx, ps, s.maxLevel)
			close(e.done)
			if e.err != nil {
				// Never cache a failed build: remove the entry unless the
				// generation already swept it (or replaced it).
				s.mu.Lock()
				if cur, live := s.entries[key]; live && cur == e && s.gen == gen {
					delete(s.entries, key)
				}
				s.mu.Unlock()
				return nil, e.err
			}
			return e.idx, nil
		}
		s.mu.Unlock()
		select {
		case <-e.done:
			if e.err == nil {
				s.hits.Add(1)
				return e.idx, nil
			}
			// The builder's context died; loop and (re)build under ours.
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Patch migrates the cached hierarchy for oldPS to newPS — which must be
// oldPS plus appended points — by PatchAppend instead of a rebuild, and
// reports whether a patched index is now cached under newPS's stamp. The
// old entry is always retired: when no completed hierarchy exists (never
// built, build in flight for the obsolete snapshot, or PatchAppend refuses
// — out-of-bounds points, outgrown tail) the entry is simply dropped and
// the next query lazily rebuilds from scratch. A Get racing the retirement
// may briefly resurrect an entry under the old stamp; it is never read
// again and the next generation sweep reclaims it.
func (s *Store) Patch(ctx context.Context, oldPS, newPS *data.PointSet) bool {
	s.mu.Lock()
	e, ok := s.entries[oldPS.Stamp()]
	if ok {
		delete(s.entries, oldPS.Stamp())
	}
	s.mu.Unlock()
	if !ok {
		return false
	}
	select {
	case <-e.done:
	default:
		return false // build still in flight for the obsolete snapshot
	}
	if e.err != nil {
		return false
	}
	idx, err := e.idx.PatchAppend(ctx, newPS)
	if err != nil {
		s.patchFallbacks.Add(1)
		return false
	}
	ne := &storeEntry{done: make(chan struct{}), idx: idx}
	close(ne.done)
	s.mu.Lock()
	s.entries[newPS.Stamp()] = ne
	s.mu.Unlock()
	s.patches.Add(1)
	return true
}

// Stats is a point-in-time snapshot of store behavior.
type Stats struct {
	Entries        int    `json:"entries"`
	Bytes          int    `json:"bytes"`
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Invalidations  uint64 `json:"invalidations"`
	Patches        uint64 `json:"patches"`
	PatchFallbacks uint64 `json:"patchFallbacks"`
	MaxLevel       int    `json:"maxLevel"`
}

// Stats returns a snapshot. Bytes only counts completed builds.
func (s *Store) Stats() Stats {
	st := Stats{
		Hits:           s.hits.Load(),
		Misses:         s.misses.Load(),
		Invalidations:  s.invalidations.Load(),
		Patches:        s.patches.Load(),
		PatchFallbacks: s.patchFallbacks.Load(),
		MaxLevel:       s.maxLevel,
	}
	s.mu.Lock()
	st.Entries = len(s.entries)
	for _, e := range s.entries {
		select {
		case <-e.done:
			if e.err == nil {
				st.Bytes += e.idx.Bytes()
			}
		default:
		}
	}
	s.mu.Unlock()
	return st
}
