package geoblocks_test

// Patch-on-append metamorphic suite: an index patched with appended tails
// must be indistinguishable from an index rebuilt from scratch over the
// same points — counts and min/max bit-identical (integer adds and
// monotone updates), sums within the package's ε contract (the patch
// merges two compensated partials per cell) — and the patched hybrid must
// still satisfy the original equivalence contract against the full
// accurate raster join.

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geoblocks"
	"repro/internal/geom"
)

// buildPatchScene mirrors buildScene but clamps every coordinate into
// [0,1000]² and pins the corners up front, so any prefix of the points
// spans the full grid bounds and any suffix appends in-bounds — patches
// never hit the out-of-bounds refusal.
func buildPatchScene(t testing.TB, n int, seed int64) *data.PointSet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ps := &data.PointSet{Name: "patch-scene"}
	v := make([]float64, 0, n)
	w := make([]float64, 0, n)
	clamp := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1000 {
			return 1000
		}
		return x
	}
	add := func(x, y float64) {
		ps.X = append(ps.X, clamp(x))
		ps.Y = append(ps.Y, clamp(y))
		v = append(v, (rng.Float64()-0.5)*200)
		w = append(w, rng.Float64()*60)
	}
	add(0, 0)
	add(1000, 1000)
	for i := 0; i < 6; i++ {
		add(333.125, 666.875)
	}
	for len(ps.X) < n {
		switch rng.Intn(3) {
		case 0:
			add(rng.Float64()*1000, rng.Float64()*1000)
		case 1:
			add(280+rng.NormFloat64()*60, 640+rng.NormFloat64()*60)
		default:
			add(760+rng.NormFloat64()*30, 220+rng.NormFloat64()*30)
		}
	}
	ps.Attrs = []data.Column{{Name: "v", Values: v}, {Name: "w", Values: w}}
	if err := ps.Validate(); err != nil {
		t.Fatal(err)
	}
	return ps
}

// deepSlice copies points [lo, hi) into an independent PointSet, so the
// copy-on-write appends in the tests can never alias each other's arrays.
func deepSlice(ps *data.PointSet, lo, hi int) *data.PointSet {
	idx := make([]int, hi-lo)
	for i := range idx {
		idx[i] = lo + i
	}
	return ps.Select(idx)
}

// TestPatchAppendEquivalence re-runs the 216-case metamorphic suite
// against appended states: the hierarchy is built over a 4500-point base,
// patched through two successive appends to 6000 points, and then — at
// three pyramid depths × 72 randomized (polygon, aggregate) cases — must
// match both the full accurate raster join over the appended state and a
// from-scratch rebuild over the identical points.
func TestPatchAppendEquivalence(t *testing.T) {
	full := buildPatchScene(t, 6000, 17)
	const m, mid = 4500, 5250
	ctx := context.Background()
	raster := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(96))
	rng := rand.New(rand.NewSource(7))

	cases := 0
	for _, lvl := range []int{3, 5, 8} {
		basePS := deepSlice(full, 0, m)
		tail1 := deepSlice(full, m, mid)
		tail2 := deepSlice(full, mid, 6000)
		rebuiltPS := deepSlice(full, 0, 6000)

		eng := geoblocks.NewEngine(raster, lvl)
		engRebuild := geoblocks.NewEngine(raster, lvl)

		// Build the base hierarchy, then move it through two patches —
		// the second exercises patch-on-patch (tail CSR spanning both
		// appends, delta pyramid over only the second).
		if _, err := eng.JoinContext(ctx, core.Request{
			Points: basePS, Regions: regions(randomPolygon(rng)), Agg: core.Count}); err != nil {
			t.Fatalf("level %d: base build: %v", lvl, err)
		}
		grown1, err := basePS.AppendCOW(tail1)
		if err != nil {
			t.Fatal(err)
		}
		if !eng.Store().Patch(ctx, basePS, grown1) {
			t.Fatalf("level %d: first patch refused", lvl)
		}
		grown2, err := grown1.AppendCOW(tail2)
		if err != nil {
			t.Fatal(err)
		}
		if !eng.Store().Patch(ctx, grown1, grown2) {
			t.Fatalf("level %d: second patch refused", lvl)
		}
		if st := eng.Store().Stats(); st.Patches != 2 || st.PatchFallbacks != 0 {
			t.Fatalf("level %d: patches=%d fallbacks=%d, want 2/0", lvl, st.Patches, st.PatchFallbacks)
		}
		missesAfterPatch := eng.Store().Stats().Misses

		for i := 0; i < 72; i++ {
			polys := []geom.Polygon{randomPolygon(rng)}
			if i%4 == 0 {
				polys = append(polys, randomPolygon(rng))
			}
			ac := aggCases[i%len(aggCases)]
			req := core.Request{Points: grown2, Regions: regions(polys...), Agg: ac.agg, Attr: ac.attr}

			got, err := eng.JoinContext(ctx, req)
			if err != nil {
				t.Fatalf("level %d case %d: patched hybrid: %v", lvl, i, err)
			}
			want, err := raster.JoinContext(ctx, req)
			if err != nil {
				t.Fatalf("level %d case %d: baseline: %v", lvl, i, err)
			}
			compareResults(t, "patched-vs-raster", got, want, ac.agg, 200)

			rreq := req
			rreq.Points = rebuiltPS
			rb, err := engRebuild.JoinContext(ctx, rreq)
			if err != nil {
				t.Fatalf("level %d case %d: rebuilt hybrid: %v", lvl, i, err)
			}
			compareResults(t, "patched-vs-rebuilt", got, rb, ac.agg, 200)
			cases++
		}
		// Every query after the patches must have been served by the
		// patched index, never a silent rebuild.
		if st := eng.Store().Stats(); st.Misses != missesAfterPatch {
			t.Fatalf("level %d: store rebuilt behind the patch: misses %d -> %d",
				lvl, missesAfterPatch, st.Misses)
		}
	}
	if cases < 216 {
		t.Fatalf("only %d randomized cases ran; the suite promises >= 216", cases)
	}
}

// TestPatchRefusals: the situations where patching would be unsound fall
// back (Patch returns false, the entry is dropped, the next query lazily
// rebuilds a correct index).
func TestPatchRefusals(t *testing.T) {
	ctx := context.Background()
	raster := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(64))
	rng := rand.New(rand.NewSource(3))

	t.Run("out_of_bounds_append", func(t *testing.T) {
		base := buildPatchScene(t, 500, 5)
		eng := geoblocks.NewEngine(raster, 5)
		req := core.Request{Points: base, Regions: regions(randomPolygon(rng)), Agg: core.Count}
		if _, err := eng.JoinContext(ctx, req); err != nil {
			t.Fatal(err)
		}
		tail := deepSlice(base, 0, 1)
		tail.X[0], tail.Y[0] = 5000, 5000 // outside the [0,1000]² grid
		grown, err := base.AppendCOW(tail)
		if err != nil {
			t.Fatal(err)
		}
		if eng.Store().Patch(ctx, base, grown) {
			t.Fatal("out-of-bounds append was patched; clamping corrupts interior folds")
		}
		if st := eng.Store().Stats(); st.PatchFallbacks != 1 {
			t.Fatalf("patchFallbacks = %d, want 1", st.PatchFallbacks)
		}
		// The fallback path still answers correctly via a lazy rebuild.
		req.Points = grown
		got, err := eng.JoinContext(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		want, err := raster.JoinContext(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		compareResults(t, "post-fallback", got, want, core.Count, 200)
	})

	t.Run("empty_base", func(t *testing.T) {
		empty := &data.PointSet{Name: "empty"}
		ix, err := geoblocks.BuildContext(ctx, empty, 5)
		if err != nil {
			t.Fatal(err)
		}
		tail := buildPatchScene(t, 10, 9)
		if _, err := ix.PatchAppend(ctx, tail); err == nil {
			t.Fatal("patching an empty base must refuse (bounds would change)")
		}
	})

	t.Run("outgrown_tail", func(t *testing.T) {
		full := buildPatchScene(t, 900, 13)
		base := deepSlice(full, 0, 300)
		ix, err := geoblocks.BuildContext(ctx, base, 5)
		if err != nil {
			t.Fatal(err)
		}
		grown, err := base.AppendCOW(deepSlice(full, 300, 900))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ix.PatchAppend(ctx, grown); err == nil {
			t.Fatal("tail larger than base must refuse so a rebuild re-balances the CSR")
		}
	})
}
