package geoblocks

import (
	"context"
	"math"

	"repro/internal/core"
	"repro/internal/fsum"
	"repro/internal/geom"
)

// Cell identifies one pyramid cell: (X, Y) on the 2^Level × 2^Level grid.
type Cell struct {
	Level int32
	X, Y  int32
}

// Plan is the classification of the pyramid against one query polygon.
//
// Invariant (the metamorphic suite and FuzzClassify prove it): the
// descendant sets of Interior cells and the Fringe cells are pairwise
// disjoint, Fringe cells all sit at the finest level, and together they
// cover every finest cell whose expanded box meets the polygon — so every
// indexed point inside the polygon is counted exactly once (from a stored
// aggregate or by refinement) and every point outside contributes nothing.
type Plan struct {
	// Interior cells lie entirely inside the polygon; their stored
	// aggregates are folded directly. Cells may come from any level.
	Interior []Cell
	// Fringe cells (finest level only) are crossed by the polygon
	// boundary; their points take the exact point-in-polygon test.
	Fringe []Cell
	// Pruned counts subtrees discarded as entirely outside.
	Pruned int
}

// classifyPollStride is how many visited cells the classifier processes
// between context polls.
const classifyPollStride = 256

type segment struct{ a, b geom.Point }

// classifier carries one classification walk.
type classifier struct {
	ix      *Index
	pg      geom.Polygon
	pgBox   geom.BBox
	visited int
	plan    Plan
}

// Classify partitions the pyramid against pg. The walk descends from the
// root cell, carrying only the polygon edges that intersect the current
// cell's (conservatively expanded) box: no surviving edges means the cell
// boundary is not crossed, so the whole cell is uniformly inside or
// outside and one center containment test decides which; surviving edges
// at the finest level make the cell fringe.
func (ix *Index) Classify(ctx context.Context, pg geom.Polygon) (Plan, error) {
	if ix.empty {
		return Plan{}, nil
	}
	cl := &classifier{ix: ix, pg: pg, pgBox: pg.BBox()}
	var edges []segment
	pg.Edges(func(a, b geom.Point) bool {
		edges = append(edges, segment{a, b})
		return true
	})
	if err := cl.walk(ctx, 0, 0, 0, edges); err != nil {
		return Plan{}, err
	}
	return cl.plan, nil
}

func (cl *classifier) walk(ctx context.Context, level, cx, cy int, edges []segment) error {
	cl.visited++
	if cl.visited%classifyPollStride == 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
	}
	box := cl.ix.cellBox(level, cx, cy)
	ebox := box.Expand(cl.ix.eps)
	if !ebox.Intersects(cl.pgBox) {
		cl.plan.Pruned++
		return nil
	}
	// Keep the edges that intersect the expanded box (Liang-Barsky keeps
	// touching and fully-interior segments — conservative on ties).
	var sub []segment
	for _, e := range edges {
		if _, _, ok := geom.ClipSegmentToBBox(e.a, e.b, ebox); ok {
			sub = append(sub, e)
		}
	}
	if len(sub) == 0 {
		// The polygon boundary avoids the expanded box entirely, so
		// containment is uniform across it; the center decides.
		if cl.pg.Contains(box.Center()) {
			cl.plan.Interior = append(cl.plan.Interior,
				Cell{Level: int32(level), X: int32(cx), Y: int32(cy)})
		} else {
			cl.plan.Pruned++
		}
		return nil
	}
	if level == cl.ix.maxLevel {
		cl.plan.Fringe = append(cl.plan.Fringe,
			Cell{Level: int32(level), X: int32(cx), Y: int32(cy)})
		return nil
	}
	for dy := 0; dy < 2; dy++ {
		for dx := 0; dx < 2; dx++ {
			if err := cl.walk(ctx, level+1, 2*cx+dx, 2*cy+dy, sub); err != nil {
				return err
			}
		}
	}
	return nil
}

// refinePollStride is how many fringe cells the refinement processes
// between context polls.
const refinePollStride = 64

// RegionStat folds a plan into one region's aggregate state: interior
// cells from stored aggregates, fringe cells by the exact point-in-polygon
// test the accurate join uses for boundary fragments. ap selects the
// attribute pyramid (nil for COUNT). The sum is compensated across cells
// and refined points alike.
func (ix *Index) RegionStat(ctx context.Context, pg geom.Polygon, pl Plan, ap *attrPyr) (core.RegionStat, error) {
	var cnt int64
	var ks fsum.Kahan
	mn, mx := math.Inf(1), math.Inf(-1)

	for _, c := range pl.Interior {
		side := int(1) << c.Level
		i := int(c.Y)*side + int(c.X)
		cc := ix.counts[c.Level][i]
		if cc == 0 {
			continue
		}
		cnt += cc
		if ap != nil {
			ks.Add(ap.sums[c.Level][i])
			if ap.mins[c.Level][i] < mn {
				mn = ap.mins[c.Level][i]
			}
			if ap.maxs[c.Level][i] > mx {
				mx = ap.maxs[c.Level][i]
			}
		}
	}

	side := int(1) << ix.maxLevel
	for fi, c := range pl.Fringe {
		if fi%refinePollStride == 0 {
			if err := ctx.Err(); err != nil {
				return core.RegionStat{}, err
			}
		}
		i := int(c.Y)*side + int(c.X)
		refine(ix, pg, ix.order[ix.start[i]:ix.start[i+1]], ap, &cnt, &ks, &mn, &mx)
		if ix.tailStart != nil {
			// A patched index keeps appended points in a separate tail CSR;
			// base-then-tail enumeration is increasing id order, matching a
			// rebuilt index bit for bit.
			refine(ix, pg, ix.tailOrder[ix.tailStart[i]:ix.tailStart[i+1]], ap, &cnt, &ks, &mn, &mx)
		}
	}

	if cnt == 0 {
		return core.RegionStat{}, nil
	}
	st := core.RegionStat{Count: cnt}
	if ap != nil {
		st.Sum = ks.Sum()
		st.Min, st.Max = mn, mx
	}
	return st, nil
}

// refine runs the exact point-in-polygon test over one fringe cell's
// candidate id list, folding survivors into the caller's aggregate state.
func refine(ix *Index, pg geom.Polygon, ids []int32, ap *attrPyr, cnt *int64, ks *fsum.Kahan, mn, mx *float64) {
	for _, id := range ids {
		if !pg.Contains(geom.Point{X: ix.ps.X[id], Y: ix.ps.Y[id]}) {
			continue
		}
		*cnt++
		if ap != nil {
			v := ap.col[id]
			ks.Add(v)
			if v < *mn {
				*mn = v
			}
			if v > *mx {
				*mx = v
			}
		}
	}
}

// FringePoints returns the number of candidate points the plan's fringe
// cells hold — the refinement workload.
func (ix *Index) FringePoints(pl Plan) int {
	if ix.empty {
		return 0
	}
	side := int(1) << ix.maxLevel
	n := 0
	for _, c := range pl.Fringe {
		i := int(c.Y)*side + int(c.X)
		n += int(ix.start[i+1] - ix.start[i])
		if ix.tailStart != nil {
			n += int(ix.tailStart[i+1] - ix.tailStart[i])
		}
	}
	return n
}
