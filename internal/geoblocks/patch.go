package geoblocks

import (
	"context"
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/fsum"
	"repro/internal/geom"
)

// PatchAppend returns a new Index over newPS — which must be ix's point set
// plus appended points (the framework's copy-on-write append) — without
// rebuilding the pyramid: it computes aggregate pyramids over only the
// appended tail and merges them into the base cell by cell. Counts add
// exactly and min/max update monotonically, so both stay bit-identical to a
// from-scratch rebuild; sums merge one compensated tail partial into one
// compensated base partial with a single add per cell, which carries the
// same ε bound the package documents for SUM against the raster join.
//
// The base CSR is shared untouched; appended points live in a separate tail
// CSR over ids >= baseLen. Because ids are assigned in index order, a cell's
// candidates — base ids then tail ids — enumerate in exactly the order a
// rebuild's counting sort would produce, so fringe refinement stays
// bit-identical to a rebuilt index for every aggregate.
//
// Patching refuses (returns an error, caller falls back to a lazy rebuild)
// when the base is empty, when any appended point falls outside the grid
// bounds (clamping it into an edge cell would let interior-cell folds count
// points the cell box does not contain), or when the accumulated tail
// outgrows the base (a rebuild re-balances the CSR instead of letting fringe
// refinement degrade).
func (ix *Index) PatchAppend(ctx context.Context, newPS *data.PointSet) (*Index, error) {
	if ix.empty {
		return nil, fmt.Errorf("geoblocks: patch: base index is empty")
	}
	if err := newPS.Validate(); err != nil {
		return nil, err
	}
	oldLen, n := ix.Len(), newPS.Len()
	if n <= oldLen {
		return nil, fmt.Errorf("geoblocks: patch: new set has %d points, base indexed %d", n, oldLen)
	}
	if n-ix.baseLen > ix.baseLen {
		return nil, fmt.Errorf("geoblocks: patch: tail (%d points) outgrew base (%d)",
			n-ix.baseLen, ix.baseLen)
	}
	for i := oldLen; i < n; i++ {
		if (i-oldLen)%buildPollStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if !ix.bounds.Contains(geom.Point{X: newPS.X[i], Y: newPS.Y[i]}) {
			return nil, fmt.Errorf("geoblocks: patch: appended point %d (%g, %g) outside grid bounds %v",
				i, newPS.X[i], newPS.Y[i], ix.bounds)
		}
	}

	out := &Index{
		ps:       newPS,
		bounds:   ix.bounds,
		maxLevel: ix.maxLevel,
		eps:      ix.eps,
		baseLen:  ix.baseLen,
		start:    ix.start,
		order:    ix.order,
		attrs:    make(map[string]*attrPyr, len(ix.attrs)),
		finW:     ix.finW,
		finH:     ix.finH,
	}
	side := 1 << ix.maxLevel
	cells := side * side

	// Tail CSR over every post-base point (previous tails included, so a
	// patched index can be patched again).
	tn := n - ix.baseLen
	out.tailStart = make([]int32, cells+1)
	tailCell := make([]int32, tn)
	for i := 0; i < tn; i++ {
		if i%buildPollStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		c := out.finestCell(newPS.X[ix.baseLen+i], newPS.Y[ix.baseLen+i])
		tailCell[i] = c
		out.tailStart[c+1]++
	}
	for c := 0; c < cells; c++ {
		out.tailStart[c+1] += out.tailStart[c]
	}
	out.tailOrder = make([]int32, tn)
	cursor := make([]int32, cells)
	for i := 0; i < tn; i++ {
		c := tailCell[i]
		out.tailOrder[out.tailStart[c]+cursor[c]] = int32(ix.baseLen + i)
		cursor[c]++
	}

	// Delta count pyramid over only the newly appended ids [oldLen, n),
	// reduced with the same machinery as a build, then merged exactly.
	dfin := make([]int64, cells)
	for i := oldLen; i < n; i++ {
		dfin[out.finestCell(newPS.X[i], newPS.Y[i])]++
	}
	dcounts := make([][]int64, ix.maxLevel+1)
	dcounts[ix.maxLevel] = dfin
	for l := ix.maxLevel - 1; l >= 0; l-- {
		dcounts[l] = reduceCounts(dcounts[l+1], 1<<(l+1))
	}
	out.counts = make([][]int64, ix.maxLevel+1)
	for l := range out.counts {
		merged := make([]int64, len(ix.counts[l]))
		copy(merged, ix.counts[l])
		for c, d := range dcounts[l] {
			merged[c] += d
		}
		out.counts[l] = merged
	}

	// Per-attribute delta pyramids. The finest-level delta groups the new
	// points per cell in id order (walking the tail CSR and skipping ids the
	// base pyramid already holds), so repeated patches accumulate in the
	// same deterministic order the appends arrived in.
	for name, ap := range ix.attrs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		col := newPS.Attr(name)
		if col == nil {
			return nil, fmt.Errorf("geoblocks: patch: new set lost attribute %q", name)
		}
		dsums := make([]float64, cells)
		dmins := make([]float64, cells)
		dmaxs := make([]float64, cells)
		for c := 0; c < cells; c++ {
			lo, hi := out.tailStart[c], out.tailStart[c+1]
			if lo == hi {
				continue
			}
			var ks fsum.Kahan
			mn, mx := math.Inf(1), math.Inf(-1)
			any := false
			for _, id := range out.tailOrder[lo:hi] {
				if int(id) < oldLen {
					continue
				}
				v := col[id]
				ks.Add(v)
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
				any = true
			}
			if !any {
				continue
			}
			dsums[c], dmins[c], dmaxs[c] = ks.Sum(), mn, mx
		}
		dS := make([][]float64, ix.maxLevel+1)
		dM := make([][]float64, ix.maxLevel+1)
		dX := make([][]float64, ix.maxLevel+1)
		dS[ix.maxLevel], dM[ix.maxLevel], dX[ix.maxLevel] = dsums, dmins, dmaxs
		for l := ix.maxLevel - 1; l >= 0; l-- {
			dS[l], dM[l], dX[l] = reduceAttr(dS[l+1], dM[l+1], dX[l+1], dcounts[l+1], 1<<(l+1))
		}

		nap := &attrPyr{
			col:  col,
			sums: make([][]float64, ix.maxLevel+1),
			mins: make([][]float64, ix.maxLevel+1),
			maxs: make([][]float64, ix.maxLevel+1),
		}
		for l := 0; l <= ix.maxLevel; l++ {
			ms := append([]float64(nil), ap.sums[l]...)
			mmn := append([]float64(nil), ap.mins[l]...)
			mmx := append([]float64(nil), ap.maxs[l]...)
			for c, d := range dcounts[l] {
				if d == 0 {
					continue
				}
				if ix.counts[l][c] == 0 {
					// The cell was empty before the append: the delta partial
					// is the whole cell, no merge rounding at all.
					ms[c], mmn[c], mmx[c] = dS[l][c], dM[l][c], dX[l][c]
					continue
				}
				//lint:ignore floataccum exactly one add per cell per patch: delta partial into base partial, the documented single-merge ε bound
				ms[c] += dS[l][c]
				if dM[l][c] < mmn[c] {
					mmn[c] = dM[l][c]
				}
				if dX[l][c] > mmx[c] {
					mmx[c] = dX[l][c]
				}
			}
			nap.sums[l], nap.mins[l], nap.maxs[l] = ms, mmn, mmx
		}
		out.attrs[name] = nap
	}
	return out, nil
}
