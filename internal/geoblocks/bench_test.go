package geoblocks_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/geoblocks"
	"repro/internal/geom"
)

// Benchmark polygons at three selectivities: "tiny" touches a handful of
// fringe cells, "city" covers a mid-sized district, "borough" spans
// nearly half the grid — the E19 sweep uses the same trio against the
// live server.
var benchShapes = []struct {
	name string
	pg   geom.Polygon
}{
	{"tiny", geom.NewPolygon(geom.RegularRing(geom.Point{X: 420, Y: 610}, 12, 8))},
	{"city", geom.NewPolygon(geom.StarRing(geom.Point{X: 500, Y: 450}, 180, 90, 9))},
	{"borough", geom.NewPolygon(geom.RegularRing(geom.Point{X: 480, Y: 520}, 430, 20))},
}

// BenchmarkGeoBlocksWarm measures steady-state hybrid queries: the index
// is built once outside the timer, every iteration classifies + refines.
func BenchmarkGeoBlocksWarm(b *testing.B) {
	ps := buildScene(b, 200_000, 81)
	eng := geoblocks.NewEngine(core.NewRasterJoin(core.WithMode(core.Accurate)), 8)
	ctx := context.Background()
	for _, sh := range benchShapes {
		b.Run(sh.name, func(b *testing.B) {
			req := core.Request{Points: ps, Regions: regions(sh.pg), Agg: core.Sum, Attr: "v"}
			if _, err := eng.JoinContext(ctx, req); err != nil { // build + warm
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.JoinContext(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGeoBlocksCold pays the full index build on every iteration —
// the cost a query sees right after a data-set generation bump.
func BenchmarkGeoBlocksCold(b *testing.B) {
	ps := buildScene(b, 200_000, 81)
	eng := geoblocks.NewEngine(core.NewRasterJoin(core.WithMode(core.Accurate)), 8)
	ctx := context.Background()
	for _, sh := range benchShapes {
		b.Run(sh.name, func(b *testing.B) {
			req := core.Request{Points: ps, Regions: regions(sh.pg), Agg: core.Sum, Attr: "v"}
			gen := uint64(1)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				gen++
				b.StartTimer()
				eng.Store().SetGeneration(gen) // drop the index: next query rebuilds
				if _, err := eng.JoinContext(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGeoBlocksVsRaster pins the comparison the hierarchy exists
// for: the same polygon query through the warm hybrid and through the
// full accurate raster join.
func BenchmarkGeoBlocksVsRaster(b *testing.B) {
	ps := buildScene(b, 200_000, 81)
	raster := core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(512))
	eng := geoblocks.NewEngine(raster, 8)
	ctx := context.Background()
	for _, sh := range benchShapes {
		req := core.Request{Points: ps, Regions: regions(sh.pg), Agg: core.Sum, Attr: "v"}
		b.Run("hybrid/"+sh.name, func(b *testing.B) {
			if _, err := eng.JoinContext(ctx, req); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.JoinContext(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("raster/"+sh.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := raster.JoinContext(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
