package urbane

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/core"
)

func TestDeltaView(t *testing.T) {
	f, _, nbhd := buildTestFramework(t)
	req := DeltaRequest{
		Dataset: "taxi", Layer: "nbhd", Agg: core.Count,
		A: core.TimeFilter{Start: 0, End: 4 * 3600},
		B: core.TimeFilter{Start: 4 * 3600, End: 8 * 3600},
	}
	view, err := f.Delta(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Values) != nbhd.Len() {
		t.Fatalf("values = %d", len(view.Values))
	}
	// Deltas must equal the two map views' difference.
	a, _ := f.MapView(MapViewRequest{Dataset: "taxi", Layer: "nbhd",
		Agg: core.Count, Time: &core.TimeFilter{Start: 0, End: 4 * 3600}})
	b, _ := f.MapView(MapViewRequest{Dataset: "taxi", Layer: "nbhd",
		Agg: core.Count, Time: &core.TimeFilter{Start: 4 * 3600, End: 8 * 3600}})
	for k := range view.Values {
		want := b.Values[k].Value - a.Values[k].Value
		if view.Values[k].Value != want {
			t.Fatalf("region %d delta %v, want %v", k, view.Values[k].Value, want)
		}
		if math.Abs(view.Values[k].Value) > view.MaxAbs {
			t.Fatalf("MaxAbs %v < |delta| %v", view.MaxAbs, view.Values[k].Value)
		}
	}
	// Errors.
	if _, err := f.Delta(DeltaRequest{Dataset: "taxi", Layer: "nbhd",
		A: req.A, B: req.A}); err == nil {
		t.Error("identical windows should fail")
	}
	if _, err := f.Delta(DeltaRequest{Dataset: "nope", Layer: "nbhd",
		A: req.A, B: req.B}); err == nil {
		t.Error("unknown data set should fail")
	}
	if _, err := f.Delta(DeltaRequest{Dataset: "taxi", Layer: "nope",
		A: req.A, B: req.B}); err == nil {
		t.Error("unknown layer should fail")
	}
	bad := req
	bad.Agg = core.Sum
	bad.Attr = "nope"
	if _, err := f.Delta(bad); err == nil {
		t.Error("bad attribute should fail")
	}
}

func TestDeltaEndpoint(t *testing.T) {
	s, _ := testServer(t)
	body := map[string]any{
		"dataset": "taxi", "layer": "nbhd", "agg": "count",
		"a": map[string]int64{"start": 0, "end": 4 * 3600},
		"b": map[string]int64{"start": 4 * 3600, "end": 8 * 3600},
	}
	rec := doJSON(t, s, "POST", "/api/delta", body)
	if rec.Code != 200 {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var view DeltaView
	if err := jsonUnmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Values) != 12 {
		t.Errorf("values = %d", len(view.Values))
	}
	body["agg"] = "median"
	if rec := doJSON(t, s, "POST", "/api/delta", body); rec.Code != 400 {
		t.Errorf("bad agg status = %d", rec.Code)
	}
}

func jsonUnmarshal(b []byte, v any) error { return json.Unmarshal(b, v) }
