package urbane

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/data"
)

// appendBody builds a POST /api/append body of n points for the test
// framework's schema (x, y, t, fare), with timestamps starting at t0.
func appendBody(dataset string, n int, t0 int64) map[string]any {
	x := make([]float64, n)
	y := make([]float64, n)
	ts := make([]int64, n)
	fare := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = 100 + float64(i%17)*37
		y[i] = 200 + float64(i%13)*41
		ts[i] = t0 + int64(i)
		fare[i] = float64(i%40) + 0.25
	}
	return map[string]any{
		"dataset": dataset, "x": x, "y": y, "t": ts,
		"attrs": map[string]any{"fare": fare},
	}
}

func postAppend(t *testing.T, s *Server, body map[string]any) appendResponse {
	t.Helper()
	rec := doJSON(t, s, http.MethodPost, "/api/append", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("append status = %d: %s", rec.Code, rec.Body)
	}
	var resp appendResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestAppendEpochIsolation is the per-data-set invalidation regression:
// appending to taxi must evict taxi's cached responses (via its epoch) and
// leave 311's entries warm, with the ETag rolling for taxi tiles only.
func TestAppendEpochIsolation(t *testing.T) {
	s, f := testServer(t)
	taxiReq := map[string]any{"dataset": "taxi", "layer": "nbhd", "agg": "count"}
	c311Req := map[string]any{"dataset": "311", "layer": "nbhd", "agg": "count"}

	// Warm both data sets, and grab tile validators for both.
	for _, body := range []map[string]any{taxiReq, c311Req} {
		if rec := doJSON(t, s, http.MethodPost, "/api/mapview", body); rec.Code != 200 {
			t.Fatalf("warmup status = %d: %s", rec.Code, rec.Body)
		}
	}
	taxiTile := doJSON(t, s, http.MethodGet, "/api/tile/0/0/0.png?dataset=taxi", nil)
	c311Tile := doJSON(t, s, http.MethodGet, "/api/tile/0/0/0.png?dataset=311", nil)
	taxiETag, c311ETag := taxiTile.Header().Get("ETag"), c311Tile.Header().Get("ETag")

	epochBefore := f.Epoch("taxi")
	lenBefore, _ := f.PointSet("taxi")

	resp := postAppend(t, s, appendBody("taxi", 5, 9*3600))
	if resp.Appended != 5 || resp.Len != lenBefore.Len()+5 {
		t.Fatalf("append response = %+v", resp)
	}
	if resp.Epoch != epochBefore+1 || f.Epoch("taxi") != epochBefore+1 {
		t.Fatalf("epoch did not advance: %+v (framework %d)", resp, f.Epoch("taxi"))
	}
	if f.Epoch("311") != 1 {
		t.Fatalf("311 epoch moved to %d on a taxi append", f.Epoch("311"))
	}
	// The eager sweep reclaimed taxi's stale entries (mapview + tile at
	// least) and reported them.
	if resp.Swept < 2 {
		t.Fatalf("swept = %d, want >= 2 (mapview + tile)", resp.Swept)
	}

	// 311 stays warm: its next identical request is a cache hit.
	rec := doJSON(t, s, http.MethodPost, "/api/mapview", c311Req)
	if got := rec.Header().Get("X-Urbane-Cache"); got != "hit" {
		t.Fatalf("311 outcome after taxi append = %q, want hit", got)
	}
	// taxi recomputes: new epoch, new key, and the count reflects the tail.
	rec = doJSON(t, s, http.MethodPost, "/api/mapview", taxiReq)
	if got := rec.Header().Get("X-Urbane-Cache"); got != "miss" {
		t.Fatalf("taxi outcome after append = %q, want miss", got)
	}

	// taxi's tile validator rolled; 311's still revalidates to 304.
	req := httptest.NewRequest(http.MethodGet, "/api/tile/0/0/0.png?dataset=taxi", nil)
	req.Header.Set("If-None-Match", taxiETag)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("taxi tile after append = %d, want 200 (ETag must roll)", w.Code)
	}
	if newTag := w.Header().Get("ETag"); newTag == taxiETag {
		t.Fatal("taxi tile ETag did not roll on append")
	}
	req = httptest.NewRequest(http.MethodGet, "/api/tile/0/0/0.png?dataset=311", nil)
	req.Header.Set("If-None-Match", c311ETag)
	w = httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusNotModified {
		t.Fatalf("311 tile after taxi append = %d, want 304 (entry stays warm)", w.Code)
	}

	// The stats endpoint surfaces the eviction counter.
	var st statsResponse
	rec = doJSON(t, s, http.MethodGet, "/api/stats", nil)
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Incremental.EpochEvictions != uint64(resp.Swept) {
		t.Errorf("stats epochEvictions = %d, want %d", st.Incremental.EpochEvictions, resp.Swept)
	}
}

// TestAppendSlabMigration is the warm-slide story end to end: with the
// slab fold enabled, an append dirties only the slab its timestamps land
// in; re-asking a multi-slab window recomputes that one slab and folds the
// rest from migrated partials.
func TestAppendSlabMigration(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	f.EnableIncremental(3600, 0, 0)
	s := NewServer(f, WithTimeSnap(3600))
	// Cache the tail half of the day — slabs 4..7 — because appends must be
	// time-ordered, so the dirty slab has to sit at the end of the range.
	body := map[string]any{
		"dataset": "taxi", "layer": "nbhd", "agg": "count",
		"time": map[string]int64{"start": 4 * 3600, "end": 8 * 3600},
	}
	if rec := doJSON(t, s, http.MethodPost, "/api/mapview", body); rec.Code != 200 {
		t.Fatalf("warmup status = %d: %s", rec.Code, rec.Body)
	}
	sj := f.Incremental()
	if got := sj.SlabsRecomputed(); got != 4 {
		t.Fatalf("warmup recomputed %d slabs, want 4", got)
	}

	// Append at the set's last timestamp (inside slab 7 for this seed);
	// only the slabs an appended timestamp lands in may drop, and only if
	// they were cached — a dirty slab past the window was never cached, so
	// it neither drops nor recomputes.
	taxi, _ := f.PointSet("taxi")
	t0 := taxi.T[taxi.Len()-1]
	resp := postAppend(t, s, appendBody("taxi", 3, t0))
	wantDirty := map[int64]bool{}
	for i := int64(0); i < 3; i++ {
		wantDirty[(t0+i)/3600] = true
	}
	dirtyCached := 0
	for slab := range wantDirty {
		if slab >= 4 && slab < 8 {
			dirtyCached++
		}
	}
	if dirtyCached == 0 {
		t.Fatalf("seed drift: appended slab(s) %v missed the cached window", wantDirty)
	}
	if resp.SlabsDropped != dirtyCached || resp.SlabsMigrated != 4-dirtyCached {
		t.Fatalf("append rekey = %+v, want %d dropped / %d migrated",
			resp, dirtyCached, 4-dirtyCached)
	}

	// Same window again: only the dirty slab recomputes, the rest fold
	// from migrated partials.
	reused0, recomp0 := sj.SlabsReused(), sj.SlabsRecomputed()
	if rec := doJSON(t, s, http.MethodPost, "/api/mapview", body); rec.Code != 200 {
		t.Fatalf("post-append status = %d: %s", rec.Code, rec.Body)
	}
	if got := sj.SlabsRecomputed() - recomp0; got != uint64(dirtyCached) {
		t.Errorf("recomputed %d slabs after append, want %d", got, dirtyCached)
	}
	if got := sj.SlabsReused() - reused0; got != uint64(4-dirtyCached) {
		t.Errorf("reused %d slabs after append, want %d", got, 4-dirtyCached)
	}
}

// TestAppendValidation: the handler rejects malformed ingest loudly.
func TestAppendValidation(t *testing.T) {
	s, _ := testServer(t)
	post := func(body map[string]any) *httptest.ResponseRecorder {
		return doJSON(t, s, http.MethodPost, "/api/append", body)
	}
	if rec := post(appendBody("nosuch", 1, 9*3600)); rec.Code != http.StatusNotFound {
		t.Errorf("unknown data set status = %d, want 404", rec.Code)
	}
	missingT := appendBody("taxi", 1, 9*3600)
	delete(missingT, "t")
	if rec := post(missingT); rec.Code != http.StatusBadRequest {
		t.Errorf("missing time column status = %d, want 400", rec.Code)
	}
	missingAttr := appendBody("taxi", 1, 9*3600)
	missingAttr["attrs"] = map[string]any{}
	if rec := post(missingAttr); rec.Code != http.StatusBadRequest {
		t.Errorf("missing attribute status = %d, want 400", rec.Code)
	}
	unknownAttr := appendBody("taxi", 1, 9*3600)
	unknownAttr["attrs"] = map[string]any{"fare": []float64{1}, "tip": []float64{1}}
	if rec := post(unknownAttr); rec.Code != http.StatusBadRequest {
		t.Errorf("unknown attribute status = %d, want 400", rec.Code)
	}
	ragged := appendBody("taxi", 2, 9*3600)
	ragged["x"] = []float64{1}
	if rec := post(ragged); rec.Code != http.StatusBadRequest {
		t.Errorf("ragged columns status = %d, want 400", rec.Code)
	}
	if rec := doJSON(t, s, http.MethodGet, "/api/append", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d, want 405", rec.Code)
	}
	// Out-of-order timestamps corrupt the binary-searched time column.
	if rec := post(appendBody("taxi", 1, 3)); rec.Code != http.StatusBadRequest {
		t.Errorf("time-regressing append status = %d, want 400", rec.Code)
	}
}

// TestAppendResponsesChange: after an append the recomputed answer must
// reflect the new points — eviction without recomputation would be a
// staleness bug, not a perf feature.
func TestAppendResponsesChange(t *testing.T) {
	s, _ := testServer(t)
	body := map[string]any{"dataset": "taxi", "layer": "nbhd", "agg": "count"}
	first := doJSON(t, s, http.MethodPost, "/api/mapview", body)
	if first.Code != 200 {
		t.Fatalf("status = %d", first.Code)
	}
	postAppend(t, s, appendBody("taxi", 64, 9*3600))
	second := doJSON(t, s, http.MethodPost, "/api/mapview", body)
	if second.Code != 200 {
		t.Fatalf("status = %d", second.Code)
	}
	if bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("response unchanged after appending 64 points inside the layer")
	}
}

// TestFrameworkAppendCOWSnapshot: a reader holding the old snapshot keeps
// its length and answers while the framework serves the grown set.
func TestFrameworkAppendCOWSnapshot(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	old, _ := f.PointSet("taxi")
	oldLen := old.Len()
	tail := &data.PointSet{
		Name: "taxi",
		X:    []float64{500}, Y: []float64{500}, T: []int64{9 * 3600},
		Attrs: []data.Column{{Name: "fare", Values: []float64{1}}},
	}
	info, err := f.Append(context.Background(), "taxi", tail)
	if err != nil {
		t.Fatal(err)
	}
	if info.Appended != 1 || info.Len != oldLen+1 {
		t.Fatalf("info = %+v", info)
	}
	if old.Len() != oldLen {
		t.Fatalf("old snapshot grew: %d -> %d", oldLen, old.Len())
	}
	grown, _ := f.PointSet("taxi")
	if grown.Len() != oldLen+1 || grown.Stamp() == old.Stamp() {
		t.Fatalf("grown set len=%d stamp=%d (old stamp %d)", grown.Len(), grown.Stamp(), old.Stamp())
	}
	// Segment-backed sets refuse appends.
	if _, err := f.Append(context.Background(), "nosuch", tail); err == nil {
		t.Error("append to unknown set succeeded")
	}
}
