package urbane

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/fsum"
)

// MetricSpec is one axis of the neighborhood comparison: a spatial
// aggregation over one data set whose per-region values become a feature.
// The paper's architect scenario compares a candidate neighborhood against
// the rest of the city along several such metrics.
type MetricSpec struct {
	Name    string `json:"name"`
	Dataset string `json:"dataset"`
	Agg     core.Agg
	Attr    string
	Filters []core.Filter
	Time    *core.TimeFilter
}

// RegionScore is one region's similarity result: its distance to the target
// in normalized feature space (smaller = more similar) and its raw metric
// values.
type RegionScore struct {
	ID       int       `json:"id"`
	Name     string    `json:"name"`
	Distance float64   `json:"distance"`
	Values   []float64 `json:"values"`
}

// RankSimilar computes each metric over the layer, z-normalizes the
// per-region feature matrix, and ranks all regions by euclidean distance to
// the target region's feature vector (most similar first, target excluded).
func (f *Framework) RankSimilar(layer string, targetID int, metrics []MetricSpec) ([]RegionScore, error) {
	return f.RankSimilarContext(context.Background(), layer, targetID, metrics)
}

// RankSimilarContext is RankSimilar under the request context; each metric
// group's render is individually cancelable.
func (f *Framework) RankSimilarContext(ctx context.Context, layer string, targetID int, metrics []MetricSpec) ([]RegionScore, error) {
	if len(metrics) == 0 {
		return nil, fmt.Errorf("urbane: ranking needs at least one metric")
	}
	rs, ok := f.RegionSet(layer)
	if !ok {
		return nil, fmt.Errorf("urbane: unknown region set %q", layer)
	}
	targetIdx := -1
	for i, r := range rs.Regions {
		if r.ID == targetID {
			targetIdx = i
			break
		}
	}
	if targetIdx == -1 {
		return nil, fmt.Errorf("urbane: region id %d not in layer %q", targetID, layer)
	}

	n := rs.Len()
	features := make([][]float64, n)
	for i := range features {
		features[i] = make([]float64, len(metrics))
	}

	// Group metrics by data set so each group shares one multi-aggregate
	// render (one point pass, one polygon pass for all of a data set's
	// metrics). Cube-servable metrics take the cube instead.
	groups := make(map[string][]int)
	for m, spec := range metrics {
		ps, ok := f.PointSet(spec.Dataset)
		if !ok {
			return nil, fmt.Errorf("urbane: metric %q: unknown point set %q", spec.Name, spec.Dataset)
		}
		creq := core.Request{
			Points: ps, Regions: rs,
			Agg: spec.Agg, Attr: spec.Attr,
			Filters: spec.Filters, Time: spec.Time,
		}
		if err := creq.Validate(); err != nil {
			return nil, fmt.Errorf("urbane: metric %q: %w", spec.Name, err)
		}
		if f.cubeServable(creq) {
			res, err := f.ExecuteContext(ctx, creq)
			if err != nil {
				return nil, fmt.Errorf("urbane: metric %q: %w", spec.Name, err)
			}
			for k := 0; k < n; k++ {
				features[k][m] = res.Value(k, spec.Agg)
			}
			continue
		}
		groups[spec.Dataset] = append(groups[spec.Dataset], m)
	}
	for dataset, idxs := range groups {
		ps, _ := f.PointSet(dataset)
		specs := make([]core.AggSpec, len(idxs))
		for j, m := range idxs {
			specs[j] = core.AggSpec{
				Agg:     metrics[m].Agg,
				Attr:    metrics[m].Attr,
				Filters: metrics[m].Filters,
				Time:    metrics[m].Time,
			}
		}
		results, err := f.rasterJoiner().MultiJoinContext(ctx,
			core.Request{Points: ps, Regions: rs}, specs)
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("urbane: metrics over %q: %w", dataset, err)
		}
		for j, m := range idxs {
			for k := 0; k < n; k++ {
				features[k][m] = results[j].Value(k, metrics[m].Agg)
			}
		}
	}

	// Z-normalize each metric column so no single scale dominates. The
	// column sums are compensated: metric magnitudes span orders of
	// magnitude (counts vs averaged fares), which is where naive
	// mean/variance sums lose digits.
	for m := range metrics {
		var meanAcc fsum.Kahan
		for k := 0; k < n; k++ {
			meanAcc.Add(features[k][m])
		}
		mean := meanAcc.Sum() / float64(n)
		var varAcc fsum.Kahan
		for k := 0; k < n; k++ {
			d := features[k][m] - mean
			varAcc.Add(d * d)
		}
		std := math.Sqrt(varAcc.Sum() / float64(n))
		if std == 0 {
			std = 1
		}
		for k := 0; k < n; k++ {
			features[k][m] = (features[k][m] - mean) / std
		}
	}

	target := features[targetIdx]
	scores := make([]RegionScore, 0, n-1)
	for k := 0; k < n; k++ {
		if k == targetIdx {
			continue
		}
		var d2Acc fsum.Kahan
		for m := range metrics {
			d := features[k][m] - target[m]
			d2Acc.Add(d * d)
		}
		d2 := d2Acc.Sum()
		scores = append(scores, RegionScore{
			ID:       rs.Regions[k].ID,
			Name:     rs.Regions[k].Name,
			Distance: math.Sqrt(d2),
			Values:   append([]float64(nil), features[k]...),
		})
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].Distance < scores[j].Distance })
	return scores, nil
}
