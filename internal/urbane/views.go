package urbane

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/data"
)

// MapViewRequest drives the map view: one data set aggregated over one
// polygonal layer, under optional ad-hoc constraints — e.g. "taxi pickups
// in January 2009 per neighborhood" (the paper's Figure 1).
type MapViewRequest struct {
	Dataset string
	Layer   string
	Agg     core.Agg
	Attr    string
	Filters []core.Filter
	Time    *core.TimeFilter
}

// RegionValue is one choropleth entry.
type RegionValue struct {
	ID    int     `json:"id"`
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Choropleth is the map view's payload: one value per region plus the value
// range for the color scale.
type Choropleth struct {
	Layer     string        `json:"layer"`
	Values    []RegionValue `json:"values"`
	Min       float64       `json:"min"`
	Max       float64       `json:"max"`
	Algorithm string        `json:"algorithm"`
	Elapsed   time.Duration `json:"elapsedNs"`
}

// MapView evaluates the choropleth for the request.
func (f *Framework) MapView(req MapViewRequest) (*Choropleth, error) {
	return f.MapViewContext(context.Background(), req)
}

// MapViewContext is MapView under the request context.
func (f *Framework) MapViewContext(ctx context.Context, req MapViewRequest) (*Choropleth, error) {
	ps, ok := f.PointSet(req.Dataset)
	if !ok {
		return nil, fmt.Errorf("urbane: unknown point set %q", req.Dataset)
	}
	rs, ok := f.RegionSet(req.Layer)
	if !ok {
		return nil, fmt.Errorf("urbane: unknown region set %q", req.Layer)
	}
	creq := core.Request{
		Points: ps, Regions: rs,
		Agg: req.Agg, Attr: req.Attr,
		Filters: req.Filters, Time: req.Time,
	}
	if err := creq.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res, err := f.ExecuteContext(ctx, creq)
	if err != nil {
		return nil, err
	}
	ch := &Choropleth{
		Layer:     req.Layer,
		Values:    make([]RegionValue, len(res.Stats)),
		Min:       math.Inf(1),
		Max:       math.Inf(-1),
		Algorithm: res.Algorithm,
		Elapsed:   time.Since(start),
	}
	for k, r := range rs.Regions {
		v := res.Value(k, req.Agg)
		ch.Values[k] = RegionValue{ID: r.ID, Name: r.Name, Value: v}
		if v < ch.Min {
			ch.Min = v
		}
		if v > ch.Max {
			ch.Max = v
		}
	}
	if len(ch.Values) == 0 {
		ch.Min, ch.Max = 0, 0
	}
	return ch, nil
}

// ExplorationRequest drives the data exploration view: several data sets
// compared over the same layer and time axis, as per-region time series.
type ExplorationRequest struct {
	// Datasets to compare (all aggregated with Agg/Attr; data sets missing
	// the attribute are rejected).
	Datasets []string
	Layer    string
	Agg      core.Agg
	Attr     string
	// RegionIDs restricts the series to these regions (empty = all).
	RegionIDs []int
	// Start/End bound the time axis, split into Bins equal bins.
	Start, End int64
	Bins       int
	// Filters apply to every data set that has the filtered attributes;
	// filters naming absent attributes are rejected.
	Filters []core.Filter
}

// Series is one line in the exploration view.
type Series struct {
	Dataset  string    `json:"dataset"`
	RegionID int       `json:"regionId"`
	Region   string    `json:"region"`
	Values   []float64 `json:"values"`
}

// Exploration is the data exploration view payload.
type Exploration struct {
	BinStarts []int64       `json:"binStarts"`
	Series    []Series      `json:"series"`
	Elapsed   time.Duration `json:"elapsedNs"`
}

// Explore evaluates the exploration view: for each data set and each time
// bin, one spatial aggregation query over the layer; the per-region results
// are transposed into time series.
func (f *Framework) Explore(req ExplorationRequest) (*Exploration, error) {
	return f.ExploreContext(context.Background(), req)
}

// ExploreContext is Explore under the request context: cancellation is
// checked between per-bin queries, and the series fast path inherits the
// raster joiner's batch-granular cancellation.
func (f *Framework) ExploreContext(ctx context.Context, req ExplorationRequest) (*Exploration, error) {
	if req.Bins < 1 {
		return nil, fmt.Errorf("urbane: exploration needs at least 1 bin")
	}
	if req.End <= req.Start {
		return nil, fmt.Errorf("urbane: empty time range [%d,%d)", req.Start, req.End)
	}
	rs, ok := f.RegionSet(req.Layer)
	if !ok {
		return nil, fmt.Errorf("urbane: unknown region set %q", req.Layer)
	}
	regionIdx, err := resolveRegions(rs, req.RegionIDs)
	if err != nil {
		return nil, err
	}

	start := time.Now()
	width := (req.End - req.Start) / int64(req.Bins)
	if width < 1 {
		width = 1
	}
	out := &Exploration{BinStarts: make([]int64, req.Bins)}
	for b := 0; b < req.Bins; b++ {
		out.BinStarts[b] = req.Start + int64(b)*width
	}

	for _, name := range req.Datasets {
		ps, ok := f.PointSet(name)
		if !ok {
			return nil, fmt.Errorf("urbane: unknown point set %q", name)
		}
		// One series per selected region for this data set.
		base := len(out.Series)
		for _, k := range regionIdx {
			out.Series = append(out.Series, Series{
				Dataset:  name,
				RegionID: rs.Regions[k].ID,
				Region:   rs.Regions[k].Name,
				Values:   make([]float64, req.Bins),
			})
		}
		creq := core.Request{
			Points: ps, Regions: rs,
			Agg: req.Agg, Attr: req.Attr, Filters: req.Filters,
		}
		if err := creq.Validate(); err != nil {
			return nil, fmt.Errorf("urbane: data set %q: %w", name, err)
		}

		// Fast path: one raster series join rasterizes the polygons once
		// for all bins. Cubes (microsecond lookups) and unusual canvases
		// fall back to per-bin execution. The cube check uses the first
		// bin's shape, since bin alignment decides servability.
		probe := creq
		probe.Time = &core.TimeFilter{Start: out.BinStarts[0], End: out.BinStarts[0] + width}
		if !f.cubeServable(probe) && ps.T != nil {
			series, err := f.rasterJoiner().SeriesJoinContext(ctx, creq, req.Start, req.End, req.Bins)
			if err != nil && ctx.Err() != nil {
				return nil, ctx.Err()
			}
			if err == nil {
				for b := 0; b < req.Bins; b++ {
					for si, k := range regionIdx {
						out.Series[base+si].Values[b] = series.Value(b, k, req.Agg)
					}
				}
				continue
			}
			// Fall through to the per-bin path on any series failure.
		}
		for b := 0; b < req.Bins; b++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			end := req.Start + int64(b+1)*width
			if b == req.Bins-1 {
				end = req.End
			}
			binReq := creq
			binReq.Time = &core.TimeFilter{Start: out.BinStarts[b], End: end}
			res, err := f.ExecuteContext(ctx, binReq)
			if err != nil {
				return nil, err
			}
			for si, k := range regionIdx {
				out.Series[base+si].Values[b] = res.Value(k, req.Agg)
			}
		}
	}
	out.Elapsed = time.Since(start)
	return out, nil
}

// resolveRegions maps requested region IDs to positions in the region set
// (all positions when ids is empty).
func resolveRegions(rs *data.RegionSet, ids []int) ([]int, error) {
	if len(ids) == 0 {
		idx := make([]int, rs.Len())
		for i := range idx {
			idx[i] = i
		}
		return idx, nil
	}
	byID := make(map[int]int, rs.Len())
	for i, r := range rs.Regions {
		byID[r.ID] = i
	}
	idx := make([]int, 0, len(ids))
	for _, id := range ids {
		i, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("urbane: region id %d not in layer %q", id, rs.Name)
		}
		idx = append(idx, i)
	}
	return idx, nil
}
