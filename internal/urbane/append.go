package urbane

import (
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/data"
	"repro/internal/qcache"
)

// appendWire is the POST /api/append body: columnar arrays of new points
// for one data set. Attribute columns travel by name; the set's schema
// decides which are required.
type appendWire struct {
	Dataset string               `json:"dataset"`
	X       []float64            `json:"x"`
	Y       []float64            `json:"y"`
	T       []int64              `json:"t"`
	Attrs   map[string][]float64 `json:"attrs"`
}

// appendResponse reports how the catalog and the incremental structures
// moved: the new epoch keys all future cached responses for the data set,
// Swept counts the old-epoch cache entries reclaimed eagerly.
type appendResponse struct {
	Dataset          string `json:"dataset"`
	Appended         int    `json:"appended"`
	Len              int    `json:"len"`
	Epoch            uint64 `json:"epoch"`
	Swept            int    `json:"swept"`
	GeoBlocksPatched bool   `json:"geoBlocksPatched"`
	SlabsMigrated    int    `json:"slabsMigrated"`
	SlabsDropped     int    `json:"slabsDropped"`
}

// handleAppend ingests new points into a data set: POST /api/append.
// The append is copy-on-write (queries in flight keep their snapshot), the
// geoblocks pyramid is patched rather than rebuilt, clean slab partials
// migrate to the new snapshot, and only this data set's cached responses
// are invalidated — via its epoch, so other data sets' entries stay warm.
// Appends skip admission control: they are O(tail), far cheaper than the
// join computes admission exists to bound.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	var wreq appendWire
	if !decodePost(w, r, &wreq) {
		return
	}
	base, ok := s.f.PointSet(wreq.Dataset)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown point set %q", wreq.Dataset))
		return
	}
	tail, err := tailFor(base, wreq)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	info, err := s.f.Append(r.Context(), wreq.Dataset, tail)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	swept := 0
	if s.cache != nil && info.Appended > 0 {
		swept = s.cache.Sweep(epochSweepPred(wreq.Dataset, info.Epoch))
		s.epochEvictions.Add(uint64(swept))
	}
	writeJSON(w, http.StatusOK, appendResponse{
		Dataset:          wreq.Dataset,
		Appended:         info.Appended,
		Len:              info.Len,
		Epoch:            info.Epoch,
		Swept:            swept,
		GeoBlocksPatched: info.GeoBlocksPatched,
		SlabsMigrated:    info.SlabsMigrated,
		SlabsDropped:     info.SlabsDropped,
	})
}

// tailFor assembles the wire columns into a PointSet matching base's
// schema: same time-column presence, same attributes in base's storage
// order. Extra wire attributes are rejected so typos fail loudly.
func tailFor(base *data.PointSet, wreq appendWire) (*data.PointSet, error) {
	tail := &data.PointSet{Name: base.Name, X: wreq.X, Y: wreq.Y}
	if len(tail.X) == 0 {
		return nil, fmt.Errorf("append needs at least one point")
	}
	if base.T != nil {
		if len(wreq.T) == 0 {
			return nil, fmt.Errorf("data set %q has a time column; append body needs \"t\"", base.Name)
		}
		tail.T = wreq.T
	} else if len(wreq.T) != 0 {
		return nil, fmt.Errorf("data set %q has no time column; drop \"t\"", base.Name)
	}
	for _, c := range base.Attrs {
		vals, ok := wreq.Attrs[c.Name]
		if !ok {
			return nil, fmt.Errorf("append body is missing attribute %q", c.Name)
		}
		tail.Attrs = append(tail.Attrs, data.Column{Name: c.Name, Values: vals})
	}
	if len(wreq.Attrs) != len(base.Attrs) {
		for name := range wreq.Attrs {
			if base.Attr(name) == nil {
				return nil, fmt.Errorf("data set %q has no attribute %q", base.Name, name)
			}
		}
	}
	if err := tail.Validate(); err != nil {
		return nil, err
	}
	return tail, nil
}

// epochSweepPred selects the named data set's cache entries that are NOT
// keyed at the current epoch: the key carries the dataset's epoch prefix,
// but the exact current-epoch form — followed by a field separator or the
// end of the key, so epoch 3 can never match epoch 30 — is absent.
func epochSweepPred(dataset string, epoch uint64) func(key string) bool {
	prefix := qcache.EpochPrefix(dataset)
	current := prefix + strconv.FormatUint(epoch, 10)
	return func(key string) bool {
		if !strings.Contains(key, prefix) {
			return false
		}
		if i := strings.Index(key, current); i >= 0 {
			j := i + len(current)
			if j == len(key) || key[j] == '|' {
				return false
			}
		}
		return true
	}
}
