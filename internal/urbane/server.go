package urbane

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/fault"
	"repro/internal/qcache"
	"repro/internal/query"
	"repro/internal/segment"
	"repro/internal/shard"
	"repro/internal/tcache"
	"repro/internal/trace"
)

// Server exposes the framework over the JSON API the demo frontend speaks.
// The heavy read endpoints (/api/query, /api/mapview, /api/heatmap,
// /api/delta, /api/tile/, /api/render/choropleth.png) are served through a
// sharded query-result cache with request coalescing; see cache.go and
// internal/qcache.
type Server struct {
	f       *Framework
	mux     *http.ServeMux
	cache   *qcache.Cache     // nil = caching disabled
	snap    int64             // time-filter snap granularity, >= 1
	timeout time.Duration     // per-request query deadline; 0 = unbounded
	metrics *trace.Registry   // per-endpoint latency histograms and gauges
	admit   *admit.Controller // nil = admission control disabled
	faults  *fault.Registry   // nil = fault injection disarmed

	// epochEvictions counts cache entries reclaimed by per-data-set epoch
	// sweeps (appends), as opposed to whole-generation invalidations.
	epochEvictions atomic.Uint64
}

// NewServer wraps a framework. By default responses are cached in
// DefaultCacheBytes of memory; see WithCache, WithoutCache, WithTimeSnap,
// WithQueryTimeout.
func NewServer(f *Framework, opts ...ServerOption) *Server {
	s := &Server{
		f: f, mux: http.NewServeMux(),
		cache:   qcache.New(DefaultCacheBytes),
		snap:    1,
		metrics: trace.NewRegistry(),
	}
	for _, opt := range opts {
		opt(s)
	}
	s.mux.HandleFunc("/api/datasets", s.handleDatasets)
	s.mux.HandleFunc("/api/cachestats", s.handleCacheStats)
	s.mux.HandleFunc("/api/stats", s.handleStats)
	s.mux.HandleFunc("/api/query", s.handleQuery)
	s.mux.HandleFunc("/api/append", s.handleAppend)
	s.mux.HandleFunc("/api/mapview", s.handleMapView)
	s.mux.HandleFunc("/api/explore", s.handleExplore)
	s.mux.HandleFunc("/api/rank", s.handleRank)
	s.mux.HandleFunc("/api/heatmap", s.handleHeatmap)
	s.mux.HandleFunc("/api/regions", s.handleRegions)
	s.mux.HandleFunc("/api/flows", s.handleFlows)
	s.mux.HandleFunc("/api/delta", s.handleDelta)
	s.mux.HandleFunc("/api/polygon", s.handlePolygon)
	s.mux.HandleFunc("/api/render/choropleth.png", s.handleChoroplethPNG)
	s.mux.HandleFunc("/api/tile/", s.handleTile)
	s.mux.HandleFunc("/", s.handleIndex)
	return s
}

// ServeHTTP implements http.Handler. Every request runs under the server
// middleware: a context that carries the query deadline (WithQueryTimeout)
// and a fresh trace, a response writer that stamps the X-Urbane-Trace and
// X-Urbane-Elapsed-Ms headers the moment the status is written (so error
// paths carry them too), and the per-endpoint metrics the /api/stats
// endpoint reports.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	name := endpointName(r.URL.Path)
	ctx := r.Context()
	if s.timeout > 0 && strings.HasPrefix(r.URL.Path, "/api/") {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.timeout)
		defer cancel()
	}
	tr := trace.New(name)
	ctx = trace.NewContext(ctx, tr)
	if s.faults != nil {
		ctx = fault.NewContext(ctx, s.faults)
	}
	end := s.metrics.Endpoint(name).Begin()
	sw := &statusWriter{ResponseWriter: w, tr: tr}
	s.mux.ServeHTTP(sw, r.WithContext(ctx))
	end(sw.status, tr.Elapsed())
}

// endpointName collapses a request path to its metrics label. Tile requests
// share one label (their z/x/y would explode the registry's cardinality);
// everything outside /api is the index.
func endpointName(path string) string {
	switch {
	case strings.HasPrefix(path, "/api/tile/"):
		return "/api/tile/"
	case strings.HasPrefix(path, "/api/"):
		return path
	default:
		return "/"
	}
}

// statusWriter injects the trace and elapsed headers when the response
// status is committed — the only point that covers success and error paths
// alike — and records the status for outcome classification.
type statusWriter struct {
	http.ResponseWriter
	tr     *trace.Trace
	status int
	wrote  bool
}

func (sw *statusWriter) WriteHeader(status int) {
	if !sw.wrote {
		sw.wrote = true
		sw.status = status
		h := sw.Header()
		if h.Get(elapsedHeader) == "" {
			h.Set(elapsedHeader, strconv.FormatFloat(
				float64(sw.tr.Elapsed())/float64(time.Millisecond), 'f', 3, 64))
		}
		h.Set(traceHeader, sw.tr.Header())
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if !sw.wrote {
		sw.WriteHeader(http.StatusOK)
	}
	return sw.ResponseWriter.Write(b)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the unified error envelope: every failing endpoint answers
// {"error":{"status":...,"code":"...","message":"..."}}.
type errorBody struct {
	Status  int    `json:"status"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]errorBody{"error": {
		Status: status, Code: errorCode(status), Message: err.Error(),
	}})
}

// writeShed answers a request that admission refused: the standard error
// envelope as 503 overloaded plus a Retry-After hint sized from the
// controller's queue wait bound.
func (s *Server) writeShed(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After",
		strconv.Itoa(int(s.admit.RetryAfter()/time.Second)))
	writeError(w, http.StatusServiceUnavailable, err)
}

// endpointWeight is the admission cost of one compute at the endpoint.
// Image renders weigh 2 — a full raster join plus a PNG encode — so under
// pressure two tile renders occupy the slots four JSON aggregations would.
func endpointWeight(name string) int64 {
	switch name {
	case "/api/tile/", "/api/render/choropleth.png":
		return 2
	default:
		return 1
	}
}

// admitted wraps a compute function with admission control. It sits inside
// the cache layer's compute path, so cache hits, 304 revalidations, and
// coalesced waiters never touch the semaphore — only work that would
// actually occupy the join kernels is counted against -max-inflight.
func (s *Server) admitted(weight int64, compute func(context.Context) ([]byte, error)) func(context.Context) ([]byte, error) {
	if s.admit == nil {
		return compute
	}
	return func(ctx context.Context) ([]byte, error) {
		release, err := s.admit.Acquire(ctx, weight)
		if err != nil {
			return nil, err
		}
		defer release()
		return compute(ctx)
	}
}

// admitRequest performs admission for an uncached compute endpoint,
// writing the shed (503) or context-error (499/504) response itself when
// admission refuses. The release func must be called iff ok.
func (s *Server) admitRequest(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.admit == nil {
		return func() {}, true
	}
	release, err := s.admit.Acquire(r.Context(), endpointWeight(endpointName(r.URL.Path)))
	if err != nil {
		s.writeComputeError(w, err)
		return nil, false
	}
	return release, true
}

// errorCode names a status for machine consumption (clients branch on the
// code, not the prose).
func errorCode(status int) string {
	switch status {
	case http.StatusBadRequest:
		return "bad_request"
	case http.StatusNotFound:
		return "not_found"
	case http.StatusMethodNotAllowed:
		return "method_not_allowed"
	case trace.StatusClientClosedRequest:
		return "client_closed_request"
	case trace.StatusGatewayTimeout:
		return "query_timeout"
	case http.StatusServiceUnavailable:
		return "overloaded"
	case http.StatusInternalServerError:
		return "internal"
	default:
		return "error"
	}
}

// writeQueryError maps an execution error from an uncached endpoint to its
// status: deadline exhaustion is 504, a vanished client 499, the rest 400.
func writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, trace.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		writeError(w, trace.StatusClientClosedRequest, err)
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	points := s.f.PointSetNames()
	layers := s.f.RegionSetNames()
	sort.Strings(points)
	sort.Strings(layers)
	writeJSON(w, http.StatusOK, map[string][]string{"points": points, "layers": layers})
}

type queryRequest struct {
	Stmt string `json:"stmt"`
}

// queryResponse is the /api/query payload. Timing travels in the
// X-Urbane-Elapsed-Ms header, not the body, so cached responses stay
// byte-identical to fresh ones.
type queryResponse struct {
	Algorithm string        `json:"algorithm"`
	Reason    string        `json:"reason"`
	Rows      []RegionValue `json:"rows"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodePost(w, r, &req) {
		return
	}
	// Canonicalize the statement before keying and executing: parse, sort
	// the conjunctive filter set, snap the time window, and re-render. Any
	// two statements with the same meaning share one cache entry and one
	// compute.
	q, err := query.Parse(req.Stmt)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q.Filters = qcache.CanonFilters(q.Filters)
	q.Time = s.snapTime(q.Time)
	stmt := q.String()
	s.serveCached(w, r, queryKey(stmt, q.Points, s.f.Epoch(q.Points)), "application/json", func(ctx context.Context) ([]byte, error) {
		exec, err := s.f.QueryContext(ctx, stmt)
		if err != nil {
			return nil, err
		}
		rs := exec.Plan.Request.Regions
		rows := make([]RegionValue, len(exec.Result.Stats))
		for k, reg := range rs.Regions {
			rows[k] = RegionValue{ID: reg.ID, Name: reg.Name,
				Value: exec.Result.Value(k, exec.Plan.Request.Agg)}
		}
		return marshalBody(queryResponse{
			Algorithm: exec.Result.Algorithm,
			Reason:    exec.Plan.Reason,
			Rows:      rows,
		})
	})
}

// Wire DTOs: aggregates travel as strings, time filters as {start,end}.
type wireFilter struct {
	Attr string  `json:"attr"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

type wireTime struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
}

func parseAgg(s string) (core.Agg, error) {
	switch strings.ToUpper(s) {
	case "", "COUNT":
		return core.Count, nil
	case "SUM":
		return core.Sum, nil
	case "AVG":
		return core.Avg, nil
	case "MIN":
		return core.Min, nil
	case "MAX":
		return core.Max, nil
	default:
		return 0, fmt.Errorf("unknown aggregate %q", s)
	}
}

func toFilters(ws []wireFilter) []core.Filter {
	out := make([]core.Filter, len(ws))
	for i, f := range ws {
		out[i] = core.Filter{Attr: f.Attr, Min: f.Min, Max: f.Max}
	}
	return out
}

type mapViewWire struct {
	Dataset string       `json:"dataset"`
	Layer   string       `json:"layer"`
	Agg     string       `json:"agg"`
	Attr    string       `json:"attr"`
	Filters []wireFilter `json:"filters"`
	Time    *wireTime    `json:"time"`
}

func (s *Server) handleMapView(w http.ResponseWriter, r *http.Request) {
	var wreq mapViewWire
	if !decodePost(w, r, &wreq) {
		return
	}
	agg, err := parseAgg(wreq.Agg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req := MapViewRequest{
		Dataset: wreq.Dataset, Layer: wreq.Layer,
		Agg: agg, Attr: wreq.Attr, Filters: toFilters(wreq.Filters),
	}
	if wreq.Time != nil {
		req.Time = s.snapTime(&core.TimeFilter{Start: wreq.Time.Start, End: wreq.Time.End})
	}
	s.serveCached(w, r, mapViewKey(req, s.f.Epoch(req.Dataset)), "application/json", func(ctx context.Context) ([]byte, error) {
		ch, err := s.f.MapViewContext(ctx, req)
		if err != nil {
			return nil, err
		}
		body := *ch
		body.Elapsed = 0 // timing goes in the header; bodies are deterministic
		return marshalBody(&body)
	})
}

type exploreWire struct {
	Datasets  []string     `json:"datasets"`
	Layer     string       `json:"layer"`
	Agg       string       `json:"agg"`
	Attr      string       `json:"attr"`
	RegionIDs []int        `json:"regionIds"`
	Start     int64        `json:"start"`
	End       int64        `json:"end"`
	Bins      int          `json:"bins"`
	Filters   []wireFilter `json:"filters"`
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var wreq exploreWire
	if !decodePost(w, r, &wreq) {
		return
	}
	agg, err := parseAgg(wreq.Agg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	release, ok := s.admitRequest(w, r)
	if !ok {
		return
	}
	defer release()
	ex, err := s.f.ExploreContext(r.Context(), ExplorationRequest{
		Datasets: wreq.Datasets, Layer: wreq.Layer,
		Agg: agg, Attr: wreq.Attr,
		RegionIDs: wreq.RegionIDs,
		Start:     wreq.Start, End: wreq.End, Bins: wreq.Bins,
		Filters: toFilters(wreq.Filters),
	})
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ex)
}

type rankWire struct {
	Layer    string `json:"layer"`
	TargetID int    `json:"targetId"`
	Metrics  []struct {
		Name    string       `json:"name"`
		Dataset string       `json:"dataset"`
		Agg     string       `json:"agg"`
		Attr    string       `json:"attr"`
		Filters []wireFilter `json:"filters"`
		Time    *wireTime    `json:"time"`
	} `json:"metrics"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	var wreq rankWire
	if !decodePost(w, r, &wreq) {
		return
	}
	metrics := make([]MetricSpec, len(wreq.Metrics))
	for i, m := range wreq.Metrics {
		agg, err := parseAgg(m.Agg)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		metrics[i] = MetricSpec{
			Name: m.Name, Dataset: m.Dataset,
			Agg: agg, Attr: m.Attr, Filters: toFilters(m.Filters),
		}
		if m.Time != nil {
			metrics[i].Time = &core.TimeFilter{Start: m.Time.Start, End: m.Time.End}
		}
	}
	release, ok := s.admitRequest(w, r)
	if !ok {
		return
	}
	defer release()
	scores, err := s.f.RankSimilarContext(r.Context(), wreq.Layer, wreq.TargetID, metrics)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, scores)
}

type deltaWire struct {
	Dataset string       `json:"dataset"`
	Layer   string       `json:"layer"`
	Agg     string       `json:"agg"`
	Attr    string       `json:"attr"`
	Filters []wireFilter `json:"filters"`
	A       wireTime     `json:"a"`
	B       wireTime     `json:"b"`
}

func (s *Server) handleDelta(w http.ResponseWriter, r *http.Request) {
	var wreq deltaWire
	if !decodePost(w, r, &wreq) {
		return
	}
	agg, err := parseAgg(wreq.Agg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	req := DeltaRequest{
		Dataset: wreq.Dataset, Layer: wreq.Layer,
		Agg: agg, Attr: wreq.Attr, Filters: toFilters(wreq.Filters),
		A: *s.snapTime(&core.TimeFilter{Start: wreq.A.Start, End: wreq.A.End}),
		B: *s.snapTime(&core.TimeFilter{Start: wreq.B.Start, End: wreq.B.End}),
	}
	s.serveCached(w, r, deltaKey(req, s.f.Epoch(req.Dataset)), "application/json", func(ctx context.Context) ([]byte, error) {
		view, err := s.f.DeltaContext(ctx, req)
		if err != nil {
			return nil, err
		}
		body := *view
		body.Elapsed = 0
		return marshalBody(&body)
	})
}

type heatmapWire struct {
	Dataset string       `json:"dataset"`
	W       int          `json:"w"`
	H       int          `json:"h"`
	Weight  string       `json:"weight"`
	Filters []wireFilter `json:"filters"`
	Time    *wireTime    `json:"time"`
}

func (s *Server) handleHeatmap(w http.ResponseWriter, r *http.Request) {
	var wreq heatmapWire
	if !decodePost(w, r, &wreq) {
		return
	}
	req := HeatmapRequest{
		Dataset: wreq.Dataset, W: wreq.W, H: wreq.H,
		Weight: wreq.Weight, Filters: toFilters(wreq.Filters),
	}
	if wreq.Time != nil {
		req.Time = s.snapTime(&core.TimeFilter{Start: wreq.Time.Start, End: wreq.Time.End})
	}
	s.serveCached(w, r, heatmapKey(req, s.f.Epoch(req.Dataset)), "application/json", func(ctx context.Context) ([]byte, error) {
		hm, err := s.f.HeatmapContext(ctx, req)
		if err != nil {
			return nil, err
		}
		body := *hm
		body.Elapsed = 0
		return marshalBody(&body)
	})
}

type flowWire struct {
	Dataset string       `json:"dataset"`
	Layer   string       `json:"layer"`
	Filters []wireFilter `json:"filters"`
	Time    *wireTime    `json:"time"`
	Top     int          `json:"top"`
}

func (s *Server) handleFlows(w http.ResponseWriter, r *http.Request) {
	var wreq flowWire
	if !decodePost(w, r, &wreq) {
		return
	}
	req := FlowViewRequest{
		Dataset: wreq.Dataset, Layer: wreq.Layer,
		Filters: toFilters(wreq.Filters), Top: wreq.Top,
	}
	if wreq.Time != nil {
		req.Time = &core.TimeFilter{Start: wreq.Time.Start, End: wreq.Time.End}
	}
	release, ok := s.admitRequest(w, r)
	if !ok {
		return
	}
	defer release()
	view, err := s.f.FlowViewContext(r.Context(), req)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// handleRegions serves a layer's polygons as GeoJSON so frontends can draw
// the choropleth geometry: GET /api/regions?layer=neighborhoods.
func (s *Server) handleRegions(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	name := r.URL.Query().Get("layer")
	rs, ok := s.f.RegionSet(name)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown region set %q", name))
		return
	}
	w.Header().Set("Content-Type", "application/geo+json")
	if err := data.WriteGeoJSON(w, rs); err != nil {
		// Headers already sent; nothing more we can do but log-by-status.
		return
	}
}

// statsResponse is the /api/stats payload: per-endpoint latency histograms
// and outcome counters (ok / error / timeout / canceled), in-flight gauges,
// plus the device's live render-resource gauges — after an aborted query
// both should return to zero.
type statsResponse struct {
	UptimeSec      float64               `json:"uptimeSec"`
	QueryTimeoutMs float64               `json:"queryTimeoutMs"` // 0 = unbounded
	LiveCanvases   int64                 `json:"liveCanvases"`
	LiveTextures   int64                 `json:"liveTextures"`
	Admission      admit.Stats           `json:"admission"`
	Segments       segmentsStats         `json:"segments"`
	Incremental    incrementalStats      `json:"incremental"`
	Sharding       shardingStats         `json:"sharding"`
	Gauges         map[string]int64      `json:"gauges"`
	Endpoints      []trace.EndpointStats `json:"endpoints"`
}

// incrementalStats reports the incremental-maintenance machinery: slab-fold
// reuse counters, the slab partial cache, and per-data-set epoch sweeps.
type incrementalStats struct {
	Enabled         bool         `json:"enabled"`
	GranSec         int64        `json:"granSec"`
	MaxSlabs        int          `json:"maxSlabs"`
	SlabsReused     uint64       `json:"slabsReused"`
	SlabsRecomputed uint64       `json:"slabsRecomputed"`
	EpochEvictions  uint64       `json:"epochEvictions"`
	Cache           tcache.Stats `json:"cache"`
}

// segmentsStats reports segment-backed execution: which data sets run on
// attached block sources, the process-wide zone-map pruning counters, and
// the decoded-block cache totals aggregated across every attached store.
type segmentsStats struct {
	Sources       []string           `json:"sources"`
	BlocksScanned int64              `json:"blocksScanned"`
	BlocksPruned  int64              `json:"blocksPruned"`
	Cache         segment.CacheStats `json:"cache"`
}

// shardingStats reports scatter-gather execution: the shard count, cached
// per-dataset layouts, and each executor slot's liveness and gauges in
// shard order.
type shardingStats struct {
	Enabled  bool              `json:"enabled"`
	Shards   int               `json:"shards"`
	Layouts  int               `json:"layouts"`
	PerShard []shard.NodeStats `json:"perShard"`
}

// handleStats reports the server's request statistics: GET /api/stats.
// Like /api/cachestats it bypasses admission entirely — the overload
// observability endpoint must answer precisely when the server is shedding.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	dev := s.f.rasterJoiner().Device()
	adm := s.admit.Stats()
	seg := segmentsStats{Sources: s.f.PointSourceNames()}
	sort.Strings(seg.Sources)
	seg.BlocksScanned, seg.BlocksPruned = core.ScanStats()
	for _, name := range seg.Sources {
		if src, ok := s.f.PointSource(name); ok {
			if cs, ok := src.(interface{ CacheStats() segment.CacheStats }); ok {
				seg.Cache.Add(cs.CacheStats())
			}
		}
	}
	inc := incrementalStats{EpochEvictions: s.epochEvictions.Load()}
	if j := s.f.Incremental(); j != nil {
		inc.Enabled = true
		inc.GranSec = j.Gran()
		inc.MaxSlabs = j.MaxSlabs()
		inc.SlabsReused = j.SlabsReused()
		inc.SlabsRecomputed = j.SlabsRecomputed()
		inc.Cache = j.Cache().Stats()
	}
	var sh shardingStats
	if c := s.f.Sharding(); c != nil {
		sh = shardingStats{
			Enabled: true, Shards: c.NumShards(), Layouts: c.Layouts(),
			PerShard: c.Stats(),
		}
		for _, ns := range sh.PerShard {
			pfx := "shard." + strconv.Itoa(ns.Shard)
			s.metrics.SetGauge(pfx+".inflight", ns.Inflight)
			s.metrics.SetGauge(pfx+".scanned", ns.BlocksScanned)
			s.metrics.SetGauge(pfx+".merged", ns.Merged)
		}
	}
	// Mirror the admission snapshot into the trace registry's gauge map so
	// any consumer of the registry sees shed/queued/inflight without knowing
	// about the admit package.
	s.metrics.SetGauge("admit.inflight", adm.InFlight)
	s.metrics.SetGauge("admit.queued", adm.Queued)
	s.metrics.SetGauge("admit.shed", int64(adm.Shed))
	s.metrics.SetGauge("incremental.slabs_reused", int64(inc.SlabsReused))
	s.metrics.SetGauge("incremental.slabs_recomputed", int64(inc.SlabsRecomputed))
	s.metrics.SetGauge("incremental.epoch_evictions", int64(inc.EpochEvictions))
	writeJSON(w, http.StatusOK, statsResponse{
		UptimeSec:      s.metrics.Uptime().Seconds(),
		QueryTimeoutMs: float64(s.timeout) / float64(time.Millisecond),
		LiveCanvases:   dev.LiveCanvases(),
		LiveTextures:   dev.LiveTextures(),
		Admission:      adm,
		Segments:       seg,
		Incremental:    inc,
		Sharding:       sh,
		Gauges:         s.metrics.Gauges(),
		Endpoints:      s.metrics.Snapshot(),
	})
}

// decodePost decodes a JSON POST body into dst, writing the error response
// itself when the request is malformed. `server.decode` is a fault
// injection site: the chaos suite uses it to prove malformed-input and
// mid-decode failures keep producing well-formed error envelopes.
func decodePost(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use POST"))
		return false
	}
	if err := fault.Inject(r.Context(), "server.decode"); err != nil {
		writeQueryError(w, err)
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return false
	}
	return true
}
