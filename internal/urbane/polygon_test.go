package urbane

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"

	"repro/internal/geom"
)

func polygonBody(ring [][2]float64, agg, attr string) map[string]any {
	b := map[string]any{"dataset": "taxi", "ring": ring, "agg": agg}
	if attr != "" {
		b["attr"] = attr
	}
	return b
}

var testRing = [][2]float64{{200, 200}, {800, 250}, {750, 800}, {250, 750}}

// TestPolygonEndpoint: a valid ad-hoc polygon aggregation answers with
// the exact count/value a direct framework execution produces, through
// the geoblocks path when enabled.
func TestPolygonEndpoint(t *testing.T) {
	f, taxi, _ := buildTestFramework(t)
	f.EnableGeoBlocks(6)
	s := NewServer(f)

	rec := doJSON(t, s, http.MethodPost, "/api/polygon", polygonBody(testRing, "sum", "fare"))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var got polygonResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Agg != "SUM" { // the response echoes the canonical agg spelling
		t.Errorf("agg = %q", got.Agg)
	}
	if got.Algorithm == "" {
		t.Error("algorithm missing from response")
	}

	// Cross-check against a direct exact computation.
	ring := make(geom.Ring, len(testRing))
	for i, v := range testRing {
		ring[i] = geom.Point{X: v[0], Y: v[1]}
	}
	pg := geom.NewPolygon(ring)
	var wantCount int64
	var wantSum float64
	fares := taxi.Attr("fare")
	for i := 0; i < taxi.Len(); i++ {
		if pg.Contains(geom.Point{X: taxi.X[i], Y: taxi.Y[i]}) {
			wantCount++
			wantSum += fares[i]
		}
	}
	if got.Count != wantCount {
		t.Errorf("count = %d, want %d", got.Count, wantCount)
	}
	if math.Abs(got.Value-wantSum) > 1e-7*(1+math.Abs(wantSum)) {
		t.Errorf("value = %g, want %g", got.Value, wantSum)
	}
}

// TestPolygonEndpointCached: the second identical request is a cache hit
// and byte-identical; geoblocks enabled vs disabled changes the algorithm
// string but not count/value.
func TestPolygonEndpointCached(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	f.EnableGeoBlocks(6)
	s := NewServer(f, WithCache(1<<20))

	body := polygonBody(testRing, "count", "")
	a := doJSON(t, s, http.MethodPost, "/api/polygon", body)
	if a.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", a.Code, a.Body)
	}
	b := doJSON(t, s, http.MethodPost, "/api/polygon", body)
	if b.Code != http.StatusOK || !bytes.Equal(a.Body.Bytes(), b.Body.Bytes()) {
		t.Fatalf("cached response diverged: %s vs %s", a.Body, b.Body)
	}
	st := s.CacheStats()
	if st.Hits == 0 {
		t.Errorf("no cache hit recorded: %+v", st)
	}

	// A disabled-hierarchy server computes the same numbers via raster.
	f2, _, _ := buildTestFramework(t)
	s2 := NewServer(f2)
	c := doJSON(t, s2, http.MethodPost, "/api/polygon", body)
	if c.Code != http.StatusOK {
		t.Fatalf("raster-path status = %d: %s", c.Code, c.Body)
	}
	var viaGeo, viaRaster polygonResponse
	if err := json.Unmarshal(a.Body.Bytes(), &viaGeo); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(c.Body.Bytes(), &viaRaster); err != nil {
		t.Fatal(err)
	}
	if viaGeo.Count != viaRaster.Count {
		t.Errorf("geoblocks count %d != raster count %d", viaGeo.Count, viaRaster.Count)
	}
}

// TestPolygonEndpointFallbacks: filters and time windows are legal on the
// endpoint but route through the raster join, not the hierarchy.
func TestPolygonEndpointFallbacks(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	f.EnableGeoBlocks(6)
	s := NewServer(f)

	body := polygonBody(testRing, "count", "")
	body["filters"] = []map[string]any{{"attr": "fare", "min": 10, "max": 30}}
	rec := doJSON(t, s, http.MethodPost, "/api/polygon", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("filtered status = %d: %s", rec.Code, rec.Body)
	}
	var got polygonResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Algorithm == "" || got.Algorithm[:9] == "geoblocks" {
		t.Errorf("filtered request served by %q; must fall back to raster", got.Algorithm)
	}
}

// TestPolygonEndpointRejects: the 400 battery.
func TestPolygonEndpointRejects(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	f.EnableGeoBlocks(6)
	s := NewServer(f)

	cases := map[string]map[string]any{
		"unknown dataset": polygonBody(testRing, "count", ""),
		"two vertices":    polygonBody([][2]float64{{0, 0}, {1, 1}}, "count", ""),
		"zero area":       polygonBody([][2]float64{{0, 0}, {500, 500}, {250, 250}}, "count", ""),
		"bad agg":          polygonBody(testRing, "median", "fare"),
		"sum without attr": {"dataset": "taxi", "ring": testRing, "agg": "sum"},
	}
	cases["unknown dataset"]["dataset"] = "nope"
	for name, body := range cases {
		rec := doJSON(t, s, http.MethodPost, "/api/polygon", body)
		if rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400 (%s)", name, rec.Code, rec.Body)
		}
	}
	if rec := doJSON(t, s, http.MethodGet, "/api/polygon", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", rec.Code)
	}

	// Core invariant: none of those rejects poisoned anything — a valid
	// request still succeeds.
	if rec := doJSON(t, s, http.MethodPost, "/api/polygon", polygonBody(testRing, "avg", "fare")); rec.Code != http.StatusOK {
		t.Errorf("valid request after rejects: %d (%s)", rec.Code, rec.Body)
	}
}
