// Package urbane is the visual-analytics framework of the paper: a registry
// of spatio-temporal data sets and polygonal layers, the map view
// (choropleths over regions at any resolution), the data exploration view
// (per-region time series across multiple data sets), neighborhood
// ranking/similarity for the architect scenario, and an HTTP JSON API the
// demo frontend talks to.
//
// All views are driven by spatial aggregation queries executed through the
// query planner: canned queries hit pre-aggregation cubes, everything
// ad-hoc runs through Raster Join at interactive speeds.
package urbane

import (
	"context"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/data"
	"repro/internal/geoblocks"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/tcache"
)

// Framework is the Urbane backend. Create with New; safe for concurrent
// use.
type Framework struct {
	mu      sync.RWMutex
	points  map[string]*data.PointSet
	regions map[string]*data.RegionSet
	// sources maps data set names to columnar block sources (segment
	// stores): when present, ad-hoc execution for that set runs
	// block-at-a-time with zone-map pruning instead of scanning the in-RAM
	// arrays. See AttachSegments.
	sources map[string]data.PointSource
	planner *query.Planner
	// epochs counts writes per data set: Append and BuildCube advance only
	// the touched set's epoch. Response-cache keys embed the epoch, so a
	// write produces fresh keys for that data set alone and every other
	// set's entries stay warm.
	epochs map[string]uint64
	// version counts the catalog-wide mutations that can change response
	// bytes across data sets (engine toggles); the server's query-result
	// cache slaves its generation to it, so a bump invalidates every cached
	// response. Per-data-set writes advance an epoch instead — see epochs.
	version atomic.Uint64
}

// Version returns the catalog version. It increases only on engine toggles
// that reroute execution across data sets (EnableGeoBlocks,
// EnableIncremental — the served Algorithm/Reason strings and SUM grouping
// change), never on registrations or writes: adding a point set, layer, or
// segment source cannot change any already-cached response's bytes, and
// appends/cube builds advance the touched data set's Epoch instead.
func (f *Framework) Version() uint64 { return f.version.Load() }

// Epoch returns the per-data-set write epoch: 1 on registration, advanced
// by every Append and BuildCube against the set, 0 for unknown names.
func (f *Framework) Epoch(name string) uint64 {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.epochs[name]
}

// New returns a framework executing ad-hoc queries on the given raster
// joiner (nil uses a default accurate joiner at 1024px — exact results at
// map-view resolution).
func New(rj *core.RasterJoin) *Framework {
	if rj == nil {
		rj = core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(1024))
	}
	return &Framework{
		points:  make(map[string]*data.PointSet),
		regions: make(map[string]*data.RegionSet),
		sources: make(map[string]data.PointSource),
		epochs:  make(map[string]uint64),
		planner: query.NewPlanner(rj),
	}
}

// AddPointSet registers a point data set under its name.
func (f *Framework) AddPointSet(ps *data.PointSet) error {
	if err := ps.Validate(); err != nil {
		return err
	}
	if ps.Name == "" {
		return fmt.Errorf("urbane: point set needs a name")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.points[ps.Name]; dup {
		return fmt.Errorf("urbane: point set %q already registered", ps.Name)
	}
	f.points[ps.Name] = ps
	// Registration is non-invalidating: no cached response can mention a
	// data set that did not exist when it was computed, and duplicate names
	// are rejected, so nothing already cached can change. The set starts at
	// epoch 1; writes advance it.
	f.epochs[ps.Name] = 1
	return nil
}

// AddRegionSet registers a polygonal layer under its name.
func (f *Framework) AddRegionSet(rs *data.RegionSet) error {
	if rs.Name == "" {
		return fmt.Errorf("urbane: region set needs a name")
	}
	for _, r := range rs.Regions {
		if err := r.Poly.Validate(); err != nil {
			return fmt.Errorf("urbane: region %q: %w", r.Name, err)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.regions[rs.Name]; dup {
		return fmt.Errorf("urbane: region set %q already registered", rs.Name)
	}
	// Non-invalidating for the same reason as AddPointSet: a new layer
	// cannot appear in any already-cached response, and error responses are
	// never cached.
	f.regions[rs.Name] = rs
	return nil
}

// EnableGeoBlocks turns on the pre-aggregated spatial hierarchy: the
// planner routes unfiltered polygon aggregation through a geoblocks engine
// (interior cells answered from stored aggregates, boundary fringe refined
// exactly) instead of the full raster join. maxLevel <= 0 uses
// geoblocks.DefaultMaxLevel. Hierarchies build lazily on first query per
// data set and are invalidated with the catalog version, like qcache and
// the span cache. Enabling bumps the version so previously cached
// responses (which name their algorithm) are dropped.
func (f *Framework) EnableGeoBlocks(maxLevel int) *geoblocks.Engine {
	f.mu.Lock()
	eng := geoblocks.NewEngine(f.planner.Raster, maxLevel)
	f.planner.GeoBlocks = eng
	f.mu.Unlock()
	f.version.Add(1)
	return eng
}

// GeoBlocks returns the hierarchy engine, or nil when disabled.
func (f *Framework) GeoBlocks() *geoblocks.Engine {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.planner.GeoBlocks
}

// EnableIncremental turns on incremental temporal view maintenance: the
// planner answers slab-aligned time-windowed aggregation as a chronological
// fold of cached per-slab partials (gran is the slab width in seconds —
// the server passes its -time-snap bucket, so every snapped window is
// automatically slab-aligned). cacheBytes <= 0 and maxSlabs <= 0 use the
// tcache defaults. Enabling bumps the catalog version: windowed responses
// now carry a different routing Reason, so previously cached ones are
// dropped.
func (f *Framework) EnableIncremental(gran int64, cacheBytes int64, maxSlabs int) *tcache.Joiner {
	f.mu.Lock()
	j := tcache.New(f.planner.Raster, gran, cacheBytes, maxSlabs)
	f.planner.Slabs = j
	f.mu.Unlock()
	f.version.Add(1)
	return j
}

// Incremental returns the slab-fold joiner, or nil when disabled.
func (f *Framework) Incremental() *tcache.Joiner {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.planner.Slabs
}

// EnableSharding splits ad-hoc raster execution across n spatial shards
// behind a scatter-gather coordinator: the planner routes every request the
// coordinator can decompose bit-exactly through it, and everything else
// (polygons-first, cubes, geoblocks, slabs) is untouched. Unlike the other
// engine toggles this does NOT bump the catalog version: sharded answers
// are byte-identical to the local path — same stats, same Algorithm and
// Reason strings, same PNG bodies — so every cached response stays valid
// and ETags match across sharded and unsharded servers by construction.
func (f *Framework) EnableSharding(n int) *shard.Coordinator {
	f.mu.Lock()
	defer f.mu.Unlock()
	c := shard.New(f.planner.Raster, n)
	f.planner.Shards = c
	return c
}

// Sharding returns the scatter-gather coordinator, or nil when disabled.
func (f *Framework) Sharding() *shard.Coordinator {
	f.mu.RLock()
	defer f.mu.RUnlock()
	if c, ok := f.planner.Shards.(*shard.Coordinator); ok {
		return c
	}
	return nil
}

// AppendInfo summarizes one Append: how the catalog and the incremental
// structures moved.
type AppendInfo struct {
	// Appended is the number of points added; Len the set's new size.
	Appended int
	Len      int
	// Epoch is the data set's epoch after the append.
	Epoch uint64
	// GeoBlocksPatched reports whether the hierarchy was patched in place
	// (false when geoblocks is disabled, nothing was cached, or the patch
	// fell back to a lazy rebuild).
	GeoBlocksPatched bool
	// SlabsMigrated / SlabsDropped count slab partials rekeyed to the new
	// snapshot versus evicted because an appended timestamp dirtied them.
	SlabsMigrated int
	SlabsDropped  int
}

// Append grows the named data set with tail's points via a copy-on-write
// append: in-flight queries keep reading the old snapshot, new queries see
// the grown one. The incremental structures are maintained, not rebuilt —
// the geoblocks pyramid is patched with tail-only aggregates, and slab
// partials whose windows contain no appended timestamp migrate to the new
// snapshot while dirtied slabs are evicted. The set's epoch advances, so
// response-cache keys for this data set change while every other set's
// entries stay warm.
//
// tail must match the set's schema and — for sets with a time column —
// arrive in time order, no earlier than the set's last timestamp: the
// query scan binary-searches the time column, so an out-of-order append
// would silently corrupt every windowed query. Appends to segment-backed
// sets are rejected (the attached source would no longer agree with the
// set). An empty tail is a no-op that reports the current state.
func (f *Framework) Append(ctx context.Context, name string, tail *data.PointSet) (AppendInfo, error) {
	if err := tail.Validate(); err != nil {
		return AppendInfo{}, err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ps, ok := f.points[name]
	if !ok {
		return AppendInfo{}, fmt.Errorf("urbane: unknown point set %q", name)
	}
	if _, segmented := f.sources[name]; segmented {
		return AppendInfo{}, fmt.Errorf("urbane: point set %q is segment-backed; appends need an in-RAM set", name)
	}
	if tail.Len() == 0 {
		return AppendInfo{Len: ps.Len(), Epoch: f.epochs[name]}, nil
	}
	if ps.T != nil && tail.T != nil {
		last := int64(math.MinInt64)
		if n := ps.Len(); n > 0 {
			last = ps.T[n-1]
		}
		for i, tt := range tail.T {
			if tt < last {
				return AppendInfo{}, fmt.Errorf(
					"urbane: append to %q out of time order: tail[%d]=%d precedes %d (the scan binary-searches the time column)",
					name, i, tt, last)
			}
			last = tt
		}
	}
	grown, err := ps.AppendCOW(tail)
	if err != nil {
		return AppendInfo{}, err
	}
	oldStamp, newStamp := ps.Stamp(), grown.Stamp()
	info := AppendInfo{Appended: tail.Len(), Len: grown.Len()}
	if g := f.planner.GeoBlocks; g != nil {
		info.GeoBlocksPatched = g.Store().Patch(ctx, ps, grown)
	}
	if sj := f.planner.Slabs; sj != nil {
		// Only the slabs an appended timestamp lands in change; partials for
		// every other slab are byte-identical over the grown set and migrate.
		dirty := make(map[int64]bool)
		for _, t := range tail.T {
			dirty[tcache.SlabOf(t, sj.Gran())] = true
		}
		info.SlabsMigrated, info.SlabsDropped = sj.Cache().Rekey(oldStamp, newStamp, dirty)
	}
	f.points[name] = grown
	f.epochs[name]++
	info.Epoch = f.epochs[name]
	if c, ok := f.planner.Shards.(*shard.Coordinator); ok {
		// Keep the cuts fixed so appended points route to the shard that
		// already owns their x range; only block assignment is re-derived.
		c.Patch(name, grown.Source())
	}
	return info, nil
}

// BuildCube materializes a pre-aggregation cube for the named data set and
// layer and registers it with the planner, so canned queries short-circuit
// past the raster engine. It advances the data set's epoch (the cube
// changes how that set's canned queries answer), leaving every other data
// set's cached responses warm.
func (f *Framework) BuildCube(dataset, layer string, timeBin int64, attrs []string) (*cube.Cube, error) {
	ps, ok := f.PointSet(dataset)
	if !ok {
		return nil, fmt.Errorf("urbane: unknown point set %q", dataset)
	}
	rs, ok := f.RegionSet(layer)
	if !ok {
		return nil, fmt.Errorf("urbane: unknown region set %q", layer)
	}
	c, err := cube.Build(ps, cube.Config{Regions: rs, TimeBin: timeBin, Attrs: attrs})
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.planner.AddCube(c)
	// A new cube changes how this data set's canned queries execute (the
	// served Algorithm/Reason strings and SUM grouping differ), so cached
	// responses for this set must go — but only this set's: advance its
	// epoch instead of the catalog version.
	f.epochs[dataset]++
	f.mu.Unlock()
	return c, nil
}

// AttachSegments binds a columnar block source (typically a *segment.Store)
// to an already-registered data set: ad-hoc queries against the set then
// execute block-at-a-time through the source — zone-map pruned, decoded
// under the store's byte budget — while the in-RAM set keeps serving the
// engines that need random access (cubes, geoblocks, heatmaps). The source
// must agree with the set on length and schema. Attaching is
// non-invalidating: segment-backed execution is byte-identical to the
// in-RAM scan, so cached responses stay valid.
func (f *Framework) AttachSegments(dataset string, src data.PointSource) error {
	if src == nil {
		return fmt.Errorf("urbane: nil point source for %q", dataset)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ps, ok := f.points[dataset]
	if !ok {
		return fmt.Errorf("urbane: unknown point set %q", dataset)
	}
	if src.Len() != ps.Len() {
		return fmt.Errorf("urbane: segment source for %q holds %d points, set holds %d",
			dataset, src.Len(), ps.Len())
	}
	if got, want := src.AttrNames(), ps.AttrNames(); len(got) != len(want) {
		return fmt.Errorf("urbane: segment source for %q has %d attributes, set has %d",
			dataset, len(got), len(want))
	}
	// Non-invalidating: segment-backed execution is byte-identical to the
	// in-RAM scan (the block walk preserves point order and the engine is
	// unchanged), so cached responses stay correct.
	f.sources[dataset] = src
	return nil
}

// PointSource implements query.SourceCatalog: it resolves a data set name
// to its attached segment source, if any.
func (f *Framework) PointSource(name string) (data.PointSource, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	src, ok := f.sources[name]
	return src, ok
}

// PointSourceNames returns the data set names with attached segment sources
// (unordered).
func (f *Framework) PointSourceNames() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	names := make([]string, 0, len(f.sources))
	for n := range f.sources {
		names = append(names, n)
	}
	return names
}

// PointSet implements query.Catalog.
func (f *Framework) PointSet(name string) (*data.PointSet, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ps, ok := f.points[name]
	return ps, ok
}

// RegionSet implements query.Catalog.
func (f *Framework) RegionSet(name string) (*data.RegionSet, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	rs, ok := f.regions[name]
	return rs, ok
}

// PointSetNames returns the registered data set names (unordered).
func (f *Framework) PointSetNames() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	names := make([]string, 0, len(f.points))
	for n := range f.points {
		names = append(names, n)
	}
	return names
}

// RegionSetNames returns the registered layer names (unordered).
func (f *Framework) RegionSetNames() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	names := make([]string, 0, len(f.regions))
	for n := range f.regions {
		names = append(names, n)
	}
	return names
}

// Query parses, plans, and executes a SQL-like statement.
func (f *Framework) Query(stmt string) (*query.Execution, error) {
	return f.QueryContext(context.Background(), stmt)
}

// QueryContext parses, plans, and executes a SQL-like statement under the
// request context, tracing each stage.
func (f *Framework) QueryContext(ctx context.Context, stmt string) (*query.Execution, error) {
	f.mu.RLock()
	pl := f.planner
	f.mu.RUnlock()
	f.syncSpanCache()
	f.syncGeoBlocks()
	return query.RunContext(ctx, stmt, pl, f)
}

// Execute plans and runs an already-built request through the planner's
// routing (cube when servable, raster otherwise).
func (f *Framework) Execute(req core.Request) (*core.Result, error) {
	return f.ExecuteContext(context.Background(), req)
}

// ExecuteContext is Execute under the request context: raster execution is
// canceled mid-flight when ctx ends; cube lookups are fast enough that only
// an up-front check applies.
func (f *Framework) ExecuteContext(ctx context.Context, req core.Request) (*core.Result, error) {
	f.mu.RLock()
	pl := f.planner
	f.mu.RUnlock()
	f.syncSpanCache()
	f.syncGeoBlocks()
	if req.Source == nil && req.Points != nil {
		if src, ok := f.PointSource(req.Points.Name); ok {
			req.Source = src
		}
	}
	for _, c := range pl.Cubes {
		if c.CanServe(req) == nil {
			return core.JoinContext(ctx, c, req)
		}
	}
	if pl.GeoBlocks != nil && pl.Exact == nil && pl.GeoBlocks.CanServe(req) == nil {
		return pl.GeoBlocks.JoinContext(ctx, req)
	}
	if pl.Slabs != nil && pl.Exact == nil && pl.Slabs.CanServe(req) == nil {
		return pl.Slabs.JoinContext(ctx, req)
	}
	if pl.Shards != nil && pl.Exact == nil && pl.Shards.CanServe(req) == nil {
		return core.JoinContext(ctx, pl.Shards, req)
	}
	return pl.Raster.JoinContext(ctx, req)
}

// cubeServable reports whether any registered cube can serve the request.
func (f *Framework) cubeServable(req core.Request) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, c := range f.planner.Cubes {
		if c.CanServe(req) == nil {
			return true
		}
	}
	return false
}

// rasterJoiner returns the planner's raster engine.
func (f *Framework) rasterJoiner() *core.RasterJoin {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.planner.Raster
}

// syncSpanCache slaves the device's region span cache to the catalog
// version, mirroring the query-result cache's invalidation contract: any
// (re)registration drops every compiled span. The underlying check is one
// atomic load when nothing changed.
func (f *Framework) syncSpanCache() {
	f.rasterJoiner().Device().SpanCache().SetGeneration(f.Version())
}

// syncGeoBlocks slaves the hierarchy store to the catalog version, same
// contract as syncSpanCache: any (re)registration drops every built
// hierarchy. No-op while geoblocks is disabled.
func (f *Framework) syncGeoBlocks() {
	if g := f.GeoBlocks(); g != nil {
		g.Store().SetGeneration(f.Version())
	}
}
