// Package urbane is the visual-analytics framework of the paper: a registry
// of spatio-temporal data sets and polygonal layers, the map view
// (choropleths over regions at any resolution), the data exploration view
// (per-region time series across multiple data sets), neighborhood
// ranking/similarity for the architect scenario, and an HTTP JSON API the
// demo frontend talks to.
//
// All views are driven by spatial aggregation queries executed through the
// query planner: canned queries hit pre-aggregation cubes, everything
// ad-hoc runs through Raster Join at interactive speeds.
package urbane

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/cube"
	"repro/internal/data"
	"repro/internal/geoblocks"
	"repro/internal/query"
)

// Framework is the Urbane backend. Create with New; safe for concurrent
// use.
type Framework struct {
	mu      sync.RWMutex
	points  map[string]*data.PointSet
	regions map[string]*data.RegionSet
	// sources maps data set names to columnar block sources (segment
	// stores): when present, ad-hoc execution for that set runs
	// block-at-a-time with zone-map pruning instead of scanning the in-RAM
	// arrays. See AttachSegments.
	sources map[string]data.PointSource
	planner *query.Planner
	// version counts catalog mutations (data sets, layers, cubes); the
	// server's query-result cache slaves its generation to it so any
	// (re)load invalidates every cached response.
	version atomic.Uint64
}

// Version returns the catalog version: it increases whenever a point set,
// region set, or cube is registered, and never otherwise.
func (f *Framework) Version() uint64 { return f.version.Load() }

// New returns a framework executing ad-hoc queries on the given raster
// joiner (nil uses a default accurate joiner at 1024px — exact results at
// map-view resolution).
func New(rj *core.RasterJoin) *Framework {
	if rj == nil {
		rj = core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(1024))
	}
	return &Framework{
		points:  make(map[string]*data.PointSet),
		regions: make(map[string]*data.RegionSet),
		sources: make(map[string]data.PointSource),
		planner: query.NewPlanner(rj),
	}
}

// AddPointSet registers a point data set under its name.
func (f *Framework) AddPointSet(ps *data.PointSet) error {
	if err := ps.Validate(); err != nil {
		return err
	}
	if ps.Name == "" {
		return fmt.Errorf("urbane: point set needs a name")
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.points[ps.Name]; dup {
		return fmt.Errorf("urbane: point set %q already registered", ps.Name)
	}
	f.points[ps.Name] = ps
	f.version.Add(1)
	return nil
}

// AddRegionSet registers a polygonal layer under its name.
func (f *Framework) AddRegionSet(rs *data.RegionSet) error {
	if rs.Name == "" {
		return fmt.Errorf("urbane: region set needs a name")
	}
	for _, r := range rs.Regions {
		if err := r.Poly.Validate(); err != nil {
			return fmt.Errorf("urbane: region %q: %w", r.Name, err)
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.regions[rs.Name]; dup {
		return fmt.Errorf("urbane: region set %q already registered", rs.Name)
	}
	f.regions[rs.Name] = rs
	f.version.Add(1)
	return nil
}

// EnableGeoBlocks turns on the pre-aggregated spatial hierarchy: the
// planner routes unfiltered polygon aggregation through a geoblocks engine
// (interior cells answered from stored aggregates, boundary fringe refined
// exactly) instead of the full raster join. maxLevel <= 0 uses
// geoblocks.DefaultMaxLevel. Hierarchies build lazily on first query per
// data set and are invalidated with the catalog version, like qcache and
// the span cache. Enabling bumps the version so previously cached
// responses (which name their algorithm) are dropped.
func (f *Framework) EnableGeoBlocks(maxLevel int) *geoblocks.Engine {
	f.mu.Lock()
	eng := geoblocks.NewEngine(f.planner.Raster, maxLevel)
	f.planner.GeoBlocks = eng
	f.mu.Unlock()
	f.version.Add(1)
	return eng
}

// GeoBlocks returns the hierarchy engine, or nil when disabled.
func (f *Framework) GeoBlocks() *geoblocks.Engine {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.planner.GeoBlocks
}

// BuildCube materializes a pre-aggregation cube for the named data set and
// layer and registers it with the planner, so canned queries short-circuit
// past the raster engine.
func (f *Framework) BuildCube(dataset, layer string, timeBin int64, attrs []string) (*cube.Cube, error) {
	ps, ok := f.PointSet(dataset)
	if !ok {
		return nil, fmt.Errorf("urbane: unknown point set %q", dataset)
	}
	rs, ok := f.RegionSet(layer)
	if !ok {
		return nil, fmt.Errorf("urbane: unknown region set %q", layer)
	}
	c, err := cube.Build(ps, cube.Config{Regions: rs, TimeBin: timeBin, Attrs: attrs})
	if err != nil {
		return nil, err
	}
	f.mu.Lock()
	f.planner.AddCube(c)
	f.mu.Unlock()
	f.version.Add(1)
	return c, nil
}

// AttachSegments binds a columnar block source (typically a *segment.Store)
// to an already-registered data set: ad-hoc queries against the set then
// execute block-at-a-time through the source — zone-map pruned, decoded
// under the store's byte budget — while the in-RAM set keeps serving the
// engines that need random access (cubes, geoblocks, heatmaps). The source
// must agree with the set on length and schema; registration bumps the
// catalog version so cached responses are dropped.
func (f *Framework) AttachSegments(dataset string, src data.PointSource) error {
	if src == nil {
		return fmt.Errorf("urbane: nil point source for %q", dataset)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	ps, ok := f.points[dataset]
	if !ok {
		return fmt.Errorf("urbane: unknown point set %q", dataset)
	}
	if src.Len() != ps.Len() {
		return fmt.Errorf("urbane: segment source for %q holds %d points, set holds %d",
			dataset, src.Len(), ps.Len())
	}
	if got, want := src.AttrNames(), ps.AttrNames(); len(got) != len(want) {
		return fmt.Errorf("urbane: segment source for %q has %d attributes, set has %d",
			dataset, len(got), len(want))
	}
	f.sources[dataset] = src
	f.version.Add(1)
	return nil
}

// PointSource implements query.SourceCatalog: it resolves a data set name
// to its attached segment source, if any.
func (f *Framework) PointSource(name string) (data.PointSource, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	src, ok := f.sources[name]
	return src, ok
}

// PointSourceNames returns the data set names with attached segment sources
// (unordered).
func (f *Framework) PointSourceNames() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	names := make([]string, 0, len(f.sources))
	for n := range f.sources {
		names = append(names, n)
	}
	return names
}

// PointSet implements query.Catalog.
func (f *Framework) PointSet(name string) (*data.PointSet, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	ps, ok := f.points[name]
	return ps, ok
}

// RegionSet implements query.Catalog.
func (f *Framework) RegionSet(name string) (*data.RegionSet, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	rs, ok := f.regions[name]
	return rs, ok
}

// PointSetNames returns the registered data set names (unordered).
func (f *Framework) PointSetNames() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	names := make([]string, 0, len(f.points))
	for n := range f.points {
		names = append(names, n)
	}
	return names
}

// RegionSetNames returns the registered layer names (unordered).
func (f *Framework) RegionSetNames() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	names := make([]string, 0, len(f.regions))
	for n := range f.regions {
		names = append(names, n)
	}
	return names
}

// Query parses, plans, and executes a SQL-like statement.
func (f *Framework) Query(stmt string) (*query.Execution, error) {
	return f.QueryContext(context.Background(), stmt)
}

// QueryContext parses, plans, and executes a SQL-like statement under the
// request context, tracing each stage.
func (f *Framework) QueryContext(ctx context.Context, stmt string) (*query.Execution, error) {
	f.mu.RLock()
	pl := f.planner
	f.mu.RUnlock()
	f.syncSpanCache()
	f.syncGeoBlocks()
	return query.RunContext(ctx, stmt, pl, f)
}

// Execute plans and runs an already-built request through the planner's
// routing (cube when servable, raster otherwise).
func (f *Framework) Execute(req core.Request) (*core.Result, error) {
	return f.ExecuteContext(context.Background(), req)
}

// ExecuteContext is Execute under the request context: raster execution is
// canceled mid-flight when ctx ends; cube lookups are fast enough that only
// an up-front check applies.
func (f *Framework) ExecuteContext(ctx context.Context, req core.Request) (*core.Result, error) {
	f.mu.RLock()
	pl := f.planner
	f.mu.RUnlock()
	f.syncSpanCache()
	f.syncGeoBlocks()
	if req.Source == nil && req.Points != nil {
		if src, ok := f.PointSource(req.Points.Name); ok {
			req.Source = src
		}
	}
	for _, c := range pl.Cubes {
		if c.CanServe(req) == nil {
			return core.JoinContext(ctx, c, req)
		}
	}
	if pl.GeoBlocks != nil && pl.Exact == nil && pl.GeoBlocks.CanServe(req) == nil {
		return pl.GeoBlocks.JoinContext(ctx, req)
	}
	return pl.Raster.JoinContext(ctx, req)
}

// cubeServable reports whether any registered cube can serve the request.
func (f *Framework) cubeServable(req core.Request) bool {
	f.mu.RLock()
	defer f.mu.RUnlock()
	for _, c := range f.planner.Cubes {
		if c.CanServe(req) == nil {
			return true
		}
	}
	return false
}

// rasterJoiner returns the planner's raster engine.
func (f *Framework) rasterJoiner() *core.RasterJoin {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.planner.Raster
}

// syncSpanCache slaves the device's region span cache to the catalog
// version, mirroring the query-result cache's invalidation contract: any
// (re)registration drops every compiled span. The underlying check is one
// atomic load when nothing changed.
func (f *Framework) syncSpanCache() {
	f.rasterJoiner().Device().SpanCache().SetGeneration(f.Version())
}

// syncGeoBlocks slaves the hierarchy store to the catalog version, same
// contract as syncSpanCache: any (re)registration drops every built
// hierarchy. No-op while geoblocks is disabled.
func (f *Framework) syncGeoBlocks() {
	if g := f.GeoBlocks(); g != nil {
		g.Store().SetGeneration(f.Version())
	}
}
