package urbane

import (
	"bytes"
	"image/png"
	"net/http"
	"testing"

	"repro/internal/geom"
	"repro/internal/mercator"
)

func TestRenderChoropleth(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	data, err := f.RenderChoropleth(MapViewRequest{
		Dataset: "taxi", Layer: "nbhd", Agg: 0,
	}, 400)
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 400 {
		t.Errorf("width = %d", img.Bounds().Dx())
	}
	// Errors propagate.
	if _, err := f.RenderChoropleth(MapViewRequest{Dataset: "nope", Layer: "nbhd"}, 400); err == nil {
		t.Error("unknown data set should fail")
	}
}

func TestChoroplethPNGEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := doJSON(t, s, http.MethodGet,
		"/api/render/choropleth.png?dataset=taxi&layer=nbhd&agg=count&w=256", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/png" {
		t.Errorf("content type = %q", ct)
	}
	img, err := png.Decode(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 256 {
		t.Errorf("width = %d", img.Bounds().Dx())
	}
	// Errors.
	for _, url := range []string{
		"/api/render/choropleth.png?dataset=taxi&layer=nbhd&agg=median",
		"/api/render/choropleth.png?dataset=nope&layer=nbhd&agg=count",
		"/api/render/choropleth.png?dataset=taxi&layer=nbhd&agg=count&w=9",
	} {
		if rec := doJSON(t, s, http.MethodGet, url, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s status = %d", url, rec.Code)
		}
	}
	if rec := doJSON(t, s, http.MethodPost,
		"/api/render/choropleth.png?dataset=taxi&layer=nbhd", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", rec.Code)
	}
}

func TestTileEndpoint(t *testing.T) {
	// The tile endpoint needs mercator-positioned data; the unit-square
	// test framework still exercises the pipeline because the heatmap crop
	// simply renders empty tiles for non-overlapping extents.
	s, _ := testServer(t)
	rec := doJSON(t, s, http.MethodGet, "/api/tile/0/0/0.png?dataset=taxi", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	img, err := png.Decode(rec.Body)
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 256 || img.Bounds().Dy() != 256 {
		t.Errorf("tile dims = %v", img.Bounds())
	}
	// Bad addresses.
	for _, url := range []string{
		"/api/tile/zzz/0/0.png?dataset=taxi",
		"/api/tile/0/0.png?dataset=taxi",
		"/api/tile/0/0/0.png?dataset=nope",
	} {
		if rec := doJSON(t, s, http.MethodGet, url, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s status = %d", url, rec.Code)
		}
	}
}

func TestTileDensityCoversData(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	// The framework data lives in [0,1000]^2 mercator meters — find the
	// covering tile at a zoom where it fits and confirm points land in it.
	tile := mercator.TileAt(mercator.Unproject(geomPt(500, 500)), 14)
	hm, err := f.TileDensity("taxi", tile, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hm.Total == 0 {
		t.Error("covering tile should capture points")
	}
	// A far-away tile is empty.
	far := mercator.Tile{Z: 14, X: 0, Y: 0}
	hm, err = f.TileDensity("taxi", far, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hm.Total != 0 {
		t.Errorf("far tile total = %v", hm.Total)
	}
}

// geomPt is a tiny helper to build a geom.Point without importing geom at
// every call site in this file.
func geomPt(x, y float64) geom.Point { return geom.Point{X: x, Y: y} }
