package urbane

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
)

// addTrips registers a trip data set (with destination columns) on the
// framework.
func addTrips(t *testing.T, f *Framework, n int, seed int64) *data.PointSet {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ps := &data.PointSet{Name: "trips",
		X: make([]float64, n), Y: make([]float64, n), T: make([]int64, n)}
	dx := make([]float64, n)
	dy := make([]float64, n)
	fare := make([]float64, n)
	for i := 0; i < n; i++ {
		ps.X[i] = rng.Float64() * 1000
		ps.Y[i] = rng.Float64() * 1000
		// Destinations concentrate in one corner so the top flows are
		// predictable.
		dx[i] = 800 + rng.Float64()*200
		dy[i] = 800 + rng.Float64()*200
		ps.T[i] = int64(i)
		fare[i] = rng.Float64() * 40
	}
	ps.Attrs = []data.Column{
		{Name: "fare", Values: fare},
		{Name: data.DropoffXAttr, Values: dx},
		{Name: data.DropoffYAttr, Values: dy},
	}
	if err := f.AddPointSet(ps); err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestFlowView(t *testing.T) {
	f, _, nbhd := buildTestFramework(t)
	trips := addTrips(t, f, 5000, 55)
	view, err := f.FlowView(FlowViewRequest{Dataset: "trips", Layer: "nbhd", Top: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(view.Edges) != 5 {
		t.Fatalf("edges = %d, want 5", len(view.Edges))
	}
	for i := 1; i < len(view.Edges); i++ {
		if view.Edges[i-1].Count < view.Edges[i].Count {
			t.Fatal("edges not sorted by count")
		}
	}
	// Destinations cluster in the NE corner: every top edge's destination
	// must be a region intersecting that corner.
	corner := geom.BBox{MinX: 800, MinY: 800, MaxX: 1000, MaxY: 1000}
	for _, e := range view.Edges {
		reg := nbhd.ByID(e.ToID)
		if reg == nil {
			t.Fatalf("edge names unknown region %d", e.ToID)
		}
		if !reg.Poly.BBox().Intersects(corner) {
			t.Errorf("top flow destination %q misses the NE corner", e.To)
		}
	}
	// Totals: nearly all trips resolve on a partition.
	if view.Total < int64(trips.Len())*9/10 {
		t.Errorf("total = %d of %d", view.Total, trips.Len())
	}
	// Filters shrink the flow.
	filtered, err := f.FlowView(FlowViewRequest{Dataset: "trips", Layer: "nbhd",
		Filters: []core.Filter{{Attr: "fare", Min: 0, Max: 10}}})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Total >= view.Total || filtered.Total == 0 {
		t.Errorf("filtered total = %d vs %d", filtered.Total, view.Total)
	}
}

func TestFlowViewErrors(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	addTrips(t, f, 100, 56)
	if _, err := f.FlowView(FlowViewRequest{Dataset: "nope", Layer: "nbhd"}); err == nil {
		t.Error("unknown data set should fail")
	}
	if _, err := f.FlowView(FlowViewRequest{Dataset: "trips", Layer: "nope"}); err == nil {
		t.Error("unknown layer should fail")
	}
	// taxi in the test framework has no destination columns.
	if _, err := f.FlowView(FlowViewRequest{Dataset: "taxi", Layer: "nbhd"}); err == nil {
		t.Error("data set without destinations should fail")
	}
}

func TestFlowsEndpoint(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	addTrips(t, f, 1000, 57)
	s := NewServer(f)
	rec := doJSON(t, s, http.MethodPost, "/api/flows",
		map[string]any{"dataset": "trips", "layer": "nbhd", "top": 3})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var view FlowView
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	if len(view.Edges) != 3 || view.Total == 0 {
		t.Errorf("view = %+v", view)
	}
	rec = doJSON(t, s, http.MethodPost, "/api/flows",
		map[string]any{"dataset": "taxi", "layer": "nbhd"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("destination-less data set status = %d", rec.Code)
	}
}
