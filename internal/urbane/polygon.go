package urbane

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
	"repro/internal/qcache"
)

// maxPolygonVertices bounds user-drawn rings; beyond this the request is a
// 400, not a denial-of-service on the classifier.
const maxPolygonVertices = 10_000

// polygonWire is the POST /api/polygon request body: aggregate a data set
// over one user-drawn polygon (a ring of [x, y] Web-Mercator meters; the
// closing edge is implicit). Filters and a time window are accepted — they
// route the query down the exact raster path instead of the hierarchy.
type polygonWire struct {
	Dataset string       `json:"dataset"`
	Ring    [][2]float64 `json:"ring"`
	Agg     string       `json:"agg"`
	Attr    string       `json:"attr"`
	Filters []wireFilter `json:"filters"`
	Time    *wireTime    `json:"time"`
}

// polygonResponse is the /api/polygon payload: the aggregate over the one
// ad-hoc region.
type polygonResponse struct {
	Algorithm string  `json:"algorithm"`
	Agg       string  `json:"agg"`
	Count     int64   `json:"count"`
	Value     float64 `json:"value"`
}

// parseRing validates and converts the wire ring: at least three vertices,
// all coordinates finite, nonzero area. -0 coordinates normalize to 0 so
// equal geometry shares one cache entry.
func parseRing(ws [][2]float64) (geom.Ring, error) {
	if len(ws) < 3 {
		return nil, fmt.Errorf("ring needs at least 3 vertices, got %d", len(ws))
	}
	if len(ws) > maxPolygonVertices {
		return nil, fmt.Errorf("ring has %d vertices, limit is %d", len(ws), maxPolygonVertices)
	}
	ring := make(geom.Ring, len(ws))
	for i, v := range ws {
		x, y := v[0], v[1]
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return nil, fmt.Errorf("ring vertex %d is not finite", i)
		}
		if x == 0 {
			x = 0 // normalizes -0
		}
		if y == 0 {
			y = 0
		}
		ring[i] = geom.Point{X: x, Y: y}
	}
	return ring, nil
}

// polygonKey canonicalizes the request into a cache key. Ring coordinates
// are rendered as exact hex floats so distinct geometry never collides.
func polygonKey(req polygonWire, ring geom.Ring, agg core.Agg, filters []core.Filter, t *core.TimeFilter) string {
	var sb strings.Builder
	for _, p := range ring {
		sb.WriteString(strconv.FormatFloat(p.X, 'x', -1, 64))
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatFloat(p.Y, 'x', -1, 64))
		sb.WriteByte(';')
	}
	return qcache.NewSig("polygon").
		Str("dataset", req.Dataset).
		Str("agg", agg.String()).Str("attr", req.Attr).
		Str("ring", sb.String()).
		Filters("f", filters).TimeRange("t", t).Key()
}

// handlePolygon serves POST /api/polygon: an arbitrary user-drawn polygon
// aggregated over one data set. With geoblocks enabled the framework
// answers from the hierarchy (interior cells + fringe refinement);
// otherwise — and for filtered or time-windowed requests — the accurate
// raster join runs in full. Responses are cached under the canonical
// geometry key like every other query endpoint.
func (s *Server) handlePolygon(w http.ResponseWriter, r *http.Request) {
	var wreq polygonWire
	if !decodePost(w, r, &wreq) {
		return
	}
	agg, err := parseAgg(wreq.Agg)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	ring, err := parseRing(wreq.Ring)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	poly := geom.NewPolygon(ring)
	if err := poly.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if _, ok := s.f.PointSet(wreq.Dataset); !ok {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown data set %q", wreq.Dataset))
		return
	}
	filters := qcache.CanonFilters(toFilters(wreq.Filters))
	var tf *core.TimeFilter
	if wreq.Time != nil {
		tf = s.snapTime(&core.TimeFilter{Start: wreq.Time.Start, End: wreq.Time.End})
	}
	key := polygonKey(wreq, ring, agg, filters, tf)
	s.serveCached(w, r, key, "application/json", func(ctx context.Context) ([]byte, error) {
		ps, ok := s.f.PointSet(wreq.Dataset)
		if !ok {
			return nil, &statusError{status: http.StatusBadRequest,
				err: fmt.Errorf("unknown data set %q", wreq.Dataset)}
		}
		// The ad-hoc region set lives for this compute only; its stamp
		// keys nothing persistent (the span cache never sees it warm
		// twice, the hierarchy is keyed by the point set).
		rs := &data.RegionSet{Name: "polygon", Regions: []data.Region{
			{ID: 0, Name: "polygon", Poly: poly},
		}}
		req := core.Request{
			Points: ps, Regions: rs,
			Agg: agg, Attr: wreq.Attr, Filters: filters, Time: tf,
		}
		if err := req.Validate(); err != nil {
			return nil, &statusError{status: http.StatusBadRequest, err: err}
		}
		res, err := s.f.ExecuteContext(ctx, req)
		if err != nil {
			return nil, err
		}
		return marshalBody(polygonResponse{
			Algorithm: res.Algorithm,
			Agg:       agg.String(),
			Count:     res.Stats[0].Count,
			Value:     res.Value(0, agg),
		})
	})
}
