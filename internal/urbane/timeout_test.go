package urbane

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestQueryTimeoutReturns504: with a deadline the join cannot meet, the
// endpoint answers 504 with the query_timeout error code, still carries the
// elapsed and trace headers, counts the timeout in /api/stats, and leaves
// no render resources live.
func TestQueryTimeoutReturns504(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	s := NewServer(f, WithQueryTimeout(time.Nanosecond))

	rec := doJSON(t, s, http.MethodPost, "/api/mapview", map[string]any{
		"dataset": "taxi", "layer": "nbhd", "agg": "count",
	})
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "query_timeout") {
		t.Errorf("body lacks query_timeout code: %s", rec.Body)
	}
	if rec.Header().Get("X-Urbane-Elapsed-Ms") == "" {
		t.Error("504 response missing elapsed header")
	}
	if h := rec.Header().Get("X-Urbane-Trace"); !strings.Contains(h, "total=") {
		t.Errorf("504 response missing trace header, got %q", h)
	}

	stats := doJSON(t, s, http.MethodGet, "/api/stats", nil)
	if stats.Code != http.StatusOK {
		t.Fatalf("/api/stats status = %d", stats.Code)
	}
	var body statsResponse
	if err := json.Unmarshal(stats.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.LiveCanvases != 0 || body.LiveTextures != 0 {
		t.Errorf("render resources live after timeout: canvases=%d textures=%d",
			body.LiveCanvases, body.LiveTextures)
	}
	found := false
	for _, ep := range body.Endpoints {
		if ep.Name == "/api/mapview" {
			found = true
			if ep.Timeouts == 0 {
				t.Errorf("/api/mapview timeouts = 0, want > 0: %+v", ep)
			}
			if ep.InFlight != 0 {
				t.Errorf("/api/mapview inFlight = %d, want 0", ep.InFlight)
			}
		}
	}
	if !found {
		t.Errorf("/api/mapview missing from stats: %s", stats.Body)
	}

	// The same server must still answer once the handler is given room: the
	// timeout applies per request, and the aborted join freed its pool.
	s.timeout = 30 * time.Second
	rec = doJSON(t, s, http.MethodPost, "/api/mapview", map[string]any{
		"dataset": "taxi", "layer": "nbhd", "agg": "count",
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("post-timeout request status = %d: %s", rec.Code, rec.Body)
	}
}

// TestTraceHeaderStages: a successful query response carries the per-stage
// trace (parse, plan, execute) in X-Urbane-Trace.
func TestTraceHeaderStages(t *testing.T) {
	s, _ := testServer(t)
	rec := doJSON(t, s, http.MethodPost, "/api/query",
		map[string]string{"stmt": "SELECT COUNT(*) FROM taxi, nbhd GROUP BY id"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	h := rec.Header().Get("X-Urbane-Trace")
	for _, stage := range []string{"parse=", "plan=", "execute=", "total="} {
		if !strings.Contains(h, stage) {
			t.Errorf("trace header lacks %q: %q", stage, h)
		}
	}
}

// TestErrorEnvelope: every failure uses the unified envelope
// {"error":{"status","code","message"}}.
func TestErrorEnvelope(t *testing.T) {
	s, _ := testServer(t)
	rec := doJSON(t, s, http.MethodPost, "/api/query", map[string]string{"stmt": "SELECT nonsense"})
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d", rec.Code)
	}
	var envelope struct {
		Error errorBody `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
		t.Fatalf("decoding envelope: %v (%s)", err, rec.Body)
	}
	if envelope.Error.Status != http.StatusBadRequest ||
		envelope.Error.Code != "bad_request" || envelope.Error.Message == "" {
		t.Errorf("envelope = %+v", envelope.Error)
	}
}
