package urbane

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/admit"
	"repro/internal/trace"
)

// doRaw issues one request with full control over body, headers, and
// context — the contract test needs pre-canceled contexts and conditional
// headers that doJSON doesn't expose.
func doRaw(t *testing.T, s *Server, ctx context.Context, method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req.WithContext(ctx))
	return rec
}

// TestResponseHeaderContract drives every compute endpoint into each
// terminal status — 200, 304 (images), 400, 499, 503, 504 — and asserts
// the cross-cutting response contract: the elapsed and trace headers are
// stamped no matter how the request ends, failures carry the unified error
// envelope with the machine code for their status, and sheds carry
// Retry-After. This is the header audit for the overload paths: a 503 is
// still a first-class response, not a bare string.
func TestResponseHeaderContract(t *testing.T) {
	type ep struct {
		name    string
		method  string
		path    string
		valid   string // request body (POST) — "" for GET
		invalid string // 400-provoking body, or for GETs a bad path
		badPath string // 400-provoking path for GET endpoints
		image   bool
	}
	eps := []ep{
		{name: "query", method: http.MethodPost, path: "/api/query",
			valid:   `{"stmt":"SELECT COUNT(*) FROM taxi, nbhd GROUP BY id"}`,
			invalid: `{"stmt":"SELECT garbage"}`},
		{name: "mapview", method: http.MethodPost, path: "/api/mapview",
			valid:   `{"dataset":"taxi","layer":"nbhd","agg":"count"}`,
			invalid: `{"dataset":"nope","layer":"nbhd","agg":"count"}`},
		{name: "heatmap", method: http.MethodPost, path: "/api/heatmap",
			valid:   `{"dataset":"taxi","w":32,"h":32}`,
			invalid: `{"dataset":"nope","w":32,"h":32}`},
		{name: "delta", method: http.MethodPost, path: "/api/delta",
			valid:   `{"dataset":"taxi","layer":"nbhd","agg":"count","a":{"start":0,"end":3600},"b":{"start":3600,"end":7200}}`,
			invalid: `{"dataset":"taxi","layer":"nbhd","agg":"count","a":{"start":0,"end":3600},"b":{"start":0,"end":3600}}`},
		{name: "explore", method: http.MethodPost, path: "/api/explore",
			valid:   `{"datasets":["taxi"],"layer":"nbhd","agg":"count","regionIds":[1,2],"start":0,"end":7200,"bins":4}`,
			invalid: `{"datasets":["taxi"],"layer":"zzz","agg":"count","regionIds":[1],"start":0,"end":7200,"bins":4}`},
		{name: "tile", method: http.MethodGet,
			path:    "/api/tile/10/301/385.png?dataset=taxi",
			badPath: "/api/tile/10/xx/385.png?dataset=taxi", image: true},
		{name: "choropleth", method: http.MethodGet,
			path:    "/api/render/choropleth.png?dataset=taxi&layer=nbhd&agg=count",
			badPath: "/api/render/choropleth.png?dataset=taxi&layer=nbhd&agg=bogus", image: true},
	}

	// One server per terminal-status mechanism, so probes can't contaminate
	// each other through the shared query cache.
	build := func(opts ...ServerOption) *Server {
		f, _, _ := buildTestFramework(t)
		return NewServer(f, opts...)
	}
	okSrv := build()
	cancelSrv := build()
	shedSrv := build(WithAdmission(admit.New(0, 1, time.Millisecond)))
	slowSrv := build(WithQueryTimeout(time.Nanosecond))
	canceledCtx, cancel := context.WithCancel(context.Background())
	cancel()

	// checkCommon asserts what every terminal response must carry.
	checkCommon := func(t *testing.T, rec *httptest.ResponseRecorder, wantStatus int, wantCode string) {
		t.Helper()
		if rec.Code != wantStatus {
			t.Fatalf("status = %d, want %d (body: %s)", rec.Code, wantStatus, rec.Body)
		}
		h := rec.Header()
		if ms := h.Get(elapsedHeader); ms == "" {
			t.Errorf("missing %s on %d", elapsedHeader, rec.Code)
		} else if _, err := strconv.ParseFloat(ms, 64); err != nil {
			t.Errorf("%s = %q is not a float", elapsedHeader, ms)
		}
		if h.Get(traceHeader) == "" {
			t.Errorf("missing %s on %d", traceHeader, rec.Code)
		}
		switch {
		case wantStatus == http.StatusNotModified:
			if rec.Body.Len() != 0 {
				t.Errorf("304 carried a %d-byte body", rec.Body.Len())
			}
		case wantStatus >= 400:
			if wantStatus == http.StatusServiceUnavailable {
				if ra, err := strconv.Atoi(h.Get("Retry-After")); err != nil || ra < 1 {
					t.Errorf("503 Retry-After = %q, want integer >= 1", h.Get("Retry-After"))
				}
			}
			var env struct {
				Error errorBody `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("%d body is not the error envelope: %s", rec.Code, rec.Body)
			}
			if env.Error.Status != wantStatus || env.Error.Code != wantCode {
				t.Errorf("envelope = {status:%d code:%q}, want {%d %q}",
					env.Error.Status, env.Error.Code, wantStatus, wantCode)
			}
		}
	}

	bg := context.Background()
	for _, e := range eps {
		t.Run(e.name+"/200", func(t *testing.T) {
			checkCommon(t, doRaw(t, okSrv, bg, e.method, e.path, e.valid, nil), http.StatusOK, "")
		})
		t.Run(e.name+"/400", func(t *testing.T) {
			path, body := e.path, e.invalid
			if e.badPath != "" {
				path, body = e.badPath, ""
			}
			checkCommon(t, doRaw(t, okSrv, bg, e.method, path, body, nil), http.StatusBadRequest, "bad_request")
		})
		t.Run(e.name+"/499", func(t *testing.T) {
			checkCommon(t, doRaw(t, cancelSrv, canceledCtx, e.method, e.path, e.valid, nil),
				trace.StatusClientClosedRequest, "client_closed_request")
		})
		t.Run(e.name+"/503", func(t *testing.T) {
			checkCommon(t, doRaw(t, shedSrv, bg, e.method, e.path, e.valid, nil),
				http.StatusServiceUnavailable, "overloaded")
		})
		t.Run(e.name+"/504", func(t *testing.T) {
			checkCommon(t, doRaw(t, slowSrv, bg, e.method, e.path, e.valid, nil),
				trace.StatusGatewayTimeout, "query_timeout")
		})
		if e.image {
			t.Run(e.name+"/304", func(t *testing.T) {
				first := doRaw(t, okSrv, bg, e.method, e.path, "", nil)
				etag := first.Header().Get("ETag")
				if first.Code != http.StatusOK || etag == "" {
					t.Fatalf("priming GET: status=%d etag=%q", first.Code, etag)
				}
				rec := doRaw(t, okSrv, bg, e.method, e.path, "", map[string]string{"If-None-Match": etag})
				checkCommon(t, rec, http.StatusNotModified, "")
			})
		}
	}
}

// TestCheapEndpointsBypassAdmission: with admission capacity 0 every
// compute sheds, yet the observability and catalog endpoints must keep
// answering — an operator diagnosing an overloaded server needs /api/stats
// the most exactly when everything else is 503.
func TestCheapEndpointsBypassAdmission(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	s := NewServer(f, WithAdmission(admit.New(0, 1, time.Millisecond)))
	for _, path := range []string{"/api/stats", "/api/cachestats", "/api/datasets", "/api/regions?layer=nbhd"} {
		rec := doJSON(t, s, http.MethodGet, path, nil)
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s under full shed: status = %d, want 200 (body: %s)", path, rec.Code, rec.Body)
		}
	}
	// And a compute endpoint really is shedding on this server.
	rec := doJSON(t, s, http.MethodPost, "/api/mapview",
		map[string]string{"dataset": "taxi", "layer": "nbhd", "agg": "count"})
	if rec.Code != http.StatusServiceUnavailable {
		t.Errorf("mapview under capacity 0: status = %d, want 503", rec.Code)
	}
}

// TestCacheHitBypassesAdmission proves the admission placement: a key
// already in the query cache keeps serving 200s even when the controller
// sheds every new compute.
func TestCacheHitBypassesAdmission(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	ctl := admit.New(1, 1, 50*time.Millisecond)
	s := NewServer(f, WithAdmission(ctl))
	body := map[string]string{"dataset": "taxi", "layer": "nbhd", "agg": "count"}
	if rec := doJSON(t, s, http.MethodPost, "/api/mapview", body); rec.Code != http.StatusOK {
		t.Fatalf("priming mapview: %d %s", rec.Code, rec.Body)
	}
	// Saturate the controller so any compute would shed...
	release, err := ctl.Acquire(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	// ...a repeat of the cached request still succeeds,
	rec := doJSON(t, s, http.MethodPost, "/api/mapview", body)
	if rec.Code != http.StatusOK {
		t.Errorf("cached mapview under saturation: status = %d, want 200", rec.Code)
	}
	if rec.Header().Get(cacheOutcomeHeader) != "hit" {
		t.Errorf("cache outcome = %q, want hit", rec.Header().Get(cacheOutcomeHeader))
	}
	// while a fresh compute sheds.
	fresh := map[string]string{"dataset": "311", "layer": "grid", "agg": "count"}
	if rec := doJSON(t, s, http.MethodPost, "/api/mapview", fresh); rec.Code != http.StatusServiceUnavailable {
		t.Errorf("fresh mapview under saturation: status = %d, want 503", rec.Code)
	}
}
