package urbane

// Golden-shape test for the full /api/stats document: dashboards and the
// bench harness consume it by key, so the set of keys, their JSON types,
// and the nesting of every block are a public contract. The golden file
// records the shape (not the values — counters and uptimes churn freely);
// any key added, removed, renamed, or retyped must show up as a reviewed
// golden diff. Regenerate with UPDATE_GOLDEN=1 go test ./internal/urbane
// -run TestStatsShape.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// shapeOf renders a canonical type-shape of a decoded JSON value: objects
// as sorted key:shape lines, arrays as the shape of their first element
// ("[]" when empty), scalars as their JSON type name. Indentation mirrors
// nesting so the golden file reads as a document outline.
func shapeOf(v any, indent string, sb *strings.Builder) {
	switch x := v.(type) {
	case map[string]any:
		sb.WriteString("{\n")
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			sb.WriteString(indent + "  " + k + ": ")
			shapeOf(x[k], indent+"  ", sb)
			sb.WriteString("\n")
		}
		sb.WriteString(indent + "}")
	case []any:
		if len(x) == 0 {
			sb.WriteString("[]")
			return
		}
		sb.WriteString("[")
		shapeOf(x[0], indent, sb)
		sb.WriteString("]")
	case string:
		sb.WriteString("string")
	case float64:
		sb.WriteString("number")
	case bool:
		sb.WriteString("bool")
	case nil:
		sb.WriteString("null")
	default:
		sb.WriteString(fmt.Sprintf("%T", v))
	}
}

// TestStatsShapeGolden boots a server with every optional block populated
// — sharding (so perShard rows exist), incremental maintenance, admission
// — issues traffic so the gauges and endpoint histograms materialize, and
// pins the full /api/stats document shape against testdata.
func TestStatsShapeGolden(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	f.EnableSharding(2)
	f.EnableIncremental(1800, 0, 0)
	srv := NewServer(f, WithCache(1<<20), WithTimeSnap(1800))

	// One compute query plus one stats poll so per-shard gauges, endpoint
	// histograms, and cache counters all have rows.
	body := `{"dataset":"taxi","layer":"nbhd","agg":"sum","attr":"fare","filters":[{"attr":"fare","min":0,"max":100}]}`
	req := httptest.NewRequest(http.MethodPost, "/api/mapview", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("mapview: status %d (%s)", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/api/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: status %d", rec.Code)
	}
	var doc any
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("stats not JSON: %v", err)
	}
	// The gauges map's keys are part of the served document and stable for
	// this fixed request sequence; shapeOf records them via the map shape.
	var sb strings.Builder
	shapeOf(doc, "", &sb)
	sb.WriteString("\n")
	got := sb.String()

	golden := filepath.Join("testdata", "stats_shape.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (UPDATE_GOLDEN=1 to generate): %v", err)
	}
	if got != string(want) {
		t.Errorf("/api/stats shape changed (UPDATE_GOLDEN=1 to accept):\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
