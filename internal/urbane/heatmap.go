package urbane

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/fsum"
	"repro/internal/geom"
)

// HeatmapRequest drives Urbane's raw-density view: points rendered
// directly onto a canvas (no polygons), with the same ad-hoc filters as
// every other view. Weight selects COUNT (empty) or the attribute whose
// per-pixel sum is rendered.
type HeatmapRequest struct {
	Dataset string
	// W, H are the canvas dimensions; H <= 0 derives it from the bounds'
	// aspect ratio.
	W, H int
	// Bounds crops the view; empty uses the data set's bounds.
	Bounds  geom.BBox
	Weight  string
	Filters []core.Filter
	Time    *core.TimeFilter
}

// Heatmap is the rendered density raster.
type Heatmap struct {
	W      int       `json:"w"`
	H      int       `json:"h"`
	Bounds geom.BBox `json:"bounds"`
	// Counts is the row-major W*H pixel grid (counts or attribute sums).
	Counts  []float64     `json:"counts"`
	Max     float64       `json:"max"`
	Total   float64       `json:"total"`
	Elapsed time.Duration `json:"elapsedNs"`
}

// Heatmap renders the density view through the GPU substrate's point pass.
func (f *Framework) Heatmap(req HeatmapRequest) (*Heatmap, error) {
	return f.HeatmapContext(context.Background(), req)
}

// HeatmapContext is Heatmap under the request context. The density render
// is a single point pass; cancellation is checked before it starts and the
// canvas is always released.
func (f *Framework) HeatmapContext(ctx context.Context, req HeatmapRequest) (*Heatmap, error) {
	ps, ok := f.PointSet(req.Dataset)
	if !ok {
		return nil, fmt.Errorf("urbane: unknown point set %q", req.Dataset)
	}
	var weight []float64
	if req.Weight != "" {
		weight = ps.Attr(req.Weight)
		if weight == nil {
			return nil, fmt.Errorf("urbane: weight attribute %q not in %q", req.Weight, req.Dataset)
		}
	}
	for _, flt := range req.Filters {
		if ps.Attr(flt.Attr) == nil {
			return nil, fmt.Errorf("urbane: filter attribute %q not in %q", flt.Attr, req.Dataset)
		}
	}
	if req.Time != nil && ps.T == nil {
		return nil, fmt.Errorf("urbane: time filter on %q without timestamps", req.Dataset)
	}
	// A zero-value or degenerate crop means "use the data's extent": a
	// legitimate crop always has area.
	bounds := req.Bounds
	if bounds.IsEmpty() || bounds.Area() == 0 {
		bounds = ps.Bounds()
	}
	if bounds.IsEmpty() || bounds.Area() == 0 {
		return nil, fmt.Errorf("urbane: data set %q has no extent", req.Dataset)
	}
	w := req.W
	if w <= 0 {
		w = 512
	}
	h := req.H
	if h <= 0 {
		h = int(float64(w) * bounds.Height() / bounds.Width())
		if h < 1 {
			h = 1
		}
	}
	dev := f.rasterJoiner().Device()
	if w > dev.MaxTextureSize() || h > dev.MaxTextureSize() {
		return nil, fmt.Errorf("urbane: heatmap %dx%d exceeds device texture size %d",
			w, h, dev.MaxTextureSize())
	}

	start := time.Now()
	lo, hi, pred, err := core.PointPredicate(core.Request{
		Points: ps, Regions: nil, Filters: req.Filters, Time: req.Time,
	})
	if err != nil {
		return nil, err
	}
	canvas, err := dev.NewCanvas(bounds, w, h)
	if err != nil {
		return nil, err
	}
	defer canvas.Release()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	hm := &Heatmap{W: w, H: h, Bounds: canvas.T.World, Counts: make([]float64, w*h)}
	canvas.DrawPoints(hi-lo,
		func(j int) (float64, float64) { i := lo + j; return ps.X[i], ps.Y[i] },
		func(px, py, j int) {
			i := lo + j
			if pred != nil && !pred(i) {
				return
			}
			v := 1.0
			if weight != nil {
				v = weight[i]
			}
			hm.Counts[py*w+px] += v
		})
	hm.Total = fsum.Pairwise(hm.Counts)
	for _, v := range hm.Counts {
		if v > hm.Max {
			hm.Max = v
		}
	}
	hm.Elapsed = time.Since(start)
	return hm, nil
}
