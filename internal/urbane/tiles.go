package urbane

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/mercator"
	"repro/internal/render"
)

// RenderChoropleth runs the map view and rasterizes it to an image-ready
// value slice (one per region, NaN-free). It returns the region values in
// layer order plus the region set, for callers composing their own images;
// HTTP clients use the /api/render/choropleth.png endpoint instead.
func (f *Framework) RenderChoropleth(req MapViewRequest, width int) ([]byte, error) {
	return f.RenderChoroplethContext(context.Background(), req, width)
}

// RenderChoroplethContext is RenderChoropleth under the request context.
func (f *Framework) RenderChoroplethContext(ctx context.Context, req MapViewRequest, width int) ([]byte, error) {
	ch, err := f.MapViewContext(ctx, req)
	if err != nil {
		return nil, err
	}
	rs, _ := f.RegionSet(req.Layer)
	values := make([]float64, len(ch.Values))
	for i, v := range ch.Values {
		values[i] = v.Value
	}
	img, err := render.Choropleth(rs, values, width, render.BlueRamp)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := render.EncodePNG(&buf, img); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// handleChoroplethPNG renders the map view directly to a PNG:
//
//	GET /api/render/choropleth.png?dataset=taxi&layer=neighborhoods
//	    &agg=count[&attr=fare][&w=800]
//
// Rendered images are served through the query-result cache and carry a
// strong ETag (cache key + generation), so revalidating clients get 304s
// without recomputing the aggregation.
func (s *Server) handleChoroplethPNG(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	q := r.URL.Query()
	agg, err := parseAgg(q.Get("agg"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	width := 800
	if ws := q.Get("w"); ws != "" {
		if width, err = strconv.Atoi(ws); err != nil || width < 16 || width > 4096 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad width %q", ws))
			return
		}
	}
	req := MapViewRequest{
		Dataset: q.Get("dataset"), Layer: q.Get("layer"),
		Agg: agg, Attr: q.Get("attr"),
	}
	s.serveCachedImage(w, r, choroplethKey(req, width, s.f.Epoch(req.Dataset)), "image/png", func(ctx context.Context) ([]byte, error) {
		return s.f.RenderChoroplethContext(ctx, req, width)
	})
}

// handleTile serves slippy-map density tiles:
//
//	GET /api/tile/{z}/{x}/{y}.png?dataset=taxi
//
// Each tile renders the data set's point density over the tile's mercator
// extent at 256x256 — composable over any web base map. Tiles are served
// through the query-result cache keyed by z/x/y + the query signature and
// revalidate via strong ETags (304 on If-None-Match).
func (s *Server) handleTile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/tile/")
	rest = strings.TrimSuffix(rest, ".png")
	parts := strings.Split(rest, "/")
	if len(parts) != 3 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("want /api/tile/{z}/{x}/{y}.png"))
		return
	}
	z, err1 := strconv.Atoi(parts[0])
	x, err2 := strconv.Atoi(parts[1])
	y, err3 := strconv.Atoi(parts[2])
	if err1 != nil || err2 != nil || err3 != nil || z < 0 || z > 24 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad tile address %q", rest))
		return
	}
	tile := mercator.Tile{Z: z, X: x, Y: y}
	dataset := r.URL.Query().Get("dataset")
	s.serveCachedImage(w, r, tileKey(z, x, y, dataset, s.f.Epoch(dataset)), "image/png", func(ctx context.Context) ([]byte, error) {
		hm, err := s.f.HeatmapContext(ctx, HeatmapRequest{
			Dataset: dataset,
			W:       256, H: 256,
			Bounds: tile.BBox(),
		})
		if err != nil {
			return nil, err
		}
		img, err := render.Density(hm.Counts, hm.W, hm.H, render.HeatRamp)
		if err != nil {
			return nil, internalErr(err)
		}
		var buf bytes.Buffer
		if err := render.EncodePNG(&buf, img); err != nil {
			return nil, internalErr(err)
		}
		return buf.Bytes(), nil
	})
}

// TileDensity returns the density counts for one slippy tile — the
// programmatic form of the tile endpoint.
func (f *Framework) TileDensity(dataset string, tile mercator.Tile, filters []core.Filter) (*Heatmap, error) {
	return f.TileDensityContext(context.Background(), dataset, tile, filters)
}

// TileDensityContext is TileDensity under the request context.
func (f *Framework) TileDensityContext(ctx context.Context, dataset string, tile mercator.Tile, filters []core.Filter) (*Heatmap, error) {
	return f.HeatmapContext(ctx, HeatmapRequest{
		Dataset: dataset,
		W:       256, H: 256,
		Bounds:  tile.BBox(),
		Filters: filters,
	})
}
