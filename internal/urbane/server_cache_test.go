package urbane

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/data"
	"repro/internal/qcache"
)

// cacheStats fetches /api/cachestats.
func cacheStats(t *testing.T, s *Server) cacheStatsResponse {
	t.Helper()
	rec := doJSON(t, s, http.MethodGet, "/api/cachestats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cachestats status = %d: %s", rec.Code, rec.Body)
	}
	var st cacheStatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	return st
}

// invalidateViaCatalog forces a whole-cache invalidation the way an engine
// toggle does: it bumps the catalog version directly. It also registers a
// throwaway point set first, which must NOT invalidate on its own — a new
// data set cannot appear in any cached response (the per-data-set epoch
// audit); the lifecycle tests keep asserting recomputed bodies are
// byte-identical, which only holds because the queried data is unchanged.
func invalidateViaCatalog(t *testing.T, f *Framework, name string) {
	t.Helper()
	ps := &data.PointSet{Name: name, X: []float64{1}, Y: []float64{2}}
	if err := f.AddPointSet(ps); err != nil {
		t.Fatal(err)
	}
	f.version.Add(1)
}

// TestCachedEndpointLifecycle drives every cached endpoint through the
// miss -> hit -> invalidate -> miss lifecycle: the second identical
// request serves the same body from cache and bumps the hit counter; a
// catalog mutation invalidates; and the recomputed response is identical
// because the queried data did not change.
func TestCachedEndpointLifecycle(t *testing.T) {
	cases := []struct {
		name   string
		method string
		path   string
		body   any
	}{
		{"query", http.MethodPost, "/api/query",
			map[string]string{"stmt": "SELECT COUNT(*) FROM taxi, nbhd GROUP BY id"}},
		{"mapview", http.MethodPost, "/api/mapview",
			map[string]any{"dataset": "taxi", "layer": "nbhd", "agg": "count"}},
		{"heatmap", http.MethodPost, "/api/heatmap",
			map[string]any{"dataset": "taxi", "w": 16}},
		{"delta", http.MethodPost, "/api/delta",
			map[string]any{"dataset": "taxi", "layer": "nbhd", "agg": "count",
				"a": map[string]int64{"start": 0, "end": 4 * 3600},
				"b": map[string]int64{"start": 4 * 3600, "end": 8 * 3600}}},
		{"tile", http.MethodGet, "/api/tile/0/0/0.png?dataset=taxi", nil},
		{"choropleth", http.MethodGet,
			"/api/render/choropleth.png?dataset=taxi&layer=nbhd&agg=count&w=64", nil},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, f := testServer(t)
			do := func() *httptest.ResponseRecorder {
				rec := doJSON(t, s, tc.method, tc.path, tc.body)
				if rec.Code != http.StatusOK {
					t.Fatalf("status = %d: %s", rec.Code, rec.Body)
				}
				return rec
			}
			before := cacheStats(t, s)
			first := do()
			if got := first.Header().Get("X-Urbane-Cache"); got != "miss" {
				t.Fatalf("first request outcome = %q, want miss", got)
			}
			second := do()
			if got := second.Header().Get("X-Urbane-Cache"); got != "hit" {
				t.Fatalf("second request outcome = %q, want hit", got)
			}
			if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
				t.Fatal("cached body differs from computed body")
			}
			mid := cacheStats(t, s)
			if mid.Hits != before.Hits+1 {
				t.Errorf("hits = %d, want %d", mid.Hits, before.Hits+1)
			}
			if mid.Misses != before.Misses+1 {
				t.Errorf("misses = %d, want %d", mid.Misses, before.Misses+1)
			}

			invalidateViaCatalog(t, f, fmt.Sprintf("scratch-%d", i))
			third := do()
			if got := third.Header().Get("X-Urbane-Cache"); got != "miss" {
				t.Fatalf("post-invalidation outcome = %q, want miss", got)
			}
			// The queried data didn't change, so the recompute matches.
			if !bytes.Equal(first.Body.Bytes(), third.Body.Bytes()) {
				t.Fatal("recomputed body diverged after invalidation")
			}
			after := cacheStats(t, s)
			if after.Generation <= mid.Generation {
				t.Errorf("generation did not advance: %d -> %d", mid.Generation, after.Generation)
			}
		})
	}
}

// TestEquivalentRequestsShareEntry: canonicalization means filter order,
// statement formatting, and whitespace do not fragment the cache.
func TestEquivalentRequestsShareEntry(t *testing.T) {
	s, _ := testServer(t)
	a := map[string]any{
		"dataset": "taxi", "layer": "nbhd", "agg": "count",
		"filters": []map[string]any{
			{"attr": "fare", "min": 5, "max": 30},
			{"attr": "fare", "min": 0, "max": 10},
		},
	}
	b := map[string]any{
		"dataset": "taxi", "layer": "nbhd", "agg": "count",
		"filters": []map[string]any{
			{"attr": "fare", "min": 0, "max": 10},
			{"attr": "fare", "min": 5, "max": 30},
		},
	}
	r1 := doJSON(t, s, http.MethodPost, "/api/mapview", a)
	r2 := doJSON(t, s, http.MethodPost, "/api/mapview", b)
	if r1.Code != http.StatusOK || r2.Code != http.StatusOK {
		t.Fatalf("statuses = %d, %d: %s", r1.Code, r2.Code, r1.Body)
	}
	if got := r2.Header().Get("X-Urbane-Cache"); got != "hit" {
		t.Errorf("reordered filters outcome = %q, want hit", got)
	}
	if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
		t.Error("reordered filters served different bodies")
	}

	q1 := doJSON(t, s, http.MethodPost, "/api/query",
		map[string]string{"stmt": "SELECT COUNT(*) FROM taxi, nbhd GROUP BY id"})
	q2 := doJSON(t, s, http.MethodPost, "/api/query",
		map[string]string{"stmt": "select   count(*)   from taxi , nbhd"})
	if q1.Code != http.StatusOK || q2.Code != http.StatusOK {
		t.Fatalf("query statuses = %d, %d", q1.Code, q2.Code)
	}
	if got := q2.Header().Get("X-Urbane-Cache"); got != "hit" {
		t.Errorf("reformatted statement outcome = %q, want hit", got)
	}
}

// TestTimeSnapUnifiesRaggedWindows: with a snap granularity configured,
// slider-style ragged windows quantize onto shared cache entries.
func TestTimeSnapUnifiesRaggedWindows(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	s := NewServer(f, WithTimeSnap(3600))
	mk := func(start, end int64) map[string]any {
		return map[string]any{
			"dataset": "taxi", "layer": "nbhd", "agg": "count",
			"time": map[string]int64{"start": start, "end": end},
		}
	}
	r1 := doJSON(t, s, http.MethodPost, "/api/mapview", mk(13, 3590))
	r2 := doJSON(t, s, http.MethodPost, "/api/mapview", mk(41, 3577))
	if r1.Code != 200 || r2.Code != 200 {
		t.Fatalf("statuses = %d, %d: %s", r1.Code, r2.Code, r1.Body)
	}
	if got := r2.Header().Get("X-Urbane-Cache"); got != "hit" {
		t.Errorf("snapped windows outcome = %q, want hit", got)
	}
	if !bytes.Equal(r1.Body.Bytes(), r2.Body.Bytes()) {
		t.Error("snapped windows served different bodies")
	}
	// A window in the next bucket must not collide.
	r3 := doJSON(t, s, http.MethodPost, "/api/mapview", mk(3601, 7200))
	if got := r3.Header().Get("X-Urbane-Cache"); got != "miss" {
		t.Errorf("distinct bucket outcome = %q, want miss", got)
	}
}

// TestCacheDisabled: WithoutCache bypasses everything and reports so.
func TestCacheDisabled(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	s := NewServer(f, WithoutCache())
	body := map[string]any{"dataset": "taxi", "layer": "nbhd", "agg": "count"}
	for i := 0; i < 2; i++ {
		rec := doJSON(t, s, http.MethodPost, "/api/mapview", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("status = %d", rec.Code)
		}
		if got := rec.Header().Get("X-Urbane-Cache"); got != "bypass" {
			t.Errorf("outcome = %q, want bypass", got)
		}
	}
	st := cacheStats(t, s)
	if st.Enabled {
		t.Error("cachestats should report disabled")
	}
	if rec := doJSON(t, s, http.MethodPost, "/api/cachestats", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST cachestats status = %d", rec.Code)
	}
}

// TestCacheStatsFields sanity-checks the counters the endpoint exposes.
func TestCacheStatsFields(t *testing.T) {
	s, _ := testServer(t)
	st := cacheStats(t, s)
	if !st.Enabled || st.Capacity != DefaultCacheBytes || st.TimeSnap != 1 {
		t.Errorf("defaults = %+v", st)
	}
	body := map[string]any{"dataset": "taxi", "layer": "nbhd", "agg": "count"}
	doJSON(t, s, http.MethodPost, "/api/mapview", body)
	doJSON(t, s, http.MethodPost, "/api/mapview", body)
	st = cacheStats(t, s)
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes == 0 {
		t.Errorf("after miss+hit: %+v", st)
	}
}

// randomRequest draws one request from a small domain so that randomized
// sequences repeat shapes (exercising hits) while still mixing endpoints,
// aggregates, filters, and windows.
func randomRequest(rng *rand.Rand) (method, path string, body any) {
	datasets := []string{"taxi", "311"}
	layers := []string{"nbhd", "grid"}
	windows := []map[string]int64{
		{"start": 0, "end": 4 * 3600},
		{"start": 4 * 3600, "end": 8 * 3600},
		{"start": 0, "end": 8 * 3600},
	}
	filterPool := []map[string]any{
		{"attr": "fare", "min": 0, "max": 10},
		{"attr": "fare", "min": 5, "max": 30},
		{"attr": "fare", "min": 10, "max": 40},
	}
	switch rng.Intn(5) {
	case 0: // query
		stmts := []string{
			"SELECT COUNT(*) FROM taxi, nbhd GROUP BY id",
			"SELECT AVG(fare) FROM taxi, nbhd",
			"SELECT SUM(fare) FROM taxi, grid WHERE fare BETWEEN 5 AND 30",
			"SELECT COUNT(*) FROM 311, nbhd WHERE time BETWEEN 0 AND 14400",
		}
		return http.MethodPost, "/api/query", map[string]string{"stmt": stmts[rng.Intn(len(stmts))]}
	case 1: // mapview
		b := map[string]any{
			"dataset": datasets[rng.Intn(len(datasets))],
			"layer":   layers[rng.Intn(len(layers))],
			"agg":     []string{"count", "sum", "avg"}[rng.Intn(3)],
		}
		if b["agg"] != "count" {
			b["attr"] = "fare"
		}
		if rng.Intn(2) == 0 {
			b["time"] = windows[rng.Intn(len(windows))]
		}
		n := rng.Intn(3)
		filters := make([]map[string]any, 0, n)
		for _, j := range rng.Perm(len(filterPool))[:n] {
			filters = append(filters, filterPool[j])
		}
		if len(filters) > 0 {
			b["filters"] = filters
		}
		return http.MethodPost, "/api/mapview", b
	case 2: // heatmap
		return http.MethodPost, "/api/heatmap", map[string]any{
			"dataset": datasets[rng.Intn(len(datasets))],
			"w":       []int{8, 16}[rng.Intn(2)],
		}
	case 3: // delta
		a, b := windows[rng.Intn(2)], windows[rng.Intn(2)]
		return http.MethodPost, "/api/delta", map[string]any{
			"dataset": datasets[rng.Intn(len(datasets))],
			"layer":   layers[rng.Intn(len(layers))],
			"agg":     "count",
			"a":       a, "b": b, // identical windows are a 400 on both servers
		}
	default: // tile
		z := rng.Intn(3)
		return http.MethodGet, fmt.Sprintf("/api/tile/%d/%d/%d.png?dataset=%s",
			z, rng.Intn(z+1), rng.Intn(z+1), datasets[rng.Intn(len(datasets))]), nil
	}
}

// TestCacheOnOffResponsesByteIdentical is the end-to-end correctness
// property: over randomized query sequences, a cached server and an
// uncached server sharing the same framework return byte-identical
// bodies and statuses for every request. Caching is an optimization,
// never a semantic change.
func TestCacheOnOffResponsesByteIdentical(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	cached := NewServer(f)
	uncached := NewServer(f, WithoutCache())
	for _, seed := range []int64{1, 42, 2009} {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 40; i++ {
			method, path, body := randomRequest(rng)
			ra := doJSON(t, cached, method, path, body)
			rb := doJSON(t, uncached, method, path, body)
			if ra.Code != rb.Code {
				t.Fatalf("seed %d req %d %s %s: status %d (cached) vs %d (uncached)",
					seed, i, method, path, ra.Code, rb.Code)
			}
			if !bytes.Equal(ra.Body.Bytes(), rb.Body.Bytes()) {
				t.Fatalf("seed %d req %d %s %s (%v): bodies diverged\ncached:   %.200s\nuncached: %.200s",
					seed, i, method, path, body, ra.Body, rb.Body)
			}
		}
	}
	// The cached server actually cached: some of the repeats were hits.
	if st := cached.CacheStats(); st.Hits == 0 {
		t.Error("randomized sequence produced no cache hits; domain too wide?")
	}
}

// TestConcurrentCachedRequests hammers one cached server from many
// goroutines with a mix of identical and distinct requests plus a
// mid-flight invalidation; every response must match the serial answer.
// Run under -race via the stress target.
func TestConcurrentCachedRequests(t *testing.T) {
	s, f := testServer(t)
	body := map[string]any{"dataset": "taxi", "layer": "nbhd", "agg": "count"}
	want := doJSON(t, s, http.MethodPost, "/api/mapview", body)
	if want.Code != http.StatusOK {
		t.Fatalf("status = %d", want.Code)
	}
	const workers = 16
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < 10; i++ {
				if w == 3 && i == 5 {
					invalidateViaCatalog(t, f, fmt.Sprintf("mid-flight-%d", w))
				}
				rec := doJSON(t, s, http.MethodPost, "/api/mapview", body)
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("status %d: %s", rec.Code, rec.Body)
					return
				}
				if !bytes.Equal(rec.Body.Bytes(), want.Body.Bytes()) {
					errs <- fmt.Errorf("concurrent cached response diverged")
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestTileETagRevalidation: tiles carry a strong ETag derived from the
// cache key and generation; If-None-Match revalidates to 304 without
// recomputing, and a catalog change rolls the validator.
func TestTileETagRevalidation(t *testing.T) {
	s, f := testServer(t)
	const path = "/api/tile/0/0/0.png?dataset=taxi"
	first := doJSON(t, s, http.MethodGet, path, nil)
	if first.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", first.Code, first.Body)
	}
	etag := first.Header().Get("ETag")
	if etag == "" || first.Header().Get("Cache-Control") == "" {
		t.Fatalf("missing validators: ETag=%q Cache-Control=%q",
			etag, first.Header().Get("Cache-Control"))
	}

	misses0 := s.CacheStats().Misses
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.Header.Set("If-None-Match", etag)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", rec.Code)
	}
	if rec.Body.Len() != 0 {
		t.Errorf("304 carried a %d-byte body", rec.Body.Len())
	}
	if got := s.CacheStats().Misses; got != misses0 {
		t.Errorf("304 recomputed: misses %d -> %d", misses0, got)
	}

	// A stale validator revalidates to a full 200.
	req = httptest.NewRequest(http.MethodGet, path, nil)
	req.Header.Set("If-None-Match", `"deadbeef-0"`)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("stale validator status = %d, want 200", rec.Code)
	}

	// Catalog change rolls the ETag, so old validators stop matching.
	invalidateViaCatalog(t, f, "etag-roll")
	req = httptest.NewRequest(http.MethodGet, path, nil)
	req.Header.Set("If-None-Match", etag)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("post-invalidation status = %d, want 200", rec.Code)
	}
	if newTag := rec.Header().Get("ETag"); newTag == etag || newTag == "" {
		t.Errorf("ETag did not roll: %q -> %q", etag, newTag)
	}
	// Same bytes either way — the data didn't change.
	if !bytes.Equal(first.Body.Bytes(), rec.Body.Bytes()) {
		t.Error("tile bytes diverged across generations")
	}
}

// TestChoroplethETag: the PNG rendering path shares the same revalidation
// machinery.
func TestChoroplethETag(t *testing.T) {
	s, _ := testServer(t)
	const path = "/api/render/choropleth.png?dataset=taxi&layer=nbhd&agg=count&w=64"
	first := doJSON(t, s, http.MethodGet, path, nil)
	if first.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", first.Code, first.Body)
	}
	etag := first.Header().Get("ETag")
	if etag == "" {
		t.Fatal("missing ETag")
	}
	req := httptest.NewRequest(http.MethodGet, path, nil)
	req.Header.Set("If-None-Match", "W/"+etag) // weak form matches too
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", rec.Code)
	}
}

// TestCoalescedHeaderSurfaces: concurrent identical server requests share
// one compute, and at least one response reports it was coalesced or
// served from cache while the flight was hot. (The exact split is timing
// dependent; exactly-one-compute is proven deterministically in
// internal/qcache.)
func TestCoalescedHeaderSurfaces(t *testing.T) {
	s, _ := testServer(t)
	const clients = 8
	body := map[string]any{"dataset": "taxi", "layer": "nbhd", "agg": "count",
		"time": map[string]int64{"start": 0, "end": 3 * 3600}}
	outcomes := make(chan string, clients)
	for i := 0; i < clients; i++ {
		go func() {
			rec := doJSON(t, s, http.MethodPost, "/api/mapview", body)
			outcomes <- rec.Header().Get("X-Urbane-Cache")
		}()
	}
	misses := 0
	for i := 0; i < clients; i++ {
		switch <-outcomes {
		case "miss":
			misses++
		case "hit", "coalesced":
		default:
			t.Error("unexpected outcome header")
		}
	}
	if misses != 1 {
		t.Errorf("computes = %d, want exactly 1 across concurrent identical requests", misses)
	}
	if st := s.CacheStats(); st.Misses != 1 {
		t.Errorf("stats.misses = %d, want 1", st.Misses)
	}
}

// qcacheStatsZero guards the embedded-stats JSON shape the endpoint
// promises in the README.
func TestCacheStatsJSONShape(t *testing.T) {
	b, err := json.Marshal(cacheStatsResponse{Enabled: true, TimeSnap: 1, Stats: qcache.Stats{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"enabled", "timeSnap", "hits", "misses",
		"evictions", "coalesced", "entries", "bytes", "capacityBytes", "generation"} {
		if !bytes.Contains(b, []byte(`"`+field+`"`)) {
			t.Errorf("cachestats JSON missing %q: %s", field, b)
		}
	}
}
