package urbane

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/admit"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/qcache"
	"repro/internal/shard"
	"repro/internal/trace"
)

// DefaultCacheBytes is the query-result cache capacity a server gets when
// no option overrides it.
const DefaultCacheBytes = 64 << 20

// Response headers the cached endpoints emit. Timing travels in a header
// instead of the JSON body so cached bodies are deterministic: the same
// canonical query always serves byte-identical bytes, hit or miss,
// cache on or off.
const (
	cacheOutcomeHeader = "X-Urbane-Cache"
	elapsedHeader      = "X-Urbane-Elapsed-Ms"
	traceHeader        = "X-Urbane-Trace"
)

// ServerOption configures NewServer.
type ServerOption func(*Server)

// WithCache sets the query-result cache capacity in bytes; 0 or negative
// disables caching.
func WithCache(capacityBytes int64) ServerOption {
	return func(s *Server) {
		if capacityBytes <= 0 {
			s.cache = nil
			return
		}
		s.cache = qcache.New(capacityBytes)
	}
}

// WithoutCache disables the query-result cache; every request computes.
func WithoutCache() ServerOption {
	return func(s *Server) { s.cache = nil }
}

// WithQueryTimeout bounds every /api request to d: the handler's context
// carries the deadline, the join kernels observe it between point batches,
// and an exhausted deadline surfaces as 504 Gateway Timeout. d <= 0 (the
// default) disables the bound.
func WithQueryTimeout(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.timeout = d
		}
	}
}

// WithAdmission bounds the server's concurrent query computes with the
// given admission controller: computes past -max-inflight wait in a short
// deadline-aware queue and are shed with 503 + Retry-After when the queue
// is full or too slow. Cache hits, 304 revalidations, coalesced waiters,
// and the cheap observability endpoints (/api/stats, /api/cachestats,
// /api/datasets, /api/regions) bypass admission. nil disables (the
// default).
func WithAdmission(c *admit.Controller) ServerOption {
	return func(s *Server) { s.admit = c }
}

// WithFaults arms deterministic fault injection: the registry rides every
// request context, and the hook sites threaded through the stack
// (server.decode, qcache.compute, core.join, core.pointpass) consult it.
// nil (the default) disarms injection; hooks then cost one atomic load.
func WithFaults(r *fault.Registry) ServerOption {
	return func(s *Server) { s.faults = r }
}

// WithTimeSnap makes the server quantize every time filter outward to
// multiples of gran (the workload's bucket granularity, e.g. 3600 for
// hourly data) before both keying and executing it, so ragged slider
// windows share cache entries. gran <= 1 means no snapping.
func WithTimeSnap(gran int64) ServerOption {
	return func(s *Server) {
		if gran < 1 {
			gran = 1
		}
		s.snap = gran
	}
}

// CacheStats snapshots the cache counters (zero-valued when disabled).
func (s *Server) CacheStats() qcache.Stats { return s.cache.Stats() }

// AdmissionStats snapshots the admission controller (zero-valued when
// admission is disabled).
func (s *Server) AdmissionStats() admit.Stats { return s.admit.Stats() }

// statusError carries a non-default HTTP status through a cached compute
// function; plain errors map to 400 Bad Request.
type statusError struct {
	status int
	err    error
}

func (e *statusError) Error() string { return e.err.Error() }
func (e *statusError) Unwrap() error { return e.err }

// internalErr marks a compute failure as a 500 rather than a 400.
func internalErr(err error) error {
	return &statusError{status: http.StatusInternalServerError, err: err}
}

// syncGeneration slaves the cache generation to the framework's catalog
// version, so an engine toggle (geoblocks, incremental) invalidates the
// whole cache. Registrations and per-data-set writes don't move the
// version — writes advance the data set's epoch, which is part of every
// cache key, and an eager sweep reclaims the stale entries.
func (s *Server) syncGeneration() {
	if s.cache != nil {
		s.cache.AdvanceGeneration(s.f.Version())
	}
}

// snapTime applies the server's time-snap granularity.
func (s *Server) snapTime(t *core.TimeFilter) *core.TimeFilter {
	return qcache.SnapTime(t, s.snap)
}

// marshalBody renders a deterministic JSON response body (same trailing
// newline as writeJSON's encoder, so cached and uncached bodies match).
func marshalBody(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, internalErr(err)
	}
	return append(b, '\n'), nil
}

// serveCached satisfies one cacheable endpoint: look up the canonical key,
// coalesce concurrent identical computes, and serve the stored bytes. The
// compute runs under the request context (coalesced waiters that give up
// detach without killing the shared compute; see qcache.DoContext).
// Compute errors are never cached; they surface with the status carried by
// statusError (default 400), with context exhaustion mapped to 504/499.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, key, contentType string, compute func(ctx context.Context) ([]byte, error)) {
	start := time.Now()
	s.syncGeneration()
	compute = s.admitted(endpointWeight(endpointName(r.URL.Path)), compute)
	body, outcome, err := s.cache.DoContext(r.Context(), key, compute)
	if err != nil {
		s.writeComputeError(w, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set(cacheOutcomeHeader, string(outcome))
	h.Set(elapsedHeader, strconv.FormatFloat(float64(time.Since(start))/float64(time.Millisecond), 'f', 3, 64))
	_, _ = w.Write(body)
}

// writeComputeError maps a compute failure to its HTTP status: an explicit
// statusError wins, then an admission shed is 503 Service Unavailable with
// Retry-After, deadline exhaustion is 504 Gateway Timeout, a vanished
// client is 499, and anything else is a 400.
func (s *Server) writeComputeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var se *statusError
	if errors.As(err, &se) {
		status, err = se.status, se.err
	}
	switch {
	case errors.Is(err, admit.ErrOverloaded):
		s.writeShed(w, err)
		return
	case errors.Is(err, shard.ErrUnavailable):
		// A killed shard is transient by design (chaos or operator restart):
		// same standard envelope + Retry-After contract as an admission
		// shed, never a silently partial answer.
		s.writeShed(w, err)
		return
	case errors.Is(err, context.DeadlineExceeded):
		status = trace.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		status = trace.StatusClientClosedRequest
	}
	writeError(w, status, err)
}

// serveCachedImage wraps serveCached for the GET image endpoints with
// HTTP revalidation: a strong ETag derived from the cache key and the
// current generation, honored via If-None-Match with 304. Within one
// generation the catalog is immutable and rendering is deterministic, so
// key+generation fully determines the bytes — the validator is strong.
func (s *Server) serveCachedImage(w http.ResponseWriter, r *http.Request, key, contentType string, compute func(ctx context.Context) ([]byte, error)) {
	s.syncGeneration()
	etag := s.etagFor(key)
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Cache-Control", "private, no-cache")
	if matchesETag(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.serveCached(w, r, key, contentType, compute)
}

// etagFor derives the strong validator for a cache key at the current
// generation.
func (s *Server) etagFor(key string) string {
	gen := s.f.Version()
	if s.cache != nil {
		gen = s.cache.Generation()
	}
	h := fnv.New64a()
	_, _ = h.Write([]byte(key))
	return fmt.Sprintf("\"%016x-%x\"", h.Sum64(), gen)
}

// matchesETag implements the If-None-Match comparison: a comma-separated
// list of validators or "*". Weak prefixes compare equal to their strong
// form (weak comparison is what If-None-Match specifies).
func matchesETag(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		cand = strings.TrimPrefix(cand, "W/")
		if cand == etag {
			return true
		}
	}
	return false
}

// Canonical cache keys, one constructor per cached endpoint. All request
// fields that influence the response participate; filters are sorted and
// time windows snapped before this point. The data set travels as an
// Epoch pair (name + per-data-set write epoch), so an append or cube build
// against one data set changes only that set's keys — every other set's
// entries stay warm, and the image endpoints' ETags (which hash the key)
// roll over automatically.

func mapViewKey(req MapViewRequest, epoch uint64) string {
	return qcache.NewSig("mapview").
		Epoch(req.Dataset, epoch).Str("layer", req.Layer).
		Str("agg", req.Agg.String()).Str("attr", req.Attr).
		Filters("f", req.Filters).TimeRange("t", req.Time).Key()
}

func queryKey(canonicalStmt, dataset string, epoch uint64) string {
	return qcache.NewSig("query").Str("stmt", canonicalStmt).
		Epoch(dataset, epoch).Key()
}

func heatmapKey(req HeatmapRequest, epoch uint64) string {
	return qcache.NewSig("heatmap").
		Epoch(req.Dataset, epoch).Int("w", int64(req.W)).Int("h", int64(req.H)).
		Str("weight", req.Weight).
		Filters("f", req.Filters).TimeRange("t", req.Time).Key()
}

func deltaKey(req DeltaRequest, epoch uint64) string {
	return qcache.NewSig("delta").
		Epoch(req.Dataset, epoch).Str("layer", req.Layer).
		Str("agg", req.Agg.String()).Str("attr", req.Attr).
		Filters("f", req.Filters).
		TimeRange("a", &req.A).TimeRange("b", &req.B).Key()
}

func tileKey(z, x, y int, dataset string, epoch uint64) string {
	return qcache.NewSig("tile").
		Int("z", int64(z)).Int("x", int64(x)).Int("y", int64(y)).
		Epoch(dataset, epoch).Key()
}

func choroplethKey(req MapViewRequest, width int, epoch uint64) string {
	return qcache.NewSig("choropng").
		Epoch(req.Dataset, epoch).Str("layer", req.Layer).
		Str("agg", req.Agg.String()).Str("attr", req.Attr).
		Int("w", int64(width)).Key()
}

// cacheStatsResponse is the /api/cachestats payload.
type cacheStatsResponse struct {
	Enabled  bool  `json:"enabled"`
	TimeSnap int64 `json:"timeSnap"`
	qcache.Stats
}

// handleCacheStats reports hit/miss/evict/coalesce counters, occupancy,
// and the current generation: GET /api/cachestats.
func (s *Server) handleCacheStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("use GET"))
		return
	}
	s.syncGeneration()
	writeJSON(w, http.StatusOK, cacheStatsResponse{
		Enabled:  s.cache != nil,
		TimeSnap: s.snap,
		Stats:    s.cache.Stats(),
	})
}
