package urbane

import (
	"fmt"
	"net/http"
)

// handleIndex serves the embedded single-file demo frontend: a canvas map
// that fetches the region layer, runs map-view queries with ad-hoc filters,
// and paints the choropleth — the interaction loop demo visitors drive.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		// Everything this server emits — including the catch-all 404 —
		// uses the JSON error envelope, not http.NotFound's text/plain.
		writeError(w, http.StatusNotFound, fmt.Errorf("no such path %q", r.URL.Path))
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = w.Write([]byte(indexHTML))
}

const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>Urbane — interactive spatial aggregation</title>
<style>
  body { font: 14px/1.4 system-ui, sans-serif; margin: 0; display: flex; height: 100vh; }
  #panel { width: 320px; padding: 16px; border-right: 1px solid #ddd; overflow-y: auto; }
  #map { flex: 1; }
  h1 { font-size: 16px; margin: 0 0 12px; }
  label { display: block; margin: 10px 0 2px; color: #555; font-size: 12px; }
  select, input, button { width: 100%; box-sizing: border-box; padding: 6px; }
  button { margin-top: 12px; background: #1a66ff; color: white; border: 0;
           border-radius: 4px; padding: 8px; cursor: pointer; }
  #status { margin-top: 12px; font-size: 12px; color: #333; white-space: pre-wrap; }
  .legend { display: flex; margin-top: 8px; height: 10px; }
  .legend div { flex: 1; }
</style>
</head>
<body>
<div id="panel">
  <h1>Urbane <small style="color:#888">· Raster Join demo</small></h1>
  <label>Data set</label><select id="dataset"></select>
  <label>Region layer</label><select id="layer"></select>
  <label>Aggregate</label>
  <select id="agg">
    <option value="count">COUNT(*)</option>
    <option value="avg">AVG(attr)</option>
    <option value="sum">SUM(attr)</option>
  </select>
  <label>Attribute (for AVG/SUM and filter)</label><input id="attr" placeholder="fare">
  <label>Filter: attr between</label>
  <div style="display:flex;gap:6px">
    <input id="fmin" placeholder="min" style="flex:1">
    <input id="fmax" placeholder="max" style="flex:1">
  </div>
  <button id="run">Run spatial aggregation</button>
  <div class="legend" id="legend"></div>
  <div id="status">loading…</div>
</div>
<canvas id="map"></canvas>
<script>
const $ = id => document.getElementById(id);
let regions = null, bounds = null;

function ramp(t) { // light yellow -> dark red
  const r = Math.round(255 - 80*t), g = Math.round(237 - 200*t), b = Math.round(160 - 120*t);
  return 'rgb(' + r + ',' + g + ',' + b + ')';
}

async function init() {
  const ds = await (await fetch('/api/datasets')).json();
  for (const p of ds.points) $('dataset').add(new Option(p, p));
  for (const l of ds.layers) $('layer').add(new Option(l, l));
  $('layer').value = ds.layers.includes('neighborhoods') ? 'neighborhoods' : ds.layers[0];
  const lg = $('legend');
  for (let i = 0; i < 12; i++) {
    const d = document.createElement('div');
    d.style.background = ramp(i/11);
    lg.appendChild(d);
  }
  await loadLayer();
  $('status').textContent = 'ready — hit Run';
}

async function loadLayer() {
  const resp = await fetch('/api/regions?layer=' + encodeURIComponent($('layer').value));
  const gj = await resp.json();
  regions = gj.features;
  bounds = [Infinity, Infinity, -Infinity, -Infinity];
  for (const f of regions)
    for (const ring of f.geometry.coordinates)
      for (const [x, y] of ring) {
        bounds[0] = Math.min(bounds[0], x); bounds[1] = Math.min(bounds[1], y);
        bounds[2] = Math.max(bounds[2], x); bounds[3] = Math.max(bounds[3], y);
      }
  draw({});
}

function draw(valueByID, min, max) {
  const cv = $('map');
  cv.width = cv.clientWidth; cv.height = cv.clientHeight;
  const ctx = cv.getContext('2d');
  const sx = cv.width / (bounds[2]-bounds[0]), sy = cv.height / (bounds[3]-bounds[1]);
  const s = Math.min(sx, sy) * 0.96;
  const px = x => (x - bounds[0]) * s + 8;
  const py = y => cv.height - ((y - bounds[1]) * s + 8);
  for (const f of regions) {
    ctx.beginPath();
    for (const ring of f.geometry.coordinates) {
      ring.forEach(([x, y], i) => i ? ctx.lineTo(px(x), py(y)) : ctx.moveTo(px(x), py(y)));
      ctx.closePath();
    }
    const v = valueByID[f.properties.id];
    ctx.fillStyle = v === undefined ? '#f2f2f2'
      : ramp(max > min ? (v - min) / (max - min) : 0);
    ctx.fill('evenodd');
    ctx.strokeStyle = '#999'; ctx.lineWidth = 0.5; ctx.stroke();
  }
}

async function run() {
  const body = {
    dataset: $('dataset').value, layer: $('layer').value,
    agg: $('agg').value, attr: $('attr').value || undefined, filters: []
  };
  if ($('fmin').value && $('fmax').value && $('attr').value)
    body.filters.push({ attr: $('attr').value,
      min: parseFloat($('fmin').value), max: parseFloat($('fmax').value) });
  const t0 = performance.now();
  const resp = await fetch('/api/mapview', { method: 'POST', body: JSON.stringify(body) });
  const ch = await resp.json();
  if (ch.error) { $('status').textContent = 'error: ' + ch.error; return; }
  const vals = {};
  for (const v of ch.values) vals[v.id] = v.value;
  draw(vals, ch.min, ch.max);
  $('status').textContent =
    'algorithm: ' + ch.algorithm + '\n' +
    'round trip: ' + (performance.now() - t0).toFixed(0) + ' ms\n' +
    'range: ' + ch.min.toFixed(1) + ' … ' + ch.max.toFixed(1);
}

$('run').onclick = run;
$('layer').onchange = loadLayer;
window.onresize = () => draw({});
init();
</script>
</body>
</html>
`
