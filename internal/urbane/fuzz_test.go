package urbane

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/admit"
)

// The fuzz server is built once per process: framework construction is the
// expensive part, and the fuzzer calls the target millions of times.
// Capacity-0 admission sheds every compute, so the fuzzer spends its budget
// on the overload path — the 503 envelope, Retry-After, and the header
// middleware — across arbitrary methods, paths, bodies, and validators.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzServer(tb testing.TB) *Server {
	fuzzOnce.Do(func() {
		f, _, _ := buildTestFramework(tb)
		fuzzSrv = NewServer(f, WithAdmission(admit.New(0, 1, time.Millisecond)))
	})
	return fuzzSrv
}

// FuzzAdmitEnvelope throws arbitrary requests at a fully-shedding server
// and asserts the response contract the chaos suite depends on: the status
// is always one of the terminal set (no stray 5xx, no panic), every
// non-404 failure carries the JSON error envelope with a matching status,
// 503s carry Retry-After, and the elapsed header is stamped regardless of
// how the request died. (404s are exempt from the envelope: unregistered
// paths fall through to the frontend handler, which answers plain text.)
func FuzzAdmitEnvelope(f *testing.F) {
	f.Add("POST", "/api/mapview", `{"dataset":"taxi","layer":"nbhd","agg":"count"}`, "")
	f.Add("POST", "/api/query", `{"stmt":"SELECT COUNT(*) FROM taxi, nbhd GROUP BY id"}`, "")
	f.Add("GET", "/api/stats", "", "")
	f.Add("GET", "/api/tile/10/301/385.png?dataset=taxi", "", `W/"deadbeef-1"`)
	f.Add("GET", "/api/render/choropleth.png?dataset=taxi&layer=nbhd&agg=count", "", "*")
	f.Add("PUT", "/api/delta", "{}", "")
	f.Add("GET", "/", "", "")
	f.Add("HEAD", "/api/datasets", "", "")
	f.Add("POST", "/api/explore", `{"datasets":["taxi"],"layer":"nbhd","agg":"count","regionIds":[0],"start":0,"end":3600,"bins":2}`, "")

	allowed := map[int]bool{200: true, 304: true, 400: true, 404: true, 405: true,
		499: true, 503: true, 504: true}

	f.Fuzz(func(t *testing.T, method, path, body, inm string) {
		if !strings.HasPrefix(path, "/") {
			path = "/" + path
		}
		req, err := http.NewRequest(method, "http://fuzz"+path, strings.NewReader(body))
		if err != nil {
			t.Skip() // unencodable method/path — not a request the server can see
		}
		if inm != "" {
			req.Header["If-None-Match"] = []string{inm}
		}
		if body != "" {
			req.Header.Set("Content-Type", "application/json")
		}
		rec := httptest.NewRecorder()
		fuzzServer(t).ServeHTTP(rec, req)

		if !allowed[rec.Code] {
			t.Fatalf("%s %q -> status %d outside the terminal set (body: %.200s)",
				method, path, rec.Code, rec.Body)
		}
		if rec.Header().Get(elapsedHeader) == "" {
			t.Errorf("%s %q -> %d without %s", method, path, rec.Code, elapsedHeader)
		}
		if rec.Code == http.StatusServiceUnavailable && rec.Header().Get("Retry-After") == "" {
			t.Errorf("%s %q -> 503 without Retry-After", method, path)
		}
		if rec.Code >= 400 && rec.Code != http.StatusNotFound {
			var env struct {
				Error errorBody `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("%s %q -> %d body is not the error envelope: %.200s",
					method, path, rec.Code, rec.Body)
			}
			if env.Error.Status != rec.Code || env.Error.Code == "" {
				t.Fatalf("%s %q -> HTTP %d but envelope {status:%d code:%q}",
					method, path, rec.Code, env.Error.Status, env.Error.Code)
			}
		}
	})
}
