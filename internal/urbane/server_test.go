package urbane

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func testServer(t *testing.T) (*Server, *Framework) {
	t.Helper()
	f, _, _ := buildTestFramework(t)
	return NewServer(f), f
}

func doJSON(t *testing.T, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func TestDatasetsEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := doJSON(t, s, http.MethodGet, "/api/datasets", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var got map[string][]string
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got["points"]) != 2 || len(got["layers"]) != 2 {
		t.Errorf("datasets = %v", got)
	}
	// Wrong method.
	rec = doJSON(t, s, http.MethodPost, "/api/datasets", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /api/datasets status = %d", rec.Code)
	}
}

func TestQueryEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := doJSON(t, s, http.MethodPost, "/api/query",
		map[string]string{"stmt": "SELECT COUNT(*) FROM taxi, nbhd GROUP BY id"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var got queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 12 || got.Algorithm == "" {
		t.Errorf("response = %+v", got)
	}
	// Timing travels in a header so cached bodies stay deterministic.
	if rec.Header().Get("X-Urbane-Elapsed-Ms") == "" {
		t.Error("missing elapsed header")
	}
	// Parse errors surface as 400 with a message.
	rec = doJSON(t, s, http.MethodPost, "/api/query", map[string]string{"stmt": "SELECT nonsense"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad stmt status = %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "error") {
		t.Errorf("bad stmt body = %s", rec.Body)
	}
	// Malformed JSON body.
	req := httptest.NewRequest(http.MethodPost, "/api/query", strings.NewReader("{"))
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusBadRequest {
		t.Errorf("malformed body status = %d", rec2.Code)
	}
	// GET not allowed.
	rec = doJSON(t, s, http.MethodGet, "/api/query", nil)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET status = %d", rec.Code)
	}
}

func TestMapViewEndpoint(t *testing.T) {
	s, _ := testServer(t)
	body := map[string]any{
		"dataset": "taxi", "layer": "nbhd", "agg": "avg", "attr": "fare",
		"filters": []map[string]any{{"attr": "fare", "min": 5, "max": 30}},
		"time":    map[string]int64{"start": 0, "end": 4 * 3600},
	}
	rec := doJSON(t, s, http.MethodPost, "/api/mapview", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var ch Choropleth
	if err := json.Unmarshal(rec.Body.Bytes(), &ch); err != nil {
		t.Fatal(err)
	}
	if len(ch.Values) != 12 {
		t.Errorf("values = %d", len(ch.Values))
	}
	// Unknown aggregate.
	body["agg"] = "median"
	rec = doJSON(t, s, http.MethodPost, "/api/mapview", body)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown agg status = %d", rec.Code)
	}
	// Unknown dataset.
	body["agg"] = "count"
	body["dataset"] = "nope"
	rec = doJSON(t, s, http.MethodPost, "/api/mapview", body)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown dataset status = %d", rec.Code)
	}
}

func TestExploreEndpoint(t *testing.T) {
	s, _ := testServer(t)
	body := map[string]any{
		"datasets": []string{"taxi", "311"},
		"layer":    "nbhd",
		"agg":      "count",
		"start":    0, "end": 8 * 3600, "bins": 4,
		"regionIds": []int{0, 1},
	}
	rec := doJSON(t, s, http.MethodPost, "/api/explore", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var ex Exploration
	if err := json.Unmarshal(rec.Body.Bytes(), &ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.Series) != 4 || len(ex.BinStarts) != 4 {
		t.Errorf("series=%d bins=%d", len(ex.Series), len(ex.BinStarts))
	}
	// Bad request.
	body["bins"] = 0
	rec = doJSON(t, s, http.MethodPost, "/api/explore", body)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("zero bins status = %d", rec.Code)
	}
}

func TestRankEndpoint(t *testing.T) {
	s, _ := testServer(t)
	body := map[string]any{
		"layer":    "nbhd",
		"targetId": 2,
		"metrics": []map[string]any{
			{"name": "activity", "dataset": "taxi", "agg": "count"},
			{"name": "fare", "dataset": "taxi", "agg": "avg", "attr": "fare"},
		},
	}
	rec := doJSON(t, s, http.MethodPost, "/api/rank", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var scores []RegionScore
	if err := json.Unmarshal(rec.Body.Bytes(), &scores); err != nil {
		t.Fatal(err)
	}
	if len(scores) != 11 {
		t.Errorf("scores = %d, want 11", len(scores))
	}
	// Bad metric agg.
	body["metrics"] = []map[string]any{{"name": "x", "dataset": "taxi", "agg": "mode"}}
	rec = doJSON(t, s, http.MethodPost, "/api/rank", body)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad agg status = %d", rec.Code)
	}
	// Unknown target.
	body["metrics"] = []map[string]any{{"name": "x", "dataset": "taxi", "agg": "count"}}
	body["targetId"] = 999
	rec = doJSON(t, s, http.MethodPost, "/api/rank", body)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown target status = %d", rec.Code)
	}
}

func TestIndexPage(t *testing.T) {
	s, _ := testServer(t)
	rec := doJSON(t, s, http.MethodGet, "/", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{"Urbane", "/api/mapview", "/api/regions"} {
		if !strings.Contains(body, want) {
			t.Errorf("index page missing %q", want)
		}
	}
	// Unknown paths 404 rather than serving the index — and the 404 is
	// the JSON error envelope, not http.NotFound's text/plain (regression:
	// handleIndex once bypassed writeError for its catch-all).
	rec = doJSON(t, s, http.MethodGet, "/nope", nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("unknown path content type = %q, want JSON envelope", ct)
	}
	var envelope struct {
		Error struct {
			Status  int    `json:"status"`
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
		t.Fatalf("unknown path body is not the JSON envelope: %v\n%s", err, rec.Body.String())
	}
	if envelope.Error.Status != http.StatusNotFound || envelope.Error.Code != "not_found" {
		t.Errorf("envelope = %+v, want status 404 code not_found", envelope.Error)
	}
	if !strings.Contains(envelope.Error.Message, "/nope") {
		t.Errorf("envelope message %q does not name the missing path", envelope.Error.Message)
	}
}

func TestUnknownFieldRejected(t *testing.T) {
	s, _ := testServer(t)
	rec := doJSON(t, s, http.MethodPost, "/api/mapview",
		map[string]any{"dataset": "taxi", "layer": "nbhd", "bogus": 1})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("unknown field status = %d", rec.Code)
	}
}
