package urbane

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/data"
)

// FlowViewRequest drives the taxi-flow view: the origin-destination matrix
// of a trip data set over a region layer, under the usual ad-hoc filters.
// The data set must carry destination columns (data.DropoffXAttr/YAttr).
type FlowViewRequest struct {
	Dataset string
	Layer   string
	Filters []core.Filter
	Time    *core.TimeFilter
	// Top caps the returned edges (0 = 20).
	Top int
}

// FlowEdge is one ranked OD pair.
type FlowEdge struct {
	FromID int    `json:"fromId"`
	ToID   int    `json:"toId"`
	From   string `json:"from"`
	To     string `json:"to"`
	Count  int64  `json:"count"`
}

// FlowView is the flow view payload: the strongest flows plus totals.
type FlowView struct {
	Edges   []FlowEdge    `json:"edges"`
	Total   int64         `json:"total"`
	Dropped int64         `json:"dropped"`
	Elapsed time.Duration `json:"elapsedNs"`
}

// FlowView computes the OD matrix with the raster flow join and returns the
// top edges.
func (f *Framework) FlowView(req FlowViewRequest) (*FlowView, error) {
	return f.FlowViewContext(context.Background(), req)
}

// FlowViewContext is FlowView under the request context.
func (f *Framework) FlowViewContext(ctx context.Context, req FlowViewRequest) (*FlowView, error) {
	ps, ok := f.PointSet(req.Dataset)
	if !ok {
		return nil, fmt.Errorf("urbane: unknown point set %q", req.Dataset)
	}
	rs, ok := f.RegionSet(req.Layer)
	if !ok {
		return nil, fmt.Errorf("urbane: unknown region set %q", req.Layer)
	}
	creq := core.Request{
		Points: ps, Regions: rs, Agg: core.Count,
		Filters: req.Filters, Time: req.Time,
	}
	if err := creq.Validate(); err != nil {
		return nil, err
	}
	top := req.Top
	if top <= 0 {
		top = 20
	}
	start := time.Now()
	res, err := f.rasterJoiner().FlowJoinContext(ctx, creq, data.DropoffXAttr, data.DropoffYAttr)
	if err != nil {
		return nil, err
	}
	view := &FlowView{
		Total:   res.Total(),
		Dropped: res.Dropped,
		Elapsed: time.Since(start),
	}
	for _, fl := range res.Top(top) {
		view.Edges = append(view.Edges, FlowEdge{
			FromID: rs.Regions[fl.From].ID,
			ToID:   rs.Regions[fl.To].ID,
			From:   rs.Regions[fl.From].Name,
			To:     rs.Regions[fl.To].Name,
			Count:  fl.Count,
		})
	}
	return view, nil
}
