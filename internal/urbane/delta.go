package urbane

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/core"
)

// DeltaRequest drives the change view: the same aggregation evaluated over
// two time windows, reported per region as B - A — "how did pickups shift
// from week 1 to week 4?", the temporal comparison the demo's time slider
// invites.
type DeltaRequest struct {
	Dataset string
	Layer   string
	Agg     core.Agg
	Attr    string
	Filters []core.Filter
	// A is the baseline window, B the comparison window.
	A, B core.TimeFilter
}

// DeltaView is the change-map payload: per-region deltas plus the symmetric
// range for a diverging color scale.
type DeltaView struct {
	Layer  string        `json:"layer"`
	Values []RegionValue `json:"values"`
	// MaxAbs is the largest |delta|; color scales span [-MaxAbs, +MaxAbs].
	MaxAbs    float64       `json:"maxAbs"`
	Algorithm string        `json:"algorithm"`
	Elapsed   time.Duration `json:"elapsedNs"`
}

// Delta evaluates both windows (through the planner, so cubes serve aligned
// windows) and returns the per-region differences.
func (f *Framework) Delta(req DeltaRequest) (*DeltaView, error) {
	return f.DeltaContext(context.Background(), req)
}

// DeltaContext is Delta under the request context; each window's execution
// is individually cancelable.
func (f *Framework) DeltaContext(ctx context.Context, req DeltaRequest) (*DeltaView, error) {
	if req.A == req.B {
		return nil, fmt.Errorf("urbane: delta windows are identical")
	}
	ps, ok := f.PointSet(req.Dataset)
	if !ok {
		return nil, fmt.Errorf("urbane: unknown point set %q", req.Dataset)
	}
	rs, ok := f.RegionSet(req.Layer)
	if !ok {
		return nil, fmt.Errorf("urbane: unknown region set %q", req.Layer)
	}
	base := core.Request{
		Points: ps, Regions: rs,
		Agg: req.Agg, Attr: req.Attr, Filters: req.Filters,
	}
	start := time.Now()
	reqA := base
	a := req.A
	reqA.Time = &a
	if err := reqA.Validate(); err != nil {
		return nil, err
	}
	resA, err := f.ExecuteContext(ctx, reqA)
	if err != nil {
		return nil, err
	}
	reqB := base
	b := req.B
	reqB.Time = &b
	resB, err := f.ExecuteContext(ctx, reqB)
	if err != nil {
		return nil, err
	}

	view := &DeltaView{
		Layer:     req.Layer,
		Values:    make([]RegionValue, rs.Len()),
		Algorithm: resA.Algorithm,
		Elapsed:   time.Since(start),
	}
	for k, reg := range rs.Regions {
		d := resB.Value(k, req.Agg) - resA.Value(k, req.Agg)
		view.Values[k] = RegionValue{ID: reg.ID, Name: reg.Name, Value: d}
		if abs := math.Abs(d); abs > view.MaxAbs {
			view.MaxAbs = abs
		}
	}
	return view, nil
}
