package urbane

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
)

// buildTestFramework registers two synthetic data sets and two layers over
// a 1000x1000 world.
func buildTestFramework(t testing.TB) (*Framework, *data.PointSet, *data.RegionSet) {
	t.Helper()
	bounds := geom.BBox{MinX: 0, MinY: 0, MaxX: 1000, MaxY: 1000}
	rng := rand.New(rand.NewSource(77))
	mk := func(name string, n int) *data.PointSet {
		ps := &data.PointSet{Name: name,
			X: make([]float64, n), Y: make([]float64, n), T: make([]int64, n)}
		fares := make([]float64, n)
		for i := 0; i < n; i++ {
			ps.X[i] = rng.Float64() * 1000
			ps.Y[i] = rng.Float64() * 1000
			ps.T[i] = int64(rng.Intn(8 * 3600))
			fares[i] = rng.Float64() * 40
		}
		ps.Attrs = []data.Column{{Name: "fare", Values: fares}}
		ps.SortByTime()
		return ps
	}
	taxi := mk("taxi", 3000)
	c311 := mk("311", 1500)
	nbhd := data.VoronoiRegions("nbhd", bounds, 12, 9, data.VoronoiOptions{JitterFrac: 0.06})
	grid := data.GridRegions("grid", bounds, 4, 4)

	f := New(core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(512)))
	for _, ps := range []*data.PointSet{taxi, c311} {
		if err := f.AddPointSet(ps); err != nil {
			t.Fatal(err)
		}
	}
	for _, rs := range []*data.RegionSet{nbhd, grid} {
		if err := f.AddRegionSet(rs); err != nil {
			t.Fatal(err)
		}
	}
	return f, taxi, nbhd
}

func TestRegistry(t *testing.T) {
	f, taxi, nbhd := buildTestFramework(t)
	if ps, ok := f.PointSet("taxi"); !ok || ps != taxi {
		t.Error("PointSet lookup failed")
	}
	if rs, ok := f.RegionSet("nbhd"); !ok || rs != nbhd {
		t.Error("RegionSet lookup failed")
	}
	if _, ok := f.PointSet("nope"); ok {
		t.Error("unknown point set should miss")
	}
	if len(f.PointSetNames()) != 2 || len(f.RegionSetNames()) != 2 {
		t.Errorf("names = %v / %v", f.PointSetNames(), f.RegionSetNames())
	}
	// Duplicates rejected.
	if err := f.AddPointSet(taxi); err == nil {
		t.Error("duplicate point set should be rejected")
	}
	if err := f.AddRegionSet(nbhd); err == nil {
		t.Error("duplicate region set should be rejected")
	}
	// Invalid inputs rejected.
	if err := f.AddPointSet(&data.PointSet{Name: "bad", X: []float64{1}}); err == nil {
		t.Error("invalid point set should be rejected")
	}
	if err := f.AddPointSet(&data.PointSet{}); err == nil {
		t.Error("unnamed point set should be rejected")
	}
	if err := f.AddRegionSet(&data.RegionSet{}); err == nil {
		t.Error("unnamed region set should be rejected")
	}
	bad := &data.RegionSet{Name: "bad", Regions: []data.Region{{Poly: geom.Polygon{}}}}
	if err := f.AddRegionSet(bad); err == nil {
		t.Error("degenerate region should be rejected")
	}
}

func TestFrameworkQuery(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	exec, err := f.Query("SELECT COUNT(*) FROM taxi, nbhd GROUP BY id")
	if err != nil {
		t.Fatal(err)
	}
	if exec.Result.TotalCount() == 0 {
		t.Error("query found no points")
	}
	if !strings.HasPrefix(exec.Result.Algorithm, "raster-join") {
		t.Errorf("algorithm = %s", exec.Result.Algorithm)
	}
	if _, err := f.Query("SELECT COUNT(*) FROM nope, nbhd"); err == nil {
		t.Error("unknown data set should fail")
	}
}

func TestFrameworkCubeRouting(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	if _, err := f.BuildCube("taxi", "nbhd", 3600, []string{"fare"}); err != nil {
		t.Fatal(err)
	}
	exec, err := f.Query("SELECT COUNT(*) FROM taxi, nbhd")
	if err != nil {
		t.Fatal(err)
	}
	if exec.Result.Algorithm != "pre-aggregation-cube" {
		t.Errorf("canned query used %s, want cube", exec.Result.Algorithm)
	}
	// Ad-hoc filter cannot use the cube.
	exec, err = f.Query("SELECT COUNT(*) FROM taxi, nbhd WHERE fare BETWEEN 5 AND 20")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(exec.Result.Algorithm, "raster-join") {
		t.Errorf("ad-hoc query used %s, want raster join", exec.Result.Algorithm)
	}
	// Cube build errors.
	if _, err := f.BuildCube("nope", "nbhd", 0, nil); err == nil {
		t.Error("unknown dataset should fail cube build")
	}
	if _, err := f.BuildCube("taxi", "nope", 0, nil); err == nil {
		t.Error("unknown layer should fail cube build")
	}
}

func TestMapView(t *testing.T) {
	f, taxi, _ := buildTestFramework(t)
	ch, err := f.MapView(MapViewRequest{Dataset: "taxi", Layer: "nbhd", Agg: core.Count})
	if err != nil {
		t.Fatal(err)
	}
	if len(ch.Values) != 12 {
		t.Fatalf("choropleth has %d values, want 12", len(ch.Values))
	}
	var total float64
	for _, v := range ch.Values {
		total += v.Value
		if v.Value < ch.Min-1e-9 || v.Value > ch.Max+1e-9 {
			t.Errorf("value %v outside [%v,%v]", v.Value, ch.Min, ch.Max)
		}
	}
	// All points fall inside the jittered partition, up to boundary ties.
	if math.Abs(total-float64(taxi.Len())) > float64(taxi.Len())/20 {
		t.Errorf("total = %v, want ~%d", total, taxi.Len())
	}
	if ch.Elapsed <= 0 || ch.Algorithm == "" {
		t.Error("metadata missing")
	}
	// Errors.
	if _, err := f.MapView(MapViewRequest{Dataset: "nope", Layer: "nbhd"}); err == nil {
		t.Error("unknown data set should fail")
	}
	if _, err := f.MapView(MapViewRequest{Dataset: "taxi", Layer: "nope"}); err == nil {
		t.Error("unknown layer should fail")
	}
	if _, err := f.MapView(MapViewRequest{Dataset: "taxi", Layer: "nbhd",
		Agg: core.Sum, Attr: "nope"}); err == nil {
		t.Error("bad attribute should fail")
	}
}

func TestMapViewFiltersChangeResult(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	all, err := f.MapView(MapViewRequest{Dataset: "taxi", Layer: "nbhd", Agg: core.Count})
	if err != nil {
		t.Fatal(err)
	}
	cheap, err := f.MapView(MapViewRequest{Dataset: "taxi", Layer: "nbhd", Agg: core.Count,
		Filters: []core.Filter{{Attr: "fare", Min: 0, Max: 10}}})
	if err != nil {
		t.Fatal(err)
	}
	var totalAll, totalCheap float64
	for k := range all.Values {
		totalAll += all.Values[k].Value
		totalCheap += cheap.Values[k].Value
	}
	if totalCheap >= totalAll {
		t.Errorf("filtered total %v should be < unfiltered %v", totalCheap, totalAll)
	}
	if totalCheap == 0 {
		t.Error("filter swallowed everything")
	}
}

func TestExplore(t *testing.T) {
	f, _, nbhd := buildTestFramework(t)
	req := ExplorationRequest{
		Datasets: []string{"taxi", "311"},
		Layer:    "nbhd",
		Agg:      core.Count,
		Start:    0, End: 8 * 3600, Bins: 8,
		RegionIDs: []int{nbhd.Regions[0].ID, nbhd.Regions[3].ID},
	}
	ex, err := f.Explore(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.BinStarts) != 8 {
		t.Fatalf("bins = %d", len(ex.BinStarts))
	}
	if len(ex.Series) != 4 { // 2 data sets x 2 regions
		t.Fatalf("series = %d, want 4", len(ex.Series))
	}
	for _, s := range ex.Series {
		if len(s.Values) != 8 {
			t.Fatalf("series %s/%d has %d values", s.Dataset, s.RegionID, len(s.Values))
		}
	}
	// Bin totals for one region must equal the untimed count for it.
	ch, _ := f.MapView(MapViewRequest{Dataset: "taxi", Layer: "nbhd", Agg: core.Count})
	var fromSeries float64
	for _, s := range ex.Series {
		if s.Dataset == "taxi" && s.RegionID == nbhd.Regions[0].ID {
			for _, v := range s.Values {
				fromSeries += v
			}
		}
	}
	if fromSeries != ch.Values[0].Value {
		t.Errorf("series total %v != map view value %v", fromSeries, ch.Values[0].Value)
	}
	// Errors.
	if _, err := f.Explore(ExplorationRequest{Datasets: []string{"taxi"}, Layer: "nbhd",
		Start: 0, End: 100, Bins: 0}); err == nil {
		t.Error("zero bins should fail")
	}
	if _, err := f.Explore(ExplorationRequest{Datasets: []string{"taxi"}, Layer: "nbhd",
		Start: 100, End: 100, Bins: 2}); err == nil {
		t.Error("empty range should fail")
	}
	if _, err := f.Explore(ExplorationRequest{Datasets: []string{"nope"}, Layer: "nbhd",
		Start: 0, End: 100, Bins: 2}); err == nil {
		t.Error("unknown data set should fail")
	}
	req.RegionIDs = []int{99999}
	if _, err := f.Explore(req); err == nil {
		t.Error("unknown region id should fail")
	}
}

// The exploration view's series fast path must agree with the per-bin
// fallback path. An epsilon-mode raster joiner cannot build the fragment
// cache, forcing the fallback, so the same request through both framework
// configurations must match.
func TestExploreFastPathMatchesFallback(t *testing.T) {
	build := func(rj *core.RasterJoin) *Framework {
		f := New(rj)
		// Reuse the standard test data deterministically.
		f2, _, _ := buildTestFramework(t)
		taxi, _ := f2.PointSet("taxi")
		nbhd, _ := f2.RegionSet("nbhd")
		if err := f.AddPointSet(taxi); err != nil {
			t.Fatal(err)
		}
		if err := f.AddRegionSet(nbhd); err != nil {
			t.Fatal(err)
		}
		return f
	}
	req := ExplorationRequest{
		Datasets: []string{"taxi"}, Layer: "nbhd", Agg: core.Count,
		Start: 0, End: 8 * 3600, Bins: 6,
		RegionIDs: []int{0, 1},
	}
	// Fast path: resolution mode, approximate.
	fast := build(core.NewRasterJoin(core.WithResolution(512)))
	a, err := fast.Explore(req)
	if err != nil {
		t.Fatal(err)
	}
	// Fallback: epsilon mode makes SeriesJoin fail; per-bin joins at the
	// equivalent pixel size take over.
	slow := build(core.NewRasterJoin(core.WithEpsilon(1000.0 / 512 * 1.415)))
	b, err := slow.Explore(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Series) != len(b.Series) {
		t.Fatalf("series: %d vs %d", len(a.Series), len(b.Series))
	}
	// Totals agree closely (canvases differ by rounding, so allow the
	// boundary-pixel wiggle).
	var ta, tb float64
	for i := range a.Series {
		for b2 := range a.Series[i].Values {
			ta += a.Series[i].Values[b2]
			tb += b.Series[i].Values[b2]
		}
	}
	if ta == 0 || tb == 0 {
		t.Fatal("empty exploration")
	}
	diff := ta - tb
	if diff < 0 {
		diff = -diff
	}
	if diff > ta/50 {
		t.Errorf("paths diverged: fast total %v vs fallback %v", ta, tb)
	}
}

// The framework serves concurrent view requests (the demo's many-clients
// case); results must match the serial answers.
func TestConcurrentViews(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	want, err := f.MapView(MapViewRequest{Dataset: "taxi", Layer: "nbhd", Agg: core.Count})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			for i := 0; i < 5; i++ {
				ch, err := f.MapView(MapViewRequest{Dataset: "taxi", Layer: "nbhd", Agg: core.Count})
				if err != nil {
					errs <- err
					return
				}
				for k := range ch.Values {
					if ch.Values[k].Value != want.Values[k].Value {
						errs <- fmt.Errorf("concurrent result diverged at region %d", k)
						return
					}
				}
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

func TestRankSimilar(t *testing.T) {
	f, _, nbhd := buildTestFramework(t)
	metrics := []MetricSpec{
		{Name: "activity", Dataset: "taxi", Agg: core.Count},
		{Name: "avg-fare", Dataset: "taxi", Agg: core.Avg, Attr: "fare"},
		{Name: "complaints", Dataset: "311", Agg: core.Count},
	}
	target := nbhd.Regions[2].ID
	scores, err := f.RankSimilar("nbhd", target, metrics)
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != nbhd.Len()-1 {
		t.Fatalf("scores = %d, want %d", len(scores), nbhd.Len()-1)
	}
	for i := 1; i < len(scores); i++ {
		if scores[i-1].Distance > scores[i].Distance {
			t.Fatal("scores not sorted by distance")
		}
	}
	for _, s := range scores {
		if s.ID == target {
			t.Error("target should be excluded from its own ranking")
		}
		if len(s.Values) != len(metrics) {
			t.Errorf("score %d has %d features", s.ID, len(s.Values))
		}
	}
	// Errors.
	if _, err := f.RankSimilar("nbhd", target, nil); err == nil {
		t.Error("no metrics should fail")
	}
	if _, err := f.RankSimilar("nope", target, metrics); err == nil {
		t.Error("unknown layer should fail")
	}
	if _, err := f.RankSimilar("nbhd", 12345, metrics); err == nil {
		t.Error("unknown target should fail")
	}
	bad := []MetricSpec{{Name: "x", Dataset: "nope", Agg: core.Count}}
	if _, err := f.RankSimilar("nbhd", target, bad); err == nil {
		t.Error("unknown metric data set should fail")
	}
}
