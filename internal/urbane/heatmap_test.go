package urbane

import (
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/geom"
)

func TestHeatmapBasics(t *testing.T) {
	f, taxi, _ := buildTestFramework(t)
	hm, err := f.Heatmap(HeatmapRequest{Dataset: "taxi", W: 64})
	if err != nil {
		t.Fatal(err)
	}
	if hm.W != 64 || hm.H < 1 {
		t.Fatalf("dims = %dx%d", hm.W, hm.H)
	}
	if len(hm.Counts) != hm.W*hm.H {
		t.Fatalf("counts len = %d", len(hm.Counts))
	}
	// Every point lands somewhere: total equals the point count.
	if hm.Total != float64(taxi.Len()) {
		t.Errorf("total = %v, want %d", hm.Total, taxi.Len())
	}
	if hm.Max <= 0 || hm.Max > hm.Total {
		t.Errorf("max = %v", hm.Max)
	}
}

func TestHeatmapFiltersAndWeight(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	all, err := f.Heatmap(HeatmapRequest{Dataset: "taxi", W: 32})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := f.Heatmap(HeatmapRequest{Dataset: "taxi", W: 32,
		Filters: []core.Filter{{Attr: "fare", Min: 0, Max: 10}},
		Time:    &core.TimeFilter{Start: 0, End: 4 * 3600}})
	if err != nil {
		t.Fatal(err)
	}
	if filtered.Total >= all.Total || filtered.Total == 0 {
		t.Errorf("filtered total %v vs all %v", filtered.Total, all.Total)
	}
	// Weighted heatmap: total equals the sum of fares.
	weighted, err := f.Heatmap(HeatmapRequest{Dataset: "taxi", W: 32, Weight: "fare"})
	if err != nil {
		t.Fatal(err)
	}
	ps, _ := f.PointSet("taxi")
	var want float64
	for _, v := range ps.Attr("fare") {
		want += v
	}
	if diff := weighted.Total - want; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("weighted total %v, want %v", weighted.Total, want)
	}
}

func TestHeatmapCrop(t *testing.T) {
	f, taxi, _ := buildTestFramework(t)
	crop := geom.BBox{MinX: 0, MinY: 0, MaxX: 500, MaxY: 500}
	hm, err := f.Heatmap(HeatmapRequest{Dataset: "taxi", W: 32, H: 32, Bounds: crop})
	if err != nil {
		t.Fatal(err)
	}
	// Only points inside the crop are rendered.
	in := 0
	for i := range taxi.X {
		if crop.Contains(geom.Pt(taxi.X[i], taxi.Y[i])) {
			in++
		}
	}
	if hm.Total != float64(in) {
		t.Errorf("cropped total %v, want %d", hm.Total, in)
	}
}

func TestHeatmapErrors(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	cases := []HeatmapRequest{
		{Dataset: "nope"},
		{Dataset: "taxi", Weight: "nope"},
		{Dataset: "taxi", Filters: []core.Filter{{Attr: "nope"}}},
		{Dataset: "taxi", W: 1 << 20},
	}
	for i, req := range cases {
		if _, err := f.Heatmap(req); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
	// Time filter on an atemporal set.
	noT := &data.PointSet{Name: "noT", X: []float64{1}, Y: []float64{2}}
	if err := f.AddPointSet(noT); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Heatmap(HeatmapRequest{Dataset: "noT",
		Time: &core.TimeFilter{Start: 0, End: 1}}); err == nil {
		t.Error("time filter without timestamps should fail")
	}
}

func TestHeatmapEndpoint(t *testing.T) {
	s, _ := testServer(t)
	rec := doJSON(t, s, http.MethodPost, "/api/heatmap",
		map[string]any{"dataset": "taxi", "w": 16})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var hm Heatmap
	if err := json.Unmarshal(rec.Body.Bytes(), &hm); err != nil {
		t.Fatal(err)
	}
	if hm.W != 16 || len(hm.Counts) != hm.W*hm.H {
		t.Errorf("heatmap = %dx%d with %d cells", hm.W, hm.H, len(hm.Counts))
	}
	rec = doJSON(t, s, http.MethodPost, "/api/heatmap", map[string]any{"dataset": "nope"})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad dataset status = %d", rec.Code)
	}
}

func TestRegionsEndpoint(t *testing.T) {
	s, f := testServer(t)
	req := doJSON(t, s, http.MethodGet, "/api/regions?layer=nbhd", nil)
	if req.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", req.Code, req.Body)
	}
	got, err := data.ReadGeoJSON(req.Body, "nbhd")
	if err != nil {
		t.Fatal(err)
	}
	rs, _ := f.RegionSet("nbhd")
	if got.Len() != rs.Len() {
		t.Errorf("regions = %d, want %d", got.Len(), rs.Len())
	}
	// Unknown layer.
	if rec := doJSON(t, s, http.MethodGet, "/api/regions?layer=nope", nil); rec.Code != http.StatusNotFound {
		t.Errorf("unknown layer status = %d", rec.Code)
	}
	// Wrong method.
	if rec := doJSON(t, s, http.MethodPost, "/api/regions?layer=nbhd", nil); rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d", rec.Code)
	}
}
