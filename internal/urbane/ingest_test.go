package urbane

// Append-while-query smoke: a writer streams time-ordered appends through
// POST /api/append while readers hammer the cached endpoints across every
// execution path the append touches — the slab fold (timed windows), the
// geoblocks hierarchy (untimed choropleths), tiles, and ad-hoc statements.
// Run under -race via `make ingest-smoke`. Readers assert a linearization
// invariant: the total count over a layer covering every point is
// non-decreasing (appends only add points), and once the writer finishes it
// equals the initial total plus everything appended.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

// silentJSON is doJSON without *testing.T, usable from worker goroutines.
func silentJSON(s *Server, method, path string, body any) (*httptest.ResponseRecorder, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return nil, err
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec, nil
}

func gridTotal(s *Server) (float64, error) {
	rec, err := silentJSON(s, http.MethodPost, "/api/mapview",
		map[string]any{"dataset": "taxi", "layer": "grid", "agg": "count"})
	if err != nil {
		return 0, err
	}
	if rec.Code != http.StatusOK {
		return 0, fmt.Errorf("grid mapview status %d: %s", rec.Code, rec.Body)
	}
	var ch Choropleth
	if err := json.Unmarshal(rec.Body.Bytes(), &ch); err != nil {
		return 0, err
	}
	total := 0.0
	for _, v := range ch.Values {
		total += v.Value
	}
	return total, nil
}

func TestIngestSmoke(t *testing.T) {
	f, _, _ := buildTestFramework(t)
	f.EnableGeoBlocks(6)
	f.EnableIncremental(3600, 0, 0)
	s := NewServer(f, WithTimeSnap(3600))

	const (
		batches   = 30
		batchSize = 25
		readers   = 4
	)
	initial, err := gridTotal(s)
	if err != nil {
		t.Fatal(err)
	}

	errs := make(chan error, readers+1)
	writerDone := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: time-ordered batches through the ingest endpoint.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(writerDone)
		taxi, _ := f.PointSet("taxi")
		next := taxi.T[taxi.Len()-1] + 1
		for b := 0; b < batches; b++ {
			rec, err := silentJSON(s, http.MethodPost, "/api/append",
				appendBody("taxi", batchSize, next))
			if err != nil {
				errs <- err
				return
			}
			if rec.Code != http.StatusOK {
				errs <- fmt.Errorf("append batch %d: status %d: %s", b, rec.Code, rec.Body)
				return
			}
			next += batchSize
		}
		errs <- nil
	}()

	// Readers: cycle the execution paths; the grid total must never shrink.
	reads := []struct {
		method, path string
		body         any
	}{
		{http.MethodPost, "/api/mapview", map[string]any{
			"dataset": "taxi", "layer": "nbhd", "agg": "count",
			"time": map[string]int64{"start": 4 * 3600, "end": 8 * 3600}}},
		{http.MethodPost, "/api/mapview", map[string]any{
			"dataset": "taxi", "layer": "nbhd", "agg": "avg", "attr": "fare"}},
		{http.MethodGet, "/api/tile/1/0/0.png?dataset=taxi", nil},
		{http.MethodPost, "/api/query", map[string]string{
			"stmt": "SELECT COUNT(*) FROM taxi, nbhd GROUP BY id"}},
		{http.MethodPost, "/api/mapview", map[string]any{
			"dataset": "311", "layer": "grid", "agg": "count"}},
	}
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			last := initial
			for i := 0; ; i++ {
				select {
				case <-writerDone:
					errs <- nil
					return
				default:
				}
				q := reads[(i+w)%len(reads)]
				rec, err := silentJSON(s, q.method, q.path, q.body)
				if err != nil {
					errs <- err
					return
				}
				if rec.Code != http.StatusOK {
					errs <- fmt.Errorf("reader %d: %s %s: status %d: %s",
						w, q.method, q.path, rec.Code, rec.Body)
					return
				}
				total, err := gridTotal(s)
				if err != nil {
					errs <- err
					return
				}
				if total < last {
					errs <- fmt.Errorf("reader %d: total count shrank %v -> %v under append-only ingest",
						w, last, total)
					return
				}
				last = total
			}
		}(w)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	final, err := gridTotal(s)
	if err != nil {
		t.Fatal(err)
	}
	if want := initial + batches*batchSize; final != want {
		t.Fatalf("final total = %v, want %v (initial %v + %d appended)",
			final, want, initial, batches*batchSize)
	}
	// The incremental machinery actually engaged during the soak.
	if sj := f.Incremental(); sj.SlabsRecomputed() == 0 {
		t.Error("slab fold never engaged")
	}
}
