package urbane

import (
	"bytes"
	"image/png"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/workload"
)

// TestDemoSessionEndToEnd drives the whole demonstration as one session:
// realistic NYC data through registration, cube materialization, SQL
// routing, and every view — asserting the cross-view consistencies a demo
// visitor would implicitly rely on.
func TestDemoSessionEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end session is not -short")
	}
	scene := workload.NYC(30_000, 1234)
	c311 := data.Generate(data.NYC311Config(8_000, 2009, time.January, 1235))

	f := New(core.NewRasterJoin(core.WithMode(core.Accurate), core.WithResolution(512)))
	for _, err := range []error{
		f.AddPointSet(scene.Taxi),
		f.AddPointSet(c311),
		f.AddRegionSet(scene.Neighborhoods),
		f.AddRegionSet(scene.Grid),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.BuildCube("taxi", "neighborhoods", 86400, []string{"fare"}); err != nil {
		t.Fatal(err)
	}

	// 1. Canned SQL goes to the cube; the ad-hoc variant goes to raster —
	// and the unfiltered counts agree between engines.
	canned, err := f.Query("SELECT COUNT(*) FROM taxi, neighborhoods GROUP BY id")
	if err != nil {
		t.Fatal(err)
	}
	if canned.Result.Algorithm != "pre-aggregation-cube" {
		t.Fatalf("canned routed to %s", canned.Result.Algorithm)
	}
	adhoc, err := f.Query("SELECT COUNT(*) FROM taxi, neighborhoods WHERE fare BETWEEN 0 AND 100000 GROUP BY id")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(adhoc.Result.Algorithm, "raster-join-accurate") {
		t.Fatalf("ad-hoc routed to %s", adhoc.Result.Algorithm)
	}
	for k := range canned.Result.Stats {
		if canned.Result.Stats[k].Count != adhoc.Result.Stats[k].Count {
			t.Fatalf("region %d: cube %d vs raster %d — engines disagree",
				k, canned.Result.Stats[k].Count, adhoc.Result.Stats[k].Count)
		}
	}

	// 2. Map view totals equal the SQL result.
	jan := workload.Jan2009()
	ch, err := f.MapView(MapViewRequest{Dataset: "taxi", Layer: "neighborhoods",
		Agg: core.Count, Time: jan})
	if err != nil {
		t.Fatal(err)
	}
	var chTotal float64
	for _, v := range ch.Values {
		chTotal += v.Value
	}
	if int64(chTotal) != canned.Result.TotalCount() {
		t.Fatalf("map view total %v != SQL total %d", chTotal, canned.Result.TotalCount())
	}

	// 3. Exploration series for every region sum back to the map view.
	ex, err := f.Explore(ExplorationRequest{
		Datasets: []string{"taxi"}, Layer: "neighborhoods", Agg: core.Count,
		Start: jan.Start, End: jan.End, Bins: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	seriesTotal := 0.0
	for _, s := range ex.Series {
		for _, v := range s.Values {
			seriesTotal += v
		}
	}
	if seriesTotal != chTotal {
		t.Fatalf("exploration total %v != map view total %v", seriesTotal, chTotal)
	}

	// 4. Delta over two halves of the month reconciles with the full month.
	mid := (jan.Start + jan.End) / 2
	delta, err := f.Delta(DeltaRequest{Dataset: "taxi", Layer: "neighborhoods",
		Agg: core.Count,
		A:   core.TimeFilter{Start: jan.Start, End: mid},
		B:   core.TimeFilter{Start: mid, End: jan.End}})
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := f.MapView(MapViewRequest{Dataset: "taxi", Layer: "neighborhoods",
		Agg: core.Count, Time: &core.TimeFilter{Start: jan.Start, End: mid}})
	for k := range delta.Values {
		if got, want := delta.Values[k].Value, ch.Values[k].Value-2*h1.Values[k].Value; got != want {
			t.Fatalf("region %d delta %v != month-2*firstHalf %v", k, got, want)
		}
	}

	// 5. Flow view resolves most trips and its total never exceeds the
	// filtered point count.
	fl, err := f.FlowView(FlowViewRequest{Dataset: "taxi", Layer: "neighborhoods", Top: 5})
	if err != nil {
		t.Fatal(err)
	}
	if fl.Total+fl.Dropped != int64(scene.Taxi.Len()) {
		t.Fatalf("flow total %d + dropped %d != %d points",
			fl.Total, fl.Dropped, scene.Taxi.Len())
	}
	if fl.Total < int64(scene.Taxi.Len())/2 {
		t.Fatalf("flow resolved only %d of %d", fl.Total, scene.Taxi.Len())
	}

	// 6. Heatmap conserves the point count.
	hm, err := f.Heatmap(HeatmapRequest{Dataset: "taxi", W: 128})
	if err != nil {
		t.Fatal(err)
	}
	if hm.Total != float64(scene.Taxi.Len()) {
		t.Fatalf("heatmap total %v != %d points", hm.Total, scene.Taxi.Len())
	}

	// 7. Ranking runs over both data sets and excludes the target.
	target := scene.Neighborhoods.Regions[0].ID
	scores, err := f.RankSimilar("neighborhoods", target, []MetricSpec{
		{Name: "activity", Dataset: "taxi", Agg: core.Count},
		{Name: "complaints", Dataset: "311", Agg: core.Count},
		{Name: "avg fare", Dataset: "taxi", Agg: core.Avg, Attr: "fare"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(scores) != scene.Neighborhoods.Len()-1 {
		t.Fatalf("scores = %d", len(scores))
	}

	// 8. The rendered choropleth decodes as a PNG of the right size.
	pngBytes, err := f.RenderChoropleth(MapViewRequest{Dataset: "taxi",
		Layer: "neighborhoods", Agg: core.Count}, 320)
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(bytes.NewReader(pngBytes))
	if err != nil {
		t.Fatal(err)
	}
	if img.Bounds().Dx() != 320 {
		t.Fatalf("choropleth width %d", img.Bounds().Dx())
	}

	// 9. MIN/MAX SQL works end to end and respects the fare distribution.
	maxQ, err := f.Query("SELECT MAX(fare) FROM taxi, neighborhoods")
	if err != nil {
		t.Fatal(err)
	}
	fares := scene.Taxi.Attr("fare")
	best := 0.0
	for _, v := range fares {
		if v > best {
			best = v
		}
	}
	gotBest := 0.0
	for k := range maxQ.Result.Stats {
		if v := maxQ.Result.Value(k, core.Max); v > gotBest {
			gotBest = v
		}
	}
	if gotBest != best {
		t.Fatalf("global max fare via regions %v != data max %v", gotBest, best)
	}
}
