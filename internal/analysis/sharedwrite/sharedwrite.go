// Package sharedwrite flags unsynchronized writes to captured variables
// inside goroutine fan-out loops — the dominant concurrency pattern in the
// raster-join kernels:
//
//	for s := 0; s < n; s += shard {
//		go func() {
//			results = append(results, ...) // BAD: shared slice header
//			counts[key]++                  // BAD: shared map / aliased index
//			part[i] = ...                  // OK: i is goroutine-local
//		}()
//	}
//
// A write is reported when the target's root variable is declared outside
// the goroutine's function literal, unless
//
//   - the written index is derived from a goroutine-local variable or from
//     a loop variable of an enclosing loop (per-iteration since Go 1.22),
//     which makes the index space partitioned across goroutines, or
//   - the function literal takes a mutex (a Lock/RLock call anywhere in its
//     body), in which case the whole goroutine is assumed guarded.
//
// Map writes are always reported: distinct keys do not make concurrent map
// access safe.
package sharedwrite

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the sharedwrite check.
var Analyzer = &framework.Analyzer{
	Name: "sharedwrite",
	Doc:  "flags unsynchronized writes to captured variables inside goroutine fan-out loops",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		var loops []map[types.Object]bool
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if isLoop(top) {
					loops = loops[:len(loops)-1]
				}
				return true
			}
			stack = append(stack, n)
			switch s := n.(type) {
			case *ast.ForStmt:
				loops = append(loops, loopVars(pass, s.Init))
			case *ast.RangeStmt:
				loops = append(loops, rangeVars(pass, s))
			case *ast.GoStmt:
				if lit, ok := s.Call.Fun.(*ast.FuncLit); ok && len(loops) > 0 {
					checkGoroutine(pass, lit, loops)
				}
			}
			return true
		})
	}
	return nil
}

func isLoop(n ast.Node) bool {
	switch n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		return true
	}
	return false
}

func loopVars(pass *framework.Pass, init ast.Stmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	if as, ok := init.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := pass.ObjectOf(id); obj != nil {
					vars[obj] = true
				}
			}
		}
	}
	return vars
}

func rangeVars(pass *framework.Pass, s *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{s.Key, s.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := pass.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

func checkGoroutine(pass *framework.Pass, lit *ast.FuncLit, loops []map[types.Object]bool) {
	if holdsLock(pass, lit) {
		return
	}
	loopVarSet := make(map[types.Object]bool)
	for _, l := range loops {
		for o := range l {
			loopVarSet[o] = true
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				checkWrite(pass, lit, loopVarSet, lhs)
			}
		case *ast.IncDecStmt:
			checkWrite(pass, lit, loopVarSet, s.X)
		}
		return true
	})
}

// holdsLock reports whether the goroutine body calls Lock or RLock on a
// sync mutex anywhere — a coarse signal that its shared writes are guarded.
func holdsLock(pass *framework.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if t := pass.TypeOf(sel.X); t != nil && !isSyncLocker(t) {
			return true
		}
		found = true
		return false
	})
	return found
}

func isSyncLocker(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := n.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

func checkWrite(pass *framework.Pass, lit *ast.FuncLit, loopVarSet map[types.Object]bool, target ast.Expr) {
	target = unparen(target)
	switch e := target.(type) {
	case *ast.Ident:
		obj := pass.ObjectOf(e)
		if !captured(obj, lit) || loopVarSet[obj] {
			return
		}
		pass.Reportf(e.Pos(), "goroutine in fan-out loop assigns to captured variable %q; give each goroutine its own accumulator or guard the write", e.Name)
	case *ast.IndexExpr:
		root := rootIdent(e.X)
		if root == nil {
			return
		}
		obj := pass.ObjectOf(root)
		if !captured(obj, lit) {
			return
		}
		if isMap(pass.TypeOf(e.X)) {
			pass.Reportf(e.Pos(), "goroutine in fan-out loop writes to captured map %q; concurrent map writes race even on distinct keys — guard with a mutex or merge per-goroutine maps", root.Name)
			return
		}
		if partitionedIndex(pass, lit, loopVarSet, e.Index) {
			return
		}
		pass.Reportf(e.Pos(), "goroutine in fan-out loop writes %q at an index that is not goroutine-local; partition the index range per goroutine or guard the write", root.Name)
	case *ast.SelectorExpr:
		root := rootIdent(e.X)
		if root == nil {
			return
		}
		if obj := pass.ObjectOf(root); captured(obj, lit) && !indexPartitionedChain(pass, lit, loopVarSet, e.X) {
			pass.Reportf(e.Pos(), "goroutine in fan-out loop writes field %s of captured variable %q without synchronization", e.Sel.Name, root.Name)
		}
	case *ast.StarExpr:
		if root := rootIdent(e.X); root != nil {
			if obj := pass.ObjectOf(root); captured(obj, lit) {
				pass.Reportf(e.Pos(), "goroutine in fan-out loop writes through captured pointer %q without synchronization", root.Name)
			}
		}
	}
}

// captured reports whether obj is a variable declared outside lit (and thus
// shared between every goroutine the loop launches).
func captured(obj types.Object, lit *ast.FuncLit) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.Name() == "_" {
		return false
	}
	return obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()
}

// partitionedIndex reports whether idx depends on at least one
// goroutine-local variable or enclosing loop variable — the signature of a
// partitioned index space like part[i] with i passed in or derived from an
// atomic cursor.
func partitionedIndex(pass *framework.Pass, lit *ast.FuncLit, loopVarSet map[types.Object]bool, idx ast.Expr) bool {
	ok := false
	ast.Inspect(idx, func(n ast.Node) bool {
		id, isIdent := n.(*ast.Ident)
		if !isIdent {
			return true
		}
		obj := pass.ObjectOf(id)
		if _, isVar := obj.(*types.Var); !isVar {
			return true
		}
		if loopVarSet[obj] || !captured(obj, lit) {
			ok = true
			return false
		}
		return true
	})
	return ok
}

// indexPartitionedChain reports whether the selector base is an index
// expression whose index is goroutine-local (part[i].Count++ with local i).
func indexPartitionedChain(pass *framework.Pass, lit *ast.FuncLit, loopVarSet map[types.Object]bool, base ast.Expr) bool {
	base = unparen(base)
	if ix, ok := base.(*ast.IndexExpr); ok {
		return partitionedIndex(pass, lit, loopVarSet, ix.Index)
	}
	return false
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
