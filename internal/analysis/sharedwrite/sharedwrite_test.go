package sharedwrite_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sharedwrite"
)

func TestSharedWrite(t *testing.T) {
	analysistest.Run(t, sharedwrite.Analyzer, "a")
}
