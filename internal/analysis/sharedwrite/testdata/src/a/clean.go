// Fixture: the repaired patterns — none of these may be flagged.
package a

import (
	"sync"
	"sync/atomic"
)

// Partitioned by the loop variable (per-iteration since Go 1.22): every
// goroutine owns a distinct slot.
func partitionedByLoopVar(items []int) []int {
	out := make([]int, len(items))
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out[i] = it * 2
		}()
	}
	wg.Wait()
	return out
}

// Partitioned by a parameter: the classic shard fan-out used by the
// raster-join kernels.
func partitionedByParam(items []float64) []float64 {
	sums := make([]float64, len(items))
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sums[i] = items[i] * 2
		}(i)
	}
	wg.Wait()
	return sums
}

// Partitioned by an atomic cursor: the index is goroutine-local even though
// the slice is shared.
func atomicCursor(n int, stats []int64) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				k := int(next.Add(1)) - 1
				if k >= n {
					return
				}
				stats[k]++
			}
		}()
	}
	wg.Wait()
}

// Guarded by a mutex: the goroutine takes a lock, so writes are assumed
// synchronized.
func mutexGuarded(items []int) int {
	var mu sync.Mutex
	total := 0
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			mu.Lock()
			total += it
			mu.Unlock()
		}(it)
	}
	wg.Wait()
	return total
}

// Per-goroutine accumulator merged after Wait: shared state is only touched
// by the parent.
func partialMerge(items []int) int {
	parts := make([]int, 4)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := 0
			for _, it := range items {
				local += it
			}
			parts[w] = local
		}(w)
	}
	wg.Wait()
	total := 0
	for _, p := range parts {
		total += p
	}
	return total
}

// Per-worker shard matrix, the parallel point pass pattern: worker t owns
// every slot buckets[w*workers+t] for its own t, so concurrent appends
// never alias; the parent reads only after Wait.
func shardMatrixMerge(items []int, workers int) []int {
	buckets := make([][]int, workers*workers)
	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			for w := 0; w < workers; w++ {
				for _, it := range items {
					if it%workers == t {
						buckets[w*workers+t] = append(buckets[w*workers+t], it)
					}
				}
			}
		}(t)
	}
	wg.Wait()
	var merged []int
	for _, b := range buckets {
		merged = append(merged, b...)
	}
	return merged
}

// Suppressed: an audited intentional pattern stays quiet under
// //lint:ignore with a reason.
func suppressed(items []int) int {
	done := make(chan struct{})
	total := 0
	for _, it := range items {
		it := it
		go func() {
			//lint:ignore sharedwrite audited: single goroutine drains before close
			total += it
			done <- struct{}{}
		}()
		<-done
	}
	return total
}
