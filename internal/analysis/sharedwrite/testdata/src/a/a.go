// Fixture: writes that sharedwrite must flag.
package a

import "sync"

func appendShared(items []int) []int {
	var out []int
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			out = append(out, it*2) // want "assigns to captured variable \"out\""
		}(it)
	}
	wg.Wait()
	return out
}

func mapShared(items []string) map[string]int {
	counts := make(map[string]int)
	var wg sync.WaitGroup
	for i, it := range items {
		wg.Add(1)
		go func(i int, it string) {
			defer wg.Done()
			counts[it] = i // want "writes to captured map \"counts\""
		}(i, it)
	}
	wg.Wait()
	return counts
}

func sharedIndex(items []float64) float64 {
	sums := make([]float64, 1)
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it float64) {
			defer wg.Done()
			sums[0] += it // want "writes \"sums\" at an index that is not goroutine-local"
		}(it)
	}
	wg.Wait()
	return sums[0]
}

func scalarShared(items []int) int {
	total := 0
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			total += it // want "assigns to captured variable \"total\""
		}(it)
	}
	wg.Wait()
	return total
}

type stat struct {
	Count int64
	Sum   float64
}

func fieldShared(items []float64) stat {
	var s stat
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it float64) {
			defer wg.Done()
			s.Count++      // want "writes field Count of captured variable \"s\""
			s.Sum += it    // want "writes field Sum of captured variable \"s\""
		}(it)
	}
	wg.Wait()
	return s
}

func pointerShared(items []int, dst *int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func(it int) {
			defer wg.Done()
			*dst = it // want "writes through captured pointer \"dst\""
		}(it)
	}
	wg.Wait()
}
