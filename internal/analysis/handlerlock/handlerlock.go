// Package handlerlock flags HTTP handlers that touch mutex-guarded state
// directly. The urbane server's Framework fields are mutated at runtime
// (AddPointSet/BuildCube) under a sync.RWMutex; a handler doing
//
//	func (s *Server) handleX(w http.ResponseWriter, r *http.Request) {
//		ps := s.f.points[name] // BAD: bypasses f.mu
//	}
//
// races with registration. The check: inside any function with the
// (http.ResponseWriter, *http.Request) handler signature, a direct field
// access on a struct that also carries a sync.Mutex/RWMutex field is
// reported — unless the handler takes a lock itself (any Lock/RLock call
// in its body switches the check off for that handler, on the assumption
// that locking there was designed). Method calls are always fine: the
// accessor is expected to lock internally.
package handlerlock

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the handlerlock check.
var Analyzer = &framework.Analyzer{
	Name: "handlerlock",
	Doc:  "flags HTTP handlers reading mutex-guarded struct fields without holding the lock",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && isHandlerSig(pass, fn.Type) {
					checkHandler(pass, fn.Body)
					return false
				}
			case *ast.FuncLit:
				if isHandlerSig(pass, fn.Type) {
					checkHandler(pass, fn.Body)
					return false
				}
			}
			return true
		})
	}
	return nil
}

// isHandlerSig matches func(..., http.ResponseWriter, *http.Request) — the
// two trailing parameters are what http.HandlerFunc and mux registration
// require.
func isHandlerSig(pass *framework.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	var ptypes []types.Type
	for _, field := range ft.Params.List {
		t := pass.TypeOf(field.Type)
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			ptypes = append(ptypes, t)
		}
	}
	if len(ptypes) != 2 {
		return false
	}
	return isNetHTTP(ptypes[0], "ResponseWriter", false) && isNetHTTP(ptypes[1], "Request", true)
}

func isNetHTTP(t types.Type, name string, wantPtr bool) bool {
	if t == nil {
		return false
	}
	if wantPtr {
		p, ok := t.(*types.Pointer)
		if !ok {
			return false
		}
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "net/http" && n.Obj().Name() == name
}

func checkHandler(pass *framework.Pass, body *ast.BlockStmt) {
	if takesLock(pass, body) {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		recv := selection.Recv()
		mutexField := guardingMutex(recv)
		if mutexField == "" {
			return true
		}
		fieldObj := selection.Obj()
		if isMutex(fieldObj.Type()) {
			return true // taking the mutex itself is not guarded state
		}
		pass.Reportf(sel.Sel.Pos(),
			"handler accesses field %s of %s directly; that struct is guarded by its %s field — hold the lock or go through a locked accessor",
			fieldObj.Name(), typeName(recv), mutexField)
		return true
	})
}

// takesLock reports whether body calls Lock or RLock on a sync mutex.
func takesLock(pass *framework.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock") {
			return true
		}
		if t := pass.TypeOf(sel.X); t != nil && !isMutexOrPtr(t) {
			return true
		}
		found = true
		return false
	})
	return found
}

// guardingMutex returns the name of a sync.Mutex/RWMutex field in t's
// struct (dereferenced), or "".
func guardingMutex(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isMutex(f.Type()) {
			return f.Name()
		}
	}
	return ""
}

func isMutexOrPtr(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	return isMutex(t)
}

func isMutex(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := n.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

func typeName(t types.Type) string {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return t.String()
}
