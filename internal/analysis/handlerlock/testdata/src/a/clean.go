// Fixture: correct handler patterns — none of these may be flagged.
package a

import (
	"fmt"
	"net/http"
	"sync"
)

// Locked accessor: the method takes the lock internally, so calling it
// from a handler is fine.
func (g *registry) Lookup(name string) (int, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	v, ok := g.points[name]
	return v, ok
}

func (s *server) handleViaAccessor(w http.ResponseWriter, r *http.Request) {
	v, ok := s.reg.Lookup(r.URL.Query().Get("name"))
	if !ok {
		http.NotFound(w, r)
		return
	}
	fmt.Fprintln(w, v)
}

// Handler that takes the lock itself.
func (s *server) handleLocked(w http.ResponseWriter, r *http.Request) {
	s.reg.mu.RLock()
	defer s.reg.mu.RUnlock()
	fmt.Fprintln(w, len(s.reg.points))
}

// Unguarded struct: no mutex field means no guarded state to protect.
type staticConfig struct {
	greeting string
}

type staticServer struct {
	cfg staticConfig
}

func (s *staticServer) handleGreeting(w http.ResponseWriter, r *http.Request) {
	fmt.Fprintln(w, s.cfg.greeting)
}

// Non-handler functions may touch fields freely; only the HTTP entry
// points are held to the rule.
func (s *server) rebuild() int {
	return len(s.reg.points)
}

// Audited immutable-after-init access: suppressed with a reason.
func (s *server) handleSuppressed(w http.ResponseWriter, r *http.Request) {
	//lint:ignore handlerlock points is frozen before the server starts serving
	fmt.Fprintln(w, len(s.reg.points))
}

var _ sync.Locker = (*sync.Mutex)(nil)
