// Fixture: handlers touching guarded state that handlerlock must flag.
package a

import (
	"fmt"
	"net/http"
	"sync"
)

type registry struct {
	mu     sync.RWMutex
	points map[string]int
	hits   int64
}

type server struct {
	reg *registry
}

// Direct map read of guarded state: races with concurrent registration.
func (s *server) handleLookup(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("name")
	v := s.reg.points[name] // want "guarded by its mu field"
	fmt.Fprintln(w, v)
}

// Direct write of guarded state.
func (s *server) handleHit(w http.ResponseWriter, r *http.Request) {
	s.reg.hits++ // want "guarded by its mu field"
	w.WriteHeader(http.StatusNoContent)
}

// Handler registered as a function literal is checked too.
func register(mux *http.ServeMux, reg *registry) {
	mux.HandleFunc("/peek", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, len(reg.points)) // want "guarded by its mu field"
	})
}
