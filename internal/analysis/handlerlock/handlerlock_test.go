package handlerlock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/handlerlock"
)

func TestHandlerLock(t *testing.T) {
	analysistest.Run(t, handlerlock.Analyzer, "a")
}
