// Flagged fixture for envelope: handlers that bypass the error envelope
// with raw net/http error helpers or manual 4xx/5xx status writes.
package urbane

import "net/http"

// handleLegacy uses http.Error directly — the client gets text/plain
// instead of the envelope.
func handleLegacy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed) // want "http.Error sends a bare text/plain error"
		return
	}
	w.Write([]byte("ok"))
}

// handleMissing uses http.NotFound — same bypass, 404 flavor.
func handleMissing(w http.ResponseWriter, r *http.Request) {
	http.NotFound(w, r) // want "http.NotFound sends a bare text/plain 404"
}

// handleManual writes the status line by hand and follows with an ad-hoc
// body.
func handleManual(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusBadRequest) // want "raw WriteHeader\\(400\\) bypasses the error envelope"
	w.Write([]byte("bad request"))
}

// handleLiteral uses a literal status code; constant folding still sees
// 500.
func handleLiteral(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(500) // want "raw WriteHeader\\(500\\) bypasses the error envelope"
}

// handleSuppressed shows the escape hatch.
func handleSuppressed(w http.ResponseWriter, r *http.Request) {
	//lint:ignore envelope fixture: probe endpoint intentionally returns a bare status for load balancers
	w.WriteHeader(http.StatusServiceUnavailable)
}
