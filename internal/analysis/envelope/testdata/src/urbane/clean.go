// Clean fixture for envelope: the envelope machinery itself, handlers
// that use it, and success-class status writes.
package urbane

import (
	"encoding/json"
	"net/http"
)

// writeError IS the envelope writer — write* helpers are exempt so the
// envelope can be emitted somewhere.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]any{
		"error": map[string]any{"status": status, "code": code, "message": msg},
	})
}

// writeJSON is likewise exempt; it never writes error statuses anyway.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// statusWriter is the instrumentation wrapper; its methods forward raw
// status codes by design.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (s *statusWriter) WriteHeader(code int) {
	s.status = code
	s.ResponseWriter.WriteHeader(code)
}

// handleEnveloped routes every error through writeError.
func handleEnveloped(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleNotModified writes a success-class status by hand — 304 is not an
// error and carries no body, so no envelope applies.
func handleNotModified(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusNotModified)
}

// handleNoContent likewise: 204 is success-class.
func handleNoContent(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusNoContent)
}

// handleDynamicStatus passes a non-constant status through the wrapper;
// without a constant the check stays quiet rather than guessing.
func handleDynamicStatus(w http.ResponseWriter, r *http.Request, status int) {
	w.WriteHeader(status)
}
