// Package envelope enforces the unified error-envelope contract of the
// urbane HTTP server: every error a handler sends to a client must go
// through the envelope writer (writeError), which emits the stable
//
//	{"error":{"status":...,"code":"...","message":"..."}}
//
// shape clients parse. Raw http.Error, http.NotFound, and manual
// WriteHeader(4xx/5xx) responses bypass the envelope and hand clients a
// bare text/plain body instead:
//
//	http.Error(w, "no such dataset", 404)          // BAD: no envelope
//	w.WriteHeader(http.StatusBadRequest)           // BAD: raw 400
//	writeError(w, http.StatusNotFound, "no_dataset", msg) // GOOD
//
// The check applies to packages whose import path ends in /urbane. Two
// places are exempt, because they ARE the envelope machinery: functions
// whose name starts with "write" (writeError, writeJSON), and methods of
// the statusWriter instrumentation wrapper. Success-class WriteHeader
// calls (2xx/3xx — 204 No Content, 304 Not Modified) are always allowed.
package envelope

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the envelope check.
var Analyzer = &framework.Analyzer{
	Name: "envelope",
	Doc:  "flags raw http.Error/http.NotFound/WriteHeader(>=400) in urbane handlers; errors must go through the envelope writer",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if pass.Pkg == nil || !strings.HasSuffix(pass.Pkg.Path(), "/urbane") {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || exemptFunc(fd) {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// exemptFunc reports whether fd is part of the envelope machinery itself:
// a write* helper or a statusWriter method.
func exemptFunc(fd *ast.FuncDecl) bool {
	if strings.HasPrefix(fd.Name.Name, "write") {
		return true
	}
	if fd.Recv != nil && len(fd.Recv.List) == 1 {
		if recvTypeName(fd.Recv.List[0].Type) == "statusWriter" {
			return true
		}
	}
	return false
}

func recvTypeName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr: // generic receiver
		return recvTypeName(t.X)
	}
	return ""
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch {
		case isNetHTTPFunc(pass, sel, "Error"):
			pass.Reportf(call.Pos(),
				"http.Error sends a bare text/plain error; use writeError so the client gets the error envelope")
		case isNetHTTPFunc(pass, sel, "NotFound"):
			pass.Reportf(call.Pos(),
				"http.NotFound sends a bare text/plain 404; use writeError(w, http.StatusNotFound, ...) so the client gets the error envelope")
		case sel.Sel.Name == "WriteHeader" && len(call.Args) == 1 && isResponseWriter(pass.TypeOf(sel.X)):
			if status, known := constInt(pass, call.Args[0]); known && status >= 400 {
				pass.Reportf(call.Pos(),
					"raw WriteHeader(%d) bypasses the error envelope; use writeError so the client gets the error envelope", status)
			}
		}
		return true
	})
}

// isNetHTTPFunc reports whether sel is net/http's package-level function
// named name (http.Error, http.NotFound).
func isNetHTTPFunc(pass *framework.Pass, sel *ast.SelectorExpr, name string) bool {
	if sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.ObjectOf(id).(*types.PkgName)
	return ok && pn.Imported().Path() == "net/http"
}

// isResponseWriter reports whether t is (or points to) net/http's
// ResponseWriter interface, or implements it. The instrumentation wrapper
// types qualify through the implements check.
func isResponseWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "ResponseWriter" {
			return true
		}
	}
	// Structural fallback: anything with WriteHeader(int), Write([]byte)
	// (int, error), Header() http.Header is a response writer in practice;
	// checking just for a WriteHeader(int) method keeps this stdlib-only
	// without materializing the interface.
	m := lookupMethod(t, "WriteHeader")
	if m == nil {
		return false
	}
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 0 {
		return false
	}
	basic, ok := sig.Params().At(0).Type().(*types.Basic)
	return ok && basic.Kind() == types.Int
}

func lookupMethod(t types.Type, name string) *types.Func {
	if t == nil {
		return nil
	}
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	fn, _ := obj.(*types.Func)
	return fn
}

// constInt folds e to an integer constant if the type-checker did.
func constInt(pass *framework.Pass, e ast.Expr) (int64, bool) {
	if pass.TypesInfo == nil {
		return 0, false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, exact := constant.Int64Val(tv.Value)
	if !exact {
		return 0, false
	}
	return v, true
}
