package core

import "context"

// FanContext is the compliant form of Fan: the ctx parameter satisfies the
// contract (the analyzer does not prove the ctx is consulted — that is what
// the cancellation tests are for).
func FanContext(ctx context.Context, n int) {
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			return
		}
		go func() {}()
	}
}

// Fan2 is the thin-wrapper shape the query path uses: delegating involves
// neither a goroutine nor a draw loop, so wrappers stay clean.
func Fan2(n int) {
	FanContext(context.Background(), n)
}

// StreamContext draws under a context.
func StreamContext(ctx context.Context, c canvas, lo, hi, batch int) {
	for s := lo; s < hi && ctx.Err() == nil; s += batch {
		c.DrawPoints(batch, nil, nil)
	}
}

// Once submits a single draw — no loop, no flag.
func Once(c canvas) {
	c.DrawPoints(1, nil, nil)
}

// fanOut is unexported; internal helpers inherit their caller's context
// discipline.
func fanOut(n int) {
	for i := 0; i < n; i++ {
		go func() {}()
	}
}

//lint:ignore ctxflow fixture proves suppression works for grandfathered APIs
func Legacy(n int) {
	go fanOut(n)
}
