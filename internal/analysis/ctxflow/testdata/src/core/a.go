// Fixture: a miniature of the query path's render layer. The package path
// ends in /core, so the ctxflow contract applies.
package core

// canvas stands in for gpu.Canvas; draw calls are matched by method name.
type canvas struct{}

func (canvas) DrawPoints(n int, pos func(int) (float64, float64), shade func(int, int, int)) {}
func (canvas) DrawPolygon(id int, shade func(int, int))                                     {}

// Fan fans out workers with no way to stop them.
func Fan(n int) { // want "exported function Fan spawns goroutines but accepts no context.Context"
	for i := 0; i < n; i++ {
		go func() {}()
	}
}

// Stream submits point batches with no way to abandon the pass.
func Stream(c canvas, lo, hi, batch int) { // want "exported function Stream loops over draw calls but accepts no context.Context"
	for s := lo; s < hi; s += batch {
		c.DrawPoints(batch, nil, nil)
	}
}

// RangeRender hides the draw call inside a closure; still flagged.
func RangeRender(c canvas, regions []int) { // want "exported function RangeRender loops over draw calls"
	for range regions {
		render := func() { c.DrawPolygon(0, nil) }
		render()
	}
}
