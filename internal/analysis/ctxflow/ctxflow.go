// Package ctxflow enforces the query path's cancellation contract. The
// packages that execute queries (internal/core, internal/query,
// internal/urbane) thread a request context end to end so a deadline or a
// vanished client aborts renders mid-join; an exported entry point that
// fans out goroutines or streams draw calls in a loop without accepting a
// context.Context silently re-opens the uncancelable path:
//
//	func (r *RasterJoin) Blur(req Request) {
//		for i := 0; i < n; i += batch {
//			c.DrawPoints(...) // BAD: runs to completion after the client left
//		}
//	}
//
// The fix is a ctx parameter or a FooContext variant with a thin wrapper —
// the shape the rest of the query path already uses. Wrappers themselves
// are clean: delegating to the ctx variant involves neither a goroutine nor
// a draw loop. Draw calls are matched by method name (DrawPoints,
// DrawTriangles, DrawPolygon, DrawPolygonOutline) so fixtures and future
// canvas-like types are covered without depending on internal/gpu.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the ctxflow check.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc:  "flags exported query-path functions that spawn goroutines or loop over draw calls without accepting a context.Context",
	Run:  run,
}

// watched are the import-path suffixes of the packages under the contract.
var watched = []string{"/core", "/query", "/urbane"}

// drawCalls are the canvas methods whose looped submission constitutes a
// streamed render pass.
var drawCalls = map[string]bool{
	"DrawPoints":         true,
	"DrawTriangles":      true,
	"DrawPolygon":        true,
	"DrawPolygonOutline": true,
}

func run(pass *framework.Pass) error {
	if pass.Pkg == nil || !watchedPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !fn.Name.IsExported() {
				continue
			}
			if takesContext(pass, fn.Type) {
				continue
			}
			if what := offense(fn.Body); what != "" {
				pass.Reportf(fn.Name.Pos(),
					"exported function %s %s but accepts no context.Context; add a ctx parameter or a %sContext variant so the work is cancelable",
					fn.Name.Name, what, fn.Name.Name)
			}
		}
	}
	return nil
}

func watchedPkg(path string) bool {
	for _, suffix := range watched {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// takesContext reports whether any parameter is a context.Context.
func takesContext(pass *framework.Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isContext(pass.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// offense describes the first uncancelable construct in body, or "".
func offense(body *ast.BlockStmt) string {
	what := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if what != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.GoStmt:
			what = "spawns goroutines"
			return false
		case *ast.ForStmt:
			if containsDraw(st.Body) {
				what = "loops over draw calls"
				return false
			}
		case *ast.RangeStmt:
			if containsDraw(st.Body) {
				what = "loops over draw calls"
				return false
			}
		}
		return true
	})
	return what
}

// containsDraw reports whether the loop body submits a draw call anywhere,
// including through nested closures.
func containsDraw(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && drawCalls[sel.Sel.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}
