// Flagged fixture for detrand: process-global math/rand draws and
// clock-derived seeds in a replay-deterministic package.
package workload

import (
	"math/rand"
	"time"
)

// globalDraws pulls from the shared global source — a second goroutine
// anywhere in the process perturbs the sequence.
func globalDraws(n int) (int, float64) {
	i := rand.Intn(n)                  // want "rand.Intn draws from the process-global source"
	f := rand.Float64()                // want "rand.Float64 draws from the process-global source"
	rand.Shuffle(n, func(a, b int) {}) // want "rand.Shuffle draws from the process-global source"
	return i, f
}

// globalValueUse passes the package-level function as a value; still the
// global source.
func globalValueUse() func(int) int {
	return rand.Intn // want "rand.Intn draws from the process-global source"
}

// reseedGlobal reseeds the shared source — global state even with a fixed
// seed.
func reseedGlobal(seed int64) {
	rand.Seed(seed) // want "rand.Seed reseeds the process-global source"
}

// clockSeed builds a per-scenario instance but seeds it from the wall
// clock, so no run ever replays.
func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "time-derived seed makes runs unreplayable"
}

// clockSeedLaundered routes the clock through arithmetic; the subtree scan
// still finds it.
func clockSeedLaundered() *rand.Rand {
	src := rand.NewSource(int64(time.Now().Nanosecond()) ^ 0x5bd1e995) // want "time-derived seed makes runs unreplayable"
	return rand.New(src)
}

// suppressed shows the escape hatch.
func suppressed() int {
	//lint:ignore detrand fixture: jitter for a log sampler, replay is irrelevant here
	return rand.Int()
}
