// Clean fixture for detrand: the blessed per-scenario seeded instance,
// with the seed recorded in configuration.
package workload

import "math/rand"

type scenario struct {
	Seed int64
	rng  *rand.Rand
}

// newScenario seeds the instance from recorded configuration — the shape
// every replayable subsystem uses.
func newScenario(seed int64) *scenario {
	return &scenario{
		Seed: seed,
		rng:  rand.New(rand.NewSource(seed)),
	}
}

// draws uses only the per-scenario instance; method calls on *rand.Rand
// never touch the global source.
func (s *scenario) draws(n int) (int, float64) {
	i := s.rng.Intn(n)
	f := s.rng.Float64()
	s.rng.Shuffle(n, func(a, b int) {})
	return i, f
}

// reseedInstance reseeds the private instance from a recorded value —
// deterministic replay within a scenario is exactly what Seed-on-instance
// is for.
func (s *scenario) reseedInstance() {
	s.rng.Seed(s.Seed)
}

// zipf uses the constructor with a seeded instance.
func (s *scenario) zipf() *rand.Zipf {
	return rand.NewZipf(s.rng, 1.2, 1.0, 1<<20)
}

// fork derives a child stream from the parent deterministically.
func (s *scenario) fork() *scenario {
	return newScenario(s.rng.Int63())
}
