// Package detrand enforces deterministic randomness in the replayable
// subsystems (import paths ending in /workload, /fault, /chaos, /qcache):
// every random draw must come from an explicitly seeded rand.Rand so a
// scenario replays bit-identically from its recorded seed.
//
// Two things break replay and are flagged:
//
//	rand.Intn(n)                                // BAD: process-global source
//	rand.New(rand.NewSource(time.Now().UnixNano())) // BAD: wall-clock seed
//
// The blessed shape is a per-scenario instance seeded from configuration:
//
//	rng := rand.New(rand.NewSource(cfg.Seed))   // GOOD
//	rng.Intn(n)
//
// Constructors (rand.New, rand.NewSource, rand.NewZipf) are allowed —
// they are how seeded instances come to exist — and rand.Seed is flagged
// in both spellings since reseeding the global source is still global
// state. Seeds derived from time.Now anywhere inside a constructor or
// Seed call are flagged even when routed through helper arithmetic.
package detrand

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the detrand check.
var Analyzer = &framework.Analyzer{
	Name: "detrand",
	Doc:  "flags process-global math/rand use and time-derived seeds in the deterministic workload/fault/chaos/qcache packages",
	Run:  run,
}

// watched are the import-path suffixes of the replay-deterministic
// packages.
var watched = []string{"/workload", "/fault", "/chaos", "/qcache"}

// constructors are the package-level math/rand functions that build seeded
// values rather than drawing from the global source.
var constructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// seeders are the call names whose arguments must not involve the clock.
var seeders = map[string]bool{
	"New":       true,
	"NewSource": true,
	"Seed":      true,
}

func run(pass *framework.Pass) error {
	if pass.Pkg == nil || !watchedPkg(pass.Pkg.Path()) {
		return nil
	}
	// seen dedupes the time-seed sweep: in the nested shape
	// rand.New(rand.NewSource(time.Now()...)) the same clock call sits in
	// the argument subtree of two seeder calls.
	seen := map[token.Pos]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, pkgPath := selectedFunc(pass, sel)
			if fn == nil {
				return true
			}
			switch {
			case pkgPath == "math/rand" && fn.Name() == "Seed":
				pass.Reportf(sel.Pos(),
					"rand.Seed reseeds the process-global source; use a per-scenario rand.New(rand.NewSource(seed)) instance so runs replay from their recorded seed")
			case pkgPath == "math/rand" && !constructors[fn.Name()]:
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the process-global source and is not replayable; use a per-scenario rand.New(rand.NewSource(seed)) instance", fn.Name())
			}
			return true
		})
		// Second sweep: clock-derived seeds in constructor/Seed arguments,
		// for both package-level and method spellings.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !seeders[sel.Sel.Name] {
				return true
			}
			if !randRelated(pass, sel) {
				return true
			}
			for _, a := range call.Args {
				if pos, found := findTimeNow(pass, a); found && !seen[pos] {
					seen[pos] = true
					pass.Reportf(pos,
						"time-derived seed makes runs unreplayable; record the seed in the scenario configuration and seed from that")
				}
			}
			return true
		})
	}
	return nil
}

func watchedPkg(path string) bool {
	for _, suffix := range watched {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// selectedFunc resolves sel to a function object plus the import path of
// the package a package-qualified selector names ("" for methods).
func selectedFunc(pass *framework.Pass, sel *ast.SelectorExpr) (*types.Func, string) {
	fn, ok := pass.ObjectOf(sel.Sel).(*types.Func)
	if !ok {
		return nil, ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok {
			return fn, pn.Imported().Path()
		}
	}
	return fn, ""
}

// randRelated reports whether sel names math/rand's package-level New/
// NewSource/Seed or a method on *rand.Rand (rng.Seed).
func randRelated(pass *framework.Pass, sel *ast.SelectorExpr) bool {
	fn, pkgPath := selectedFunc(pass, sel)
	if fn == nil {
		return false
	}
	if pkgPath == "math/rand" {
		return true
	}
	return fn.Pkg() != nil && fn.Pkg().Path() == "math/rand"
}

// findTimeNow reports the position of a time.Now call anywhere inside e.
func findTimeNow(pass *framework.Pass, e ast.Expr) (token.Pos, bool) {
	var at ast.Node
	ast.Inspect(e, func(n ast.Node) bool {
		if at != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.ObjectOf(id).(*types.PkgName); ok && pn.Imported().Path() == "time" {
				at = call
				return false
			}
		}
		return true
	})
	if at == nil {
		return token.NoPos, false
	}
	return at.Pos(), true
}
