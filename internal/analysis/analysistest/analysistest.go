// Package analysistest runs an analyzer over fixture packages and checks
// its diagnostics against // want comments, mirroring (a subset of)
// golang.org/x/tools/go/analysis/analysistest.
//
// Fixtures live under <analyzer pkg>/testdata/src/<name>/*.go. A line that
// should be flagged carries a trailing comment
//
//	x[i] = v // want "regexp"
//
// with one quoted Go regexp per expected diagnostic on that line. Every
// expectation must be matched by a diagnostic and every diagnostic must be
// matched by an expectation, after //lint:ignore suppression is applied —
// so fixtures can (and do) prove that suppression works.
package analysistest

import (
	"bytes"
	"encoding/json"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"sync"
	"testing"

	"repro/internal/analysis/framework"
	"repro/internal/analysis/loader"
)

// Fixture packages import at most the standard library, so one process-wide
// export resolver (rooted anywhere inside the module) serves every test.
var (
	exportsOnce sync.Once
	exports     *loader.Exports
)

func sharedExports(t *testing.T) *loader.Exports {
	t.Helper()
	exportsOnce.Do(func() {
		wd, err := os.Getwd()
		if err != nil {
			wd = "."
		}
		exports = loader.NewExports(wd)
	})
	return exports
}

var wantRE = regexp.MustCompile(`// want ((?:"(?:[^"\\]|\\.)*"\s*)+)`)
var quotedRE = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run analyzes the fixture package testdata/src/<pkg> and reports any
// mismatch between diagnostics and // want expectations as test failures.
func Run(t *testing.T, a *framework.Analyzer, pkg string) {
	t.Helper()
	diags, wants := analyze(t, a, pkg)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic at %s: %s", d.Position, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// RunGolden runs the analyzer over testdata/src/<pkg> like Run, then also
// compares the findings — exact file, line, column, and message — against
// the JSON golden file testdata/src/<pkg>/<analyzer>.golden.json. Set
// UPDATE_GOLDEN=1 to (re)generate the golden file instead of comparing.
// Want comments check positions by pattern; the golden pins them exactly,
// so a diagnostic drifting by a column is caught too.
func RunGolden(t *testing.T, a *framework.Analyzer, pkg string) {
	t.Helper()
	Run(t, a, pkg)

	diags, _ := analyze(t, a, pkg)
	findings := []framework.Finding{} // marshal as [] rather than null
	for _, d := range diags {
		f := framework.FindingOf(d, "")
		f.File = filepath.ToSlash(filepath.Base(f.File)) // fixture-dir independent
		findings = append(findings, f)
	}
	got, err := json.MarshalIndent(findings, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "src", pkg, a.Name+".golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (UPDATE_GOLDEN=1 to generate): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("findings diverge from %s (UPDATE_GOLDEN=1 to regenerate)\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// analyze loads, type-checks, and runs a over the fixture package,
// returning suppression-filtered diagnostics and the parsed expectations.
func analyze(t *testing.T, a *framework.Analyzer, pkg string) ([]framework.Diagnostic, []*expectation) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	var wants []*expectation
	for _, name := range names {
		src, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
		wants = append(wants, parseWants(t, fset, f)...)
	}

	tpkg, info, err := loader.Check("fixture/"+pkg, fset, files, sharedExports(t).Importer(fset))
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", pkg, err)
	}
	diags, err := framework.RunAnalyzer(a, fset, files, tpkg, info)
	if err != nil {
		t.Fatal(err)
	}
	return diags, wants
}

func claim(wants []*expectation, d framework.Diagnostic) bool {
	for _, w := range wants {
		if w.hit || w.file != d.Position.Filename || w.line != d.Position.Line {
			continue
		}
		if w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}

func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			m := wantRE.FindStringSubmatch(c.Text)
			if m == nil {
				continue
			}
			pos := fset.Position(c.Pos())
			for _, q := range quotedRE.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
				}
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}
