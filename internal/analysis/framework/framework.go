// Package framework is a self-contained miniature of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The x/tools module is deliberately not a dependency — this repo builds
// offline with the standard library only — so the subset implemented here
// is exactly what the urbane-lint analyzers need: syntax + full type
// information, position-tagged diagnostics, and //lint:ignore suppression
// (see ignore.go).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one static check. Name must be a single lower-case
// word; it is how diagnostics are attributed and how //lint:ignore
// directives address the check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostics returns the findings reported so far, sorted by position.
func (p *Pass) Diagnostics() []Diagnostic {
	sortDiagnostics(p.diags)
	return p.diags
}

func sortDiagnostics(diags []Diagnostic) {
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i].Position, diags[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
}

// ObjectOf resolves an identifier through Uses then Defs.
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.ObjectOf(id)
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.TypesInfo == nil {
		return nil
	}
	return p.TypesInfo.TypeOf(e)
}

// RunAnalyzer executes a on one package and returns its diagnostics with
// //lint:ignore suppressions already filtered out.
func RunAnalyzer(a *Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	return RunAll([]*Analyzer{a}, fset, files, pkg, info, false)
}

// RunAll executes every analyzer over one package through a single shared
// suppression index, so //lint:ignore usage is tracked across the whole
// set. When audit is true the suppression audit runs afterwards and its
// findings — malformed directives, unknown analyzer names, directives
// that no longer suppress anything — are appended, attributed to the
// pseudo-analyzer AuditName. Only pass audit=true when analyzers is the
// full set: staleness cannot be judged for a directive whose analyzer
// never ran.
func RunAll(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, audit bool) ([]Diagnostic, error) {
	ig := BuildIgnores(fset, files)
	ran := make(map[string]bool, len(analyzers))
	var keep []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
		ran[a.Name] = true
		for _, d := range pass.Diagnostics() {
			if ig.Ignored(d.Position, a.Name) {
				continue
			}
			keep = append(keep, d)
		}
	}
	if audit {
		keep = append(keep, ig.Audit(ran, ran)...)
	}
	sortDiagnostics(keep)
	return keep, nil
}
