package framework

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directive, staticcheck-flavoured:
//
//	//lint:ignore <name>[,<name>...] reason
//
// The directive suppresses the named analyzers (or every analyzer, for the
// name "all") on the directive's own line and on the line that follows it,
// so both of these work:
//
//	hm.Total += v //lint:ignore floataccum bounded error, hot path
//
//	//lint:ignore floataccum bounded error, hot path
//	hm.Total += v
//
// A reason is mandatory; a bare //lint:ignore name is not honoured, which
// keeps every suppression in the tree self-documenting.

// Ignores maps file:line to the set of suppressed analyzer names.
type Ignores struct {
	byLine map[string]map[int]map[string]bool // filename -> line -> names
}

// Ignored reports whether analyzer name is suppressed at pos.
func (ig *Ignores) Ignored(pos token.Position, name string) bool {
	if ig == nil || ig.byLine == nil {
		return false
	}
	lines := ig.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	names := lines[pos.Line]
	if names == nil {
		return false
	}
	return names[name] || names["all"]
}

// BuildIgnores scans every comment in files for //lint:ignore directives.
func BuildIgnores(fset *token.FileSet, files []*ast.File) *Ignores {
	ig := &Ignores{byLine: make(map[string]map[int]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				p := fset.Position(c.Pos())
				for _, line := range []int{p.Line, p.Line + 1} {
					ig.add(p.Filename, line, names)
				}
			}
		}
	}
	return ig
}

func (ig *Ignores) add(file string, line int, names []string) {
	lines := ig.byLine[file]
	if lines == nil {
		lines = make(map[int]map[string]bool)
		ig.byLine[file] = lines
	}
	set := lines[line]
	if set == nil {
		set = make(map[string]bool)
		lines[line] = set
	}
	for _, n := range names {
		set[n] = true
	}
}

func parseIgnore(text string) ([]string, bool) {
	const prefix = "//lint:ignore "
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	fields := strings.Fields(rest)
	if len(fields) < 2 {
		// no reason given: directive is ignored on purpose
		return nil, false
	}
	return strings.Split(fields[0], ","), true
}
