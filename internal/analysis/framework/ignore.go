package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directive, staticcheck-flavoured:
//
//	//lint:ignore <name>[,<name>...] reason
//
// The directive suppresses the named analyzers (or every analyzer, for the
// name "all") on the directive's own line and on the line that follows it,
// so both of these work:
//
//	hm.Total += v //lint:ignore floataccum bounded error, hot path
//
//	//lint:ignore floataccum bounded error, hot path
//	hm.Total += v
//
// A reason is mandatory. Directives are not merely parsed — they are
// audited (see Audit): a malformed directive, a directive naming an
// analyzer that does not exist, and a directive that no longer suppresses
// any diagnostic are all findings in their own right, attributed to the
// pseudo-analyzer "suppress". That keeps the suppression inventory honest:
// every ignore in the tree names a real check, states a reason, and still
// earns its keep.

// AuditName is the pseudo-analyzer name audit findings are attributed to.
// It is not independently runnable and cannot itself be suppressed.
const AuditName = "suppress"

// Directive is one parsed //lint:ignore comment.
type Directive struct {
	Position token.Position // of the directive comment
	Names    []string       // suppressed analyzer names (empty if malformed)
	Reason   string
	Problem  string // non-empty if the directive is malformed

	used bool // set when the directive suppresses a diagnostic
}

// Ignores indexes every //lint:ignore directive in a package and records,
// as diagnostics are filtered through Ignored, which directives actually
// suppressed something.
type Ignores struct {
	directives []*Directive
	byLine     map[string]map[int][]*Directive // filename -> line -> covering directives
}

// Ignored reports whether analyzer name is suppressed at pos, marking any
// directive that grants the suppression as used.
func (ig *Ignores) Ignored(pos token.Position, name string) bool {
	if ig == nil || ig.byLine == nil {
		return false
	}
	hit := false
	for _, d := range ig.byLine[pos.Filename][pos.Line] {
		for _, n := range d.Names {
			if n == name || n == "all" {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}

// Directives returns every parsed directive, malformed ones included, in
// source order.
func (ig *Ignores) Directives() []*Directive {
	if ig == nil {
		return nil
	}
	return ig.directives
}

// Audit returns one diagnostic per problematic directive: malformed,
// naming an unknown analyzer, or no longer suppressing anything. Staleness
// is only meaningful when every analyzer a directive names has actually
// run over the package — pass the names that ran in known; directives
// mentioning analyzers outside known are exempt from the staleness check
// (but not from the malformed/unknown checks, driven by universe: the
// full set of analyzers that exist).
func (ig *Ignores) Audit(universe, known map[string]bool) []Diagnostic {
	if ig == nil {
		return nil
	}
	var diags []Diagnostic
	report := func(d *Directive, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Position: d.Position,
			Analyzer: AuditName,
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, d := range ig.directives {
		if d.Problem != "" {
			report(d, "malformed //lint:ignore directive: %s (want //lint:ignore <analyzer>[,<analyzer>] <reason>)", d.Problem)
			continue
		}
		auditable := true
		for _, n := range d.Names {
			if n == "all" {
				continue
			}
			if !universe[n] {
				report(d, "//lint:ignore names unknown analyzer %q (run urbane-lint -list for the set)", n)
				auditable = false
				continue
			}
			if !known[n] {
				auditable = false // that analyzer didn't run; can't judge staleness
			}
		}
		if auditable && !d.used {
			report(d, "//lint:ignore %s no longer suppresses any diagnostic; delete the directive", strings.Join(d.Names, ","))
		}
	}
	return diags
}

// BuildIgnores scans every comment in files for //lint:ignore directives.
func BuildIgnores(fset *token.FileSet, files []*ast.File) *Ignores {
	ig := &Ignores{byLine: make(map[string]map[int][]*Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d := parseIgnore(c.Text)
				if d == nil {
					continue
				}
				d.Position = fset.Position(c.Pos())
				ig.directives = append(ig.directives, d)
				if d.Problem != "" {
					continue // malformed directives suppress nothing
				}
				for _, line := range []int{d.Position.Line, d.Position.Line + 1} {
					lines := ig.byLine[d.Position.Filename]
					if lines == nil {
						lines = make(map[int][]*Directive)
						ig.byLine[d.Position.Filename] = lines
					}
					lines[line] = append(lines[line], d)
				}
			}
		}
	}
	return ig
}

// parseIgnore returns nil for comments that are not //lint:ignore
// directives at all, and a Directive (possibly with Problem set) for
// comments that are.
func parseIgnore(text string) *Directive {
	const directive = "//lint:ignore"
	if !strings.HasPrefix(text, directive) {
		return nil
	}
	rest := text[len(directive):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil // some other word, e.g. //lint:ignorefile
	}
	fields := strings.Fields(rest)
	switch len(fields) {
	case 0:
		return &Directive{Problem: "missing analyzer name and reason"}
	case 1:
		return &Directive{Problem: fmt.Sprintf("no reason given for suppressing %s", fields[0])}
	}
	return &Directive{
		Names:  strings.Split(fields[0], ","),
		Reason: strings.Join(fields[1:], " "),
	}
}
