package framework

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Finding is the machine-readable (and baseline) form of a Diagnostic:
// the file path is made root-relative with forward slashes so baselines
// and JSON output are stable across checkouts and operating systems.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// FindingOf converts d, relativizing its path against root (the module
// root or working directory). Paths outside root pass through unchanged.
func FindingOf(d Diagnostic, root string) Finding {
	file := d.Position.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && filepath.IsLocal(rel) {
			file = rel
		}
	}
	return Finding{
		File:     filepath.ToSlash(file),
		Line:     d.Position.Line,
		Column:   d.Position.Column,
		Analyzer: d.Analyzer,
		Message:  d.Message,
	}
}

// Baseline is a committed inventory of known findings. New findings —
// those not in the baseline — fail the lint gate; baselined ones are
// reported but tolerated, which is what makes CI diff-aware: a PR is
// judged only on the findings it introduces.
//
// Matching deliberately ignores line and column: unrelated edits shift
// positions, and a baseline that rots on every reformat is a baseline
// people stop trusting. Identity is (file, analyzer, message), as a
// multiset — two identical leaks in one file need two baseline entries.
type Baseline struct {
	Findings []Finding `json:"findings"`
}

// LoadBaseline reads a baseline file written by WriteBaseline.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// WriteBaseline writes findings as a stable, sorted baseline file.
func WriteBaseline(path string, findings []Finding) error {
	sorted := make([]Finding, 0, len(findings))
	sorted = append(sorted, findings...)
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	data, err := json.MarshalIndent(Baseline{Findings: sorted}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Split partitions findings into those the baseline tolerates and those
// it does not, consuming baseline entries multiset-style.
func (b *Baseline) Split(findings []Finding) (known, fresh []Finding) {
	budget := make(map[string]int)
	if b != nil {
		for _, f := range b.Findings {
			budget[baselineKey(f)]++
		}
	}
	for _, f := range findings {
		k := baselineKey(f)
		if budget[k] > 0 {
			budget[k]--
			known = append(known, f)
		} else {
			fresh = append(fresh, f)
		}
	}
	return known, fresh
}

func baselineKey(f Finding) string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}
