package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const auditSrc = `package p

func a() {
	//lint:ignore demo reason: suppresses the diagnostic below
	_ = hit()

	//lint:ignore demo reason: nothing flagged here anymore
	_ = clean()

	//lint:ignore
	_ = clean()

	//lint:ignore demo
	_ = clean()

	//lint:ignore nosuch reason: analyzer does not exist
	_ = clean()

	//lint:ignore other reason: that analyzer did not run this time
	_ = clean()
}

func hit() int   { return 0 }
func clean() int { return 0 }
`

// demoAnalyzer flags every call to hit().
var demoAnalyzer = &Analyzer{
	Name: "demo",
	Doc:  "flags calls to hit",
	Run: func(p *Pass) error {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if c, ok := n.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "hit" {
						p.Reportf(c.Pos(), "call to hit")
					}
				}
				return true
			})
		}
		return nil
	},
}

func parseAudit(t *testing.T) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "audit.go", auditSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestIgnoreSuppresses(t *testing.T) {
	fset, files := parseAudit(t)
	diags, err := RunAnalyzer(demoAnalyzer, fset, files, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("expected the hit() diagnostic to be suppressed, got %v", diags)
	}
}

func TestAuditFindings(t *testing.T) {
	fset, files := parseAudit(t)
	universe := map[string]bool{"demo": true, "other": true}
	ran := map[string]bool{"demo": true}

	ig := BuildIgnores(fset, files)
	pass := &Pass{Analyzer: demoAnalyzer, Fset: fset, Files: files}
	if err := demoAnalyzer.Run(pass); err != nil {
		t.Fatal(err)
	}
	for _, d := range pass.Diagnostics() {
		ig.Ignored(d.Position, "demo")
	}

	diags := ig.Audit(universe, ran)
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}

	wantSubstrings := []string{
		"no longer suppresses any diagnostic",  // stale demo directive
		"missing analyzer name and reason",     // bare //lint:ignore
		"no reason given for suppressing demo", // name but no reason
		`names unknown analyzer "nosuch"`,      // unknown name
	}
	if len(got) != len(wantSubstrings) {
		t.Fatalf("want %d audit findings, got %d: %v", len(wantSubstrings), len(got), got)
	}
	for _, sub := range wantSubstrings {
		found := false
		for _, msg := range got {
			if strings.Contains(msg, sub) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no audit finding containing %q in %v", sub, got)
		}
	}
	// The used directive and the one naming an analyzer that did not run
	// must NOT be reported.
	for _, msg := range got {
		if strings.Contains(msg, "other") {
			t.Errorf("directive for non-run analyzer wrongly audited: %q", msg)
		}
	}
	for _, d := range diags {
		if d.Analyzer != AuditName {
			t.Errorf("audit diagnostic attributed to %q, want %q", d.Analyzer, AuditName)
		}
	}
}

func TestRunAllAudits(t *testing.T) {
	fset, files := parseAudit(t)
	diags, err := RunAll([]*Analyzer{demoAnalyzer}, fset, files, nil, nil, true)
	if err != nil {
		t.Fatal(err)
	}
	// With only demo in the universe, "nosuch" and "other" are both
	// unknown; plus two malformed and one stale = 5 audit findings.
	if len(diags) != 5 {
		t.Fatalf("want 5 findings from RunAll with audit, got %d: %v", len(diags), diags)
	}
}

func TestBaselineSplit(t *testing.T) {
	f1 := Finding{File: "a.go", Line: 3, Analyzer: "demo", Message: "call to hit"}
	f2 := Finding{File: "a.go", Line: 9, Analyzer: "demo", Message: "call to hit"}
	f3 := Finding{File: "b.go", Line: 1, Analyzer: "demo", Message: "other thing"}

	b := &Baseline{Findings: []Finding{{File: "a.go", Line: 99, Analyzer: "demo", Message: "call to hit"}}}
	known, fresh := b.Split([]Finding{f1, f2, f3})
	if len(known) != 1 || known[0].Line != 3 {
		t.Fatalf("baseline should tolerate exactly one a.go finding (line-insensitively), got %v", known)
	}
	if len(fresh) != 2 {
		t.Fatalf("want 2 fresh findings, got %v", fresh)
	}
}
