package floataccum_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floataccum"
)

func TestFloatAccum(t *testing.T) {
	analysistest.Run(t, floataccum.Analyzer, "a")
}
