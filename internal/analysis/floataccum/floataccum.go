// Package floataccum flags naive floating-point accumulation loops in the
// aggregation kernels:
//
//	var sum float64
//	for _, v := range attr {
//		sum += v // error grows O(n·eps) over millions of points
//	}
//
// A `+=` / `-=` is reported when (a) it sits in a loop, (b) the target is a
// float whose root variable outlives that loop, and (c) the added term
// depends on a variable bound inside the loop — i.e. a genuine reduction
// over the iterated data. Loop-invariant stepping (x += dx in a DDA
// traversal) and integer counters are not reductions and stay quiet.
//
// The fix is repro/internal/fsum (core.KahanSum / core.PairwiseSum /
// fsum.Kahan); sites where naive accumulation is deliberate — bounded trip
// counts, per-pixel hot paths with bounded magnitude spread — carry a
// //lint:ignore floataccum directive with the justification.
package floataccum

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer is the floataccum check.
var Analyzer = &framework.Analyzer{
	Name: "floataccum",
	Doc:  "flags naive float += reduction loops; suggests compensated summation (internal/fsum)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		var loops []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if isLoop(top) {
					loops = loops[:len(loops)-1]
				}
				return true
			}
			stack = append(stack, n)
			if isLoop(n) {
				loops = append(loops, n)
			}
			if as, ok := n.(*ast.AssignStmt); ok && len(loops) > 0 {
				checkAssign(pass, as, loops[len(loops)-1])
			}
			return true
		})
	}
	return nil
}

func isLoop(n ast.Node) bool {
	switch n.(type) {
	case *ast.ForStmt, *ast.RangeStmt:
		return true
	}
	return false
}

func checkAssign(pass *framework.Pass, as *ast.AssignStmt, loop ast.Node) {
	if as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN {
		return
	}
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return
	}
	lhs, rhs := as.Lhs[0], as.Rhs[0]
	if !isFloat(pass.TypeOf(lhs)) {
		return
	}
	root := rootIdent(lhs)
	if root == nil {
		return
	}
	obj := pass.ObjectOf(root)
	if obj == nil || withinLoop(obj, loop) {
		return // loop-local temporary, not an accumulator
	}
	if !dependsOnLoop(pass, rhs, loop) {
		return // loop-invariant stepping, not a reduction
	}
	pass.Reportf(as.Pos(), "naive float accumulation into %q over loop-varying terms; rounding error grows with trip count — use core.KahanSum/core.PairwiseSum or an fsum.Kahan accumulator", root.Name)
}

// withinLoop reports whether obj is declared inside the loop statement.
func withinLoop(obj types.Object, loop ast.Node) bool {
	return obj.Pos() >= loop.Pos() && obj.Pos() < loop.End()
}

// dependsOnLoop reports whether e references any variable bound inside the
// loop (the range/index variable or a loop-body local).
func dependsOnLoop(pass *framework.Pass, e ast.Expr, loop ast.Node) bool {
	dep := false
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.ObjectOf(id)
		if v, isVar := obj.(*types.Var); isVar && withinLoop(v, loop) {
			dep = true
			return false
		}
		return true
	})
	return dep
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
