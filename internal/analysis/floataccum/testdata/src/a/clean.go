// Fixture: float arithmetic that is NOT a reduction — none of these may be
// flagged.
package a

// Loop-invariant stepping (DDA/grid traversal): x advances by a constant
// step; there is nothing to compensate.
func ddaTraversal(x0, dx float64, n int) float64 {
	x := x0
	for i := 0; i < n; i++ {
		x += dx
		visit(x)
	}
	return x
}

func visit(float64) {}

// Integer accumulators are exact.
func intCount(xs []int) int {
	total := 0
	for _, v := range xs {
		total += v
	}
	return total
}

// Loop-local temporary inside the same loop that binds it: v's loop also
// declares acc, so acc does not outlive the loop and nothing accumulates
// across iterations.
func loopLocalSameLoop(rows [][]float64) []float64 {
	out := make([]float64, 0, len(rows))
	for _, row := range rows {
		acc := row[0] * 0.5
		acc += float64(len(row))
		out = append(out, acc)
	}
	return out
}

// Constant increment: no loop-varying term.
func constantStep(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1.0
	}
	return total
}

// Audited hot path: suppressed with a reason.
func suppressedHotPath(xs []float64) float64 {
	sum := 0.0
	for _, v := range xs {
		//lint:ignore floataccum per-pixel hot loop, magnitudes bounded by texture range
		sum += v
	}
	return sum
}
