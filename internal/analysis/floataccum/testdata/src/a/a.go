// Fixture: naive float reductions that floataccum must flag.
package a

type stat struct {
	Count int64
	Sum   float64
}

func naiveSum(xs []float64) float64 {
	sum := 0.0
	for _, v := range xs {
		sum += v // want "naive float accumulation into \"sum\""
	}
	return sum
}

func naiveIndexed(xs []float64) float64 {
	var total float64
	for i := 0; i < len(xs); i++ {
		total += xs[i] * 0.5 // want "naive float accumulation into \"total\""
	}
	return total
}

func fieldAccum(xs []float64) stat {
	var s stat
	for _, v := range xs {
		s.Count++
		s.Sum += v // want "naive float accumulation into \"s\""
	}
	return s
}

func sliceCellAccum(xs []float64, bins []float64, binOf func(float64) int) {
	for _, v := range xs {
		bins[binOf(v)] += v // want "naive float accumulation into \"bins\""
	}
}

// An accumulator that outlives the innermost loop is a reduction even when
// it is itself declared inside an outer loop.
func nestedRowSum(rows [][]float64) []float64 {
	out := make([]float64, 0, len(rows))
	for _, row := range rows {
		rowSum := 0.0
		for _, v := range row {
			rowSum += v // want "naive float accumulation into \"rowSum\""
		}
		out = append(out, rowSum)
	}
	return out
}

func subtraction(xs []float64) float64 {
	residual := 1.0
	for _, v := range xs {
		residual -= v * v // want "naive float accumulation into \"residual\""
	}
	return residual
}
