// Package gaugepair is the flow-sensitive gauge-balance check: when a
// function both increments and decrements the same atomic gauge — the
// admission controller's queued waiters, the per-endpoint in-flight count —
// every increment must be matched by a reachable decrement on *every* path
// to return, or the gauge drifts and /api/stats lies forever after:
//
//	c.queued.Add(1)
//	select {
//	case <-w.ready:
//		c.queued.Add(-1)
//	case <-ctx.Done():
//		return nil, ctx.Err() // BAD: queued is now permanently off by one
//	}
//
// The analysis builds the function's CFG and runs a forward may-reach
// dataflow: the increment generates a fact, a decrement of the same gauge —
// direct, deferred, or inside a closure the function registers or returns —
// kills it, and a fact reaching the exit block is reported.
//
// Scope: gauges are fields (or variables) of type sync/atomic.Int32/Int64,
// matched by type. Functions that only increment (monotonic counters,
// cross-function pairs like AcquireTexture/ReleaseTexture whose decrement
// lives elsewhere) are out of scope by construction: the check only arms
// when an increment and a decrement of the same gauge appear in the same
// function, which is exactly the pairing it then proves total.
package gaugepair

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis/cfg"
	"repro/internal/analysis/framework"
)

// Analyzer is the gaugepair check.
var Analyzer = &framework.Analyzer{
	Name: "gaugepair",
	Doc:  "flags atomic gauge increments not balanced by a decrement on every path to return (CFG-based)",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, cfg.FuncName(fn), fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, "func literal", fn.Body)
			}
			return true
		})
	}
	return nil
}

// site is one gauge increment occurrence.
type site struct {
	call  *ast.CallExpr
	gauge string
}

func checkFunc(pass *framework.Pass, name string, body *ast.BlockStmt) {
	// Census: every inc and dec in the function, including inside nested
	// closures (a dec in a registered/returned closure balances the pair).
	incs, decs := census(pass, body)
	if len(incs) == 0 || len(decs) == 0 {
		return
	}
	decGauges := make(map[string]bool, len(decs))
	for _, d := range decs {
		decGauges[d.gauge] = true
	}
	// Facts: increments of gauges that this function also decrements
	// somewhere. Top-level increments only — incs inside nested closures
	// belong to the closure's own graph.
	var facts []*site
	for _, s := range incs {
		if decGauges[s.gauge] && !insideNestedFunc(body, s.call) {
			facts = append(facts, s)
		}
	}
	if len(facts) == 0 {
		return
	}

	g := cfg.New(name, body)
	transfer := func(b *cfg.Block, in cfg.Set[*site]) cfg.Set[*site] {
		out := in.Clone()
		for _, n := range b.Nodes {
			for _, fct := range facts {
				switch {
				case containsCall(n, fct.call):
					out[fct] = true
				case out[fct] && decrementsWithin(pass, n, fct.gauge):
					delete(out, fct)
				}
			}
		}
		return out
	}
	res := cfg.Forward(g, transfer, nil)
	for fct := range res.AtExit(g) {
		pass.Reportf(fct.call.Pos(),
			"gauge %s is incremented here but not decremented on every path to return; the gauge drifts permanently on the unbalanced path", fct.gauge)
	}
}

// census walks the whole body (closures included) classifying atomic Add
// calls into increments and decrements.
func census(pass *framework.Pass, body *ast.BlockStmt) (incs, decs []*site) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		gauge, dir := classify(pass, call)
		if gauge == "" {
			return true
		}
		s := &site{call: call, gauge: gauge}
		if dir > 0 {
			incs = append(incs, s)
		} else if dir < 0 {
			decs = append(decs, s)
		}
		return true
	})
	return incs, decs
}

// classify recognizes `g.Add(x)` on an atomic int gauge and returns the
// gauge's rendered path plus the sign of the delta (+1 inc, -1 dec, 0
// unknown/zero).
func classify(pass *framework.Pass, call *ast.CallExpr) (string, int) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" || len(call.Args) != 1 {
		return "", 0
	}
	if !isAtomicInt(pass.TypeOf(sel.X)) {
		return "", 0
	}
	return renderExpr(sel.X), deltaSign(pass, call.Args[0])
}

func isAtomicInt(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	if n.Obj().Pkg().Path() != "sync/atomic" {
		return false
	}
	switch n.Obj().Name() {
	case "Int32", "Int64":
		return true
	}
	return false
}

// deltaSign reports the sign of the Add argument: constant folding first,
// then the syntactic unary-minus convention (`Add(-n)` is a decrement even
// when n is a variable).
func deltaSign(pass *framework.Pass, arg ast.Expr) int {
	if tv, ok := typeAndValue(pass, arg); ok && tv != nil {
		if v, ok := constant.Int64Val(tv); ok {
			switch {
			case v > 0:
				return 1
			case v < 0:
				return -1
			}
			return 0
		}
	}
	if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.SUB {
		return -1
	}
	return 1
}

func typeAndValue(pass *framework.Pass, e ast.Expr) (constant.Value, bool) {
	if pass.TypesInfo == nil {
		return nil, false
	}
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return nil, false
	}
	return tv.Value, true
}

// decrementsWithin reports whether node n (statement, defer, closure —
// closures count: registering or returning one hands the balance obligation
// over with it) contains a decrement of gauge.
func decrementsWithin(pass *framework.Pass, n ast.Node, gauge string) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if g, dir := classify(pass, call); g == gauge && dir < 0 {
			found = true
			return false
		}
		return true
	})
	return found
}

// containsCall reports whether node n contains target outside any nested
// function literal (the inc must execute in this block, not at some later
// call of a closure).
func containsCall(n ast.Node, target *ast.CallExpr) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if m == ast.Node(target) {
			found = true
			return false
		}
		return true
	})
	return found
}

// insideNestedFunc reports whether target sits inside a FuncLit nested in
// body (rather than in body's own straight-line statements).
func insideNestedFunc(body *ast.BlockStmt, target *ast.CallExpr) bool {
	inside := false
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if n == ast.Node(target) {
			for _, s := range stack {
				if _, ok := s.(*ast.FuncLit); ok {
					inside = true
				}
			}
		}
		stack = append(stack, n)
		return true
	})
	return inside
}

// renderExpr prints the gauge's selector path ("c.queued") in a normalized
// single-line form used as the pairing key.
func renderExpr(e ast.Expr) string {
	var buf bytes.Buffer
	_ = printer.Fprint(&buf, token.NewFileSet(), e)
	return strings.Join(strings.Fields(buf.String()), "")
}
