package gaugepair_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/gaugepair"
)

func TestGaugepair(t *testing.T) {
	analysistest.RunGolden(t, gaugepair.Analyzer, "a")
}
