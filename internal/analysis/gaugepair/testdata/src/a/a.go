// Flagged fixture for gaugepair: increments whose decrement misses at
// least one path. Uses real sync/atomic types — matching is type-based.
package a

import (
	"context"
	"sync/atomic"
)

type ctrl struct {
	queued   atomic.Int64
	inflight atomic.Int64
	shed     atomic.Uint64
}

// leakOnCancelPath forgets the decrement on the ctx.Done arm — the exact
// drift the admission queue gauge must never exhibit.
func (c *ctrl) leakOnCancelPath(ctx context.Context, ready chan struct{}) error {
	c.queued.Add(1) // want "gauge c.queued is incremented here but not decremented on every path"
	select {
	case <-ready:
		c.queued.Add(-1)
		return nil
	case <-ctx.Done():
		return ctx.Err() // drift: queued never comes back down
	}
}

// leakOnEarlyReturn decrements only after the work, missing the error
// return.
func (c *ctrl) leakOnEarlyReturn(ctx context.Context) error {
	c.inflight.Add(1) // want "gauge c.inflight is incremented here but not decremented on every path"
	if err := ctx.Err(); err != nil {
		return err
	}
	c.inflight.Add(-1)
	return nil
}

// leakWeighted uses the weighted inc/dec convention (Add(n)/Add(-n)) and
// misses one branch.
func (c *ctrl) leakWeighted(n int64, ok bool) {
	c.queued.Add(n) // want "gauge c.queued is incremented here but not decremented on every path"
	if ok {
		c.queued.Add(-n)
	}
}

// suppressed shows the escape hatch with a named, reasoned directive.
func (c *ctrl) suppressed(flaky bool) {
	//lint:ignore gaugepair fixture: drift on the flaky path is asserted by a runtime test instead
	c.inflight.Add(1)
	if !flaky {
		c.inflight.Add(-1)
	}
}
