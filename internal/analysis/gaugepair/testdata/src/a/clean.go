// Clean fixture for gaugepair: balanced pairs, deferred decrements,
// closure handoffs, and out-of-scope monotonic counters.
package a

import "context"

// cleanDeferred balances through a defer registered right after the inc.
func (c *ctrl) cleanDeferred(ctx context.Context) error {
	c.inflight.Add(1)
	defer c.inflight.Add(-1)
	return ctx.Err()
}

// cleanAllArms decrements on every select arm, mirroring the admission
// controller's queue accounting.
func (c *ctrl) cleanAllArms(ctx context.Context, ready chan struct{}) error {
	c.queued.Add(1)
	select {
	case <-ready:
		c.queued.Add(-1)
		return nil
	case <-ctx.Done():
		c.queued.Add(-1)
		return ctx.Err()
	}
}

// cleanClosureHandoff returns the decrement in a release closure — the
// pattern the per-endpoint in-flight gauge uses; the obligation transfers
// to the caller with the closure.
func (c *ctrl) cleanClosureHandoff() func() {
	c.inflight.Add(1)
	return func() {
		c.inflight.Add(-1)
	}
}

// cleanMonotonicCounter only ever increments: a counter, not a gauge —
// out of scope by construction.
func (c *ctrl) cleanMonotonicCounter() {
	c.shed.Add(1)
}

// cleanCrossFunctionPair increments here and decrements in a sibling — the
// AcquireTexture/ReleaseTexture shape. No dec in this function, so the
// check does not arm.
func (c *ctrl) acquireSide() { c.inflight.Add(1) }
func (c *ctrl) releaseSide() { c.inflight.Add(-1) }

// cleanWeighted balances a weighted add on both branches.
func (c *ctrl) cleanWeighted(n int64, fast bool) {
	c.queued.Add(n)
	if fast {
		c.queued.Add(-n)
		return
	}
	c.queued.Add(-n)
}
