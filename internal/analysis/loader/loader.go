// Package loader type-checks Go packages for urbane-lint without depending
// on golang.org/x/tools/go/packages.
//
// Strategy (the same one go/packages uses in LoadTypes mode): ask the go
// command for compiled export data of every dependency — `go list -export
// -deps -json` compiles what is stale and prints the build-cache path of
// each package's export file — then parse only the target packages from
// source and type-check them against that export data with the standard
// library's gc importer. No network, no third-party modules, and no
// topological source type-checking of the whole dependency graph.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
)

// Package is one parsed and type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

type listEntry struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
}

func goList(dir string, args ...string) ([]listEntry, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var entries []listEntry
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var e listEntry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", args, err)
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// Exports resolves import paths to compiled export-data files, shelling out
// to the go command lazily and caching results. It is safe for concurrent
// use and usable as a lookup source for importer.ForCompiler.
type Exports struct {
	dir string

	mu    sync.Mutex
	files map[string]string
}

// NewExports returns an export-data resolver rooted at dir (the directory
// the go command runs in, which determines the module context).
func NewExports(dir string) *Exports {
	return &Exports{dir: dir, files: make(map[string]string)}
}

// Preload resolves patterns and all their transitive dependencies in one
// go-command invocation.
func (e *Exports) Preload(patterns ...string) error {
	args := append([]string{"-export", "-deps", "-json=ImportPath,Export"}, patterns...)
	entries, err := goList(e.dir, args...)
	if err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, ent := range entries {
		if ent.Export != "" {
			e.files[ent.ImportPath] = ent.Export
		}
	}
	return nil
}

// Lookup implements the lookup contract of importer.ForCompiler: it returns
// a reader over the export data for path.
func (e *Exports) Lookup(path string) (io.ReadCloser, error) {
	e.mu.Lock()
	file, ok := e.files[path]
	e.mu.Unlock()
	if !ok {
		// Cache miss (an import the preload didn't cover): resolve just
		// this path and its deps.
		if err := e.Preload(path); err != nil {
			return nil, err
		}
		e.mu.Lock()
		file, ok = e.files[path]
		e.mu.Unlock()
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
	}
	return os.Open(file)
}

// Importer returns a types.Importer that resolves imports through e.
func (e *Exports) Importer(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", e.Lookup)
}

// Load parses and type-checks the packages matching patterns, resolving
// the module context from dir. Test files are not included: urbane-lint
// analyzes production code.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"-json=ImportPath,Dir,GoFiles"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := NewExports(dir)
	if err := exports.Preload(patterns...); err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
			}
			files = append(files, f)
		}
		pkg, info, err := Check(t.ImportPath, fset, files, exports.Importer(fset))
		if err != nil {
			return nil, fmt.Errorf("%s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: t.ImportPath,
			Dir:        t.Dir,
			Fset:       fset,
			Files:      files,
			Types:      pkg,
			Info:       info,
		})
	}
	return pkgs, nil
}

// Check type-checks one package's parsed files with full types.Info.
func Check(path string, fset *token.FileSet, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
