package poolleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolleak"
)

func TestPoolleak(t *testing.T) {
	analysistest.RunGolden(t, poolleak.Analyzer, "a")
}
