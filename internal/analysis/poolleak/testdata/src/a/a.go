// Flagged fixture for poolleak: acquisitions that miss a release on at
// least one path. The device/canvas types are local stand-ins — matching is
// by method name, so the fixture needs no internal/gpu import.
package a

import (
	"context"
	"errors"
)

type Texture struct{ Data []float64 }

type Canvas struct{}

func (c *Canvas) Release()         {}
func (c *Canvas) DrawPoints(n int) {}

type Device struct{}

func (d *Device) AcquireTexture(w, h int) *Texture { return &Texture{} }
func (d *Device) ReleaseTexture(t *Texture)        {}
func (d *Device) NewCanvas(w, h int) (*Canvas, error) {
	if w < 1 || h < 1 {
		return nil, errors.New("bad size")
	}
	return &Canvas{}, nil
}

func doWork(ctx context.Context) error { return ctx.Err() }

// leakOnErrorPath releases only on the happy path: the early error return
// leaks the texture. This is exactly the seeded-leak shape the acceptance
// test requires the CFG path analysis to catch.
func leakOnErrorPath(ctx context.Context, d *Device) error {
	tex := d.AcquireTexture(64, 64) // want "texture acquired here is not released on every path"
	if err := doWork(ctx); err != nil {
		return err // leak: tex still live here
	}
	d.ReleaseTexture(tex)
	return nil
}

// leakOnAbortBranch polls ctx and forgets the release on the abort branch.
func leakOnAbortBranch(ctx context.Context, d *Device) error {
	tex := d.AcquireTexture(8, 8) // want "texture acquired here is not released on every path"
	for i := 0; i < 100; i++ {
		if ctx.Err() != nil {
			return ctx.Err() // leak: abort path skips the release
		}
	}
	d.ReleaseTexture(tex)
	return nil
}

// leakCanvasOneBranch releases the canvas on one switch arm only.
func leakCanvasOneBranch(d *Device, mode int) error {
	c, err := d.NewCanvas(32, 32) // want "canvas acquired here is not released on every path"
	if err != nil {
		return err // clean: the err != nil edge means c was never acquired
	}
	switch mode {
	case 0:
		c.Release()
	case 1:
		c.DrawPoints(10) // leak: this arm never releases
	}
	return nil
}

// leakNoReleaseAtAll acquires and simply forgets.
func leakNoReleaseAtAll(d *Device) {
	tex := d.AcquireTexture(4, 4) // want "texture acquired here is not released on every path"
	_ = tex.Data
}

// leakDeferRegisteredTooLate defers the release after a possible early
// return, so the early path never registers it.
func leakDeferRegisteredTooLate(ctx context.Context, d *Device) error {
	tex := d.AcquireTexture(16, 16) // want "texture acquired here is not released on every path"
	if ctx.Err() != nil {
		return ctx.Err() // leak: the defer below was never reached
	}
	defer d.ReleaseTexture(tex)
	return doWork(ctx)
}

// suppressedLeak shows the escape hatch: the finding suppresses with an
// analyzer-named, reasoned directive (and analysistest verifies no
// diagnostic survives here).
func suppressedLeak(d *Device) *Texture {
	//lint:ignore poolleak ownership intentionally parked in a package global for this fixture
	tex := d.AcquireTexture(2, 2)
	keep = tex.Data
	return nil
}

var keep []float64

// leakBlockDecodeAbort models the segment read path: a scratch texture
// held across per-block decodes, leaked when a corrupt block's error
// return skips the release.
func leakBlockDecodeAbort(d *Device, blocks [][]byte) error {
	tex := d.AcquireTexture(32, 32) // want "texture acquired here is not released on every path"
	for _, b := range blocks {
		if len(b) < 5 {
			return errors.New("truncated block") // leak: decode abort skips the release
		}
		tex.Data = append(tex.Data, float64(b[0]))
	}
	d.ReleaseTexture(tex)
	return nil
}

// leakRefinementAbort models the geoblocks-style fringe-refinement loop:
// a scratch canvas held across per-cell work, leaked when the
// stride-amortized cancellation poll aborts mid-loop.
func leakRefinementAbort(ctx context.Context, d *Device, fringe []int) error {
	c, err := d.NewCanvas(64, 64) // want "canvas acquired here is not released on every path"
	if err != nil {
		return err
	}
	for i, cell := range fringe {
		if i%64 == 0 && ctx.Err() != nil {
			return ctx.Err() // leak: abort path skips the release
		}
		c.DrawPoints(cell)
	}
	c.Release()
	return nil
}

// leakSlabFoldEarlyReturn models the incremental window fold's per-slab
// recompute: a texture is acquired for each slab of the window, but the
// fold's error path returns before that slab's release — under a canceled
// slide every recomputed slab leaks.
func leakSlabFoldEarlyReturn(ctx context.Context, d *Device, slabs []int) error {
	for range slabs {
		tex := d.AcquireTexture(64, 64) // want "texture acquired here is not released on every path"
		if err := doWork(ctx); err != nil {
			return err // leak: this slab's texture is still live
		}
		d.ReleaseTexture(tex)
	}
	return nil
}

// leakPatchAbortPath models the pyramid-patch sweep holding one scratch
// texture across the whole appended tail and forgetting the release on the
// stride-amortized ctx-abort path.
func leakPatchAbortPath(ctx context.Context, d *Device, n int) error {
	tex := d.AcquireTexture(32, 32) // want "texture acquired here is not released on every path"
	for i := 0; i < n; i++ {
		if i%512 == 0 {
			if err := ctx.Err(); err != nil {
				return err // leak: abort skips the scratch release
			}
		}
	}
	d.ReleaseTexture(tex)
	return nil
}
