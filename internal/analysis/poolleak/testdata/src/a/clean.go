// Clean fixture for poolleak: every acquisition is released on all paths,
// escapes into an owning struct, or is provably nil on the unreleased path.
package a

import "context"

// cleanDeferred releases through a defer registered immediately, covering
// the later early return.
func cleanDeferred(ctx context.Context, d *Device) error {
	tex := d.AcquireTexture(64, 64)
	defer d.ReleaseTexture(tex)
	if err := doWork(ctx); err != nil {
		return err
	}
	return nil
}

// cleanErrPathGuard is the idiomatic two-result acquire: on the err != nil
// edge the canvas was never created, so the early return is clean.
func cleanErrPathGuard(d *Device) error {
	c, err := d.NewCanvas(32, 32)
	if err != nil {
		return err
	}
	defer c.Release()
	c.DrawPoints(10)
	return nil
}

// cleanBothBranches releases explicitly on every branch.
func cleanBothBranches(ctx context.Context, d *Device) error {
	tex := d.AcquireTexture(8, 8)
	if ctx.Err() != nil {
		d.ReleaseTexture(tex)
		return ctx.Err()
	}
	d.ReleaseTexture(tex)
	return nil
}

// cleanDeferredClosure releases inside a deferred closure, the shape the
// multi-spec joiner uses for its per-spec texture arrays.
func cleanDeferredClosure(ctx context.Context, d *Device) error {
	tex := d.AcquireTexture(16, 16)
	defer func() {
		d.ReleaseTexture(tex)
	}()
	return doWork(ctx)
}

// cleanEscapeToOwner parks the canvas in a struct whose own lifecycle
// releases it — ownership transfers, the function is no longer on the hook.
type stream struct {
	c   *Canvas
	tex *Texture
}

func (s *stream) close(d *Device) {
	s.c.Release()
	d.ReleaseTexture(s.tex)
}

func cleanEscapeToOwner(d *Device) (*stream, error) {
	c, err := d.NewCanvas(16, 16)
	if err != nil {
		return nil, err
	}
	s := &stream{c: c, tex: d.AcquireTexture(16, 16)}
	return s, nil
}

// cleanNilGuard releases only when non-nil — the nil edge has nothing to
// release.
func cleanNilGuard(d *Device, want bool) {
	var tex *Texture
	if want {
		tex = d.AcquireTexture(4, 4)
	}
	if tex != nil {
		d.ReleaseTexture(tex)
	}
}

// cleanReturned hands the live resource to the caller: ownership transfers
// with it.
func cleanReturned(d *Device) *Texture {
	return returnHelper(d)
}

func returnHelper(d *Device) *Texture {
	tex := d.AcquireTexture(2, 2)
	return tex
}

// cleanRefinementDefer is the corrected refinement loop: the defer
// registered right after acquisition covers the stride-amortized abort
// path inside the loop.
func cleanRefinementDefer(ctx context.Context, d *Device, fringe []int) error {
	c, err := d.NewCanvas(64, 64)
	if err != nil {
		return err
	}
	defer c.Release()
	for i, cell := range fringe {
		if i%64 == 0 && ctx.Err() != nil {
			return ctx.Err()
		}
		c.DrawPoints(cell)
	}
	return nil
}

// cleanSlabFoldBothPaths is the corrected per-slab recompute: the slab's
// texture is released on the fold's error path and on the happy path, so
// a canceled slide unwinds with nothing live.
func cleanSlabFoldBothPaths(ctx context.Context, d *Device, slabs []int) error {
	for range slabs {
		tex := d.AcquireTexture(64, 64)
		if err := doWork(ctx); err != nil {
			d.ReleaseTexture(tex)
			return err
		}
		d.ReleaseTexture(tex)
	}
	return nil
}

// cleanPatchDefer is the corrected pyramid-patch sweep: the scratch
// texture's deferred release covers the stride-amortized abort path.
func cleanPatchDefer(ctx context.Context, d *Device, n int) error {
	tex := d.AcquireTexture(32, 32)
	defer d.ReleaseTexture(tex)
	for i := 0; i < n; i++ {
		if i%512 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}
