// Package poolleak is the flow-sensitive render-resource leak check: every
// pooled GPU resource a function acquires must be released on *every* path
// to return — including early error returns and ctx-abort branches. This is
// the static counterpart of the chaos harness's LiveCanvases/LiveTextures
// zero-after-abort assertions: a leak the gauges would catch at runtime is
// caught here at lint time.
//
//	countTex := dev.AcquireTexture(w, h)
//	if err := doWork(ctx); err != nil {
//		return err // BAD: countTex never released on this path
//	}
//	dev.ReleaseTexture(countTex)
//
// The analysis builds the function's CFG (internal/analysis/cfg) and runs a
// forward may-reach dataflow: an acquire site generates a "live resource"
// fact bound to the assigned local; a release — direct, deferred, or inside
// a deferred closure — kills it. A fact that may reach the synthetic exit
// block is a path on which the resource leaks, and the acquire site is
// reported. This is path analysis, not string matching: moving the release
// onto only one branch of an if re-flags the site.
//
// Matching is by method name, so fixtures and future device-like types are
// covered without importing internal/gpu:
//
//	acquire: AcquireTexture, NewCanvas   release: ReleaseTexture, Release
//
// Precision notes (see DESIGN.md):
//   - A resource that escapes — assigned to a field, slice, map or
//     captured struct, returned, or sent on a channel — transfers ownership
//     and stops being tracked.
//   - For the two-result form `c, err := dev.NewCanvas(...)`, the fact is
//     killed on the "err != nil" edge (the acquire failed, c is nil), so
//     the idiomatic early error return just after an acquire is clean.
//   - An "x == nil" / "x != nil" guard on the resource itself likewise
//     kills the fact on the nil edge.
package poolleak

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis/cfg"
	"repro/internal/analysis/framework"
)

// Analyzer is the poolleak check.
var Analyzer = &framework.Analyzer{
	Name: "poolleak",
	Doc:  "flags pooled textures/canvases not released on every path to return (CFG-based leak analysis)",
	Run:  run,
}

var acquireNames = map[string]string{
	"AcquireTexture": "texture",
	"NewCanvas":      "canvas",
}

var releaseNames = map[string]bool{
	"ReleaseTexture": true,
	"Release":        true,
}

// fact is one tracked acquisition: the local it is bound to, plus the
// paired error variable for two-result acquires.
type fact struct {
	assign *ast.AssignStmt // the acquiring statement
	pos    token.Pos       // position of the acquire call
	obj    any             // types.Object of the resource local
	errObj any             // types.Object of the paired err, or nil
	what   string          // "texture" or "canvas"
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, cfg.FuncName(fn), fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, "func literal", fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc analyzes one function body. Nested function literals are
// analyzed separately (the CFG does not inline them).
func checkFunc(pass *framework.Pass, name string, body *ast.BlockStmt) {
	facts := collectAcquires(pass, body)
	if len(facts) == 0 {
		return
	}
	g := cfg.New(name, body)

	transfer := func(b *cfg.Block, in cfg.Set[*fact]) cfg.Set[*fact] {
		out := in.Clone()
		for _, n := range b.Nodes {
			for _, fct := range facts {
				switch {
				case n == ast.Node(fct.assign):
					out[fct] = true
				case out[fct] && kills(pass, n, fct):
					delete(out, fct)
				}
			}
		}
		return out
	}
	edge := func(from, to *cfg.Block, out cfg.Set[*fact]) cfg.Set[*fact] {
		if from.Cond == nil || len(from.Succs) != 2 {
			return out
		}
		refined := out
		copied := false
		for fct := range out {
			if k, ok := nilEdgeKill(pass, from, to, fct); ok && k {
				if !copied {
					refined = out.Clone()
					copied = true
				}
				delete(refined, fct)
			}
		}
		return refined
	}

	res := cfg.Forward(g, transfer, edge)
	for fct := range res.AtExit(g) {
		pass.Reportf(fct.pos,
			"%s acquired here is not released on every path to return; release it (or defer the release) on the early-return and abort paths too", fct.what)
	}
}

// collectAcquires finds `v := x.AcquireTexture(...)` style assignments that
// bind a pooled resource to a plain local identifier.
func collectAcquires(pass *framework.Pass, body *ast.BlockStmt) []*fact {
	var facts []*fact
	ast.Inspect(body, func(n ast.Node) bool {
		// Do not descend into nested function bodies.
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return true
		}
		what, ok := acquireNames[calleeName(call)]
		if !ok {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok || id.Name == "_" {
			return true // bound to a field/index: ownership escapes at birth
		}
		fct := &fact{assign: as, pos: call.Pos(), obj: pass.ObjectOf(id), what: what}
		if fct.obj == nil {
			return true
		}
		if len(as.Lhs) == 2 {
			if eid, ok := as.Lhs[1].(*ast.Ident); ok && eid.Name != "_" {
				fct.errObj = pass.ObjectOf(eid)
			}
		}
		facts = append(facts, fct)
		return true
	})
	return facts
}

// calleeName returns the final name of a call's callee.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// kills reports whether executing node n ends the obligation for fct:
// a release of the resource, a deferred release (directly or inside a
// deferred or spawned closure), or an escape that transfers ownership.
func kills(pass *framework.Pass, n ast.Node, fct *fact) bool {
	switch s := n.(type) {
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok && isReleaseOf(pass, call, fct) {
			return true
		}
	case *ast.DeferStmt:
		if releasesWithin(pass, s.Call, fct) {
			return true
		}
	case *ast.GoStmt:
		// A spawned goroutine that releases the resource owns it now.
		if releasesWithin(pass, s.Call, fct) {
			return true
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			if mentionsDirect(pass, r, fct) {
				return true // returned to the caller: ownership transfers
			}
		}
	case *ast.AssignStmt:
		if s == fct.assign {
			return false
		}
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok && pass.ObjectOf(id) == fct.obj {
				return true // reassigned: old binding gone, stop tracking
			}
		}
		for _, r := range s.Rhs {
			if escapesInto(pass, r, fct) {
				return true // stored in a field/slice/map/struct: escapes
			}
		}
	case *ast.SendStmt:
		if mentionsDirect(pass, s.Value, fct) {
			return true // handed to another goroutine
		}
	}
	return false
}

// isReleaseOf matches `dev.ReleaseTexture(v)` and `v.Release()` for fct's
// resource local v.
func isReleaseOf(pass *framework.Pass, call *ast.CallExpr, fct *fact) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !releaseNames[sel.Sel.Name] {
		return false
	}
	// v.Release()
	if id, ok := sel.X.(*ast.Ident); ok && pass.ObjectOf(id) == fct.obj && len(call.Args) == 0 {
		return true
	}
	// dev.ReleaseTexture(v)
	for _, a := range call.Args {
		if id, ok := a.(*ast.Ident); ok && pass.ObjectOf(id) == fct.obj {
			return true
		}
	}
	return false
}

// releasesWithin reports whether the call — or, when it invokes a function
// literal, any statement of that literal's body — releases fct's resource.
func releasesWithin(pass *framework.Pass, call *ast.CallExpr, fct *fact) bool {
	if isReleaseOf(pass, call, fct) {
		return true
	}
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok && isReleaseOf(pass, c, fct) {
			found = true
			return false
		}
		return true
	})
	return found
}

// mentionsDirect reports whether expr is (or contains as a direct value,
// e.g. inside a composite literal or unary &) the resource identifier.
// Field reads like v.T do not count.
func mentionsDirect(pass *framework.Pass, expr ast.Expr, fct *fact) bool {
	found := false
	var walk func(e ast.Expr)
	walk = func(e ast.Expr) {
		if found {
			return
		}
		switch e := e.(type) {
		case *ast.Ident:
			if pass.ObjectOf(e) == fct.obj {
				found = true
			}
		case *ast.UnaryExpr:
			walk(e.X)
		case *ast.ParenExpr:
			walk(e.X)
		case *ast.CompositeLit:
			for _, el := range e.Elts {
				walk(el)
			}
		case *ast.KeyValueExpr:
			walk(e.Value)
		case *ast.FuncLit:
			// A closure capturing the resource may release it later —
			// ownership is shared with the closure; stop tracking.
			ast.Inspect(e.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == fct.obj {
					found = true
					return false
				}
				return !found
			})
		}
	}
	walk(expr)
	return found
}

// escapesInto reports whether the RHS expression stores the resource into a
// longer-lived structure (composite literal, closure capture, address-of).
// A bare function-call argument is deliberately NOT an escape: helpers like
// drawRegion(c, ...) borrow the canvas, they do not take ownership, and
// treating calls as escapes would hide real leaks.
func escapesInto(pass *framework.Pass, expr ast.Expr, fct *fact) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		return pass.ObjectOf(e) == fct.obj
	case *ast.UnaryExpr, *ast.ParenExpr, *ast.CompositeLit, *ast.KeyValueExpr, *ast.FuncLit:
		return mentionsDirect(pass, expr, fct)
	}
	return false
}

// nilEdgeKill decides whether the edge from->to kills fct based on a nil
// comparison in from's condition. Returns (kill, applies).
func nilEdgeKill(pass *framework.Pass, from, to *cfg.Block, fct *fact) (bool, bool) {
	be, ok := from.Cond.(*ast.BinaryExpr)
	if !ok {
		return false, false
	}
	var id *ast.Ident
	switch {
	case isNil(be.Y):
		id, _ = be.X.(*ast.Ident)
	case isNil(be.X):
		id, _ = be.Y.(*ast.Ident)
	}
	if id == nil {
		return false, false
	}
	obj := pass.ObjectOf(id)
	onTrue := to == from.Succs[0]
	switch {
	case fct.errObj != nil && obj == fct.errObj:
		// err != nil: acquire failed on the true edge -> resource is nil.
		if be.Op == token.NEQ {
			return onTrue, true
		}
		if be.Op == token.EQL {
			return !onTrue, true
		}
	case obj == fct.obj:
		// v == nil: nothing to release on the nil edge.
		if be.Op == token.EQL {
			return onTrue, true
		}
		if be.Op == token.NEQ {
			return !onTrue, true
		}
	}
	return false, false
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
