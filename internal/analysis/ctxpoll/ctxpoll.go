// Package ctxpoll enforces the body-level half of the cancellation
// contract that ctxflow checks at the signature level: inside the render
// kernels (internal/gpu, internal/core), a function that holds a request
// context and loops over per-item draw work — points, regions, tiles, bins
// — must actually poll that context inside the loop, or the loop runs to
// completion long after the client has gone:
//
//	func (r *R) pass(ctx context.Context, c *Canvas) {
//		for _, rg := range regions {
//			drawRegion(c, rg) // BAD: unbounded work between polls
//		}
//	}
//
// A loop is compliant when, somewhere in its per-iteration subtree, it
//
//   - calls ctx.Err() or ctx.Done() on any context.Context value (the
//     `for ctx.Err() == nil { ... }` worker-loop shape counts: the
//     condition is part of the loop), or
//   - passes a context.Context to a callee — delegated polling, the shape
//     drawPointsBatched and parallelRegionsCtx use.
//
// Draw work is matched by callee name (draw/fill/blend/shade/raster/render
// prefixes plus the conservative-trace helpers), so fixtures need no
// internal/gpu import. Statements inside nested function literals are the
// literal's own business (they execute at call time), except that the
// polling rules above still apply to the loop that contains the literal's
// call when the context is passed in.
package ctxpoll

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis/framework"
)

// Analyzer is the ctxpoll check.
var Analyzer = &framework.Analyzer{
	Name: "ctxpoll",
	Doc:  "flags draw-work loops in context-holding kernel functions that never poll ctx.Err() nor delegate the context",
	Run:  run,
}

// watched are the import-path suffixes of the kernel packages under the
// contract.
var watched = []string{"/gpu", "/core"}

// workPrefixes match per-item render work by callee name, case-insensitive.
var workPrefixes = []string{"draw", "fill", "blend", "shade", "raster", "render"}

// workNames are exact callee names that count as draw work.
var workNames = map[string]bool{
	"BoundaryPixels": true,
	"CompileRegions": true,
}

func run(pass *framework.Pass) error {
	if pass.Pkg == nil || !watchedPkg(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil && holdsContext(pass, fn.Body) {
					checkBody(pass, fn.Body)
				}
			case *ast.FuncLit:
				// Closures (goroutine bodies, Tiles callbacks) are checked
				// too when a context is in scope inside them.
				if holdsContext(pass, fn.Body) {
					checkBody(pass, fn.Body)
				}
			}
			return true
		})
	}
	return nil
}

func watchedPkg(path string) bool {
	for _, suffix := range watched {
		if strings.HasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

// holdsContext reports whether any identifier of type context.Context is
// referenced in body — a parameter or a captured outer ctx both count: if
// the function can see a context, its loops can poll it.
func holdsContext(pass *framework.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && isContext(pass.TypeOf(id)) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isContext(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// checkBody flags offending loops at this function's nesting level; nested
// function literals are visited separately by run.
func checkBody(pass *framework.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit.Body != body {
			return false
		}
		var loop ast.Node
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loop = n
		default:
			return true
		}
		if loopDoesWork(loop) && !loopPolls(pass, loop) {
			pass.Reportf(loop.Pos(),
				"loop performs draw work but neither polls ctx.Err() nor passes the context to a callee; an abandoned request renders to completion here")
		}
		return true
	})
	return
}

// loopDoesWork reports whether the loop's own subtree (closures excluded —
// their work runs when they are called) contains a draw-work call.
func loopDoesWork(loop ast.Node) bool {
	found := false
	inspectSkippingFuncLits(loop, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if isWorkName(calleeName(call)) {
			found = true
		}
	})
	return found
}

// loopPolls reports whether the loop polls a context or hands one to a
// callee, anywhere in its subtree including the condition. Calls inside
// nested closures do not count — a poll that only runs if someone invokes
// the closure is not a poll of this loop.
func loopPolls(pass *framework.Pass, loop ast.Node) bool {
	polls := false
	inspectSkippingFuncLits(loop, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		// ctx.Err() / ctx.Done()
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isContext(pass.TypeOf(sel.X)) {
				polls = true
				return
			}
		}
		// delegated: any argument of type context.Context
		for _, a := range call.Args {
			if isContext(pass.TypeOf(a)) {
				polls = true
				return
			}
		}
	})
	return polls
}

// inspectSkippingFuncLits walks the subtree of root without descending into
// nested function literals (root itself may be anything).
func inspectSkippingFuncLits(root ast.Node, fn func(ast.Node)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		fn(n)
		return true
	})
}

func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

func isWorkName(name string) bool {
	if name == "" {
		return false
	}
	if workNames[name] {
		return true
	}
	lower := strings.ToLower(name)
	for _, p := range workPrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}
