package ctxpoll_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/ctxpoll"
)

func TestCtxpoll(t *testing.T) {
	analysistest.RunGolden(t, ctxpoll.Analyzer, "core")
}
