// Clean fixture for ctxpoll: loops that poll directly, poll via their
// condition, delegate the context, or do no draw work at all.
package core

import "context"

// cleanDirectPoll polls per iteration — the point-batch shape.
func cleanDirectPoll(ctx context.Context, c *canvas, batches []int) error {
	for _, b := range batches {
		if err := ctx.Err(); err != nil {
			return err
		}
		c.DrawPoints(b)
	}
	return nil
}

// cleanCondPoll polls in the loop condition — the worker-claim shape.
func cleanCondPoll(ctx context.Context, c *canvas, n int) {
	i := 0
	for ctx.Err() == nil {
		if i >= n {
			return
		}
		drawRegion(c, i)
		i++
	}
}

// cleanDelegated hands ctx to the callee that does the drawing — the
// drawPointsBatched / parallelRegionsCtx shape.
func cleanDelegated(ctx context.Context, c *canvas, tiles []int) error {
	for _, t := range tiles {
		if err := drawTileCtx(ctx, c, t); err != nil {
			return err
		}
	}
	return nil
}

func drawTileCtx(ctx context.Context, c *canvas, t int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	fillTile(c, t, t)
	return nil
}

// cleanSelectPoll polls through a select on ctx.Done().
func cleanSelectPoll(ctx context.Context, c *canvas, work chan int) {
	for {
		select {
		case k := <-work:
			drawRegion(c, k)
		case <-ctx.Done():
			return
		}
	}
}

// cleanNoWork loops without draw work: bookkeeping loops need no poll.
func cleanNoWork(ctx context.Context, xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	_ = ctx
	return s
}

// cleanNoContext has no context in scope at all: out of ctxpoll's scope
// (ctxflow owns the signature-level complaint).
func cleanNoContext(c *canvas, regions []int) {
	for _, k := range regions {
		drawRegion(c, k)
	}
}

// cleanStridedRefine is the shipped refinement shape: the poll is
// amortized to every 64th cell, but it is inside the loop, so the
// contract is met at any stride.
func cleanStridedRefine(ctx context.Context, c *canvas, fringe []int) error {
	for i, cell := range fringe {
		if i%64 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		rasterizeCell(c, cell)
	}
	return nil
}

// cleanPatchStridedPoll is the shipped pyramid-patch shape: the appended
// tail is swept with the poll amortized to a stride, exactly like
// PatchAppend's buildPollStride check — inside the loop, so compliant.
func cleanPatchStridedPoll(ctx context.Context, c *canvas, oldLen, n int) error {
	for i := oldLen; i < n; i++ {
		if (i-oldLen)%512 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		rasterizeCell(c, i)
	}
	return nil
}

func renderSlabCtx(ctx context.Context, c *canvas, slab int) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	renderSlab(c, slab)
	return nil
}

// cleanSlabFoldDelegated is the shipped slab-fold shape: each slab of the
// window hands the request context to the per-slab recompute, so
// cancellation propagates without an explicit poll in the fold loop.
func cleanSlabFoldDelegated(ctx context.Context, c *canvas, slabs []int) error {
	for _, s := range slabs {
		if err := renderSlabCtx(ctx, c, s); err != nil {
			return err
		}
	}
	return nil
}
